package tcr_test

import (
	"fmt"
	"log"

	"tcr"
)

// The paper's headline comparison: IVAL keeps Valiant's optimal worst-case
// throughput while recovering a fifth of its path length.
func Example() {
	t := tcr.NewTorus(8)
	for _, alg := range []tcr.Algorithm{tcr.DOR(), tcr.VAL(), tcr.IVAL()} {
		m, err := tcr.Report(t, alg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s H=%.3f worst-case=%.3f\n", alg.Name(), m.HNorm, m.WorstCaseFraction)
	}
	// Output:
	// DOR   H=1.000 worst-case=0.286
	// VAL   H=2.000 worst-case=0.500
	// IVAL  H=1.613 worst-case=0.500
}

// Interpolated routing trades locality against worst-case throughput along
// the harmonic-mean bound of equation (14).
func ExampleInterpolate() {
	t := tcr.NewTorus(8)
	half, err := tcr.Report(t, tcr.Interpolate(tcr.IVAL(), tcr.DOR(), 0.5), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alpha=0.5: H=%.4f worst-case=%.4f\n", half.HNorm, half.WorstCaseFraction)
	// Output:
	// alpha=0.5: H=1.3066 worst-case=0.3636
}

// Worst-case throughput is evaluated exactly: the Hungarian assignment on a
// channel's pair-load matrix finds the adversarial permutation.
func ExampleEvaluate() {
	t := tcr.NewTorus(8)
	f := tcr.Evaluate(t, tcr.VAL())
	gamma, perm := f.WorstCase()
	fmt.Printf("gamma_wc=%.2f over a %d-node permutation\n", gamma, len(perm))
	// Output:
	// gamma_wc=2.00 over a 64-node permutation
}

// Traffic patterns are plain doubly-stochastic matrices; the classic
// adversaries are built in.
func ExampleTornadoTraffic() {
	t := tcr.NewTorus(8)
	f := tcr.Evaluate(t, tcr.DOR())
	fmt.Printf("DOR under tornado: gamma_max=%.1f -> throughput %.3f of capacity\n",
		f.GammaMax(tcr.TornadoTraffic(t)),
		f.Throughput(tcr.TornadoTraffic(t))/tcr.NetworkCapacity(t))
	// Output:
	// DOR under tornado: gamma_max=3.0 -> throughput 0.333 of capacity
}
