#!/bin/sh
# check.sh - the repository's full verification gate.
#
# Runs, in order: build, go vet, the repo's own static-analysis pass
# (tcrlint), the unit tests under the race detector, the fault-injection
# suites (-tags lpchaos for the solver, -tags storechaos for the storage
# crash-consistency harness), the daemon e2e and client retry suites, the
# online design loop (observe ingest, drift-retune e2e, restart resume,
# plus the lpchaos re-solve-failure case), and a short fuzz smoke over the
# fuzz targets. Any failure aborts with a nonzero exit.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime   duration for each fuzz smoke (default 5s; "0" skips fuzzing)
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-5s}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tcrlint -tests ./..."
go run ./cmd/tcrlint -tests ./...

echo "==> go test -race ./... (short mode)"
go test -race -short -timeout 30m ./...

echo "==> go test -tags lpchaos ./internal/... (fault injection)"
go test -tags lpchaos -timeout 10m ./internal/...

echo "==> storage chaos + crash-consistency harness (-tags storechaos, race)"
go test -race -count=1 -tags "storechaos lpchaos" -timeout 10m ./internal/store ./internal/serve

echo "==> daemon e2e (artifact store + tcrd serving path + CLI parity, race)"
go test -race -count=1 -timeout 10m ./internal/store ./internal/serve ./cmd/tcr

echo "==> online design loop (observe ingest + drift retune e2e + restart, race)"
go test -race -count=1 -timeout 10m -run 'Online|Observe' ./internal/serve ./internal/online

echo "==> online re-solve failure chaos (-tags lpchaos)"
go test -tags lpchaos -count=1 -timeout 10m -run 'OnlineResolveFailureChaos' ./internal/serve

echo "==> client retry/backoff/hedging suite (race)"
go test -race -count=1 -timeout 5m ./internal/client

echo "==> bench smoke (-benchtime=1x)"
go test . -run '^$' -bench BenchmarkFigure1ParetoCurve -benchtime 1x >/dev/null
go test ./internal/lint -run '^$' -bench BenchmarkLintModule -benchtime 1x >/dev/null

# Soft perf gate: compare a 1x bench smoke of the LP engine suite against
# the committed BENCH_lp.json. A 1x run is noisy, so the threshold is wide
# (3x) and a regression warns without failing the gate; refresh the
# baseline with scripts/bench.sh when a slowdown is intentional.
echo "==> bench diff vs BENCH_lp.json (soft gate, threshold 3x)"
if ! go test ./internal/lp -run '^$' -bench . -benchtime 1x -benchmem \
	| go run ./cmd/benchjson -diff BENCH_lp.json -threshold 3; then
	echo "WARNING: bench smoke regressed vs BENCH_lp.json (soft gate, not failing check)"
fi

if [ "$FUZZTIME" != "0" ]; then
	echo "==> fuzz smoke: FuzzReadMPS ($FUZZTIME)"
	go test ./internal/lp -run='^$' -fuzz=FuzzReadMPS -fuzztime="$FUZZTIME"
	echo "==> fuzz smoke: FuzzHungarian ($FUZZTIME)"
	go test ./internal/matching -run='^$' -fuzz=FuzzHungarian -fuzztime="$FUZZTIME"
	echo "==> fuzz smoke: FuzzRecoveryLadder ($FUZZTIME)"
	go test -tags lpchaos ./internal/lp -run='^$' -fuzz=FuzzRecoveryLadder -fuzztime="$FUZZTIME"
	echo "==> fuzz smoke: FuzzStoreManifest ($FUZZTIME)"
	go test ./internal/store -run='^$' -fuzz=FuzzStoreManifest -fuzztime="$FUZZTIME"
fi

echo "==> all checks passed"
