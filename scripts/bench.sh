#!/bin/sh
# bench.sh - record the LP-engine benchmark suite into BENCH_lp.json.
#
# Runs the internal/lp engine benchmarks (cold solve, warm AddCut/SetRHS
# episodes, factorize and FTRAN microbenches, each with an eta and a dense
# sub-benchmark, plus the topology-family design-LP points: a k=4 3-cube
# cold solve and torus3d:4 / mesh:8x8 model builds) and the end-to-end
# Figure 1 Pareto benchmark under both the default (eta) build and the
# -tags lpdense build, and serializes the
# ns/op, B/op, and allocs/op figures with cmd/benchjson.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x; use e.g. 2s for
#              steadier numbers, 1x for a smoke run)
#
# The refreshed BENCH_lp.json doubles as the baseline for the soft
# regression gate in scripts/check.sh (cmd/benchjson -diff); re-run this
# script to re-baseline after an intentional performance change.
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
OUT="BENCH_lp.json"

rm -f "$OUT"

echo "==> internal/lp engine benchmarks (benchtime=$BENCHTIME)"
go test ./internal/lp -run '^$' -bench . -benchtime "$BENCHTIME" -benchmem \
	| tee /dev/stderr | go run ./cmd/benchjson -o "$OUT"

echo "==> Figure 1 Pareto benchmark, eta engine (default build)"
go test . -run '^$' -bench BenchmarkFigure1ParetoCurve -benchtime "$BENCHTIME" -benchmem \
	| tee /dev/stderr | go run ./cmd/benchjson -o "$OUT" -label "/eta"

echo "==> Figure 1 Pareto benchmark, dense engine (-tags lpdense)"
go test -tags lpdense . -run '^$' -bench BenchmarkFigure1ParetoCurve -benchtime "$BENCHTIME" -benchmem \
	| tee /dev/stderr | go run ./cmd/benchjson -o "$OUT" -label "/dense"

echo "==> wrote $OUT"
