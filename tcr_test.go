package tcr

import (
	"math"
	"testing"
)

// The facade tests exercise the public API end to end at small radices; the
// heavy numerical verification lives in the internal packages' suites.

// mustReport evaluates Report and fails the test on error.
func mustReport(t *testing.T, tor *Torus, alg Algorithm, samples []*Traffic) Metrics {
	t.Helper()
	m, err := Report(tor, alg, samples)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReportKnownValues(t *testing.T) {
	tor := NewTorus(8)
	val := mustReport(t, tor, VAL(), nil)
	if math.Abs(val.HNorm-2.0) > 1e-9 {
		t.Fatalf("VAL HNorm = %v", val.HNorm)
	}
	if math.Abs(val.WorstCaseFraction-0.5) > 1e-6 {
		t.Fatalf("VAL worst-case fraction = %v", val.WorstCaseFraction)
	}
	ival := mustReport(t, tor, IVAL(), nil)
	if math.Abs(ival.WorstCaseFraction-0.5) > 1e-6 {
		t.Fatalf("IVAL worst-case fraction = %v", ival.WorstCaseFraction)
	}
	// The paper's 19.3% locality recovery.
	if rec := (val.HAvg - ival.HAvg) / val.HAvg; math.Abs(rec-0.193) > 0.005 {
		t.Fatalf("IVAL recovery %v, want ~0.193", rec)
	}
	dor := mustReport(t, tor, DOR(), nil)
	if dor.HNorm != 1 || dor.CapacityFraction != 1 {
		t.Fatalf("DOR metrics off: %+v", dor)
	}
}

func TestReportWithSamples(t *testing.T) {
	tor := NewTorus(5)
	samples := SampleTraffic(tor, 10, 3)
	m := mustReport(t, tor, VAL(), samples)
	// VAL's average case is its worst case: 0.5 of capacity.
	if math.Abs(m.AvgCaseFraction-0.5) > 0.02 {
		t.Fatalf("VAL avg-case fraction = %v, want ~0.5", m.AvgCaseFraction)
	}
}

func TestDesignAndUseTable(t *testing.T) {
	tor := NewTorus(3)
	res, err := Design2Turn(tor, DesignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := mustReport(t, tor, res.Table, nil)
	if math.Abs(m.WorstCaseFraction-0.5) > 1e-4 {
		t.Fatalf("2TURN worst case %v, want 0.5", m.WorstCaseFraction)
	}
	// The designed table simulates without deadlock.
	st, err := Simulate(SimConfig{K: 3, Rate: 0.6, Seed: 2, Alg: res.Table}, 500, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked || st.PacketsEjected == 0 {
		t.Fatalf("2TURN simulation broken: %+v", st)
	}
}

func TestTableFromFlowRoundTrip(t *testing.T) {
	tor := NewTorus(3)
	res, err := WorstCaseOptimal(tor, DesignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := TableFromFlow(res.Flow, "wc-opt")
	if err != nil {
		t.Fatal(err)
	}
	m := mustReport(t, tor, alg, nil)
	if m.WorstCaseFraction < 0.5-1e-4 {
		t.Fatalf("decomposed algorithm worst case %v below optimal", m.WorstCaseFraction)
	}
}

func TestParetoEndpoints(t *testing.T) {
	tor := NewTorus(3)
	pts, err := WorstCaseParetoCurve(tor, []float64{1.0, 2.0}, DesignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dor := mustReport(t, tor, DOR(), nil)
	if pts[0].Theta < dor.WorstCaseFraction-1e-6 {
		t.Fatalf("minimal-locality optimum %v below DOR %v", pts[0].Theta, dor.WorstCaseFraction)
	}
	if math.Abs(pts[1].Theta-0.5) > 1e-4 {
		t.Fatalf("unconstrained optimum %v, want 0.5", pts[1].Theta)
	}
}

func TestFindSaturation(t *testing.T) {
	res, err := FindSaturation(SimConfig{K: 4, Seed: 4, Alg: DOR(), VCsPerClass: 2},
		[]float64{0.3, 0.8}, 300, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Throughput <= 0 {
		t.Fatalf("saturation sweep broken: %+v", res)
	}
}

func TestExtraAlgorithms(t *testing.T) {
	tor := NewTorus(6)
	o1 := mustReport(t, tor, O1TURN(), nil)
	if math.Abs(o1.HNorm-1) > 1e-9 {
		t.Fatalf("O1TURN not minimal: %v", o1.HNorm)
	}
	dor := mustReport(t, tor, DOR(), nil)
	if o1.WorstCaseFraction < dor.WorstCaseFraction-1e-9 {
		t.Fatalf("O1TURN wc %v should be >= DOR's %v", o1.WorstCaseFraction, dor.WorstCaseFraction)
	}
	goal := mustReport(t, tor, GOALish(), nil)
	rlb := mustReport(t, tor, RLB(), nil)
	if math.Abs(goal.HNorm-rlb.HNorm) > 1e-9 {
		t.Fatalf("GOALish locality %v != RLB %v", goal.HNorm, rlb.HNorm)
	}
}
