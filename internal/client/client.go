// Package client is the Go client for the tcrd daemon API. It owns the
// retry contract the daemon's degradation tiers assume: per-attempt
// timeouts, jittered exponential backoff that honors Retry-After on 429
// and 503, idempotent-request hedging (every tcrd request is
// content-addressed, so duplicates are harmless), and budget propagation —
// the remaining context deadline rides into the wire request's timeout_ms,
// shrinking margin by margin on each retry so the daemon never works past
// the caller's budget. Degraded responses (stale-but-certified artifacts
// served under overload or a tripped breaker) are surfaced, not hidden:
// Meta carries the X-TCR-Degraded and X-TCR-Staleness headers so callers
// decide whether stale is good enough.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcr/internal/store"
)

// Config parameterizes a Client; zero fields select the defaults.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7421" (required).
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request, first included (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 100ms); each
	// retry doubles it up to MaxBackoff (default 5s), jittered to [d/2, d].
	// A server Retry-After longer than the computed backoff wins.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each attempt independently of the caller's
	// context; 0 leaves only the context deadline.
	AttemptTimeout time.Duration
	// HedgeDelay, when positive, launches a second identical attempt if
	// the first has not answered within it; the first response wins and
	// the loser is cancelled. Safe because tcrd requests are idempotent.
	HedgeDelay time.Duration
	// BudgetMargin is subtracted from the remaining context budget before
	// propagating it as timeout_ms, leaving room for the network hop and
	// response handling (default 50ms).
	BudgetMargin time.Duration
	// Seed drives backoff jitter; identical seeds replay identical jitter.
	Seed uint64
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 4
	}
	return c.MaxAttempts
}

func (c Config) baseBackoff() time.Duration {
	if c.BaseBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.BaseBackoff
}

func (c Config) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 5 * time.Second
	}
	return c.MaxBackoff
}

func (c Config) budgetMargin() time.Duration {
	if c.BudgetMargin <= 0 {
		return 50 * time.Millisecond
	}
	return c.BudgetMargin
}

// Meta describes how a response was obtained: how many attempts it took,
// whether the winning response came off a hedge, and the degradation
// disclosure headers when the daemon served a stale neighbor.
type Meta struct {
	// Status is the final HTTP status.
	Status int
	// Attempts counts tries, the successful one included.
	Attempts int
	// Hedged reports that a hedge request was launched for the winning
	// attempt.
	Hedged bool
	// Degraded is the X-TCR-Degraded header: "" for a fresh artifact, else
	// "overload", "breaker-open", or "solver-failure".
	Degraded string
	// StalenessSec is the X-TCR-Staleness header: the served artifact's
	// age in seconds. Only meaningful when Degraded is set.
	StalenessSec int64
	// Fallback and FallbackFingerprint identify the substituted artifact.
	Fallback            string
	FallbackFingerprint string
}

// IsDegraded reports whether the response is a stale fallback rather than
// the requested artifact.
func (m Meta) IsDegraded() bool { return m.Degraded != "" }

// APIError is a non-200 answer from the daemon, decoded from its JSON
// error envelope.
type APIError struct {
	Status      int
	Message     string
	Diagnostics string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("tcrd: status %d: %s", e.Status, e.Message)
}

// Client is a tcrd API client. Safe for concurrent use.
type Client struct {
	cfg Config
	hc  *http.Client

	mu  sync.Mutex
	rng uint64

	// sleep is the backoff wait, injectable so tests can observe and skip
	// real delays.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a client for the daemon at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: Config.BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		cfg:   cfg,
		hc:    hc,
		rng:   cfg.Seed*2862933555777941757 + 3037000493,
		sleep: sleepCtx,
	}, nil
}

// Wire envelopes mirror the daemon's: the store request plus budgets that
// stay outside the fingerprint.
type evalWire struct {
	store.EvalRequest
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type worstPermWire struct {
	store.WorstPermRequest
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type designWire struct {
	store.DesignRequest
	MaxRounds int   `json:"max_rounds,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type paretoWire struct {
	store.ParetoRequest
	MaxRounds int   `json:"max_rounds,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Eval fetches (computing if needed) the evaluation artifact for req.
func (c *Client) Eval(ctx context.Context, req store.EvalRequest) (store.EvalArtifact, Meta, error) {
	var art store.EvalArtifact
	meta, err := c.doJSON(ctx, "/v1/eval", func(tms int64) ([]byte, error) {
		return json.Marshal(evalWire{EvalRequest: req, TimeoutMS: tms})
	}, &art)
	return art, meta, err
}

// WorstPerm fetches the adversarial-permutation certificate for req.
func (c *Client) WorstPerm(ctx context.Context, req store.WorstPermRequest) (store.WorstPermArtifact, Meta, error) {
	var art store.WorstPermArtifact
	meta, err := c.doJSON(ctx, "/v1/worstperm", func(tms int64) ([]byte, error) {
		return json.Marshal(worstPermWire{WorstPermRequest: req, TimeoutMS: tms})
	}, &art)
	return art, meta, err
}

// Design fetches the LP design artifact for req; maxRounds > 0 bounds the
// cutting-plane rounds (a budget, outside the fingerprint).
func (c *Client) Design(ctx context.Context, req store.DesignRequest, maxRounds int) (store.DesignArtifact, Meta, error) {
	var art store.DesignArtifact
	meta, err := c.doJSON(ctx, "/v1/design", func(tms int64) ([]byte, error) {
		return json.Marshal(designWire{DesignRequest: req, MaxRounds: maxRounds, TimeoutMS: tms})
	}, &art)
	return art, meta, err
}

// Pareto fetches the tradeoff-curve artifact for req.
func (c *Client) Pareto(ctx context.Context, req store.ParetoRequest, maxRounds int) (store.ParetoArtifact, Meta, error) {
	var art store.ParetoArtifact
	meta, err := c.doJSON(ctx, "/v1/pareto", func(tms int64) ([]byte, error) {
		return json.Marshal(paretoWire{ParetoRequest: req, MaxRounds: maxRounds, TimeoutMS: tms})
	}, &art)
	return art, meta, err
}

// Raw posts a request and returns the canonical payload bytes — what the
// CLI's -json mode emits. encodeReq is re-invoked per attempt with the
// current remaining budget.
func (c *Client) Raw(ctx context.Context, path string, encodeReq func(timeoutMS int64) ([]byte, error)) ([]byte, Meta, error) {
	return c.do(ctx, wireReq{path: path, encode: encodeReq})
}

// wireReq is one logical request the retry engine replays: the JSON default
// suits every artifact endpoint; the observe path overrides the content
// type (NDJSON) and adds the tenant header.
type wireReq struct {
	path        string
	contentType string // default application/json
	header      http.Header
	encode      func(timeoutMS int64) ([]byte, error)
	// noHedge disables hedging for requests that are not idempotent (an
	// observe batch ingested twice counts twice).
	noHedge bool
}

func (c *Client) doJSON(ctx context.Context, path string, encode func(int64) ([]byte, error), out any) (Meta, error) {
	b, meta, err := c.do(ctx, wireReq{path: path, encode: encode})
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(b, out); err != nil {
		return meta, fmt.Errorf("client: %s: undecodable artifact: %w", path, err)
	}
	return meta, nil
}

// attemptResult is one attempt's outcome.
type attemptResult struct {
	payload    []byte
	meta       Meta
	retryAfter time.Duration
	err        error
	retryable  bool
}

// do is the retry engine: attempts (hedged when configured) with jittered
// exponential backoff between them, Retry-After respected, the context's
// shrinking budget re-encoded into every attempt.
func (c *Client) do(ctx context.Context, wr wireReq) ([]byte, Meta, error) {
	max := c.cfg.maxAttempts()
	var last attemptResult
	for attempt := 1; attempt <= max; attempt++ {
		last = c.attempt(ctx, wr)
		last.meta.Attempts = attempt
		if last.err == nil {
			return last.payload, last.meta, nil
		}
		if !last.retryable || attempt == max || ctx.Err() != nil {
			break
		}
		wait := c.backoff(attempt)
		if last.retryAfter > wait {
			wait = last.retryAfter
		}
		if err := c.sleep(ctx, wait); err != nil {
			return nil, last.meta, fmt.Errorf("client: %s: %w (last attempt: %v)", wr.path, err, last.err)
		}
	}
	return nil, last.meta, last.err
}

// attempt runs one (possibly hedged) attempt under the per-attempt
// timeout. With hedging, the first response wins: a success cancels the
// other leg; if both legs fail the first failure is reported.
func (c *Client) attempt(ctx context.Context, wr wireReq) attemptResult {
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if c.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	}
	defer cancel()
	if c.cfg.HedgeDelay <= 0 || wr.noHedge {
		return c.once(actx, wr)
	}

	hctx, hcancel := context.WithCancel(actx)
	defer hcancel()
	ch := make(chan attemptResult, 2)
	launch := func() {
		go func() { ch <- c.once(hctx, wr) }()
	}
	launch()
	launched := 1
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	var firstFail *attemptResult
	for {
		select {
		case r := <-ch:
			r.meta.Hedged = launched > 1
			if r.err == nil {
				hcancel() // the slower leg's work is wasted, not waited for
				return r
			}
			if launched > 1 && firstFail == nil {
				firstFail = &r
				continue // the other leg may still succeed
			}
			if firstFail != nil {
				return *firstFail
			}
			return r
		case <-timer.C:
			if launched == 1 {
				launched = 2
				launch()
			}
		}
	}
}

// once performs a single HTTP exchange, propagating the remaining context
// budget (minus margin) as the wire timeout_ms.
func (c *Client) once(ctx context.Context, wr wireReq) attemptResult {
	path := wr.path
	var tms int64
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl) - c.cfg.budgetMargin()
		if rem <= 0 {
			return attemptResult{err: fmt.Errorf("client: %s: %w", path, context.DeadlineExceeded)}
		}
		tms = rem.Milliseconds()
		if tms < 1 {
			tms = 1
		}
	}
	body, err := wr.encode(tms)
	if err != nil {
		return attemptResult{err: fmt.Errorf("client: %s: encode: %w", path, err)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return attemptResult{err: fmt.Errorf("client: %s: %w", path, err)}
	}
	ct := wr.contentType
	if ct == "" {
		ct = "application/json"
	}
	req.Header.Set("Content-Type", ct)
	for k, vs := range wr.header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failures are retryable unless the caller's context is
		// the reason.
		return attemptResult{err: fmt.Errorf("client: %s: %w", path, err), retryable: ctx.Err() == nil}
	}
	//lint:ignore errdrop body-close failure cannot invalidate bytes already read and checked
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return attemptResult{err: fmt.Errorf("client: %s: read: %w", path, err), retryable: ctx.Err() == nil}
	}
	meta := metaFromResponse(resp)
	if resp.StatusCode == http.StatusOK {
		return attemptResult{payload: b, meta: meta}
	}
	apiErr := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	var envelope struct {
		Error       string `json:"error"`
		Diagnostics string `json:"diagnostics"`
	}
	if json.Unmarshal(b, &envelope) == nil && envelope.Error != "" {
		apiErr.Message = envelope.Error
		apiErr.Diagnostics = envelope.Diagnostics
	}
	return attemptResult{
		meta:       meta,
		err:        apiErr,
		retryable:  retryableStatus(resp.StatusCode),
		retryAfter: retryAfter(resp),
	}
}

func metaFromResponse(resp *http.Response) Meta {
	m := Meta{
		Status:              resp.StatusCode,
		Degraded:            resp.Header.Get("X-TCR-Degraded"),
		Fallback:            resp.Header.Get("X-TCR-Fallback"),
		FallbackFingerprint: resp.Header.Get("X-TCR-Fallback-Fingerprint"),
	}
	if v := resp.Header.Get("X-TCR-Staleness"); v != "" {
		if sec, err := strconv.ParseInt(v, 10, 64); err == nil {
			m.StalenessSec = sec
		}
	}
	return m
}

// retryableStatus: overload (429), transient server trouble (500, 502,
// 503), and expired server-side budgets (504) are worth retrying; other
// 4xx are the caller's bug and fail fast.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// backoff computes the jittered exponential wait before retry #attempt+1:
// base·2^(attempt-1) capped at MaxBackoff, jittered into [d/2, d] by the
// seeded generator so retry storms decorrelate deterministically per seed.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.baseBackoff()
	for i := 1; i < attempt && d < c.cfg.maxBackoff(); i++ {
		d *= 2
	}
	if d > c.cfg.maxBackoff() {
		d = c.cfg.maxBackoff()
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(c.rand()%uint64(half+1))
}

// rand steps the client's seeded LCG.
func (c *Client) rand() uint64 {
	c.mu.Lock()
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	r := c.rng >> 11
	c.mu.Unlock()
	return r
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
