package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcr/internal/serve"
	"tcr/internal/store"
)

// newDaemon spins up a real tcrd server for end-to-end client tests.
func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("daemon close: %v", err)
		}
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fakeSleep records requested backoff waits without actually waiting.
type fakeSleep struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.waits = append(f.waits, d)
	f.mu.Unlock()
	return ctx.Err()
}

// evalPayload fabricates a valid stored eval artifact for scripted handlers.
func evalPayload(t *testing.T) []byte {
	t.Helper()
	art := store.EvalArtifact{
		Schema:  store.SchemaVersion,
		Request: store.EvalRequest{K: 4, Alg: "DOR"},
		GammaWC: 2, WCFraction: 0.5,
	}
	b, err := store.Encode(art)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewRequiresBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty BaseURL")
	}
}

// TestEvalRoundTripDaemon runs the typed client against a real daemon:
// cold solve, then warm cache hit, both decoded and fresh.
func TestEvalRoundTripDaemon(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, Config{BaseURL: ts.URL})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	art, meta, err := c.Eval(ctx, store.EvalRequest{K: 4, Alg: "DOR"})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if meta.Status != http.StatusOK || meta.Attempts != 1 || meta.IsDegraded() {
		t.Fatalf("cold meta %+v, want one fresh 200 attempt", meta)
	}
	if art.Schema != store.SchemaVersion || art.Request.Alg != "DOR" || art.Request.K != 4 {
		t.Fatalf("decoded artifact %+v does not echo the request", art)
	}
	warm, meta2, err := c.Eval(ctx, store.EvalRequest{K: 4, Alg: "DOR"})
	if err != nil || meta2.Attempts != 1 {
		t.Fatalf("warm Eval: %v (meta %+v)", err, meta2)
	}
	if warm.GammaWC != art.GammaWC {
		t.Fatalf("warm artifact diverged: %v vs %v", warm.GammaWC, art.GammaWC)
	}
}

// TestDesignRoundTripDaemon covers the design verb plus a second typed
// endpoint's decode path end to end.
func TestDesignRoundTripDaemon(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, Config{BaseURL: ts.URL})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	art, meta, err := c.Design(ctx, store.DesignRequest{K: 4, Kind: store.DesignWorstCase}, 0)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	if meta.Status != http.StatusOK || art.Request.K != 4 {
		t.Fatalf("design round trip: meta %+v, artifact %+v", meta, art)
	}
	wp, _, err := c.WorstPerm(ctx, store.WorstPermRequest{K: 4, Alg: "DOR"})
	if err != nil || wp.Request.Alg != "DOR" {
		t.Fatalf("WorstPerm: %v (%+v)", err, wp)
	}
}

// TestRetryHonorsRetryAfter scripts two 503s carrying Retry-After: 3 and
// requires the client to retry through them, waiting at least the server's
// ask each time rather than its own (shorter) backoff.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	payload := evalPayload(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"daemon draining"}`))
			return
		}
		w.Write(payload)
	}))
	t.Cleanup(ts.Close)

	c := newClient(t, Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond})
	fs := &fakeSleep{}
	c.sleep = fs.sleep
	_, meta, err := c.Eval(context.Background(), store.EvalRequest{K: 4, Alg: "DOR"})
	if err != nil {
		t.Fatalf("Eval through 503s: %v", err)
	}
	if meta.Attempts != 3 || calls.Load() != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3", meta.Attempts, calls.Load())
	}
	if len(fs.waits) != 2 {
		t.Fatalf("%d backoff waits, want 2", len(fs.waits))
	}
	for i, d := range fs.waits {
		if d < 3*time.Second {
			t.Errorf("wait %d was %v; Retry-After: 3 must floor the backoff", i, d)
		}
	}
}

// TestNoRetryOnClientError pins fail-fast on 4xx: the caller's bug is not
// retried, and the error envelope surfaces as a typed APIError.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"radix must be even"}`))
	}))
	t.Cleanup(ts.Close)

	c := newClient(t, Config{BaseURL: ts.URL})
	c.sleep = (&fakeSleep{}).sleep
	_, meta, err := c.Eval(context.Background(), store.EvalRequest{K: 5, Alg: "DOR"})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusBadRequest || apiErr.Message != "radix must be even" {
		t.Fatalf("err %v, want APIError 400 with the envelope message", err)
	}
	if calls.Load() != 1 || meta.Attempts != 1 {
		t.Fatalf("400 was retried: calls=%d attempts=%d", calls.Load(), meta.Attempts)
	}
}

// TestRetryExhaustionReturnsLastError: persistent 500s burn MaxAttempts
// and report the final failure.
func TestRetryExhaustionReturnsLastError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"oracle fault","diagnostics":"ladder exhausted"}`))
	}))
	t.Cleanup(ts.Close)

	c := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 3, BaseBackoff: time.Millisecond})
	c.sleep = (&fakeSleep{}).sleep
	_, meta, err := c.Eval(context.Background(), store.EvalRequest{K: 4, Alg: "DOR"})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("err %v, want APIError 500", err)
	}
	if apiErr.Diagnostics != "ladder exhausted" {
		t.Fatalf("diagnostics %q not carried through", apiErr.Diagnostics)
	}
	if calls.Load() != 3 || meta.Attempts != 3 {
		t.Fatalf("calls=%d attempts=%d, want MaxAttempts=3", calls.Load(), meta.Attempts)
	}
}

// TestTransportErrorRetries: a connection-refused target is retried the
// full budget, not failed on first touch.
func TestTransportErrorRetries(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // nothing listens here anymore

	c := newClient(t, Config{BaseURL: url, MaxAttempts: 3, BaseBackoff: time.Millisecond})
	fs := &fakeSleep{}
	c.sleep = fs.sleep
	_, meta, err := c.Eval(context.Background(), store.EvalRequest{K: 4, Alg: "DOR"})
	if err == nil {
		t.Fatal("dial to a dead server succeeded")
	}
	if meta.Attempts != 3 || len(fs.waits) != 2 {
		t.Fatalf("attempts=%d waits=%d, want 3 attempts / 2 waits", meta.Attempts, len(fs.waits))
	}
}

// TestBudgetPropagation requires the remaining context deadline, shrunk by
// the margin, to ride into the wire request's timeout_ms — and to be
// absent entirely when the caller set no deadline.
func TestBudgetPropagation(t *testing.T) {
	var gotTimeout atomic.Int64
	gotTimeout.Store(-1)
	payload := evalPayload(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var wire struct {
			TimeoutMS int64 `json:"timeout_ms"`
		}
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			t.Errorf("decode wire request: %v", err)
		}
		gotTimeout.Store(wire.TimeoutMS)
		w.Write(payload)
	}))
	t.Cleanup(ts.Close)
	c := newClient(t, Config{BaseURL: ts.URL, BudgetMargin: 200 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, _, err := c.Eval(ctx, store.EvalRequest{K: 4, Alg: "DOR"}); err != nil {
		t.Fatal(err)
	}
	if tms := gotTimeout.Load(); tms <= 0 || tms > 1800 {
		t.Fatalf("propagated timeout_ms=%d, want in (0, 1800] for a 2s budget with 200ms margin", tms)
	}

	if _, _, err := c.Eval(context.Background(), store.EvalRequest{K: 4, Alg: "DOR"}); err != nil {
		t.Fatal(err)
	}
	if tms := gotTimeout.Load(); tms != 0 {
		t.Fatalf("no caller deadline but timeout_ms=%d sent", tms)
	}
}

// TestExpiredBudgetFailsWithoutRequest: a context past its margin never
// reaches the wire.
func TestExpiredBudgetFailsWithoutRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}))
	t.Cleanup(ts.Close)
	c := newClient(t, Config{BaseURL: ts.URL, BudgetMargin: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, _, err := c.Eval(ctx, store.EvalRequest{K: 4, Alg: "DOR"}); err == nil {
		t.Fatal("exhausted budget did not fail")
	}
	if calls.Load() != 0 {
		t.Fatal("exhausted budget still sent a request")
	}
}

// TestHedgeFirstResponseWins blocks the first leg and requires the hedge
// to answer: the client returns the fast response, flagged Hedged, without
// waiting out the stuck request.
func TestHedgeFirstResponseWins(t *testing.T) {
	payload := evalPayload(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-gate // first leg wedges until released
		}
		w.Write(payload)
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(release) // LIFO: unwedge the handler before ts.Close waits on it

	c := newClient(t, Config{BaseURL: ts.URL, HedgeDelay: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	art, meta, err := c.Eval(ctx, store.EvalRequest{K: 4, Alg: "DOR"})
	if err != nil {
		t.Fatalf("hedged Eval: %v", err)
	}
	if !meta.Hedged || meta.Attempts != 1 {
		t.Fatalf("meta %+v, want Hedged on attempt 1", meta)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d requests sent, want 2 (primary + hedge)", calls.Load())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged call took %v; it waited on the wedged leg", elapsed)
	}
	if art.GammaWC != 2 {
		t.Fatalf("hedged artifact %+v", art)
	}
}

// TestHedgeNotLaunchedWhenFast: a prompt primary response never spawns the
// second leg.
func TestHedgeNotLaunchedWhenFast(t *testing.T) {
	payload := evalPayload(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write(payload)
	}))
	t.Cleanup(ts.Close)
	c := newClient(t, Config{BaseURL: ts.URL, HedgeDelay: 10 * time.Second})
	_, meta, err := c.Eval(context.Background(), store.EvalRequest{K: 4, Alg: "DOR"})
	if err != nil || meta.Hedged || calls.Load() != 1 {
		t.Fatalf("fast path: err=%v meta=%+v calls=%d", err, meta, calls.Load())
	}
}

// TestDegradedMetaSurfaced parses the daemon's degradation disclosure
// headers into Meta so callers can tell stale from fresh.
func TestDegradedMetaSurfaced(t *testing.T) {
	payload := evalPayload(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-TCR-Degraded", "breaker-open")
		w.Header().Set("X-TCR-Staleness", "42")
		w.Header().Set("X-TCR-Fallback", "eval samples=128 for samples=64")
		w.Header().Set("X-TCR-Fallback-Fingerprint", "deadbeef")
		w.Write(payload)
	}))
	t.Cleanup(ts.Close)
	c := newClient(t, Config{BaseURL: ts.URL})
	_, meta, err := c.Eval(context.Background(), store.EvalRequest{K: 4, Alg: "DOR"})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.IsDegraded() || meta.Degraded != "breaker-open" || meta.StalenessSec != 42 ||
		meta.FallbackFingerprint != "deadbeef" || meta.Fallback == "" {
		t.Fatalf("degradation headers not surfaced: %+v", meta)
	}
}

// TestBackoffJitteredAndBounded checks the schedule: each attempt's wait
// lands in [d/2, d] for the doubling, capped series, and an identical seed
// replays identically while a different seed diverges somewhere.
func TestBackoffJitteredAndBounded(t *testing.T) {
	cfg := Config{BaseURL: "http://x", BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	a := newClient(t, Config{BaseURL: "http://x", BaseBackoff: cfg.BaseBackoff, MaxBackoff: cfg.MaxBackoff, Seed: 7})
	b := newClient(t, Config{BaseURL: "http://x", BaseBackoff: cfg.BaseBackoff, MaxBackoff: cfg.MaxBackoff, Seed: 7})
	d := newClient(t, Config{BaseURL: "http://x", BaseBackoff: cfg.BaseBackoff, MaxBackoff: cfg.MaxBackoff, Seed: 8})
	diverged := false
	for attempt := 1; attempt <= 8; attempt++ {
		full := cfg.BaseBackoff << (attempt - 1)
		if full > cfg.MaxBackoff {
			full = cfg.MaxBackoff
		}
		wa, wb, wd := a.backoff(attempt), b.backoff(attempt), d.backoff(attempt)
		if wa < full/2 || wa > full {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, wa, full/2, full)
		}
		if wa != wb {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, wa, wb)
		}
		if wa != wd {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter everywhere")
	}
}
