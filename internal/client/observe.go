package client

// Observe streams flow samples into the daemon's online design loop. The
// wire format is NDJSON — one {"src":i,"dst":j,"count":c} object per line —
// batched so a long stream becomes bounded requests that ride the client's
// usual retry machinery: 429 answers wait out Retry-After and retry, which
// is safe because a rejected batch was never ingested. A transport failure
// after ingestion (response lost) can double-count one batch on retry;
// the estimator's windowed decay forgets the skew, so streaming favors
// delivery over exactness. Hedging is disabled here for the same reason —
// observe is the one daemon request that is not idempotent.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"tcr/internal/online"
)

// DefaultObserveBatch is the samples-per-request ceiling Observe uses when
// the caller passes batchSize <= 0.
const DefaultObserveBatch = 1000

// ObserveResult mirrors the daemon's per-batch observe response: ingestion
// counts, the estimator's drift, and the controller's decision.
type ObserveResult struct {
	Tenant       string  `json:"tenant"`
	Accepted     int     `json:"accepted"`
	Rejected     int     `json:"rejected"`
	RejectReason string  `json:"reject_reason,omitempty"`
	Ingested     float64 `json:"ingested"`
	Drift        float64 `json:"drift"`
	TargetHNorm  float64 `json:"target_hnorm"`
	Trip         bool    `json:"trip"`
	Resolving    bool    `json:"resolving"`
	ServedFP     string  `json:"served_fp,omitempty"`
	ServedHNorm  float64 `json:"served_hnorm,omitempty"`
	Armed        bool    `json:"armed"`
	Cooloff      int     `json:"cooloff,omitempty"`
}

// Observe sends samples to /v1/observe in batches of batchSize (0 selects
// DefaultObserveBatch) under tenant, returning one result per batch. On a
// mid-stream failure the results so far are returned alongside the error,
// so the caller knows how much of the stream landed.
func (c *Client) Observe(ctx context.Context, tenant string, samples []online.Sample, batchSize int) ([]ObserveResult, Meta, error) {
	if batchSize <= 0 {
		batchSize = DefaultObserveBatch
	}
	hdr := http.Header{}
	if tenant != "" {
		hdr.Set("X-TCR-Tenant", tenant)
	}
	var (
		out  []ObserveResult
		meta Meta
	)
	for start := 0; start < len(samples); start += batchSize {
		body, err := encodeNDJSON(samples[start:min(start+batchSize, len(samples))])
		if err != nil {
			return out, meta, err
		}
		payload, m, err := c.do(ctx, wireReq{
			path:        "/v1/observe",
			contentType: "application/x-ndjson",
			header:      hdr,
			encode:      func(int64) ([]byte, error) { return body, nil },
			noHedge:     true,
		})
		meta = m
		if err != nil {
			return out, meta, fmt.Errorf("client: observe batch at sample %d: %w", start, err)
		}
		var r ObserveResult
		if err := json.Unmarshal(payload, &r); err != nil {
			return out, meta, fmt.Errorf("client: /v1/observe: undecodable response: %w", err)
		}
		out = append(out, r)
	}
	return out, meta, nil
}

// encodeNDJSON renders one batch as newline-delimited JSON objects.
func encodeNDJSON(samples []online.Sample) ([]byte, error) {
	var b bytes.Buffer
	for _, s := range samples {
		line, err := json.Marshal(s)
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}
