//go:build storechaos

package store

// Storage fault injection, compiled only under -tags storechaos. ChaosFS is
// an in-memory FS implementation that models the durability semantics the
// store's commit protocol depends on — and nothing more generous:
//
//   - File content becomes durable only on a successful File.Sync; a file
//     whose name survives a crash but whose content was never synced reads
//     back empty (the classic zero-length file after power loss).
//   - Name changes (CreateTemp, Rename, Remove) live in the parent
//     directory's volatile entry table and become durable only on SyncDir
//     of that directory.
//   - Directory creation is modeled as immediately durable; mkdir
//     crash-consistency is not what the harness is after.
//
// A script injects faults deterministically: write failures (EIO), short
// writes, an ENOSPC byte budget, fsync failures, *lying* fsyncs (report
// success, persist nothing), rename and directory-sync failures, and a
// crash point indexed into the sequence of mutating operations. After a
// crash every operation fails with ErrCrashed until Recover rolls the
// volatile state back to exactly what was durable — the disk image a
// machine reboot would find. The crash-consistency harness in
// chaos_test.go replays a store commit, killing it at every operation
// index, and asserts the reopened store is committed-or-absent, never torn.

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Injected fault errors, distinguishable by errors.Is so tests can assert
// the right fault surfaced.
var (
	ErrInjectedEIO    = errors.New("storechaos: injected I/O error")
	ErrInjectedENOSPC = errors.New("storechaos: injected ENOSPC")
	ErrCrashed        = errors.New("storechaos: filesystem crashed")
)

// FSScript configures deterministic fault injection for a ChaosFS. Counter
// fields burn down as their operations occur; zero values disable a fault.
type FSScript struct {
	// Seed drives the injection PRNG (short-write and partial-crash prefix
	// lengths); identical seeds replay identical sequences.
	Seed uint64
	// FailWrites fails the next N writes with ErrInjectedEIO, applying
	// nothing.
	FailWrites int
	// ShortWrites makes the next N writes apply only a strict prefix of
	// the buffer before failing with ErrInjectedEIO — a torn in-flight
	// write.
	ShortWrites int
	// ENOSPCBudget, when positive, is the total number of bytes writes may
	// apply before failing with ErrInjectedENOSPC; the write that crosses
	// the budget applies the remaining bytes (a short write) and fails.
	ENOSPCBudget int64
	// FailSyncs fails the next N file Syncs with ErrInjectedEIO without
	// promoting anything to durable (an honest fsync failure).
	FailSyncs int
	// LieSyncs makes the next N file Syncs report success without
	// promoting anything to durable (firmware that acknowledges before the
	// platter). Exists to prove the harness detects the torn states an
	// honest fsync prevents.
	LieSyncs int
	// FailRenames fails the next N renames with ErrInjectedEIO.
	FailRenames int
	// FailSyncDirs fails the next N directory syncs with ErrInjectedEIO.
	FailSyncDirs int
	// CrashAtOp crashes the filesystem when the CrashAtOp'th mutating
	// operation (1-based, counted from the last SetScript) begins: the
	// operation does not apply, and every operation after it fails with
	// ErrCrashed until Recover. 0 disables.
	CrashAtOp int
	// CrashPartial, when the crash lands on a write, applies a
	// seed-determined strict prefix of the buffer first — a write torn by
	// the crash itself.
	CrashPartial bool
}

// cfsFile is one inode: volatile content (what reads see now) and durable
// content (what survives a crash).
type cfsFile struct {
	vol []byte
	dur []byte
}

// ChaosFS is the chaos FS implementation. Safe for concurrent use; all
// state sits behind one mutex.
type ChaosFS struct {
	mu      sync.Mutex
	script  FSScript
	rng     uint64
	written int64 // bytes applied since SetScript, for ENOSPCBudget
	opN     int   // mutating ops since SetScript, for CrashAtOp
	trace   []string
	crashed bool
	tmpSeq  int
	files   map[string]*cfsFile // volatile name table
	durName map[string]*cfsFile // durable name table
	dirs    map[string]bool
}

// NewChaosFS returns an empty chaos filesystem with no faults armed.
func NewChaosFS(seed uint64) *ChaosFS {
	c := &ChaosFS{
		files:   map[string]*cfsFile{},
		durName: map[string]*cfsFile{},
		dirs:    map[string]bool{},
	}
	c.SetScript(FSScript{Seed: seed})
	return c
}

// SetScript arms a new fault script and resets the operation counter, the
// ENOSPC byte budget, and the trace — faults and crash points are counted
// from here.
func (c *ChaosFS) SetScript(s FSScript) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.script = s
	c.rng = s.Seed*2862933555777941757 + 3037000493
	c.written = 0
	c.opN = 0
	c.trace = nil
}

// Trace returns the mutating operations recorded since the last SetScript,
// one human-readable line per op. Index i (0-based) names the operation a
// script with CrashAtOp: i+1 kills.
func (c *ChaosFS) Trace() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.trace...)
}

// Crash fails every subsequent operation with ErrCrashed until Recover.
func (c *ChaosFS) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
}

// Recover simulates the reboot after a crash: volatile state is discarded
// and replaced by exactly the durable image, and operations work again.
func (c *ChaosFS) Recover() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = false
	c.files = map[string]*cfsFile{}
	for name, f := range c.durName {
		f.vol = append([]byte(nil), f.dur...)
		c.files[name] = f
	}
}

// next steps the injection PRNG and returns a value in [0, n).
func (c *ChaosFS) next(n int) int {
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	return int((c.rng >> 11) % uint64(n))
}

// op gates one mutating operation: crash bookkeeping plus trace recording.
// Returns ErrCrashed when the filesystem is (or just became) dead; crashed
// reports whether this very op is the scripted crash point, in which case
// the caller may still apply a partial effect before dying.
func (c *ChaosFS) op(desc string) (crashNow bool, err error) {
	if c.crashed {
		return false, ErrCrashed
	}
	c.opN++
	c.trace = append(c.trace, desc)
	if c.script.CrashAtOp > 0 && c.opN == c.script.CrashAtOp {
		c.crashed = true
		return true, nil
	}
	return false, nil
}

func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

func (c *ChaosFS) MkdirAll(path string, _ fs.FileMode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	crash, err := c.op("mkdirall " + path)
	if err != nil || crash {
		return pathErr("mkdirall", path, ErrCrashed)
	}
	for p := filepath.Clean(path); p != "." && p != "/"; p = filepath.Dir(p) {
		c.dirs[p] = true
	}
	return nil
}

// chaosFile is an open handle; writes and syncs route back through the FS
// so scripts see them.
type chaosFile struct {
	c    *ChaosFS
	path string
}

func (c *ChaosFS) CreateTemp(dir, pattern string) (File, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirs[filepath.Clean(dir)] {
		return nil, "", pathErr("createtemp", dir, fs.ErrNotExist)
	}
	c.tmpSeq++
	name := filepath.Join(dir, fmt.Sprintf("%s%d", pattern, c.tmpSeq))
	crash, err := c.op("create " + name)
	if err != nil || crash {
		return nil, "", pathErr("createtemp", name, ErrCrashed)
	}
	c.files[name] = &cfsFile{}
	return &chaosFile{c: c, path: name}, name, nil
}

func (f *chaosFile) Write(b []byte) (int, error) {
	c := f.c
	c.mu.Lock()
	defer c.mu.Unlock()
	inode, ok := c.files[f.path]
	if !ok {
		return 0, pathErr("write", f.path, fs.ErrNotExist)
	}
	crash, err := c.op(fmt.Sprintf("write(%d) %s", len(b), f.path))
	if err != nil {
		return 0, pathErr("write", f.path, ErrCrashed)
	}
	if crash {
		if c.script.CrashPartial && len(b) > 1 {
			n := 1 + c.next(len(b)-1) // strict prefix: at least 1, less than all
			inode.vol = append(inode.vol, b[:n]...)
		}
		return 0, pathErr("write", f.path, ErrCrashed)
	}
	if c.script.FailWrites > 0 {
		c.script.FailWrites--
		return 0, pathErr("write", f.path, ErrInjectedEIO)
	}
	if c.script.ShortWrites > 0 && len(b) > 1 {
		c.script.ShortWrites--
		n := 1 + c.next(len(b)-1)
		inode.vol = append(inode.vol, b[:n]...)
		c.written += int64(n)
		return n, pathErr("write", f.path, ErrInjectedEIO)
	}
	if c.script.ENOSPCBudget > 0 && c.written+int64(len(b)) > c.script.ENOSPCBudget {
		n := int(c.script.ENOSPCBudget - c.written)
		if n < 0 {
			n = 0
		}
		inode.vol = append(inode.vol, b[:n]...)
		c.written += int64(n)
		return n, pathErr("write", f.path, ErrInjectedENOSPC)
	}
	inode.vol = append(inode.vol, b...)
	c.written += int64(len(b))
	return len(b), nil
}

func (f *chaosFile) Sync() error {
	c := f.c
	c.mu.Lock()
	defer c.mu.Unlock()
	inode, ok := c.files[f.path]
	if !ok {
		return pathErr("sync", f.path, fs.ErrNotExist)
	}
	crash, err := c.op("sync " + f.path)
	if err != nil || crash {
		return pathErr("sync", f.path, ErrCrashed)
	}
	if c.script.FailSyncs > 0 {
		c.script.FailSyncs--
		return pathErr("sync", f.path, ErrInjectedEIO)
	}
	if c.script.LieSyncs > 0 {
		c.script.LieSyncs--
		return nil // acknowledged, not persisted
	}
	inode.dur = append([]byte(nil), inode.vol...)
	return nil
}

func (f *chaosFile) Close() error {
	// Close is not a durability point and not a crash boundary distinct
	// from its neighbors; it never fails on a live filesystem.
	f.c.mu.Lock()
	defer f.c.mu.Unlock()
	if f.c.crashed {
		return pathErr("close", f.path, ErrCrashed)
	}
	return nil
}

func (c *ChaosFS) ReadFile(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, pathErr("read", path, ErrCrashed)
	}
	f, ok := c.files[filepath.Clean(path)]
	if !ok {
		return nil, pathErr("read", path, fs.ErrNotExist)
	}
	return append([]byte(nil), f.vol...), nil
}

func (c *ChaosFS) ReadDir(path string) ([]fs.DirEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, pathErr("readdir", path, ErrCrashed)
	}
	dir := filepath.Clean(path)
	if !c.dirs[dir] {
		return nil, pathErr("readdir", path, fs.ErrNotExist)
	}
	names := map[string]bool{}
	for d := range c.dirs {
		if filepath.Dir(d) == dir {
			names[filepath.Base(d)] = true
		}
	}
	var ents []fs.DirEntry
	for name, isDir := range names {
		ents = append(ents, chaosDirEntry{name: name, dir: isDir})
	}
	for name := range c.files {
		if filepath.Dir(name) == dir {
			ents = append(ents, chaosDirEntry{name: filepath.Base(name)})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name() < ents[j].Name() })
	return ents, nil
}

func (c *ChaosFS) Stat(path string) (fs.FileInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, pathErr("stat", path, ErrCrashed)
	}
	p := filepath.Clean(path)
	if f, ok := c.files[p]; ok {
		return chaosFileInfo{name: filepath.Base(p), size: int64(len(f.vol))}, nil
	}
	if c.dirs[p] {
		return chaosFileInfo{name: filepath.Base(p), dir: true}, nil
	}
	return nil, pathErr("stat", path, fs.ErrNotExist)
}

func (c *ChaosFS) Chmod(path string, _ fs.FileMode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return pathErr("chmod", path, ErrCrashed)
	}
	if _, ok := c.files[filepath.Clean(path)]; !ok {
		return pathErr("chmod", path, fs.ErrNotExist)
	}
	return nil
}

func (c *ChaosFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	oldp, newp := filepath.Clean(oldpath), filepath.Clean(newpath)
	crash, err := c.op("rename " + oldp + " -> " + newp)
	if err != nil || crash {
		return pathErr("rename", oldpath, ErrCrashed)
	}
	if c.script.FailRenames > 0 {
		c.script.FailRenames--
		return pathErr("rename", oldpath, ErrInjectedEIO)
	}
	f, ok := c.files[oldp]
	if !ok {
		return pathErr("rename", oldpath, fs.ErrNotExist)
	}
	delete(c.files, oldp)
	c.files[newp] = f // atomically replaces any existing target, like POSIX
	return nil
}

func (c *ChaosFS) Remove(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := filepath.Clean(path)
	crash, err := c.op("remove " + p)
	if err != nil || crash {
		return pathErr("remove", path, ErrCrashed)
	}
	if _, ok := c.files[p]; !ok {
		return pathErr("remove", path, fs.ErrNotExist)
	}
	delete(c.files, p)
	return nil
}

func (c *ChaosFS) RemoveAll(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := filepath.Clean(path)
	crash, err := c.op("removeall " + p)
	if err != nil || crash {
		return pathErr("removeall", path, ErrCrashed)
	}
	prefix := p + string(filepath.Separator)
	// Name removal is volatile like any other directory mutation; durable
	// names under still-durable parent dirs vanish only via SyncDir. Dirs
	// themselves are modeled immediately-durable, so drop them outright.
	for name := range c.files {
		if name == p || strings.HasPrefix(name, prefix) {
			delete(c.files, name)
		}
	}
	for d := range c.dirs {
		if d == p || strings.HasPrefix(d, prefix) {
			delete(c.dirs, d)
		}
	}
	for name := range c.durName {
		if dd := filepath.Dir(name); !c.dirs[dd] {
			delete(c.durName, name)
		}
	}
	return nil
}

func (c *ChaosFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := filepath.Clean(dir)
	crash, err := c.op("syncdir " + d)
	if err != nil || crash {
		return pathErr("syncdir", dir, ErrCrashed)
	}
	if !c.dirs[d] {
		return pathErr("syncdir", dir, fs.ErrNotExist)
	}
	if c.script.FailSyncDirs > 0 {
		c.script.FailSyncDirs--
		return pathErr("syncdir", dir, ErrInjectedEIO)
	}
	// Promote this directory's entry table: volatile names become durable,
	// durable names no longer present volatilely are forgotten.
	for name, f := range c.files {
		if filepath.Dir(name) == d {
			c.durName[name] = f
		}
	}
	for name := range c.durName {
		if filepath.Dir(name) == d {
			if _, ok := c.files[name]; !ok {
				delete(c.durName, name)
			}
		}
	}
	return nil
}

type chaosDirEntry struct {
	name string
	dir  bool
}

func (e chaosDirEntry) Name() string      { return e.name }
func (e chaosDirEntry) IsDir() bool       { return e.dir }
func (e chaosDirEntry) Type() fs.FileMode { return chaosFileInfo{dir: e.dir}.Mode().Type() }
func (e chaosDirEntry) Info() (fs.FileInfo, error) {
	return chaosFileInfo{name: e.name, dir: e.dir}, nil
}

type chaosFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i chaosFileInfo) Name() string { return i.name }
func (i chaosFileInfo) Size() int64  { return i.size }
func (i chaosFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i chaosFileInfo) ModTime() time.Time { return time.Time{} }
func (i chaosFileInfo) IsDir() bool        { return i.dir }
func (i chaosFileInfo) Sys() any           { return nil }
