package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the narrow filesystem surface the store commits through. Every
// durability-relevant operation the store performs — temp-file creation,
// writes, fsync, rename, directory fsync, removal — goes through this
// interface, which is what makes the commit protocol testable: the real
// implementation (OS) talks to the kernel, while the chaos implementation
// (ChaosFS, compiled under -tags storechaos) models volatile-vs-durable
// state explicitly and injects scripted faults and crashes at every
// operation boundary.
//
// The durability contract the store relies on, and which implementations
// must honor:
//
//   - File.Sync makes the file's current content survive a crash.
//   - Rename atomically replaces the target name, but the *name change*
//     survives a crash only after SyncDir of the parent directory.
//   - A file whose name was made durable but whose content was never
//     synced may read back empty after a crash (the classic zero-length
//     file), which is why the store syncs file content before every rename.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a new unique file in dir whose name begins with
	// pattern, returning the open handle and its path.
	CreateTemp(dir, pattern string) (File, string, error)
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
	Chmod(path string, mode os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	// SyncDir fsyncs a directory, making its current entries (renames,
	// removals, newly created names) durable.
	SyncDir(dir string) error
}

// File is a writable file handle inside an FS.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, string, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return f, f.Name(), nil
}

func (osFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)  { return os.ReadDir(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)       { return os.Stat(path) }
func (osFS) Chmod(path string, mode os.FileMode) error   { return os.Chmod(path, mode) }
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                    { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                 { return os.RemoveAll(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
