// Package store is the on-disk design-artifact store: a content-addressed,
// schema-versioned home for everything the solvers produce that is worth
// keeping — design results with their worst-case certificates, exact
// evaluation reports, adversarial permutations, Pareto curves — plus the
// mutable checkpoint files the design cut loops resume from.
//
// Artifacts are keyed by (kind, fingerprint), where the fingerprint is the
// SHA-256 of the canonical JSON encoding of the request that produced the
// artifact (see Fingerprint and the request types in schema.go). Everything
// that shapes the result — topology radix, algorithm, design kind, folding,
// tolerance, slack, sample seed — is part of the fingerprint; budgets
// (round limits, deadlines) are not, because two requests that differ only
// in how long they are allowed to run denote the same artifact. A k=6
// design that took an hour is therefore computed once and replayed forever.
//
// On disk each artifact is a directory holding two files written in commit
// order:
//
//	objects/<kind>/<ff>/<fingerprint>/payload-<sha256>.json   the artifact bytes
//	objects/<kind>/<ff>/<fingerprint>/manifest.json           integrity manifest
//
// (<ff> is the first two fingerprint hex digits, a fan-out shard.) Both are
// written via temp-file + fsync + atomic rename + directory fsync, manifest
// last. The payload file is named by its own content hash, so replacing an
// artifact never overwrites the payload the old manifest points at: the
// manifest rename is the single atomic commit point, and a crash anywhere
// in Put leaves either the old committed version or the new one readable —
// never a manifest describing half-replaced bytes. The crash-consistency
// harness (-tags storechaos) kills Put at every filesystem operation and
// proves exactly this. Get re-hashes the payload against the manifest on
// every read; a mismatch surfaces as ErrCorrupt, never as silently wrong
// data. (Manifests written before the content-named layout reference a
// plain payload.json and remain readable.)
//
// Checkpoints live beside the objects under checkpoints/<kind>/<fp>.ckpt.
// They are mutable resume state, not content-addressed artifacts: the
// design layer owns their format and integrity hashing (it reuses
// HashBytes/WriteFileAtomic from here) and clears them on certification.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// ManifestSchema versions the manifest file format itself; bump it when the
// layout of manifest.json changes incompatibly. (Adding the optional
// payload_file field kept the schema: old manifests without it read the
// legacy payload.json name.)
const ManifestSchema = "tcr-store-1"

// Artifact kinds. A kind names both the request schema and the artifact
// schema stored under it (schema.go).
const (
	KindEval      = "eval"
	KindWorstPerm = "worstperm"
	KindDesign    = "design"
	KindPareto    = "pareto"
)

// ErrNotFound reports that no committed artifact exists for a key.
var ErrNotFound = errors.New("store: artifact not found")

// ErrCorrupt reports that an artifact exists but failed integrity
// verification (unreadable manifest, key mismatch, size or hash mismatch).
// Callers should treat it as a miss and overwrite via Put.
var ErrCorrupt = errors.New("store: artifact failed integrity verification")

// Manifest is the durable integrity record committed after an artifact's
// payload. It is the store's unit of verification: Get trusts nothing it
// cannot re-derive from the payload bytes and this record.
type Manifest struct {
	Schema         string `json:"schema"`
	Kind           string `json:"kind"`
	Fingerprint    string `json:"fingerprint"`
	ArtifactSchema int    `json:"artifact_schema"`
	PayloadSHA256  string `json:"payload_sha256"`
	PayloadBytes   int64  `json:"payload_bytes"`
	// PayloadFile is the content-named payload file this manifest commits;
	// empty in manifests written before the content-named layout, which
	// read the legacy payload.json.
	PayloadFile string `json:"payload_file,omitempty"`
	CreatedUnix int64  `json:"created_unix"`
}

// payloadFile returns the payload file name this manifest points at.
func (m Manifest) payloadFile() string {
	if m.PayloadFile == "" {
		return "payload.json"
	}
	return m.PayloadFile
}

// Store is a handle on one on-disk artifact tree. It is safe for concurrent
// use by multiple goroutines and (thanks to atomic commit order) by
// multiple processes sharing the directory.
type Store struct {
	root string
	fsys FS
}

// Open creates (if needed) and opens a store rooted at dir on the real
// filesystem.
func Open(dir string) (*Store, error) { return OpenFS(OS, dir) }

// OpenFS creates (if needed) and opens a store rooted at dir on an explicit
// filesystem — the chaos implementation in fault-injection builds, OS
// everywhere else.
func OpenFS(fsys FS, dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "objects"), filepath.Join(dir, "checkpoints")} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	return &Store{root: dir, fsys: fsys}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// validKey rejects keys that could escape the store tree or collide with
// the store's own file names: kinds are short lowercase identifiers,
// fingerprints lowercase hex of at least 16 digits.
func validKey(kind, fp string) error {
	if kind == "" || len(kind) > 64 {
		return fmt.Errorf("store: invalid kind %q", kind)
	}
	for _, c := range kind {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return fmt.Errorf("store: invalid kind %q", kind)
		}
	}
	if len(fp) < 16 || len(fp) > 128 {
		return fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: invalid fingerprint %q", fp)
		}
	}
	return nil
}

// validPayloadFile vets a manifest's payload_file before joining it to a
// path: a tampered manifest must not be able to point the read outside the
// artifact's own directory.
func validPayloadFile(name string) bool {
	if name == "payload.json" {
		return true
	}
	if !strings.HasPrefix(name, "payload-") || !strings.HasSuffix(name, ".json") {
		return false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "payload-"), ".json")
	return validKey("p", hexPart) == nil
}

func (s *Store) objectDir(kind, fp string) string {
	return filepath.Join(s.root, "objects", kind, fp[:2], fp)
}

// Put durably commits an artifact payload under (kind, fp) and returns the
// manifest it wrote. The payload lands in a file named by its own content
// hash, then the manifest referencing it is renamed into place: that rename
// is the single commit point, so an existing artifact under the same key is
// replaced atomically — a reader (or a crash) sees either the old version
// or the new one, never a mix — and the old payload file is only removed
// after the new manifest is durable.
func (s *Store) Put(kind, fp string, artifactSchema int, payload []byte) (Manifest, error) {
	if err := validKey(kind, fp); err != nil {
		return Manifest{}, err
	}
	dir := s.objectDir(kind, fp)
	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("store: put: %w", err)
	}
	sha := HashBytes(payload)
	pf := "payload-" + sha + ".json"
	if err := writeFileAtomicFS(s.fsys, filepath.Join(dir, pf), payload, 0o644); err != nil {
		return Manifest{}, fmt.Errorf("store: put payload: %w", err)
	}
	m := Manifest{
		Schema:         ManifestSchema,
		Kind:           kind,
		Fingerprint:    fp,
		ArtifactSchema: artifactSchema,
		PayloadSHA256:  sha,
		PayloadBytes:   int64(len(payload)),
		PayloadFile:    pf,
		// CreatedUnix is provenance metadata about when this machine wrote
		// the artifact; it is deliberately outside the fingerprint (which is
		// computed from the design inputs above) so rebuilding an identical
		// artifact later still content-addresses to the same key.
		CreatedUnix: time.Now().Unix(), //lint:ignore randsource provenance timestamp, excluded from the content address
	}
	mb, err := json.Marshal(&m)
	if err != nil {
		return Manifest{}, fmt.Errorf("store: put manifest encode: %w", err)
	}
	if err := writeFileAtomicFS(s.fsys, filepath.Join(dir, "manifest.json"), mb, 0o644); err != nil {
		return Manifest{}, fmt.Errorf("store: put manifest: %w", err)
	}
	s.sweepStale(dir, pf)
	return m, nil
}

// sweepStale removes superseded payload files and orphaned temp files from
// a just-committed artifact directory. Strictly best-effort: the files it
// targets are unreferenced by the committed manifest, so failing to remove
// them (or a crash resurrecting them) costs disk, not correctness.
func (s *Store) sweepStale(dir, keep string) {
	ents, err := s.fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || name == "manifest.json" || name == keep {
			continue
		}
		//lint:ignore errdrop best-effort sweep of unreferenced files; Get never reads them
		_ = s.fsys.Remove(filepath.Join(dir, name))
	}
}

// corrupt wraps a verification failure with its cause.
func corrupt(kind, fp, reason string) error {
	return fmt.Errorf("%w: %s/%s: %s", ErrCorrupt, kind, fp, reason)
}

// Get returns the committed payload and manifest under (kind, fp). A
// missing artifact returns ErrNotFound; one that fails verification returns
// ErrCorrupt (wrapped with the reason).
func (s *Store) Get(kind, fp string) ([]byte, Manifest, error) {
	if err := validKey(kind, fp); err != nil {
		return nil, Manifest{}, err
	}
	dir := s.objectDir(kind, fp)
	mb, err := s.fsys.ReadFile(filepath.Join(dir, "manifest.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, Manifest{}, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, fp)
	}
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("store: get: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, Manifest{}, corrupt(kind, fp, "manifest not valid JSON: "+err.Error())
	}
	if m.Schema != ManifestSchema {
		return nil, Manifest{}, corrupt(kind, fp, "unsupported manifest schema "+m.Schema)
	}
	if m.Kind != kind || m.Fingerprint != fp {
		return nil, Manifest{}, corrupt(kind, fp, "manifest key mismatch")
	}
	if !validPayloadFile(m.payloadFile()) {
		return nil, Manifest{}, corrupt(kind, fp, "manifest payload_file invalid")
	}
	payload, err := s.fsys.ReadFile(filepath.Join(dir, m.payloadFile()))
	if err != nil {
		return nil, Manifest{}, corrupt(kind, fp, "payload unreadable: "+err.Error())
	}
	if int64(len(payload)) != m.PayloadBytes {
		return nil, Manifest{}, corrupt(kind, fp, "payload size mismatch")
	}
	if HashBytes(payload) != m.PayloadSHA256 {
		return nil, Manifest{}, corrupt(kind, fp, "payload hash mismatch")
	}
	return payload, m, nil
}

// Has reports whether a verified artifact exists under (kind, fp).
func (s *Store) Has(kind, fp string) bool {
	_, _, err := s.Get(kind, fp)
	return err == nil
}

// Delete removes the artifact under (kind, fp); deleting a missing artifact
// is not an error. The manifest — the commit marker — is removed first and
// made durable before the rest of the directory goes, so a crash mid-delete
// leaves the artifact either fully committed or cleanly absent, never a
// manifest describing missing bytes.
func (s *Store) Delete(kind, fp string) error {
	if err := validKey(kind, fp); err != nil {
		return err
	}
	dir := s.objectDir(kind, fp)
	if err := s.fsys.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("store: delete: %w", err)
		}
	} else if err := s.fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	if err := s.fsys.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// List returns the fingerprints of every committed artifact under kind, in
// unspecified order. Slots whose manifest is missing (an interrupted Put)
// are skipped; corrupt-but-committed slots are listed — Get reports their
// corruption.
func (s *Store) List(kind string) ([]string, error) {
	if err := validKey(kind, strings.Repeat("0", 16)); err != nil {
		return nil, err
	}
	kindDir := filepath.Join(s.root, "objects", kind)
	fans, err := s.fsys.ReadDir(kindDir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var fps []string
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		ents, err := s.fsys.ReadDir(filepath.Join(kindDir, fan.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: list: %w", err)
		}
		for _, e := range ents {
			fp := e.Name()
			if !e.IsDir() || validKey(kind, fp) != nil {
				continue
			}
			if _, err := s.fsys.Stat(filepath.Join(kindDir, fan.Name(), fp, "manifest.json")); err == nil {
				fps = append(fps, fp)
			}
		}
	}
	return fps, nil
}

// CheckpointPath returns the mutable checkpoint file path for (kind, fp),
// creating its directory. Design runs pass it as Options.Checkpoint so an
// interrupted computation resumes from the store on the next request.
func (s *Store) CheckpointPath(kind, fp string) (string, error) {
	if err := validKey(kind, fp); err != nil {
		return "", err
	}
	dir := filepath.Join(s.root, "checkpoints", kind)
	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: checkpoint dir: %w", err)
	}
	return filepath.Join(dir, fp+".ckpt"), nil
}

// HashBytes returns the lowercase hex SHA-256 of b: the store's integrity
// and content-address hash, shared with the design layer's checkpoint
// integrity field.
func HashBytes(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Fingerprint returns the canonical content address of a request: the
// SHA-256 of the kind and the request's JSON encoding. Struct field order
// fixes the byte layout, so equal requests map to equal fingerprints.
func Fingerprint(kind string, req any) (string, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("store: fingerprint: %w", err)
	}
	return HashBytes(append(append([]byte(kind), 0), b...)), nil
}

// WriteFileAtomic durably writes data to path on the real filesystem: temp
// file in the same directory, fsync, atomic rename over the target, then
// fsync of the directory so the rename itself survives a crash. A reader
// concurrently opening path sees either the old contents or the new, never
// a torn write.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return writeFileAtomicFS(OS, path, data, perm)
}

// writeFileAtomicFS is WriteFileAtomic over an explicit filesystem.
func writeFileAtomicFS(fsys FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	// On any failure past this point, remove the orphan temp file; its
	// removal failing is unactionable (the next Open still works).
	fail := func(err error) error {
		//lint:ignore errdrop best-effort cleanup of the temp file after the real error
		_ = fsys.Remove(tmp)
		return err
	}
	n, err := f.Write(data)
	if err == nil && n != len(data) {
		// A short write with a nil error violates io.Writer, but a faulty
		// filesystem is exactly what this layer must not trust.
		err = io.ErrShortWrite
	}
	if err != nil {
		//lint:ignore errdrop the write error is the one to report
		_ = f.Close()
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errdrop the sync error is the one to report
		_ = f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := fsys.Chmod(tmp, perm); err != nil {
		return fail(err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fail(err)
	}
	return fsys.SyncDir(dir)
}
