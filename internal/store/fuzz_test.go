package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreManifest drives Get over adversarial on-disk state: an arbitrary
// manifest file next to an arbitrary payload. The invariants under fuzz:
// Get never panics; it returns payload bytes only when the manifest is
// well-formed, matches the key, and the payload re-hashes to the manifest's
// digest (in which case the returned bytes are exactly the payload); and a
// subsequent Put/Get round-trip over the same key always repairs the slot.
func FuzzStoreManifest(f *testing.F) {
	fp := HashBytes([]byte("fuzz-seed"))
	valid := Manifest{
		Schema:         ManifestSchema,
		Kind:           KindDesign,
		Fingerprint:    fp,
		ArtifactSchema: SchemaVersion,
		PayloadSHA256:  HashBytes([]byte("{}\n")),
		PayloadBytes:   3,
		CreatedUnix:    1,
	}
	vb, err := json.Marshal(&valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(vb, []byte("{}\n"))
	f.Add([]byte("{broken"), []byte("{}\n"))
	f.Add([]byte(`{"schema":"other"}`), []byte("{}\n"))
	f.Add(bytes.Replace(vb, []byte(KindDesign), []byte(KindEval), 1), []byte("{}\n"))
	f.Add(vb, []byte("tampered"))
	f.Add([]byte("null"), []byte{})
	f.Add([]byte(`{"payload_bytes":-1}`), []byte{0xff, 0x00})

	f.Fuzz(func(t *testing.T, manifest, payload []byte) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		dir := s.objectDir(KindDesign, fp)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "payload.json"), payload, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		got, m, err := s.Get(KindDesign, fp)
		if err == nil {
			if !bytes.Equal(got, payload) {
				t.Fatalf("Get returned bytes that differ from the payload file")
			}
			if m.Kind != KindDesign || m.Fingerprint != fp || m.Schema != ManifestSchema {
				t.Fatalf("Get accepted a manifest for the wrong key: %+v", m)
			}
			if HashBytes(payload) != m.PayloadSHA256 || int64(len(payload)) != m.PayloadBytes {
				t.Fatalf("Get accepted an unverified payload")
			}
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get failed outside the corruption contract: %v", err)
		}

		// Whatever the fuzzer left behind, a Put must repair the slot.
		want := append(append([]byte{}, payload...), '\n')
		if _, err := s.Put(KindDesign, fp, SchemaVersion, want); err != nil {
			t.Fatalf("Put over fuzzed state failed: %v", err)
		}
		back, _, err := s.Get(KindDesign, fp)
		if err != nil || !bytes.Equal(back, want) {
			t.Fatalf("round-trip after repair failed: %v", err)
		}
	})
}
