package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t)
	payload := []byte(`{"schema":1,"x":[1,2,3]}` + "\n")
	fp, err := Fingerprint(KindEval, EvalRequest{K: 4, Alg: "DOR"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Has(KindEval, fp) {
		t.Fatal("empty store claims to hold the artifact")
	}
	m, err := s.Put(KindEval, fp, SchemaVersion, payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.PayloadSHA256 != HashBytes(payload) || m.PayloadBytes != int64(len(payload)) {
		t.Fatalf("manifest does not describe the payload: %+v", m)
	}
	got, gm, err := s.Get(KindEval, fp)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip mismatch: %q", got)
	}
	if gm != m {
		t.Fatalf("manifest round-trip mismatch: %+v != %+v", gm, m)
	}
	// Overwrite replaces atomically.
	payload2 := []byte(`{"schema":1,"x":[9]}` + "\n")
	m2, err := s.Put(KindEval, fp, SchemaVersion, payload2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = s.Get(KindEval, fp)
	if err != nil || string(got) != string(payload2) {
		t.Fatalf("overwrite not visible: %q, %v", got, err)
	}
	// The superseded payload file was swept: only the manifest and the
	// committed payload remain.
	ents, err := os.ReadDir(s.objectDir(KindEval, fp))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "manifest.json" && e.Name() != m2.payloadFile() {
			t.Errorf("stale file %q survived the post-commit sweep", e.Name())
		}
	}
	if len(ents) != 2 {
		t.Fatalf("object dir has %d entries, want manifest + payload", len(ents))
	}
}

// TestLegacyPayloadLayoutReadable pins read compatibility with stores
// written before the content-named payload layout: a manifest without
// payload_file reads the plain payload.json beside it.
func TestLegacyPayloadLayoutReadable(t *testing.T) {
	s := testStore(t)
	fp := HashBytes([]byte("legacy"))
	payload := []byte(`{"v":"legacy"}` + "\n")
	dir := s.objectDir(KindEval, fp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	m := Manifest{
		Schema:         ManifestSchema,
		Kind:           KindEval,
		Fingerprint:    fp,
		ArtifactSchema: SchemaVersion,
		PayloadSHA256:  HashBytes(payload),
		PayloadBytes:   int64(len(payload)),
		CreatedUnix:    1,
	}
	mb, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "payload.json"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mb, 0o644); err != nil {
		t.Fatal(err)
	}
	got, gm, err := s.Get(KindEval, fp)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("legacy artifact unreadable: %q, %v", got, err)
	}
	if gm.payloadFile() != "payload.json" {
		t.Fatalf("legacy manifest resolved payload file %q", gm.payloadFile())
	}
	// A manifest whose payload_file tries to escape the slot is corrupt,
	// not followed.
	m.PayloadFile = "../../../etc/passwd"
	mb, err = json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(KindEval, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("escaping payload_file: got %v, want ErrCorrupt", err)
	}
}

func TestGetMissing(t *testing.T) {
	s := testStore(t)
	fp := HashBytes([]byte("nope"))
	if _, _, err := s.Get(KindDesign, fp); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing artifact: got %v, want ErrNotFound", err)
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	s := testStore(t)
	fp := HashBytes([]byte("req"))
	payload := []byte(`{"v":1}` + "\n")
	m, err := s.Put(KindDesign, fp, SchemaVersion, payload)
	if err != nil {
		t.Fatal(err)
	}
	pp := filepath.Join(s.objectDir(KindDesign, fp), m.payloadFile())

	// Flipped payload byte: hash mismatch.
	bad := append([]byte{}, payload...)
	bad[2] ^= 0x40
	if err := os.WriteFile(pp, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(KindDesign, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered payload: got %v, want ErrCorrupt", err)
	}

	// Truncated payload: size mismatch.
	if err := os.WriteFile(pp, payload[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(KindDesign, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: got %v, want ErrCorrupt", err)
	}

	// Unparseable manifest.
	mp := filepath.Join(s.objectDir(KindDesign, fp), "manifest.json")
	if err := os.WriteFile(mp, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(KindDesign, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("broken manifest: got %v, want ErrCorrupt", err)
	}

	// A corrupt artifact is repaired by Put.
	if _, err := s.Put(KindDesign, fp, SchemaVersion, payload); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s.Get(KindDesign, fp); err != nil || string(got) != string(payload) {
		t.Fatalf("re-put did not repair: %q, %v", got, err)
	}
}

func TestManifestKeyMismatchIsCorrupt(t *testing.T) {
	s := testStore(t)
	fpA := HashBytes([]byte("a"))
	fpB := HashBytes([]byte("b"))
	payload := []byte("{}\n")
	m, err := s.Put(KindEval, fpA, SchemaVersion, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Copy A's object directory under B's key: the embedded fingerprint no
	// longer matches the path.
	srcDir, dstDir := s.objectDir(KindEval, fpA), s.objectDir(KindEval, fpB)
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{m.payloadFile(), "manifest.json"} {
		b, err := os.ReadFile(filepath.Join(srcDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, f), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get(KindEval, fpB); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("relocated artifact: got %v, want ErrCorrupt", err)
	}
}

func TestDelete(t *testing.T) {
	s := testStore(t)
	fp := HashBytes([]byte("x"))
	if _, err := s.Put(KindPareto, fp, SchemaVersion, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(KindPareto, fp); err != nil {
		t.Fatal(err)
	}
	if s.Has(KindPareto, fp) {
		t.Fatal("deleted artifact still present")
	}
	if err := s.Delete(KindPareto, fp); err != nil {
		t.Fatalf("double delete errored: %v", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := testStore(t)
	fp := HashBytes([]byte("x"))
	bad := [][2]string{
		{"", fp},
		{"../escape", fp},
		{"Eval", fp},
		{KindEval, "short"},
		{KindEval, "ZZ" + fp[2:]},
		{KindEval, "../../etc/passwd0000"},
	}
	for _, kv := range bad {
		if _, err := s.Put(kv[0], kv[1], SchemaVersion, []byte("{}")); err == nil {
			t.Errorf("Put(%q, %q) accepted an invalid key", kv[0], kv[1])
		}
		if _, _, err := s.Get(kv[0], kv[1]); err == nil {
			t.Errorf("Get(%q, %q) accepted an invalid key", kv[0], kv[1])
		}
		if _, err := s.CheckpointPath(kv[0], kv[1]); err == nil {
			t.Errorf("CheckpointPath(%q, %q) accepted an invalid key", kv[0], kv[1])
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	a, err := Fingerprint(KindDesign, DesignRequest{K: 4, Kind: DesignWorstCase})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(KindDesign, DesignRequest{K: 4, Kind: DesignWorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal requests produced different fingerprints")
	}
	c, err := Fingerprint(KindDesign, DesignRequest{K: 4, Kind: DesignWorstCase, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct requests collided")
	}
	// Kind participates: the same body under another kind is another key.
	d, err := Fingerprint(KindEval, DesignRequest{K: 4, Kind: DesignWorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("kind does not separate fingerprints")
	}
	if err := validKey(KindDesign, a); err != nil {
		t.Fatalf("fingerprint fails its own key validation: %v", err)
	}
}

func TestCheckpointPath(t *testing.T) {
	s := testStore(t)
	fp := HashBytes([]byte("ck"))
	p, err := s.CheckpointPath(KindDesign, fp)
	if err != nil {
		t.Fatal(err)
	}
	// The directory must exist so the design layer can write immediately.
	if err := os.WriteFile(p, []byte("state"), 0o644); err != nil {
		t.Fatalf("checkpoint path not writable: %v", err)
	}
	p2, err := s.CheckpointPath(KindDesign, fp)
	if err != nil || p2 != p {
		t.Fatalf("checkpoint path not stable: %q vs %q (%v)", p, p2, err)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "two" {
		t.Fatalf("read back %q, %v", b, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestEncodeAppendsNewline(t *testing.T) {
	b, err := Encode(EvalArtifact{Schema: SchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 || b[len(b)-1] != '\n' {
		t.Fatalf("encoded payload not newline-terminated: %q", b)
	}
}
