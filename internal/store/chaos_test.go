//go:build storechaos

package store

// Crash-consistency harness and fault-injection tests for the store's
// commit protocol, compiled only under -tags storechaos. The harness
// records the filesystem operation trace of a clean commit, then replays
// the commit once per operation with a crash scripted at exactly that
// index, recovers the filesystem to its durable image, reopens the store,
// and asserts the artifact is either fully committed or cleanly absent —
// never torn. This is the proof behind the package doc's claim that the
// manifest rename is the single atomic commit point.

import (
	"errors"
	"fmt"
	"testing"
)

var (
	chaosOld = []byte(`{"v":"old"}` + "\n")
	chaosNew = []byte(`{"v":"new"}` + "\n")
)

func openChaosStore(t *testing.T, fsys *ChaosFS) *Store {
	t.Helper()
	s, err := OpenFS(fsys, "/store")
	if err != nil {
		t.Fatalf("open chaos store: %v", err)
	}
	return s
}

// crashScenario is one store mutation the harness kills at every
// filesystem operation. prep seeds pre-existing state with no faults
// armed; run is the victim operation; old/absent say which recovered
// outcomes besides the fully-committed new state are legal.
type crashScenario struct {
	name        string
	prep        func(t *testing.T, s *Store)
	run         func(s *Store) error
	allowOld    bool // recovered Get may return the pre-existing payload
	allowNew    bool // recovered Get may return the new payload
	allowAbsent bool // recovered Get may return ErrNotFound
}

func crashScenarios() []crashScenario {
	fp := HashBytes([]byte("crash-victim"))
	return []crashScenario{
		{
			name:        "fresh-put",
			prep:        func(t *testing.T, s *Store) {},
			run:         func(s *Store) error { _, err := s.Put(KindEval, fp, SchemaVersion, chaosNew); return err },
			allowNew:    true,
			allowAbsent: true,
		},
		{
			name: "overwrite-put",
			prep: func(t *testing.T, s *Store) {
				if _, err := s.Put(KindEval, fp, SchemaVersion, chaosOld); err != nil {
					t.Fatalf("seed put: %v", err)
				}
			},
			run:      func(s *Store) error { _, err := s.Put(KindEval, fp, SchemaVersion, chaosNew); return err },
			allowOld: true,
			allowNew: true,
		},
		{
			name: "delete",
			prep: func(t *testing.T, s *Store) {
				if _, err := s.Put(KindEval, fp, SchemaVersion, chaosOld); err != nil {
					t.Fatalf("seed put: %v", err)
				}
			},
			run:         func(s *Store) error { return s.Delete(KindEval, fp) },
			allowOld:    true,
			allowAbsent: true,
		},
	}
}

// checkRecovered classifies the recovered artifact state and fails unless
// it is one of the scenario's legal outcomes. Any other state — corrupt,
// torn bytes, an unexpected error — is a crash-consistency violation.
func checkRecovered(t *testing.T, s *Store, sc crashScenario, opErr error, opLine string) {
	t.Helper()
	fp := HashBytes([]byte("crash-victim"))
	got, _, err := s.Get(KindEval, fp)
	switch {
	case err == nil && string(got) == string(chaosNew):
		if !sc.allowNew {
			t.Errorf("crash at %q: recovered to new payload, which %s forbids", opLine, sc.name)
		}
	case err == nil && string(got) == string(chaosOld):
		if !sc.allowOld {
			t.Errorf("crash at %q: recovered to old payload, which %s forbids", opLine, sc.name)
		}
	case errors.Is(err, ErrNotFound):
		if !sc.allowAbsent {
			t.Errorf("crash at %q: recovered to absent, which %s forbids", opLine, sc.name)
		}
	case errors.Is(err, ErrCorrupt):
		t.Errorf("crash at %q: TORN artifact after recovery: %v", opLine, err)
	case err == nil:
		t.Errorf("crash at %q: TORN artifact: recovered payload %q matches neither version", opLine, got)
	default:
		t.Errorf("crash at %q: unexpected recovery error: %v", opLine, err)
	}
	// A successful return from the victim op promises the commit is
	// durable: the recovered store must serve exactly the new state.
	if opErr == nil {
		if sc.name == "delete" {
			if !errors.Is(err, ErrNotFound) {
				t.Errorf("crash at %q: Delete returned success but artifact recovered: %v", opLine, err)
			}
		} else if err != nil || string(got) != string(chaosNew) {
			t.Errorf("crash at %q: Put returned success but recovery serves %q, %v", opLine, got, err)
		}
	}
}

func runCrashHarness(t *testing.T, partial bool) {
	for _, sc := range crashScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Clean run: record the operation trace the crash loop indexes.
			fsys := NewChaosFS(1)
			s := openChaosStore(t, fsys)
			sc.prep(t, s)
			fsys.SetScript(FSScript{Seed: 7})
			if err := sc.run(s); err != nil {
				t.Fatalf("clean run failed: %v", err)
			}
			trace := fsys.Trace()
			if len(trace) < 3 {
				t.Fatalf("suspiciously short trace %v: harness is not seeing the commit protocol", trace)
			}
			fp := HashBytes([]byte("crash-victim"))

			for i := 1; i <= len(trace); i++ {
				fsys := NewChaosFS(1)
				s := openChaosStore(t, fsys)
				sc.prep(t, s)
				fsys.SetScript(FSScript{Seed: uint64(i), CrashAtOp: i, CrashPartial: partial})
				opErr := sc.run(s)
				if opErr != nil && !errors.Is(opErr, ErrCrashed) {
					t.Fatalf("crash at %q: op failed with a non-crash error: %v", trace[i-1], opErr)
				}
				fsys.Recover()
				fsys.SetScript(FSScript{})
				s2 := openChaosStore(t, fsys)
				checkRecovered(t, s2, sc, opErr, trace[i-1])

				// The store must heal: a fresh commit after recovery
				// succeeds and reads back, whatever residue the crash left.
				if _, err := s2.Put(KindEval, fp, SchemaVersion, chaosNew); err != nil {
					t.Fatalf("crash at %q: post-recovery Put does not heal: %v", trace[i-1], err)
				}
				if got, _, err := s2.Get(KindEval, fp); err != nil || string(got) != string(chaosNew) {
					t.Fatalf("crash at %q: healed artifact unreadable: %q, %v", trace[i-1], got, err)
				}
			}
		})
	}
}

// TestCrashConsistencyEveryOp is the headline harness: a crash at every
// filesystem operation of Put (fresh and overwriting) and Delete leaves
// the reopened store committed-or-absent, never torn.
func TestCrashConsistencyEveryOp(t *testing.T) { runCrashHarness(t, false) }

// TestCrashConsistencyPartialWrites repeats the harness with crashes that
// land mid-write applying a seed-determined prefix of the buffer first —
// the write torn by the power loss itself.
func TestCrashConsistencyPartialWrites(t *testing.T) { runCrashHarness(t, true) }

// TestInjectedFaultsFailCleanly proves every scripted fault makes Put fail
// with the injected error while leaving the previously committed artifact
// intact, and that the store heals once the fault clears.
func TestInjectedFaultsFailCleanly(t *testing.T) {
	fp := HashBytes([]byte("fault-victim"))
	cases := []struct {
		name    string
		script  FSScript
		wantErr error
	}{
		{"write-eio", FSScript{FailWrites: 1}, ErrInjectedEIO},
		{"short-write", FSScript{Seed: 3, ShortWrites: 1}, ErrInjectedEIO},
		{"enospc", FSScript{ENOSPCBudget: 5}, ErrInjectedENOSPC},
		{"fsync-eio", FSScript{FailSyncs: 1}, ErrInjectedEIO},
		{"rename-eio", FSScript{FailRenames: 1}, ErrInjectedEIO},
		{"syncdir-eio", FSScript{FailSyncDirs: 1}, ErrInjectedEIO},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fsys := NewChaosFS(1)
			s := openChaosStore(t, fsys)
			if _, err := s.Put(KindEval, fp, SchemaVersion, chaosOld); err != nil {
				t.Fatalf("seed put: %v", err)
			}
			fsys.SetScript(tc.script)
			_, err := s.Put(KindEval, fp, SchemaVersion, chaosNew)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("faulty Put: got %v, want %v", err, tc.wantErr)
			}
			// The committed artifact survived the failed overwrite.
			if got, _, gerr := s.Get(KindEval, fp); gerr != nil || string(got) != string(chaosOld) {
				t.Fatalf("committed artifact damaged by failed Put: %q, %v", got, gerr)
			}
			// Fault cleared: the overwrite goes through.
			fsys.SetScript(FSScript{})
			if _, err := s.Put(KindEval, fp, SchemaVersion, chaosNew); err != nil {
				t.Fatalf("healed Put: %v", err)
			}
			if got, _, gerr := s.Get(KindEval, fp); gerr != nil || string(got) != string(chaosNew) {
				t.Fatalf("healed artifact unreadable: %q, %v", got, gerr)
			}
		})
	}
}

// TestLyingFsyncBreaksCommit is the negative control: with fsyncs that
// acknowledge without persisting, a "successful" Put does not survive a
// crash intact — proving the commit protocol's safety genuinely rests on
// honest fsync, i.e. the harness would catch a protocol that skipped it.
func TestLyingFsyncBreaksCommit(t *testing.T) {
	fp := HashBytes([]byte("liar-victim"))
	fsys := NewChaosFS(1)
	s := openChaosStore(t, fsys)
	fsys.SetScript(FSScript{Seed: 5, LieSyncs: 2})
	if _, err := s.Put(KindEval, fp, SchemaVersion, chaosNew); err != nil {
		t.Fatalf("put over lying fsync should report success: %v", err)
	}
	fsys.Crash()
	fsys.Recover()
	fsys.SetScript(FSScript{})
	s2 := openChaosStore(t, fsys)
	if _, _, err := s2.Get(KindEval, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying fsync survived the crash undetected: %v", err)
	}
}

// TestUnsyncedContentRecoversEmpty pins the ChaosFS durability model the
// harness relies on: a file whose name was made durable but whose content
// was never fsynced reads back empty after a crash — the classic
// zero-length file.
func TestUnsyncedContentRecoversEmpty(t *testing.T) {
	fsys := NewChaosFS(1)
	if err := fsys.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, tmp, err := fsys.CreateTemp("/d", "t-")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("unsynced bytes")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(tmp, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	fsys.Crash()
	fsys.Recover()
	b, err := fsys.ReadFile("/d/f")
	if err != nil {
		t.Fatalf("durable name lost: %v", err)
	}
	if len(b) != 0 {
		t.Fatalf("unsynced content survived the crash: %q", b)
	}
}

// TestRenameNotDurableWithoutSyncDir pins the other half of the model: a
// rename whose parent directory was never fsynced vanishes at the crash.
func TestRenameNotDurableWithoutSyncDir(t *testing.T) {
	fsys := NewChaosFS(1)
	if err := fsys.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, tmp, err := fsys.CreateTemp("/d", "t-")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(tmp, "/d/f"); err != nil {
		t.Fatal(err)
	}
	fsys.Crash()
	fsys.Recover()
	if _, err := fsys.ReadFile("/d/f"); err == nil {
		t.Fatal("rename survived a crash without a directory sync")
	}
}

// TestChaosStoreRoundTrip sanity-checks that ChaosFS implements enough of
// FS for the store's full surface: put, get, has, list, delete.
func TestChaosStoreRoundTrip(t *testing.T) {
	fsys := NewChaosFS(1)
	s := openChaosStore(t, fsys)
	fp := HashBytes([]byte("roundtrip"))
	if _, err := s.Put(KindPareto, fp, SchemaVersion, chaosNew); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s.Get(KindPareto, fp); err != nil || string(got) != string(chaosNew) {
		t.Fatalf("get: %q, %v", got, err)
	}
	if !s.Has(KindPareto, fp) {
		t.Fatal("Has misses a committed artifact")
	}
	fps, err := s.List(KindPareto)
	if err != nil || len(fps) != 1 || fps[0] != fp {
		t.Fatalf("list: %v, %v", fps, err)
	}
	if err := s.Delete(KindPareto, fp); err != nil {
		t.Fatal(err)
	}
	if s.Has(KindPareto, fp) {
		t.Fatal("deleted artifact still present")
	}
}

// TestTraceIsDeterministic pins that identical scripts over identical
// operations produce identical traces — the property that makes the
// crash-at-index replay meaningful.
func TestTraceIsDeterministic(t *testing.T) {
	run := func() []string {
		fsys := NewChaosFS(1)
		s := openChaosStore(t, fsys)
		fsys.SetScript(FSScript{Seed: 7})
		fp := HashBytes([]byte("det"))
		if _, err := s.Put(KindEval, fp, SchemaVersion, chaosNew); err != nil {
			t.Fatal(err)
		}
		return fsys.Trace()
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("traces differ:\n%v\n%v", a, b)
	}
}
