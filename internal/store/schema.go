package store

import (
	"encoding/json"
	"fmt"
)

// This file defines the schema-versioned JSON blobs the store holds: one
// canonical request type per artifact kind (the fingerprint input) and one
// artifact type (the payload). The types are deliberately free of imports
// from the rest of the module — flows are plain [][]float64, algorithms are
// their names — so the daemon, the CLI's -json mode, and external tooling
// all speak exactly the same bytes. Encode is the single serializer both
// producers use, which is what makes CLI and daemon output diffable
// byte-for-byte.

// SchemaVersion is the artifact schema version stamped into every payload
// and manifest; bump it when any artifact type changes incompatibly.
const SchemaVersion = 1

// Design kinds accepted in DesignRequest.Kind.
const (
	// DesignWorstCase is the pure worst-case-throughput optimum
	// (design.WorstCaseOptimal), optionally locality-constrained when
	// HNorm > 0 (design.WorstCaseAtLocality).
	DesignWorstCase = "wcopt"
	// DesignMinLocality is the lexicographic throughput-then-locality
	// design (design.MinLocalityAtWorstCase).
	DesignMinLocality = "minloc"
)

// checkTopology validates the K/Topology pair shared by the request types:
// the legacy radix form (Topology empty, K the torus radix) and the explicit
// "family:spec" form, which must travel alone so one logical request cannot
// fingerprint two ways. Family existence is resolved by the compute layer,
// like algorithm names; here only the shape is checked. The empty Topology
// is omitted from the canonical encoding, which is what keeps pre-existing
// radix-form fingerprints bit-for-bit stable.
func checkTopology(k int, topology string) error {
	if topology == "" {
		if k < 2 {
			return fmt.Errorf("radix %d out of range (need k >= 2)", k)
		}
		return nil
	}
	if k != 0 {
		return fmt.Errorf("k and topology are mutually exclusive (got k=%d, topology=%q)", k, topology)
	}
	name, spec, ok := cutColon(topology)
	if !ok || name == "" || spec == "" {
		return fmt.Errorf("malformed topology %q (want family:spec, e.g. %q)", topology, "torus3d:4")
	}
	return nil
}

// cutColon splits s around the first ':' without importing strings into the
// schema types' dependency surface.
func cutColon(s string) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// EvalRequest asks for the paper's metrics of a closed-form algorithm.
// Samples == 0 skips the average case (and then Seed is ignored and must be
// left zero so equivalent requests share a fingerprint). The network is
// either the legacy radix form (K set, Topology empty: a k-ary 2-cube) or an
// explicit "family:spec" Topology with K zero.
type EvalRequest struct {
	K        int    `json:"k,omitempty"`
	Topology string `json:"topology,omitempty"`
	Alg      string `json:"alg"`
	Samples  int    `json:"samples,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// Validate checks the request's static shape (not algorithm or family
// existence, which the compute layer resolves).
func (r EvalRequest) Validate() error {
	if err := checkTopology(r.K, r.Topology); err != nil {
		return err
	}
	if r.Alg == "" {
		return fmt.Errorf("missing algorithm name")
	}
	if r.Samples < 0 {
		return fmt.Errorf("negative sample count %d", r.Samples)
	}
	if r.Samples == 0 && r.Seed != 0 {
		return fmt.Errorf("seed set without samples")
	}
	return nil
}

// Fingerprint returns the request's content address.
func (r EvalRequest) Fingerprint() (string, error) { return Fingerprint(KindEval, r) }

// EvalArtifact is the stored result of an EvalRequest: tcr.Metrics plus the
// normalizing network capacity.
type EvalArtifact struct {
	Schema           int         `json:"schema"`
	Request          EvalRequest `json:"request"`
	NetworkCapacity  float64     `json:"network_capacity"`
	HAvg             float64     `json:"h_avg"`
	HNorm            float64     `json:"h_norm"`
	Capacity         float64     `json:"capacity"`
	CapacityFraction float64     `json:"capacity_fraction"`
	GammaWC          float64     `json:"gamma_wc"`
	WCFraction       float64     `json:"wc_fraction"`
	AvgFraction      float64     `json:"avg_fraction,omitempty"`
}

// WorstPermRequest asks for the adversarial permutation the Hungarian
// oracle finds for an algorithm.
type WorstPermRequest struct {
	K   int    `json:"k"`
	Alg string `json:"alg"`
}

func (r WorstPermRequest) Validate() error {
	if r.K < 2 {
		return fmt.Errorf("radix %d out of range (need k >= 2)", r.K)
	}
	if r.Alg == "" {
		return fmt.Errorf("missing algorithm name")
	}
	return nil
}

// Fingerprint returns the request's content address.
func (r WorstPermRequest) Fingerprint() (string, error) { return Fingerprint(KindWorstPerm, r) }

// WorstPermArtifact is the stored worst-case certificate: the exact
// worst-case load and a permutation achieving it (Perm[s] = d).
type WorstPermArtifact struct {
	Schema     int              `json:"schema"`
	Request    WorstPermRequest `json:"request"`
	GammaWC    float64          `json:"gamma_wc"`
	WCFraction float64          `json:"wc_fraction"`
	Perm       []int            `json:"perm"`
}

// DesignRequest asks for an LP routing design. Every field shapes the
// result and therefore the fingerprint; budgets (round limits, deadlines)
// are deliberately absent — they ride along in the wire request and the
// design Options, so a budget-killed run and its resumed completion share
// one artifact slot and one checkpoint.
type DesignRequest struct {
	K        int    `json:"k,omitempty"`
	Topology string `json:"topology,omitempty"`
	Kind     string `json:"kind"`
	// HNorm > 0 constrains DesignWorstCase to a normalized locality
	// budget (one Pareto point); 0 leaves locality free.
	HNorm float64 `json:"hnorm,omitempty"`
	// Fold and Cuts mirror design.Fold / design.Cuts; zero is the default
	// strategy.
	Fold int `json:"fold,omitempty"`
	Cuts int `json:"cuts,omitempty"`
	// Tol and Slack mirror design.Options; zero selects the defaults.
	Tol   float64 `json:"tol,omitempty"`
	Slack float64 `json:"slack,omitempty"`
}

func (r DesignRequest) Validate() error {
	if err := checkTopology(r.K, r.Topology); err != nil {
		return err
	}
	switch r.Kind {
	case DesignWorstCase:
		//lint:ignore floatcmp 0 is the JSON omitempty sentinel for "unconstrained", not a computed value
		if r.HNorm != 0 && r.HNorm < 1 {
			return fmt.Errorf("hnorm %v out of range (need >= 1, or 0 for unconstrained)", r.HNorm)
		}
	case DesignMinLocality:
		//lint:ignore floatcmp 0 is the JSON omitempty sentinel; any explicit hnorm is invalid here
		if r.HNorm != 0 {
			return fmt.Errorf("hnorm is not a %s parameter", DesignMinLocality)
		}
	default:
		return fmt.Errorf("unknown design kind %q", r.Kind)
	}
	if r.Fold < 0 || r.Fold > 1 || r.Cuts < 0 || r.Cuts > 1 {
		return fmt.Errorf("fold/cuts out of range")
	}
	if r.Tol < 0 || r.Slack < 0 {
		return fmt.Errorf("negative tolerance or slack")
	}
	return nil
}

// Fingerprint returns the request's content address.
func (r DesignRequest) Fingerprint() (string, error) { return Fingerprint(KindDesign, r) }

// DesignArtifact is the stored outcome of a design solve: the certified
// metrics and the full folded-then-unfolded flow table, from which an
// executable routing table can be recovered by path decomposition at any
// later time. Only certified results are stored.
type DesignArtifact struct {
	Schema     int           `json:"schema"`
	Request    DesignRequest `json:"request"`
	Objective  float64       `json:"objective"`
	GammaWC    float64       `json:"gamma_wc"`
	HAvg       float64       `json:"h_avg"`
	HNorm      float64       `json:"h_norm"`
	Rounds     int           `json:"rounds"`
	Iterations int           `json:"iterations"`
	Certified  bool          `json:"certified"`
	Reason     string        `json:"reason,omitempty"`
	// Flow[rel][c] is the designed routing function's channel-load table
	// (eval.Flow.X).
	Flow [][]float64 `json:"flow,omitempty"`
}

// ParetoRequest asks for Figure 1's optimal worst-case tradeoff curve:
// Points locality targets evenly spaced over [HMin, HMax].
type ParetoRequest struct {
	K      int     `json:"k"`
	HMin   float64 `json:"hmin"`
	HMax   float64 `json:"hmax"`
	Points int     `json:"points"`
	Fold   int     `json:"fold,omitempty"`
	Cuts   int     `json:"cuts,omitempty"`
	Tol    float64 `json:"tol,omitempty"`
}

func (r ParetoRequest) Validate() error {
	if r.K < 2 {
		return fmt.Errorf("radix %d out of range (need k >= 2)", r.K)
	}
	if r.Points < 1 || r.Points > 1024 {
		return fmt.Errorf("points %d out of range (need 1..1024)", r.Points)
	}
	if r.HMin < 1 || r.HMax < r.HMin {
		return fmt.Errorf("locality range [%v, %v] invalid (need 1 <= hmin <= hmax)", r.HMin, r.HMax)
	}
	if r.Fold < 0 || r.Fold > 1 || r.Cuts < 0 || r.Cuts > 1 {
		return fmt.Errorf("fold/cuts out of range")
	}
	if r.Tol < 0 {
		return fmt.Errorf("negative tolerance")
	}
	return nil
}

// Fingerprint returns the request's content address.
func (r ParetoRequest) Fingerprint() (string, error) { return Fingerprint(KindPareto, r) }

// ParetoPoint is one stored sample of a tradeoff curve.
type ParetoPoint struct {
	HNorm float64 `json:"h_norm"`
	Theta float64 `json:"theta"`
	Gamma float64 `json:"gamma"`
}

// ParetoArtifact is the stored tradeoff curve.
type ParetoArtifact struct {
	Schema  int           `json:"schema"`
	Request ParetoRequest `json:"request"`
	Points  []ParetoPoint `json:"points"`
}

// Encode is the canonical artifact serializer: compact JSON plus a trailing
// newline. Every producer (daemon, CLI -json) must encode through here so
// stored payloads, served responses, and CLI output are byte-identical.
func Encode(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return append(b, '\n'), nil
}
