package eval

import (
	"math"
	"math/rand"
	"testing"

	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

func flowOf(t *testing.T, k int, alg routing.Algorithm) *Flow {
	t.Helper()
	return FromAlgorithm(topo.NewTorus(k), alg)
}

func TestDORCapacityK8(t *testing.T) {
	// For even k, minimal routing balances uniform traffic to k/8 load per
	// channel; k=8 gives exactly 1.0, i.e. capacity = 1 injection fraction.
	f := flowOf(t, 8, routing.DOR{})
	if got := f.GammaMax(traffic.Uniform(64)); math.Abs(got-1) > 1e-9 {
		t.Fatalf("uniform gamma_max = %v, want 1", got)
	}
	if got := f.Capacity(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("capacity = %v, want 1", got)
	}
}

func TestCapacityScalesWithRadix(t *testing.T) {
	// k=4: uniform load k/8 = 0.5 -> capacity 2.
	f := flowOf(t, 4, routing.DOR{})
	if got := f.Capacity(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("k=4 capacity = %v, want 2", got)
	}
}

func TestHAvgMatchesAlgorithms(t *testing.T) {
	tor := topo.NewTorus(8)
	f := FromAlgorithm(tor, routing.VAL{})
	if got, want := f.HAvg(), 2*tor.MeanMinDist(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("VAL H = %v, want %v", got, want)
	}
	if got := FromAlgorithm(tor, routing.DOR{}).HNorm(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("DOR normalized H = %v, want 1", got)
	}
}

func TestVALWorstCaseIsHalfCapacity(t *testing.T) {
	f := flowOf(t, 8, routing.VAL{})
	wc, perm := f.WorstCase()
	if math.Abs(wc-2) > 1e-6 {
		t.Fatalf("VAL gamma_wc = %v, want 2", wc)
	}
	if len(perm) != 64 {
		t.Fatalf("worst permutation has wrong size %d", len(perm))
	}
	frac := f.WorstCaseThroughput() / NetworkCapacity(f.T)
	if math.Abs(frac-0.5) > 1e-6 {
		t.Fatalf("VAL worst-case fraction = %v, want 0.5", frac)
	}
}

func TestIVALKeepsOptimalWorstCase(t *testing.T) {
	f := flowOf(t, 8, routing.IVAL{})
	frac := f.WorstCaseThroughput() / NetworkCapacity(f.T)
	if math.Abs(frac-0.5) > 1e-6 {
		t.Fatalf("IVAL worst-case fraction = %v, want 0.5", frac)
	}
	if r := f.HNorm(); r < 1.55 || r > 1.68 {
		t.Fatalf("IVAL H ratio %v, expected about 1.61", r)
	}
}

func TestDORWorstCaseAtLeastTornado(t *testing.T) {
	tor := topo.NewTorus(8)
	f := FromAlgorithm(tor, routing.DOR{})
	tornado := f.GammaMax(traffic.Tornado(tor))
	wc, _ := f.WorstCase()
	if wc < tornado-1e-9 {
		t.Fatalf("worst case %v below tornado load %v", wc, tornado)
	}
	// Tornado (shift 3) loads +x channels to 3 under DOR.
	if math.Abs(tornado-3) > 1e-9 {
		t.Fatalf("tornado gamma_max under DOR = %v, want 3", tornado)
	}
}

func TestWorstCaseDominatesSampledPermutations(t *testing.T) {
	tor := topo.NewTorus(5)
	rng := rand.New(rand.NewSource(2))
	for _, alg := range []routing.Algorithm{routing.DOR{}, routing.IVAL{}, routing.RLB{}} {
		f := FromAlgorithm(tor, alg)
		wc, _ := f.WorstCase()
		for trial := 0; trial < 30; trial++ {
			g := f.GammaMax(traffic.RandomPermutation(tor.N, rng))
			if g > wc+1e-9 {
				t.Fatalf("%s: sampled permutation load %v exceeds worst case %v", alg.Name(), g, wc)
			}
		}
		// The returned worst permutation must achieve the reported load on
		// some channel.
		_, perm := f.WorstCase()
		if g := f.GammaMax(traffic.Permutation(perm)); math.Abs(g-wc) > 1e-9 {
			t.Fatalf("%s: worst permutation achieves %v, reported %v", alg.Name(), g, wc)
		}
	}
}

func TestChannelLoadTotalsMatchPathLength(t *testing.T) {
	// sum_c gamma_c(R, Lambda) == sum_{s,d} lambda[s][d] * E[len(path s->d)].
	tor := topo.NewTorus(6)
	rng := rand.New(rand.NewSource(3))
	for _, alg := range []routing.Algorithm{routing.DOR{}, routing.VAL{}, routing.ROMM{}} {
		f := FromAlgorithm(tor, alg)
		lam := traffic.RandomDoublyStochastic(tor.N, rng)
		var got float64
		for _, l := range f.ChannelLoads(lam) {
			got += l
		}
		var want float64
		for s := 0; s < tor.N; s++ {
			for d := 0; d < tor.N; d++ {
				var elen float64
				for _, w := range alg.PairPaths(tor, topo.Node(s), topo.Node(d)) {
					elen += w.Prob * float64(w.Path.Len())
				}
				want += lam.L[s][d] * elen
			}
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("%s: total load %v, want %v", alg.Name(), got, want)
		}
	}
}

func TestConservation(t *testing.T) {
	tor := topo.NewTorus(5)
	for _, alg := range []routing.Algorithm{
		routing.DOR{}, routing.VAL{}, routing.IVAL{}, routing.ROMM{}, routing.RLB{},
	} {
		f := FromAlgorithm(tor, alg)
		if e := f.ConservationError(); e > 1e-9 {
			t.Errorf("%s: conservation error %v", alg.Name(), e)
		}
	}
}

func TestAvgCaseForms(t *testing.T) {
	tor := topo.NewTorus(6)
	f := FromAlgorithm(tor, routing.IVAL{})
	samples := traffic.Sample(tor.N, 25, 99)
	res := f.AvgCase(samples)
	if res.MeanMaxLoad <= 0 {
		t.Fatal("nonpositive mean load")
	}
	// By AM-HM, 1/mean(load) <= mean(1/load); the approximation
	// underestimates the exact mean throughput.
	if res.ApproxThroughput > res.ExactMeanThroughput+1e-12 {
		t.Fatalf("approx %v exceeds exact %v (violates AM-HM)",
			res.ApproxThroughput, res.ExactMeanThroughput)
	}
	// Section 3.3 claims the approximation is good; allow a loose 15%
	// envelope at this small size.
	if rel := (res.ExactMeanThroughput - res.ApproxThroughput) / res.ExactMeanThroughput; rel > 0.15 {
		t.Fatalf("approximation off by %v%%", 100*rel)
	}
}

func TestInterpolatedWorstCaseBound(t *testing.T) {
	// Equation (13): gamma_wc(R') <= alpha*gamma_wc(R1)+(1-alpha)*gamma_wc(R2).
	tor := topo.NewTorus(6)
	f1 := FromAlgorithm(tor, routing.IVAL{})
	f2 := FromAlgorithm(tor, routing.DOR{})
	g1, _ := f1.WorstCase()
	g2, _ := f2.WorstCase()
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		fi := FromAlgorithm(tor, routing.Interpolated{A: routing.IVAL{}, B: routing.DOR{}, Alpha: alpha})
		gi, _ := fi.WorstCase()
		bound := alpha*g1 + (1-alpha)*g2
		if gi > bound+1e-9 {
			t.Fatalf("alpha=%v: interpolated wc %v exceeds bound %v", alpha, gi, bound)
		}
	}
}

func TestUniformLoadIsUniformForSymmetricAlgs(t *testing.T) {
	// DOR under uniform traffic loads every channel equally on a torus.
	tor := topo.NewTorus(8)
	f := FromAlgorithm(tor, routing.DOR{})
	loads := f.ChannelLoads(traffic.Uniform(tor.N))
	for c, l := range loads {
		if math.Abs(l-loads[0]) > 1e-9 {
			t.Fatalf("channel %d load %v differs from %v", c, l, loads[0])
		}
	}
}
