// Package eval computes the performance metrics of Section 2.3 and the
// throughput-centric cost functions of Section 3 for concrete routing
// functions: per-channel loads gamma_c(R, Lambda), the maximum channel load
// gamma_max, throughput Theta = 1/gamma_max, capacity (uniform-traffic
// throughput), average path length H_avg, exact worst-case throughput via
// the Hungarian separation oracle, and the sampled average-case throughput
// with both the paper's arithmetic-mean approximation and the exact
// harmonic form it approximates.
package eval

import (
	"context"
	"math"

	"tcr/internal/matching"
	"tcr/internal/par"
	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// Flow is the channel-load fingerprint of a translation-invariant oblivious
// routing function: X[rel][c] is the expected number of times a unit of
// traffic from node 0 to relative destination rel crosses channel c. Every
// metric in this package is a function of this table, which is exactly the
// "one flow variable per channel per commodity" reformulation of Section 4.
type Flow struct {
	T *topo.Torus
	X [][]float64
}

// NewFlow allocates an all-zero flow table.
func NewFlow(t *topo.Torus) *Flow {
	x := make([][]float64, t.N)
	buf := make([]float64, t.N*t.C)
	for i := range x {
		x[i] = buf[i*t.C : (i+1)*t.C]
	}
	return &Flow{T: t, X: x}
}

// FromAlgorithm builds the flow table of an algorithm by enumerating its
// path distributions from the canonical source, using all cores. It is the
// context-free form of FromAlgorithmCtx; with a background context the
// sharded evaluation cannot fail.
func FromAlgorithm(t *topo.Torus, alg routing.Algorithm) *Flow {
	f, err := FromAlgorithmCtx(context.Background(), t, alg, 0)
	mustNil(err)
	return f
}

// FromAlgorithmCtx builds the flow table with the per-commodity enumeration
// sharded across at most workers goroutines (see par.Workers for the budget
// semantics). Each relative destination owns exactly one row of the table,
// so the shards are disjoint and the result is bit-for-bit identical for
// every worker count. Algorithm implementations must therefore be safe for
// concurrent PairPaths calls; all algorithms in internal/routing are
// stateless or read-only and qualify.
func FromAlgorithmCtx(ctx context.Context, t *topo.Torus, alg routing.Algorithm, workers int) (*Flow, error) {
	f := NewFlow(t)
	err := par.Do(ctx, t.N, workers, func(i int) error {
		rel := topo.Node(i)
		for _, w := range alg.PairPaths(t, 0, rel) {
			for _, c := range w.Path.Channels(t) {
				f.X[rel][c] += w.Prob
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// HAvg returns the average path length over all N^2 pairs (self pairs count
// zero), equation (5). Because paths never revisit channels, a commodity's
// expected path length equals its total channel crossings.
func (f *Flow) HAvg() float64 {
	var total float64
	for rel := range f.X {
		for _, v := range f.X[rel] {
			total += v
		}
	}
	return total / float64(f.T.N)
}

// HNorm returns H_avg normalized to the network's mean minimal path length,
// the vertical axis of Figures 1, 4, 5 and 6.
func (f *Flow) HNorm() float64 {
	return f.HAvg() / f.T.MeanMinDist()
}

// ChannelLoads returns gamma_c(R, Lambda) for every channel, equation (2).
func (f *Flow) ChannelLoads(lambda *traffic.Matrix) []float64 {
	t := f.T
	loads := make([]float64, t.C)
	// gamma_c = sum_{s,d} lambda[s][d] * X[d-s][c translated by -s].
	// Iterate per source: translate the channel index once per (s, c).
	for s := 0; s < t.N; s++ {
		sx, sy := t.Coord(topo.Node(s))
		row := lambda.L[s]
		for d := 0; d < t.N; d++ {
			l := row[d]
			//lint:ignore floatcmp sparsity skip: entries never written stay exactly 0
			if l == 0 {
				continue
			}
			rx, ry := t.Rel(topo.Node(s), topo.Node(d))
			x := f.X[t.NodeAt(rx, ry)]
			for c := 0; c < t.C; c++ {
				//lint:ignore floatcmp sparsity skip: channels a path never crosses stay exactly 0
				if x[c] == 0 {
					continue
				}
				// Translate channel c (at node u) to node u+s.
				u := t.ChanSrc(topo.Channel(c))
				ux, uy := t.Coord(u)
				tc := t.Chan(t.NodeAt(ux+sx, uy+sy), t.ChanDir(topo.Channel(c)))
				loads[tc] += l * x[c]
			}
		}
	}
	return loads
}

// GammaMax returns the normalized maximum channel load under a pattern,
// equation (3) with unit channel bandwidths.
func (f *Flow) GammaMax(lambda *traffic.Matrix) float64 {
	var worst float64
	for _, l := range f.ChannelLoads(lambda) {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// Throughput returns Theta(R, Lambda) = 1/gamma_max, equation (4).
func (f *Flow) Throughput(lambda *traffic.Matrix) float64 {
	return 1 / f.GammaMax(lambda)
}

// Capacity returns this routing function's throughput under uniform
// traffic (Section 3.1).
func (f *Flow) Capacity() float64 {
	return f.Throughput(traffic.Uniform(f.T.N))
}

// NetworkCapacity returns the network's capacity: the best achievable
// uniform-traffic throughput over all routing functions. On a torus,
// balanced minimal routing attains the congestion lower bound
// gamma_max >= (total minimal hops)/(C), giving capacity = 4/MeanMinDist.
// All throughput fractions in the paper's figures are normalized by this
// quantity.
func NetworkCapacity(t *topo.Torus) float64 {
	return 4 / t.MeanMinDist()
}

// pairLoadMatrix builds M[s][d]: the load that a unit of s->d traffic places
// on the given canonical channel, using translation invariance.
func (f *Flow) pairLoadMatrix(c topo.Channel) [][]float64 {
	t := f.T
	m := make([][]float64, t.N)
	dir := t.ChanDir(c)
	u := t.ChanSrc(c)
	ux, uy := t.Coord(u)
	for s := 0; s < t.N; s++ {
		m[s] = make([]float64, t.N)
		// Channel c translated by -s sits at node u-s.
		sx, sy := t.Coord(topo.Node(s))
		tc := t.Chan(t.NodeAt(ux-sx, uy-sy), dir)
		for d := 0; d < t.N; d++ {
			rx, ry := t.Rel(topo.Node(s), topo.Node(d))
			m[s][d] = f.X[t.NodeAt(rx, ry)][tc]
		}
	}
	return m
}

// WorstCase returns the worst-case channel load gamma_wc(R) over all
// doubly-stochastic traffic, equation (7), and a permutation achieving it.
// By the Birkhoff decomposition it suffices to search permutations, and the
// per-channel search is a maximum-weight matching of the pair-load matrix.
// Translation invariance reduces the channel scan to one representative per
// direction. It is the context-free form of WorstCaseCtx; pairLoadMatrix
// always produces a square N-by-N matrix, so the oracle's shape error is an
// internal invariant violation, not a data condition.
func (f *Flow) WorstCase() (float64, []int) {
	g, perm, err := f.WorstCaseCtx(context.Background(), 0)
	mustNil(err)
	return g, perm
}

// WorstCaseCtx runs the per-direction Hungarian matchings on at most
// workers goroutines and reduces the representatives in direction order, so
// the result (including the returned permutation's tie-breaks) is identical
// for every worker count.
func (f *Flow) WorstCaseCtx(ctx context.Context, workers int) (float64, []int, error) {
	perms := make([][]int, topo.NumDirs)
	weights := make([]float64, topo.NumDirs)
	err := par.Do(ctx, int(topo.NumDirs), workers, func(i int) error {
		c := f.T.Chan(0, topo.Dir(i))
		perm, w, err := matching.MaxWeightAssignment(f.pairLoadMatrix(c))
		if err != nil {
			return err
		}
		perms[i], weights[i] = perm, w
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	var worst float64
	var worstPerm []int
	for i := range weights {
		if weights[i] > worst {
			worst, worstPerm = weights[i], perms[i]
		}
	}
	return worst, worstPerm, nil
}

// mustNil asserts that a context-free evaluation succeeded: with a
// background context and the evaluator's own well-shaped matrices, the
// error paths of the Ctx forms are unreachable.
func mustNil(err error) {
	if err != nil {
		panic(err)
	}
}

// WorstCaseThroughput returns Theta_wc(R) = 1/gamma_wc(R).
func (f *Flow) WorstCaseThroughput() float64 {
	wc, _ := f.WorstCase()
	return 1 / wc
}

// AvgCaseResult captures both forms of the average-case metric over a
// sample X of traffic matrices (Section 3.3).
type AvgCaseResult struct {
	// MeanMaxLoad is (1/|X|) sum gamma_max(R, Lambda_i): the paper's
	// linear (arithmetic-mean) cost, equation (9).
	MeanMaxLoad float64
	// ApproxThroughput is 1/MeanMaxLoad, the paper's approximation of
	// average-case throughput.
	ApproxThroughput float64
	// ExactMeanThroughput is (1/|X|) sum 1/gamma_max(R, Lambda_i), the
	// quantity the approximation stands in for.
	ExactMeanThroughput float64
}

// AvgCase evaluates the average-case metrics over a fixed sample, using all
// cores; it is the context-free form of AvgCaseCtx.
func (f *Flow) AvgCase(samples []*traffic.Matrix) AvgCaseResult {
	r, err := f.AvgCaseCtx(context.Background(), samples, 0)
	mustNil(err)
	return r
}

// AvgCaseCtx computes each sample's maximum channel load on at most workers
// goroutines. The per-sample maxima land in per-index slots and are summed
// in sample order, so the floating-point accumulation — and therefore the
// result — is bit-for-bit the sequential one for every worker count.
func (f *Flow) AvgCaseCtx(ctx context.Context, samples []*traffic.Matrix, workers int) (AvgCaseResult, error) {
	gammas := make([]float64, len(samples))
	err := par.Do(ctx, len(samples), workers, func(i int) error {
		gammas[i] = f.GammaMax(samples[i])
		return nil
	})
	if err != nil {
		return AvgCaseResult{}, err
	}
	var sumLoad, sumTheta float64
	for _, g := range gammas {
		sumLoad += g
		sumTheta += 1 / g
	}
	n := float64(len(samples))
	mean := sumLoad / n
	return AvgCaseResult{
		MeanMaxLoad:         mean,
		ApproxThroughput:    1 / mean,
		ExactMeanThroughput: sumTheta / n,
	}, nil
}

// ConservationError verifies that each commodity's flow satisfies
// conservation: for destination rel != 0, node 0 emits one net unit, rel
// absorbs one, and every other node is balanced. It returns the largest
// violation; algorithm- and LP-derived flows should be ~0.
func (f *Flow) ConservationError() float64 {
	t := f.T
	var worst float64
	for rel := 1; rel < t.N; rel++ {
		x := f.X[rel]
		for n := 0; n < t.N; n++ {
			var net float64
			for d := topo.Dir(0); d < topo.NumDirs; d++ {
				net += x[t.Chan(topo.Node(n), d)]
			}
			for d := topo.Dir(0); d < topo.NumDirs; d++ {
				// Channel entering n from direction d: leaves neighbor in
				// the reverse direction.
				nb := t.Neighbor(topo.Node(n), d)
				net -= x[t.Chan(nb, d.Reverse())]
			}
			want := 0.0
			switch topo.Node(n) {
			case 0:
				want = 1
			case topo.Node(rel):
				want = -1
			}
			if dev := math.Abs(net - want); dev > worst {
				worst = dev
			}
		}
	}
	return worst
}

// FromPathDist builds a flow table directly from per-relative-destination
// weighted paths (a routing.Table's contents), used when evaluating
// LP-designed algorithms without re-deriving them.
func FromPathDist(t *topo.Torus, dist map[topo.Node][]paths.Weighted) *Flow {
	f := NewFlow(t)
	for rel, ws := range dist {
		for _, w := range ws {
			for _, c := range w.Path.Channels(t) {
				f.X[rel][c] += w.Prob
			}
		}
	}
	return f
}
