// Package eval computes the performance metrics of Section 2.3 and the
// throughput-centric cost functions of Section 3 for concrete routing
// functions: per-channel loads gamma_c(R, Lambda), the maximum channel load
// gamma_max, throughput Theta = 1/gamma_max, capacity (uniform-traffic
// throughput), average path length H_avg, exact worst-case throughput via
// the Hungarian separation oracle, and the sampled average-case throughput
// with both the paper's arithmetic-mean approximation and the exact
// harmonic form it approximates.
package eval

import (
	"context"
	"math"

	"tcr/internal/matching"
	"tcr/internal/par"
	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// Flow is the channel-load fingerprint of an oblivious routing function.
// On vertex-transitive topologies X[rel][c] is the expected number of times
// a unit of traffic from node 0 to relative destination rel crosses channel
// c, and translation invariance extends the table to all pairs; on other
// topologies the table holds one row per ordered pair, X[s*N+d][c]. Every
// metric in this package is a function of this table, which is exactly the
// "one flow variable per channel per commodity" reformulation of Section 4.
type Flow struct {
	T topo.Topology
	X [][]float64
}

// Rows returns the number of commodity rows a flow table has on t: N for
// vertex-transitive topologies, N^2 otherwise.
func Rows(t topo.Topology) int {
	if t.VertexTransitive() {
		return t.Nodes()
	}
	return t.Nodes() * t.Nodes()
}

// RowOf returns the table row holding the (s, d) commodity.
func RowOf(t topo.Topology, s, d topo.Node) int {
	if t.VertexTransitive() {
		return int(t.RelNode(s, d))
	}
	return int(s)*t.Nodes() + int(d)
}

// NewFlow allocates an all-zero flow table.
func NewFlow(t topo.Topology) *Flow {
	rows, c := Rows(t), t.Chans()
	x := make([][]float64, rows)
	buf := make([]float64, rows*c)
	for i := range x {
		x[i] = buf[i*c : (i+1)*c]
	}
	return &Flow{T: t, X: x}
}

// FromAlgorithm builds the flow table of an algorithm by enumerating its
// path distributions, using all cores. It is the context-free form of
// FromAlgorithmCtx; with a background context the sharded evaluation cannot
// fail.
func FromAlgorithm(t topo.Topology, alg routing.Algorithm) *Flow {
	f, err := FromAlgorithmCtx(context.Background(), t, alg, 0)
	mustNil(err)
	return f
}

// FromAlgorithmCtx builds the flow table with the per-commodity enumeration
// sharded across at most workers goroutines (see par.Workers for the budget
// semantics). On vertex-transitive topologies only the canonical source is
// enumerated; otherwise every ordered pair is. Each commodity owns exactly
// one row of the table, so the shards are disjoint and the result is
// bit-for-bit identical for every worker count. Algorithm implementations
// must therefore be safe for concurrent PairPaths calls; all algorithms in
// internal/routing are stateless or read-only and qualify.
func FromAlgorithmCtx(ctx context.Context, t topo.Topology, alg routing.Algorithm, workers int) (*Flow, error) {
	f := NewFlow(t)
	n := t.Nodes()
	var err error
	if t.VertexTransitive() {
		err = par.Do(ctx, n, workers, func(i int) error {
			rel := topo.Node(i)
			for _, w := range alg.PairPaths(t, 0, rel) {
				for _, c := range w.Path.Channels(t) {
					f.X[rel][c] += w.Prob
				}
			}
			return nil
		})
	} else {
		err = par.Do(ctx, n*n, workers, func(i int) error {
			s, d := topo.Node(i/n), topo.Node(i%n)
			if s == d {
				return nil
			}
			for _, w := range alg.PairPaths(t, s, d) {
				for _, c := range w.Path.Channels(t) {
					f.X[i][c] += w.Prob
				}
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// HAvg returns the average path length over all N^2 pairs (self pairs count
// zero), equation (5). Because paths never revisit channels, a commodity's
// expected path length equals its total channel crossings.
func (f *Flow) HAvg() float64 {
	var total float64
	for row := range f.X {
		for _, v := range f.X[row] {
			total += v
		}
	}
	return total / float64(len(f.X))
}

// HNorm returns H_avg normalized to the network's mean minimal path length,
// the vertical axis of Figures 1, 4, 5 and 6.
func (f *Flow) HNorm() float64 {
	return f.HAvg() / f.T.MeanMinDist()
}

// transBy returns the translation mapping node 0 to s (the inverse of the
// PairAut translation, which maps s to the canonical source 0).
func transBy(tg topo.AutGroup, s topo.Node) topo.AutID {
	if s == 0 {
		return tg.Identity()
	}
	_, a := tg.PairAut(s, 0)
	return tg.Inverse(a)
}

// ChannelLoads returns gamma_c(R, Lambda) for every channel, equation (2).
func (f *Flow) ChannelLoads(lambda *traffic.Matrix) []float64 {
	t := f.T
	n, nc := t.Nodes(), t.Chans()
	loads := make([]float64, nc)
	if !t.VertexTransitive() {
		for s := 0; s < n; s++ {
			row := lambda.L[s]
			for d := 0; d < n; d++ {
				l := row[d]
				//lint:ignore floatcmp sparsity skip: entries never written stay exactly 0
				if l == 0 {
					continue
				}
				x := f.X[s*n+d]
				for c := 0; c < nc; c++ {
					//lint:ignore floatcmp sparsity skip: channels a path never crosses stay exactly 0
					if x[c] == 0 {
						continue
					}
					loads[c] += l * x[c]
				}
			}
		}
		return loads
	}
	// gamma_c = sum_{s,d} lambda[s][d] * X[d-s][c translated by -s].
	// Iterate per source: translate the channel indices once per s.
	tg := t.TransGroup()
	chanMap := make([]topo.Channel, nc)
	for s := 0; s < n; s++ {
		shift := transBy(tg, topo.Node(s))
		for c := 0; c < nc; c++ {
			chanMap[c] = tg.ApplyChan(shift, topo.Channel(c))
		}
		row := lambda.L[s]
		for d := 0; d < n; d++ {
			l := row[d]
			//lint:ignore floatcmp sparsity skip: entries never written stay exactly 0
			if l == 0 {
				continue
			}
			x := f.X[t.RelNode(topo.Node(s), topo.Node(d))]
			for c := 0; c < nc; c++ {
				//lint:ignore floatcmp sparsity skip: channels a path never crosses stay exactly 0
				if x[c] == 0 {
					continue
				}
				loads[chanMap[c]] += l * x[c]
			}
		}
	}
	return loads
}

// GammaMax returns the normalized maximum channel load under a pattern,
// equation (3) with unit channel bandwidths.
func (f *Flow) GammaMax(lambda *traffic.Matrix) float64 {
	var worst float64
	for _, l := range f.ChannelLoads(lambda) {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// Throughput returns Theta(R, Lambda) = 1/gamma_max, equation (4).
func (f *Flow) Throughput(lambda *traffic.Matrix) float64 {
	return 1 / f.GammaMax(lambda)
}

// Capacity returns this routing function's throughput under uniform
// traffic (Section 3.1).
func (f *Flow) Capacity() float64 {
	return f.Throughput(traffic.Uniform(f.T.Nodes()))
}

// NetworkCapacity returns the network's capacity: the best achievable
// uniform-traffic throughput over all routing functions, from the congestion
// lower bound gamma_max >= (total minimal hops)/C: capacity =
// (C/N)/MeanMinDist, the mean channel count per node over the mean minimal
// path length (4/MeanMinDist on the 2D torus). All throughput fractions in
// the paper's figures are normalized by this quantity.
func NetworkCapacity(t topo.Topology) float64 {
	c, n := t.Chans(), t.Nodes()
	if c%n == 0 {
		return float64(c/n) / t.MeanMinDist()
	}
	return float64(c) / (float64(n) * t.MeanMinDist())
}

// pairLoadMatrix builds M[s][d]: the load that a unit of s->d traffic places
// on the given canonical channel. On vertex-transitive topologies
// translation invariance reads the load off row rel(s, d) at the channel
// translated by -s; otherwise each pair's own row is read directly.
func (f *Flow) pairLoadMatrix(c topo.Channel) [][]float64 {
	t := f.T
	n := t.Nodes()
	m := make([][]float64, n)
	if !t.VertexTransitive() {
		for s := 0; s < n; s++ {
			m[s] = make([]float64, n)
			for d := 0; d < n; d++ {
				m[s][d] = f.X[s*n+d][c]
			}
		}
		return m
	}
	tg := t.TransGroup()
	for s := 0; s < n; s++ {
		m[s] = make([]float64, n)
		// Channel c translated by -s.
		var tc topo.Channel
		if s == 0 {
			tc = c
		} else {
			_, back := tg.PairAut(topo.Node(s), 0)
			tc = tg.ApplyChan(back, c)
		}
		for d := 0; d < n; d++ {
			m[s][d] = f.X[t.RelNode(topo.Node(s), topo.Node(d))][tc]
		}
	}
	return m
}

// sepChans returns the channels the worst-case search must scan: one
// representative per channel orbit of the translation subgroup on
// vertex-transitive topologies (one per direction on the tori), every
// channel otherwise (arbitrary traffic is not symmetric, so no channel scan
// can be elided without a transitive action).
func (f *Flow) sepChans() []topo.Channel {
	if f.T.VertexTransitive() {
		return f.T.TransGroup().ChanOrbitReps()
	}
	reps := make([]topo.Channel, f.T.Chans())
	for c := range reps {
		reps[c] = topo.Channel(c)
	}
	return reps
}

// WorstCase returns the worst-case channel load gamma_wc(R) over all
// doubly-stochastic traffic, equation (7), and a permutation achieving it.
// By the Birkhoff decomposition it suffices to search permutations, and the
// per-channel search is a maximum-weight matching of the pair-load matrix.
// It is the context-free form of WorstCaseCtx; pairLoadMatrix always
// produces a square N-by-N matrix, so the oracle's shape error is an
// internal invariant violation, not a data condition.
func (f *Flow) WorstCase() (float64, []int) {
	g, perm, err := f.WorstCaseCtx(context.Background(), 0)
	mustNil(err)
	return g, perm
}

// WorstCaseCtx runs the per-representative Hungarian matchings on at most
// workers goroutines and reduces the representatives in scan order, so the
// result (including the returned permutation's tie-breaks) is identical for
// every worker count.
func (f *Flow) WorstCaseCtx(ctx context.Context, workers int) (float64, []int, error) {
	reps := f.sepChans()
	perms := make([][]int, len(reps))
	weights := make([]float64, len(reps))
	err := par.Do(ctx, len(reps), workers, func(i int) error {
		perm, w, err := matching.MaxWeightAssignment(f.pairLoadMatrix(reps[i]))
		if err != nil {
			return err
		}
		perms[i], weights[i] = perm, w
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	var worst float64
	var worstPerm []int
	for i := range weights {
		if weights[i] > worst {
			worst, worstPerm = weights[i], perms[i]
		}
	}
	return worst, worstPerm, nil
}

// mustNil asserts that a context-free evaluation succeeded: with a
// background context and the evaluator's own well-shaped matrices, the
// error paths of the Ctx forms are unreachable.
func mustNil(err error) {
	if err != nil {
		panic(err)
	}
}

// WorstCaseThroughput returns Theta_wc(R) = 1/gamma_wc(R).
func (f *Flow) WorstCaseThroughput() float64 {
	wc, _ := f.WorstCase()
	return 1 / wc
}

// AvgCaseResult captures both forms of the average-case metric over a
// sample X of traffic matrices (Section 3.3).
type AvgCaseResult struct {
	// MeanMaxLoad is (1/|X|) sum gamma_max(R, Lambda_i): the paper's
	// linear (arithmetic-mean) cost, equation (9).
	MeanMaxLoad float64
	// ApproxThroughput is 1/MeanMaxLoad, the paper's approximation of
	// average-case throughput.
	ApproxThroughput float64
	// ExactMeanThroughput is (1/|X|) sum 1/gamma_max(R, Lambda_i), the
	// quantity the approximation stands in for.
	ExactMeanThroughput float64
}

// AvgCase evaluates the average-case metrics over a fixed sample, using all
// cores; it is the context-free form of AvgCaseCtx.
func (f *Flow) AvgCase(samples []*traffic.Matrix) AvgCaseResult {
	r, err := f.AvgCaseCtx(context.Background(), samples, 0)
	mustNil(err)
	return r
}

// AvgCaseCtx computes each sample's maximum channel load on at most workers
// goroutines. The per-sample maxima land in per-index slots and are summed
// in sample order, so the floating-point accumulation — and therefore the
// result — is bit-for-bit the sequential one for every worker count.
func (f *Flow) AvgCaseCtx(ctx context.Context, samples []*traffic.Matrix, workers int) (AvgCaseResult, error) {
	gammas := make([]float64, len(samples))
	err := par.Do(ctx, len(samples), workers, func(i int) error {
		gammas[i] = f.GammaMax(samples[i])
		return nil
	})
	if err != nil {
		return AvgCaseResult{}, err
	}
	var sumLoad, sumTheta float64
	for _, g := range gammas {
		sumLoad += g
		sumTheta += 1 / g
	}
	n := float64(len(samples))
	mean := sumLoad / n
	return AvgCaseResult{
		MeanMaxLoad:         mean,
		ApproxThroughput:    1 / mean,
		ExactMeanThroughput: sumTheta / n,
	}, nil
}

// ConservationError verifies that each commodity's flow satisfies
// conservation: the source emits one net unit, the destination absorbs one,
// and every other node is balanced. It returns the largest violation;
// algorithm- and LP-derived flows should be ~0.
func (f *Flow) ConservationError() float64 {
	t := f.T
	n := t.Nodes()
	vt := t.VertexTransitive()
	var worst float64
	for row := range f.X {
		var src, dst topo.Node
		if vt {
			src, dst = 0, topo.Node(row)
		} else {
			src, dst = topo.Node(row/n), topo.Node(row%n)
		}
		if src == dst {
			continue
		}
		x := f.X[row]
		for nd := topo.Node(0); nd < topo.Node(n); nd++ {
			var net float64
			deg := t.OutDeg(nd)
			for p := 0; p < deg; p++ {
				net += x[t.PortChan(nd, p)]
			}
			for p := 0; p < deg; p++ {
				// Channel entering nd through the same link as out-port p.
				net -= x[t.ReverseChan(t.PortChan(nd, p))]
			}
			want := 0.0
			switch nd {
			case src:
				want = 1
			case dst:
				want = -1
			}
			if dev := math.Abs(net - want); dev > worst {
				worst = dev
			}
		}
	}
	return worst
}

// FromPathDist builds a flow table directly from per-commodity weighted
// paths (a routing.Table's contents, keyed by table row), used when
// evaluating LP-designed algorithms without re-deriving them.
func FromPathDist(t topo.Topology, dist map[topo.Node][]paths.Weighted) *Flow {
	f := NewFlow(t)
	for row, ws := range dist {
		for _, w := range ws {
			for _, c := range w.Path.Channels(t) {
				f.X[row][c] += w.Prob
			}
		}
	}
	return f
}
