package eval

import (
	"math"
	"testing"

	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

func TestZeroLoadLatency(t *testing.T) {
	tor := topo.NewTorus(8)
	f := FromAlgorithm(tor, routing.DOR{})
	// H_avg = 4 hops; 1 cycle/hop, 4-flit packets: 4 + 3 = 7.
	if got := f.ZeroLoadLatency(1, 4); math.Abs(got-7) > 1e-9 {
		t.Fatalf("zero-load latency %v, want 7", got)
	}
	// Two-cycle routers double the hop component.
	if got := f.ZeroLoadLatency(2, 1); math.Abs(got-8) > 1e-9 {
		t.Fatalf("zero-load latency %v, want 8", got)
	}
}

func TestLatencyEstimateDiverges(t *testing.T) {
	tor := topo.NewTorus(8)
	f := FromAlgorithm(tor, routing.DOR{})
	u := traffic.Uniform(tor.N)
	low := f.LatencyEstimate(u, 0.1, 1, 4)
	mid := f.LatencyEstimate(u, 0.5, 1, 4)
	high := f.LatencyEstimate(u, 0.95, 1, 4)
	if !(low < mid && mid < high) {
		t.Fatalf("latency not increasing: %v %v %v", low, mid, high)
	}
	if !math.IsInf(f.LatencyEstimate(u, 1.0, 1, 4), 1) {
		t.Fatal("latency at saturation must diverge")
	}
	if low < f.ZeroLoadLatency(1, 4) {
		t.Fatal("estimate below the zero-load bound")
	}
}

func TestDimLoadsTornado(t *testing.T) {
	tor := topo.NewTorus(8)
	f := FromAlgorithm(tor, routing.DOR{})
	loads := f.DimLoads(traffic.Tornado(tor))
	// Tornado under DOR loads only +x channels.
	if loads[topo.XPlus] < 2.9 {
		t.Fatalf("+x load %v, want 3", loads[topo.XPlus])
	}
	for _, d := range []topo.Dir{topo.XMinus, topo.YPlus, topo.YMinus} {
		if loads[d] > 1e-9 {
			t.Fatalf("direction %v load %v, want 0", d, loads[d])
		}
	}
}

func TestBottlenecks(t *testing.T) {
	tor := topo.NewTorus(8)
	f := FromAlgorithm(tor, routing.DOR{})
	tornado := traffic.Tornado(tor)
	top := f.Bottlenecks(tornado, 5)
	if len(top) != 5 {
		t.Fatalf("got %d bottlenecks", len(top))
	}
	loads := f.ChannelLoads(tornado)
	// Returned channels must be sorted by decreasing load and dominate the
	// rest.
	for i := 1; i < len(top); i++ {
		if loads[top[i-1]] < loads[top[i]]-1e-12 {
			t.Fatal("bottlenecks not sorted")
		}
	}
	var maxOther float64
	seen := map[topo.Channel]bool{}
	for _, c := range top {
		seen[c] = true
	}
	for c, l := range loads {
		if !seen[topo.Channel(c)] && l > maxOther {
			maxOther = l
		}
	}
	if loads[top[len(top)-1]] < maxOther-1e-12 {
		t.Fatal("a non-returned channel beats a returned one")
	}
	// All five are +x channels under tornado.
	for _, c := range top {
		if tor.ChanDir(c) != topo.XPlus {
			t.Fatalf("bottleneck %v not in +x", c)
		}
	}
}
