package eval

import (
	"container/list"
	"context"
	"strconv"
	"strings"
	"sync"

	"tcr/internal/routing"
	"tcr/internal/topo"
)

// Cache memoizes flow tables content-addressed by topology and
// algorithm identity, so repeated Report/CLI invocations over the same
// algorithm reuse one path-enumeration pass. Concurrent lookups of the same
// key share a single computation (per-entry once); distinct keys compute
// independently. The cache is safe for concurrent use.
//
// A cache built with NewCacheLimit holds at most its cap entries and evicts
// the least recently used one on overflow; NewCache is unbounded, matching
// the historical behavior. Flow tables at large radix are the dominant
// memory cost of a long-lived process (O(k^2) relative destinations x k
// channels of float64 each), so daemons should bound the cache.
type Cache struct {
	mu  sync.Mutex
	m   map[string]*cacheEntry
	lru *list.List // front = most recently used; elements hold *cacheEntry
	cap int        // 0 = unbounded
}

type cacheEntry struct {
	once sync.Once
	flow *Flow
	err  error
	key  string
	elem *list.Element // position in lru; nil once evicted or dropped
}

// NewCache returns an empty, unbounded flow cache.
func NewCache() *Cache { return NewCacheLimit(0) }

// NewCacheLimit returns an empty flow cache holding at most maxEntries flow
// tables, evicting the least recently used on overflow. maxEntries <= 0
// means unbounded.
func NewCacheLimit(maxEntries int) *Cache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Cache{m: map[string]*cacheEntry{}, lru: list.New(), cap: maxEntries}
}

// FlowKey returns the content address of (t, alg) and whether the algorithm
// has one. Closed-form algorithms are addressed by topology plus Name, which
// uniquely determines their path distribution; interpolations recurse with
// the exact bits of alpha (Name alone rounds it to two decimals). Designed
// routing tables carry only a human-chosen label that two different designs
// may share, so they have no stable address and are never cached.
func FlowKey(t topo.Topology, alg routing.Algorithm) (string, bool) {
	k, ok := algKey(alg)
	if !ok {
		return "", false
	}
	return topo.String(t) + "/" + k, true
}

func algKey(alg routing.Algorithm) (string, bool) {
	switch a := alg.(type) {
	case routing.Interpolated:
		ka, okA := algKey(a.A)
		kb, okB := algKey(a.B)
		if !okA || !okB {
			return "", false
		}
		var sb strings.Builder
		sb.WriteString("mix[")
		sb.WriteString(strconv.FormatFloat(a.Alpha, 'x', -1, 64))
		sb.WriteString("](")
		sb.WriteString(ka)
		sb.WriteString(")(")
		sb.WriteString(kb)
		sb.WriteByte(')')
		return sb.String(), true
	case *routing.Table:
		return "", false
	default:
		return alg.Name(), true
	}
}

// Evaluate returns the memoized flow table of (t, alg), computing it via
// FromAlgorithmCtx on a miss. The returned *Flow is shared across callers
// and MUST be treated as read-only. Algorithms without a stable identity
// (designed routing tables) bypass the cache and are evaluated fresh. A
// failed computation (context cancellation) is not cached; the next caller
// retries.
func (c *Cache) Evaluate(ctx context.Context, t topo.Topology, alg routing.Algorithm, workers int) (*Flow, error) {
	key, ok := FlowKey(t, alg)
	if !ok {
		return FromAlgorithmCtx(ctx, t, alg, workers)
	}
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &cacheEntry{key: key}
		c.m[key] = e
		e.elem = c.lru.PushFront(e)
		if c.cap > 0 && c.lru.Len() > c.cap {
			c.evictOldestLocked()
		}
	} else if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	e.once.Do(func() { e.flow, e.err = FromAlgorithmCtx(ctx, t, alg, workers) })
	if e.err != nil {
		// Drop the poisoned entry so a live context can recompute it.
		c.mu.Lock()
		c.dropLocked(e)
		c.mu.Unlock()
		return nil, e.err
	}
	return e.flow, nil
}

// evictOldestLocked removes the least recently used entry. An evicted entry
// whose computation is still in flight completes normally — callers already
// holding it get their result; the table just isn't retained.
func (c *Cache) evictOldestLocked() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	c.dropLocked(back.Value.(*cacheEntry))
}

// dropLocked unlinks e from the map and the LRU list, guarding against the
// entry having been replaced (a poisoned drop racing a re-insert) or already
// evicted.
func (c *Cache) dropLocked(e *cacheEntry) {
	if c.m[e.key] == e {
		delete(c.m, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
}

// Len reports the number of cached flow tables (for tests and diagnostics).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
