package eval

import (
	"context"
	"strconv"
	"strings"
	"sync"

	"tcr/internal/routing"
	"tcr/internal/topo"
)

// Cache memoizes flow tables content-addressed by topology radix and
// algorithm identity, so repeated Report/CLI invocations over the same
// algorithm reuse one path-enumeration pass. Concurrent lookups of the same
// key share a single computation (per-entry once); distinct keys compute
// independently. The cache is safe for concurrent use.
type Cache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	flow *Flow
	err  error
}

// NewCache returns an empty flow cache.
func NewCache() *Cache { return &Cache{m: map[string]*cacheEntry{}} }

// FlowKey returns the content address of (t, alg) and whether the algorithm
// has one. Closed-form algorithms are addressed by radix plus Name, which
// uniquely determines their path distribution; interpolations recurse with
// the exact bits of alpha (Name alone rounds it to two decimals). Designed
// routing tables carry only a human-chosen label that two different designs
// may share, so they have no stable address and are never cached.
func FlowKey(t *topo.Torus, alg routing.Algorithm) (string, bool) {
	k, ok := algKey(alg)
	if !ok {
		return "", false
	}
	return "k=" + strconv.Itoa(t.K) + "/" + k, true
}

func algKey(alg routing.Algorithm) (string, bool) {
	switch a := alg.(type) {
	case routing.Interpolated:
		ka, okA := algKey(a.A)
		kb, okB := algKey(a.B)
		if !okA || !okB {
			return "", false
		}
		var sb strings.Builder
		sb.WriteString("mix[")
		sb.WriteString(strconv.FormatFloat(a.Alpha, 'x', -1, 64))
		sb.WriteString("](")
		sb.WriteString(ka)
		sb.WriteString(")(")
		sb.WriteString(kb)
		sb.WriteByte(')')
		return sb.String(), true
	case *routing.Table:
		return "", false
	default:
		return alg.Name(), true
	}
}

// Evaluate returns the memoized flow table of (t, alg), computing it via
// FromAlgorithmCtx on a miss. The returned *Flow is shared across callers
// and MUST be treated as read-only. Algorithms without a stable identity
// (designed routing tables) bypass the cache and are evaluated fresh. A
// failed computation (context cancellation) is not cached; the next caller
// retries.
func (c *Cache) Evaluate(ctx context.Context, t *topo.Torus, alg routing.Algorithm, workers int) (*Flow, error) {
	key, ok := FlowKey(t, alg)
	if !ok {
		return FromAlgorithmCtx(ctx, t, alg, workers)
	}
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.flow, e.err = FromAlgorithmCtx(ctx, t, alg, workers) })
	if e.err != nil {
		// Drop the poisoned entry so a live context can recompute it.
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.flow, nil
}

// Len reports the number of cached flow tables (for tests and diagnostics).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
