package eval

import (
	"math"

	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// This file adds the latency-side metrics the paper sketches in Section 2.3:
// at low load, end-to-end delay is governed by hop count (H_avg) plus
// serialization (footnote 2), and near saturation it diverges at the
// throughput bound. ZeroLoadLatency and LatencyEstimate provide the standard
// closed-form approximations used to sanity-check the flit-level simulator.

// ZeroLoadLatency returns the average zero-load packet latency in cycles for
// the routing function: per-hop router+link delay times the average hop
// count, plus serialization of the packet onto a channel.
func (f *Flow) ZeroLoadLatency(hopCycles, packetFlits int) float64 {
	return float64(hopCycles)*f.HAvg() + float64(packetFlits-1)
}

// LatencyEstimate approximates average latency at an injection fraction
// rho of the pattern's saturation throughput using an M/D/1-style
// congestion factor: T(rho) = T0 * (1 + rho/(2*(1-rho))). It diverges as
// rho -> 1, mirroring the saturation behaviour the simulator exhibits.
// rho must be in [0, 1).
func (f *Flow) LatencyEstimate(lambda *traffic.Matrix, rate float64, hopCycles, packetFlits int) float64 {
	sat := f.Throughput(lambda)
	if sat > 1 {
		sat = 1 // injection bandwidth binds first
	}
	rho := rate / sat
	if rho >= 1 {
		return math.Inf(1)
	}
	t0 := f.ZeroLoadLatency(hopCycles, packetFlits)
	return t0 * (1 + rho/(2*(1-rho)))
}

// DimLoads splits a pattern's channel loads by dimension and direction,
// returning the maximum load among channels of each direction. Useful for
// diagnosing which rings saturate first (e.g. tornado loads only +x). It is
// defined for the 2D-geometry families (torus2d, mesh) that expose a
// per-channel direction; other topologies return nil.
func (f *Flow) DimLoads(lambda *traffic.Matrix) map[topo.Dir]float64 {
	dt, ok := f.T.(interface{ ChanDir(topo.Channel) topo.Dir })
	if !ok {
		return nil
	}
	loads := f.ChannelLoads(lambda)
	out := map[topo.Dir]float64{}
	for c, l := range loads {
		d := dt.ChanDir(topo.Channel(c))
		if l > out[d] {
			out[d] = l
		}
	}
	return out
}

// Bottlenecks returns the indices of the count most-loaded channels under a
// pattern, most loaded first — the channels whose saturation defines the
// throughput.
func (f *Flow) Bottlenecks(lambda *traffic.Matrix, count int) []topo.Channel {
	loads := f.ChannelLoads(lambda)
	type cl struct {
		c topo.Channel
		l float64
	}
	all := make([]cl, len(loads))
	for c, l := range loads {
		all[c] = cl{topo.Channel(c), l}
	}
	// Partial selection sort: count is small.
	if count > len(all) {
		count = len(all)
	}
	for i := 0; i < count; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].l > all[best].l {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]topo.Channel, count)
	for i := 0; i < count; i++ {
		out[i] = all[i].c
	}
	return out
}
