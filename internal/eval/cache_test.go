package eval

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
)

// countingAlg wraps an algorithm and counts PairPaths calls so the tests can
// observe cache hits vs recomputation.
type countingAlg struct {
	routing.Algorithm
	mu    sync.Mutex
	calls int
}

func (c *countingAlg) PairPaths(t topo.Topology, s, d topo.Node) []paths.Weighted {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.Algorithm.PairPaths(t, s, d)
}

func (c *countingAlg) callCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestCacheReusesFlows(t *testing.T) {
	tor := topo.NewTorus(4)
	c := NewCache()
	a, err := c.Evaluate(context.Background(), tor, routing.DOR{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Evaluate(context.Background(), tor, routing.DOR{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second lookup did not return the cached flow")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	// A different radix is a different key.
	if _, err := c.Evaluate(context.Background(), topo.NewTorus(3), routing.DOR{}, 1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
}

func TestCacheMatchesDirectEvaluation(t *testing.T) {
	tor := topo.NewTorus(5)
	c := NewCache()
	got, err := c.Evaluate(context.Background(), tor, routing.IVAL{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := FromAlgorithm(tor, routing.IVAL{})
	if !reflect.DeepEqual(got.X, want.X) {
		t.Fatal("cached flow differs from direct evaluation")
	}
}

func TestCacheBypassesTables(t *testing.T) {
	tor := topo.NewTorus(3)
	// A designed table has no stable content address: same label, possibly
	// different distributions.
	tbl := &routing.Table{Label: "2TURN", Dist: map[topo.Node][]paths.Weighted{}}
	if _, ok := FlowKey(tor, tbl); ok {
		t.Fatal("routing tables must not have a cache key")
	}
	c := NewCache()
	if _, err := c.Evaluate(context.Background(), tor, tbl, 1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("table evaluation entered the cache")
	}
}

func TestCacheInterpolationKeysAreExact(t *testing.T) {
	tor := topo.NewTorus(3)
	mix := func(alpha float64) routing.Algorithm {
		return routing.Interpolated{A: routing.IVAL{}, B: routing.DOR{}, Alpha: alpha}
	}
	// Name() rounds alpha to two decimals; the cache key must not.
	k1, ok1 := FlowKey(tor, mix(0.501))
	k2, ok2 := FlowKey(tor, mix(0.502))
	if !ok1 || !ok2 {
		t.Fatal("interpolations of closed forms should be cacheable")
	}
	if k1 == k2 {
		t.Fatalf("distinct alphas collide on key %q", k1)
	}
	// Interpolations involving a table are not cacheable.
	tbl := &routing.Table{Label: "x", Dist: map[topo.Node][]paths.Weighted{}}
	if _, ok := FlowKey(tor, routing.Interpolated{A: tbl, B: routing.DOR{}, Alpha: 0.5}); ok {
		t.Fatal("interpolation over a table must not be cacheable")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	tor := topo.NewTorus(4)
	alg := &countingAlg{Algorithm: routing.DOR{}}
	// countingAlg is a wrapper type, so it falls through to the default
	// Name-keyed case and is cacheable under DOR's name.
	c := NewCache()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Evaluate(context.Background(), tor, alg, 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	alg.mu.Lock()
	calls := alg.calls
	alg.mu.Unlock()
	if calls != tor.N {
		t.Fatalf("PairPaths called %d times, want exactly %d (one enumeration)", calls, tor.N)
	}
}

func TestCacheLRUEvictsOldest(t *testing.T) {
	c := NewCacheLimit(2)
	eval := func(k int, alg routing.Algorithm) {
		t.Helper()
		if _, err := c.Evaluate(context.Background(), topo.NewTorus(k), alg, 1); err != nil {
			t.Fatal(err)
		}
	}
	dor := &countingAlg{Algorithm: routing.DOR{}}
	eval(3, dor)            // {k3/DOR}
	eval(3, routing.VAL{})  // {k3/DOR, k3/VAL}
	eval(3, dor)            // touch DOR: VAL is now oldest
	eval(3, routing.IVAL{}) // evicts k3/VAL
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", c.Len())
	}
	before := dor.callCount()
	eval(3, dor) // DOR survived the eviction: no recomputation
	if dor.callCount() != before {
		t.Fatal("recently used entry was evicted")
	}
	val := &countingAlg{Algorithm: routing.VAL{}}
	eval(3, val)
	if val.callCount() != topo.NewTorus(3).N {
		t.Fatal("evicted entry was served from cache")
	}
}

func TestCacheUnboundedByDefault(t *testing.T) {
	c := NewCache()
	for k := 2; k <= 6; k++ {
		if _, err := c.Evaluate(context.Background(), topo.NewTorus(k), routing.DOR{}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("unbounded cache holds %d entries, want 5", c.Len())
	}
}

func TestCacheDoesNotCacheCancellation(t *testing.T) {
	tor := topo.NewTorus(4)
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Evaluate(ctx, tor, routing.DOR{}, 1); err == nil {
		t.Fatal("cancelled evaluation succeeded")
	}
	// A live context must recompute rather than replay the cached error.
	f, err := c.Evaluate(context.Background(), tor, routing.DOR{}, 1)
	if err != nil || f == nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}
