package sim

import (
	"testing"

	"tcr/internal/routing"
)

// TestCreditConservation: at any instant, a channel's credits at the
// upstream router plus the occupancy of the downstream input buffer must
// equal the buffer depth — credits may never be minted or lost.
func TestCreditConservation(t *testing.T) {
	mesh := mustParse(t, "mesh:3x3")
	for _, cfg := range []Config{
		{K: 4, Rate: 0.7, Seed: 31, Alg: routing.IVAL{}, BufDepth: 4},
		{Topo: mesh, Rate: 0.5, Seed: 31, Alg: minTable(t, mesh), BufDepth: 4},
	} {
		s := mustNew(t, cfg)
		for step := 0; step < 2000; step++ {
			s.step()
			if step%50 != 0 {
				continue
			}
			for n := 0; n < s.t.Nodes(); n++ {
				up := &s.routers[n]
				for p := range up.credits {
					down := &s.routers[s.neighbor[n][p]]
					in := s.revPort[n][p]
					for v := 0; v < s.nVCs; v++ {
						total := up.credits[p][v] + len(down.in[in][v].buf)
						if total != s.cfg.BufDepth {
							t.Fatalf("cycle %d node %d port %d vc %d: credits %d + occupancy %d != depth %d",
								step, n, p, v, up.credits[p][v], len(down.in[in][v].buf), s.cfg.BufDepth)
						}
					}
				}
			}
		}
	}
}

// TestVCAtomicity: a virtual channel buffer never interleaves flits of two
// packets before the first packet's tail.
func TestVCAtomicity(t *testing.T) {
	s := mustNew(t, Config{K: 4, Rate: 0.8, Seed: 37, Alg: routing.VAL{}, BufDepth: 4})
	for step := 0; step < 2000; step++ {
		s.step()
		if step%25 != 0 {
			continue
		}
		for n := range s.routers {
			r := &s.routers[n]
			for d := range r.in {
				for v := range r.in[d] {
					buf := r.in[d][v].buf
					// Scan: packet may only change right after a tail.
					for i := 1; i < len(buf); i++ {
						if buf[i].pkt != buf[i-1].pkt && !buf[i-1].last {
							t.Fatalf("cycle %d: interleaved packets in node %d port %d vc %d",
								step, n, d, v)
						}
					}
					// Owner matches the head's packet.
					if len(buf) > 0 && r.in[d][v].owner != buf[0].pkt {
						t.Fatalf("cycle %d: owner mismatch at node %d", step, n)
					}
				}
			}
		}
	}
}

// TestHopProgression: flits buffered at a node always have a hop index
// consistent with a real route position (0..len(dirs)).
func TestHopProgression(t *testing.T) {
	s := mustNew(t, Config{K: 5, Rate: 0.6, Seed: 41, Alg: routing.ROMM{}})
	for step := 0; step < 1500; step++ {
		s.step()
	}
	for n := range s.routers {
		r := &s.routers[n]
		for d := range r.in {
			for v := range r.in[d] {
				for _, fr := range r.in[d][v].buf {
					if fr.hop < 1 || int(fr.hop) > len(fr.pkt.dirs) {
						t.Fatalf("flit hop %d outside route length %d", fr.hop, len(fr.pkt.dirs))
					}
				}
			}
		}
	}
}

// TestEjectionBandwidth: no node ever delivers more than one flit per cycle
// (unit ejection bandwidth, Section 2.1's node model).
func TestEjectionBandwidth(t *testing.T) {
	s := mustNew(t, Config{K: 4, Rate: 1.0, Seed: 43, Alg: routing.DOR{}})
	s.StartMeasurement()
	cycles := 3000
	prev := 0
	for i := 0; i < cycles; i++ {
		s.step()
		cur := s.ejFlits
		if cur-prev > s.t.Nodes() {
			t.Fatalf("cycle %d: %d flits ejected network-wide (> N=%d)", i, cur-prev, s.t.Nodes())
		}
		prev = cur
	}
}
