package sim

import (
	"context"
	"testing"

	"tcr/internal/design"
	"tcr/internal/traffic"
)

// TestDesignedTablesSimulateWithinCertifiedBound cross-validates the
// LP-certified designs on the non-torus2d families against the flit
// simulator: under uniform traffic the accepted saturation throughput must
// stay below the edge-congestion bound 1/gamma_U implied by the certified
// flow, while a healthy router should still reach a substantial fraction of
// it (Section 2.1 cites 60-75% for practical routers).
func TestDesignedTablesSimulateWithinCertifiedBound(t *testing.T) {
	specs := []string{"mesh:3x3"}
	if !testing.Short() {
		specs = append(specs, "torus3d:3")
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			top := mustParse(t, spec)
			res, err := design.WorstCaseOptimal(top, design.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Certified {
				t.Fatalf("design not certified: %s", res.Reason)
			}
			tbl, err := design.DecomposeFlow(res.Flow, "wc-opt")
			if err != nil {
				t.Fatal(err)
			}
			// The max channel load under uniform traffic certifies an
			// accepted-load ceiling of 1/gamma_U, further capped by the
			// unit injection bandwidth.
			var gammaU float64
			for _, l := range res.Flow.ChannelLoads(traffic.Uniform(top.Nodes())) {
				if l > gammaU {
					gammaU = l
				}
			}
			bound := 1 / gammaU
			if bound > 1 {
				bound = 1
			}
			sat, err := FindSaturation(context.Background(),
				Config{Topo: top, Seed: 7, Alg: tbl, BufDepth: 8, Warmup: 1000, Measure: 4000},
				[]float64{0.25 * bound, 0.5 * bound, 0.75 * bound, bound, 1})
			if err != nil {
				t.Fatal(err)
			}
			if sat.Deadlocked {
				t.Fatal("hop-class policy deadlocked")
			}
			if sat.Throughput > bound*1.07 {
				t.Fatalf("simulated saturation %.3f exceeds certified bound %.3f", sat.Throughput, bound)
			}
			if sat.Throughput < bound*0.4 {
				t.Fatalf("simulated saturation %.3f below 40%% of certified bound %.3f; router model too lossy", sat.Throughput, bound)
			}
		})
	}
}
