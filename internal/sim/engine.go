package sim

import (
	"context"
	"sort"

	"tcr/internal/topo"
)

// move is a granted flit transfer, computed in the allocation phase and
// applied afterwards so that all decisions within a cycle observe the same
// state.
type move struct {
	node topo.Node
	// srcPort < 0 means the node's injection queue, otherwise the input
	// port whose VC srcVC holds the flit.
	srcPort int
	srcVC   int
	// eject indicates delivery at this node; otherwise the flit leaves
	// through outPort into the neighbor's input VC dstVC.
	eject   bool
	outPort int
	dstVC   int
}

// Run advances the simulation by the given number of cycles; statistics
// accumulate only after StartMeasurement.
func (s *Sim) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		s.step()
	}
}

// ctxCheckInterval is how many cycles RunCtx advances between cancellation
// checks; coarse enough that the check never shows up in profiles.
const ctxCheckInterval = 1024

// RunCtx is Run under a cancellation context, checked every
// ctxCheckInterval cycles. The simulation stops where the check fired and
// remains valid (it can be resumed), but its window statistics are
// incomplete.
func (s *Sim) RunCtx(ctx context.Context, cycles int) error {
	for i := 0; i < cycles; i++ {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.step()
	}
	return nil
}

// Simulate builds a simulator from cfg, runs its warmup window, then its
// measurement window, and returns the stats.
func Simulate(ctx context.Context, cfg Config) (Stats, error) {
	s, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	if err := s.RunCtx(ctx, cfg.warmup()); err != nil {
		return Stats{}, err
	}
	s.StartMeasurement()
	if err := s.RunCtx(ctx, cfg.measure()); err != nil {
		return Stats{}, err
	}
	return s.Stats(), nil
}

// StartMeasurement begins the statistics window (call after warmup).
func (s *Sim) StartMeasurement() {
	s.measuring = true
	s.injFlits = 0
	s.ejFlits = 0
	s.latencySum = 0
	s.ejPackets = 0
	s.measureStart = s.cycle
}

// Stats returns the measurement-window statistics.
func (s *Sim) Stats() Stats {
	cycles := s.cycle - s.measureStart
	st := Stats{
		Cycles:         cycles,
		InjectedFlits:  s.injFlits,
		EjectedFlits:   s.ejFlits,
		PacketsEjected: s.ejPackets,
		Deadlocked:     s.deadlocked,
	}
	if cycles > 0 {
		st.Throughput = float64(s.ejFlits) / float64(cycles) / float64(s.t.Nodes())
	}
	if s.ejPackets > 0 {
		st.AvgLatency = float64(s.latencySum) / float64(s.ejPackets)
	}
	return st
}

// step advances one cycle: inject new packets, allocate, move flits, and
// feed the deadlock watchdog.
func (s *Sim) step() {
	s.inject()
	moves := s.allocate()
	s.apply(moves)
	if len(moves) == 0 && s.anyBuffered() {
		s.idleCycles++
		if s.idleCycles > 1000 {
			s.deadlocked = true
		}
	} else {
		s.idleCycles = 0
	}
	s.cycle++
}

// inject generates new packets per the Bernoulli process and pattern.
func (s *Sim) inject() {
	pPacket := s.cfg.Rate / float64(s.cfg.PacketFlits)
	for n := 0; n < s.t.Nodes(); n++ {
		if s.rng.Float64() >= pPacket {
			continue
		}
		src := topo.Node(n)
		dst := s.drawDest(n)
		path := s.sampler.Sample(s.rng, src, dst)
		pkt := &packet{
			dirs:     path.Dirs,
			vcs:      s.classesToVCs(s.policy.Assign(s.t, path)),
			flits:    s.cfg.PacketFlits,
			injected: s.cycle,
		}
		s.routers[n].srcQueue = append(s.routers[n].srcQueue, pkt)
		if s.measuring {
			s.injFlits += s.cfg.PacketFlits
		}
	}
}

// classesToVCs maps the policy's class labels to concrete VC indices, with
// a random sub-channel per packet when VCsPerClass > 1.
func (s *Sim) classesToVCs(classes []int) []int {
	sub := 0
	if s.cfg.VCsPerClass > 1 {
		sub = s.rng.Intn(s.cfg.VCsPerClass)
	}
	vcs := make([]int, len(classes))
	for i, c := range classes {
		vcs[i] = c*s.cfg.VCsPerClass + sub
	}
	return vcs
}

// drawDest samples a destination from the source's traffic row.
func (s *Sim) drawDest(src int) topo.Node {
	cum := s.destCum[src]
	u := s.rng.Float64() * cum[len(cum)-1]
	i := sort.SearchFloat64s(cum, u)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return topo.Node(i)
}

// allocate performs, per node, VC allocation and round-robin switch
// allocation, producing the cycle's granted moves.
func (s *Sim) allocate() []move {
	var moves []move
	// Requests per output: indices 0..deg-1 are the node's ports, index
	// deg is ejection. The scratch is shared across nodes, sized by the
	// widest router, and truncated per node.
	reqs := make([][]move, s.t.MaxDeg()+1)
	for n := range s.routers {
		r := &s.routers[n]
		node := topo.Node(n)
		deg := len(r.in)
		for out := 0; out <= deg; out++ {
			reqs[out] = reqs[out][:0]
		}

		// Buffered input VCs.
		for p := 0; p < deg; p++ {
			for v := range r.in[p] {
				vc := &r.in[p][v]
				if len(vc.buf) == 0 {
					continue
				}
				fr := vc.buf[0]
				if int(fr.hop) >= len(fr.pkt.dirs) {
					reqs[deg] = append(reqs[deg],
						move{node: node, srcPort: p, srcVC: v, eject: true})
					continue
				}
				out := int(fr.pkt.dirs[fr.hop])
				dstVC := fr.pkt.vcs[fr.hop]
				if !s.downstreamReady(node, out, dstVC, fr.pkt) {
					continue
				}
				reqs[out] = append(reqs[out],
					move{node: node, srcPort: p, srcVC: v, outPort: out, dstVC: dstVC})
			}
		}
		// Injection queue head.
		if len(r.srcQueue) > 0 {
			pkt := r.srcQueue[0]
			if len(pkt.dirs) == 0 {
				reqs[deg] = append(reqs[deg],
					move{node: node, srcPort: -1, eject: true})
			} else if out := int(pkt.dirs[0]); s.downstreamReady(node, out, pkt.vcs[0], pkt) {
				reqs[out] = append(reqs[out],
					move{node: node, srcPort: -1, outPort: out, dstVC: pkt.vcs[0]})
			}
		}

		// Grant one flit per output, round-robin over requesters.
		for out := 0; out <= deg; out++ {
			cands := reqs[out]
			if len(cands) == 0 {
				continue
			}
			pick := cands[r.rrOut[out]%len(cands)]
			r.rrOut[out]++
			moves = append(moves, pick)
		}
	}
	return moves
}

// downstreamReady checks credits and VC ownership at the input buffer the
// flit would land in: the VC must be free or already held by this packet,
// and a buffer slot must be available.
func (s *Sim) downstreamReady(node topo.Node, out int, dstVC int, pkt *packet) bool {
	r := &s.routers[node]
	if r.credits[out][dstVC] <= 0 {
		return false
	}
	nb := s.neighbor[node][out]
	owner := s.routers[nb].in[s.revPort[node][out]][dstVC].owner
	return owner == nil || owner == pkt
}

// apply commits the cycle's moves: dequeue, transfer, credit return, and
// ejection accounting. A flit sent through port `out` lands at the
// neighbor's input port revPort[n][out]; conversely, a flit dequeued from
// input port p came from neighbor[n][p], whose credit counter for the
// channel toward us is indexed by revPort[n][p].
func (s *Sim) apply(moves []move) {
	for _, mv := range moves {
		r := &s.routers[mv.node]
		var fr flitRef
		if mv.srcPort < 0 {
			pkt := r.srcQueue[0]
			r.srcSent++
			fr = flitRef{pkt: pkt, hop: 0, last: r.srcSent == pkt.flits}
			if fr.last {
				r.srcQueue = r.srcQueue[1:]
				r.srcSent = 0
			}
		} else {
			vc := &r.in[mv.srcPort][mv.srcVC]
			fr = vc.buf[0]
			vc.buf = vc.buf[1:]
			if fr.last {
				vc.owner = nil
			}
			up := s.neighbor[mv.node][mv.srcPort]
			s.routers[up].credits[s.revPort[mv.node][mv.srcPort]][mv.srcVC]++
		}

		if mv.eject {
			if s.measuring {
				s.ejFlits++
				if fr.last {
					s.latencySum += int64(s.cycle - fr.pkt.injected)
					s.ejPackets++
				}
			}
			continue
		}

		nb := s.neighbor[mv.node][mv.outPort]
		dst := &s.routers[nb].in[s.revPort[mv.node][mv.outPort]][mv.dstVC]
		if dst.owner == nil {
			dst.owner = fr.pkt
		}
		fr.hop++
		dst.buf = append(dst.buf, fr)
		r.credits[mv.outPort][mv.dstVC]--
	}
}

// anyBuffered reports whether any flit is waiting anywhere.
func (s *Sim) anyBuffered() bool {
	for n := range s.routers {
		r := &s.routers[n]
		if len(r.srcQueue) > 0 {
			return true
		}
		for p := range r.in {
			for v := range r.in[p] {
				if len(r.in[p][v].buf) > 0 {
					return true
				}
			}
		}
	}
	return false
}
