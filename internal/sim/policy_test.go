package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
)

// TestPolicyClassesInRange: every policy labels every hop of every path of
// every supported algorithm within its class count.
func TestPolicyClassesInRange(t *testing.T) {
	tor := topo.NewTorus(6)
	algs := []routing.Algorithm{
		routing.DOR{}, routing.VAL{}, routing.IVAL{}, routing.ROMM{},
		routing.RLB{}, routing.O1TURN{},
	}
	for _, alg := range algs {
		pol := PolicyFor(alg)
		for d := topo.Node(0); d < topo.Node(tor.N); d++ {
			for _, w := range alg.PairPaths(tor, 0, d) {
				classes := pol.Assign(tor, w.Path)
				if len(classes) != w.Path.Len() {
					t.Fatalf("%s: class count mismatch", alg.Name())
				}
				for _, c := range classes {
					if c < 0 || c >= pol.Classes() {
						t.Fatalf("%s: class %d out of range", alg.Name(), c)
					}
				}
			}
		}
	}
}

// TestPolicyClassesMonotone: the class sequence along any path never
// decreases — the acyclicity argument rests on packets moving to
// higher-ordered virtual channel classes.
func TestPolicyClassesMonotone(t *testing.T) {
	tor := topo.NewTorus(8)
	check := func(p paths.Path, classes []int) bool {
		set := func(c int) int { return c / 2 }
		for i := 1; i < len(classes); i++ {
			if set(classes[i]) < set(classes[i-1]) {
				return false
			}
			// Within a dimension run, the dateline bit may only rise.
			if set(classes[i]) == set(classes[i-1]) &&
				p.Dirs[i].IsX() == p.Dirs[i-1].IsX() &&
				classes[i]%2 < classes[i-1]%2 {
				return false
			}
		}
		return true
	}
	for _, alg := range []routing.Algorithm{routing.VAL{}, routing.IVAL{}} {
		pol := PolicyFor(alg)
		for d := topo.Node(0); d < topo.Node(tor.N); d++ {
			for _, w := range alg.PairPaths(tor, 0, d) {
				if !check(w.Path, pol.Assign(tor, w.Path)) {
					t.Fatalf("%s: class sequence not monotone on %v", alg.Name(), w.Path)
				}
			}
		}
	}
}

// TestPolicyQuick: random two-turn-family paths get valid class sequences.
func TestPolicyQuick(t *testing.T) {
	tor := topo.NewTorus(8)
	pol := TurnDatelinePolicy{}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := topo.Node(rng.Intn(tor.N))
		d := topo.Node(rng.Intn(tor.N))
		ps := paths.TwoTurnPaths(tor, s, d)
		p := ps[rng.Intn(len(ps))]
		classes := pol.Assign(tor, p)
		if len(classes) != p.Len() {
			return false
		}
		for _, c := range classes {
			if c < 0 || c >= pol.Classes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
