package sim

import (
	"context"
	"testing"

	"tcr/internal/routing"
)

func TestFindSaturationCurve(t *testing.T) {
	res, err := FindSaturation(context.Background(),
		Config{K: 4, Seed: 9, Alg: routing.DOR{}, VCsPerClass: 2, BufDepth: 8, Warmup: 500, Measure: 2000},
		[]float64{0.2, 0.5, 0.8, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("deadlock during sweep")
	}
	if len(res.Curve) != 4 {
		t.Fatalf("curve has %d points", len(res.Curve))
	}
	// Accepted load can never exceed offered.
	for _, p := range res.Curve {
		if p.Accepted > p.Rate+0.02 {
			t.Fatalf("accepted %v exceeds offered %v", p.Accepted, p.Rate)
		}
	}
	// At easy loads acceptance tracks the offer.
	if res.Curve[0].Accepted < 0.15 {
		t.Fatalf("low-load acceptance %v too small", res.Curve[0].Accepted)
	}
	if res.Throughput <= 0 || res.AtRate == 0 {
		t.Fatalf("bad plateau: %+v", res)
	}
	// Latency grows with load.
	if res.Curve[0].AvgLatency > res.Curve[len(res.Curve)-1].AvgLatency {
		t.Fatal("latency should not decrease with load")
	}
}
