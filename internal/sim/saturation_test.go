package sim

import (
	"context"
	"strings"
	"testing"

	"tcr/internal/routing"
)

func TestFindSaturationCurve(t *testing.T) {
	res, err := FindSaturation(context.Background(),
		Config{K: 4, Seed: 9, Alg: routing.DOR{}, VCsPerClass: 2, BufDepth: 8, Warmup: 500, Measure: 2000},
		[]float64{0.2, 0.5, 0.8, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("deadlock during sweep")
	}
	if len(res.Curve) != 4 {
		t.Fatalf("curve has %d points", len(res.Curve))
	}
	// Accepted load can never exceed offered.
	for _, p := range res.Curve {
		if p.Accepted > p.Rate+0.02 {
			t.Fatalf("accepted %v exceeds offered %v", p.Accepted, p.Rate)
		}
	}
	// At easy loads acceptance tracks the offer.
	if res.Curve[0].Accepted < 0.15 {
		t.Fatalf("low-load acceptance %v too small", res.Curve[0].Accepted)
	}
	if res.Throughput <= 0 || res.AtRate == 0 {
		t.Fatalf("bad plateau: %+v", res)
	}
	// Latency grows with load.
	if res.Curve[0].AvgLatency > res.Curve[len(res.Curve)-1].AvgLatency {
		t.Fatal("latency should not decrease with load")
	}
	// DOR on a k=4 torus saturates well below an offered rate of 1.0, so
	// a sweep reaching 1.0 observes a genuine plateau.
	if res.Partial {
		t.Fatalf("full sweep flagged partial: %s", res.Reason)
	}
}

// TestFindSaturationNoPlateau: a sweep confined to easy loads never
// saturates, and the watchdog must flag the answer as a lower bound rather
// than report the largest swept rate as the saturation point.
func TestFindSaturationNoPlateau(t *testing.T) {
	res, err := FindSaturation(context.Background(),
		Config{K: 4, Seed: 9, Alg: routing.DOR{}, VCsPerClass: 2, BufDepth: 8, Warmup: 500, Measure: 2000},
		[]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatalf("under-driven sweep not flagged partial: %+v", res)
	}
	if !strings.Contains(res.Reason, "plateau") {
		t.Fatalf("reason %q does not name the missing plateau", res.Reason)
	}
	if len(res.Curve) != 2 || res.Throughput <= 0 {
		t.Fatalf("partial result lost its curve: %+v", res)
	}
}

// TestFindSaturationBadPoint: an invalid configuration at one sweep point
// yields a partial result carrying the surviving points, not a failed sweep.
func TestFindSaturationBadPoint(t *testing.T) {
	res, err := FindSaturation(context.Background(),
		Config{K: 4, Seed: 9, Alg: routing.DOR{}, VCsPerClass: 2, BufDepth: 8, Warmup: 500, Measure: 2000},
		[]float64{0.2, 0.5, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || !strings.Contains(res.Reason, "failed") {
		t.Fatalf("failed point not reported: %+v", res)
	}
	if len(res.Curve) != 2 {
		t.Fatalf("curve has %d points, want the 2 survivors", len(res.Curve))
	}
}
