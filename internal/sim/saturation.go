package sim

// SaturationPoint estimates the saturation throughput of a configuration by
// sweeping offered load: it runs short simulations at increasing rates and
// reports the largest accepted throughput observed. The standard definition
// (accepted flux at which latency diverges) is awkward to automate; the
// accepted-throughput plateau under over-driving is equivalent for
// open-loop injection with unbounded source queues, which is what this
// simulator models.
type SaturationResult struct {
	// Throughput is the plateau accepted load in flits/node/cycle.
	Throughput float64
	// AtRate is the offered rate where the plateau was observed.
	AtRate float64
	// Deadlocked reports whether any sweep point tripped the watchdog.
	Deadlocked bool
	// Curve holds (rate, accepted) for every sweep point.
	Curve []RatePoint
}

// RatePoint is one sweep sample.
type RatePoint struct {
	Rate, Accepted, AvgLatency float64
}

// FindSaturation sweeps offered rates and returns the observed saturation
// plateau. The cfg's Rate field is overridden per sweep point.
func FindSaturation(cfg Config, rates []float64, warmup, measure int) (SaturationResult, error) {
	if len(rates) == 0 {
		rates = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	res := SaturationResult{}
	for _, r := range rates {
		c := cfg
		c.Rate = r
		s, err := New(c)
		if err != nil {
			return SaturationResult{}, err
		}
		s.Run(warmup)
		s.StartMeasurement()
		s.Run(measure)
		st := s.Stats()
		res.Curve = append(res.Curve, RatePoint{Rate: r, Accepted: st.Throughput, AvgLatency: st.AvgLatency})
		if st.Deadlocked {
			res.Deadlocked = true
		}
		if st.Throughput > res.Throughput {
			res.Throughput = st.Throughput
			res.AtRate = r
		}
	}
	return res, nil
}
