package sim

import (
	"context"
	"fmt"

	"tcr/internal/par"
)

// SaturationPoint estimates the saturation throughput of a configuration by
// sweeping offered load: it runs short simulations at increasing rates and
// reports the largest accepted throughput observed. The standard definition
// (accepted flux at which latency diverges) is awkward to automate; the
// accepted-throughput plateau under over-driving is equivalent for
// open-loop injection with unbounded source queues, which is what this
// simulator models.
type SaturationResult struct {
	// Throughput is the plateau accepted load in flits/node/cycle.
	Throughput float64
	// AtRate is the offered rate where the plateau was observed.
	AtRate float64
	// Deadlocked reports whether any sweep point tripped the watchdog.
	Deadlocked bool
	// Curve holds (rate, accepted) for every sweep point that completed.
	Curve []RatePoint
	// Partial reports that the sweep watchdog could not fully certify the
	// answer: some sweep points failed, or the accepted load was still
	// tracking the offered load at the highest surviving rate (no
	// saturation plateau observed, so Throughput is only a lower bound).
	// Reason explains which.
	Partial bool
	Reason  string
}

// saturationTrackFrac: a sweep point whose accepted load exceeds this
// fraction of its offered rate is still tracking the offer, i.e. the network
// is not yet saturated there.
const saturationTrackFrac = 0.98

// RatePoint is one sweep sample.
type RatePoint struct {
	Rate, Accepted, AvgLatency float64
}

// FindSaturation sweeps offered rates and returns the observed saturation
// plateau, using cfg.Warmup and cfg.Measure as the simulation windows. The
// cfg's Rate field is overridden per sweep point. The sweep points are
// independent simulations (each seeded from cfg.Seed) and run on
// cfg.Workers goroutines; the curve and plateau are assembled in rate
// order afterwards, so the result is identical for every worker count.
func FindSaturation(ctx context.Context, cfg Config, rates []float64) (SaturationResult, error) {
	if len(rates) == 0 {
		rates = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	stats := make([]Stats, len(rates))
	errs := make([]error, len(rates))
	err := par.Do(ctx, len(rates), cfg.Workers, func(i int) error {
		c := cfg
		c.Rate = rates[i]
		st, err := Simulate(ctx, c)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			// Watchdog: one failed point degrades the sweep to a partial
			// result instead of discarding every other point's work.
			errs[i] = err
			return nil
		}
		stats[i] = st
		return nil
	})
	if err != nil {
		return SaturationResult{}, err
	}
	res := SaturationResult{}
	nFailed, firstFail, lastOK, bestIdx := 0, -1, -1, -1
	for i, r := range rates {
		if errs[i] != nil {
			nFailed++
			if firstFail < 0 {
				firstFail = i
			}
			continue
		}
		st := stats[i]
		lastOK = i
		res.Curve = append(res.Curve, RatePoint{Rate: r, Accepted: st.Throughput, AvgLatency: st.AvgLatency})
		if st.Deadlocked {
			res.Deadlocked = true
		}
		if st.Throughput > res.Throughput {
			res.Throughput = st.Throughput
			res.AtRate = r
			bestIdx = i
		}
	}
	if lastOK < 0 {
		return SaturationResult{}, fmt.Errorf("sim: all %d sweep points failed (first: rate=%g: %w)",
			nFailed, rates[firstFail], errs[firstFail])
	}
	if nFailed > 0 {
		res.Partial = true
		res.Reason = fmt.Sprintf("%d of %d sweep points failed (first: rate=%g: %v)",
			nFailed, len(rates), rates[firstFail], errs[firstFail])
	}
	// Plateau watchdog: when the highest surviving rate both holds the
	// maximum accepted load and still tracks its offer, the sweep never
	// reached saturation — the plateau lies beyond the swept range.
	// (Deadlocked sweeps collapse rather than track and report their own
	// flag.)
	if !res.Deadlocked && bestIdx == lastOK && stats[lastOK].Throughput > saturationTrackFrac*rates[lastOK] {
		res.Partial = true
		if res.Reason != "" {
			res.Reason += "; "
		}
		res.Reason += fmt.Sprintf("no saturation plateau within swept rates (accepted %.3g still tracks offered %.3g); throughput is a lower bound",
			stats[lastOK].Throughput, rates[lastOK])
	}
	return res, nil
}
