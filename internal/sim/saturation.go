package sim

import (
	"context"

	"tcr/internal/par"
)

// SaturationPoint estimates the saturation throughput of a configuration by
// sweeping offered load: it runs short simulations at increasing rates and
// reports the largest accepted throughput observed. The standard definition
// (accepted flux at which latency diverges) is awkward to automate; the
// accepted-throughput plateau under over-driving is equivalent for
// open-loop injection with unbounded source queues, which is what this
// simulator models.
type SaturationResult struct {
	// Throughput is the plateau accepted load in flits/node/cycle.
	Throughput float64
	// AtRate is the offered rate where the plateau was observed.
	AtRate float64
	// Deadlocked reports whether any sweep point tripped the watchdog.
	Deadlocked bool
	// Curve holds (rate, accepted) for every sweep point.
	Curve []RatePoint
}

// RatePoint is one sweep sample.
type RatePoint struct {
	Rate, Accepted, AvgLatency float64
}

// FindSaturation sweeps offered rates and returns the observed saturation
// plateau, using cfg.Warmup and cfg.Measure as the simulation windows. The
// cfg's Rate field is overridden per sweep point. The sweep points are
// independent simulations (each seeded from cfg.Seed) and run on
// cfg.Workers goroutines; the curve and plateau are assembled in rate
// order afterwards, so the result is identical for every worker count.
func FindSaturation(ctx context.Context, cfg Config, rates []float64) (SaturationResult, error) {
	if len(rates) == 0 {
		rates = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	stats := make([]Stats, len(rates))
	err := par.Do(ctx, len(rates), cfg.Workers, func(i int) error {
		c := cfg
		c.Rate = rates[i]
		st, err := Simulate(ctx, c)
		if err != nil {
			return err
		}
		stats[i] = st
		return nil
	})
	if err != nil {
		return SaturationResult{}, err
	}
	res := SaturationResult{}
	for i, r := range rates {
		st := stats[i]
		res.Curve = append(res.Curve, RatePoint{Rate: r, Accepted: st.Throughput, AvgLatency: st.AvgLatency})
		if st.Deadlocked {
			res.Deadlocked = true
		}
		if st.Throughput > res.Throughput {
			res.Throughput = st.Throughput
			res.AtRate = r
		}
	}
	return res, nil
}
