package sim

import (
	"math"
	"testing"

	"tcr/internal/eval"
	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

func TestDatelineAssignment(t *testing.T) {
	tor := topo.NewTorus(4)
	// Path from (2,0) going +x three hops: wraps after node 3.
	p := paths.Path{Src: tor.NodeAt(2, 0), Dirs: []topo.Dir{topo.XPlus, topo.XPlus, topo.XPlus}}
	got := (DatelinePolicy{}).Assign(tor, p)
	want := []int{0, 0, 1} // hop 3->0 crosses the wrap, the hop after is class 1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dateline classes = %v, want %v", got, want)
		}
	}
}

func TestTurnDatelineAssignment(t *testing.T) {
	tor := topo.NewTorus(4)
	// X-Y-X path: second X run must use the bumped class set.
	p := paths.Path{Src: 0, Dirs: []topo.Dir{
		topo.XPlus, topo.YPlus, topo.YPlus, topo.XPlus}}
	got := (TurnDatelinePolicy{}).Assign(tor, p)
	if got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("pre-turn classes wrong: %v", got)
	}
	if got[3] != 2 { // Y->X turn bumps to set 1 (class base 2)
		t.Fatalf("post-Y->X-turn class = %d, want 2 (%v)", got[3], got)
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	// Drive one packet through by hand: rate tuned so exactly the first
	// node injects... instead use a deterministic check via flit
	// conservation at low rate.
	s := mustNew(t, Config{K: 4, Rate: 0.05, Seed: 1, Alg: routing.DOR{}})
	s.StartMeasurement()
	s.Run(4000)
	st := s.Stats()
	if st.Deadlocked {
		t.Fatal("deadlock at trivial load")
	}
	if st.PacketsEjected == 0 {
		t.Fatal("no packets delivered")
	}
	// At 5% load the network is nearly empty: latency close to the
	// zero-load bound (min distance + serialization).
	tor := topo.NewTorus(4)
	minLat := tor.MeanMinDist() + float64(s.cfg.PacketFlits-1)
	if st.AvgLatency < minLat*0.8 || st.AvgLatency > minLat*3 {
		t.Fatalf("avg latency %v implausible (zero-load bound %v)", st.AvgLatency, minLat)
	}
}

func TestFlitConservation(t *testing.T) {
	s := mustNew(t, Config{K: 4, Rate: 0.3, Seed: 7, Alg: routing.IVAL{}})
	s.StartMeasurement()
	s.Run(3000)
	st := s.Stats()
	if st.EjectedFlits > st.InjectedFlits {
		t.Fatalf("ejected %d > injected %d", st.EjectedFlits, st.InjectedFlits)
	}
	// At a stable load nearly everything injected should drain through.
	if float64(st.EjectedFlits) < 0.8*float64(st.InjectedFlits) {
		t.Fatalf("only %d of %d flits delivered", st.EjectedFlits, st.InjectedFlits)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() Stats {
		s := mustNew(t, Config{K: 4, Rate: 0.4, Seed: 42, Alg: routing.DOR{}})
		s.StartMeasurement()
		s.Run(2000)
		return s.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
}

func TestNoDeadlockUnderAdversarialLoad(t *testing.T) {
	tor := topo.NewTorus(4)
	for _, alg := range []routing.Algorithm{routing.DOR{}, routing.VAL{}, routing.IVAL{}} {
		for _, pat := range []*traffic.Matrix{
			traffic.Tornado(tor), traffic.Transpose(tor), nil,
		} {
			s := mustNew(t, Config{K: 4, Rate: 0.9, Seed: 3, Alg: alg, Pattern: pat})
			s.Run(6000)
			if s.Stats().Deadlocked {
				t.Fatalf("%s deadlocked under adversarial load", alg.Name())
			}
		}
	}
}

func TestSaturationThroughputFractionOfIdeal(t *testing.T) {
	// Section 2.1: practical routers reach a substantial fraction (the
	// paper cites 60-75%) of the ideal edge-congestion throughput, never
	// exceeding it. DOR on k=4 under uniform: ideal = capacity = 2.0
	// injection fraction, i.e. saturation at min(1.0, ...) of injection
	// bandwidth here, so drive at full rate and expect a healthy fraction.
	s := mustNew(t, Config{K: 4, Rate: 1.0, Seed: 5, Alg: routing.DOR{}, VCsPerClass: 2, BufDepth: 8})
	s.Run(2000) // warmup
	s.StartMeasurement()
	s.Run(6000)
	st := s.Stats()
	if st.Deadlocked {
		t.Fatal("deadlocked")
	}
	// Ideal accepted load at Rate=1.0 is 1.0 flits/node/cycle (injection
	// bound binds before the network's 2.0 capacity).
	if st.Throughput > 1.0+1e-9 {
		t.Fatalf("throughput %v exceeds injection bandwidth", st.Throughput)
	}
	if st.Throughput < 0.5 {
		t.Fatalf("throughput %v below half of ideal; router model too lossy", st.Throughput)
	}
}

func TestTornadoThroughputOrdering(t *testing.T) {
	// Under tornado traffic, ideal throughput: DOR saturates at
	// capacity/3 (load 3 per +x channel at unit injection on k=8; on k=4
	// the shift is 1 so use k=8's shape via k=6)... use k=8 for the
	// canonical effect: VAL should beat DOR under tornado at high load.
	throughput := func(alg routing.Algorithm) float64 {
		tor := topo.NewTorus(8)
		s := mustNew(t, Config{K: 8, Rate: 0.9, Seed: 11, Alg: alg, Pattern: traffic.Tornado(tor),
			VCsPerClass: 3, BufDepth: 8})
		s.Run(3000)
		s.StartMeasurement()
		s.Run(10000)
		st := s.Stats()
		if st.Deadlocked {
			t.Fatalf("%s deadlocked", alg.Name())
		}
		return st.Throughput
	}
	dor := throughput(routing.DOR{})
	val := throughput(routing.VAL{})
	if val <= dor {
		t.Fatalf("VAL (%v) should beat DOR (%v) under tornado", val, dor)
	}
}

func TestSimulatedLoadsMatchAnalyticChannelLoads(t *testing.T) {
	// The analytic model predicts expected channel crossings per injected
	// packet; at low load the simulator's delivered hop counts should
	// match H_avg.
	alg := routing.IVAL{}
	tor := topo.NewTorus(4)
	f := eval.FromAlgorithm(tor, alg)
	s := mustNew(t, Config{K: 4, Rate: 0.1, Seed: 13, Alg: alg, PacketFlits: 1})
	s.StartMeasurement()
	s.Run(30000)
	st := s.Stats()
	// Mean latency of single-flit packets at near-zero load ~ mean path
	// length (one cycle per hop) + 1 ejection... allow generous envelope
	// around H_avg; it must at least correlate.
	h := f.HAvg()
	if st.AvgLatency < h*0.8 || st.AvgLatency > h*2.5+4 {
		t.Fatalf("avg latency %v vs analytic H %v", st.AvgLatency, h)
	}
}

func TestSelfTrafficEjectsImmediately(t *testing.T) {
	// A pattern of pure self traffic must flow at full rate with latency
	// just the serialization time.
	n := 16
	pat := traffic.NewMatrix(n)
	for i := 0; i < n; i++ {
		pat.L[i][i] = 1
	}
	s := mustNew(t, Config{K: 4, Rate: 0.5, Seed: 17, Alg: routing.DOR{}, Pattern: pat})
	s.StartMeasurement()
	s.Run(3000)
	st := s.Stats()
	if st.PacketsEjected == 0 {
		t.Fatal("no self packets delivered")
	}
	if st.AvgLatency > float64(s.cfg.PacketFlits)+2 {
		t.Fatalf("self-traffic latency %v too high", st.AvgLatency)
	}
}

func TestStatsThroughputDefinition(t *testing.T) {
	s := mustNew(t, Config{K: 4, Rate: 0.2, Seed: 23, Alg: routing.DOR{}})
	s.StartMeasurement()
	s.Run(5000)
	st := s.Stats()
	want := float64(st.EjectedFlits) / float64(st.Cycles) / 16
	if math.Abs(st.Throughput-want) > 1e-12 {
		t.Fatalf("throughput %v, want %v", st.Throughput, want)
	}
	// Accepted should be close to offered at this easy load.
	if st.Throughput < 0.15 {
		t.Fatalf("throughput %v far below offered 0.2", st.Throughput)
	}
}

// mustNew builds a simulator for a test-controlled config, failing the test
// on a configuration error.
func mustNew(t *testing.T, cfg Config) *Sim {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustParse builds a topology from its family:spec form.
func mustParse(tb testing.TB, s string) topo.Topology {
	tb.Helper()
	top, err := topo.Parse(s)
	if err != nil {
		tb.Fatal(err)
	}
	return top
}

// minTable is a deterministic single-shortest-path routing table for any
// topology: at each node, take the lowest port that reduces the remaining
// distance. It stands in for the closed-form algorithms (which are
// torus2d-specific) when tests need traffic on other families.
func minTable(tb testing.TB, t topo.Topology) *routing.Table {
	tb.Helper()
	route := func(s, d topo.Node) paths.Path {
		p := paths.Path{Src: s}
		for cur := s; cur != d; {
			next := topo.Node(-1)
			for pt := 0; pt < t.OutDeg(cur); pt++ {
				nb := t.ChanDst(t.PortChan(cur, pt))
				if t.MinDist(nb, d) < t.MinDist(cur, d) {
					p.Dirs = append(p.Dirs, topo.Dir(pt))
					next = nb
					break
				}
			}
			if next < 0 {
				tb.Fatalf("no minimal progress from %d toward %d", cur, d)
			}
			cur = next
		}
		return p
	}
	n := t.Nodes()
	dist := map[topo.Node][]paths.Weighted{}
	if t.VertexTransitive() {
		for d := 1; d < n; d++ {
			dist[topo.Node(d)] = []paths.Weighted{{Path: route(0, topo.Node(d)), Prob: 1}}
		}
	} else {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					dist[topo.Node(s*n+d)] = []paths.Weighted{{Path: route(topo.Node(s), topo.Node(d)), Prob: 1}}
				}
			}
		}
	}
	return &routing.Table{Label: "min", Dist: dist}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := New(Config{K: 1, Alg: routing.DOR{}}); err == nil {
		t.Fatal("radix 1 accepted")
	}
	if _, err := New(Config{K: 4}); err == nil {
		t.Fatal("missing algorithm accepted")
	}
	if _, err := New(Config{K: 4, Alg: routing.DOR{}, Pattern: traffic.Uniform(9)}); err == nil {
		t.Fatal("mismatched pattern size accepted")
	}
}
