// Package sim is a cycle-based, flit-level simulator for the module's
// interconnection networks with virtual-channel flow control. It backs two
// claims the paper makes outside its analytical model: that the ideal
// (edge-congestion) throughput bound is approached but not met by practical
// routers (Section 2.1 cites 60-75%), and that the studied routing
// algorithms have simple deadlock-free implementations with a handful of
// virtual channels per physical channel (Section 5.2).
//
// The router model is a canonical input-queued VC router: per-input virtual
// channels with credit-based backpressure, atomic VC allocation (a virtual
// channel is held by one packet from head to tail), and round-robin switch
// allocation granting one flit per output per cycle. Paths are source
// routed: the oblivious routing algorithm draws the entire path at
// injection, and a per-algorithm VCPolicy assigns each hop a virtual
// channel class so the channel-dependence graph stays acyclic — dateline
// rules for torus rings, ascending hop classes on other topologies.
//
// The router is degree-parameterized: every node carries one input buffer
// bank and one credit bank per port, sized by the topology's OutDeg, so
// mesh border routers are narrower than interior ones.
package sim

import (
	"fmt"
	"math/rand"

	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// VCPolicy assigns a virtual-channel class to every hop of a path. The
// returned slice has one entry per hop, each in [0, numClasses).
type VCPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Classes is the number of VC classes the policy needs.
	Classes() int
	// Assign labels each hop of the path with its VC class.
	Assign(t topo.Topology, p paths.Path) []int
}

// DatelinePolicy implements the classic two-VC ring deadlock avoidance: a
// packet uses class 0 in each dimension until it crosses that dimension's
// wrap-around (dateline) channel, class 1 after. Sufficient for
// dimension-order routing. Torus2d only.
type DatelinePolicy struct{}

// Name implements VCPolicy.
func (DatelinePolicy) Name() string { return "dateline" }

// Classes implements VCPolicy.
func (DatelinePolicy) Classes() int { return 2 }

// Assign implements VCPolicy.
func (DatelinePolicy) Assign(t topo.Topology, p paths.Path) []int {
	return assignDateline(t.(*topo.Torus), p, 0)
}

// TurnDatelinePolicy implements the paper's scheme for two-turn paths
// (Section 5.2): the VC set is incremented after each Y-to-X turn (at most
// one on any two-turn path), and within a set the dateline rule breaks
// intra-ring cycles, for four classes total. DOR, IVAL and 2TURN paths are
// all covered. Torus2d only.
type TurnDatelinePolicy struct{}

// Name implements VCPolicy.
func (TurnDatelinePolicy) Name() string { return "turn+dateline" }

// Classes implements VCPolicy.
func (TurnDatelinePolicy) Classes() int { return 4 }

// Assign implements VCPolicy.
func (TurnDatelinePolicy) Assign(t topo.Topology, p paths.Path) []int {
	return assignDateline(t.(*topo.Torus), p, 1)
}

// HopClassPolicy is the topology-agnostic fallback: hop i uses class i, so
// the class sequence strictly increases along every path and the channel
// dependence graph is trivially acyclic. It needs as many classes as the
// longest path the sampler can draw, which is why New sizes it from
// routing.Sampler.MaxLen; the VC cost is acceptable at the small scales
// non-torus2d simulations run at.
type HopClassPolicy struct {
	// NumClasses bounds path length; Assign panics if a path exceeds it.
	NumClasses int
}

// Name implements VCPolicy.
func (HopClassPolicy) Name() string { return "hop-class" }

// Classes implements VCPolicy.
func (p HopClassPolicy) Classes() int { return p.NumClasses }

// Assign implements VCPolicy.
func (p HopClassPolicy) Assign(t topo.Topology, path paths.Path) []int {
	classes := make([]int, len(path.Dirs))
	for i := range classes {
		classes[i] = i
	}
	return classes
}

// assignDateline walks the path tracking the dateline bit (reset whenever
// the packet turns into a new dimension run) and, when turnBit is set, a
// set bit that flips once at the packet's "phase boundary": the first
// Y-to-X turn or the first direction reversal within a dimension. For
// two-turn paths this is exactly the paper's bump-after-Y-to-X rule; for
// the two-phase algorithms (VAL, IVAL, ROMM, RLB) it coincides with the
// phase change, giving each set a dimension-ordered, reversal-free prefix
// whose channel dependences are acyclic under the dateline rule.
func assignDateline(t *topo.Torus, p paths.Path, turnBit int) []int {
	classes := make([]int, len(p.Dirs))
	n := p.Src
	set := 0
	dateline := 0
	lastDir := [2]topo.Dir{-1, -1} // per-dimension direction seen so far
	for i, d := range p.Dirs {
		if i > 0 && d.IsX() != p.Dirs[i-1].IsX() {
			dateline = 0
		}
		if turnBit == 1 && set == 0 && i > 0 {
			yToX := d.IsX() && !p.Dirs[i-1].IsX()
			dim := 0
			if !d.IsX() {
				dim = 1
			}
			reversal := lastDir[dim] >= 0 && lastDir[dim] == d.Reverse()
			if yToX || reversal {
				set = 1
				dateline = 0
			}
		}
		if d.IsX() {
			lastDir[0] = d
		} else {
			lastDir[1] = d
		}
		classes[i] = set*2 + dateline
		// Crossing the wrap channel flips the dateline bit for the rest
		// of this dimension run.
		x, y := t.Coord(n)
		nxt := t.Neighbor(n, d)
		nx, ny := t.Coord(nxt)
		if d.IsX() {
			//lint:ignore dirliteral dateline VC assignment is defined on torus2d wrap channels
			if (d == topo.XPlus && nx < x) || (d == topo.XMinus && nx > x) {
				dateline = 1
			}
		} else {
			//lint:ignore dirliteral dateline VC assignment is defined on torus2d wrap channels
			if (d == topo.YPlus && ny < y) || (d == topo.YMinus && ny > y) {
				dateline = 1
			}
		}
		n = nxt
	}
	return classes
}

// PolicyFor returns the conventional torus2d policy for an algorithm name:
// dateline-only for plain DOR, turn+dateline otherwise.
func PolicyFor(alg routing.Algorithm) VCPolicy {
	if alg.Name() == "DOR" || alg.Name() == "DOR-yx" {
		return DatelinePolicy{}
	}
	return TurnDatelinePolicy{}
}

// Default measurement windows used when Config.Warmup/Measure are zero.
const (
	DefaultWarmup  = 3000
	DefaultMeasure = 10000
)

// Config parameterizes a simulation.
type Config struct {
	K           int           // torus radix, used when Topo is nil
	Topo        topo.Topology // network to simulate; nil = k-ary 2-cube of radix K
	VCsPerClass int           // virtual channels per class (default 1)
	BufDepth    int           // flit buffer depth per VC (default 4)
	PacketFlits int           // flits per packet (default 4)
	Rate        float64       // offered load: flits per node per cycle (1.0 = full injection bandwidth)
	Seed        int64

	Alg     routing.Algorithm
	Policy  VCPolicy        // nil = PolicyFor(Alg) on a 2D torus, hop classes otherwise
	Pattern *traffic.Matrix // destination distribution per source; nil = uniform

	// Warmup and Measure are the pre-measurement and measurement window
	// lengths in cycles used by Simulate and FindSaturation; zero selects
	// DefaultWarmup/DefaultMeasure.
	Warmup, Measure int
	// Workers bounds FindSaturation's sweep concurrency: each rate is an
	// independent simulation with its own RNG seeded from Seed, so the
	// sweep result is identical for every worker count. 0 uses all cores;
	// 1 runs the sweep sequentially.
	Workers int
}

func (c Config) warmup() int {
	if c.Warmup > 0 {
		return c.Warmup
	}
	return DefaultWarmup
}

func (c Config) measure() int {
	if c.Measure > 0 {
		return c.Measure
	}
	return DefaultMeasure
}

// Stats summarizes a measurement window.
type Stats struct {
	Cycles int
	// InjectedFlits / EjectedFlits count flits entering and leaving the
	// network during the measurement window.
	InjectedFlits, EjectedFlits int
	// Throughput is accepted flits per node per cycle.
	Throughput float64
	// AvgLatency is the mean packet latency (injection-queue entry to tail
	// ejection) over packets ejected in the window.
	AvgLatency float64
	// PacketsEjected is the latency sample count.
	PacketsEjected int
	// Deadlocked reports that the watchdog saw no forward progress for a
	// long stretch while flits were buffered.
	Deadlocked bool
}

// packet is an in-flight packet with its precomputed route.
type packet struct {
	dirs     []topo.Dir // per-hop output port at the node reached so far
	vcs      []int      // concrete VC per hop
	flits    int
	injected int // cycle the packet entered the source queue
}

// vcState is one virtual channel of one input port.
type vcState struct {
	buf []flitRef // FIFO of buffered flits
	// owner is the packet currently allocated this VC (nil when idle).
	// Allocation is atomic head-to-tail.
	owner *packet
}

type flitRef struct {
	pkt  *packet
	hop  int32 // hops completed so far (route index at the current node)
	last bool  // tail flit
}

// router is one node's state, sized by the node's out-degree.
type router struct {
	// in[p][vc] are input buffers for flits arriving over the reverse of
	// the node's outgoing channel at port p (injection is modeled as a
	// source queue, not an input port).
	in [][]vcState
	// credits[p][vc]: free downstream slots for the output at port p.
	credits [][]int
	// source queue of packets awaiting injection, plus a partially
	// injected packet's remaining flits.
	srcQueue []*packet
	srcSent  int // flits of srcQueue[0] already injected
	// rrOut[p] is the round-robin pointer of output p; rrOut[OutDeg] is
	// the ejection port's.
	rrOut []int
}

// Sim is a running simulation.
type Sim struct {
	cfg     Config
	t       topo.Topology
	rng     *rand.Rand
	sampler *routing.Sampler
	policy  VCPolicy
	routers []router
	nVCs    int // total VCs per input port
	// Per-node link tables, precomputed so the per-flit hot path does no
	// interface calls: port p of node n reaches neighbor[n][p], landing in
	// its input bank at index revPort[n][p] (the port of the reverse
	// channel at the neighbor, which is also the neighbor's credit index
	// for traffic flowing back to n).
	neighbor [][]topo.Node
	revPort  [][]int

	cycle        int
	measureStart int
	injFlits     int
	ejFlits      int
	latencySum   int64
	ejPackets    int
	idleCycles   int
	deadlocked   bool
	measuring    bool
	destCum      [][]float64 // per-source destination CDF
}

// New builds a simulator. Configuration is external input (CLI flags,
// sweep scripts), so nonsensical values are reported as errors rather than
// panics.
func New(cfg Config) (*Sim, error) {
	t := cfg.Topo
	if t == nil {
		if cfg.K < 2 {
			return nil, fmt.Errorf("sim: radix %d < 2", cfg.K)
		}
		t = topo.NewTorus(cfg.K)
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("sim: negative injection rate %g", cfg.Rate)
	}
	if cfg.VCsPerClass == 0 {
		cfg.VCsPerClass = 1
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 4
	}
	if cfg.PacketFlits == 0 {
		cfg.PacketFlits = 4
	}
	if cfg.Alg == nil {
		return nil, fmt.Errorf("sim: routing algorithm required")
	}
	sampler := routing.NewSampler(t, cfg.Alg)
	policy := cfg.Policy
	if policy == nil {
		if _, isTorus := t.(*topo.Torus); isTorus {
			policy = PolicyFor(cfg.Alg)
		} else {
			classes := sampler.MaxLen()
			if classes < 1 {
				classes = 1
			}
			policy = HopClassPolicy{NumClasses: classes}
		}
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = traffic.Uniform(t.Nodes())
	}
	if pattern.N != t.Nodes() {
		return nil, fmt.Errorf("sim: pattern size %d != network size %d", pattern.N, t.Nodes())
	}
	s := &Sim{
		cfg:     cfg,
		t:       t,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		sampler: sampler,
		policy:  policy,
		nVCs:    policy.Classes() * cfg.VCsPerClass,
	}
	nNodes := t.Nodes()
	s.routers = make([]router, nNodes)
	s.neighbor = make([][]topo.Node, nNodes)
	s.revPort = make([][]int, nNodes)
	for n := range s.routers {
		deg := t.OutDeg(topo.Node(n))
		r := &s.routers[n]
		r.in = make([][]vcState, deg)
		r.credits = make([][]int, deg)
		r.rrOut = make([]int, deg+1)
		s.neighbor[n] = make([]topo.Node, deg)
		s.revPort[n] = make([]int, deg)
		for p := 0; p < deg; p++ {
			r.in[p] = make([]vcState, s.nVCs)
			r.credits[p] = make([]int, s.nVCs)
			for v := range r.credits[p] {
				r.credits[p][v] = cfg.BufDepth
			}
			c := t.PortChan(topo.Node(n), p)
			s.neighbor[n][p] = t.ChanDst(c)
			s.revPort[n][p] = t.ChanPort(t.ReverseChan(c))
		}
	}
	// Destination CDFs for injection.
	s.destCum = make([][]float64, nNodes)
	for src := 0; src < nNodes; src++ {
		cum := make([]float64, nNodes)
		var acc float64
		for d := 0; d < nNodes; d++ {
			acc += pattern.L[src][d]
			cum[d] = acc
		}
		s.destCum[src] = cum
	}
	return s, nil
}
