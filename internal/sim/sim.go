// Package sim is a cycle-based, flit-level simulator for k-ary 2-cube
// networks with virtual-channel flow control. It backs two claims the paper
// makes outside its analytical model: that the ideal (edge-congestion)
// throughput bound is approached but not met by practical routers
// (Section 2.1 cites 60-75%), and that the studied routing algorithms have
// simple deadlock-free implementations with a handful of virtual channels
// per physical channel (Section 5.2).
//
// The router model is a canonical input-queued VC router: per-input virtual
// channels with credit-based backpressure, atomic VC allocation (a virtual
// channel is held by one packet from head to tail), and round-robin switch
// allocation granting one flit per output per cycle. Paths are source
// routed: the oblivious routing algorithm draws the entire path at
// injection, and a per-algorithm VCPolicy assigns each hop a virtual
// channel class (dateline rules for rings, class bumps at Y-to-X turns) so
// the channel-dependence graph stays acyclic.
package sim

import (
	"fmt"
	"math/rand"

	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// VCPolicy assigns a virtual-channel class to every hop of a path. The
// returned slice has one entry per hop, each in [0, numClasses).
type VCPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Classes is the number of VC classes the policy needs.
	Classes() int
	// Assign labels each hop of the path with its VC class.
	Assign(t *topo.Torus, p paths.Path) []int
}

// DatelinePolicy implements the classic two-VC ring deadlock avoidance: a
// packet uses class 0 in each dimension until it crosses that dimension's
// wrap-around (dateline) channel, class 1 after. Sufficient for
// dimension-order routing.
type DatelinePolicy struct{}

// Name implements VCPolicy.
func (DatelinePolicy) Name() string { return "dateline" }

// Classes implements VCPolicy.
func (DatelinePolicy) Classes() int { return 2 }

// Assign implements VCPolicy.
func (DatelinePolicy) Assign(t *topo.Torus, p paths.Path) []int {
	return assignDateline(t, p, 0)
}

// TurnDatelinePolicy implements the paper's scheme for two-turn paths
// (Section 5.2): the VC set is incremented after each Y-to-X turn (at most
// one on any two-turn path), and within a set the dateline rule breaks
// intra-ring cycles, for four classes total. DOR, IVAL and 2TURN paths are
// all covered.
type TurnDatelinePolicy struct{}

// Name implements VCPolicy.
func (TurnDatelinePolicy) Name() string { return "turn+dateline" }

// Classes implements VCPolicy.
func (TurnDatelinePolicy) Classes() int { return 4 }

// Assign implements VCPolicy.
func (TurnDatelinePolicy) Assign(t *topo.Torus, p paths.Path) []int {
	return assignDateline(t, p, 1)
}

// assignDateline walks the path tracking the dateline bit (reset whenever
// the packet turns into a new dimension run) and, when turnBit is set, a
// set bit that flips once at the packet's "phase boundary": the first
// Y-to-X turn or the first direction reversal within a dimension. For
// two-turn paths this is exactly the paper's bump-after-Y-to-X rule; for
// the two-phase algorithms (VAL, IVAL, ROMM, RLB) it coincides with the
// phase change, giving each set a dimension-ordered, reversal-free prefix
// whose channel dependences are acyclic under the dateline rule.
func assignDateline(t *topo.Torus, p paths.Path, turnBit int) []int {
	classes := make([]int, len(p.Dirs))
	n := p.Src
	set := 0
	dateline := 0
	lastDir := [2]topo.Dir{-1, -1} // per-dimension direction seen so far
	for i, d := range p.Dirs {
		if i > 0 && d.IsX() != p.Dirs[i-1].IsX() {
			dateline = 0
		}
		if turnBit == 1 && set == 0 && i > 0 {
			yToX := d.IsX() && !p.Dirs[i-1].IsX()
			dim := 0
			if !d.IsX() {
				dim = 1
			}
			reversal := lastDir[dim] >= 0 && lastDir[dim] == d.Reverse()
			if yToX || reversal {
				set = 1
				dateline = 0
			}
		}
		if d.IsX() {
			lastDir[0] = d
		} else {
			lastDir[1] = d
		}
		classes[i] = set*2 + dateline
		// Crossing the wrap channel flips the dateline bit for the rest
		// of this dimension run.
		x, y := t.Coord(n)
		nxt := t.Neighbor(n, d)
		nx, ny := t.Coord(nxt)
		if d.IsX() {
			if (d == topo.XPlus && nx < x) || (d == topo.XMinus && nx > x) {
				dateline = 1
			}
		} else {
			if (d == topo.YPlus && ny < y) || (d == topo.YMinus && ny > y) {
				dateline = 1
			}
		}
		n = nxt
	}
	return classes
}

// PolicyFor returns the conventional policy for an algorithm name:
// dateline-only for plain DOR, turn+dateline otherwise.
func PolicyFor(alg routing.Algorithm) VCPolicy {
	if alg.Name() == "DOR" || alg.Name() == "DOR-yx" {
		return DatelinePolicy{}
	}
	return TurnDatelinePolicy{}
}

// Default measurement windows used when Config.Warmup/Measure are zero.
const (
	DefaultWarmup  = 3000
	DefaultMeasure = 10000
)

// Config parameterizes a simulation.
type Config struct {
	K           int     // torus radix
	VCsPerClass int     // virtual channels per class (default 1)
	BufDepth    int     // flit buffer depth per VC (default 4)
	PacketFlits int     // flits per packet (default 4)
	Rate        float64 // offered load: flits per node per cycle (1.0 = full injection bandwidth)
	Seed        int64

	Alg     routing.Algorithm
	Policy  VCPolicy        // nil = PolicyFor(Alg)
	Pattern *traffic.Matrix // destination distribution per source; nil = uniform

	// Warmup and Measure are the pre-measurement and measurement window
	// lengths in cycles used by Simulate and FindSaturation; zero selects
	// DefaultWarmup/DefaultMeasure.
	Warmup, Measure int
	// Workers bounds FindSaturation's sweep concurrency: each rate is an
	// independent simulation with its own RNG seeded from Seed, so the
	// sweep result is identical for every worker count. 0 uses all cores;
	// 1 runs the sweep sequentially.
	Workers int
}

func (c Config) warmup() int {
	if c.Warmup > 0 {
		return c.Warmup
	}
	return DefaultWarmup
}

func (c Config) measure() int {
	if c.Measure > 0 {
		return c.Measure
	}
	return DefaultMeasure
}

// Stats summarizes a measurement window.
type Stats struct {
	Cycles int
	// InjectedFlits / EjectedFlits count flits entering and leaving the
	// network during the measurement window.
	InjectedFlits, EjectedFlits int
	// Throughput is accepted flits per node per cycle.
	Throughput float64
	// AvgLatency is the mean packet latency (injection-queue entry to tail
	// ejection) over packets ejected in the window.
	AvgLatency float64
	// PacketsEjected is the latency sample count.
	PacketsEjected int
	// Deadlocked reports that the watchdog saw no forward progress for a
	// long stretch while flits were buffered.
	Deadlocked bool
}

// packet is an in-flight packet with its precomputed route.
type packet struct {
	dirs     []topo.Dir
	vcs      []int // concrete VC per hop
	flits    int
	injected int // cycle the packet entered the source queue
}

// vcState is one virtual channel of one input port.
type vcState struct {
	buf []flitRef // FIFO of buffered flits
	// owner is the packet currently allocated this VC (nil when idle).
	// Allocation is atomic head-to-tail.
	owner *packet
}

type flitRef struct {
	pkt  *packet
	hop  int32 // hops completed so far (route index at the current node)
	last bool  // tail flit
}

// router is one node's state.
type router struct {
	// in[dir][vc] are input buffers for flits arriving over the channel
	// from direction dir's neighbor; in[NumDirs] is unused (injection is
	// modeled as a source queue).
	in [topo.NumDirs][]vcState
	// credits[dir][vc]: free downstream slots for the output toward dir.
	credits [topo.NumDirs][]int
	// source queue of packets awaiting injection, plus a partially
	// injected packet's remaining flits.
	srcQueue []*packet
	srcSent  int // flits of srcQueue[0] already injected
	rrOut    [topo.NumDirs + 1]int
}

// Sim is a running simulation.
type Sim struct {
	cfg     Config
	t       *topo.Torus
	rng     *rand.Rand
	sampler *routing.Sampler
	policy  VCPolicy
	routers []router
	nVCs    int // total VCs per input port

	cycle        int
	measureStart int
	injFlits     int
	ejFlits      int
	latencySum   int64
	ejPackets    int
	idleCycles   int
	deadlocked   bool
	measuring    bool
	destCum      [][]float64 // per-source destination CDF
}

// New builds a simulator. Configuration is external input (CLI flags,
// sweep scripts), so nonsensical values are reported as errors rather than
// panics.
func New(cfg Config) (*Sim, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("sim: radix %d < 2", cfg.K)
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("sim: negative injection rate %g", cfg.Rate)
	}
	if cfg.VCsPerClass == 0 {
		cfg.VCsPerClass = 1
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 4
	}
	if cfg.PacketFlits == 0 {
		cfg.PacketFlits = 4
	}
	if cfg.Alg == nil {
		return nil, fmt.Errorf("sim: routing algorithm required")
	}
	t := topo.NewTorus(cfg.K)
	policy := cfg.Policy
	if policy == nil {
		policy = PolicyFor(cfg.Alg)
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = traffic.Uniform(t.N)
	}
	if pattern.N != t.N {
		return nil, fmt.Errorf("sim: pattern size %d != network size %d", pattern.N, t.N)
	}
	s := &Sim{
		cfg:     cfg,
		t:       t,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		sampler: routing.NewSampler(t, cfg.Alg),
		policy:  policy,
		nVCs:    policy.Classes() * cfg.VCsPerClass,
	}
	s.routers = make([]router, t.N)
	for n := range s.routers {
		r := &s.routers[n]
		for d := 0; d < topo.NumDirs; d++ {
			r.in[d] = make([]vcState, s.nVCs)
			r.credits[d] = make([]int, s.nVCs)
			for v := range r.credits[d] {
				r.credits[d][v] = cfg.BufDepth
			}
		}
	}
	// Destination CDFs for injection.
	s.destCum = make([][]float64, t.N)
	for src := 0; src < t.N; src++ {
		cum := make([]float64, t.N)
		var acc float64
		for d := 0; d < t.N; d++ {
			acc += pattern.L[src][d]
			cum[d] = acc
		}
		s.destCum[src] = cum
	}
	return s, nil
}
