// Package online implements the streaming half of the online design loop:
// a per-tenant traffic-matrix estimator fed by (src, dst) flow samples, and
// the re-design controller that decides when the live estimate has drifted
// far enough from the traffic the served design was tuned to that an
// incremental re-solve is worth launching.
//
// The estimator is a seeded count-min sketch with an exact top-k
// heavy-hitter list on top: the sketch absorbs arbitrary pair cardinality
// in O(rows * cols) memory with the classic overestimate-only error bound,
// while the heavy hitters — the entries that actually shape a traffic
// matrix's skew — are tracked individually. A windowed exponential decay,
// keyed to ingested sample mass rather than wall-clock time, ages old
// traffic out; everything (hashing, decay, eviction) is deterministic in
// the configured seed, so a fixed sample stream reproduces the estimate
// bit for bit on any machine, any number of restarts included.
package online

import (
	"fmt"
	"math"
	"sort"

	"tcr/internal/traffic"
)

// SketchConfig sizes the estimator; the zero value (plus N) is ready to use.
type SketchConfig struct {
	// N is the node count; samples address pairs (src, dst) in [0, N).
	N int
	// Rows is the count-min depth (default 4).
	Rows int
	// Cols is the count-min width, rounded up to a power of two
	// (default 256).
	Cols int
	// TopK bounds the exact heavy-hitter list (default 64).
	TopK int
	// Seed derives the per-row hash functions (splitmix64 chain). Two
	// sketches with the same seed and config are interchangeable.
	Seed uint64
	// Window is the sample mass between decay steps (default 1024): each
	// time Window samples have been ingested, every counter is scaled by
	// Alpha. Decay is keyed to mass, not time, so replays reproduce.
	Window float64
	// Alpha is the per-window decay factor in (0, 1] (default 0.5).
	Alpha float64
}

func (c SketchConfig) rows() int {
	if c.Rows > 0 {
		return c.Rows
	}
	return 4
}

func (c SketchConfig) cols() int {
	w := c.Cols
	if w <= 0 {
		w = 256
	}
	// Round up to a power of two so the hash can mask instead of mod.
	p := 1
	for p < w {
		p <<= 1
	}
	return p
}

func (c SketchConfig) topK() int {
	if c.TopK > 0 {
		return c.TopK
	}
	return 64
}

func (c SketchConfig) window() float64 {
	if c.Window > 0 {
		return c.Window
	}
	return 1024
}

func (c SketchConfig) alpha() float64 {
	if c.Alpha > 0 && c.Alpha <= 1 {
		return c.Alpha
	}
	return 0.5
}

// splitmix64 is the seed-expansion and hashing primitive: a full-avalanche
// 64-bit mixer, deterministic by construction.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sketch is the per-tenant traffic estimator. Not safe for concurrent use;
// the manager serializes access.
type Sketch struct {
	cfg     SketchConfig
	rowSeed []uint64
	counts  [][]float64
	// top maps pair keys (src<<32 | dst) to their decayed count estimates.
	top map[uint64]float64
	// total is the decayed total mass; pending the mass since the last
	// decay step; ingested the cumulative raw mass (never decayed).
	total, pending, ingested float64
}

// NewSketch builds an empty estimator. N must be positive.
func NewSketch(cfg SketchConfig) (*Sketch, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("online: sketch needs N > 0, got %d", cfg.N)
	}
	s := &Sketch{cfg: cfg, top: make(map[uint64]float64)}
	rows, cols := cfg.rows(), cfg.cols()
	s.rowSeed = make([]uint64, rows)
	seed := cfg.Seed
	for r := range s.rowSeed {
		seed = splitmix64(seed)
		s.rowSeed[r] = seed
	}
	s.counts = make([][]float64, rows)
	for r := range s.counts {
		s.counts[r] = make([]float64, cols)
	}
	return s, nil
}

// Config returns the sketch's configuration.
func (s *Sketch) Config() SketchConfig { return s.cfg }

func pairKey(src, dst int) uint64 { return uint64(src)<<32 | uint64(uint32(dst)) }

// Add ingests one sample: count units of traffic from src to dst. Counts
// must be positive and finite; src and dst in range and distinct (self
// traffic never loads a channel and is rejected rather than silently
// skewing the estimate).
func (s *Sketch) Add(src, dst int, count float64) error {
	n := s.cfg.N
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("online: sample (%d,%d) out of range for N=%d", src, dst, n)
	}
	if src == dst {
		return fmt.Errorf("online: self sample (%d,%d)", src, dst)
	}
	if count <= 0 || math.IsInf(count, 0) || math.IsNaN(count) {
		return fmt.Errorf("online: sample count %v not positive finite", count)
	}
	key := pairKey(src, dst)
	mask := uint64(len(s.counts[0]) - 1)
	est := math.Inf(1)
	for r := range s.counts {
		idx := splitmix64(s.rowSeed[r]^key) & mask
		s.counts[r][idx] += count
		if c := s.counts[r][idx]; c < est {
			est = c
		}
	}
	if _, ok := s.top[key]; ok {
		s.top[key] += count
	} else if len(s.top) < s.cfg.topK() {
		s.top[key] = est
	} else {
		// Evict the smallest heavy hitter if the newcomer's count-min
		// estimate beats it. Ties break on the smaller key, so the
		// outcome never depends on map iteration order.
		minKey, minVal := uint64(0), math.Inf(1)
		for k, v := range s.top {
			//lint:ignore floatcmp ordering comparator: exact == only decides whether the key tiebreak applies
			if v < minVal || (v == minVal && k < minKey) {
				minKey, minVal = k, v
			}
		}
		if est > minVal {
			delete(s.top, minKey)
			s.top[key] = est
		}
	}
	s.total += count
	s.ingested += count
	s.pending += count
	for s.pending >= s.cfg.window() {
		s.decay()
		s.pending -= s.cfg.window()
	}
	return nil
}

// decay scales every counter by Alpha — one window's worth of aging.
func (s *Sketch) decay() {
	a := s.cfg.alpha()
	for r := range s.counts {
		row := s.counts[r]
		for i := range row {
			row[i] *= a
		}
	}
	for k := range s.top {
		s.top[k] *= a
	}
	s.total *= a
}

// Ingested returns the cumulative raw sample mass (decay-free); the
// controller gates its first decision on it.
func (s *Sketch) Ingested() float64 { return s.ingested }

// topKeys returns the heavy-hitter keys in ascending order — the canonical
// iteration order for every mass summation and serialization, so results
// never depend on Go's randomized map order.
func (s *Sketch) topKeys() []uint64 {
	keys := make([]uint64, 0, len(s.top))
	for k := range s.top {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Estimate renders the current estimate as a normalized traffic matrix
// (entries sum to 1, zero diagonal): the heavy hitters carry their decayed
// estimates, and whatever decayed mass they do not account for is spread
// uniformly over the non-self pairs — the sketch knows that mass exists but
// not where, and uniform is the max-entropy completion. An empty sketch
// estimates uniform traffic.
func (s *Sketch) Estimate() *traffic.Matrix {
	n := s.cfg.N
	m := traffic.NewMatrix(n)
	if n < 2 {
		return m
	}
	keys := s.topKeys()
	heavy := 0.0
	for _, k := range keys {
		heavy += s.top[k]
	}
	residual := s.total - heavy
	if residual < 0 {
		residual = 0
	}
	mass := heavy + residual
	if mass <= 0 {
		u := 1.0 / float64(n*(n-1))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					m.L[i][j] = u
				}
			}
		}
		return m
	}
	base := residual / mass / float64(n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.L[i][j] = base
			}
		}
	}
	for _, k := range keys {
		m.L[int(k>>32)][int(uint32(k))] += s.top[k] / mass
	}
	return m
}

// sketchState is the serialized form of a sketch; heavy hitters are stored
// as parallel key-sorted slices so the encoding is canonical.
type sketchState struct {
	Config   SketchConfig `json:"config"`
	Counts   [][]float64  `json:"counts"`
	TopKeys  []uint64     `json:"topKeys"`
	TopVals  []float64    `json:"topVals"`
	Total    float64      `json:"total"`
	Pending  float64      `json:"pending"`
	Ingested float64      `json:"ingested"`
}

func (s *Sketch) state() sketchState {
	keys := s.topKeys()
	vals := make([]float64, len(keys))
	for i, k := range keys {
		vals[i] = s.top[k]
	}
	return sketchState{
		Config:   s.cfg,
		Counts:   s.counts,
		TopKeys:  keys,
		TopVals:  vals,
		Total:    s.total,
		Pending:  s.pending,
		Ingested: s.ingested,
	}
}

// restoreSketch rebuilds a sketch from its serialized state, validating the
// shape against the configuration (a snapshot for a differently sized
// sketch is unusable).
func restoreSketch(st sketchState) (*Sketch, error) {
	s, err := NewSketch(st.Config)
	if err != nil {
		return nil, err
	}
	if len(st.Counts) != len(s.counts) || len(st.TopKeys) != len(st.TopVals) ||
		len(st.TopKeys) > s.cfg.topK() {
		return nil, fmt.Errorf("online: sketch state shape mismatch")
	}
	for r := range st.Counts {
		if len(st.Counts[r]) != len(s.counts[r]) {
			return nil, fmt.Errorf("online: sketch state row %d width mismatch", r)
		}
		copy(s.counts[r], st.Counts[r])
	}
	for i, k := range st.TopKeys {
		if int(k>>32) >= s.cfg.N || int(uint32(k)) >= s.cfg.N {
			return nil, fmt.Errorf("online: sketch state heavy hitter out of range")
		}
		s.top[k] = st.TopVals[i]
	}
	s.total, s.pending, s.ingested = st.Total, st.Pending, st.Ingested
	return s, nil
}
