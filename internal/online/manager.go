package online

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"tcr/internal/store"
	"tcr/internal/traffic"
)

// Manager owns the per-tenant estimator + controller pairs and their
// persistence: one JSON snapshot per tenant under <dir>/, written through
// the store's atomic path (temp + fsync + rename) after every ingest batch,
// sealed with an integrity hash. A snapshot a crash tore is quarantined and
// the tenant starts fresh — recover or quarantine, never crash-loop, same
// contract as the daemon's job index.

// snapshotSchema versions the persisted tenant state.
const snapshotSchema = "tcr-online-1"

// tenantPattern constrains tenant names: they become file names and metric
// label values, so the store's key alphabet applies.
var tenantPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)

// ValidTenant reports whether name is usable as a tenant identifier.
func ValidTenant(name string) bool { return tenantPattern.MatchString(name) }

// Sample is one observed flow: count units from Src to Dst.
type Sample struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Count float64 `json:"count,omitempty"` // 0 means 1
}

// Config assembles a manager.
type Config struct {
	// Dir is the snapshot directory (created on demand). Empty disables
	// persistence — estimates then live and die with the process.
	Dir string
	// Sketch and Controller configure every tenant identically.
	Sketch     SketchConfig
	Controller ControllerConfig
	// HMax and HSteps define the operating-point grid TargetHNorm
	// quantizes onto (defaults 1.5 and 5).
	HMax   float64
	HSteps int
}

func (c Config) hMax() float64 {
	if c.HMax > 1 {
		return c.HMax
	}
	return 1.5
}

func (c Config) hSteps() int {
	if c.HSteps > 1 {
		return c.HSteps
	}
	return 5
}

// Tenant is one tenant's live state. Access only through the manager's
// methods; the manager's lock serializes.
type tenant struct {
	name   string
	sketch *Sketch
	ctrl   *Controller
}

// Manager is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	cfg     Config
	tenants map[string]*tenant
}

// NewManager builds a manager; existing snapshots load lazily per tenant.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Sketch.N <= 0 {
		return nil, fmt.Errorf("online: manager needs Sketch.N > 0")
	}
	return &Manager{cfg: cfg, tenants: make(map[string]*tenant)}, nil
}

// snapshot is the persisted per-tenant state. SHA256 seals the encoding
// with the field itself empty, exactly like the design checkpoint.
type snapshot struct {
	Schema     string          `json:"schema"`
	SHA256     string          `json:"sha256"`
	Tenant     string          `json:"tenant"`
	Sketch     sketchState     `json:"sketch"`
	Controller ControllerState `json:"controller"`
}

func (sn *snapshot) seal() ([]byte, error) {
	sn.SHA256 = ""
	body, err := json.Marshal(sn)
	if err != nil {
		return nil, err
	}
	sn.SHA256 = store.HashBytes(body)
	return json.Marshal(sn)
}

func (sn *snapshot) verify() bool {
	want := sn.SHA256
	if want == "" {
		return false
	}
	sn.SHA256 = ""
	body, err := json.Marshal(sn)
	sn.SHA256 = want
	return err == nil && store.HashBytes(body) == want
}

func (m *Manager) snapshotPath(name string) string {
	return filepath.Join(m.cfg.Dir, name+".json")
}

// get returns the tenant, restoring its snapshot on first access or
// creating it fresh. Caller holds m.mu.
func (m *Manager) get(name string) (*tenant, error) {
	if !ValidTenant(name) {
		return nil, fmt.Errorf("online: invalid tenant %q", name)
	}
	if t, ok := m.tenants[name]; ok {
		return t, nil
	}
	t := &tenant{name: name}
	if m.cfg.Dir != "" {
		if st, ok := m.loadSnapshot(name); ok {
			if sk, err := restoreSketch(st.Sketch); err == nil {
				t.sketch = sk
				t.ctrl = restoreController(m.cfg.Controller, st.Controller)
			}
		}
	}
	if t.sketch == nil {
		sk, err := NewSketch(m.cfg.Sketch)
		if err != nil {
			return nil, err
		}
		t.sketch = sk
		t.ctrl = NewController(m.cfg.Controller)
	}
	m.tenants[name] = t
	return t, nil
}

// loadSnapshot reads and validates a tenant snapshot. Unusable files
// (missing, torn, failed hash, foreign schema, config mismatch) report
// !ok; torn ones are quarantined aside first.
func (m *Manager) loadSnapshot(name string) (snapshot, bool) {
	path := m.snapshotPath(name)
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return snapshot{}, false
	}
	if err != nil {
		return snapshot{}, false
	}
	var sn snapshot
	if uerr := json.Unmarshal(b, &sn); uerr != nil || sn.Schema != snapshotSchema ||
		!sn.verify() || sn.Tenant != name || sn.Sketch.Config != m.cfg.Sketch {
		//lint:ignore errdrop quarantine is best-effort; the tenant restarts fresh either way
		_ = os.Rename(path, path+".quarantine")
		return snapshot{}, false
	}
	return sn, true
}

// save persists one tenant's state. Caller holds m.mu. Best-effort by
// design — estimates are reconstructible from future traffic, so a failed
// write costs restart fidelity, not correctness — but the error is
// returned for the caller's logging.
func (m *Manager) save(t *tenant) error {
	if m.cfg.Dir == "" {
		return nil
	}
	sn := snapshot{
		Schema:     snapshotSchema,
		Tenant:     t.name,
		Sketch:     t.sketch.state(),
		Controller: t.ctrl.State(),
	}
	data, err := sn.seal()
	if err != nil {
		return fmt.Errorf("online: snapshot encode: %w", err)
	}
	if err := os.MkdirAll(m.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("online: snapshot dir: %w", err)
	}
	if err := store.WriteFileAtomic(m.snapshotPath(t.name), data, 0o644); err != nil {
		return fmt.Errorf("online: snapshot write: %w", err)
	}
	return nil
}

// Ingest adds a batch of samples to a tenant's sketch and persists the
// snapshot. Samples that fail validation (out of range, self pairs,
// non-positive counts) are rejected individually; accepted reports how many
// landed and the first rejection reason (if any) comes back as rejectErr
// alongside a nil error.
func (m *Manager) Ingest(name string, samples []Sample) (accepted int, rejectErr, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, err := m.get(name)
	if err != nil {
		return 0, nil, err
	}
	for _, s := range samples {
		c := s.Count
		//lint:ignore floatcmp the wire-format default: an omitted count decodes to exactly 0
		if c == 0 {
			c = 1
		}
		if aerr := t.sketch.Add(s.Src, s.Dst, c); aerr != nil {
			if rejectErr == nil {
				rejectErr = aerr
			}
			continue
		}
		accepted++
	}
	if serr := m.save(t); serr != nil && rejectErr == nil {
		rejectErr = serr
	}
	return accepted, rejectErr, nil
}

// Decision is what one controller step resolved to.
type Decision struct {
	// Trip reports that a re-solve should launch now; Estimate is the
	// live estimate the decision was made on and TargetHNorm the operating
	// point the re-solve should be run at (meaningful when Trip).
	Trip        bool
	Drift       float64
	Estimate    [][]float64
	TargetHNorm float64
	// Served mirrors the controller's published state.
	ServedFP    string
	ServedHNorm float64
	Resolving   bool
	Armed       bool
	Cooloff     int
	Ingested    float64
}

// Step runs one controller decision for the tenant against the configured
// operating-point grid and persists the state change. Persistence is
// best-effort even on a trip: a trip whose state failed to persist would
// merely re-trip after a restart, and the design store dedups the repeat.
func (m *Manager) Step(name string) (Decision, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, err := m.get(name)
	if err != nil {
		return Decision{}, err
	}
	est := t.sketch.Estimate()
	trip, drift := t.ctrl.Step(est, t.sketch.Ingested())
	d := Decision{
		Trip:        trip,
		Drift:       drift,
		TargetHNorm: TargetHNorm(est, m.cfg.hMax(), m.cfg.hSteps()),
	}
	if trip {
		d.Estimate = est.L
	}
	m.fillState(&d, t)
	//lint:ignore errdrop see the method comment: best-effort persistence by design
	_ = m.save(t)
	return d, nil
}

// fillState copies the controller's current state into d.
func (m *Manager) fillState(d *Decision, t *tenant) {
	st := t.ctrl.State()
	d.ServedFP = st.ServedFP
	d.ServedHNorm = st.ServedHNorm
	d.Resolving = st.Resolving
	d.Armed = st.Armed
	d.Cooloff = st.Cooloff
	d.Ingested = t.sketch.Ingested()
}

// Status reports a tenant's current state without advancing the
// controller.
func (m *Manager) Status(name string) (Decision, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, err := m.get(name)
	if err != nil {
		return Decision{}, err
	}
	est := t.sketch.Estimate()
	ref := t.ctrl.ref()
	if ref == nil {
		ref = uniformNoSelf(est.N)
	}
	d := Decision{Drift: Drift(est, ref), TargetHNorm: TargetHNorm(est, m.cfg.hMax(), m.cfg.hSteps())}
	m.fillState(&d, t)
	return d, nil
}

// Published forwards a successful publish to the tenant's controller and
// persists.
func (m *Manager) Published(name, fp string, hNorm float64, est [][]float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, err := m.get(name)
	if err != nil {
		return err
	}
	ref := traffic.NewMatrix(len(est))
	for i := range est {
		copy(ref.L[i], est[i])
	}
	t.ctrl.Published(fp, hNorm, ref)
	return m.save(t)
}

// ResolveFailed forwards a failed re-solve and persists.
func (m *Manager) ResolveFailed(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, err := m.get(name)
	if err != nil {
		return err
	}
	t.ctrl.ResolveFailed()
	return m.save(t)
}

// Drifts returns every loaded tenant's current drift, keyed by tenant, for
// the metrics endpoint. Tenants are reported in sorted order by the caller;
// the map itself carries no order.
func (m *Manager) Drifts() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.tenants))
	for name, t := range m.tenants {
		est := t.sketch.Estimate()
		ref := t.ctrl.ref()
		if ref == nil {
			ref = uniformNoSelf(est.N)
		}
		out[name] = Drift(est, ref)
	}
	return out
}

// Tenants returns the loaded tenant names, sorted.
func (m *Manager) Tenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
