package online

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tcr/internal/traffic"
)

// stream generates a deterministic sample stream: frac of the mass on the
// pair (0, 1), the rest spread by a seeded PRNG over all non-self pairs.
func stream(n, count int, frac float64, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, count)
	for i := 0; i < count; i++ {
		if rng.Float64() < frac {
			out = append(out, Sample{Src: 0, Dst: 1})
			continue
		}
		s := rng.Intn(n)
		d := rng.Intn(n - 1)
		if d >= s {
			d++
		}
		out = append(out, Sample{Src: s, Dst: d})
	}
	return out
}

func feed(t *testing.T, sk *Sketch, samples []Sample) {
	t.Helper()
	for _, s := range samples {
		c := s.Count
		if c == 0 {
			c = 1
		}
		if err := sk.Add(s.Src, s.Dst, c); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSketchDeterministic pins the reproducibility contract: two sketches
// with the same seed fed the same stream agree bit for bit — counters,
// heavy hitters, and estimate.
func TestSketchDeterministic(t *testing.T) {
	cfg := SketchConfig{N: 8, Seed: 42}
	a, err := NewSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := stream(8, 5000, 0.3, 7)
	feed(t, a, samples)
	feed(t, b, samples)
	if !reflect.DeepEqual(a.state(), b.state()) {
		t.Fatal("identical streams produced different sketch states")
	}
	ea, eb := a.Estimate(), b.Estimate()
	if !reflect.DeepEqual(ea.L, eb.L) {
		t.Fatal("identical streams produced different estimates")
	}
}

// TestSketchEstimateHeavyHitter: a pair carrying 40% of the traffic must
// show up in the estimate at roughly its true share, and the estimate must
// be a distribution (mass 1, zero diagonal).
func TestSketchEstimateHeavyHitter(t *testing.T) {
	sk, err := NewSketch(SketchConfig{N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sk, stream(8, 20000, 0.4, 3))
	est := sk.Estimate()
	sum := 0.0
	for i := 0; i < est.N; i++ {
		if est.L[i][i] != 0 {
			t.Fatalf("estimate has diagonal mass at %d", i)
		}
		for j := 0; j < est.N; j++ {
			sum += est.L[i][j]
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("estimate mass %v, want 1", sum)
	}
	if got := est.L[0][1]; got < 0.3 || got > 0.5 {
		t.Fatalf("heavy hitter share %v, want ~0.4", got)
	}
}

// TestSketchDecayForgets: after the stream shifts, decay must let the new
// pattern dominate the estimate even though the old one carried more raw
// mass.
func TestSketchDecayForgets(t *testing.T) {
	sk, err := NewSketch(SketchConfig{N: 8, Seed: 9, Window: 512, Alpha: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: heavy on (0,1). Phase 2 (half the mass): heavy on (5,2).
	feed(t, sk, stream(8, 8000, 0.5, 11))
	for i := 0; i < 4000; i++ {
		if err := sk.Add(5, 2, 1); err != nil {
			t.Fatal(err)
		}
	}
	est := sk.Estimate()
	if est.L[5][2] < 2*est.L[0][1] {
		t.Fatalf("decay failed to forget: old hitter %v, new hitter %v",
			est.L[0][1], est.L[5][2])
	}
}

// TestSketchRejectsBadSamples: out-of-range, self, and non-finite samples
// are rejected without touching the sketch.
func TestSketchRejectsBadSamples(t *testing.T) {
	sk, err := NewSketch(SketchConfig{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		src, dst int
		count    float64
	}{
		{-1, 2, 1}, {0, 4, 1}, {2, 2, 1}, {0, 1, 0}, {0, 1, -3},
		{0, 1, math.Inf(1)}, {0, 1, math.NaN()},
	}
	for _, c := range bad {
		if err := sk.Add(c.src, c.dst, c.count); err == nil {
			t.Errorf("Add(%d,%d,%v) accepted", c.src, c.dst, c.count)
		}
	}
	if sk.Ingested() != 0 {
		t.Fatalf("rejected samples changed ingested mass: %v", sk.Ingested())
	}
}

// TestDriftProperties: zero against itself, one against disjoint support,
// symmetric, and insensitive to input scaling.
func TestDriftProperties(t *testing.T) {
	n := 6
	p := uniformNoSelf(n)
	if d := Drift(p, p); d != 0 {
		t.Fatalf("Drift(p,p) = %v", d)
	}
	a := traffic.NewMatrix(n)
	a.L[0][1] = 1
	b := traffic.NewMatrix(n)
	b.L[2][3] = 1
	if d := Drift(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint distributions drift %v, want 1", d)
	}
	scaled := traffic.NewMatrix(n)
	scaled.L[0][1] = 17.5
	if d := Drift(a, scaled); d != 0 {
		t.Fatalf("scaling changed drift: %v", d)
	}
	if d1, d2 := Drift(a, p), Drift(p, a); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("drift asymmetric: %v vs %v", d1, d2)
	}
}

// TestTargetHNormGrid: uniform maps to minimal locality, a single-pair
// concentration to the top of the grid, and outputs snap to grid points.
func TestTargetHNormGrid(t *testing.T) {
	n := 8
	if h := TargetHNorm(uniformNoSelf(n), 1.5, 5); h != 1 {
		t.Fatalf("uniform target %v, want 1", h)
	}
	conc := traffic.NewMatrix(n)
	conc.L[0][1] = 1
	if h := TargetHNorm(conc, 1.5, 5); h != 1.5 {
		t.Fatalf("concentrated target %v, want 1.5", h)
	}
	// Halfway skew lands on an interior grid point.
	mix := traffic.NewMatrix(n)
	mix.L[0][1] = 0.5
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				mix.L[i][j] += 0.5 / float64(n*(n-1))
			}
		}
	}
	h := TargetHNorm(mix, 1.5, 5)
	onGrid := false
	for i := 0; i < 5; i++ {
		//lint:ignore floatcmp grid membership is exact by construction
		if h == 1+float64(i)*0.125 {
			onGrid = true
		}
	}
	if !onGrid {
		t.Fatalf("target %v not on the 5-point grid", h)
	}
}

// TestControllerLifecycle walks the state machine: gated until MinSamples,
// bootstrap trip, resolving blocks further trips, publish starts cooloff,
// hysteresis requires re-arming before the next trip.
func TestControllerLifecycle(t *testing.T) {
	n := 6
	c := NewController(ControllerConfig{Threshold: 0.3, Hysteresis: 0.1, Cooloff: 2, MinSamples: 10})
	uni := uniformNoSelf(n)

	if trip, _ := c.Step(uni, 5); trip {
		t.Fatal("tripped below MinSamples")
	}
	trip, _ := c.Step(uni, 50)
	if !trip {
		t.Fatal("no bootstrap trip with nothing served")
	}
	if trip, _ := c.Step(uni, 100); trip {
		t.Fatal("tripped while resolving")
	}
	c.Published("fp1", 1, uni)

	// Cooloff: two batches held even under massive drift.
	shifted := traffic.NewMatrix(n)
	shifted.L[0][1] = 1
	for i := 0; i < 2; i++ {
		if trip, _ := c.Step(shifted, 200); trip {
			t.Fatalf("tripped during cooloff batch %d", i)
		}
	}
	// Disarmed after the bootstrap trip: first post-cooloff batch must see
	// low drift to re-arm. Feed uniform (drift 0 vs ref), then shift.
	if trip, _ := c.Step(uni, 200); trip {
		t.Fatal("tripped while disarmed")
	}
	trip, drift := c.Step(shifted, 300)
	if !trip {
		t.Fatalf("no trip at drift %v over threshold", drift)
	}
	c.ResolveFailed()
	if st := c.State(); st.Resolving || st.Cooloff == 0 {
		t.Fatalf("failed resolve left state %+v", st)
	}
	if st := c.State(); st.ServedFP != "fp1" {
		t.Fatalf("failed resolve changed served design: %+v", st)
	}
}

// TestManagerSnapshotRoundTrip: ingest, drop the manager, reopen over the
// same directory — sketch mass, controller state, and the estimate must
// resume identically.
func TestManagerSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sketch: SketchConfig{N: 8, Seed: 5}}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := stream(8, 3000, 0.4, 13)
	if acc, rerr, err := m1.Ingest("acme", samples); err != nil || rerr != nil || acc != len(samples) {
		t.Fatalf("ingest: accepted=%d rejectErr=%v err=%v", acc, rerr, err)
	}
	if err := m1.Published("acme", "fp-test", 1.25, uniformNoSelf(8).L); err != nil {
		t.Fatal(err)
	}
	before, err := m1.Status("acme")
	if err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m2.Status("acme")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("restart changed state:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.ServedFP != "fp-test" || after.ServedHNorm != 1.25 {
		t.Fatalf("served design lost across restart: %+v", after)
	}
}

// TestManagerQuarantinesTornSnapshot: every flavor of torn snapshot is
// moved aside and the tenant starts fresh — never a crash, never a wrong
// restore.
func TestManagerQuarantinesTornSnapshot(t *testing.T) {
	cases := []struct{ name, content string }{
		{"truncated", `{"schema":"tcr-online-1","sha256":"ab`},
		{"zero-byte", ""},
		{"foreign-schema", `{"schema":"tcr-online-99"}`},
		{"bad-hash", `{"schema":"tcr-online-1","sha256":"deadbeef","tenant":"acme"}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "acme.json")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			m, err := NewManager(Config{Dir: dir, Sketch: SketchConfig{N: 4}})
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Status("acme")
			if err != nil {
				t.Fatal(err)
			}
			if st.Ingested != 0 || st.ServedFP != "" {
				t.Fatalf("torn snapshot restored state: %+v", st)
			}
			if _, err := os.Stat(path + ".quarantine"); err != nil {
				t.Fatalf("torn snapshot not quarantined: %v", err)
			}
		})
	}
}

// TestManagerTamperRejected: a semantically valid edit that no longer
// matches the integrity hash is rejected.
func TestManagerTamperRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sketch: SketchConfig{N: 4, Seed: 2}}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m1.Ingest("acme", stream(4, 500, 0.5, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "acme.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sn map[string]any
	if err := json.Unmarshal(b, &sn); err != nil {
		t.Fatal(err)
	}
	sn["tenant"] = "acme" // unchanged field...
	sk := sn["sketch"].(map[string]any)
	sk["ingested"] = 999999.0 // ...but a tampered counter
	tampered, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m2.Status("acme")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 0 {
		t.Fatalf("tampered snapshot restored: %+v", st)
	}
}

// TestManagerRejectsInvalidTenant: names outside the key alphabet never
// reach the filesystem.
func TestManagerRejectsInvalidTenant(t *testing.T) {
	m, err := NewManager(Config{Sketch: SketchConfig{N: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "UPPER", "a/b", "..", "-lead", "x y"} {
		if _, _, err := m.Ingest(name, nil); err == nil {
			t.Errorf("tenant %q accepted", name)
		}
	}
}
