package online

import (
	"math"

	"tcr/internal/traffic"
)

// The re-design controller closes the loop between the live estimate and
// the served design. Its state machine:
//
//	          ingest below MinSamples            drift < thr - hyst
//	   idle ────────────────────────► idle   disarmed ───────────────► armed
//	    │  bootstrap (nothing served)                ▲
//	    ├──────────────────────────────► resolving   │ publish / failure
//	    │  armed and drift >= Threshold              │
//	    └──────────────────────────────► resolving ──┘ (plus Cooloff batches)
//
// Hysteresis keeps a drift value oscillating around the threshold from
// re-tripping every batch: after a trip the controller disarms and only
// re-arms once drift falls below Threshold - Hysteresis (which a successful
// publish causes by re-basing the reference). Cooloff rate-limits re-solves
// in batches regardless of drift. All decisions are pure functions of the
// ingested stream, so a replay reproduces the controller's trajectory.

// Drift is the controller's distance: the total-variation distance
// 0.5 * sum |p - q| between two traffic distributions, in [0, 1]. Inputs
// are normalized internally, so any nonnegative matrices compare.
func Drift(p, q *traffic.Matrix) float64 {
	if p == nil || q == nil || p.N != q.N {
		return 1
	}
	ps, qs := matrixSum(p), matrixSum(q)
	if ps <= 0 || qs <= 0 {
		return 1
	}
	d := 0.0
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			d += math.Abs(p.L[i][j]/ps - q.L[i][j]/qs)
		}
	}
	return 0.5 * d
}

func matrixSum(m *traffic.Matrix) float64 {
	s := 0.0
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += m.L[i][j]
		}
	}
	return s
}

// uniformNoSelf is the uniform distribution over non-self pairs — the
// estimator's own max-entropy prior (traffic.Uniform carries diagonal mass,
// which flow samples never do, and the spurious 1/n drift floor with it).
func uniformNoSelf(n int) *traffic.Matrix {
	m := traffic.NewMatrix(n)
	if n < 2 {
		return m
	}
	u := 1.0 / float64(n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.L[i][j] = u
			}
		}
	}
	return m
}

// TargetHNorm maps an estimate to the locality operating point the next
// design should be solved at: the estimate's skew — its total-variation
// distance from uniform — interpolates between 1 (uniform traffic, where
// minimal paths already balance load and locality is free to keep) and hMax
// (concentrated, adversarial-looking traffic, where worst-case throughput
// needs the longer-path budget), quantized onto a grid of steps points so
// nearby estimates share a design request (and hence a fingerprint). The
// paper's §6 interpolated operating points are exactly this knob.
func TargetHNorm(est *traffic.Matrix, hMax float64, steps int) float64 {
	if hMax <= 1 || steps < 2 {
		return 1
	}
	skew := Drift(est, uniformNoSelf(est.N))
	idx := int(math.Round(skew * float64(steps-1)))
	if idx < 0 {
		idx = 0
	}
	if idx > steps-1 {
		idx = steps - 1
	}
	return 1 + float64(idx)*(hMax-1)/float64(steps-1)
}

// ControllerConfig tunes the trip logic; the zero value is ready to use.
type ControllerConfig struct {
	// Threshold is the drift level that trips a re-solve (default 0.25).
	Threshold float64
	// Hysteresis is the re-arm margin: after a trip the controller stays
	// disarmed until drift falls below Threshold - Hysteresis (default
	// Threshold/4).
	Hysteresis float64
	// Cooloff is how many observe batches must pass after a re-solve
	// completes (or fails) before the next may launch (default 2).
	Cooloff int
	// MinSamples is the raw sample mass required before any decision
	// (default 64): an estimate built on a handful of samples is noise.
	MinSamples float64
}

func (c ControllerConfig) threshold() float64 {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return 0.25
}

func (c ControllerConfig) hysteresis() float64 {
	if c.Hysteresis > 0 {
		return c.Hysteresis
	}
	return c.threshold() / 4
}

func (c ControllerConfig) cooloff() int {
	if c.Cooloff > 0 {
		return c.Cooloff
	}
	return 2
}

func (c ControllerConfig) minSamples() float64 {
	if c.MinSamples > 0 {
		return c.MinSamples
	}
	return 64
}

// ControllerState is the controller's persisted state. Ref is the estimate
// the served design was tuned to (nil until the first publish); Resolving
// is volatile — a restart clears it, and the interrupted re-solve's design
// checkpoint makes the relaunched solve a resume.
type ControllerState struct {
	ServedFP    string      `json:"servedFP,omitempty"`
	ServedHNorm float64     `json:"servedHNorm,omitempty"`
	Ref         [][]float64 `json:"ref,omitempty"`
	Armed       bool        `json:"armed"`
	Cooloff     int         `json:"cooloff,omitempty"`
	Resolving   bool        `json:"-"`
}

// Controller runs the trip state machine for one tenant. Not safe for
// concurrent use; the manager serializes access.
type Controller struct {
	cfg   ControllerConfig
	state ControllerState
}

// NewController builds an armed controller with nothing served yet.
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{cfg: cfg, state: ControllerState{Armed: true}}
}

// State returns a copy of the controller's state (Ref shared, read-only by
// convention).
func (c *Controller) State() ControllerState { return c.state }

// ref returns the reference estimate as a matrix, or nil before the first
// publish.
func (c *Controller) ref() *traffic.Matrix {
	if c.state.Ref == nil {
		return nil
	}
	m := traffic.NewMatrix(len(c.state.Ref))
	for i := range c.state.Ref {
		copy(m.L[i], c.state.Ref[i])
	}
	return m
}

// Step makes one batch's decision: given the live estimate and the raw
// ingested mass, report the current drift and whether a re-solve should
// launch now. A true return moves the controller to resolving; the caller
// must follow up with Published or ResolveFailed.
func (c *Controller) Step(est *traffic.Matrix, ingested float64) (trip bool, drift float64) {
	ref := c.ref()
	if ref == nil {
		// Nothing published yet: drift is read against uniform so the
		// metric is meaningful from the first batch.
		ref = uniformNoSelf(est.N)
	}
	drift = Drift(est, ref)
	switch {
	case c.state.Resolving:
		return false, drift
	case ingested < c.cfg.minSamples():
		return false, drift
	case c.state.Cooloff > 0:
		c.state.Cooloff--
		return false, drift
	case c.state.ServedFP == "":
		// Bootstrap: enough samples and nothing served — publish a first
		// design regardless of drift.
		c.state.Resolving = true
		c.state.Armed = false
		return true, drift
	case !c.state.Armed:
		if drift < c.cfg.threshold()-c.cfg.hysteresis() {
			c.state.Armed = true
		}
		return false, drift
	case drift >= c.cfg.threshold():
		c.state.Resolving = true
		c.state.Armed = false
		return true, drift
	}
	return false, drift
}

// Published commits a successful re-solve: the design at fp (solved at
// hNorm against estimate ref) is now what the tenant serves, the reference
// re-bases to ref, and the cooloff starts.
func (c *Controller) Published(fp string, hNorm float64, ref *traffic.Matrix) {
	c.state.ServedFP = fp
	c.state.ServedHNorm = hNorm
	c.state.Ref = make([][]float64, ref.N)
	for i := 0; i < ref.N; i++ {
		c.state.Ref[i] = append([]float64(nil), ref.L[i]...)
	}
	c.state.Resolving = false
	c.state.Cooloff = c.cfg.cooloff()
}

// ResolveFailed records a failed re-solve: the previous design (if any)
// keeps serving and the cooloff delays the retry.
func (c *Controller) ResolveFailed() {
	c.state.Resolving = false
	c.state.Cooloff = c.cfg.cooloff()
}

// restoreController rebuilds a controller from persisted state. Resolving
// always restores false: a re-solve in flight at crash time died with the
// daemon, and its design checkpoint makes the relaunch a resume.
func restoreController(cfg ControllerConfig, st ControllerState) *Controller {
	st.Resolving = false
	return &Controller{cfg: cfg, state: st}
}
