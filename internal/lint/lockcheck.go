package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockCheck is a path-sensitive mutex-discipline analyzer over the CFG
// framework: it tracks, per lock expression (s.mu, c.mu, an embedded
// sync.Mutex receiver), which lock flavors (write Lock, read RLock) may be
// held at each program point, and reports
//
//   - a lock that may still be held on some path to return with no deferred
//     unlock pending (the classic early-return leak a text-order scan cannot
//     see),
//   - acquiring a lock that may already be held (self-deadlock), including
//     the RLock-after-Lock and Lock-after-RLock upgrades, and
//   - flavor mismatches: Unlock where only a read lock is held, RUnlock
//     where only a write lock is held.
//
// Deferred unlocks (including unlocks inside a deferred function literal)
// are modeled as releasing at every return reached after the defer
// executes. RLock-after-RLock is deliberately not flagged (read locks are
// shared; the hazard needs a concurrent writer, which is beyond an
// intraprocedural analysis), as are TryLock/TryRLock (their success is
// branch-correlated) and unlocks of locks this function never acquired
// (callers may hand over held locks).
func LockCheck() *Analyzer {
	return &Analyzer{
		Name:  "lockcheck",
		Doc:   "flags lock/unlock mismatches on some path: leaks at return, double-locks, flavor mixes",
		Tests: true,
		Run:   runLockCheck,
	}
}

type lockBits uint8

const (
	lockW lockBits = 1 << iota // Lock/Unlock
	lockR                      // RLock/RUnlock
)

func (b lockBits) verb() string {
	if b == lockR {
		return "RLock"
	}
	return "Lock"
}

func (b lockBits) unverb() string {
	if b == lockR {
		return "RUnlock"
	}
	return "Unlock"
}

// lockState is one lock's fact: which flavors may be held, where each was
// first acquired, and which flavors have a deferred unlock pending on every
// path reaching this point.
type lockState struct {
	held     lockBits
	deferred lockBits
	wPos     token.Pos
	rPos     token.Pos
}

func (s lockState) acquirePos(b lockBits) token.Pos {
	if b == lockR {
		return s.rPos
	}
	return s.wPos
}

// lockFact maps a lock's canonical key to its state.
type lockFact map[string]lockState

func (f lockFact) clone() lockFact {
	c := make(lockFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// joinLockFact merges: held is a may-union, deferred a must-intersection
// (but a lock known on only one branch keeps its deferred bits — the other
// branch has nothing to say about it), positions take the earliest.
func joinLockFact(acc, in lockFact) (lockFact, bool) {
	changed := false
	for k, iv := range in {
		av, ok := acc[k]
		if !ok {
			acc[k] = iv
			changed = true
			continue
		}
		merged := lockState{
			held:     av.held | iv.held,
			deferred: av.deferred & iv.deferred,
			wPos:     posBefore(av.wPos, iv.wPos),
			rPos:     posBefore(av.rPos, iv.rPos),
		}
		if merged != av {
			acc[k] = merged
			changed = true
		}
	}
	return acc, changed
}

// lockMethods classifies the sync primitives by qualified method name.
var lockMethods = map[string]struct {
	bits    lockBits
	acquire bool
}{
	"(*sync.Mutex).Lock":      {lockW, true},
	"(*sync.Mutex).Unlock":    {lockW, false},
	"(*sync.RWMutex).Lock":    {lockW, true},
	"(*sync.RWMutex).Unlock":  {lockW, false},
	"(*sync.RWMutex).RLock":   {lockR, true},
	"(*sync.RWMutex).RUnlock": {lockR, false},
	"(sync.Locker).Lock":      {lockW, true},
	"(sync.Locker).Unlock":    {lockW, false},
}

// lockRef identifies the receiver a lock method is called on: a canonical
// key (stable within the function, built from the root object and selector
// path) and a display name for diagnostics.
func (p *Package) lockRef(call *ast.CallExpr) (key, display string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return p.exprKey(sel.X)
}

// exprKey canonicalizes a receiver expression chain (ident, selector,
// parenthesized) into a key rooted at the base identifier's object.
func (p *Package) exprKey(e ast.Expr) (key, display string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.objOf(e)
		if obj == nil {
			return "", "", false
		}
		return "o" + p.pos(obj.Pos()).String(), e.Name, true
	case *ast.SelectorExpr:
		base, disp, ok := p.exprKey(e.X)
		if !ok {
			return "", "", false
		}
		return base + "." + e.Sel.Name, disp + "." + e.Sel.Name, true
	default:
		// Indexed, call-derived, or otherwise dynamic receivers are not
		// trackable intraprocedurally.
		return "", "", false
	}
}

func runLockCheck(p *Package) []Diagnostic {
	var out []Diagnostic
	p.funcBodies(func(name string, _ ast.Node, body *ast.BlockStmt) {
		out = append(out, p.lockCheckFunc(body)...)
	})
	return out
}

func (p *Package) lockCheckFunc(body *ast.BlockStmt) []Diagnostic {
	c := p.buildCFG(body)
	var diags []Diagnostic
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, msg string) {
		if !reported[pos] {
			reported[pos] = true
			diags = append(diags, Diagnostic{Pos: p.pos(pos), Rule: "lockcheck", Msg: msg})
		}
	}
	names := map[string]string{} // key -> display, for exit diagnostics

	transfer := func(b *block, in lockFact) lockFact {
		out := in.clone()
		for _, n := range b.nodes {
			if def, ok := n.(*ast.DeferStmt); ok {
				p.deferredUnlocks(def, func(key, display string, bits lockBits) {
					names[key] = display
					st := out[key]
					st.deferred |= bits
					out[key] = st
				})
				continue
			}
			callsIn(n, func(call *ast.CallExpr) {
				m, ok := lockMethods[p.calleeFullName(call)]
				if !ok {
					return
				}
				key, display, ok := p.lockRef(call)
				if !ok {
					return
				}
				names[key] = display
				st := out[key]
				if m.acquire {
					if st.held&m.bits != 0 {
						report(call.Pos(), display+"."+m.bits.verb()+" may already be held here (acquired at "+
							p.pos(st.acquirePos(m.bits)).String()+"); second acquire self-deadlocks")
					} else if st.held != 0 && m.bits == lockW {
						report(call.Pos(), display+".Lock while "+display+".RLock may be held (acquired at "+
							p.pos(st.acquirePos(lockR)).String()+"); lock upgrades self-deadlock")
					} else if st.held != 0 && m.bits == lockR {
						report(call.Pos(), display+".RLock while "+display+".Lock may be held (acquired at "+
							p.pos(st.acquirePos(lockW)).String()+"); recursive read under write self-deadlocks")
					}
					st.held |= m.bits
					if m.bits == lockW && st.wPos == token.NoPos {
						st.wPos = call.Pos()
					}
					if m.bits == lockR && st.rPos == token.NoPos {
						st.rPos = call.Pos()
					}
				} else {
					if st.held&m.bits == 0 && st.held != 0 {
						other := st.held &^ m.bits
						report(call.Pos(), display+"."+m.bits.unverb()+" but only "+display+"."+other.verb()+
							" is held (acquired at "+p.pos(st.acquirePos(other)).String()+"); flavor mismatch")
					}
					st.held &^= m.bits
					if m.bits == lockW {
						st.wPos = token.NoPos
					} else {
						st.rPos = token.NoPos
					}
				}
				if st == (lockState{}) {
					delete(out, key)
				} else {
					out[key] = st
				}
			})
		}
		return out
	}

	in := solveForward(c, forwardFlow[lockFact]{
		entry:    lockFact{},
		bottom:   func() lockFact { return lockFact{} },
		join:     joinLockFact,
		transfer: transfer,
	})

	// The exit block's in-fact is the join over every return path. Anything
	// still held with no deferred unlock pending leaked on some path.
	keys := make([]string, 0, len(in[c.exit]))
	for k := range in[c.exit] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := in[c.exit][k]
		leaked := st.held &^ st.deferred
		for _, bits := range [2]lockBits{lockW, lockR} {
			if leaked&bits == 0 {
				continue
			}
			display := names[k]
			report(st.acquirePos(bits), display+"."+bits.verb()+
				" is not released on every path to return; add the missing "+display+"."+bits.unverb()+
				" or defer it at the acquire site")
		}
	}
	return diags
}

// deferredUnlocks reports the unlocks a defer statement guarantees: a direct
// deferred unlock call, or unlock calls anywhere inside a deferred function
// literal (conservatively assumed to execute — a conditional unlock inside
// the literal still counts, which under-reports leaks rather than inventing
// them... the opposite choice would flag correct cleanup closures).
func (p *Package) deferredUnlocks(def *ast.DeferStmt, visit func(key, display string, bits lockBits)) {
	emit := func(call *ast.CallExpr) {
		m, ok := lockMethods[p.calleeFullName(call)]
		if !ok || m.acquire {
			return
		}
		if key, display, ok := p.lockRef(call); ok {
			visit(key, display, m.bits)
		}
	}
	if lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				emit(call)
			}
			return true
		})
		return
	}
	emit(def.Call)
}

// lockDisplay is a debugging aid: renders a lock fact deterministically.
func lockDisplay(f lockFact) string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		st := f[k]
		sb.WriteString(k)
		if st.held&lockW != 0 {
			sb.WriteString(":W")
		}
		if st.held&lockR != 0 {
			sb.WriteString(":R")
		}
		sb.WriteByte(' ')
	}
	return strings.TrimSpace(sb.String())
}
