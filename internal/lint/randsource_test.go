package lint

import "testing"

// randsource is path-scoped: the same statements are findings inside the
// deterministic core (internal/lp, design, topo, store, traffic, online)
// and clean elsewhere.

func TestRandSourceClockAndGlobalRand(t *testing.T) {
	got := runOn(t, "x/internal/lp", `package lp

import (
	"math/rand"
	"time"
)

func jitter() float64 {
	start := time.Now()
	_ = start
	return rand.Float64()
}
`)
	expect(t, got, "9:randsource", "11:randsource")
}

func TestRandSourceSeededRandIsClean(t *testing.T) {
	got := runOn(t, "x/internal/lp", `package lp

import "math/rand"

// A locally seeded generator is reproducible; constructing it and calling
// its methods is the sanctioned pattern inside the core.
func perturb(xs []float64, seed int64, scale float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range xs {
		xs[i] += scale * rng.Float64()
	}
}
`)
	expect(t, got)
}

func TestRandSourceOutsideCoreIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import (
	"math/rand"
	"time"
)

// Outside the deterministic packages wall-clock reads and the global
// generator are ordinary code.
func sample() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}
`)
	expect(t, got)
}

func TestRandSourceCryptoRand(t *testing.T) {
	got := runOn(t, "x/internal/design", `package design

import (
	"crypto/rand"
	"math/big"
)

func pick(n int64) (*big.Int, error) {
	return rand.Int(rand.Reader, big.NewInt(n))
}
`)
	expect(t, got, "9:randsource")
}

func TestRandSourceTimeSince(t *testing.T) {
	got := runOn(t, "x/internal/store", `package store

import "time"

func age(t0 time.Time) time.Duration {
	return time.Since(t0)
}
`)
	expect(t, got, "6:randsource")
}

// The online design loop's packages are inside the wall: wall-clock decay
// or unseeded hashing would break the replay contract (a restarted daemon
// must reproduce its predecessor's estimates from the same stream).
func TestRandSourceOnlineScoped(t *testing.T) {
	got := runOn(t, "x/internal/online", `package online

import (
	"math/rand"
	"time"
)

// A wall-clock-keyed decay would make estimates irreproducible.
func decayWeight(t0 time.Time) float64 {
	age := time.Since(t0)
	_ = age
	return rand.Float64()
}
`)
	expect(t, got, "10:randsource", "12:randsource")
}

func TestRandSourceTrafficScoped(t *testing.T) {
	got := runOn(t, "x/internal/traffic", `package traffic

import "math/rand"

// Unseeded sampling in a traffic model is a finding; the seeded
// constructor pattern below it is the sanctioned idiom.
func noisy() float64 { return rand.Float64() }

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
`)
	expect(t, got, "7:randsource")
}

func TestRandSourceSuppressed(t *testing.T) {
	got := runOn(t, "x/internal/lp", `package lp

import "time"

func timed(f func()) time.Duration {
	//lint:ignore randsource elapsed-time diagnostics only, never reaches an artifact
	start := time.Now()
	f()
	//lint:ignore randsource elapsed-time diagnostics only, never reaches an artifact
	return time.Since(start)
}
`)
	expect(t, got)
}
