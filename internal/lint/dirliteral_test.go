package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"testing"
)

// The dirliteral fixtures need a real import of an internal/topo package, so
// a stand-in is type-checked once and served to the fixture checker through a
// chaining importer — the in-memory analogue of the module-aware loader.

const topoStandIn = `package topo

// Dir is the stand-in port-index type.
type Dir int

// The 2D direction vocabulary dirliteral polices.
const (
	XPlus Dir = iota
	XMinus
	YPlus
	YMinus
	NumDirs
)
`

// chainImporter serves pre-checked packages by path and defers everything
// else to the shared source importer.
type chainImporter struct {
	pkgs map[string]*types.Package
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p := c.pkgs[path]; p != nil {
		return p, nil
	}
	return fixImporter.Import(path)
}

// runOnWithTopo lints one fixture that imports the topo stand-in at
// "tcr/internal/topo".
func runOnWithTopo(t *testing.T, path, src string) []string {
	t.Helper()
	fixCount++
	f, err := parser.ParseFile(fixFset, fmt.Sprintf("topo%d.go", fixCount), topoStandIn, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse stand-in: %v", err)
	}
	conf := types.Config{Importer: fixImporter}
	tpkg, err := conf.Check("tcr/internal/topo", fixFset, []*ast.File{f}, newInfo())
	if err != nil {
		t.Fatalf("type-check stand-in: %v", err)
	}

	fixCount++
	name := fmt.Sprintf("fixture%d.go", fixCount)
	ff, err := parser.ParseFile(fixFset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newInfo()
	conf = types.Config{Importer: chainImporter{pkgs: map[string]*types.Package{"tcr/internal/topo": tpkg}}}
	fpkg, err := conf.Check(path, fixFset, []*ast.File{ff}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	p := &Package{Path: path, Fset: fixFset, Files: []*ast.File{ff}, Types: fpkg, Info: info}
	var out []string
	for _, d := range Run([]*Package{p}, Analyzers()) {
		out = append(out, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	return out
}

func TestDirLiteralFlagsVocabulary(t *testing.T) {
	got := runOnWithTopo(t, "tcr/internal/sim", `package sim

import "tcr/internal/topo"

func ports() int { return int(topo.NumDirs) }

func reverse(d topo.Dir) topo.Dir {
	if d == topo.XPlus {
		return topo.XMinus
	}
	return d
}

func invented() topo.Dir { return topo.Dir(3) }
`)
	expect(t, got, "5:dirliteral", "8:dirliteral", "9:dirliteral", "14:dirliteral")
}

func TestDirLiteralComputedPortIsClean(t *testing.T) {
	got := runOnWithTopo(t, "tcr/internal/sim", `package sim

import "tcr/internal/topo"

// Typing a computed port index, or handling Dir values that arrive from
// elsewhere, is exactly what generic code is supposed to do.
func typed(p int) topo.Dir { return topo.Dir(p) }

func carry(d topo.Dir) int { return int(d) }
`)
	expect(t, got)
}

func TestDirLiteralTopoPackageItselfIsExempt(t *testing.T) {
	// Inside internal/topo the vocabulary is definitional, not an assumption:
	// the stand-in (which uses NumDirs et al. freely) plus a same-path
	// consumer must both be clean.
	got := runOnWithTopo(t, "other/internal/topo", `package topo2

import "tcr/internal/topo"

func all() []topo.Dir {
	out := make([]topo.Dir, 0, int(topo.NumDirs))
	for d := topo.Dir(0); d < topo.NumDirs; d++ {
		out = append(out, d)
	}
	return out
}
`)
	expect(t, got)
}

func TestDirLiteralSuppressed(t *testing.T) {
	got := runOnWithTopo(t, "tcr/internal/routing", `package routing

import "tcr/internal/topo"

// A closed-form torus2d construction declares itself.
func quadrant(d topo.Dir) bool {
	//lint:ignore dirliteral DOR is a torus2d construction by definition
	return d == topo.XPlus
}
`)
	expect(t, got)
}
