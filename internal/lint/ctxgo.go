package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parDoFullName is the qualified name of the worker-pool entry point; calling
// it fans work out onto goroutines exactly like a literal go statement does.
const parDoFullName = "tcr/internal/par.Do"

// CtxGo flags exported functions that launch goroutines — via a go statement
// or by fanning out onto the internal/par pool — without accepting a
// context.Context parameter. Once a facade function spawns concurrent work,
// callers need a way to bound or cancel it (Ctrl-C in the CLI, deadlines in a
// harness); an exported entry point that spawns but takes no context locks
// them out. The convention this enforces: the context-accepting form (FooCtx)
// owns the concurrency, and any context-free form is a thin
// context.Background() wrapper that itself contains no spawn sites.
func CtxGo() *Analyzer {
	return &Analyzer{
		Name: "ctxgo",
		Doc:  "flags exported functions spawning goroutines without a context.Context parameter",
		Run:  runCtxGo,
	}
}

func runCtxGo(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if funcAcceptsContext(p, fd) {
				continue
			}
			pos, what, spawns := firstSpawn(p, fd)
			if !spawns {
				continue
			}
			out = append(out, Diagnostic{
				Pos:  p.pos(pos),
				Rule: "ctxgo",
				Msg:  fd.Name.Name + " " + what + " but accepts no context.Context; move the concurrency into a Ctx form",
			})
		}
	}
	return out
}

// funcAcceptsContext reports whether any (non-receiver) parameter of the
// declared function carries a caller-cancellable context: context.Context
// itself, or *net/http.Request, whose Context() method is the idiomatic
// cancellation source inside HTTP handlers. Handlers that spawn goroutines
// bounded by r.Context() are exactly the convention this rule wants.
func funcAcceptsContext(p *Package, fd *ast.FuncDecl) bool {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is the context.Context interface.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// firstSpawn finds the first goroutine-launching site in the function body:
// a go statement, or a call into the par worker pool. Spawn sites inside
// nested function literals count — the goroutines still outlive the
// statement that starts them.
func firstSpawn(p *Package, fd *ast.FuncDecl) (token.Pos, string, bool) {
	var pos token.Pos
	var what string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.GoStmt:
			pos, what = s.Pos(), "launches a goroutine"
			return false
		case *ast.CallExpr:
			if p.calleeFullName(s) == parDoFullName {
				pos, what = s.Pos(), "fans out onto the par worker pool"
				return false
			}
		}
		return true
	})
	return pos, what, what != ""
}
