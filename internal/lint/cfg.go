package lint

// cfg.go builds intraprocedural control-flow graphs for the flow-sensitive
// analyzers (lockcheck, goleak, detwalk). The model is deliberately small:
// basic blocks hold the function's atomic statements and control expressions
// in evaluation order, and edges cover every Go control construct — if/else,
// for (with init/cond/post), range, switch (including fallthrough), type
// switch, select (including the caseless select{} that blocks forever),
// labeled break/continue, goto, return, and calls that cannot return
// (panic, os.Exit, runtime.Goexit, log.Fatal*, testing Fatal/Skip). Deferred
// statements stay in their block in program order and are also collected on
// the cfg, since their calls run on every path to return.
//
// Compound statements never appear in a block; only their leaf parts do:
// an if contributes its init statement and condition, a for its init, cond
// and post, a switch its tag and case expressions (conservatively evaluated
// in the head block), a select each comm statement in its branch block. A
// range loop contributes the whole *ast.RangeStmt to its head block — the
// one compound node analyzers see — because the key/value bindings and the
// ranged expression belong together; analyzers must not descend into its
// Body (walkExprs handles this). Function literals are separate analysis
// units with their own CFGs; node walks never enter them.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// block is one basic block: nodes execute in order, then control transfers
// along one of succs. A block with no successors either returns (the exit
// block), panics, or blocks forever (select{}).
type block struct {
	id    int
	kind  string // construction-site label: "entry", "for.head", ... (tests, debug)
	nodes []ast.Node
	succs []*block
}

// cfg is one function body's control-flow graph.
type cfg struct {
	entry  *block
	exit   *block // the single return target; preds are return sites and body fall-off
	blocks []*block
	defers []*ast.DeferStmt // every defer in the body, in source order
}

// preds computes the predecessor lists (not cached; callers keep the map).
func (c *cfg) preds() map[*block][]*block {
	m := make(map[*block][]*block, len(c.blocks))
	for _, b := range c.blocks {
		for _, s := range b.succs {
			m[s] = append(m[s], b)
		}
	}
	return m
}

// reaches reports whether to is reachable from from along successor edges.
func (c *cfg) reaches(from, to *block) bool {
	seen := make([]bool, len(c.blocks))
	stack := []*block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b.id] {
			continue
		}
		seen[b.id] = true
		stack = append(stack, b.succs...)
	}
	return false
}

// reversePostorder returns the blocks reachable from entry in reverse
// postorder — the canonical iteration order for forward dataflow.
func (c *cfg) reversePostorder() []*block {
	seen := make([]bool, len(c.blocks))
	var order []*block
	var dfs func(b *block)
	dfs = func(b *block) {
		seen[b.id] = true
		for _, s := range b.succs {
			if !seen[s.id] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(c.entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// buildCFG constructs the control-flow graph of one function body.
func (p *Package) buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{p: p, c: &cfg{}}
	b.c.entry = b.newBlock("entry")
	b.c.exit = b.newBlock("exit")
	b.cur = b.c.entry
	b.stmt(body)
	b.jump(b.c.exit) // falling off the end returns
	return b.c
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label      string // the construct's label, "" if unlabeled
	breakTo    *block
	continueTo *block // nil for switch/select frames
}

type cfgBuilder struct {
	p      *Package
	c      *cfg
	cur    *block
	frames []frame
	labels map[string]*block // goto targets, created on demand
	// pendingLabel carries a label across its LabeledStmt onto the loop or
	// switch it names, so `break L` / `continue L` resolve.
	pendingLabel string
	// nextCase is the fallthrough target while building a switch case.
	nextCase *block
}

func (b *cfgBuilder) newBlock(kind string) *block {
	blk := &block{id: len(b.c.blocks), kind: kind}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) { from.succs = append(from.succs, to) }

// jump links the current block to target and leaves the builder in a fresh,
// unreachable block (code after an unconditional transfer).
func (b *cfgBuilder) jump(target *block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock("dead")
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.nodes = append(b.cur.nodes, n) }

func (b *cfgBuilder) labelBlock(name string) *block {
	if b.labels == nil {
		b.labels = map[string]*block{}
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) findBreak(label string) *block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTo
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.continueTo != nil && (label == "" || f.label == label) {
			return f.continueTo
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.c.exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.LabeledStmt:
		// The label block is both the goto target and the resumption point
		// of normal flow.
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, false)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.c.defers = append(b.c.defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.p.callTerminates(call) {
			// panic/os.Exit-style call: control never continues past it.
			b.cur = b.newBlock("dead")
		}
	default:
		// Atomic statements: assignments, declarations, sends, inc/dec,
		// go statements, empty statements.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	var target *block
	switch s.Tok {
	case token.BREAK:
		target = b.findBreak(label)
	case token.CONTINUE:
		target = b.findContinue(label)
	case token.GOTO:
		target = b.labelBlock(label)
	case token.FALLTHROUGH:
		target = b.nextCase
	}
	if target == nil {
		// Malformed program (the type checker would have rejected it);
		// treat as a dead end rather than crash.
		b.cur = b.newBlock("dead")
		return
	}
	b.jump(target)
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock("if.done")
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, after)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.nodes = append(head.nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.done")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after) // a condition-less for only exits via break
	}
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.nodes = append(post.nodes, s.Post)
		b.edge(post, head)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: post})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, post)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	head.nodes = append(head.nodes, s)
	b.edge(b.cur, head)
	body := b.newBlock("range.body")
	after := b.newBlock("range.done")
	b.edge(head, body)
	b.edge(head, after) // every range form can run zero iterations or end
	b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: head})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// switchBody builds the dispatch structure shared by expression and type
// switches. Case guard expressions are conservatively attributed to the head
// block (they are evaluated there in order until one matches), so a
// fallthrough can jump straight to the next case's body.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, allowFallthrough bool) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock("switch.done")
	var caseBlocks []*block
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		} else {
			for _, e := range cc.List {
				head.nodes = append(head.nodes, e)
			}
		}
		cb := b.newBlock(kind)
		b.edge(head, cb)
		caseBlocks = append(caseBlocks, cb)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	savedNext := b.nextCase
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		b.nextCase = nil
		if allowFallthrough && i+1 < len(caseBlocks) {
			b.nextCase = caseBlocks[i+1]
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	b.nextCase = savedNext
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		cb := b.newBlock(kind)
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	// A caseless select{} blocks forever: head gained no successors, and
	// after has no predecessors, so everything below is unreachable.
	b.cur = after
}

// callTerminates reports whether a call never returns: the panic built-in,
// process exits, goroutine exits, and the testing package's Fatal/Skip
// family (which call runtime.Goexit).
func (p *Package) callTerminates(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true // the built-in, not a shadowing declaration
		}
	}
	name := p.calleeFullName(call)
	switch name {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln",
		"(*log.Logger).Fatal", "(*log.Logger).Fatalf", "(*log.Logger).Fatalln":
		return true
	}
	// t.Fatal / t.Fatalf / t.FailNow / t.Skip* on testing.T/B/F all route
	// through runtime.Goexit.
	if strings.HasPrefix(name, "(*testing.common).") {
		switch strings.TrimPrefix(name, "(*testing.common).") {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// walkExprs visits n and its relevant subexpressions in the way block-node
// walks need: it never descends into function literal bodies (separate
// analysis units) and, for a *ast.RangeStmt head node, visits only the
// ranged expression and key/value, never the loop body (which has its own
// blocks).
func walkExprs(n ast.Node, visit func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		walkExprs(rs.X, visit)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return visit(m)
	})
}

// callsIn invokes fn for every call expression in a block node, in source
// order, skipping function literal bodies and range bodies.
func callsIn(n ast.Node, fn func(*ast.CallExpr)) {
	walkExprs(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// funcBodies invokes fn for every function body in the package: each
// declaration and each function literal is its own analysis unit. name is a
// best-effort display name ("Close", "func literal").
func (p *Package) funcBodies(fn func(name string, node ast.Node, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd.Name.Name, fd, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn("func literal", lit, lit.Body)
				}
				return true
			})
		}
	}
}
