package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags dropped error results: calls whose error return is silently
// discarded, either as a bare statement (incl. defer/go) or by assigning the
// error to the blank identifier. Around a numerical core, a swallowed error
// is how an infeasible LP or a truncated MPS file turns into a silently
// wrong table. Writers that cannot fail (strings.Builder, bytes.Buffer) and
// prints to the process's own stdout/stderr are exempt; everything else
// needs handling or an explicit //lint:ignore errdrop with the reason.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "flags ignored error returns, including _ = assignments",
		Run:  runErrDrop,
	}
}

// errExemptCallees never fail in practice, by documented contract.
var errExemptCallees = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// errExemptReceivers are types whose methods' error results are always nil
// by documented contract.
var errExemptReceivers = []string{
	"(*strings.Builder).",
	"(*bytes.Buffer).",
	"(strings.Builder).",
	"(bytes.Buffer).",
}

func runErrDrop(p *Package) []Diagnostic {
	var out []Diagnostic
	flagCall := func(call *ast.CallExpr, how string) {
		if !callReturnsError(p, call) || callExempt(p, call) {
			return
		}
		name := p.calleeFullName(call)
		if name == "" {
			name = "call"
		}
		out = append(out, Diagnostic{
			Pos:  p.pos(call.Pos()),
			Rule: "errdrop",
			Msg:  how + " drops the error returned by " + name,
		})
	}
	p.inspect(func(n ast.Node, enc *ast.FuncDecl) {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				flagCall(call, "statement")
			}
		case *ast.DeferStmt:
			flagCall(s.Call, "defer")
		case *ast.GoStmt:
			flagCall(s.Call, "go statement")
		case *ast.AssignStmt:
			out = append(out, blankErrAssigns(p, s)...)
		}
	})
	return out
}

// blankErrAssigns reports error values assigned to the blank identifier.
func blankErrAssigns(p *Package, s *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	// Positional result types: single multi-value call or 1:1 assignment.
	var resultType func(i int) types.Type
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok || callExempt(p, call) {
			return nil
		}
		tuple, ok := p.Info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(s.Lhs) {
			return nil
		}
		resultType = func(i int) types.Type { return tuple.At(i).Type() }
	} else if len(s.Rhs) == len(s.Lhs) {
		resultType = func(i int) types.Type { return p.Info.TypeOf(s.Rhs[i]) }
	} else {
		return nil
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := resultType(i)
		if t != nil && isErrorType(t) {
			out = append(out, Diagnostic{
				Pos:  p.pos(id.Pos()),
				Rule: "errdrop",
				Msg:  "error assigned to _ without an ignore annotation",
			})
		}
	}
	return out
}

// callReturnsError reports whether any result of the call is an error.
func callReturnsError(p *Package, call *ast.CallExpr) bool {
	switch t := p.Info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	case nil:
	default:
		return isErrorType(t)
	}
	return false
}

// callExempt applies the allowlist: infallible writers and stdout prints.
func callExempt(p *Package, call *ast.CallExpr) bool {
	name := p.calleeFullName(call)
	if name == "" {
		return false
	}
	if errExemptCallees[name] {
		return true
	}
	for _, prefix := range errExemptReceivers {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	// hash.Hash documents that Write never returns an error; the idiomatic
	// h.Write(data) statement is fine as-is.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Write" && p.isHashTyped(sel.X) {
			return true
		}
	}
	// fmt.Fprint* is exempt only when the destination cannot fail or is the
	// process's own stdout/stderr (whose write errors are not actionable).
	if name == "fmt.Fprint" || name == "fmt.Fprintf" || name == "fmt.Fprintln" {
		if len(call.Args) == 0 {
			return false
		}
		return infallibleWriter(p, call.Args[0])
	}
	return false
}

// infallibleWriter recognizes os.Stdout, os.Stderr, and in-memory buffers.
func infallibleWriter(p *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := p.Info.Uses[pkg].(*types.PkgName); ok && obj.Imported().Path() == "os" {
				if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
					return true
				}
			}
		}
	}
	switch p.Info.TypeOf(e).String() {
	case "*strings.Builder", "*bytes.Buffer":
		return true
	}
	// Hash states never fail to absorb input (hash.Hash's Write contract).
	return p.isHashTyped(e)
}
