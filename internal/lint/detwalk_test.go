package lint

import "testing"

// The flow-sensitive distinction under test: collect-sort-emit passes while
// the identical statements without the sort (or with it on only one branch)
// are flagged. An AST scan sees the same three statements either way.

func TestDetWalkUnsortedFingerprint(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "crypto/sha256"

func fingerprint(m map[string]int) []byte {
	h := sha256.New()
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}
`)
	expect(t, got, "12:detwalk")
}

func TestDetWalkSortedFingerprintIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import (
	"crypto/sha256"
	"sort"
)

func fingerprint(m map[string]int) []byte {
	h := sha256.New()
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}
`)
	expect(t, got)
}

func TestDetWalkSortOnOneBranchOnly(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import (
	"sort"
	"strings"
)

func render(m map[string]int, canonical bool) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if canonical {
		sort.Strings(keys)
	}
	return strings.Join(keys, ",")
}
`)
	// On the !canonical path the join still sees map order; the may-taint
	// join across the branch keeps the finding alive.
	expect(t, got, "16:detwalk")
}

func TestDetWalkHashInsideMapRange(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import (
	"crypto/sha256"
	"fmt"
)

func digest(m map[string]float64) []byte {
	h := sha256.New()
	for k, v := range m {
		fmt.Fprintf(h, "%s=%g\n", k, v)
	}
	return h.Sum(nil)
}
`)
	expect(t, got, "11:detwalk")
}

func TestDetWalkJSONOfTaintedSlice(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "encoding/json"

func dump(m map[string]int) ([]byte, error) {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	return json.Marshal(rows)
}
`)
	expect(t, got, "10:detwalk")
}

func TestDetWalkFloatAccumulation(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`)
	// The float sum is order-dependent bit-for-bit; the integer sum is
	// associative and clean.
	expect(t, got, "6:detwalk")
}

func TestDetWalkKeyIndexedAccumulationIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

// Each iteration writes its own slot: order cannot matter.
func scale(m map[int]float64, out []float64, w float64) {
	for i, v := range m {
		out[i] += v * w
	}
}

// A per-iteration accumulator is reset every pass; also clean.
func norms(m map[int][]float64, out map[int]float64) {
	for i, row := range m {
		var s float64
		for _, x := range row {
			s += x
		}
		out[i] = s
	}
}
`)
	expect(t, got)
}

func TestDetWalkBuilderInMapRange(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import (
	"fmt"
	"strings"
)

func render(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m {
		sb.WriteString(fmt.Sprintf("%s=%d;", k, v))
	}
	return sb.String()
}
`)
	// The builder is tainted... but never reaches a tracked sink in this
	// function; returning it is the caller's problem only when a sink is
	// involved, so nothing is reported. Keeping this pinned documents the
	// intraprocedural boundary of the analysis.
	expect(t, got)
}

func TestDetWalkSuppressed(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "strings"

func anyOrder(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	//lint:ignore detwalk diagnostic sample where order is intentionally arbitrary
	return strings.Join(keys, "|")
}
`)
	expect(t, got)
}
