package lint

// dataflow.go is the worklist solver the flow-sensitive analyzers share,
// plus two classic instantiations — reaching definitions and liveness — that
// serve both as ready substrate for analyzers and as executable
// documentation of how to write one. A forward analysis supplies an entry
// fact, a join, and a block transfer function; the solver iterates in
// reverse postorder until the facts stabilize. Facts must form a join
// semilattice of finite height (joins only grow toward a fixed point);
// every analysis here uses finite sets over the function's objects, so
// termination is structural.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// forwardFlow describes one forward dataflow problem over a cfg.
type forwardFlow[F any] struct {
	// entry is the fact at function entry.
	entry F
	// bottom produces the initial (no-information) fact for a block.
	bottom func() F
	// join merges a predecessor's out-fact into acc and reports whether acc
	// changed. It may mutate and return acc.
	join func(acc, in F) (F, bool)
	// transfer computes a block's out-fact from its in-fact. It must not
	// retain or mutate in.
	transfer func(b *block, in F) F
}

// solveForward runs the worklist to a fixed point and returns each reachable
// block's in-fact. Unreachable blocks keep their bottom fact.
func solveForward[F any](c *cfg, fl forwardFlow[F]) map[*block]F {
	rpo := c.reversePostorder()
	in := make(map[*block]F, len(rpo))
	for _, b := range rpo {
		in[b] = fl.bottom()
	}
	in[c.entry], _ = fl.join(in[c.entry], fl.entry)

	onList := make(map[*block]bool, len(rpo))
	list := make([]*block, len(rpo))
	copy(list, rpo)
	for _, b := range rpo {
		onList[b] = true
	}
	// The worklist drains in reverse-postorder batches: cheap, and the
	// deterministic order keeps diagnostics stable run to run.
	for iter := 0; len(list) > 0 && iter < 64; iter++ {
		var next []*block
		for _, b := range list {
			onList[b] = false
			out := fl.transfer(b, in[b])
			for _, s := range b.succs {
				merged, changed := fl.join(in[s], out)
				in[s] = merged
				if changed && !onList[s] {
					onList[s] = true
					next = append(next, s)
				}
			}
		}
		list = orderBlocks(rpo, onList, next)
	}
	return in
}

// orderBlocks filters rpo down to the marked blocks, preserving order.
func orderBlocks(rpo []*block, marked map[*block]bool, pending []*block) []*block {
	if len(pending) == 0 {
		return nil
	}
	var out []*block
	for _, b := range rpo {
		if marked[b] {
			out = append(out, b)
		}
	}
	return out
}

// objSet is the fact type shared by the set-based analyses.
type objSet map[types.Object]bool

func (s objSet) clone() objSet {
	c := make(objSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// joinObjSet unions in into acc.
func joinObjSet(acc, in objSet) (objSet, bool) {
	changed := false
	for k := range in {
		if !acc[k] {
			acc[k] = true
			changed = true
		}
	}
	return acc, changed
}

// assignedObjs reports the objects a block node definitely (re)defines:
// assignment and short-declaration left-hand sides, declared variables,
// inc/dec targets, and a range statement's key/value bindings.
func (p *Package) assignedObjs(n ast.Node, visit func(obj types.Object, site ast.Node)) {
	report := func(e ast.Expr, site ast.Node) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := p.objOf(id); obj != nil {
				visit(obj, site)
			}
		}
	}
	walkExprsAndDefs(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				report(lhs, s)
			}
		case *ast.IncDecStmt:
			report(s.X, s)
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						report(name, s)
					}
				}
			}
		}
		return true
	})
	if rs, ok := n.(*ast.RangeStmt); ok {
		report(rs.Key, rs)
		report(rs.Value, rs)
	}
}

// walkExprsAndDefs is walkExprs, but for a range head it also exposes the
// RangeStmt node itself (not its body) so definition scans see the bindings.
func walkExprsAndDefs(n ast.Node, visit func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !visit(rs) {
			return
		}
		walkExprs(rs.X, visit)
		return
	}
	walkExprs(n, visit)
}

// usedObjs reports every object read in a block node (including reads that
// feed writes, e.g. the right-hand sides of assignments and indices on the
// left-hand side).
func (p *Package) usedObjs(n ast.Node, visit func(obj types.Object, at *ast.Ident)) {
	assignLHS := map[*ast.Ident]bool{}
	walkExprsAndDefs(n, func(m ast.Node) bool {
		if s, ok := m.(*ast.AssignStmt); ok {
			for _, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					assignLHS[id] = true
				}
			}
		}
		return true
	})
	if rs, ok := n.(*ast.RangeStmt); ok {
		if id, ok := rs.Key.(*ast.Ident); ok {
			assignLHS[id] = true
		}
		if id, ok := rs.Value.(*ast.Ident); ok {
			assignLHS[id] = true
		}
	}
	walkExprsAndDefs(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || assignLHS[id] {
			return true
		}
		if obj, isVar := p.Info.Uses[id].(*types.Var); isVar {
			visit(obj, id)
		}
		return true
	})
}

// objOf resolves an identifier to its object, whether the identifier
// defines or uses it.
func (p *Package) objOf(id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// defSites maps each object to the set of nodes that may have produced its
// current value — the reaching-definitions fact.
type defSites map[types.Object]map[ast.Node]bool

func (d defSites) clone() defSites {
	c := make(defSites, len(d))
	for obj, sites := range d {
		ns := make(map[ast.Node]bool, len(sites))
		for n := range sites {
			ns[n] = true
		}
		c[obj] = ns
	}
	return c
}

func joinDefSites(acc, in defSites) (defSites, bool) {
	changed := false
	for obj, sites := range in {
		dst := acc[obj]
		if dst == nil {
			dst = map[ast.Node]bool{}
			acc[obj] = dst
		}
		for n := range sites {
			if !dst[n] {
				dst[n] = true
				changed = true
			}
		}
	}
	return acc, changed
}

// reachingDefs computes, for each reachable block, the definitions reaching
// its entry. Parameters (and named results) are defined at function entry,
// keyed by the declaring field node; fnType may be nil for function
// literals analyzed without their declaration.
func (p *Package) reachingDefs(c *cfg, fnType *ast.FuncType) map[*block]defSites {
	entry := defSites{}
	if fnType != nil {
		addFields := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						entry[obj] = map[ast.Node]bool{f: true}
					}
				}
			}
		}
		addFields(fnType.Params)
		addFields(fnType.Results)
	}
	return solveForward(c, forwardFlow[defSites]{
		entry:  entry,
		bottom: func() defSites { return defSites{} },
		join:   joinDefSites,
		transfer: func(b *block, in defSites) defSites {
			out := in.clone()
			for _, n := range b.nodes {
				p.assignedObjs(n, func(obj types.Object, site ast.Node) {
					out[obj] = map[ast.Node]bool{site: true}
				})
			}
			return out
		},
	})
}

// liveness computes, for each reachable block, the variables live at its
// entry (read on some path before being overwritten). It runs the backward
// problem as a forward solve on per-block gen/kill sets iterated over the
// predecessor relation.
func (p *Package) liveness(c *cfg) map[*block]objSet {
	// gen = upward-exposed uses, kill = definitions, both per block.
	gen := make(map[*block]objSet, len(c.blocks))
	kill := make(map[*block]objSet, len(c.blocks))
	for _, b := range c.blocks {
		g, k := objSet{}, objSet{}
		for _, n := range b.nodes {
			p.usedObjs(n, func(obj types.Object, _ *ast.Ident) {
				if !k[obj] {
					g[obj] = true
				}
			})
			p.assignedObjs(n, func(obj types.Object, _ ast.Node) {
				k[obj] = true
			})
		}
		gen[b], kill[b] = g, k
	}

	liveIn := make(map[*block]objSet, len(c.blocks))
	for _, b := range c.blocks {
		liveIn[b] = objSet{}
	}
	// Iterate to a fixed point: liveIn[b] = gen[b] ∪ (∪succ liveIn[s] \ kill[b]).
	for changed := true; changed; {
		changed = false
		for i := len(c.blocks) - 1; i >= 0; i-- {
			b := c.blocks[i]
			liveOut := objSet{}
			for _, s := range b.succs {
				liveOut, _ = joinObjSet(liveOut, liveIn[s])
			}
			want := gen[b].clone()
			for obj := range liveOut {
				if !kill[b][obj] {
					want[obj] = true
				}
			}
			if len(want) != len(liveIn[b]) {
				liveIn[b] = want
				changed = true
				continue
			}
			for obj := range want {
				if !liveIn[b][obj] {
					liveIn[b] = want
					changed = true
					break
				}
			}
		}
	}
	return liveIn
}

// posBefore returns the earlier of two positions, treating NoPos as "unset".
func posBefore(a, b token.Pos) token.Pos {
	if a == token.NoPos {
		return b
	}
	if b == token.NoPos || a < b {
		return a
	}
	return b
}
