package lint

import "testing"

// BenchmarkLintModule measures one full analysis pass — all registered
// analyzers over every package of this module, test corpus included. Loading
// and type-checking happen once outside the timed region: the number being
// tracked is the analysis cost (CFG construction, dataflow solving, and the
// analyzer transfer functions), which is what grows as analyzers are added.
func BenchmarkLintModule(b *testing.B) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	l := NewLoader(root, modPath)
	l.Tests = true
	pkgs, err := l.Load([]string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, analyzers); len(diags) != 0 {
			b.Fatalf("module is not lint-clean: %v", diags[0])
		}
	}
}
