package lint

import "testing"

// The defect class here is purely a CFG property: whether the goroutine's
// body has any path from entry to exit. No AST pattern can tell
// `for { select {...} }` with a return case from the same loop without one.

func TestGoLeakEternalSelectLoop(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func serve(events chan int) {
	go func() {
		for {
			select {
			case ev := <-events:
				handle(ev)
			}
		}
	}()
}

func handle(int) {}
`)
	expect(t, got, "4:goleak")
}

func TestGoLeakDoneChannelIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func serve(events chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case ev := <-events:
				handle(ev)
			case <-done:
				return
			}
		}
	}()
}

func handle(int) {}
`)
	expect(t, got)
}

func TestGoLeakRangeOverChannelIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

// A range over a channel terminates when the sender closes it; the
// goroutine's lifetime is owned by whoever holds the send side.
func drain(events chan int) {
	go func() {
		for ev := range events {
			handle(ev)
		}
	}()
}

func handle(int) {}
`)
	expect(t, got)
}

func TestGoLeakNamedFunctionAndMethod(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

type server struct{ ch chan int }

func (s *server) loop() {
	for {
		select {
		case v := <-s.ch:
			handle(v)
		}
	}
}

func spin() {
	for {
	}
}

func start(s *server) {
	go s.loop()
	go spin()
}

func handle(int) {}
`)
	// Both the method and the plain function resolve to their declarations;
	// each go statement is reported at its own line.
	expect(t, got, "20:goleak", "21:goleak")
}

func TestGoLeakBoundedLoopIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func fan(n int, out chan int) {
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
}
`)
	expect(t, got)
}

func TestGoLeakPanicOnlyBodyStillFlagged(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

// A body that can only panic has no normal termination edge either; the
// goroutine never exits cleanly. (panic is modeled as no-successors, so
// exit stays unreachable.)
func bad(ch chan int) {
	go func() {
		for {
			if <-ch < 0 {
				panic("negative")
			}
		}
	}()
}
`)
	expect(t, got, "7:goleak")
}

func TestGoLeakSuppressed(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func daemon(events chan int) {
	//lint:ignore goleak process-lifetime pump, owned by main and reaped at exit
	go func() {
		for {
			select {
			case ev := <-events:
				handle(ev)
			}
		}
	}()
}

func handle(int) {}
`)
	expect(t, got)
}
