package lint

import (
	"go/ast"
	"go/types"
)

// StatusCheck flags LP solves whose Solution.Status is never consulted. A
// Solve that returns err == nil can still end Infeasible, Unbounded, or
// IterLimit; code that reads Objective or X without looking at Status turns
// those outcomes into silently wrong numbers — exactly the failure mode the
// recovery ladder exists to prevent. A solution that escapes the assignment
// (returned, passed on, stored) is assumed to be checked by its consumer.
func StatusCheck() *Analyzer {
	return &Analyzer{
		Name: "statuscheck",
		Doc:  "flags lp.Solver solves whose Solution.Status is never read",
		Run:  runStatusCheck,
	}
}

// statusCheckCallees are the solve entry points whose Solution carries a
// Status that demands consultation.
var statusCheckCallees = map[string]bool{
	"(*tcr/internal/lp.Solver).Solve":    true,
	"(*tcr/internal/lp.Solver).SolveCtx": true,
}

func runStatusCheck(p *Package) []Diagnostic {
	var out []Diagnostic
	p.inspect(func(n ast.Node, enc *ast.FuncDecl) {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Rhs) != 1 || len(s.Lhs) == 0 {
			return
		}
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		callee := p.calleeFullName(call)
		if !statusCheckCallees[callee] {
			return
		}
		lhs, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			// Stored through a selector or index: escapes local tracking.
			return
		}
		if lhs.Name == "_" {
			out = append(out, Diagnostic{
				Pos:  p.pos(lhs.Pos()),
				Rule: "statuscheck",
				Msg:  "solution of " + callee + " discarded without reading Status",
			})
			return
		}
		obj := p.Info.Defs[lhs]
		if obj == nil {
			obj = p.Info.Uses[lhs]
		}
		if obj == nil || enc == nil || enc.Body == nil {
			return
		}
		if !statusConsulted(p, enc, obj, lhs) {
			out = append(out, Diagnostic{
				Pos:  p.pos(lhs.Pos()),
				Rule: "statuscheck",
				Msg:  lhs.Name + " := " + callee + " never has its Status read",
			})
		}
	})
	return out
}

// statusConsulted reports whether obj's Status field is read anywhere in fn,
// treating any use that is not a plain field selection — a call argument, a
// return value, a reassignment — as an escape beyond local tracking and
// therefore as consulted (the rule never guesses about escaped solutions).
func statusConsulted(p *Package, fn *ast.FuncDecl, obj types.Object, def *ast.Ident) bool {
	consulted := false
	var parents []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			parents = parents[:len(parents)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && id != def &&
			(p.Info.Uses[id] == obj || p.Info.Defs[id] == obj) {
			escaped := true
			if len(parents) > 0 {
				if sel, ok := parents[len(parents)-1].(*ast.SelectorExpr); ok && sel.X == id {
					escaped = false
					if sel.Sel.Name == "Status" {
						consulted = true
					}
				}
			}
			if escaped {
				consulted = true
			}
		}
		parents = append(parents, n)
		return true
	})
	return consulted
}
