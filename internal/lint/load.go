package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of a single module. Module-local
// import paths resolve straight to directories under the module root;
// everything else (the standard library) is type-checked from source via
// go/importer, so no compiled export data is required.
type Loader struct {
	Fset *token.FileSet
	// Tests extends Load to the test corpus: every module package is
	// type-checked with its in-package _test.go files merged in (so there is
	// exactly one types.Package per import path and export_test.go hooks are
	// visible everywhere), and each requested directory's external foo_test
	// package (if present) is returned as an additional Package with ForTest
	// set. Must be set before the first Load or Import call.
	Tests   bool
	modRoot string
	modPath string
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
	std     types.Importer
}

// NewLoader returns a loader for the module rooted at modRoot with the
// given module path (the "module" line of go.mod).
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

// FindModuleRoot walks upward from dir to the directory containing go.mod
// and returns that directory plus the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the patterns (directory paths relative to the module root;
// a "/..." suffix recurses) and returns the matched packages, type-checked.
// Directories without non-test Go files are skipped silently, as are
// testdata and hidden directories.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "..." {
			rec, pat = true, "."
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(l.modRoot, pat)
		}
		if !rec {
			addDir(filepath.Clean(abs))
			continue
		}
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			addDir(filepath.Clean(path))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, dir := range dirs {
		names, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		imp, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.load(imp)
		if err != nil {
			return nil, err
		}
		if !l.Tests {
			out = append(out, p)
			continue
		}
		out = append(out, p)
		ext, err := l.loadExternalTests(imp, dir, p)
		if err != nil {
			return nil, err
		}
		if ext != nil {
			out = append(out, ext)
		}
	}
	return out, nil
}

// loadExternalTests type-checks the directory's external test package
// (package foo_test) if one exists. It imports the package under test
// through the loader like any other dependency, which — because Tests mode
// merges in-package test files into every load — gives it the augmented
// package, matching `go test` semantics (export_test.go hooks are visible).
func (l *Loader) loadExternalTests(imp, dir string, base *Package) (*Package, error) {
	files, err := l.parseTestFiles(dir, base.Types.Name()+"_test")
	if err != nil || len(files) == 0 {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(imp+"_test", l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s_test: %w", imp, err)
	}
	return &Package{Path: imp + "_test", Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info, ForTest: imp}, nil
}

// parseTestFiles parses the directory's _test.go files (honoring build
// constraints) that declare the given package name, in sorted file order.
func (l *Loader) parseTestFiles(dir, pkgName string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, "_test.go") {
			continue
		}
		if !buildTagOK(filepath.Join(dir, n)) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}
	return files, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// goFilesIn lists the non-test Go files of a directory that are included
// under the default build configuration, sorted. Honoring //go:build lines
// matters because tag-gated variant pairs (for example alternate engine
// defaults) declare the same identifiers and must not be type-checked
// together.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if !buildTagOK(filepath.Join(dir, n)) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// buildTagOK reports whether the file's build constraints, if any, are
// satisfied with no build tags set (the configuration `go build` uses by
// default on this platform). Per the toolchain's rules, a //go:build line
// is authoritative and any legacy // +build lines in the same file are
// ignored; with only legacy lines present, multiple // +build lines AND
// together. Unreadable or unparsable headers count as included, matching
// the pre-constraint behavior.
func buildTagOK(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true
	}
	var legacy []constraint.Expr
	for _, line := range strings.Split(string(data), "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "package ") {
			break // constraints are only legal before the package clause
		}
		switch {
		case constraint.IsGoBuild(t):
			expr, err := constraint.Parse(t)
			if err != nil {
				return true
			}
			return expr.Eval(defaultBuildTag)
		case constraint.IsPlusBuild(t):
			expr, err := constraint.Parse(t)
			if err != nil {
				continue
			}
			legacy = append(legacy, expr)
		}
	}
	for _, expr := range legacy {
		if !expr.Eval(defaultBuildTag) {
			return false
		}
	}
	return true
}

// defaultBuildTag evaluates a single build tag for the default (tagless)
// configuration: the host OS/arch, the gc toolchain, and every released
// go1.N language tag hold; custom tags do not.
func defaultBuildTag(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// Import implements types.Importer, so module-local dependencies of a
// package under analysis are themselves loaded through this loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-local package, memoized.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer func() { l.loading[importPath] = false }()

	dir := l.modRoot
	if importPath != l.modPath {
		dir = filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(importPath, l.modPath+"/")))
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if l.Tests {
		// Merge the in-package test files into the one canonical package for
		// this import path. Doing it for dependencies too (not just directly
		// requested packages) keeps type identity consistent: an external
		// test package and the libraries it pulls in all see the same
		// augmented types.Package.
		tfiles, err := l.parseTestFiles(dir, files[0].Name.Name)
		if err != nil {
			return nil, err
		}
		files = append(files, tfiles...)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
