package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// toleranceHelper reports whether a function name marks an approved
// tolerance-comparison helper, inside which raw float equality is the whole
// point (the helper implements the tolerance).
func toleranceHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"approx", "almosteq", "withintol", "samefloat", "eqtol"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

// FloatCmp flags == and != between floating-point operands. Exact float
// equality is almost always a latent bug around an LP solver: two
// mathematically equal quantities computed along different pivot sequences
// differ in the last ulps, so exact comparisons silently flip branches.
// Compare against a named tolerance instead, or suppress with a reason when
// exactness is intended (bit-level sparsity checks, sentinel values).
// Comparisons where both operands are compile-time constants are exempt, as
// are approved tolerance helpers (names matching approx/almostEq/withinTol).
func FloatCmp() *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "flags ==/!= on floating-point operands outside tolerance helpers",
		Run:  runFloatCmp,
	}
}

func runFloatCmp(p *Package) []Diagnostic {
	var out []Diagnostic
	p.inspect(func(n ast.Node, enc *ast.FuncDecl) {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		if enc != nil && toleranceHelper(enc.Name.Name) {
			return
		}
		xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]
		if xt.Type == nil || yt.Type == nil {
			return
		}
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return
		}
		// A comparison folded at compile time cannot drift.
		if xt.Value != nil && yt.Value != nil {
			return
		}
		out = append(out, Diagnostic{
			Pos:  p.pos(be.OpPos),
			Rule: "floatcmp",
			Msg:  "exact " + be.Op.String() + " on float operands; compare against a named tolerance",
		})
	})
	return out
}
