package lint

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"
)

// fixtureCFG type-checks src and builds the CFG of the named function.
func fixtureCFG(t *testing.T, src, fnName string) (*Package, *cfg) {
	t.Helper()
	p := checkFixture(t, "x/fix", src)
	var body *ast.BlockStmt
	p.funcBodies(func(name string, _ ast.Node, b *ast.BlockStmt) {
		if name == fnName && body == nil {
			body = b
		}
	})
	if body == nil {
		t.Fatalf("no function %q in fixture", fnName)
	}
	return p, p.buildCFG(body)
}

// cfgString renders the reachable subgraph canonically: blocks in reverse
// postorder, renumbered by that order, each with its kind and successor
// list. Unreachable builder scratch blocks ("dead") never appear, so the
// pinned strings are stable against construction-order churn.
func cfgString(c *cfg) string {
	rpo := c.reversePostorder()
	idx := make(map[*block]int, len(rpo))
	for i, b := range rpo {
		idx[b] = i
	}
	var sb strings.Builder
	for i, b := range rpo {
		fmt.Fprintf(&sb, "%d:%s ->", i, b.kind)
		for _, s := range b.succs {
			if j, ok := idx[s]; ok {
				fmt.Fprintf(&sb, " %d", j)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func expectCFG(t *testing.T, c *cfg, want string) {
	t.Helper()
	got := strings.TrimSpace(cfgString(c))
	want = strings.TrimSpace(want)
	if got != want {
		t.Fatalf("cfg mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// The pinned shapes below are the ones the ISSUE calls out: defer, select,
// and goto, plus the loop/switch edges the analyzers lean on hardest.

func TestCFGDeferEdges(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

import "sync"

func F(mu *sync.Mutex, cond bool) {
	mu.Lock()
	defer mu.Unlock()
	if cond {
		return
	}
	work()
}

func work() {}
`, "F")
	// The defer stays in the entry block in program order; both the early
	// return and the fall-off edge converge on exit.
	expectCFG(t, c, `
0:entry -> 2 1
1:if.done -> 3
2:if.then -> 3
3:exit ->
`)
	if len(c.defers) != 1 {
		t.Fatalf("defers = %d, want 1", len(c.defers))
	}
	if !c.reaches(c.entry, c.exit) {
		t.Fatal("exit must be reachable")
	}
}

func TestCFGSelectEdges(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
	default:
	}
	return 0
}
`, "F")
	// Entry dispatches to each comm block; the return case jumps straight to
	// exit, the others fall through to the post-select block. With a default
	// present there is no head->after edge.
	expectCFG(t, c, `
0:entry -> 4 2 1
1:select.default -> 3
2:select.case -> 3
3:select.done -> 5
4:select.case -> 5
5:exit ->
`)
}

func TestCFGCaselessSelectBlocksForever(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F() {
	select {}
}
`, "F")
	if c.reaches(c.entry, c.exit) {
		t.Fatal("select{} must not reach exit")
	}
}

func TestCFGGotoEdges(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}
`, "F")
	// The label block is both the goto target and the fallthrough of normal
	// flow; the goto closes the cycle back to it.
	expectCFG(t, c, `
0:entry -> 1
1:label.loop -> 4 2
2:if.done -> 3
3:exit ->
4:if.then -> 1
`)
	if !c.reaches(c.entry, c.exit) {
		t.Fatal("exit must be reachable via the if.done path")
	}
}

func TestCFGForEdges(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`, "F")
	expectCFG(t, c, `
0:entry -> 1
1:for.head -> 4 2
2:for.done -> 3
3:exit ->
4:for.body -> 5
5:for.post -> 1
`)
}

func TestCFGCondlessForOnlyExitsViaBreak(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func Forever() {
	for {
	}
}

func Breaks(ch chan int) {
	for {
		if <-ch == 0 {
			break
		}
	}
}
`, "Forever")
	if c.reaches(c.entry, c.exit) {
		t.Fatal("for{} must not reach exit")
	}
	_, c2 := fixtureCFG(t, `package fix

func Breaks(ch chan int) {
	for {
		if <-ch == 0 {
			break
		}
	}
}
`, "Breaks")
	if !c2.reaches(c2.entry, c2.exit) {
		t.Fatal("for{...break...} must reach exit")
	}
}

func TestCFGRangeAlwaysReachesDone(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F(ch chan int) int {
	n := 0
	for range ch {
		n++
	}
	return n
}
`, "F")
	// A range over a channel ends when the channel closes: head keeps its
	// edge to range.done, so the function can terminate.
	expectCFG(t, c, `
0:entry -> 1
1:range.head -> 4 2
2:range.done -> 3
3:exit ->
4:range.body -> 1
`)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F(x int) int {
	switch x {
	case 0:
		fallthrough
	case 1:
		return 1
	}
	return 0
}
`, "F")
	// Case guards live in the head block; fallthrough jumps from case 0's
	// block straight into case 1's block; no default means a head->done edge.
	expectCFG(t, c, `
0:entry -> 2 3 1
1:switch.done -> 4
2:switch.case -> 3
3:switch.case -> 4
4:exit ->
`)
}

func TestCFGPanicTerminates(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F(bad bool) int {
	if bad {
		panic("bad")
	}
	return 1
}
`, "F")
	// The panic call ends its block with no successors: the only path to
	// exit is the non-panicking branch.
	rpo := c.reversePostorder()
	var panicBlock *block
	for _, b := range rpo {
		if b.kind == "if.then" {
			panicBlock = b
		}
	}
	if panicBlock == nil {
		t.Fatal("no if.then block")
	}
	if c.reaches(panicBlock, c.exit) {
		t.Fatal("panic block must not reach exit")
	}
	if !c.reaches(c.entry, c.exit) {
		t.Fatal("exit must be reachable around the panic")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, c := fixtureCFG(t, `package fix

func F(grid [][]int) bool {
outer:
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
	}
	return true
}
`, "F")
	if !c.reaches(c.entry, c.exit) {
		t.Fatal("labeled break must reach exit")
	}
}
