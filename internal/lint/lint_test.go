package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// Fixtures are type-checked in-memory against a shared source importer so
// the standard library is only compiled once for the whole test run.
var (
	fixFset     = token.NewFileSet()
	fixImporter = importer.ForCompiler(fixFset, "source", nil)
	fixCount    int
)

// checkFixture parses and type-checks one in-memory file as a package with
// the given import path (the path drives the analyzers' Match functions).
func checkFixture(t *testing.T, path, src string) *Package {
	t.Helper()
	fixCount++
	name := fmt.Sprintf("fixture%d.go", fixCount)
	f, err := parser.ParseFile(fixFset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: fixImporter}
	tpkg, err := conf.Check(path, fixFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{Path: path, Fset: fixFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// runOn lints one fixture with the full registry through the engine (so
// Match scoping and ignore directives apply) and returns findings as
// "line:rule" strings.
func runOn(t *testing.T, path, src string) []string {
	t.Helper()
	p := checkFixture(t, path, src)
	base := fixFset.File(p.Files[0].Pos()).LineStart(1)
	_ = base
	var out []string
	for _, d := range Run([]*Package{p}, Analyzers()) {
		out = append(out, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	return out
}

func expect(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestFloatCmp(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func eq(a, b float64) bool  { return a == b }
func neq(a, b float64) bool { return a != b }
func mixed(a float64, b int) bool { return a == float64(b) }
func ints(a, b int) bool    { return a == b }
func folded() bool          { return 1.5 == 3.0/2.0 }
func approxEq(a, b float64) bool { return a == b }
`)
	expect(t, got, "3:floatcmp", "4:floatcmp", "5:floatcmp")
}

func TestFloatCmpSuppressed(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func trailing(a, b float64) bool {
	return a == b //lint:ignore floatcmp exactness is the point here
}

func above(a, b float64) bool {
	//lint:ignore floatcmp exactness is the point here
	return a == b
}

func wildcard(a, b float64) bool {
	return a == b //lint:ignore all fixture
}
`)
	expect(t, got)
}

func TestErrDrop(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fail() error        { return nil }
func pair() (int, error) { return 0, nil }

func drops() {
	fail()
	defer fail()
	go fail()
	_ = fail()
	_, _ = pair()
	f, _ := os.Open("x")
	_ = f
}

func exempt() {
	fmt.Println("fine")
	var sb strings.Builder
	sb.WriteString("fine")
	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Fprintln(os.Stderr, "fine")
	fmt.Fprintf(os.Stdout, "fine")
	fmt.Fprintf(&sb, "fine")
	fmt.Fprintf(&buf, "fine")
	if n, err := pair(); err != nil {
		_ = n
	}
}
`)
	expect(t, got, "14:errdrop", "15:errdrop", "16:errdrop", "17:errdrop", "18:errdrop", "19:errdrop")
}

func TestErrDropSuppressed(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func fail() error { return nil }

func drops() {
	fail() //lint:ignore errdrop fixture
	//lint:ignore errdrop fixture
	_ = fail()
}
`)
	expect(t, got)
}

func TestLibPanic(t *testing.T) {
	src := `package fix

func bad(x int) {
	if x < 0 {
		panic("negative")
	}
}

func mustPositive(x int) {
	if x <= 0 {
		panic("nonpositive")
	}
}

func assertOK(ok bool) {
	if !ok {
		panic("violated")
	}
}
`
	// Inside internal/, the bare panic is flagged; the invariant helpers
	// are not.
	expect(t, runOn(t, "x/internal/fix", src), "5:libpanic")
	// Outside internal/, the rule does not apply at all.
	expect(t, runOn(t, "x/fix", src))
}

func TestLibPanicSuppressed(t *testing.T) {
	got := runOn(t, "x/internal/fix", `package fix

func bad(x int) {
	if x < 0 {
		//lint:ignore libpanic fixture invariant
		panic("negative")
	}
}
`)
	expect(t, got)
}

func TestNaNGuard(t *testing.T) {
	src := `package fix

import "math"

func unguarded(x, y float64) float64 {
	return math.Sqrt(x) + 1/y
}

func guarded(x, y float64) float64 {
	if x < 0 || y < 1e-1 {
		return 0
	}
	return math.Sqrt(x) + 1/y
}

func constants() float64 {
	return math.Sqrt(4) + 1/2.0
}

func intDiv(a, b int) int { return a / b }
`
	// Only the lp/matching paths are patrolled.
	expect(t, runOn(t, "x/internal/lp", src), "6:nanguard", "6:nanguard")
	expect(t, runOn(t, "x/internal/fix", src))
}

func TestNaNGuardSuppressed(t *testing.T) {
	got := runOn(t, "x/internal/matching", `package fix

func halve(g float64) float64 {
	//lint:ignore nanguard g is nonzero by construction in this fixture
	return 1 / g
}
`)
	expect(t, got)
}

func TestTolConst(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

const eps = 1e-9

var inline = 1e-6
var coefficient = 0.5
var zero = 0.0

func f(v float64) bool {
	return v < 1e-7
}

func g() float64 {
	const local = 1e-8
	return local
}
`)
	expect(t, got, "5:tolconst", "10:tolconst")
}

func TestTolConstSuppressed(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

var inline = 1e-6 //lint:ignore tolconst fixture
`)
	expect(t, got)
}

// statusFixPrelude declares stand-ins for the lp solver API at the real
// import path so calleeFullName resolves to the production method names.
const statusFixPrelude = `package lp

import "context"

type SolveStatus int

type Solution struct {
	Status     SolveStatus
	Objective  float64
	Iterations int
}

type Solver struct{}

func (s *Solver) Solve() (*Solution, error)                       { return nil, nil }
func (s *Solver) SolveCtx(ctx context.Context) (*Solution, error) { return nil, nil }
`

func TestStatusCheck(t *testing.T) {
	got := runOn(t, "tcr/internal/lp", statusFixPrelude+`
func discarded(s *Solver) error {
	_, err := s.Solve()
	return err
}

func unread(s *Solver) (float64, error) {
	sol, err := s.Solve()
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

func checked(s *Solver) (float64, error) {
	sol, err := s.SolveCtx(context.Background())
	if err != nil {
		return 0, err
	}
	if sol.Status != 0 {
		return 0, err
	}
	return sol.Objective, nil
}

func escapes(s *Solver) (*Solution, error) {
	sol, err := s.Solve()
	return sol, err
}

func passedOn(s *Solver) (SolveStatus, error) {
	sol, err := s.Solve()
	if err != nil {
		return 0, err
	}
	return inspectStatus(sol), nil
}

func inspectStatus(sol *Solution) SolveStatus { return sol.Status }
`)
	expect(t, got, "19:statuscheck", "24:statuscheck")
}

func TestStatusCheckSuppressed(t *testing.T) {
	got := runOn(t, "tcr/internal/lp", statusFixPrelude+`
func warm(s *Solver) error {
	//lint:ignore statuscheck warm-start priming run, outcome irrelevant
	_, err := s.Solve()
	return err
}
`)
	expect(t, got)
}

func TestMalformedDirective(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

//lint:ignore floatcmp
func f() {}
`)
	expect(t, got, "3:lintdir")
}

func TestDirectiveDoesNotReachTwoLinesDown(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func eq(a, b float64) bool {
	//lint:ignore floatcmp fixture

	return a == b
}
`)
	expect(t, got, "6:floatcmp")
}

func TestByName(t *testing.T) {
	all, err := ByName(nil)
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("empty selection: %v, %d analyzers", err, len(all))
	}
	sel, err := ByName([]string{"floatcmp", " errdrop"})
	if err != nil || len(sel) != 2 || sel[0].Name != "floatcmp" || sel[1].Name != "errdrop" {
		t.Fatalf("subset selection broken: %v %v", sel, err)
	}
	if _, err := ByName([]string{"nosuchrule"}); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:  token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Rule: "floatcmp",
		Msg:  "boom",
	}
	if s := d.String(); s != "a/b.go:3:7: floatcmp: boom" {
		t.Fatalf("String() = %q", s)
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "tcr" {
		t.Fatalf("module path = %q, want tcr", modPath)
	}
	if root == "" {
		t.Fatal("empty module root")
	}
	if _, _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Fatal("found a module root in an empty temp dir")
	}
}

func TestCtxGoGoStmt(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "context"

func Sweep(n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func SweepCtx(ctx context.Context, n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func sweep(n int) {
	ch := make(chan struct{})
	go close(ch)
	<-ch
}

func Wrapped(n int) { SweepCtx(context.Background(), n) }
`)
	// Only the exported, context-free Sweep is flagged; the Ctx form, the
	// unexported helper, and the spawn-free wrapper all pass.
	expect(t, got, "8:ctxgo")
}

func TestCtxGoParDo(t *testing.T) {
	got := runOn(t, "tcr/internal/par", `package par

import "context"

func Do(ctx context.Context, n, workers int, task func(int) error) error {
	for i := 0; i < n; i++ {
		if err := task(i); err != nil {
			return err
		}
	}
	return nil
}

func Fan(n int) error {
	return Do(context.Background(), n, 0, func(int) error { return nil })
}

func FanCtx(ctx context.Context, n int) error {
	return Do(ctx, n, 0, func(int) error { return nil })
}
`)
	expect(t, got, "15:ctxgo")
}

// TestCtxGoHTTPHandler: *net/http.Request satisfies the context requirement
// — its Context() method is the cancellation source handlers are expected to
// thread into spawned work. An exported spawner with neither a Context nor a
// Request parameter is still flagged, even in the same HTTP-flavored file.
func TestCtxGoHTTPHandler(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "net/http"

func HandleThing(w http.ResponseWriter, r *http.Request) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-r.Context().Done()
	}()
	<-done
}

func SpawnDetached(w http.ResponseWriter) {
	ch := make(chan struct{})
	go close(ch)
	<-ch
}
`)
	expect(t, got, "16:ctxgo")
}

func TestCtxGoSuppressed(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

func Flush() {
	ch := make(chan struct{})
	//lint:ignore ctxgo fire-and-forget close cannot block and needs no cancellation
	go close(ch)
	<-ch
}
`)
	expect(t, got)
}

// TestBuildTagOK exercises the loader's build-constraint filter: files
// gated on custom tags (like the lpdense engine fallback) must be excluded
// from the default-configuration load, while host-true and unconstrained
// files stay in.
func TestBuildTagOK(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, src string
		want      bool
	}{
		{"plain.go", "package p\n", true},
		{"custom.go", "//go:build lpdense\n\npackage p\n", false},
		{"negated.go", "//go:build !lpdense\n\npackage p\n", true},
		{"host.go", "//go:build " + runtime.GOOS + "\n\npackage p\n", true},
		{"otheros.go", "//go:build plan9 && !" + runtime.GOOS + "\n\npackage p\n", false},
		{"plusbuild.go", "// +build lpdense\n\npackage p\n", false},
		{"goversion.go", "//go:build go1.1\n\npackage p\n", true},
		// When both forms appear, //go:build is authoritative and the legacy
		// line is ignored — per the gofmt-era constraint spec.
		{"mixed_wins.go", "//go:build !lpdense\n// +build lpdense\n\npackage p\n", true},
		{"mixed_loses.go", "//go:build lpdense\n// +build " + runtime.GOOS + "\n\npackage p\n", false},
		// Multiple legacy lines AND together.
		{"legacy_and_true.go", "// +build " + runtime.GOOS + "\n// +build !lpdense\n\npackage p\n", true},
		{"legacy_and_false.go", "// +build " + runtime.GOOS + "\n// +build lpdense\n\npackage p\n", false},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.name)
		if err := os.WriteFile(path, []byte(c.src), 0o644); err != nil {
			t.Fatal(err)
		}
		if got := buildTagOK(path); got != c.want {
			t.Errorf("buildTagOK(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}
