package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway module on disk and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoaderTestsMode pins the test-corpus semantics: with Tests set, every
// package is type-checked together with its in-package _test.go files (so
// export_test.go hooks are part of the canonical package), and an external
// foo_test package comes back as its own Package with ForTest pointing at
// the package under test. Without Tests, none of that is loaded.
func TestLoaderTestsMode(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": `package pkg

func Double(x int) int { return x + x }

type counter struct{ n int }

func (c *counter) bump() { c.n++ }
`,
		// In-package test file: reaches the unexported type, and exports a
		// hook the external test package needs — the pattern that forces
		// merged loading for type identity.
		"pkg/export_test.go": `package pkg

func NewCounter() *counter { return &counter{} }

func (c *counter) N() int { return c.n }
`,
		"pkg/pkg_test.go": `package pkg_test

import "example.test/pkg"

func useHook() int {
	c := pkg.NewCounter()
	return c.N() + pkg.Double(2)
}
`,
	})

	l := NewLoader(root, "example.test")
	l.Tests = true
	pkgs, err := l.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var base, ext *Package
	for _, p := range pkgs {
		switch p.Path {
		case "example.test/pkg":
			base = p
		case "example.test/pkg_test":
			ext = p
		default:
			t.Fatalf("unexpected package %q", p.Path)
		}
	}
	if base == nil || ext == nil {
		t.Fatalf("got %d packages, want base and external test package", len(pkgs))
	}
	if len(base.Files) != 2 {
		t.Fatalf("base package has %d files, want pkg.go + export_test.go", len(base.Files))
	}
	if ext.ForTest != "example.test/pkg" {
		t.Fatalf("external package ForTest = %q", ext.ForTest)
	}
	// matchPath routes external test diagnostics through the package under
	// test's path, so Match filters behave as if the code lived there.
	if got := ext.matchPath(); got != "example.test/pkg" {
		t.Fatalf("matchPath() = %q", got)
	}
	// The external file type-checked against the merged package: the
	// export_test.go hook resolved, proving there is one canonical
	// types.Package rather than a parallel test-only instance.
	if ext.Types.Name() != "pkg_test" {
		t.Fatalf("external package type-checked as %q", ext.Types.Name())
	}
}

func TestLoaderWithoutTestsSkipsTestFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": `package pkg

func Double(x int) int { return x + x }
`,
		"pkg/pkg_test.go": `package pkg

func triple(x int) int { return x + Double(x) }
`,
	})
	l := NewLoader(root, "example.test")
	pkgs, err := l.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].Files) != 1 {
		t.Fatalf("package has %d files, want pkg.go only", len(pkgs[0].Files))
	}
}
