package lint

import (
	"go/ast"
	"strings"
)

// GoLeak flags `go` statements whose body can never terminate: the CFG of
// the spawned function has no path from entry to exit. That is exactly the
// goroutine-leak shape this repo keeps writing by accident —
//
//	go func() {
//		for {
//			select {
//			case ev := <-events:
//				handle(ev)
//			}
//		}
//	}()
//
// — a loop with no return, no ctx.Done() branch that leads out, and no
// channel-closed detection. The check is a pure reachability property on
// the CFG (exit reachable from entry), so every legitimate exit shape passes
// without special cases: a `case <-ctx.Done(): return`, a `for range ch`
// loop (which ends when the channel closes), a conditional break, a panic.
// Intentionally-eternal loops (a daemon's accept loop) should say so with a
// //lint:ignore goleak directive explaining who owns the goroutine's
// lifetime.
//
// Only goroutines spawned in library code are checked: package main
// (cmd/...) wires process-lifetime goroutines by design.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name:  "goleak",
		Doc:   "flags go statements whose function body has no path to termination",
		Tests: true,
		Match: func(path string) bool {
			return !strings.Contains(path, "/cmd/") && !strings.HasSuffix(path, "/examples")
		},
		Run: runGoLeak,
	}
}

func runGoLeak(p *Package) []Diagnostic {
	// Index same-file-set function declarations so `go s.loop()` can be
	// resolved to its body. Methods key as "recv.Name", functions as "Name".
	decls := map[string]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls[funcDeclKey(fd)] = fd
		}
	}

	var out []Diagnostic
	p.inspect(func(n ast.Node, _ *ast.FuncDecl) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		body := p.goBody(gs, decls)
		if body == nil {
			return // dynamic callee: nothing to analyze
		}
		c := p.buildCFG(body)
		if c.reaches(c.entry, c.exit) {
			return
		}
		out = append(out, Diagnostic{
			Pos:  p.pos(gs.Pos()),
			Rule: "goleak",
			Msg: "goroutine body has no path to termination (no return, no exit from its loop); " +
				"it can never be collected — add a ctx.Done()/close-signal exit or justify with an ignore directive",
		})
	})
	return out
}

// goBody resolves the function body a go statement will run: a function
// literal's body directly, or the declaration body for calls to
// same-package functions and methods.
func (p *Package) goBody(gs *ast.GoStmt, decls map[string]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident, *ast.SelectorExpr:
		full := p.calleeFullName(gs.Call)
		if full == "" {
			return nil
		}
		// FullName is "pkg.Func" or "(recv).Method" / "(*recv).Method";
		// strip down to the decl key and require it to be in this package.
		if !strings.Contains(full, p.Types.Path()) {
			return nil
		}
		key := declKeyFromFullName(full)
		if fd := decls[key]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// funcDeclKey builds the lookup key for a declaration: "recvType.Name" for
// methods (pointer stripped), "Name" for plain functions.
func funcDeclKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if gen, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = gen.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// declKeyFromFullName converts a types.Func FullName within this package —
// "tcr/internal/serve.run" or "(*tcr/internal/serve.group).loop" — to the
// decl key used by funcDeclKey.
func declKeyFromFullName(full string) string {
	s := strings.TrimPrefix(full, "(")
	s = strings.TrimSuffix(s, ")")
	s = strings.ReplaceAll(s, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	s = strings.TrimPrefix(s, "*")
	// Drop the package path qualifier: keep everything after the last '/'
	// then after the first '.' of the qualified segment.
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	// s is now "serve.group.loop" or "serve.run"; strip the package name.
	if i := strings.Index(s, "."); i >= 0 {
		s = s[i+1:]
	}
	s = strings.TrimPrefix(s, "*")
	return s
}
