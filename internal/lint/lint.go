// Package lint is a from-scratch static-analysis engine for this repository,
// built directly on the standard library's go/parser, go/ast and go/types
// (no external analysis framework). It exists because the reproduction's
// value rests on numerically exact LP vertex optima and matching-dual
// certificates: silent numeric bugs — raw float equality, dropped error
// returns, NaN propagation, library panics — are the highest-risk defect
// class, and the analyzers here are tuned to exactly those hazards in the
// LP/routing core.
//
// The engine loads packages, type-checks them with a module-aware importer,
// and runs a registry of Analyzers, each producing file:line diagnostics.
// By default only non-test files are analyzed (test code may use looser
// idioms); with the Loader's Tests flag the test corpus is loaded too, and
// each analyzer opts in to covering it via its Tests field — the
// flow-sensitive concurrency/determinism rules do, the numeric style rules
// do not. A finding is
// suppressed by an explicit annotation:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory; a directive without one is
// itself reported (rule "lintdir"). The driver lives in cmd/tcrlint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "tcr/internal/lp"
	Dir   string // directory the files were read from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// ForTest is the import path of the package under test when this is an
	// external test package ("tcr/internal/lp" for "tcr/internal/lp_test");
	// empty otherwise. Analyzer Match functions see the tested package's
	// path so per-package rules extend to its external tests.
	ForTest string
}

// matchPath is the import path Match functions are applied to.
func (p *Package) matchPath() string {
	if p.ForTest != "" {
		return p.ForTest
	}
	return p.Path
}

// Analyzer is one named rule. Run inspects a package and returns raw
// diagnostics; the engine applies suppression directives afterwards.
type Analyzer struct {
	// Name is the rule identifier used in reports and ignore directives.
	Name string
	// Doc is a one-line description of what the rule flags.
	Doc string
	// Match restricts the analyzer to packages whose import path satisfies
	// it; nil means every package. External test packages are matched by the
	// path of the package under test.
	Match func(pkgPath string) bool
	// Tests extends the rule to _test.go files when the loader includes
	// them. Rules left false keep the engine's original contract — test code
	// may use looser idioms (raw float comparison against golden values,
	// dropped errors in helpers) that are bugs in production code only.
	Tests bool
	// Run produces the findings for one package.
	Run func(p *Package) []Diagnostic
}

// Analyzers returns the full registry, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmp(),
		ErrDrop(),
		StatusCheck(),
		LibPanic(),
		NaNGuard(),
		TolConst(),
		CtxGo(),
		LockCheck(),
		GoLeak(),
		DetWalk(),
		RandSource(),
		DirLiteral(),
	}
}

// ByName returns the named analyzers from the registry, erroring on unknown
// names. An empty list selects everything.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages, applies ignore directives,
// and returns the surviving diagnostics sorted by position. Malformed
// directives are reported under the rule "lintdir".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		sup, dirDiags := directives(p)
		diags = append(diags, dirDiags...)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(p.matchPath()) {
				continue
			}
			for _, d := range a.Run(p) {
				// A merged package holds production and in-package test
				// files together; gating by the diagnostic's filename keeps
				// non-Tests rules out of test code without re-analyzing.
				if !a.Tests && strings.HasSuffix(d.Pos.Filename, "_test.go") {
					continue
				}
				if !sup.covers(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// suppressions maps file -> line -> set of suppressed rules. A directive on
// line L covers findings on L (trailing comment) and on L+1 (directive on
// its own line above the code).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if rules := lines[ln]; rules != nil && (rules[d.Rule] || rules["all"]) {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// directives scans the package's comments for lint:ignore annotations,
// returning the suppression table and diagnostics for malformed directives.
func directives(p *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "lintdir",
						Msg:  "malformed directive: want //lint:ignore <rule>[,<rule>] <reason>",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[pos.Line] = rules
				}
				for _, r := range strings.Split(fields[0], ",") {
					rules[r] = true
				}
			}
		}
	}
	return sup, bad
}

// inspect walks every file of the package, invoking fn with each node and
// the innermost enclosing function declaration (nil at package scope).
func (p *Package) inspect(fn func(n ast.Node, enclosing *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					if n != nil {
						fn(n, d)
					}
					return true
				})
			default:
				ast.Inspect(d, func(n ast.Node) bool {
					if n != nil {
						fn(n, nil)
					}
					return true
				})
			}
		}
	}
}

// pos converts a token.Pos to a position within the package.
func (p *Package) pos(at token.Pos) token.Position { return p.Fset.Position(at) }

// isFloat reports whether the type is a floating-point type (after
// unwrapping named types); complex types are excluded.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && b.Info()&types.IsComplex == 0
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFullName resolves a call expression's callee to its qualified name:
// "fmt.Fprintf", "(*os.File).Close", "strings.Builder.WriteByte" style
// (types.Func.FullName), or "" when unresolvable (built-ins, func values).
func (p *Package) calleeFullName(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := p.Info.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}
