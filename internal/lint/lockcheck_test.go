package lint

import "testing"

// The path-sensitive cases here are the ones the AST-only engine could not
// express: whether an Unlock covers a Lock depends on which branch executes,
// not on source order.

func TestLockCheckEarlyReturnLeak(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Bad(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0
	}
	s.mu.Unlock()
	return s.n
}
`)
	// Reported at the acquire site: the early return path leaks the lock.
	expect(t, got, "11:lockcheck")
}

func TestLockCheckDeferIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Good(cond bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		return 0
	}
	return s.n
}

func (s *S) Closure(cond bool) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	if cond {
		return 0
	}
	return s.n
}
`)
	expect(t, got)
}

func TestLockCheckAllPathsUnlockIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Good(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return s.n
}
`)
	expect(t, got)
}

func TestLockCheckDoubleLock(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

var mu sync.Mutex

func Bad() {
	mu.Lock()
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}
`)
	// Reported at the second acquire.
	expect(t, got, "9:lockcheck")
}

func TestLockCheckLoopReacquireIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

var mu sync.Mutex

func Good(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		work()
		mu.Unlock()
	}
}

func work() {}
`)
	expect(t, got)
}

func TestLockCheckBreakLeaksInLoop(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

var mu sync.Mutex

func Bad(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		if stop() {
			break
		}
		mu.Unlock()
	}
}

func stop() bool { return true }
`)
	expect(t, got, "9:lockcheck")
}

func TestLockCheckFlavorMismatch(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

var rw sync.RWMutex

func Bad() int {
	rw.RLock()
	n := read()
	rw.Unlock()
	return n
}

func read() int { return 0 }
`)
	// The wrong-flavor release is reported, and because Unlock does not
	// release the read lock, the leak at return is reported too.
	expect(t, got, "8:lockcheck", "10:lockcheck")
}

func TestLockCheckUpgradeDeadlock(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

var rw sync.RWMutex

func Bad() {
	rw.RLock()
	rw.Lock()
	rw.Unlock()
	rw.RUnlock()
}
`)
	expect(t, got, "9:lockcheck")
}

func TestLockCheckCallerHeldUnlockIsClean(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

type S struct{ mu sync.Mutex }

// unlockBoth releases locks its callers acquired; releasing without a local
// acquire is not flagged.
func (s *S) unlock() { s.mu.Unlock() }
`)
	expect(t, got)
}

func TestLockCheckDistinctLocksIndependent(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) Good() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
`)
	expect(t, got)
}

func TestLockCheckSuppressed(t *testing.T) {
	got := runOn(t, "x/fix", `package fix

import "sync"

var mu sync.Mutex

// Hold acquires for the caller; the pairing Release is elsewhere.
func Hold() {
	//lint:ignore lockcheck handoff: Release is the documented counterpart
	mu.Lock()
}
`)
	expect(t, got)
}
