package lint

import (
	"go/ast"
	"strings"
)

// RandSource polices the deterministic core — internal/lp, internal/design,
// internal/topo, internal/store — against nondeterministic inputs: wall-clock
// reads (time.Now/Since/Until), the math/rand (and math/rand/v2) global
// source, and crypto/rand. Those packages' outputs are content-addressed and
// checkpoint-resumed; any value derived from a clock or an unseeded
// generator breaks fingerprint stability and workers=1 == workers=N
// equivalence.
//
// Explicitly seeded generators stay legal: rand.New(rand.NewSource(seed))
// and methods on a *rand.Rand are not flagged — the hazard is the shared
// global source, whose seed (and goroutine interleaving) is outside the
// artifact's inputs. Code that genuinely needs the clock for observability
// (elapsed-time diagnostics that never feed an artifact) must say so with a
// //lint:ignore randsource directive naming why the value cannot reach a
// fingerprint.
func RandSource() *Analyzer {
	return &Analyzer{
		Name:  "randsource",
		Doc:   "flags wall-clock and global/crypto randomness inside the deterministic packages",
		Tests: true,
		Match: inDeterministicPackage,
		Run:   runRandSource,
	}
}

// deterministicPkgs are the packages whose outputs must be bit-for-bit
// reproducible from their declared inputs.
var deterministicPkgs = []string{
	"/internal/lp",
	"/internal/design",
	"/internal/topo",
	"/internal/store",
	// The online loop's reproducibility contract — a fixed sample stream
	// reproduces the estimate and every controller decision bit for bit —
	// makes clock reads and unseeded randomness bugs in the traffic models
	// and the sketch/decay/controller machinery.
	"/internal/traffic",
	"/internal/online",
}

func inDeterministicPackage(path string) bool {
	for _, base := range deterministicPkgs {
		if strings.HasSuffix(path, base) || strings.Contains(path, base+"/") {
			return true
		}
	}
	return false
}

// clockFuncs read the wall clock.
var clockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// randConstructors take an explicit seed or source and are therefore fine.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runRandSource(p *Package) []Diagnostic {
	var out []Diagnostic
	p.inspect(func(n ast.Node, _ *ast.FuncDecl) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		full := p.calleeFullName(call)
		if full == "" {
			return
		}
		switch {
		case clockFuncs[full]:
			out = append(out, Diagnostic{
				Pos:  p.pos(call.Pos()),
				Rule: "randsource",
				Msg: full + " in a deterministic package: wall-clock values are not reproducible " +
					"inputs; thread the value in from the caller or justify with an ignore directive",
			})
		case strings.HasPrefix(full, "math/rand.") || strings.HasPrefix(full, "math/rand/v2."):
			fn := full[strings.LastIndex(full, ".")+1:]
			if randConstructors[fn] {
				return // explicit-seed constructor; the resulting *Rand is reproducible
			}
			out = append(out, Diagnostic{
				Pos:  p.pos(call.Pos()),
				Rule: "randsource",
				Msg: full + " uses the global random source in a deterministic package; " +
					"use rand.New(rand.NewSource(seed)) with a seed derived from the inputs",
			})
		case strings.HasPrefix(full, "crypto/rand."):
			out = append(out, Diagnostic{
				Pos:  p.pos(call.Pos()),
				Rule: "randsource",
				Msg: full + " is entropy by design and can never be reproduced; " +
					"deterministic packages must derive values from their inputs",
			})
		}
	})
	return out
}
