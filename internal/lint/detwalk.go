package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetWalk guards the repo's bit-for-bit determinism contract against Go's
// randomized map iteration order. It runs a small forward taint analysis on
// each function's CFG:
//
//   - ranging over a map while appending to a slice, concatenating onto a
//     string, or writing into a strings.Builder/bytes.Buffer *taints* the
//     accumulator — its element order now depends on map iteration order;
//   - a sort call (sort.Strings, sort.Slice, slices.Sort, ...) on the
//     accumulator *sanitizes* it;
//   - feeding a still-tainted value to an order-sensitive sink — a hash
//     write, JSON encoding, strings.Join, fmt.Fprint* — is reported, as is
//     emitting loop-dependent data directly into a hash or a streaming JSON
//     encoder from inside the map range.
//
// Because taint and sanitization are tracked along control flow, the classic
// correct idiom (collect keys, sort, then emit) passes, while the same three
// statements with the sort on only one branch — or after the hash write —
// are flagged. An AST scan cannot make that distinction.
//
// Additionally, compound float accumulation in map order (sum += v inside a
// map range) is reported directly: float addition is not associative, so the
// result differs bit-for-bit run to run. Accumulating into a slot indexed by
// the range key (order-independent: distinct slots), into a variable
// declared inside the loop body (per-iteration), or integer accumulation
// (associative) are all fine and not flagged.
func DetWalk() *Analyzer {
	return &Analyzer{
		Name:  "detwalk",
		Doc:   "flags map-iteration-order dependent output: unsorted accumulation feeding hashes, JSON, or joins",
		Tests: true,
		Run:   runDetWalk,
	}
}

// sortFuncs sanitize their (first) argument's order.
var sortFuncs = map[string]bool{
	"sort.Strings":          true,
	"sort.Ints":             true,
	"sort.Float64s":         true,
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

// taintSinks consume ordered content; feeding them map-ordered data breaks
// determinism. Values are short labels for the diagnostic.
var taintSinks = map[string]string{
	"encoding/json.Marshal":           "JSON encoding",
	"encoding/json.MarshalIndent":     "JSON encoding",
	"(*encoding/json.Encoder).Encode": "JSON encoding",
	"strings.Join":                    "joining",
	"fmt.Fprint":                      "output",
	"fmt.Fprintf":                     "output",
	"fmt.Fprintln":                    "output",
	"fmt.Sprint":                      "formatting",
	"fmt.Sprintf":                     "formatting",
	"encoding/binary.Write":           "binary encoding",
}

// mapRange is one `for k, v := range m` over a map within the function body.
type mapRange struct {
	rs       *ast.RangeStmt
	key, val types.Object
}

// taintFact maps each tainted object to the position where map-ordered
// content first entered it.
type taintFact map[types.Object]token.Pos

func (t taintFact) clone() taintFact {
	c := make(taintFact, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

func joinTaint(acc, in taintFact) (taintFact, bool) {
	changed := false
	for obj, pos := range in {
		if cur, ok := acc[obj]; !ok || posBefore(cur, pos) != cur {
			if !ok {
				acc[obj] = pos
				changed = true
			} else if p := posBefore(cur, pos); p != cur {
				acc[obj] = p
				changed = true
			}
		}
	}
	return acc, changed
}

func runDetWalk(p *Package) []Diagnostic {
	var out []Diagnostic
	p.funcBodies(func(_ string, _ ast.Node, body *ast.BlockStmt) {
		out = append(out, p.detWalkFunc(body)...)
	})
	return out
}

func (p *Package) detWalkFunc(body *ast.BlockStmt) []Diagnostic {
	ranges := p.mapRangesIn(body)
	if len(ranges) == 0 {
		return nil // no map iteration, nothing to track
	}
	c := p.buildCFG(body)

	var diags []Diagnostic
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, msg string) {
		if !reported[pos] {
			reported[pos] = true
			diags = append(diags, Diagnostic{Pos: p.pos(pos), Rule: "detwalk", Msg: msg})
		}
	}

	// Reporting happens inside the transfer function; the reported-set keyed
	// by position dedups across fixpoint iterations, and since taint facts
	// only grow monotonically, nothing reported early becomes false later.
	solveForward(c, forwardFlow[taintFact]{
		entry:  taintFact{},
		bottom: func() taintFact { return taintFact{} },
		join:   joinTaint,
		transfer: func(b *block, fact taintFact) taintFact {
			out := fact.clone()
			for _, n := range b.nodes {
				p.detWalkNode(n, ranges, out, report)
			}
			return out
		},
	})
	return diags
}

// mapRangesIn collects every range-over-map statement lexically inside body,
// excluding function literals (separate analysis units).
func (p *Package) mapRangesIn(body *ast.BlockStmt) []*mapRange {
	var out []*mapRange
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		mr := &mapRange{rs: rs}
		if id, ok := rs.Key.(*ast.Ident); ok {
			mr.key = p.objOf(id)
		}
		if id, ok := rs.Value.(*ast.Ident); ok {
			mr.val = p.objOf(id)
		}
		out = append(out, mr)
		return true
	})
	return out
}

// enclosingMapRange finds the innermost map range whose body contains pos.
func enclosingMapRange(ranges []*mapRange, pos token.Pos) *mapRange {
	var best *mapRange
	for _, mr := range ranges {
		b := mr.rs.Body
		if pos < b.Pos() || pos > b.End() {
			continue
		}
		if best == nil || b.Pos() > best.rs.Body.Pos() {
			best = mr
		}
	}
	return best
}

// loopLocal reports whether obj is bound per iteration of mr: the range
// key/value, or any variable declared inside the loop body.
func (mr *mapRange) loopLocal(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if obj == mr.key || obj == mr.val {
		return true
	}
	return obj.Pos() >= mr.rs.Body.Pos() && obj.Pos() <= mr.rs.Body.End()
}

// loopDependent reports whether the expression reads any per-iteration
// binding of mr — the signal that its value varies with map order.
func (p *Package) loopDependent(mr *mapRange, e ast.Node) bool {
	dep := false
	walkExprs(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && mr.loopLocal(p.objOf(id)) {
			dep = true
		}
		return !dep
	})
	return dep
}

// taintedIn returns the taint origin of the first tainted object read by e.
func (p *Package) taintedIn(fact taintFact, e ast.Node) (types.Object, token.Pos, bool) {
	var obj types.Object
	var pos token.Pos
	walkExprs(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := p.objOf(id); o != nil {
				if at, ok := fact[o]; ok {
					obj, pos = o, at
					return false
				}
			}
		}
		return true
	})
	return obj, pos, obj != nil
}

// detWalkNode applies one block node's effect on the taint fact, reporting
// sinks and in-loop hazards as it goes.
func (p *Package) detWalkNode(n ast.Node, ranges []*mapRange, fact taintFact, report func(token.Pos, string)) {
	mr := enclosingMapRange(ranges, n.Pos())

	switch s := n.(type) {
	case *ast.AssignStmt:
		p.detWalkAssign(s, mr, fact, report)
	case *ast.RangeStmt:
		// Ranging over a tainted slice emits its elements in tainted order;
		// the taint follows the loop's value binding.
		if _, at, ok := p.taintedIn(fact, s.X); ok {
			if vid, isID := s.Value.(*ast.Ident); isID && vid.Name != "_" {
				if vo := p.objOf(vid); vo != nil {
					fact[vo] = at
				}
			}
		}
	}

	callsIn(n, func(call *ast.CallExpr) {
		p.detWalkCall(call, mr, fact, report)
	})
}

func (p *Package) detWalkAssign(s *ast.AssignStmt, mr *mapRange, fact taintFact, report func(token.Pos, string)) {
	// Compound float accumulation in map order: non-associative, so the sum's
	// bits depend on iteration order.
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if mr == nil || len(s.Lhs) != 1 || !p.loopDependent(mr, s.Rhs[0]) {
			break
		}
		lhs := ast.Unparen(s.Lhs[0])
		tv, ok := p.Info.Types[lhs]
		if !ok || tv.Type == nil {
			break
		}
		switch {
		case isFloat(tv.Type):
			if p.accumSlotIsOrderFree(mr, lhs) {
				break
			}
			report(s.Pos(), "float accumulation in map-iteration order is not associative, so the result "+
				"is not bit-for-bit deterministic; iterate over sorted keys instead")
		case s.Tok == token.ADD_ASSIGN && isStringType(tv.Type):
			if id, isID := lhs.(*ast.Ident); isID {
				if obj := p.objOf(id); obj != nil && !mr.loopLocal(obj) {
					fact[obj] = s.Pos()
				}
			}
		}
		return
	}

	// s = append(s, ...loop-dependent) inside a map range taints s; append of
	// already-tainted content propagates taint.
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		lhsID, isID := ast.Unparen(s.Lhs[i]).(*ast.Ident)
		if !isID || lhsID.Name == "_" {
			continue
		}
		target := p.objOf(lhsID)
		if target == nil {
			continue
		}
		if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall && isAppendCall(p, call) {
			if mr != nil && !mr.loopLocal(target) {
				for _, arg := range call.Args[1:] {
					if p.loopDependent(mr, arg) {
						fact[target] = s.Pos()
						break
					}
				}
			}
			for _, arg := range call.Args {
				if _, at, ok := p.taintedIn(fact, arg); ok {
					if _, already := fact[target]; !already {
						fact[target] = at
					}
					break
				}
			}
			continue
		}
		// Plain assignment: taint flows from a tainted RHS, and a clean RHS
		// that does not read the target kills its taint.
		if _, at, ok := p.taintedIn(fact, rhs); ok {
			fact[target] = at
		} else if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			delete(fact, target)
		}
	}
}

// accumSlotIsOrderFree reports whether a compound-assignment target is safe
// despite map-order iteration: an element slot addressed by the range key
// (each iteration hits its own slot) at some level of the index chain.
func (p *Package) accumSlotIsOrderFree(mr *mapRange, lhs ast.Expr) bool {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if p.loopDependent(mr, e.Index) {
				return true
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.Ident:
			// A scalar (or fixed slot) declared inside the loop body is
			// per-iteration state and order-free.
			return mr.loopLocal(p.objOf(e))
		default:
			return false
		}
	}
}

func (p *Package) detWalkCall(call *ast.CallExpr, mr *mapRange, fact taintFact, report func(token.Pos, string)) {
	full := p.calleeFullName(call)

	// Sanitizers: sorting an accumulator re-establishes a canonical order.
	if sortFuncs[full] && len(call.Args) > 0 {
		if id, ok := rootIdent(call.Args[0]); ok {
			if obj := p.objOf(id); obj != nil {
				delete(fact, obj)
			}
		}
		return
	}

	// Builder writes: taint the builder when fed loop-dependent or tainted
	// content.
	if recv, method, ok := p.builderRecv(call); ok {
		switch method {
		case "WriteString", "WriteByte", "WriteRune", "Write":
			if mr != nil && !mr.loopLocal(recv) && argsLoopDependent(p, mr, call.Args) {
				fact[recv] = call.Pos()
			} else if _, at, ok := p.taintedArgs(fact, call.Args); ok {
				if _, already := fact[recv]; !already {
					fact[recv] = at
				}
			}
		}
		return
	}

	// Hash writes are emission: inside a map range with loop-dependent data
	// they fingerprint in random order; outside, a tainted argument carries
	// the randomness in.
	if method, isHash := p.hashRecvMethod(call); isHash {
		if method == "Write" || method == "WriteString" || method == "Sum" {
			if mr != nil && argsLoopDependent(p, mr, call.Args) {
				report(call.Pos(), "hash written inside a range over a map: fingerprint depends on map "+
					"iteration order; collect and sort keys first")
				return
			}
			if obj, at, ok := p.taintedArgs(fact, call.Args); ok {
				report(call.Pos(), "hashing "+obj.Name()+", which was filled in map-iteration order at "+
					p.pos(at).String()+"; sort it before fingerprinting")
			}
		}
		return
	}

	label, isSink := taintSinks[full]
	if !isSink {
		return
	}
	// Streaming JSON encode inside the map range emits in iteration order.
	if full == "(*encoding/json.Encoder).Encode" && mr != nil && argsLoopDependent(p, mr, call.Args) {
		report(call.Pos(), "JSON encoded inside a range over a map: output order depends on map "+
			"iteration order; collect and sort keys first")
		return
	}
	// fmt.Fprintf(h, ...) / binary.Write(h, ...) into a hash-typed writer
	// inside the map range is a fingerprint in random order.
	if mr != nil && len(call.Args) > 1 &&
		(strings.HasPrefix(full, "fmt.Fprint") || full == "encoding/binary.Write") &&
		p.isHashTyped(call.Args[0]) && argsLoopDependent(p, mr, call.Args[1:]) {
		report(call.Pos(), "hash written inside a range over a map: fingerprint depends on map "+
			"iteration order; collect and sort keys first")
		return
	}
	if obj, at, ok := p.taintedArgs(fact, call.Args); ok {
		report(call.Pos(), label+" of "+obj.Name()+", which was filled in map-iteration order at "+
			p.pos(at).String()+"; sort it first")
	}
}

// taintedArgs scans call arguments for a tainted object.
func (p *Package) taintedArgs(fact taintFact, args []ast.Expr) (types.Object, token.Pos, bool) {
	for _, a := range args {
		if obj, at, ok := p.taintedIn(fact, a); ok {
			return obj, at, true
		}
	}
	return nil, token.NoPos, false
}

func argsLoopDependent(p *Package, mr *mapRange, args []ast.Expr) bool {
	for _, a := range args {
		if p.loopDependent(mr, a) {
			return true
		}
	}
	return false
}

// builderRecv matches method calls on a strings.Builder or bytes.Buffer
// rooted at a plain identifier, returning the receiver object.
func (p *Package) builderRecv(call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil, "", false
	}
	ts := strings.TrimPrefix(tv.Type.String(), "*")
	if ts != "strings.Builder" && ts != "bytes.Buffer" {
		return nil, "", false
	}
	obj := p.objOf(id)
	if obj == nil {
		return nil, "", false
	}
	return obj, sel.Sel.Name, true
}

// hashRecvMethod matches method calls whose receiver's static type lives in
// package hash (hash.Hash, hash.Hash32, hash.Hash64 — what the crypto and
// hash constructors return).
func (p *Package) hashRecvMethod(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !p.isHashTyped(sel.X) {
		return "", false
	}
	return sel.Sel.Name, true
}

// isHashTyped reports whether the expression's static type is one of the
// package hash interfaces.
func (p *Package) isHashTyped(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return strings.HasPrefix(strings.TrimPrefix(tv.Type.String(), "*"), "hash.")
}

func isAppendCall(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootIdent unwraps an argument expression (&x, x[i], x.f chains rooted at
// an identifier) down to its base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
