package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPanic flags panic calls in library packages (tcr/internal/...). A panic
// that escapes a library boundary takes down whatever harness embeds the
// solver — in a long Pareto sweep or a future concurrent server, one bad
// input must surface as an error, not kill the process. Panics are allowed
// only inside designated invariant helpers (function names starting with
// "must" or "assert"), whose callers have consciously opted into
// crash-on-violated-invariant semantics.
func LibPanic() *Analyzer {
	return &Analyzer{
		Name:  "libpanic",
		Doc:   "flags panic in internal library code outside invariant helpers",
		Match: func(path string) bool { return strings.Contains(path, "/internal/") },
		Run:   runLibPanic,
	}
}

// invariantHelper reports whether panics are sanctioned in this function.
func invariantHelper(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "must") || strings.HasPrefix(lower, "assert")
}

func runLibPanic(p *Package) []Diagnostic {
	var out []Diagnostic
	p.inspect(func(n ast.Node, enc *ast.FuncDecl) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return
		}
		// Only the predeclared panic, not a local function named panic.
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return
		}
		if enc != nil && invariantHelper(enc.Name.Name) {
			return
		}
		out = append(out, Diagnostic{
			Pos:  p.pos(call.Pos()),
			Rule: "libpanic",
			Msg:  "panic in library code; return an error or move into a must*/assert* invariant helper",
		})
	})
	return out
}
