package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// objNamed finds the unique local object with the given name in the fixture
// function's scope tree.
func objNamed(t *testing.T, p *Package, name string) types.Object {
	t.Helper()
	var found types.Object
	for id, obj := range p.Info.Defs {
		if obj == nil || id.Name != name {
			continue
		}
		if found != nil {
			t.Fatalf("multiple definitions of %q in fixture", name)
		}
		found = obj
	}
	if found == nil {
		t.Fatalf("no definition of %q in fixture", name)
	}
	return found
}

func blockByKind(t *testing.T, c *cfg, kind string) *block {
	t.Helper()
	var found *block
	for _, b := range c.reversePostorder() {
		if b.kind == kind {
			if found != nil {
				t.Fatalf("multiple %q blocks", kind)
			}
			found = b
		}
	}
	if found == nil {
		t.Fatalf("no %q block", kind)
	}
	return found
}

func TestReachingDefsBranchesMerge(t *testing.T) {
	p, c := fixtureCFG(t, `package fix

func F(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	return x
}
`, "F")
	var fnType *ast.FuncType
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
				fnType = fd.Type
			}
			return true
		})
	}
	defs := p.reachingDefs(c, fnType)
	x := objNamed(t, p, "x")

	// At the merge point after the if, both the initial definition and the
	// then-branch redefinition reach.
	after := blockByKind(t, c, "if.done")
	if n := len(defs[after][x]); n != 2 {
		t.Fatalf("defs of x at if.done = %d sites, want 2", n)
	}
	// Inside the then branch, only the initial definition has reached entry.
	then := blockByKind(t, c, "if.then")
	if n := len(defs[then][x]); n != 1 {
		t.Fatalf("defs of x at if.then = %d sites, want 1", n)
	}
	// The parameter is defined at function entry.
	cond := objNamed(t, p, "cond")
	if n := len(defs[then][cond]); n != 1 {
		t.Fatalf("defs of cond at if.then = %d sites, want 1", n)
	}
}

func TestReachingDefsLoopKeepsBothDefs(t *testing.T) {
	p, c := fixtureCFG(t, `package fix

func F(n int) int {
	v := 0
	for i := 0; i < n; i++ {
		v = i
	}
	return v
}
`, "F")
	defs := p.reachingDefs(c, nil)
	v := objNamed(t, p, "v")
	// The loop head joins the pre-loop definition with the body's
	// redefinition on the back edge.
	head := blockByKind(t, c, "for.head")
	if n := len(defs[head][v]); n != 2 {
		t.Fatalf("defs of v at for.head = %d sites, want 2", n)
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	p, c := fixtureCFG(t, `package fix

func F(n int) int {
	acc := 0
	dead := 42
	_ = dead
	for i := 0; i < n; i++ {
		acc += i
	}
	return acc
}
`, "F")
	live := p.liveness(c)
	acc := objNamed(t, p, "acc")
	dead := objNamed(t, p, "dead")

	head := blockByKind(t, c, "for.head")
	if !live[head][acc] {
		t.Fatal("acc must be live at the loop head (read by the body and the return)")
	}
	if live[head][dead] {
		t.Fatal("dead must not be live at the loop head (never read again)")
	}
}

func TestLivenessUpwardExposedUse(t *testing.T) {
	p, c := fixtureCFG(t, `package fix

func F(a, b int) int {
	x := a
	x = b
	return x
}
`, "F")
	live := p.liveness(c)
	b := objNamed(t, p, "b")
	// b is read in the entry block, so it is live at function entry; the
	// redefinition of x kills the first assignment's value but not b.
	if !live[c.entry][b] {
		t.Fatal("b must be live at entry")
	}
}

func TestSolveForwardUnreachableKeepsBottom(t *testing.T) {
	p, c := fixtureCFG(t, `package fix

func F() int {
	return 1
}
`, "F")
	_ = p
	// A trivial counting flow: every visited block gets fact true.
	in := solveForward(c, forwardFlow[bool]{
		entry:  true,
		bottom: func() bool { return false },
		join: func(acc, in bool) (bool, bool) {
			if in && !acc {
				return true, true
			}
			return acc, false
		},
		transfer: func(_ *block, f bool) bool { return f },
	})
	if !in[c.entry] || !in[c.exit] {
		t.Fatal("entry and exit must both be reached by the flow")
	}
}
