package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// NaNGuard patrols the numerical hot paths (the LP solver and the matching
// oracles) for operations that can mint a NaN or Inf from unvalidated data:
// math.Sqrt/math.Log on arbitrary arguments and division by a bare variable.
// A NaN born deep inside a pivot loop propagates through every subsequent
// basis update and surfaces as a plausible-looking wrong optimum, so the
// rule demands that the operand be *guarded*: mentioned in some comparison
// in the enclosing function (a domain or tolerance check), or a compile-time
// constant. Unavoidable cases (a divisor that is ±1 by construction) carry
// a //lint:ignore nanguard annotation stating the invariant.
func NaNGuard() *Analyzer {
	return &Analyzer{
		Name: "nanguard",
		Doc:  "flags sqrt/log/division on unguarded operands in LP & matching hot paths",
		Match: func(path string) bool {
			return strings.HasSuffix(path, "/internal/lp") || strings.HasSuffix(path, "/internal/matching")
		},
		Run: runNaNGuard,
	}
}

// domainFuncs are math functions with a restricted domain worth guarding.
var domainFuncs = map[string]bool{
	"math.Sqrt":  true,
	"math.Log":   true,
	"math.Log2":  true,
	"math.Log10": true,
	"math.Log1p": true,
	"math.Asin":  true,
	"math.Acos":  true,
}

func runNaNGuard(p *Package) []Diagnostic {
	var out []Diagnostic
	guards := map[*ast.FuncDecl]map[string]bool{}
	guardedIn := func(enc *ast.FuncDecl, name string) bool {
		if enc == nil || name == "" {
			return false
		}
		g, ok := guards[enc]
		if !ok {
			g = comparedNames(enc)
			guards[enc] = g
		}
		return g[name]
	}
	p.inspect(func(n ast.Node, enc *ast.FuncDecl) {
		switch e := n.(type) {
		case *ast.CallExpr:
			name := p.calleeFullName(e)
			if !domainFuncs[name] || len(e.Args) != 1 {
				return
			}
			arg := ast.Unparen(e.Args[0])
			if p.Info.Types[arg].Value != nil {
				return // constant argument, domain checked at compile time
			}
			if guardedIn(enc, rootName(arg)) {
				return
			}
			out = append(out, Diagnostic{
				Pos:  p.pos(e.Pos()),
				Rule: "nanguard",
				Msg:  name + " on an unguarded argument; add a domain check or tolerance comparison first",
			})
		case *ast.BinaryExpr:
			if e.Op != token.QUO {
				return
			}
			t := p.Info.TypeOf(e)
			if t == nil || !isFloat(t) {
				return
			}
			den := ast.Unparen(e.Y)
			if p.Info.Types[den].Value != nil {
				return // constant divisor
			}
			name := rootName(den)
			if name == "" {
				return // composite divisor expressions are out of scope
			}
			if guardedIn(enc, name) {
				return
			}
			out = append(out, Diagnostic{
				Pos:  p.pos(e.OpPos),
				Rule: "nanguard",
				Msg:  "division by unguarded " + name + "; compare it against a tolerance first",
			})
		}
	})
	return out
}

// rootName extracts the identifier a simple operand hangs off: x -> "x",
// s.eps -> "eps", a[i] -> "a". Composite expressions return "".
func rootName(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.IndexExpr:
		return rootName(v.X)
	}
	return ""
}

// comparedNames collects every identifier that participates in an order or
// equality comparison anywhere in the function: the set of names the author
// has demonstrably range-checked somewhere.
func comparedNames(fn *ast.FuncDecl) map[string]bool {
	names := map[string]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					switch id := m.(type) {
					case *ast.Ident:
						names[id.Name] = true
					case *ast.SelectorExpr:
						names[id.Sel.Name] = true
					}
					return true
				})
			}
		}
		return true
	})
	return names
}
