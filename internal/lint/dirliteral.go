package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DirLiteral polices the topology abstraction boundary: outside
// internal/topo, code must not hard-code the 2D torus's direction
// vocabulary. The flagged forms are
//
//   - uses of the torus direction constants (topo.NumDirs, topo.XPlus,
//     topo.XMinus, topo.YPlus, topo.YMinus), which bake "every router has
//     four ports named after torus2d axes" into callers, and
//   - topo.Dir(<literal>) conversions, which invent a port index out of
//     thin air instead of deriving it from Topology.PortChan/ChanPort.
//
// Generic code sizes per-node structures with Topology.OutDeg/MaxDeg and
// walks links through PortChan/ChanDst; the Dir type itself (as a parameter
// or conversion of a computed port) stays legal. Code that is intentionally
// torus2d-specific — the closed-form Table 1 algorithms, dateline VC
// assignment, the loadmap renderer — must say so with a
// //lint:ignore dirliteral directive naming why 2D is structural there.
func DirLiteral() *Analyzer {
	return &Analyzer{
		Name:  "dirliteral",
		Doc:   "flags hard-coded 2D torus direction constants and literal port indices outside internal/topo",
		Match: func(path string) bool { return !isTopoPackage(path) },
		Run:   runDirLiteral,
	}
}

// isTopoPackage reports whether path is the topology package itself, the one
// place the direction vocabulary is definitional rather than an assumption.
func isTopoPackage(path string) bool {
	return path == "tcr/internal/topo" || strings.HasSuffix(path, "/internal/topo")
}

// dirConsts are the torus2d direction-vocabulary constants.
var dirConsts = map[string]bool{
	"NumDirs": true,
	"XPlus":   true,
	"XMinus":  true,
	"YPlus":   true,
	"YMinus":  true,
}

// topoObject reports whether obj is declared in an internal/topo package.
func topoObject(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && isTopoPackage(obj.Pkg().Path())
}

func runDirLiteral(p *Package) []Diagnostic {
	var out []Diagnostic
	p.inspect(func(n ast.Node, _ *ast.FuncDecl) {
		switch n := n.(type) {
		case *ast.Ident:
			obj, ok := p.Info.Uses[n].(*types.Const)
			if !ok || !topoObject(obj) || !dirConsts[obj.Name()] {
				return
			}
			out = append(out, Diagnostic{
				Pos:  p.pos(n.Pos()),
				Rule: "dirliteral",
				Msg: "topo." + obj.Name() + " hard-codes the 2D torus port vocabulary; " +
					"size ports with Topology.OutDeg/MaxDeg and walk links via PortChan/ChanDst, " +
					"or justify torus2d-only code with an ignore directive",
			})
		case *ast.CallExpr:
			// A conversion topo.Dir(<literal>) invents a port index; a
			// conversion of a computed value is the sanctioned way to type a
			// port and stays clean.
			if len(n.Args) != 1 {
				return
			}
			if _, isLit := ast.Unparen(n.Args[0]).(*ast.BasicLit); !isLit {
				return
			}
			var id *ast.Ident
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return
			}
			tn, ok := p.Info.Uses[id].(*types.TypeName)
			if !ok || tn.Name() != "Dir" || !topoObject(tn) {
				return
			}
			out = append(out, Diagnostic{
				Pos:  p.pos(n.Pos()),
				Rule: "dirliteral",
				Msg: "topo.Dir(literal) hard-codes a port index that only means something on the 2D torus; " +
					"derive ports from Topology.PortChan/ChanPort, or justify with an ignore directive",
			})
		}
	})
	return out
}
