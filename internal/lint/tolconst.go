package lint

import (
	"go/ast"
	"go/token"
	"math"
	"strconv"
)

// tolConstMax is the magnitude below which a float literal reads as a
// numerical tolerance rather than an ordinary coefficient.
const tolConstMax = 1e-4

// TolConst flags tolerance-sized float literals (0 < |v| <= 1e-4, think
// 1e-6 or 1e-12) written inline instead of referenced as named constants.
// Scattered magic epsilons are how a codebase ends up comparing the same
// quantity against three different tolerances in three files; every epsilon
// lives in a package const block with a name and a comment, and call sites
// reference it. Literals inside const declarations are exactly those named
// definitions, so they are exempt.
func TolConst() *Analyzer {
	return &Analyzer{
		Name: "tolconst",
		Doc:  "flags inline tolerance-sized float literals; name them in a const block",
		Run:  runTolConst,
	}
}

func runTolConst(p *Package) []Diagnostic {
	// Collect the positions of literals appearing inside const declarations.
	inConst := map[token.Pos]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				return true
			}
			ast.Inspect(gd, func(m ast.Node) bool {
				if lit, ok := m.(*ast.BasicLit); ok {
					inConst[lit.Pos()] = true
				}
				return true
			})
			return false
		})
	}
	var out []Diagnostic
	p.inspect(func(n ast.Node, enc *ast.FuncDecl) {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.FLOAT || inConst[lit.Pos()] {
			return
		}
		v, err := strconv.ParseFloat(lit.Value, 64)
		if err != nil {
			return
		}
		if a := math.Abs(v); a <= 0 || a > tolConstMax {
			return
		}
		out = append(out, Diagnostic{
			Pos:  p.pos(lit.Pos()),
			Rule: "tolconst",
			Msg:  "inline tolerance literal " + lit.Value + "; define it as a named const",
		})
	})
	return out
}
