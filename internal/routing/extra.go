package routing

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"tcr/internal/paths"
	"tcr/internal/topo"
)

// probSumTol bounds how far a table row's probabilities may drift from 1
// before ParseTable rejects the row (absorbs decimal-literal rounding).
const probSumTol = 1e-6

// O1TURN routes minimally, choosing x-first or y-first dimension order with
// equal probability. It post-dates the paper (Seo et al., 2005) but is the
// natural "minimal algorithm with near-optimal worst case" and makes a
// useful extra point in the Figure 1 tradeoff space, so the harness
// includes it alongside Table 1's algorithms.
type O1TURN struct{}

// Name implements Algorithm.
func (O1TURN) Name() string { return "O1TURN" }

// PairPaths implements Algorithm.
func (O1TURN) PairPaths(tp topo.Topology, s, d topo.Node) []paths.Weighted {
	t := torus2d(tp, "O1TURN")
	xy := paths.DORPaths(t, s, d, true)
	yx := paths.DORPaths(t, s, d, false)
	out := make([]paths.Weighted, 0, len(xy)+len(yx))
	for _, w := range xy {
		out = append(out, paths.Weighted{Path: w.Path, Prob: 0.5 * w.Prob})
	}
	for _, w := range yx {
		out = append(out, paths.Weighted{Path: w.Path, Prob: 0.5 * w.Prob})
	}
	return merge(out)
}

// tableJSON is the serialized form of a Table: hop strings keep the format
// compact and human-auditable.
type tableJSON struct {
	Label string               `json:"label"`
	K     int                  `json:"k"`
	Dists map[string][]distDef `json:"dists"` // key: "x,y" relative offset
}

type distDef struct {
	Dirs string  `json:"dirs"` // e.g. "+x+x-y"
	Prob float64 `json:"prob"`
}

var dirNames = map[topo.Dir]string{
	//lint:ignore dirliteral the golden WriteJSON format names torus2d directions by definition
	topo.XPlus: "+x", topo.XMinus: "-x", topo.YPlus: "+y", topo.YMinus: "-y",
}

var dirByName = map[string]topo.Dir{
	//lint:ignore dirliteral the golden WriteJSON format names torus2d directions by definition
	"+x": topo.XPlus, "-x": topo.XMinus, "+y": topo.YPlus, "-y": topo.YMinus,
}

// WriteJSON serializes a designed routing table so that expensive LP designs
// can be stored and reloaded.
func (a *Table) WriteJSON(w io.Writer, t *topo.Torus) error {
	out := tableJSON{Label: a.Label, K: t.K, Dists: map[string][]distDef{}}
	for rel, ws := range a.Dist {
		x, y := t.Coord(rel)
		key := fmt.Sprintf("%d,%d", x, y)
		defs := make([]distDef, 0, len(ws))
		for _, pw := range ws {
			var dirs string
			for _, d := range pw.Path.Dirs {
				dirs += dirNames[d]
			}
			defs = append(defs, distDef{Dirs: dirs, Prob: pw.Prob})
		}
		out.Dists[key] = defs
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadTableJSON loads a Table written by WriteJSON and validates it against
// the torus: every path must terminate at its relative destination and each
// distribution must sum to one.
func ReadTableJSON(r io.Reader, t *topo.Torus) (*Table, error) {
	var in tableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("routing: decode table: %w", err)
	}
	if in.K != t.K {
		return nil, fmt.Errorf("routing: table is for k=%d, torus is k=%d", in.K, t.K)
	}
	tbl := &Table{Label: in.Label, Dist: make(map[topo.Node][]paths.Weighted, len(in.Dists))}
	for key, defs := range in.Dists {
		var x, y int
		if _, err := fmt.Sscanf(key, "%d,%d", &x, &y); err != nil {
			return nil, fmt.Errorf("routing: bad offset key %q", key)
		}
		rel := t.NodeAt(x, y)
		var ws []paths.Weighted
		var sum float64
		for _, def := range defs {
			dirs, err := parseDirs(def.Dirs)
			if err != nil {
				return nil, fmt.Errorf("routing: offset %s: %w", key, err)
			}
			p := paths.Path{Src: 0, Dirs: dirs}
			if p.Dst(t) != rel {
				return nil, fmt.Errorf("routing: offset %s: path %q ends at %d, want %d",
					key, def.Dirs, p.Dst(t), rel)
			}
			ws = append(ws, paths.Weighted{Path: p, Prob: def.Prob})
			sum += def.Prob
		}
		if len(ws) > 0 && (sum < 1-probSumTol || sum > 1+probSumTol) {
			return nil, fmt.Errorf("routing: offset %s: probabilities sum to %v", key, sum)
		}
		tbl.Dist[rel] = ws
	}
	return tbl, nil
}

// portTableJSON is the serialized form of a Table on an arbitrary topology:
// rows are keyed by their decimal commodity index (relative destination on
// vertex-transitive families, pair index s*N+d otherwise) and hops are port
// indices rather than direction names.
type portTableJSON struct {
	Label    string                   `json:"label"`
	Topology string                   `json:"topology"`
	Dists    map[string][]portDistDef `json:"dists"`
}

type portDistDef struct {
	Ports []int   `json:"ports"`
	Prob  float64 `json:"prob"`
}

// WritePortsJSON serializes a designed routing table for an arbitrary
// topology; the 2D-torus WriteJSON format with its direction strings is kept
// for torus2d golden compatibility.
func (a *Table) WritePortsJSON(w io.Writer, t topo.Topology) error {
	out := portTableJSON{Label: a.Label, Topology: topo.String(t), Dists: map[string][]portDistDef{}}
	for row, ws := range a.Dist {
		defs := make([]portDistDef, 0, len(ws))
		for _, pw := range ws {
			ports := make([]int, len(pw.Path.Dirs))
			for i, d := range pw.Path.Dirs {
				ports[i] = int(d)
			}
			defs = append(defs, portDistDef{Ports: ports, Prob: pw.Prob})
		}
		out.Dists[strconv.Itoa(int(row))] = defs
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadPortsTableJSON loads a Table written by WritePortsJSON and validates
// it against the topology: every path must terminate at its row's
// destination and each distribution must sum to one.
func ReadPortsTableJSON(r io.Reader, t topo.Topology) (*Table, error) {
	var in portTableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("routing: decode table: %w", err)
	}
	if in.Topology != topo.String(t) {
		return nil, fmt.Errorf("routing: table is for %s, topology is %s", in.Topology, topo.String(t))
	}
	n := t.Nodes()
	tbl := &Table{Label: in.Label, Dist: make(map[topo.Node][]paths.Weighted, len(in.Dists))}
	for key, defs := range in.Dists {
		row, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("routing: bad row key %q", key)
		}
		src, dst := topo.Node(0), topo.Node(row)
		if !t.VertexTransitive() {
			if row < 0 || row >= n*n {
				return nil, fmt.Errorf("routing: row %d out of range", row)
			}
			src, dst = topo.Node(row/n), topo.Node(row%n)
		} else if row < 0 || row >= n {
			return nil, fmt.Errorf("routing: row %d out of range", row)
		}
		var ws []paths.Weighted
		var sum float64
		for _, def := range defs {
			dirs := make([]topo.Dir, len(def.Ports))
			for i, p := range def.Ports {
				dirs[i] = topo.Dir(p)
			}
			p := paths.Path{Src: src, Dirs: dirs}
			if p.Dst(t) != dst {
				return nil, fmt.Errorf("routing: row %s: path ends at %d, want %d", key, p.Dst(t), dst)
			}
			ws = append(ws, paths.Weighted{Path: p, Prob: def.Prob})
			sum += def.Prob
		}
		if len(ws) > 0 && (sum < 1-probSumTol || sum > 1+probSumTol) {
			return nil, fmt.Errorf("routing: row %s: probabilities sum to %v", key, sum)
		}
		tbl.Dist[topo.Node(row)] = ws
	}
	return tbl, nil
}

// parseDirs parses a "+x-y..." hop string.
func parseDirs(s string) ([]topo.Dir, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("bad hop string %q", s)
	}
	dirs := make([]topo.Dir, 0, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		d, ok := dirByName[s[i:i+2]]
		if !ok {
			return nil, fmt.Errorf("bad hop %q in %q", s[i:i+2], s)
		}
		dirs = append(dirs, d)
	}
	return dirs, nil
}
