package routing

import (
	"tcr/internal/paths"
	"tcr/internal/topo"
)

// Section 5.5 of the paper compares its oblivious designs against adaptive
// routing (GOAL, its reference [21]): adaptivity buys locality at equal
// worst-case throughput, at the cost of per-hop route computation. GOALish
// is an oblivious stand-in that captures GOAL's load-balancing structure:
// the direction in each dimension is chosen GOAL-style (minimal with
// probability (k-Delta)/k, exactly GOAL's and RLB's rule), and within the
// chosen quadrant the packet follows a uniformly random monotone staircase
// instead of two dimension-ordered phases. The staircase spreads load over
// the whole quadrant the way an adaptive router's congestion avoidance
// tends to, without requiring network state.
//
// It reproduces the qualitative Section 5.5 point: locality equal to RLB's
// (GOAL's expected travel is the same 2*Delta*(k-Delta)/k per dimension)
// with measurably different load spreading. True GOAL adapts per hop and
// achieves ~1.3x minimal on the 8-ary 2-cube; matching that exactly
// requires network-state-dependent choices outside the oblivious model
// this repository implements (the paper makes the same remark).
type GOALish struct{}

// Name implements Algorithm.
func (GOALish) Name() string { return "GOALish" }

// PairPaths implements Algorithm: direction choice per dimension as in RLB,
// then all interleavings of the required hops with equal probability.
func (GOALish) PairPaths(tp topo.Topology, s, d topo.Node) []paths.Weighted {
	t := torus2d(tp, "GOALish")
	rx, ry := t.Rel(s, d)
	//lint:ignore dirliteral GOALish is a torus2d construction
	xc := (RLB{}).dirProbs(t.K, rx, topo.XPlus, topo.XMinus)
	//lint:ignore dirliteral GOALish is a torus2d construction
	yc := (RLB{}).dirProbs(t.K, ry, topo.YPlus, topo.YMinus)
	var out []paths.Weighted
	for _, x := range xc {
		for _, y := range yc {
			prob := x.prob * y.prob
			//lint:ignore floatcmp exact-zero factor from dirProbs (no rounding involved)
			if prob == 0 {
				continue
			}
			appendStaircases(t, s, x, y, prob, &out)
		}
	}
	return merge(out)
}

// appendStaircases appends every interleaving of x.hops and y.hops unit
// moves, splitting prob equally among them.
func appendStaircases(t *topo.Torus, s topo.Node, x, y weightedDir, prob float64, out *[]paths.Weighted) {
	total := x.hops + y.hops
	if total == 0 {
		*out = append(*out, paths.Weighted{Path: paths.Path{Src: s}, Prob: prob})
		return
	}
	per := prob / float64(binomial(total, x.hops))
	dirs := make([]topo.Dir, total)
	var rec func(pos, usedX, usedY int)
	rec = func(pos, usedX, usedY int) {
		if pos == total {
			cp := make([]topo.Dir, total)
			copy(cp, dirs)
			*out = append(*out, paths.Weighted{Path: paths.Path{Src: s, Dirs: cp}, Prob: per})
			return
		}
		if usedX < x.hops {
			dirs[pos] = x.dir
			rec(pos+1, usedX+1, usedY)
		}
		if usedY < y.hops {
			dirs[pos] = y.dir
			rec(pos+1, usedX, usedY+1)
		}
	}
	rec(0, 0, 0)
}

// binomial computes C(n, k) exactly for the path lengths seen on a torus.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}
