package routing

import (
	"math"
	"math/rand"
	"testing"

	"tcr/internal/paths"
	"tcr/internal/topo"
)

// allAlgorithms returns the closed-form algorithms under test.
func allAlgorithms() []Algorithm {
	return []Algorithm{
		DOR{}, DOR{YFirst: true}, VAL{}, IVAL{}, ROMM{}, RLB{}, RLB{Threshold: true},
		Interpolated{A: IVAL{}, B: DOR{}, Alpha: 0.5},
	}
}

// hAvg computes the average path length of an algorithm over all pairs,
// using translation invariance (canonical source 0).
func hAvg(t *topo.Torus, alg Algorithm) float64 {
	var total float64
	for d := topo.Node(0); d < topo.Node(t.N); d++ {
		for _, w := range alg.PairPaths(t, 0, d) {
			total += w.Prob * float64(w.Path.Len())
		}
	}
	return total / float64(t.N)
}

func TestDistributionsAreValid(t *testing.T) {
	for _, k := range []int{4, 5, 6} {
		tor := topo.NewTorus(k)
		for _, alg := range allAlgorithms() {
			for d := topo.Node(0); d < topo.Node(tor.N); d++ {
				ws := alg.PairPaths(tor, 0, d)
				var sum float64
				for _, w := range ws {
					if w.Prob < 0 {
						t.Fatalf("k=%d %s dest %d: negative probability", k, alg.Name(), d)
					}
					sum += w.Prob
					if w.Path.Dst(tor) != d {
						t.Fatalf("k=%d %s dest %d: path ends at %d (%v)",
							k, alg.Name(), d, w.Path.Dst(tor), w.Path)
					}
					if w.Path.Src != 0 {
						t.Fatalf("k=%d %s dest %d: path starts at %d", k, alg.Name(), d, w.Path.Src)
					}
					if w.Path.RevisitsChannel(tor) {
						t.Fatalf("k=%d %s dest %d: channel revisit in %v", k, alg.Name(), d, w.Path)
					}
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("k=%d %s dest %d: probabilities sum to %v", k, alg.Name(), d, sum)
				}
			}
		}
	}
}

func TestTranslationInvariance(t *testing.T) {
	tor := topo.NewTorus(5)
	rng := rand.New(rand.NewSource(8))
	for _, alg := range allAlgorithms() {
		for trial := 0; trial < 10; trial++ {
			s := topo.Node(rng.Intn(tor.N))
			d := topo.Node(rng.Intn(tor.N))
			rx, ry := tor.Rel(s, d)
			base := alg.PairPaths(tor, 0, tor.NodeAt(rx, ry))
			moved := alg.PairPaths(tor, s, d)
			if len(base) != len(moved) {
				t.Fatalf("%s: path count differs under translation", alg.Name())
			}
			// Compare as distributions keyed by direction sequence.
			baseDist := map[string]float64{}
			for _, w := range base {
				baseDist[dirKey(w.Path)] += w.Prob
			}
			for _, w := range moved {
				baseDist[dirKey(w.Path)] -= w.Prob
			}
			for k, v := range baseDist {
				if math.Abs(v) > 1e-9 {
					t.Fatalf("%s: translation changed mass %v on %s", alg.Name(), v, k)
				}
			}
		}
	}
}

func dirKey(p paths.Path) string {
	b := make([]byte, len(p.Dirs))
	for i, d := range p.Dirs {
		b[i] = byte('0' + int(d))
	}
	return string(b)
}

func TestDORisMinimal(t *testing.T) {
	tor := topo.NewTorus(8)
	if got, want := hAvg(tor, DOR{}), tor.MeanMinDist(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("DOR H = %v, want minimal %v", got, want)
	}
	if got, want := hAvg(tor, ROMM{}), tor.MeanMinDist(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ROMM H = %v, want minimal %v", got, want)
	}
}

func TestVALExactlyTwiceMinimal(t *testing.T) {
	for _, k := range []int{4, 5, 8} {
		tor := topo.NewTorus(k)
		got := hAvg(tor, VAL{})
		want := 2 * tor.MeanMinDist()
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d: VAL H = %v, want %v", k, got, want)
		}
	}
}

func TestIVALBeatsVAL(t *testing.T) {
	tor := topo.NewTorus(8)
	hi := hAvg(tor, IVAL{})
	hv := hAvg(tor, VAL{})
	if hi >= hv {
		t.Fatalf("IVAL H = %v not below VAL H = %v", hi, hv)
	}
	// The paper reports roughly 1.61x minimal for k=8 (19.3%% below VAL's 2x).
	ratio := hi / tor.MeanMinDist()
	if ratio < 1.55 || ratio > 1.68 {
		t.Fatalf("IVAL normalized H = %v, expected about 1.61", ratio)
	}
}

func TestIVALPathsHaveAtMostTwoTurnsModuloUTurnOvershoot(t *testing.T) {
	// IVAL paths are loop-free concatenations of an xy and a yx phase, so
	// their direction pattern is X..Y..X with at most two turns.
	tor := topo.NewTorus(6)
	for d := topo.Node(0); d < topo.Node(tor.N); d++ {
		for _, w := range (IVAL{}).PairPaths(tor, 0, d) {
			if w.Path.Turns() > 2 {
				t.Fatalf("IVAL path with %d turns: %v", w.Path.Turns(), w.Path)
			}
		}
	}
}

func TestRLBExpectedHops(t *testing.T) {
	// Per dimension, RLB travels Delta with prob (k-Delta)/k and k-Delta
	// with prob Delta/k: E[T] = 2*Delta*(k-Delta)/k.
	for _, k := range []int{5, 8} {
		tor := topo.NewTorus(k)
		var want float64
		for rx := 0; rx < k; rx++ {
			for ry := 0; ry < k; ry++ {
				dx := tor.MinDist1D(rx)
				dy := tor.MinDist1D(ry)
				want += 2*float64(dx*(k-dx))/float64(k) + 2*float64(dy*(k-dy))/float64(k)
			}
		}
		want /= float64(tor.N)
		got := hAvg(tor, RLB{})
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d: RLB H = %v, want %v", k, got, want)
		}
	}
}

func TestRLBthShorterThanRLB(t *testing.T) {
	tor := topo.NewTorus(8)
	if hAvg(tor, RLB{Threshold: true}) >= hAvg(tor, RLB{}) {
		t.Fatal("RLBth should have better locality than RLB")
	}
}

func TestInterpolatedLocalityIsLinear(t *testing.T) {
	tor := topo.NewTorus(6)
	hD := hAvg(tor, DOR{})
	hI := hAvg(tor, IVAL{})
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := hAvg(tor, Interpolated{A: IVAL{}, B: DOR{}, Alpha: alpha})
		want := alpha*hI + (1-alpha)*hD
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("alpha=%v: H = %v, want %v", alpha, got, want)
		}
	}
}

func TestTableRoutingTranslates(t *testing.T) {
	tor := topo.NewTorus(4)
	// A table that routes straight +x to offset (1,0).
	tbl := &Table{
		Label: "test",
		Dist: map[topo.Node][]paths.Weighted{
			tor.NodeAt(1, 0): {{Path: paths.Path{Src: 0, Dirs: []topo.Dir{topo.XPlus}}, Prob: 1}},
		},
	}
	s := tor.NodeAt(2, 3)
	d := tor.NodeAt(3, 3)
	ws := tbl.PairPaths(tor, s, d)
	if len(ws) != 1 || ws[0].Path.Src != s || ws[0].Path.Dst(tor) != d {
		t.Fatalf("table translation broken: %v", ws)
	}
	// Self pair yields the empty path.
	self := tbl.PairPaths(tor, s, s)
	if len(self) != 1 || self[0].Path.Len() != 0 || self[0].Prob != 1 {
		t.Fatalf("self pair = %v", self)
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	tor := topo.NewTorus(4)
	alg := IVAL{}
	sp := NewSampler(tor, alg)
	rng := rand.New(rand.NewSource(10))
	s := tor.NodeAt(1, 2)
	d := tor.NodeAt(3, 3)
	want := map[string]float64{}
	for _, w := range alg.PairPaths(tor, s, d) {
		want[w.Path.Key()] += w.Prob
	}
	const draws = 20000
	got := map[string]float64{}
	for i := 0; i < draws; i++ {
		p := sp.Sample(rng, s, d)
		if p.Src != s || p.Dst(tor) != d {
			t.Fatal("sampled path has wrong endpoints")
		}
		got[p.Key()] += 1.0 / draws
	}
	for k, p := range want {
		if math.Abs(got[k]-p) > 0.02+0.2*p {
			t.Fatalf("path %s: empirical %v vs expected %v", k, got[k], p)
		}
	}
}

func TestSamplePathEndpoints(t *testing.T) {
	tor := topo.NewTorus(5)
	rng := rand.New(rand.NewSource(3))
	for _, alg := range allAlgorithms() {
		for trial := 0; trial < 20; trial++ {
			s := topo.Node(rng.Intn(tor.N))
			d := topo.Node(rng.Intn(tor.N))
			p := SamplePath(rng, alg, tor, s, d)
			if p.Src != s || p.Dst(tor) != d {
				t.Fatalf("%s: sampled path endpoints wrong", alg.Name())
			}
		}
	}
}
