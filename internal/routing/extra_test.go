package routing

import (
	"bytes"
	"math"
	"testing"

	"tcr/internal/paths"
	"tcr/internal/topo"
)

func TestO1TURNIsMinimalAndValid(t *testing.T) {
	tor := topo.NewTorus(8)
	if got, want := hAvg(tor, O1TURN{}), tor.MeanMinDist(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("O1TURN H = %v, want minimal %v", got, want)
	}
	for d := topo.Node(0); d < topo.Node(tor.N); d++ {
		var sum float64
		for _, w := range (O1TURN{}).PairPaths(tor, 0, d) {
			sum += w.Prob
			if w.Path.Dst(tor) != d {
				t.Fatal("O1TURN path misses destination")
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dest %d: probabilities sum to %v", d, sum)
		}
	}
}

func TestO1TURNSplitsOrders(t *testing.T) {
	tor := topo.NewTorus(8)
	// Strictly diagonal destination without ties: exactly two paths.
	ws := (O1TURN{}).PairPaths(tor, 0, tor.NodeAt(2, 3))
	if len(ws) != 2 {
		t.Fatalf("expected 2 paths (xy and yx), got %d", len(ws))
	}
	for _, w := range ws {
		if w.Prob != 0.5 {
			t.Fatalf("prob %v, want 0.5", w.Prob)
		}
	}
	// Axis destination: xy and yx coincide, so one path with prob 1.
	ws = (O1TURN{}).PairPaths(tor, 0, tor.NodeAt(3, 0))
	if len(ws) != 1 || math.Abs(ws[0].Prob-1) > 1e-12 {
		t.Fatalf("axis destination: %v", ws)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tor := topo.NewTorus(4)
	// Snapshot IVAL's distribution into a table with realistic content.
	orig := &Table{Label: "ival-snapshot", Dist: map[topo.Node][]paths.Weighted{}}
	for rel := topo.Node(1); rel < topo.Node(tor.N); rel++ {
		orig.Dist[rel] = (IVAL{}).PairPaths(tor, 0, rel)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf, tor); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableJSON(&buf, tor)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "ival-snapshot" {
		t.Fatalf("label %q", back.Label)
	}
	// Same distribution (keyed by hop string).
	for rel := topo.Node(1); rel < topo.Node(tor.N); rel++ {
		diff := map[string]float64{}
		for _, w := range orig.Dist[rel] {
			diff[w.Path.Key()] += w.Prob
		}
		for _, w := range back.Dist[rel] {
			diff[w.Path.Key()] -= w.Prob
		}
		for k, v := range diff {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("rel %d: mass %v differs on %s", rel, v, k)
			}
		}
	}
}

func TestReadTableJSONRejectsBadData(t *testing.T) {
	tor := topo.NewTorus(4)
	cases := map[string]string{
		"wrong k":    `{"label":"x","k":5,"dists":{}}`,
		"bad hops":   `{"label":"x","k":4,"dists":{"1,0":[{"dirs":"zz","prob":1}]}}`,
		"wrong dest": `{"label":"x","k":4,"dists":{"1,0":[{"dirs":"+y","prob":1}]}}`,
		"bad sum":    `{"label":"x","k":4,"dists":{"1,0":[{"dirs":"+x","prob":0.4}]}}`,
	}
	for name, src := range cases {
		if _, err := ReadTableJSON(bytes.NewReader([]byte(src)), tor); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
