package routing

// ByName resolves a closed-form algorithm from its canonical Name. It is the
// single registry behind the CLI's -alg flags and the daemon's request
// schema, so the two accept exactly the same vocabulary. Designed tables and
// interpolations are constructed, not named, and are absent by design.
func ByName(name string) (Algorithm, bool) {
	switch name {
	case "DOR":
		return DOR{}, true
	case "DOR-yx":
		return DOR{YFirst: true}, true
	case "VAL":
		return VAL{}, true
	case "IVAL":
		return IVAL{}, true
	case "ROMM":
		return ROMM{}, true
	case "RLB":
		return RLB{}, true
	case "RLBth":
		return RLB{Threshold: true}, true
	case "O1TURN":
		return O1TURN{}, true
	case "GOALish":
		return GOALish{}, true
	}
	return nil, false
}

// Names lists the algorithms ByName resolves, in the paper's Table 1 order;
// handy for usage strings and error messages.
func Names() []string {
	return []string{"DOR", "DOR-yx", "VAL", "IVAL", "ROMM", "RLB", "RLBth", "O1TURN", "GOALish"}
}
