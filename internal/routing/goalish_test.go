package routing

import (
	"math"
	"testing"

	"tcr/internal/topo"
)

func TestGOALishValidDistribution(t *testing.T) {
	tor := topo.NewTorus(6)
	for d := topo.Node(0); d < topo.Node(tor.N); d++ {
		var sum float64
		for _, w := range (GOALish{}).PairPaths(tor, 0, d) {
			sum += w.Prob
			if w.Path.Dst(tor) != d {
				t.Fatalf("dest %d: path ends elsewhere", d)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dest %d: probabilities sum to %v", d, sum)
		}
	}
}

func TestGOALishLocalityMatchesRLB(t *testing.T) {
	// GOALish uses GOAL/RLB's direction rule, so expected travel per
	// dimension (and hence H_avg) must equal RLB's.
	tor := topo.NewTorus(8)
	g := hAvg(tor, GOALish{})
	r := hAvg(tor, RLB{})
	if math.Abs(g-r) > 1e-9 {
		t.Fatalf("GOALish H %v != RLB H %v", g, r)
	}
}

func TestGOALishSpreadsQuadrant(t *testing.T) {
	// Within a quadrant, the staircase uses more distinct paths than RLB's
	// two-phase DOR for the same pair.
	tor := topo.NewTorus(8)
	d := tor.NodeAt(2, 2)
	g := len((GOALish{}).PairPaths(tor, 0, d))
	r := len((RLB{}).PairPaths(tor, 0, d))
	if g <= r {
		t.Fatalf("GOALish paths %d not more diverse than RLB %d", g, r)
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]int{
		{0, 0}: 1, {5, 0}: 1, {5, 5}: 1, {5, 2}: 10, {10, 5}: 252, {6, 3}: 20,
		{4, 7}: 0, {4, -1}: 0,
	}
	for in, want := range cases {
		if got := binomial(in[0], in[1]); got != want {
			t.Errorf("C(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}
