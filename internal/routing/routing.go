// Package routing implements the oblivious routing algorithms studied in
// the paper (Table 1 plus the new IVAL, 2TURN, 2TURNA and interpolated
// algorithms) behind a single abstraction: a routing algorithm is a
// probability distribution over paths for every source-destination pair.
//
// All algorithms here are translation-invariant on the torus (the
// distribution for (s, d) is the translated distribution of (0, d-s)), which
// the evaluation and optimization code exploits; TestTranslationInvariance
// enforces it for every implementation.
package routing

import (
	"fmt"
	"math/rand"
	"sort"

	"tcr/internal/paths"
	"tcr/internal/topo"
)

// Algorithm is a randomized oblivious routing algorithm: for each pair it
// defines a finite probability distribution over paths. Implementations
// must return distributions whose probabilities sum to one; on
// vertex-transitive topologies they must also be translation-invariant.
type Algorithm interface {
	// Name is a short identifier ("DOR", "IVAL", ...).
	Name() string
	// PairPaths returns the path distribution for source s and
	// destination d on the topology t. The closed-form algorithms of
	// Table 1 are defined on the 2D torus only and panic on other
	// families; LP-designed Tables work on any topology.
	PairPaths(t topo.Topology, s, d topo.Node) []paths.Weighted
}

// torus2d asserts that a topology is the k-ary 2-cube the closed-form
// algorithms are defined on.
func torus2d(t topo.Topology, alg string) *topo.Torus {
	tt, ok := t.(*topo.Torus)
	if !ok {
		//lint:ignore libpanic interface misuse guard: Table 1's closed-form algorithms are 2D-torus constructions, and callers gate on the family before dispatching
		panic("routing: " + alg + " is defined on torus2d only, got " + topo.String(t))
	}
	return tt
}

// merge combines duplicate paths in a weighted list, summing probability.
func merge(ws []paths.Weighted) []paths.Weighted {
	idx := make(map[string]int, len(ws))
	out := ws[:0]
	for _, w := range ws {
		//lint:ignore floatcmp sparsity skip: exactly-zero probabilities carry no path
		if w.Prob == 0 {
			continue
		}
		k := w.Path.Key()
		if i, ok := idx[k]; ok {
			out[i].Prob += w.Prob
			continue
		}
		idx[k] = len(out)
		out = append(out, w)
	}
	res := make([]paths.Weighted, len(out))
	copy(res, out)
	return res
}

// DOR is deterministic dimension-order routing: minimal in X first then Y
// (or Y first), splitting evenly when both directions of a dimension are
// minimal.
type DOR struct {
	YFirst bool
}

// Name implements Algorithm.
func (a DOR) Name() string {
	if a.YFirst {
		return "DOR-yx"
	}
	return "DOR"
}

// PairPaths implements Algorithm.
func (a DOR) PairPaths(t topo.Topology, s, d topo.Node) []paths.Weighted {
	return paths.DORPaths(torus2d(t, a.Name()), s, d, !a.YFirst)
}

// VAL is Valiant's randomized algorithm: route minimally (DOR x-first) to a
// uniformly random intermediate node, then minimally on to the destination.
// Loops between phases are kept, matching the original algorithm whose
// average path length is exactly twice minimal.
type VAL struct{}

// Name implements Algorithm.
func (VAL) Name() string { return "VAL" }

// PairPaths implements Algorithm.
func (VAL) PairPaths(t topo.Topology, s, d topo.Node) []paths.Weighted {
	return twoPhase(torus2d(t, "VAL"), s, d, false, false, false)
}

// IVAL is the paper's improved Valiant (Section 5.2): phase one routes
// x-first to the random intermediate, phase two routes y-first, and loops in
// the concatenated path are removed. Reversing the dimension order between
// phases maximizes loop formation, and removing loops only sheds channel
// load, so IVAL keeps VAL's optimal worst-case throughput at an average path
// length of roughly 1.61x minimal on the 8-ary 2-cube.
type IVAL struct{}

// Name implements Algorithm.
func (IVAL) Name() string { return "IVAL" }

// PairPaths implements Algorithm.
func (IVAL) PairPaths(t topo.Topology, s, d topo.Node) []paths.Weighted {
	return twoPhase(torus2d(t, "IVAL"), s, d, false, true, true)
}

// twoPhase enumerates the path distribution of a two-phase randomized
// algorithm with a uniformly random intermediate: phase one uses DOR with
// the given dimension order, phase two likewise, optionally removing loops
// from the concatenation.
func twoPhase(t *topo.Torus, s, d topo.Node, phase1YFirst, phase2YFirst, removeLoops bool) []paths.Weighted {
	out := make([]paths.Weighted, 0, t.N*4)
	pInt := 1 / float64(t.N)
	for i := topo.Node(0); i < topo.Node(t.N); i++ {
		first := paths.DORPaths(t, s, i, !phase1YFirst)
		second := paths.DORPaths(t, i, d, !phase2YFirst)
		for _, p1 := range first {
			for _, p2 := range second {
				p := paths.Concat(p1.Path, p2.Path)
				if removeLoops {
					p = paths.RemoveLoops(t, p)
				}
				out = append(out, paths.Weighted{Path: p, Prob: pInt * p1.Prob * p2.Prob})
			}
		}
	}
	return merge(out)
}

// ROMM is two-phase randomized minimal routing: the intermediate is chosen
// uniformly from the minimal quadrant (so every path stays minimal), with
// DOR for both phases. Ties in a dimension pick either quadrant direction
// with equal probability.
type ROMM struct{}

// Name implements Algorithm.
func (ROMM) Name() string { return "ROMM" }

// PairPaths implements Algorithm.
func (ROMM) PairPaths(tp topo.Topology, s, d topo.Node) []paths.Weighted {
	t := torus2d(tp, "ROMM")
	rx, ry := t.Rel(s, d)
	//lint:ignore dirliteral ROMM is a torus2d construction (Table 1)
	xDirs := minimalDirChoices(t.K, rx, topo.XPlus, topo.XMinus)
	//lint:ignore dirliteral ROMM is a torus2d construction (Table 1)
	yDirs := minimalDirChoices(t.K, ry, topo.YPlus, topo.YMinus)
	var out []paths.Weighted
	pQuad := 1 / float64(len(xDirs)*len(yDirs))
	for _, xd := range xDirs {
		for _, yd := range yDirs {
			quadProb := pQuad / float64((xd.hops+1)*(yd.hops+1))
			sx, sy := t.Coord(s)
			dxu, dyu := xd.dir.Delta()
			dxv, dyv := yd.dir.Delta()
			for ax := 0; ax <= xd.hops; ax++ {
				for ay := 0; ay <= yd.hops; ay++ {
					ix := sx + ax*dxu + ay*dxv
					iy := sy + ax*dyu + ay*dyv
					i := t.NodeAt(ix, iy)
					// Both phases stay within the chosen quadrant, so plain
					// x-first DOR is already direction-consistent except at
					// ties, where we force the quadrant direction.
					p1 := forcedDOR(t, s, i, xd.dir, yd.dir)
					p2 := forcedDOR(t, i, d, xd.dir, yd.dir)
					p := paths.Concat(p1, p2)
					out = append(out, paths.Weighted{Path: p, Prob: quadProb})
				}
			}
		}
	}
	return merge(out)
}

// dirChoice pairs a direction with the hop count needed in it.
type dirChoice struct {
	dir  topo.Dir
	hops int
}

// minimalDirChoices lists the minimal direction(s) for a relative offset.
func minimalDirChoices(k, r int, plus, minus topo.Dir) []dirChoice {
	switch {
	case r == 0:
		return []dirChoice{{plus, 0}}
	case 2*r < k:
		return []dirChoice{{plus, r}}
	case 2*r > k:
		return []dirChoice{{minus, k - r}}
	default:
		return []dirChoice{{plus, r}, {minus, k - r}}
	}
}

// forcedDOR builds the x-first dimension-order path from s to d that only
// uses the given per-dimension directions. The offsets of (s, d) must be
// reachable in those directions; callers arrange this by construction.
func forcedDOR(t *topo.Torus, s, d topo.Node, xDir, yDir topo.Dir) paths.Path {
	rx, ry := t.Rel(s, d)
	xh := hopsInDir(t.K, rx, xDir)
	yh := hopsInDir(t.K, ry, yDir)
	dirs := make([]topo.Dir, 0, xh+yh)
	for i := 0; i < xh; i++ {
		dirs = append(dirs, xDir)
	}
	for i := 0; i < yh; i++ {
		dirs = append(dirs, yDir)
	}
	return paths.Path{Src: s, Dirs: dirs}
}

// hopsInDir returns how many hops cover a relative offset r when moving
// only in direction d.
func hopsInDir(k, r int, d topo.Dir) int {
	dx, dy := d.Delta()
	step := dx + dy // +1 or -1
	if step > 0 {
		return r % k
	}
	return (k - r) % k
}

// RLB is randomized local balance (Table 1, from Singh et al. SPAA'02): in
// each dimension the packet routes minimally with probability (k-Delta)/k,
// otherwise the long way around; an intermediate node is drawn uniformly
// from the quadrant spanned by the chosen directions and DOR is used for
// both phases, confined to those directions.
type RLB struct {
	// Threshold enables the RLBth variant: dimensions with Delta < k/4
	// always route minimally.
	Threshold bool
}

// Name implements Algorithm.
func (a RLB) Name() string {
	if a.Threshold {
		return "RLBth"
	}
	return "RLB"
}

// PairPaths implements Algorithm.
func (a RLB) PairPaths(tp topo.Topology, s, d topo.Node) []paths.Weighted {
	t := torus2d(tp, a.Name())
	rx, ry := t.Rel(s, d)
	//lint:ignore dirliteral RLB is a torus2d construction (Table 1)
	xCh := a.dirProbs(t.K, rx, topo.XPlus, topo.XMinus)
	//lint:ignore dirliteral RLB is a torus2d construction (Table 1)
	yCh := a.dirProbs(t.K, ry, topo.YPlus, topo.YMinus)
	var out []paths.Weighted
	for _, xc := range xCh {
		for _, yc := range yCh {
			quadProb := xc.prob * yc.prob / float64((xc.hops+1)*(yc.hops+1))
			//lint:ignore floatcmp exact-zero factor from dirProbs (no rounding involved)
			if quadProb == 0 {
				continue
			}
			sx, sy := t.Coord(s)
			dxu, dyu := xc.dir.Delta()
			for ax := 0; ax <= xc.hops; ax++ {
				for ay := 0; ay <= yc.hops; ay++ {
					dxv, dyv := yc.dir.Delta()
					i := t.NodeAt(sx+ax*dxu+ay*dxv, sy+ax*dyu+ay*dyv)
					p1 := forcedDOR(t, s, i, xc.dir, yc.dir)
					p2 := forcedDOR(t, i, d, xc.dir, yc.dir)
					out = append(out, paths.Weighted{
						Path: paths.Concat(p1, p2),
						Prob: quadProb,
					})
				}
			}
		}
	}
	return merge(out)
}

// weightedDir is a direction choice with probability mass and hop count.
type weightedDir struct {
	dir  topo.Dir
	hops int
	prob float64
}

// dirProbs returns RLB's per-dimension direction distribution.
func (a RLB) dirProbs(k, r int, plus, minus topo.Dir) []weightedDir {
	if r == 0 {
		return []weightedDir{{plus, 0, 1}}
	}
	delta := r
	minDir, maxDir := plus, minus
	if 2*r > k {
		delta = k - r
		minDir, maxDir = minus, plus
	}
	pMin := float64(k-delta) / float64(k)
	if a.Threshold && 4*delta < k {
		pMin = 1
	}
	minHops, maxHops := delta, k-delta
	if 2*r == k {
		// Tie: both directions are minimal; split evenly.
		return []weightedDir{{plus, r, 0.5}, {minus, k - r, 0.5}}
	}
	return []weightedDir{{minDir, minHops, pMin}, {maxDir, maxHops, 1 - pMin}}
}

// Table is a routing algorithm given extensionally. On vertex-transitive
// topologies it stores a path distribution per relative destination from the
// canonical source (node 0), extended to all pairs by translation; on other
// topologies it stores one distribution per ordered pair. LP-designed
// algorithms (2TURN, 2TURNA, the optimal tradeoff points) are Tables
// produced by flow decomposition.
type Table struct {
	// Label names the algorithm ("2TURN", "wc-opt(L=1.5)", ...).
	Label string
	// Dist is keyed by commodity row: the relative destination on
	// vertex-transitive topologies (paths start at node 0), the pair index
	// s*N+d otherwise (paths start at s). Missing or empty entries mean
	// "no paths", which is only valid for self pairs.
	Dist map[topo.Node][]paths.Weighted
}

// Name implements Algorithm.
func (a *Table) Name() string { return a.Label }

// PairPaths implements Algorithm. On vertex-transitive topologies the
// stored source-0 paths are shifted by substituting the source: translations
// fix every port index, so the hop sequence carries over unchanged.
func (a *Table) PairPaths(t topo.Topology, s, d topo.Node) []paths.Weighted {
	if !t.VertexTransitive() {
		base := a.Dist[topo.Node(int(s)*t.Nodes()+int(d))]
		if len(base) == 0 {
			return []paths.Weighted{{Path: paths.Path{Src: s}, Prob: 1}}
		}
		return base
	}
	base := a.Dist[t.RelNode(s, d)]
	if len(base) == 0 {
		// Self pair: the empty path.
		return []paths.Weighted{{Path: paths.Path{Src: s}, Prob: 1}}
	}
	out := make([]paths.Weighted, len(base))
	for i, w := range base {
		out[i] = paths.Weighted{Path: paths.Path{Src: s, Dirs: w.Path.Dirs}, Prob: w.Prob}
	}
	return out
}

// Interpolated mixes two algorithms (Section 5.3): route with A with
// probability Alpha, otherwise with B. Locality interpolates linearly and
// worst-case channel load is bounded by the convex combination.
type Interpolated struct {
	A, B  Algorithm
	Alpha float64
}

// Name implements Algorithm.
func (a Interpolated) Name() string {
	return fmt.Sprintf("%.2f*%s+%.2f*%s", a.Alpha, a.A.Name(), 1-a.Alpha, a.B.Name())
}

// PairPaths implements Algorithm.
func (a Interpolated) PairPaths(t topo.Topology, s, d topo.Node) []paths.Weighted {
	first := a.A.PairPaths(t, s, d)
	second := a.B.PairPaths(t, s, d)
	out := make([]paths.Weighted, 0, len(first)+len(second))
	for _, w := range first {
		out = append(out, paths.Weighted{Path: w.Path, Prob: a.Alpha * w.Prob})
	}
	for _, w := range second {
		out = append(out, paths.Weighted{Path: w.Path, Prob: (1 - a.Alpha) * w.Prob})
	}
	return merge(out)
}

// SamplePath draws one path from an algorithm's distribution for (s, d);
// the sampling entry point used by the flit-level simulator.
func SamplePath(rng *rand.Rand, alg Algorithm, t topo.Topology, s, d topo.Node) paths.Path {
	ws := alg.PairPaths(t, s, d)
	u := rng.Float64()
	var acc float64
	for _, w := range ws {
		acc += w.Prob
		if u < acc {
			return w.Path
		}
	}
	return ws[len(ws)-1].Path
}

// Sampler precomputes cumulative path distributions so the simulator can
// draw paths in O(log paths) without re-enumerating: one table per relative
// destination on vertex-transitive topologies, one per ordered pair
// otherwise.
type Sampler struct {
	t    topo.Topology
	alg  Algorithm
	cum  map[topo.Node][]float64
	pths map[topo.Node][]paths.Path
}

// NewSampler builds the sampling tables for every commodity.
func NewSampler(t topo.Topology, alg Algorithm) *Sampler {
	n := t.Nodes()
	s := &Sampler{
		t:    t,
		alg:  alg,
		cum:  make(map[topo.Node][]float64, n),
		pths: make(map[topo.Node][]paths.Path, n),
	}
	add := func(key topo.Node, ws []paths.Weighted) {
		cum := make([]float64, len(ws))
		ps := make([]paths.Path, len(ws))
		var acc float64
		for i, w := range ws {
			acc += w.Prob
			cum[i] = acc
			ps[i] = w.Path
		}
		s.cum[key] = cum
		s.pths[key] = ps
	}
	if t.VertexTransitive() {
		for rel := topo.Node(0); rel < topo.Node(n); rel++ {
			add(rel, alg.PairPaths(t, 0, rel))
		}
		return s
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			add(topo.Node(src*n+dst), alg.PairPaths(t, topo.Node(src), topo.Node(dst)))
		}
	}
	return s
}

// MaxLen returns the longest path length across all sampling tables; the
// simulator's hop-class virtual-channel policy sizes its class count by it.
func (sp *Sampler) MaxLen() int {
	var max int
	for _, ps := range sp.pths {
		for _, p := range ps {
			if p.Len() > max {
				max = p.Len()
			}
		}
	}
	return max
}

// Sample draws a path from s to d.
func (sp *Sampler) Sample(rng *rand.Rand, s, d topo.Node) paths.Path {
	key := s
	if sp.t.VertexTransitive() {
		key = sp.t.RelNode(s, d)
	} else {
		if s == d {
			return paths.Path{Src: s}
		}
		key = topo.Node(int(s)*sp.t.Nodes() + int(d))
	}
	cum := sp.cum[key]
	ps := sp.pths[key]
	u := rng.Float64() * cum[len(cum)-1]
	i := sort.SearchFloat64s(cum, u)
	if i >= len(ps) {
		i = len(ps) - 1
	}
	if sp.t.VertexTransitive() {
		// Translations fix port indices, so shifting a source-0 path is a
		// source substitution.
		return paths.Path{Src: s, Dirs: ps[i].Dirs}
	}
	return ps[i]
}
