package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestDoRunsEveryTask(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		err := Do(context.Background(), n, w, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", w, i, h)
			}
		}
	}
}

func TestDoInlineOrder(t *testing.T) {
	var order []int
	err := Do(context.Background(), 10, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("inline execution out of order: %v", order)
		}
	}
}

func TestDoZeroTasks(t *testing.T) {
	if err := Do(context.Background(), 0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestDoLowestIndexErrorWins(t *testing.T) {
	// Task 3 fails slowly, task 7 fails fast; the returned error must be
	// task 3's regardless of completion order.
	for _, w := range []int{1, 4} {
		err := Do(context.Background(), 10, w, func(i int) error {
			switch i {
			case 3:
				time.Sleep(10 * time.Millisecond)
				return fmt.Errorf("task 3")
			case 7:
				return fmt.Errorf("task 7")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", w)
		}
		// Inline mode stops at the first failing index (3); parallel mode
		// reports the lowest failed index, which is also 3 here because
		// earlier tasks succeed.
		if err.Error() != "task 3" {
			t.Fatalf("workers=%d: err = %v, want task 3", w, err)
		}
	}
}

func TestDoErrorCancelsRemaining(t *testing.T) {
	var ran atomic.Int32
	err := Do(context.Background(), 1000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("error did not cancel remaining tasks")
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	var once sync.Once
	err := Do(ctx, 1000, 2, func(i int) error {
		ran.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := Do(ctx, 10, 1, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d tasks", ran.Load())
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const w = 3
	var cur, peak atomic.Int32
	err := Do(context.Background(), 50, w, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > w {
		t.Fatalf("observed %d concurrent tasks, budget %d", p, w)
	}
}
