// Package par is the worker-pool substrate behind the evaluation and design
// engines. Every throughput computation in this module decomposes into
// embarrassingly parallel units — one Hungarian matching per
// direction-representative channel, one path-enumeration pass per commodity,
// one locality-bound LP per Pareto point — and par.Do is the single primitive
// that runs such a unit set: bounded by GOMAXPROCS (or an explicit worker
// budget), cancellable through a context, first-error-wins.
//
// Determinism contract: tasks are indexed 0..n-1 and callers write results
// into per-index slots, then reduce in index order. Because no task observes
// another task's output, the results are bit-for-bit identical for every
// worker count, including the inline workers=1 path, which launches no
// goroutines at all.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker budget to an effective count: values
// below 1 mean "all cores" (GOMAXPROCS); anything else is returned as is.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs task(0) .. task(n-1) on at most workers goroutines (after Workers
// resolution, clamped to n) and waits for all of them. A workers budget of 1
// runs every task inline on the calling goroutine, in index order.
//
// Error semantics are first-error-wins with a deterministic tiebreak: the
// first failure cancels the remaining tasks, and once all in-flight tasks
// have drained, the error of the lowest-indexed failed task is returned.
// Cancellation of the parent context is reported as ctx.Err() when no task
// failed. Tasks must be independent: a task may not read state written by
// another task of the same Do call.
func Do(ctx context.Context, n, workers int, task func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := task(i); err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil && !failed.Load() {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
