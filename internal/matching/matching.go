// Package matching implements assignment-problem algorithms on dense
// bipartite weight matrices.
//
// In the SPAA'03 routing-design framework, the worst-case channel load of an
// oblivious routing function R is the maximum over permutation traffic
// matrices of the load on a channel, and by the Birkhoff decomposition this
// equals a maximum-weight matching of the bipartite graph whose edge (s, d)
// weighs the load that a unit of s->d traffic places on the channel
// (Towles & Dally, "Worst-case traffic for oblivious routing functions",
// SPAA'02, reference [11] of the paper). The Hungarian algorithm here is the
// exact separation oracle used by the cutting-plane worst-case LP and the
// exact evaluator for closed-form algorithms.
package matching

import (
	"fmt"
	"math"
)

// MinCostAssignment solves the square assignment problem: given an n-by-n
// cost matrix, it returns a permutation perm (perm[i] = column assigned to
// row i) minimizing the total cost, and that cost. Costs may be negative.
// The implementation is the O(n^3) Hungarian algorithm with potentials and
// Dijkstra-style augmentation.
//
// The input matrix is not modified. A non-square matrix is reported as an
// error: the oracle must refuse malformed input rather than crash the
// harness embedding it.
func MinCostAssignment(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("matching: cost matrix is not square: row %d has %d of %d columns", i, len(row), n)
		}
	}
	// 1-indexed internals with a dummy row/column 0.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j
	way := make([]int, n+1) // way[j] = previous column on the alternating path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	perm := make([]int, n)
	var total float64
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			perm[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return perm, total, nil
}

// MaxWeightAssignment returns the permutation maximizing the total weight
// of a square matrix, and that weight. It is MinCostAssignment on the
// negated matrix.
func MaxWeightAssignment(weight [][]float64) ([]int, float64, error) {
	n := len(weight)
	neg := make([][]float64, n)
	for i, row := range weight {
		neg[i] = make([]float64, len(row))
		for j, w := range row {
			neg[i][j] = -w
		}
	}
	perm, c, err := MinCostAssignment(neg)
	if err != nil {
		return nil, 0, err
	}
	return perm, -c, nil
}

// PermWeight sums weight[i][perm[i]]; a helper for tests and verification.
func PermWeight(weight [][]float64, perm []int) float64 {
	var total float64
	for i, j := range perm {
		total += weight[i][j]
	}
	return total
}

// PerfectMatching finds a perfect matching in the bipartite graph whose
// edges are the true entries of adj (adj[i][j]: row i may match column j),
// using augmenting paths (Kuhn's algorithm). It returns perm with
// perm[i] = matched column, or ok=false if no perfect matching exists.
// It is the workhorse of the Birkhoff-von Neumann decomposition.
func PerfectMatching(adj [][]bool) (perm []int, ok bool) {
	n := len(adj)
	matchCol := make([]int, n) // column -> row
	for j := range matchCol {
		matchCol[j] = -1
	}
	var try func(i int, seen []bool) bool
	try = func(i int, seen []bool) bool {
		for j := 0; j < n; j++ {
			if !adj[i][j] || seen[j] {
				continue
			}
			seen[j] = true
			if matchCol[j] < 0 || try(matchCol[j], seen) {
				matchCol[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		seen := make([]bool, n)
		if !try(i, seen) {
			return nil, false
		}
	}
	perm = make([]int, n)
	for j, i := range matchCol {
		perm[i] = j
	}
	return perm, true
}
