package matching

import (
	"math"
	"math/rand"
	"testing"
)

func TestAuctionMatchesHungarianRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(12)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = math.Round(100*rng.Float64()) / 8
			}
		}
		_, hung, err := MaxWeightAssignment(w)
		if err != nil {
			t.Fatal(err)
		}
		perm, auc := AuctionAssignment(w)
		if math.Abs(hung-auc) > 1e-6*(1+math.Abs(hung)) {
			t.Fatalf("trial %d (n=%d): hungarian %v vs auction %v", trial, n, hung, auc)
		}
		// The returned permutation must be valid and achieve the value.
		seen := make([]bool, n)
		for _, j := range perm {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("trial %d: invalid permutation %v", trial, perm)
			}
			seen[j] = true
		}
		if math.Abs(PermWeight(w, perm)-auc) > 1e-9 {
			t.Fatalf("trial %d: reported value mismatch", trial)
		}
	}
}

func TestAuctionOnLoadMatrices(t *testing.T) {
	// Mimic the oracle's inputs: sparse nonnegative load matrices.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				if rng.Float64() < 0.3 {
					w[i][j] = rng.Float64() * 2
				}
			}
		}
		_, hung, err := MaxWeightAssignment(w)
		if err != nil {
			t.Fatal(err)
		}
		_, auc := AuctionAssignment(w)
		if math.Abs(hung-auc) > 1e-6*(1+hung) {
			t.Fatalf("trial %d: %v vs %v", trial, hung, auc)
		}
	}
}

func TestAuctionEmptyAndSingle(t *testing.T) {
	if perm, v := AuctionAssignment(nil); perm != nil || v != 0 {
		t.Fatal("empty case broken")
	}
	perm, v := AuctionAssignment([][]float64{{-3}})
	if len(perm) != 1 || perm[0] != 0 || v != -3 {
		t.Fatalf("single case: %v %v", perm, v)
	}
}

func BenchmarkAuction64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AuctionAssignment(w)
	}
}
