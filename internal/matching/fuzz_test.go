package matching

import (
	"math"
	"testing"
)

// FuzzHungarian decodes a byte string into a square weight matrix and
// checks the Hungarian solver's contract: the returned permutation is
// valid and achieves the reported value, the value dominates sampled
// permutations (and equals the brute-force optimum for small n), and the
// independent auction algorithm agrees within its tolerance.
func FuzzHungarian(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 200})
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{4, 255, 128, 7, 19, 3, 3, 3, 3, 90, 1, 250, 2, 8, 8, 8, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 1 + int(data[0])%6
		if len(data) < 1+n*n {
			return
		}
		w := make([][]float64, n)
		idx := 1
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				// Signed eighths in [-16, 15.875]: exercises negative
				// weights and ties without float noise.
				w[i][j] = float64(int8(data[idx])) / 8
				idx++
			}
		}

		perm, best, err := MaxWeightAssignment(w)
		if err != nil {
			t.Fatalf("square matrix rejected: %v", err)
		}
		seen := make([]bool, n)
		for _, j := range perm {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("invalid permutation %v", perm)
			}
			seen[j] = true
		}
		if math.Abs(PermWeight(w, perm)-best) > 1e-9 {
			t.Fatalf("reported optimum %v but permutation achieves %v", best, PermWeight(w, perm))
		}

		// The optimum dominates the identity, the reversal, and every
		// cyclic shift.
		probe := make([]int, n)
		for shift := 0; shift < n; shift++ {
			for i := range probe {
				probe[i] = (i + shift) % n
			}
			if PermWeight(w, probe) > best+1e-9 {
				t.Fatalf("shift-%d permutation beats the optimum: %v > %v", shift, PermWeight(w, probe), best)
			}
		}
		for i := range probe {
			probe[i] = n - 1 - i
		}
		if PermWeight(w, probe) > best+1e-9 {
			t.Fatalf("reversal beats the optimum: %v > %v", PermWeight(w, probe), best)
		}

		// Exact cross-check against brute force where it is affordable.
		if n <= 4 {
			if bf := -bruteMin(negate(w)); math.Abs(bf-best) > 1e-9 {
				t.Fatalf("hungarian %v != brute force %v on %v", best, bf, w)
			}
		}

		// Independent algorithm cross-check: Bertsekas auction.
		aperm, aval := AuctionAssignment(w)
		if math.Abs(best-aval) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("hungarian %v vs auction %v", best, aval)
		}
		if PermWeight(w, aperm) > best+1e-9 {
			t.Fatalf("auction's permutation beats the claimed optimum")
		}
	})
}

// negate returns the entrywise negation (max-weight via the min-cost brute).
func negate(w [][]float64) [][]float64 {
	out := make([][]float64, len(w))
	for i := range w {
		out[i] = make([]float64, len(w[i]))
		for j := range w[i] {
			out[i][j] = -w[i][j]
		}
	}
	return out
}
