package matching

import "math"

// auctionEpsRel scales the final auction epsilon relative to the largest
// weight magnitude; below 1/(n+1) times the weight resolution it makes the
// auction optimum exact for integral or well-separated matrices.
const auctionEpsRel = 1e-9

// AuctionAssignment solves the maximum-weight assignment problem with
// Bertsekas's auction algorithm with epsilon scaling. It exists as an
// independent implementation of the worst-case oracle: the Hungarian and
// auction algorithms share no code, so agreement between them (enforced by
// tests) guards the oracle that certifies every worst-case design in this
// repository.
//
// The returned permutation maximizes the total weight; the value equals
// MaxWeightAssignment's up to the final epsilon (chosen below 1/(n+1) times
// the weight resolution, which makes the result exact for the integral or
// well-separated matrices the tests use, and within n*epsFinal in general).
func AuctionAssignment(weight [][]float64) ([]int, float64) {
	n := len(weight)
	if n == 0 {
		return nil, 0
	}
	// Scale setup: start with a coarse epsilon and refine.
	var maxAbs float64
	for _, row := range weight {
		for _, w := range row {
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs <= 0 {
		maxAbs = 1
	}
	epsFinal := maxAbs * auctionEpsRel / float64(n+1)
	eps := maxAbs / 4
	if eps < epsFinal {
		eps = epsFinal
	}

	price := make([]float64, n)
	owner := make([]int, n) // object -> bidder
	assign := make([]int, n)

	for {
		for j := range owner {
			owner[j] = -1
		}
		for i := range assign {
			assign[i] = -1
		}
		// Queue of unassigned bidders.
		queue := make([]int, n)
		for i := range queue {
			queue[i] = i
		}
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			// Best and second-best net value for bidder i.
			best, second := math.Inf(-1), math.Inf(-1)
			bestJ := -1
			for j := 0; j < n; j++ {
				v := weight[i][j] - price[j]
				if v > best {
					second = best
					best, bestJ = v, j
				} else if v > second {
					second = v
				}
			}
			if math.IsInf(second, -1) {
				second = best
			}
			// Bid: raise the price by the value margin plus epsilon.
			price[bestJ] += best - second + eps
			if prev := owner[bestJ]; prev >= 0 {
				assign[prev] = -1
				queue = append(queue, prev)
			}
			owner[bestJ] = i
			assign[i] = bestJ
		}
		if eps <= epsFinal {
			break
		}
		eps /= 4
		if eps < epsFinal {
			eps = epsFinal
		}
	}

	var total float64
	for i, j := range assign {
		total += weight[i][j]
	}
	return assign, total
}
