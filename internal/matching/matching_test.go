package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMin enumerates all permutations of an n x n matrix (n small).
func bruteMin(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if w := PermWeight(cost, perm); w < best {
				best = w
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestMinCostSmallKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	perm, c, err := MinCostAssignment(cost)
	if err != nil {
		t.Fatal(err)
	}
	if c != 5 { // 1 + 2 + 2
		t.Fatalf("cost = %v, want 5 (perm %v)", c, perm)
	}
	if w := PermWeight(cost, perm); w != c {
		t.Fatalf("perm weight %v != reported %v", w, c)
	}
}

func TestMaxWeightIdentityDominant(t *testing.T) {
	n := 6
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = 1
		}
		w[i][i] = 10
	}
	perm, total, err := MaxWeightAssignment(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 60 {
		t.Fatalf("total = %v, want 60", total)
	}
	for i, j := range perm {
		if i != j {
			t.Fatalf("perm[%d] = %d, want identity", i, j)
		}
	}
}

func TestSingleElement(t *testing.T) {
	perm, c, err := MinCostAssignment([][]float64{{7}})
	if err != nil || len(perm) != 1 || perm[0] != 0 || c != 7 {
		t.Fatalf("got perm=%v cost=%v err=%v", perm, c, err)
	}
}

func TestEmpty(t *testing.T) {
	perm, c, err := MinCostAssignment(nil)
	if err != nil || perm != nil || c != 0 {
		t.Fatalf("got perm=%v cost=%v err=%v", perm, c, err)
	}
}

func TestNonSquareRejected(t *testing.T) {
	ragged := [][]float64{{1, 2}, {3}}
	if _, _, err := MinCostAssignment(ragged); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, _, err := MaxWeightAssignment(ragged); err == nil {
		t.Fatal("ragged matrix accepted by max-weight wrapper")
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Round(40*(rng.Float64()-0.5)) / 4
			}
		}
		_, got, err := MinCostAssignment(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteMin(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): hungarian %v, brute %v\n%v", trial, n, got, want, cost)
		}
	}
}

// TestMaxDominatesRandomPerms: the Hungarian maximum must beat any sampled
// permutation; a quick-check over seeds.
func TestMaxDominatesRandomPerms(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = rng.Float64() * 3
			}
		}
		_, best, err := MaxWeightAssignment(w)
		if err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			p := rng.Perm(n)
			if PermWeight(w, p) > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDualBound: the assignment optimum can never exceed the sum of row
// maxima (a trivial upper bound for max-weight).
func TestDualBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		w := make([][]float64, n)
		var rowMaxSum float64
		for i := range w {
			w[i] = make([]float64, n)
			rowMax := math.Inf(-1)
			for j := range w[i] {
				w[i][j] = rng.NormFloat64()
				if w[i][j] > rowMax {
					rowMax = w[i][j]
				}
			}
			rowMaxSum += rowMax
		}
		if _, best, err := MaxWeightAssignment(w); err != nil || best > rowMaxSum+1e-9 {
			t.Fatalf("max assignment %v exceeds row-max bound %v", best, rowMaxSum)
		}
	}
}

func TestPerfectMatchingExists(t *testing.T) {
	adj := [][]bool{
		{true, true, false},
		{false, true, false},
		{false, true, true},
	}
	perm, ok := PerfectMatching(adj)
	if !ok {
		t.Fatal("expected a perfect matching")
	}
	seen := make([]bool, 3)
	for i, j := range perm {
		if !adj[i][j] {
			t.Fatalf("perm uses non-edge (%d,%d)", i, j)
		}
		if seen[j] {
			t.Fatalf("column %d matched twice", j)
		}
		seen[j] = true
	}
}

func TestPerfectMatchingMissing(t *testing.T) {
	// Rows 0 and 1 both only connect to column 0: no perfect matching.
	adj := [][]bool{
		{true, false, false},
		{true, false, false},
		{false, true, true},
	}
	if _, ok := PerfectMatching(adj); ok {
		t.Fatal("expected no perfect matching")
	}
}

// TestPermutationMatrixOracle mirrors the routing use: the max-weight
// matching of a doubly-stochastic-like load matrix must find the worst
// permutation exactly on a constructed case.
func TestPermutationMatrixOracle(t *testing.T) {
	// Load matrix where a specific permutation (reversal) is worst.
	n := 5
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = 0.1
		}
		w[i][n-1-i] = 1.0
	}
	perm, total, err := MaxWeightAssignment(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-5.0) > 1e-12 {
		t.Fatalf("total = %v, want 5", total)
	}
	for i, j := range perm {
		if j != n-1-i {
			t.Fatalf("perm[%d]=%d, want reversal", i, j)
		}
	}
}

func BenchmarkHungarian64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxWeightAssignment(w); err != nil {
			b.Fatal(err)
		}
	}
}
