package lp

import (
	"context"
	"errors"
	"math"
)

// Model-level presolve/postsolve. SolveModel reduces a finished Model —
// empty rows, singleton rows folded into variable upper bounds, fixed and
// dominated columns, power-of-two equilibration — solves the reduced LP, and
// reconstructs a full primal/dual solution on the original model.
//
// The reductions target the shapes the routing formulations produce: channel
// capacity rows are singletons on the load variable (they become bounds and
// leave the basis dimension entirely), saturated flow variables get fixed,
// and the ±1 design matrices make equilibration a no-op by construction.
//
// Presolve runs only here, on whole models. The incremental Solver API
// (AddCut / SetRHS warm-start loops) never presolves: the cut loop's
// checkpoint and fingerprint guarantees depend on the solver seeing exactly
// the rows the replay log describes.

// psActKind tags one postsolve stack entry.
type psActKind uint8

const (
	// psRowDropped is an eliminated row with a structurally zero dual
	// (empty after substitutions, or a redundant singleton).
	psRowDropped psActKind = iota
	// psRowFixEQ is an equality singleton row a*x_j == rhs whose variable
	// was fixed; its dual is reconstructed from the fixed column's
	// stationarity condition.
	psRowFixEQ
	// psRowBound is an inequality singleton row folded into an upper bound;
	// its dual is the bound's reduced cost divided by the row coefficient
	// when this row supplied the binding bound, zero otherwise.
	psRowBound
)

// psAction is one entry of the postsolve stack, pushed at removal time and
// replayed in reverse to rebuild the dual vector.
type psAction struct {
	kind psActKind
	row  int
	col  int
	coef float64
}

// psColEntry locates one coefficient of a column in the original row set.
type psColEntry struct {
	row  int32
	coef float64
}

// presolver holds the working state of one presolve run over a Model.
type presolver struct {
	m  *Model
	nv int
	nr int

	ub       []float64 // working upper bounds (+Inf when absent)
	rhs      []float64 // working right-hand sides, updated by substitutions
	rowDead  []bool
	colFixed []bool
	colVal   []float64
	boundRow []int // column -> row that supplied its binding upper bound
	colRows  [][]psColEntry

	stack      []psAction
	stats      PresolveStats
	offset     float64 // objective contribution of fixed columns
	infeasible bool
	unbounded  bool

	// Reduced-model handoff, filled by buildReduced.
	red      *Model
	liveRows []int32
	liveCols []int32
	rowScale []float64
	colScale []float64
}

// maxPresolvePasses bounds the reduction fixpoint: each pass is a full
// row+column sweep, and reductions that chain deeper than this are not worth
// chasing before the simplex.
const maxPresolvePasses = 10

// SolveModel presolves m, solves the reduced LP, and postsolves the result
// back onto m's variables and rows. See SolveModelCtx.
func SolveModel(m *Model) (*Solution, error) {
	return SolveModelCtx(context.Background(), m)
}

// SolveModelCtx is SolveModel with a context budget. The solve ladder is:
// the reduced model on the default engine (with the solver's own internal
// recovery ladder, which already includes the dense-engine fallback), and on
// a numerical failure the original, unpresolved model on the dense oracle
// engine — so presolve can never make a previously solvable model fail.
func SolveModelCtx(ctx context.Context, m *Model) (*Solution, error) {
	if err := m.Err(); err != nil {
		return nil, err
	}
	p := newPresolver(m)
	p.run()
	if p.infeasible {
		return &Solution{
			Status: Infeasible,
			X:      make([]float64, p.nv),
			Dual:   make([]float64, p.nr),
			Diag:   Diagnostics{Presolve: p.stats},
		}, nil
	}
	if p.unbounded {
		return &Solution{
			Status: Unbounded,
			Diag:   Diagnostics{Presolve: p.stats},
		}, nil
	}
	if len(p.liveRows) == 0 {
		// Everything reduced away: the fixed values are the solution.
		return p.directSolution(), nil
	}
	sol, err := NewSolver(p.red).SolveCtx(ctx)
	if err != nil {
		if !errors.Is(err, ErrNumerical) {
			return nil, err
		}
		s := NewSolver(m)
		s.SetEngine(EngineDense)
		sol, err = s.SolveCtx(ctx)
		if err != nil {
			return nil, err
		}
		sol.Diag.EngineFallback = true
		return sol, nil
	}
	return p.postsolve(sol), nil
}

func newPresolver(m *Model) *presolver {
	nv, nr := m.NumVars(), m.NumRows()
	p := &presolver{
		m:        m,
		nv:       nv,
		nr:       nr,
		ub:       make([]float64, nv),
		rhs:      make([]float64, nr),
		rowDead:  make([]bool, nr),
		colFixed: make([]bool, nv),
		colVal:   make([]float64, nv),
		boundRow: make([]int, nv),
		colRows:  make([][]psColEntry, nv),
	}
	for j := 0; j < nv; j++ {
		p.ub[j] = m.Upper(VarID(j))
		p.boundRow[j] = -1
	}
	cnt := make([]int32, nv)
	tot := 0
	for i := range m.rows {
		p.rhs[i] = m.rows[i].rhs
		for _, t := range m.rows[i].terms {
			cnt[t.Var]++
		}
		tot += len(m.rows[i].terms)
	}
	arena := make([]psColEntry, 0, tot)
	for j := 0; j < nv; j++ {
		n := int(cnt[j])
		p.colRows[j] = arena[len(arena):len(arena):len(arena)+n]
		arena = arena[:len(arena)+n]
	}
	for i := range m.rows {
		for _, t := range m.rows[i].terms {
			p.colRows[t.Var] = append(p.colRows[t.Var], psColEntry{row: int32(i), coef: t.Coef})
		}
	}
	return p
}

// fix pins column j at val: the objective picks up its contribution and
// every row's right-hand side absorbs its activity.
func (p *presolver) fix(j int, val float64) {
	p.colFixed[j] = true
	p.colVal[j] = val
	p.offset += p.m.obj[j] * val
	p.stats.ColsRemoved++
	//lint:ignore floatcmp a zero value contributes nothing exactly
	if val != 0 {
		for _, e := range p.colRows[j] {
			p.rhs[e.row] -= e.coef * val
		}
	}
}

func (p *presolver) dropRow(i int, kind psActKind, col int, coef float64) {
	p.rowDead[i] = true
	p.stats.RowsRemoved++
	p.stack = append(p.stack, psAction{kind: kind, row: i, col: col, coef: coef})
}

// run iterates the reduction sweeps to a fixpoint and builds the reduced
// model.
func (p *presolver) run() {
	for pass := 1; pass <= maxPresolvePasses; pass++ {
		p.stats.Passes = pass
		changed := p.sweepRows()
		if p.infeasible {
			return
		}
		if p.sweepCols() {
			changed = true
		}
		if !changed {
			break
		}
	}
	// With no live rows left, the remaining live columns face only their
	// bounds: a negative cost with no finite bound certifies unboundedness
	// (the fixed values above witness feasibility); everything else sits at
	// the cheaper end of its range.
	anyLiveRow := false
	for i := 0; i < p.nr; i++ {
		if !p.rowDead[i] {
			anyLiveRow = true
			break
		}
	}
	if !anyLiveRow {
		for j := 0; j < p.nv; j++ {
			if p.colFixed[j] {
				continue
			}
			c := p.m.obj[j]
			if c < 0 {
				if math.IsInf(p.ub[j], 1) {
					p.unbounded = true
					return
				}
				p.fix(j, p.ub[j])
				continue
			}
			p.fix(j, 0)
		}
	}
	p.buildReduced()
}

// sweepRows applies the empty-row and singleton-row reductions once.
func (p *presolver) sweepRows() bool {
	changed := false
	for i := range p.m.rows {
		if p.rowDead[i] {
			continue
		}
		r := &p.m.rows[i]
		liveN := 0
		var lone Term
		for _, t := range r.terms {
			if p.colFixed[t.Var] {
				continue
			}
			liveN++
			if liveN > 1 {
				break
			}
			lone = t
		}
		switch liveN {
		case 0:
			// Empty row: the substituted right-hand side decides.
			b := p.rhs[i]
			switch r.rel {
			case LE:
				if b < -primalTol {
					p.infeasible = true
					return changed
				}
			case GE:
				if b > primalTol {
					p.infeasible = true
					return changed
				}
			case EQ:
				if math.Abs(b) > primalTol {
					p.infeasible = true
					return changed
				}
			}
			p.dropRow(i, psRowDropped, -1, 0)
			changed = true
		case 1:
			if p.singletonRow(i, r.rel, lone) {
				changed = true
			}
			if p.infeasible {
				return changed
			}
		}
	}
	return changed
}

// singletonRow reduces a row holding a single live term a*x_j. Inequalities
// that bound x_j from above fold into its upper bound; equalities fix it;
// lower bounds weaker than x_j >= 0 are dropped as redundant. Rows that
// would impose a positive lower bound stay (the solver has no general lower
// bounds). Reports whether the row was eliminated.
func (p *presolver) singletonRow(i int, rel Rel, t Term) bool {
	j := int(t.Var)
	a := t.Coef
	v := p.rhs[i] / a
	// Orient as an upper or lower bound on x_j: dividing by a negative
	// coefficient flips the relation.
	upperBnd := (rel == LE && a > 0) || (rel == GE && a < 0)
	lowerBnd := (rel == GE && a > 0) || (rel == LE && a < 0)
	switch {
	case upperBnd:
		if v < -primalTol {
			p.infeasible = true
			return false
		}
		if v < 0 {
			v = 0
		}
		if v < p.ub[j] {
			p.ub[j] = v
			p.boundRow[j] = i
			p.stats.BoundsAdded++
		}
		p.dropRow(i, psRowBound, j, a)
		return true
	case lowerBnd:
		if v <= primalTol {
			// No stronger than the built-in x_j >= 0.
			p.dropRow(i, psRowDropped, -1, 0)
			return true
		}
		return false // genuine lower bound: leave for the simplex
	default: // EQ
		if v < -primalTol || v > p.ub[j]+primalTol {
			p.infeasible = true
			return false
		}
		if v < 0 {
			v = 0
		}
		if v > p.ub[j] {
			v = p.ub[j]
		}
		p.dropRow(i, psRowFixEQ, j, a)
		p.fix(j, v)
		return true
	}
}

// sweepCols applies the fixed-at-zero-bound, empty-column and weakly
// dominated column reductions once.
func (p *presolver) sweepCols() bool {
	cnt := make([]int32, p.nv)
	dom := make([]bool, p.nv)
	for j := range dom {
		dom[j] = true
	}
	for i := range p.m.rows {
		if p.rowDead[i] {
			continue
		}
		rel := p.m.rows[i].rel
		for _, t := range p.m.rows[i].terms {
			if p.colFixed[t.Var] {
				continue
			}
			cnt[t.Var]++
			// A column is weakly dominated when raising it can only tighten
			// constraints: nonnegative coefficients in <= rows, nonpositive
			// in >= rows, absent from == rows.
			switch {
			case rel == EQ:
				dom[t.Var] = false
			case rel == LE && t.Coef < 0:
				dom[t.Var] = false
			case rel == GE && t.Coef > 0:
				dom[t.Var] = false
			}
		}
	}
	changed := false
	for j := 0; j < p.nv; j++ {
		if p.colFixed[j] {
			continue
		}
		//lint:ignore floatcmp bounds are clamped nonnegative, so zero is exact
		if p.ub[j] == 0 {
			p.fix(j, 0)
			changed = true
			continue
		}
		c := p.m.obj[j]
		if cnt[j] == 0 {
			// Empty column: only the objective and the bound act on it. A
			// negative cost with no finite bound is kept — if the rest of
			// the model proves feasible it certifies unboundedness, and the
			// simplex must be the one to decide that.
			if c >= 0 {
				p.fix(j, 0)
				changed = true
			} else if !math.IsInf(p.ub[j], 1) {
				p.fix(j, p.ub[j])
				changed = true
			}
			continue
		}
		if dom[j] && c >= 0 {
			p.fix(j, 0)
			changed = true
		}
	}
	return changed
}

// pow2Scale returns the power of two nearest to v's magnitude, or 1 when v
// is zero or the scale would leave the normal range. Powers of two make the
// scaling exact: no coefficient, bound or solution value picks up rounding.
func pow2Scale(v float64) float64 {
	if v <= 0 || math.IsInf(v, 1) {
		return 1
	}
	s := math.Exp2(math.Round(math.Log2(v)))
	if s < pow2ScaleMin || s > pow2ScaleMax {
		return 1
	}
	return s
}

// pow2Scale's clamp range: scales outside it would push coefficients toward
// the subnormal or overflow ranges, so such rows/columns go unscaled. The
// clamp also makes every scale factor safe to divide by.
const (
	pow2ScaleMin = 0x1p-512
	pow2ScaleMax = 0x1p512
)

// buildReduced assembles the reduced model over the live rows and columns,
// applying power-of-two row/column equilibration. On the ±1 design matrices
// every scale factor is exactly 1.
func (p *presolver) buildReduced() {
	m := p.m
	p.liveCols = p.liveCols[:0]
	colMap := make([]int32, p.nv)
	for j := 0; j < p.nv; j++ {
		colMap[j] = -1
		if !p.colFixed[j] {
			colMap[j] = int32(len(p.liveCols))
			p.liveCols = append(p.liveCols, int32(j))
		}
	}
	p.liveRows = p.liveRows[:0]
	for i := 0; i < p.nr; i++ {
		if !p.rowDead[i] {
			p.liveRows = append(p.liveRows, int32(i))
		}
	}
	// Row scales from the live coefficients, then column scales from the
	// row-scaled coefficients.
	p.rowScale = make([]float64, p.nr)
	for _, i := range p.liveRows {
		worst := 0.0
		for _, t := range m.rows[i].terms {
			if p.colFixed[t.Var] {
				continue
			}
			if a := math.Abs(t.Coef); a > worst {
				worst = a
			}
		}
		p.rowScale[i] = pow2Scale(worst)
	}
	p.colScale = make([]float64, p.nv)
	colMax := make([]float64, p.nv)
	for _, i := range p.liveRows {
		rs := p.rowScale[i]
		for _, t := range m.rows[i].terms {
			if p.colFixed[t.Var] {
				continue
			}
			//lint:ignore nanguard pow2Scale clamps scales to [2^-512, 2^512]
			if a := math.Abs(t.Coef) / rs; a > colMax[t.Var] {
				colMax[t.Var] = a
			}
		}
	}
	for _, j := range p.liveCols {
		p.colScale[j] = pow2Scale(colMax[j])
	}

	red := NewModel()
	red.AddVars(len(p.liveCols))
	for _, j := range p.liveCols {
		nj := VarID(colMap[j])
		//lint:ignore nanguard pow2Scale clamps scales to [2^-512, 2^512]
		red.SetObj(nj, m.obj[j]/p.colScale[j])
		if !math.IsInf(p.ub[j], 1) {
			red.SetUpper(nj, p.ub[j]*p.colScale[j])
		}
	}
	terms := make([]Term, 0, 16)
	for _, i := range p.liveRows {
		rs := p.rowScale[i]
		terms = terms[:0]
		for _, t := range m.rows[i].terms {
			if p.colFixed[t.Var] {
				continue
			}
			terms = append(terms, Term{
				Var:  VarID(colMap[t.Var]),
				Coef: t.Coef / (rs * p.colScale[t.Var]),
			})
		}
		//lint:ignore nanguard pow2Scale clamps scales to [2^-512, 2^512]
		red.AddRow(terms, m.rows[i].rel, p.rhs[i]/rs, m.rows[i].name)
	}
	p.red = red
}

// directSolution reports the fully reduced case, where presolve fixed every
// column and removed every row.
func (p *presolver) directSolution() *Solution {
	sol := &Solution{
		Status:    Optimal,
		Objective: p.offset,
		X:         make([]float64, p.nv),
		Dual:      make([]float64, p.nr),
		Diag:      Diagnostics{Presolve: p.stats},
	}
	copy(sol.X, p.colVal)
	p.replayDuals(sol.X, sol.Dual)
	return sol
}

// postsolve lifts the reduced solution back onto the original model:
// unscale, scatter the live values, fill in the fixed columns, and rebuild
// the duals of the eliminated rows from the postsolve stack.
func (p *presolver) postsolve(sol *Solution) *Solution {
	if sol.Status != Optimal {
		// Infeasible/Unbounded/IterLimit certificates live on the reduced
		// model; only the status and diagnostics translate.
		sol.Diag.Presolve = p.stats
		sol.X = nil
		sol.Dual = nil
		return sol
	}
	x := make([]float64, p.nv)
	copy(x, p.colVal)
	for nj, j := range p.liveCols {
		//lint:ignore nanguard pow2Scale clamps scales to [2^-512, 2^512]
		x[j] = sol.X[nj] / p.colScale[j]
	}
	y := make([]float64, p.nr)
	for ni, i := range p.liveRows {
		//lint:ignore nanguard pow2Scale clamps scales to [2^-512, 2^512]
		y[i] = sol.Dual[ni] / p.rowScale[i]
	}
	p.replayDuals(x, y)
	sol.X = x
	sol.Dual = y
	sol.Objective += p.offset
	sol.Diag.Presolve = p.stats
	return sol
}

// replayDuals walks the postsolve stack in reverse removal order, assigning
// each eliminated row the dual its reduction implies. Rows restored earlier
// (removed later) already carry their duals when earlier removals are
// processed, which is what makes chained substitutions come out right.
func (p *presolver) replayDuals(x, y []float64) {
	for s := len(p.stack) - 1; s >= 0; s-- {
		act := p.stack[s]
		switch act.kind {
		case psRowDropped:
			// Structurally slack: zero dual, already in place.
		case psRowFixEQ:
			// Stationarity of the fixed column: c_j - sum_k a_kj y_k = 0,
			// solved for this row's multiplier.
			d := p.m.obj[act.col]
			for _, e := range p.colRows[act.col] {
				if int(e.row) == act.row {
					continue
				}
				d -= e.coef * y[e.row]
			}
			//lint:ignore nanguard model rows drop exact-zero coefficients at merge
			y[act.row] = d / act.coef
		case psRowBound:
			y[act.row] = p.boundRowDual(act, x, y)
		}
	}
}

// boundRowDual computes the dual of a singleton row folded into an upper
// bound: when this row supplied the bound and the bound is active, the
// bound's reduced cost transfers to the row (divided by the coefficient);
// otherwise the row is slack and its dual is zero. A sign check guards the
// degenerate case where the bound is tight but not binding.
func (p *presolver) boundRowDual(act psAction, x, y []float64) float64 {
	j := act.col
	if p.boundRow[j] != act.row {
		return 0
	}
	// Active means the variable actually sits on the folded bound.
	if math.Abs(x[j]-p.ub[j]) > primalTol*(1+math.Abs(p.ub[j])) {
		return 0
	}
	d := p.m.obj[j]
	for _, e := range p.colRows[j] {
		d -= e.coef * y[e.row]
	}
	//lint:ignore nanguard model rows drop exact-zero coefficients at merge
	yi := d / act.coef
	rel := p.m.rows[act.row].rel
	if (rel == LE && yi > 0) || (rel == GE && yi < 0) {
		return 0
	}
	return yi
}
