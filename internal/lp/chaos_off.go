//go:build !lpchaos

package lp

// Fault injection is compiled out of normal builds: chaosCfg is an empty
// type whose nil-receiver methods are no-ops the compiler inlines away, so
// the hook sites in factorize/pivotEta/initDevex cost nothing. Build with
// -tags lpchaos (see chaos_on.go) to arm the hooks.
type chaosCfg struct{}

func (*chaosCfg) failFactor(Engine) bool { return false }

func (*chaosCfg) perturbEta([]float64) {}

func (*chaosCfg) corruptDevex([]float64) {}
