package lp

// Test-only hooks. The engine benchmarks and cross-engine equivalence tests
// live in the external package lp_test (they import internal/design to build
// the real design LPs, which would cycle from inside package lp), so the
// unexported pieces they exercise are re-exported here for test builds.

// Refresh refactorizes the current basis and recomputes the basic values.
func (s *Solver) Refresh() error { return s.refresh() }

// FtranCol runs one FTRAN of column col through the active representation.
func (s *Solver) FtranCol(col int) []float64 { return s.ftran(col) }

// NumCols reports the total column count (structurals + logicals +
// artificials) of the computational form.
func (s *Solver) NumCols() int { return len(s.cost) }
