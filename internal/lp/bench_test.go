package lp_test

// Engine benchmarks on the real design LPs (k=4 and k=6 worst-case flow
// formulations with locality budgets and adversarial permutation cuts).
// Every benchmark runs one sub-benchmark per engine, eta first and the dense
// oracle second, so a single `go test -bench` run records the comparison;
// scripts/bench.sh serializes the results into BENCH_lp.json.

import (
	"fmt"
	"math/rand"
	"testing"

	"tcr/internal/design"
	"tcr/internal/lp"
	"tcr/internal/topo"
)

var benchEngines = []lp.Engine{lp.EngineEta, lp.EngineDense}

// benchLP bundles a design LP with a pregenerated pool of permutation cuts.
type benchLP struct {
	fl   *design.FlowLP
	tor  *topo.Torus
	cuts [][]lp.Term
}

func designBenchLP(k, ncuts int) *benchLP {
	tor := topo.NewTorus(k)
	fl := design.NewFlowLP(tor, true, design.Options{})
	rng := rand.New(rand.NewSource(int64(k)))
	cuts := make([][]lp.Term, ncuts)
	for i := range cuts {
		dir := topo.Dir(i % int(topo.NumDirs))
		cuts[i] = fl.PermCutTerms(tor.Chan(0, dir), rng.Perm(tor.N), fl.WVar())
	}
	return &benchLP{fl: fl, tor: tor, cuts: cuts}
}

func (bl *benchLP) solver(b *testing.B, e lp.Engine) *lp.Solver {
	b.Helper()
	s := lp.NewSolver(bl.fl.Model())
	s.SetEngine(e)
	return s
}

// solvedWithCuts cold-solves and installs the cut pool, leaving a warm
// optimal basis of the full LP.
func (bl *benchLP) solvedWithCuts(b *testing.B, e lp.Engine) *lp.Solver {
	b.Helper()
	s := bl.solver(b, e)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	for _, c := range bl.cuts {
		s.AddCut(c, lp.LE, 0)
	}
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkColdSolve measures a from-scratch solve of the base design LP.
func BenchmarkColdSolve(b *testing.B) {
	for _, k := range []int{4, 6} {
		bl := designBenchLP(k, 0)
		for _, e := range benchEngines {
			b.Run(fmt.Sprintf("k=%d/%s", k, e), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := bl.solver(b, e)
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFamilyColdSolve measures a from-scratch solve of the design LP on
// the non-torus2d families: the k=4 3-cube exercises the B3-reduced
// formulation at a realistic size. (The 2D points live in BenchmarkColdSolve;
// the spec keys keep the BENCH_lp.json series distinct.)
func BenchmarkFamilyColdSolve(b *testing.B) {
	for _, spec := range []string{"torus3d:4"} {
		t, err := topo.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		fl := design.NewFlowLP(t, true, design.Options{})
		for _, e := range benchEngines {
			b.Run(fmt.Sprintf("%s/%s", spec, e), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := lp.NewSolver(fl.Model())
					s.SetEngine(e)
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFamilyModelBuild measures formulation construction alone on the
// families where the row/column generation itself is the cost that scales:
// the 8x8 mesh is not vertex-transitive, so the model carries per-pair
// commodities (~119k variables) and building it — not solving — is what the
// serving path amortizes through the design cache.
func BenchmarkFamilyModelBuild(b *testing.B) {
	for _, spec := range []string{"torus3d:4", "mesh:8x8"} {
		t, err := topo.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fl := design.NewFlowLP(t, true, design.Options{})
				if fl.Model().NumVars() == 0 {
					b.Fatal("empty model")
				}
			}
		})
	}
}

// BenchmarkWarmAddCut measures the lazy-constraint episode the design loops
// run: starting from a solved base LP (built off the clock), add six
// adversarial permutation cuts one at a time, dual-simplex re-solving after
// each.
func BenchmarkWarmAddCut(b *testing.B) {
	for _, k := range []int{4, 6} {
		bl := designBenchLP(k, 6)
		for _, e := range benchEngines {
			b.Run(fmt.Sprintf("k=%d/%s", k, e), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := bl.solver(b, e)
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, c := range bl.cuts {
						s.AddCut(c, lp.LE, 0)
						if _, err := s.Solve(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkWarmSetRHS measures one Pareto-sweep step: move the locality
// budget of a solved, cut-laden LP and warm re-solve.
func BenchmarkWarmSetRHS(b *testing.B) {
	hs := []float64{1.2, 1.5, 1.8, 2.0}
	for _, k := range []int{4, 6} {
		bl := designBenchLP(k, 6)
		for _, e := range benchEngines {
			b.Run(fmt.Sprintf("k=%d/%s", k, e), func(b *testing.B) {
				s := bl.solvedWithCuts(b, e)
				hrow, ok := bl.fl.LocalityRow()
				if !ok {
					b.Fatal("bench LP built without locality row")
				}
				base := float64(bl.tor.N) * bl.tor.MeanMinDist()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.SetRHS(int(hrow), hs[i%len(hs)]*base)
					if _, err := s.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFactorize measures one basis refresh (refactorize + recompute the
// basic values) on the warm optimal basis of the cut-laden k=6 LP.
func BenchmarkFactorize(b *testing.B) {
	bl := designBenchLP(6, 6)
	for _, e := range benchEngines {
		b.Run(fmt.Sprintf("k=6/%s", e), func(b *testing.B) {
			s := bl.solvedWithCuts(b, e)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Refresh(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFtran measures one FTRAN (Binv times a sparse column) on the warm
// optimal basis of the cut-laden k=6 LP, cycling through the columns.
func BenchmarkFtran(b *testing.B) {
	bl := designBenchLP(6, 6)
	for _, e := range benchEngines {
		b.Run(fmt.Sprintf("k=6/%s", e), func(b *testing.B) {
			s := bl.solvedWithCuts(b, e)
			n := s.NumCols()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.FtranCol(i % n)
			}
		})
	}
}
