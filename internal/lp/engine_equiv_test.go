package lp_test

// Cross-engine equivalence: the sparse LU + eta-file engine must reproduce
// the dense explicit-inverse engine's results — identical status, objectives
// within 1e-9, duals within tolerance — on randomized LPs, on the warm-start
// mutation patterns (AddCut loops, SetRHS sweeps), and on the real design
// LPs with adversarial permutation cuts. The dense engine is the oracle: it
// predates the eta engine and is cross-checked against brute-force basis
// enumeration by the in-package property tests.

import (
	"math"
	"math/rand"
	"testing"

	"tcr/internal/design"
	"tcr/internal/lp"
	"tcr/internal/topo"
)

const (
	objEquivTol  = 1e-9 // cross-engine objective agreement
	dualEquivTol = 1e-6 // cross-engine dual agreement (degeneracy headroom)
	certTol      = 1e-6 // strong-duality certificate slack
)

// randModel builds a bounded random LE-form minimization. Objectives are
// drawn negative-leaning so the box bounds bind and the LP is never
// unbounded; coefficients are quarter-integers for reproducible arithmetic.
func randModel(rng *rand.Rand) (*lp.Model, []float64) {
	n := 3 + rng.Intn(6)
	mm := 2 + rng.Intn(5)
	model := lp.NewModel()
	vars := make([]lp.VarID, n)
	for j := 0; j < n; j++ {
		vars[j] = model.AddVar(math.Round(20*(rng.Float64()-0.6))/4, "")
	}
	var rhs []float64
	for i := 0; i < mm; i++ {
		terms := make([]lp.Term, 0, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				terms = append(terms, lp.Term{Var: vars[j], Coef: math.Round(8*(rng.Float64()-0.3)) / 2})
			}
		}
		b := math.Round(10 * rng.Float64())
		model.AddRow(terms, lp.LE, b, "")
		rhs = append(rhs, b)
	}
	for j := 0; j < n; j++ {
		model.AddRow([]lp.Term{{Var: vars[j], Coef: 1}}, lp.LE, 10, "")
		rhs = append(rhs, 10)
	}
	return model, rhs
}

// checkAgree compares an eta-engine solution against the dense oracle's and
// verifies each solution's strong-duality certificate y.b == obj. When
// exactDuals is set the dual vectors must also agree componentwise — valid
// on the random suites, where the cost jitter makes the optimal basis
// essentially unique. The heavily degenerate design LPs have whole faces of
// optimal dual bases, so there the engines may legitimately return different
// certificates and only the certificate identity y.b == obj is required.
func checkAgree(t *testing.T, tag string, eta, dense *lp.Solution, rhs []float64, exactDuals bool) {
	t.Helper()
	if eta.Status != dense.Status {
		t.Fatalf("%s: status eta=%v dense=%v", tag, eta.Status, dense.Status)
	}
	if eta.Status != lp.Optimal {
		return
	}
	if d := math.Abs(eta.Objective - dense.Objective); d > objEquivTol {
		t.Fatalf("%s: objective eta=%v dense=%v (diff %v)", tag, eta.Objective, dense.Objective, d)
	}
	if exactDuals {
		for i := range eta.Dual {
			if d := math.Abs(eta.Dual[i] - dense.Dual[i]); d > dualEquivTol {
				t.Fatalf("%s: dual[%d] eta=%v dense=%v (diff %v)", tag, i, eta.Dual[i], dense.Dual[i], d)
			}
		}
	}
	if rhs == nil {
		return
	}
	for name, sol := range map[string]*lp.Solution{"eta": eta, "dense": dense} {
		var yb float64
		for i, b := range rhs {
			yb += sol.Dual[i] * b
		}
		scale := 1 + math.Abs(sol.Objective)
		if d := math.Abs(yb - sol.Objective); d > certTol*scale {
			t.Fatalf("%s: %s duality gap y.b=%v obj=%v", tag, name, yb, sol.Objective)
		}
	}
}

// pair builds an eta solver and a dense solver over the same model.
func pair(m *lp.Model) (*lp.Solver, *lp.Solver) {
	eta := lp.NewSolver(m)
	eta.SetEngine(lp.EngineEta)
	dense := lp.NewSolver(m)
	dense.SetEngine(lp.EngineDense)
	return eta, dense
}

func TestEngineEquivRandom(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 80
	}
	rng := rand.New(rand.NewSource(1729))
	for trial := 0; trial < trials; trial++ {
		model, rhs := randModel(rng)
		eta, dense := pair(model)
		etaSol, err := eta.Solve()
		if err != nil {
			t.Fatalf("trial %d eta: %v", trial, err)
		}
		denseSol, err := dense.Solve()
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		checkAgree(t, "random", etaSol, denseSol, rhs, true)
	}
}

// TestEngineEquivCutLoop drives both engines through the same cutting-plane
// episode: every round adds the cut most violated at the eta solution to
// BOTH solvers, so the engines stay on the same LP while each warm-starts
// from its own basis.
func TestEngineEquivCutLoop(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 12
	}
	rng := rand.New(rand.NewSource(5151))
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(4)
		model := lp.NewModel()
		vars := make([]lp.VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = model.AddVar(-1-rng.Float64(), "")
		}
		rhs := make([]float64, 0, n+8)
		for j := 0; j < n; j++ {
			model.AddRow([]lp.Term{{Var: vars[j], Coef: 1}}, lp.LE, 5, "")
			rhs = append(rhs, 5)
		}
		type cut struct {
			terms []lp.Term
			rhs   float64
		}
		pool := make([]cut, 14)
		for k := range pool {
			terms := make([]lp.Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, lp.Term{Var: vars[j], Coef: 1 + rng.Float64()})
				}
			}
			pool[k] = cut{terms, 4 + 6*rng.Float64()}
		}
		eta, dense := pair(model)
		etaSol, err := eta.Solve()
		if err != nil {
			t.Fatal(err)
		}
		denseSol, err := dense.Solve()
		if err != nil {
			t.Fatal(err)
		}
		checkAgree(t, "cutloop-base", etaSol, denseSol, rhs, true)
		for round := 0; round < 7; round++ {
			bestViol, bestIdx := 1e-7, -1
			for k, c := range pool {
				var act float64
				for _, tm := range c.terms {
					act += tm.Coef * etaSol.X[tm.Var]
				}
				if v := act - c.rhs; v > bestViol {
					bestViol, bestIdx = v, k
				}
			}
			if bestIdx < 0 {
				break
			}
			eta.AddCut(pool[bestIdx].terms, lp.LE, pool[bestIdx].rhs)
			dense.AddCut(pool[bestIdx].terms, lp.LE, pool[bestIdx].rhs)
			rhs = append(rhs, pool[bestIdx].rhs)
			if etaSol, err = eta.Solve(); err != nil {
				t.Fatal(err)
			}
			if denseSol, err = dense.Solve(); err != nil {
				t.Fatal(err)
			}
			checkAgree(t, "cutloop", etaSol, denseSol, rhs, true)
		}
	}
}

// TestEngineEquivBounded pits the engines against each other on the bounded
// simplex: random LPs where capacities live as variable upper bounds (with
// bound-flip ratio tests and at-upper nonbasic states) instead of explicit
// rows, both cold and through a SetVarUpper warm-tightening episode.
func TestEngineEquivBounded(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 60
	}
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(6)
		mm := 2 + rng.Intn(4)
		model := lp.NewModel()
		vars := make([]lp.VarID, n)
		ubs := make([]float64, n)
		for j := 0; j < n; j++ {
			vars[j] = model.AddVar(math.Round(20*(rng.Float64()-0.6))/4, "")
			ubs[j] = 2 + math.Round(16*rng.Float64())/2
			model.SetUpper(vars[j], ubs[j])
		}
		for i := 0; i < mm; i++ {
			terms := make([]lp.Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, lp.Term{Var: vars[j], Coef: math.Round(8*(rng.Float64()-0.3)) / 2})
				}
			}
			rel := lp.LE
			if rng.Float64() < 0.2 {
				rel = lp.GE
			}
			model.AddRow(terms, rel, math.Round(10*rng.Float64()), "")
		}
		eta, dense := pair(model)
		etaSol, err := eta.Solve()
		if err != nil {
			t.Fatalf("trial %d eta: %v", trial, err)
		}
		denseSol, err := dense.Solve()
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		// rhs=nil: with binding variable bounds the plain y.b == obj identity
		// no longer holds (the bound multipliers contribute); the bounded
		// certificate is covered by the presolve property suite.
		checkAgree(t, "bounded-cold", etaSol, denseSol, nil, true)
		if etaSol.Status == lp.Optimal {
			if v := model.MaxViolation(etaSol.X); v > 1e-6 {
				t.Fatalf("trial %d: eta X violates bounds/rows by %v", trial, v)
			}
		}
		// Warm episode: tighten a random variable's bound and re-solve, four
		// times, mirroring the stage-2 w-cap usage in the design layer.
		for step := 0; step < 4; step++ {
			j := rng.Intn(n)
			ubs[j] = math.Max(0, ubs[j]-1-math.Round(4*rng.Float64())/2)
			eta.SetVarUpper(vars[j], ubs[j])
			dense.SetVarUpper(vars[j], ubs[j])
			if etaSol, err = eta.Solve(); err != nil {
				t.Fatalf("trial %d step %d eta: %v", trial, step, err)
			}
			if denseSol, err = dense.Solve(); err != nil {
				t.Fatalf("trial %d step %d dense: %v", trial, step, err)
			}
			checkAgree(t, "bounded-warm", etaSol, denseSol, nil, true)
			if etaSol.Status != lp.Optimal {
				break
			}
			// SetVarUpper mutates the solver, not the model, so check the
			// tightened bounds directly rather than via MaxViolation.
			for jj := 0; jj < n; jj++ {
				if etaSol.X[jj] > ubs[jj]+1e-6 {
					t.Fatalf("trial %d step %d: x[%d]=%v above tightened bound %v",
						trial, step, jj, etaSol.X[jj], ubs[jj])
				}
			}
		}
	}
}

// TestEngineEquivRHSSweep mirrors the Pareto-sweep usage: both engines track
// the same swept equality right-hand side via SetRHS warm starts.
func TestEngineEquivRHSSweep(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 8
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(3)
		model := lp.NewModel()
		vars := make([]lp.VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = model.AddVar(rng.Float64()*2, "")
		}
		terms := make([]lp.Term, n)
		for j := 0; j < n; j++ {
			terms[j] = lp.Term{Var: vars[j], Coef: 1}
		}
		sweepRow := model.AddRow(terms, lp.EQ, 1, "L")
		for j := 0; j < n; j++ {
			model.AddRow([]lp.Term{{Var: vars[j], Coef: 1}}, lp.LE, 3, "")
		}
		eta, dense := pair(model)
		if _, err := eta.Solve(); err != nil {
			t.Fatal(err)
		}
		if _, err := dense.Solve(); err != nil {
			t.Fatal(err)
		}
		for _, L := range []float64{2, 5, 9, 3.5, 12, 0.5} {
			eta.SetRHS(int(sweepRow), L)
			dense.SetRHS(int(sweepRow), L)
			etaSol, err := eta.Solve()
			if err != nil {
				t.Fatal(err)
			}
			denseSol, err := dense.Solve()
			if err != nil {
				t.Fatal(err)
			}
			checkAgree(t, "rhs-sweep", etaSol, denseSol, nil, true)
		}
	}
}

// TestEngineEquivDesignLP pits the engines against each other on the real
// worst-case design LP: the k=4 flow formulation with a locality budget,
// growing through rounds of adversarial permutation cuts, with interleaved
// SetRHS locality moves — exactly the mutation mix the design loops issue.
func TestEngineEquivDesignLP(t *testing.T) {
	k := 4
	rounds := 12
	if testing.Short() {
		rounds = 5
	}
	tor := topo.NewTorus(k)
	fl := design.NewFlowLP(tor, true, design.Options{})
	model := fl.Model()
	// Track the full right-hand side alongside the solvers (base rows from
	// the model, cuts at 0, locality moves mirrored) so every round can
	// verify the strong-duality certificate y.b == obj.
	rhs := make([]float64, model.NumRows())
	for r := range rhs {
		rhs[r] = model.RHS(lp.RowID(r))
	}
	eta, dense := pair(model)
	etaSol, err := eta.Solve()
	if err != nil {
		t.Fatal(err)
	}
	denseSol, err := dense.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "design-base", etaSol, denseSol, rhs, false)

	rng := rand.New(rand.NewSource(7))
	hs := []float64{1.5, 1.2, 2.0, 1.35}
	hrow, _ := fl.LocalityRow()
	for round := 0; round < rounds; round++ {
		terms := fl.PermCutTerms(tor.Chan(0, 0), rng.Perm(tor.N), fl.WVar())
		eta.AddCut(terms, lp.LE, 0)
		dense.AddCut(terms, lp.LE, 0)
		rhs = append(rhs, 0)
		if etaSol, err = eta.Solve(); err != nil {
			t.Fatal(err)
		}
		if denseSol, err = dense.Solve(); err != nil {
			t.Fatal(err)
		}
		checkAgree(t, "design-cut", etaSol, denseSol, rhs, false)
		if round%3 == 2 {
			h := hs[(round/3)%len(hs)] * float64(tor.N) * tor.MeanMinDist()
			eta.SetRHS(int(hrow), h)
			dense.SetRHS(int(hrow), h)
			rhs[int(hrow)] = h
			if etaSol, err = eta.Solve(); err != nil {
				t.Fatal(err)
			}
			if denseSol, err = dense.Solve(); err != nil {
				t.Fatal(err)
			}
			checkAgree(t, "design-rhs", etaSol, denseSol, rhs, false)
		}
	}
}
