package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestMPSRoundTrip(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	y := m.AddVar(-2.5, "y")
	m.AddRow([]Term{{x, 1}, {y, 2}}, LE, 4, "c1")
	m.AddRow([]Term{{x, 3}, {y, -1}}, GE, -2, "c2")
	m.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 3, "c3")

	var buf bytes.Buffer
	if err := m.WriteMPS(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMPS(&buf)
	if err != nil {
		t.Fatalf("read back: %v\n%s", err, buf.String())
	}
	a, err := NewSolver(m).Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSolver(got).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status || math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("round trip changed solution: %v/%v vs %v/%v",
			a.Status, a.Objective, b.Status, b.Objective)
	}
}

func TestMPSRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		m := NewModel()
		n := 2 + rng.Intn(4)
		vars := make([]VarID, n)
		for j := range vars {
			vars[j] = m.AddVar(math.Round(10*(rng.Float64()-0.5))/4, "")
		}
		rels := []Rel{LE, GE, EQ}
		for i := 0; i < 2+rng.Intn(4); i++ {
			var terms []Term
			for j := range vars {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{vars[j], math.Round(8 * (rng.Float64() - 0.4))})
				}
			}
			rel := rels[rng.Intn(2)] // LE/GE; EQ makes random instances mostly infeasible
			m.AddRow(terms, rel, math.Round(10*rng.Float64()), "")
		}
		for j := range vars {
			m.AddRow([]Term{{vars[j], 1}}, LE, 5, "")
		}
		var buf bytes.Buffer
		if err := m.WriteMPS(&buf, ""); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		a, errA := NewSolver(m).Solve()
		b, errB := NewSolver(back).Solve()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, a.Status, b.Status)
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-8 {
			t.Fatalf("trial %d: objective %v vs %v", trial, a.Objective, b.Objective)
		}
	}
}

func TestReadMPSHandWritten(t *testing.T) {
	src := `* a comment
NAME SAMPLE
ROWS
 N OBJ
 L LIM1
 G LIM2
COLUMNS
 X OBJ 1 LIM1 1
 Y OBJ 2
 Y LIM1 1
 Y LIM2 1
RHS
 RHS LIM1 4
 RHS LIM2 1
ENDATA
`
	m, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVars() != 2 || m.NumRows() != 2 {
		t.Fatalf("got %d vars, %d rows", m.NumVars(), m.NumRows())
	}
	sol, err := NewSolver(m).Solve()
	if err != nil {
		t.Fatal(err)
	}
	// min x + 2y s.t. x+y<=4, y>=1 -> x=0, y=1, obj 2.
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("objective %v, want 2", sol.Objective)
	}
}

func TestReadMPSRejectsRanges(t *testing.T) {
	src := "NAME X\nROWS\n N OBJ\nRANGES\n R1 A 1\nENDATA\n"
	if _, err := ReadMPS(strings.NewReader(src)); err == nil {
		t.Fatal("expected RANGES rejection")
	}
}
