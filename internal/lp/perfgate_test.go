package lp_test

// Performance floor for the warm-start path: the eta engine with
// hyper-sparse FTRAN/BTRAN must not lose to the dense oracle on the
// Pareto-sweep episode (BenchmarkWarmSetRHS) at either torus size. The k=4
// case is the historical regression this pins: before the hyper-sparse
// solves, small-basis episodes paid more for the sparse machinery than the
// dense inverse cost outright. The margin absorbs scheduler noise — this is
// a "same order and no slower" gate, not a microbenchmark.

import (
	"fmt"
	"testing"

	"tcr/internal/lp"
)

// warmSetRHSBench runs the BenchmarkWarmSetRHS episode body for one engine
// and returns ns/op.
func warmSetRHSBench(t *testing.T, bl *benchLP, e lp.Engine) float64 {
	t.Helper()
	hs := []float64{1.2, 1.5, 1.8, 2.0}
	r := testing.Benchmark(func(b *testing.B) {
		s := bl.solvedWithCuts(b, e)
		hrow, ok := bl.fl.LocalityRow()
		if !ok {
			b.Fatal("bench LP built without locality row")
		}
		base := float64(bl.tor.N) * bl.tor.MeanMinDist()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SetRHS(int(hrow), hs[i%len(hs)]*base)
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if r.N == 0 {
		t.Fatal("benchmark did not run")
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func TestWarmSetRHSEtaNotSlowerThanDense(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing assertion; race instrumentation skews engine timings")
	}
	// 1.25x margin: eta must be at least on par. In practice it wins both
	// sizes (modestly at k=4, ~6x at k=6 — see BENCH_lp.json); the margin
	// only absorbs scheduler noise, which is real when the full suite runs
	// several package binaries concurrently. The historical regression this
	// gate exists for was 1.5-2x, well past it.
	const margin = 1.25
	for _, k := range []int{4, 6} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			bl := designBenchLP(k, 6)
			eta := warmSetRHSBench(t, bl, lp.EngineEta)
			dense := warmSetRHSBench(t, bl, lp.EngineDense)
			t.Logf("k=%d: eta %.0f ns/op, dense %.0f ns/op (%.2fx)", k, eta, dense, eta/dense)
			if eta > dense*margin {
				t.Errorf("k=%d: eta warm SetRHS %.0f ns/op slower than dense %.0f ns/op (margin %.2fx)",
					k, eta, dense, margin)
			}
		})
	}
}
