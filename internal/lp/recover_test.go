package lp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// randomBoundedLP builds a feasible, bounded LP of the given size from a
// seeded LCG: min -sum(x) subject to nonnegative random rows Ax <= b with
// b > 0, so the origin is feasible and the caps bind at the optimum.
func randomBoundedLP(m, n int, seed uint64) *Model {
	rng := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / (1 << 53)
	}
	mdl := NewModel()
	v0 := mdl.AddVars(n)
	for j := 0; j < n; j++ {
		mdl.SetObj(v0+VarID(j), -1)
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if next() < 0.4 {
				terms = append(terms, Term{Var: v0 + VarID(j), Coef: 1 + 4*next()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: v0, Coef: 1})
		}
		mdl.AddRow(terms, LE, 5+10*next(), "")
	}
	return mdl
}

func TestDiagnosticsCleanSolve(t *testing.T) {
	s := NewSolver(randomBoundedLP(30, 40, 7))
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	d := sol.Diag
	if d.Attempts != 1 {
		t.Errorf("clean solve Attempts = %d, want 1", d.Attempts)
	}
	if len(d.Ladder) != 0 {
		t.Errorf("clean solve climbed the ladder: %v", d.Ladder)
	}
	if d.Refactorizations < 1 {
		t.Errorf("Refactorizations = %d, want >= 1", d.Refactorizations)
	}
	if d.Residual > ladderResidTol {
		t.Errorf("Residual = %g exceeds gate %g", d.Residual, float64(ladderResidTol))
	}
	if d.Iterations != sol.Iterations {
		t.Errorf("Diag.Iterations = %d, Solution.Iterations = %d", d.Iterations, sol.Iterations)
	}
	if d.BudgetExhausted || d.DeadlineHit || d.EngineFallback {
		t.Errorf("clean solve raised failure flags: %+v", d)
	}
	if got := s.LastDiagnostics(); got.Attempts != 1 {
		t.Errorf("LastDiagnostics Attempts = %d", got.Attempts)
	}
	if sum := d.Summary(); !strings.Contains(sum, "attempts=1") {
		t.Errorf("Summary missing attempts: %q", sum)
	}
}

func TestSolveCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the solve must unwind at the first poll
	s := NewSolver(randomBoundedLP(30, 40, 11))
	sol, err := s.SolveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status = %v, want IterLimit under expired context", sol.Status)
	}
	if !sol.Diag.BudgetExhausted || !sol.Diag.DeadlineHit {
		t.Errorf("diag flags = %+v, want BudgetExhausted and DeadlineHit", sol.Diag)
	}
	// With the context restored, the same solver must finish the job.
	sol, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("post-deadline re-solve status = %v", sol.Status)
	}
}

func TestSolveCtxDeadlineMidSolve(t *testing.T) {
	// A deadline that expires while the simplex is running (not before):
	// the solve must still terminate promptly with IterLimit.
	// A real wall-clock deadline is the point of this test; the clock value
	// only controls when the solve unwinds, never what it computes.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(100*time.Microsecond)) //lint:ignore randsource deadline plumbing under test, not an artifact input
	defer cancel()
	s := NewSolver(randomBoundedLP(120, 160, 13))
	sol, err := s.SolveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == IterLimit && !sol.Diag.DeadlineHit {
		t.Errorf("IterLimit without DeadlineHit: %+v", sol.Diag)
	}
	// Either outcome (finished in time or cut off) is legal; wrong answers
	// are not.
	if sol.Status == Optimal && sol.Diag.Residual > ladderResidTol {
		t.Errorf("optimal with dirty residual %g", sol.Diag.Residual)
	}
}

func TestDiagErrorWrapsNumerical(t *testing.T) {
	de := &DiagError{Diag: Diagnostics{Attempts: 7}, Err: ErrNumerical}
	if !errors.Is(de, ErrNumerical) {
		t.Fatal("DiagError must unwrap to ErrNumerical")
	}
	if !strings.Contains(de.Error(), "attempts=7") {
		t.Errorf("DiagError message missing diagnostics: %q", de.Error())
	}
	var target *DiagError
	if !errors.As(error(de), &target) {
		t.Fatal("errors.As failed")
	}
}

func TestBasisInstallRoundtrip(t *testing.T) {
	mdl := randomBoundedLP(25, 35, 17)
	cut := []Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 2}}

	// Reference run: solve, add a cut (the checkpoint moment), then hit the
	// checkpoint barrier and capture the basis state before finishing.
	a := NewSolver(mdl)
	if _, err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	a.AddCut(cut, LE, 1.5)
	if err := a.RefreshFactors(); err != nil {
		t.Fatal(err)
	}
	basis := a.Basis()
	if basis == nil {
		t.Fatal("no basis after optimal solve")
	}
	cursor := a.PricingCursor()
	want, err := a.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Restored run: fresh solver, replay the cut, install the basis. The
	// continuation must be bit-for-bit identical to the reference run's.
	b := NewSolver(mdl)
	b.AddCut(cut, LE, 1.5)
	if err := b.InstallBasis(basis); err != nil {
		t.Fatal(err)
	}
	b.SetPricingCursor(cursor)
	got, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status {
		t.Fatalf("restored solve status = %v, want %v", got.Status, want.Status)
	}
	if got.Objective != want.Objective {
		t.Errorf("objective after InstallBasis = %.17g, want %.17g", got.Objective, want.Objective)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("restored solve pivoted %d times, reference %d", got.Iterations, want.Iterations)
	}
	for j := range want.X {
		if got.X[j] != want.X[j] {
			t.Fatalf("X[%d] = %.17g, want %.17g", j, got.X[j], want.X[j])
		}
	}
}

func TestInstallBasisRejectsGarbage(t *testing.T) {
	s := NewSolver(randomBoundedLP(10, 12, 3))
	if err := s.InstallBasis([]int{1, 2}); err == nil {
		t.Error("wrong-length basis accepted")
	}
	if err := s.InstallBasis(make([]int, 10)); err == nil {
		t.Error("duplicate columns accepted")
	}
	bad := make([]int, 10)
	for i := range bad {
		bad[i] = 10000 + i
	}
	if err := s.InstallBasis(bad); err == nil {
		t.Error("out-of-range columns accepted")
	}
}
