package lp

import (
	"fmt"
	"math"
)

// Sparse LU factorization of the basis with Markowitz-style pivot ordering.
//
// The factorization processes one pivot per step, chosen to minimize the
// Markowitz merit (rowCount-1)*(colCount-1) among entries that pass a
// relative magnitude threshold — the classic fill-vs-stability compromise.
// The factors are stored as two eta sequences:
//
//   - L: per pivot step, the multipliers eliminating the pivot column below
//     the pivot (applied forward during FTRAN);
//   - U: per pivot step, the pivot value plus the pivot row's entries in
//     columns pivoted later (solved backward during FTRAN).
//
// Rows are constraint-row indices; columns are basis positions. The pivot
// sequence (prow[t], pcol[t]) is an implicit pair of permutations, so no
// separate permutation vectors are needed: FTRAN/BTRAN walk the pivot
// sequence directly.
//
// Basis matrices here are overwhelmingly triangularizable (logical columns
// are singletons; flow columns have a handful of entries), and the Markowitz
// rule discovers that automatically: singleton columns and rows have merit
// zero and are consumed first, so the "bump" needing real elimination — and
// hence fill — stays tiny.

const (
	// markowitzStab is the relative pivot-magnitude threshold: an entry is
	// an acceptable pivot only if it is at least this fraction of its
	// column's largest magnitude. Higher is safer, lower is sparser.
	markowitzStab = 0.01
)

// luFactor holds the factors of the last factorization.
type luFactor struct {
	m    int
	prow []int32   // pivot row per step
	pcol []int32   // pivot basis position per step
	pval []float64 // pivot value per step
	lRow []int32   // L multiplier rows, segmented by lPtr
	lVal []float64
	lPtr []int32
	uPos []int32 // U row entries: basis positions pivoted later
	uVal []float64
	uPtr []int32
}

// nnz reports the factor fill (L + U off-pivot entries plus pivots).
func (f *luFactor) nnz() int {
	return len(f.lVal) + len(f.uVal) + len(f.pval)
}

// reserve pre-sizes the factor arrays for an m-row basis holding nnz
// entries, so a fresh solver's first factorization appends without
// incremental reallocation; fill can still grow L/U past the hint.
func (f *luFactor) reserve(m, nnz int) {
	// Headroom on both reservations: cutting-plane loops grow the basis a
	// row at a time, and without slack every refactorization after a cut
	// would reallocate the whole factor storage.
	if cap(f.prow) < m {
		c := m + m/2
		f.prow = make([]int32, 0, c)
		f.pcol = make([]int32, 0, c)
		f.pval = make([]float64, 0, c)
		f.lPtr = make([]int32, 0, c+1)
		f.uPtr = make([]int32, 0, c+1)
	}
	if cap(f.lRow) < nnz {
		c := nnz + nnz/2
		f.lRow = make([]int32, 0, c)
		f.lVal = make([]float64, 0, c)
		f.uPos = make([]int32, 0, c)
		f.uVal = make([]float64, 0, c)
	}
}

func (f *luFactor) reset(m int) {
	f.m = m
	f.prow = f.prow[:0]
	f.pcol = f.pcol[:0]
	f.pval = f.pval[:0]
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.lPtr = append(f.lPtr[:0], 0)
	f.uPos = f.uPos[:0]
	f.uVal = f.uVal[:0]
	f.uPtr = append(f.uPtr[:0], 0)
}

// luWork is the factorization workspace, solver-owned so refactorizations
// allocate nothing in steady state.
type luWork struct {
	colRows [][]int32   // per position: entries in uneliminated rows
	colVals [][]float64 // values parallel to colRows
	rowCols [][]int32   // per row: positions that may hold an entry (lazily pruned)
	rowCnt  []int32     // per row: live entry count among uneliminated columns
	rowPiv  []bool
	colPiv  []bool
	wVal    []float64 // dense scatter values, indexed by row
	wMark   []int32   // scatter stamps, indexed by row
	posMark []int32   // dedup stamps, indexed by position
	stamp   int32
	qPos    []int32 // pivot-row position list (phase A of each step)
	qVal    []float64
	lRows   []int32 // pivot-column multipliers of the current step
	lMuls   []float64
	// Arenas backing the per-position and per-row slices: carved with tight
	// capacities at every factorization so the whole load performs O(1)
	// allocations. Columns and row lists that gain fill regrow out of the
	// overflow arena below, sized by high-water mark, so steady-state
	// refactorizations of a fill-heavy basis allocate nothing either.
	arR    []int32
	arV    []float64
	arRow  []int32
	ovR    []int32
	ovV    []float64
	ovOff  int // bump pointer into ovR/ovV for the current factorization
	ovRun  int // overflow demand of the current factorization
	ovWant int // high-water overflow demand across factorizations
}

// ovCarve reserves n entries of overflow arena, or reports failure when the
// arena is exhausted this round; either way the demand is recorded so the
// next factorization's arena covers it.
func (w *luWork) ovCarve(n int) (int, bool) {
	w.ovRun += n
	if w.ovRun > w.ovWant {
		w.ovWant = w.ovRun
	}
	if len(w.ovR)-w.ovOff < n {
		return 0, false
	}
	off := w.ovOff
	w.ovOff += n
	return off, true
}

// growCol returns the column's storage regrown with doubled capacity,
// carved from the overflow arena when it still has room.
func (w *luWork) growCol(r []int32, v []float64) ([]int32, []float64) {
	need := 2*cap(r) + 4
	if off, ok := w.ovCarve(need); ok {
		nr := append(w.ovR[off:off:off+need], r...)
		nv := append(w.ovV[off:off:off+need], v...)
		return nr, nv
	}
	nr := make([]int32, len(r), need)
	copy(nr, r)
	nv := make([]float64, len(v), need)
	copy(nv, v)
	return nr, nv
}

// growRowList returns the row's position list regrown with doubled capacity,
// carved from the overflow arena when it still has room.
func (w *luWork) growRowList(l []int32) []int32 {
	need := 2*cap(l) + 4
	if off, ok := w.ovCarve(need); ok {
		return append(w.ovR[off:off:off+need], l...)
	}
	nl := make([]int32, len(l), need)
	copy(nl, l)
	return nl
}

func (w *luWork) init(m int) {
	// Headroom on every per-row reservation: cut loops refactorize with m
	// one larger each episode, and exact sizing would reallocate the whole
	// workspace every time.
	if cap(w.colRows) < m {
		n := m + m/2 - cap(w.colRows)
		w.colRows = append(w.colRows[:cap(w.colRows)], make([][]int32, n)...)
		w.colVals = append(w.colVals[:cap(w.colVals)], make([][]float64, n)...)
		w.rowCols = append(w.rowCols[:cap(w.rowCols)], make([][]int32, n)...)
	}
	w.colRows = w.colRows[:m]
	w.colVals = w.colVals[:m]
	w.rowCols = w.rowCols[:m]
	if cap(w.rowCnt) < m {
		c := m + m/2
		w.rowCnt = make([]int32, c)
		w.rowPiv = make([]bool, c)
		w.colPiv = make([]bool, c)
		w.wVal = make([]float64, c)
		w.wMark = make([]int32, c)
		w.posMark = make([]int32, c)
	}
	w.rowCnt = w.rowCnt[:m]
	w.rowPiv = w.rowPiv[:m]
	w.colPiv = w.colPiv[:m]
	w.wVal = w.wVal[:m]
	w.wMark = w.wMark[:m]
	w.posMark = w.posMark[:m]
	for i := 0; i < m; i++ {
		w.rowCnt[i] = 0
		w.rowPiv[i] = false
		w.colPiv[i] = false
		w.wMark[i] = 0
		w.wMark[i] = 0
		w.posMark[i] = 0
		w.rowCols[i] = w.rowCols[i][:0]
	}
	w.stamp = 0
}

// factorizeSparse builds the sparse LU factors of the current basis and
// clears the update-eta file. Dependent basis columns are repaired in-pass
// by substituting the artificial column of a still-unpivoted row, mirroring
// the dense engine's repair. On success the factors are marked current.
func (s *Solver) factorizeSparse() error {
	m := s.nRows
	w := &s.luw
	w.init(m)
	tot := 0
	for _, col := range s.basis {
		tot += len(s.colR[col])
	}
	s.lu.reserve(m, tot)
	s.lu.reset(m)
	s.etas.reset()
	s.luRepairs = 0

	// Load the basis columns into the active matrix, carving the
	// per-position and per-row slices out of the shared arenas.
	if cap(w.arR) < tot {
		// Same headroom rationale as luFactor.reserve: cut loops grow the
		// basis incrementally between refactorizations.
		c := tot + tot/2
		w.arR = make([]int32, c)
		w.arV = make([]float64, c)
		w.arRow = make([]int32, c)
	}
	w.arR = w.arR[:cap(w.arR)]
	w.arV = w.arV[:cap(w.arV)]
	w.arRow = w.arRow[:cap(w.arRow)]
	if cap(w.ovR) < w.ovWant {
		w.ovR = make([]int32, w.ovWant)
		w.ovV = make([]float64, w.ovWant)
	}
	w.ovOff, w.ovRun = 0, 0
	off := 0
	for pos, col := range s.basis {
		rows, vals := s.colR[col], s.colV[col]
		n := len(rows)
		cr := w.arR[off : off+n : off+n]
		cv := w.arV[off : off+n : off+n]
		copy(cr, rows)
		copy(cv, vals)
		w.colRows[pos], w.colVals[pos] = cr, cv
		off += n
		for _, r := range rows {
			w.rowCnt[r]++
		}
	}
	off = 0
	for r := 0; r < m; r++ {
		n := int(w.rowCnt[r])
		w.rowCols[r] = w.arRow[off : off : off+n]
		off += n
	}
	for pos, col := range s.basis {
		for _, r := range s.colR[col] {
			w.rowCols[r] = append(w.rowCols[r], int32(pos))
		}
	}

	for step := 0; step < m; step++ {
		pr, pc, pIdx := s.luSelectPivot()
		for pc < 0 {
			if err := s.luRepair(); err != nil {
				return err
			}
			pr, pc, pIdx = s.luSelectPivot()
		}
		s.luEliminate(pr, pc, pIdx)
	}
	s.factorOK = true
	// New pivot sequence: the hyper-sparse step indexes and consumer
	// transposes (hypersparse.go) are rebuilt lazily on first use.
	s.hs.transOK = false
	return nil
}

// luSelectPivot scans the uneliminated submatrix for the entry with minimal
// Markowitz merit among entries passing the relative magnitude threshold.
// Merit-zero pivots (singleton rows or columns) are taken immediately. It
// returns (-1, -1, -1) when every remaining column is numerically null.
func (s *Solver) luSelectPivot() (pr, pc, pIdx int) {
	w := &s.luw
	m := s.nRows
	// Fast path: merit-zero pivots found by count alone, no value scans.
	// Basis matrices here are near-triangular (logical columns are
	// singletons; flow columns hold a handful of entries), so almost every
	// step resolves here and the full Markowitz scan only ever sees the
	// small irreducible bump.
	for c := 0; c < m; c++ {
		if w.colPiv[c] || len(w.colRows[c]) != 1 {
			continue
		}
		if math.Abs(w.colVals[c][0]) > pivotTol {
			return int(w.colRows[c][0]), c, 0
		}
	}
	for r := 0; r < m; r++ {
		if w.rowPiv[r] || w.rowCnt[r] != 1 {
			continue
		}
		if pr, pc, pIdx = s.luSingletonRowPivot(r); pc >= 0 {
			return pr, pc, pIdx
		}
	}
	bestMerit := int64(math.MaxInt64)
	bestMag := 0.0
	pr, pc, pIdx = -1, -1, -1
	for c := 0; c < m; c++ {
		if w.colPiv[c] {
			continue
		}
		rows, vals := w.colRows[c], w.colVals[c]
		colMax := 0.0
		for _, v := range vals {
			if a := math.Abs(v); a > colMax {
				colMax = a
			}
		}
		if colMax <= pivotTol {
			continue // numerically null column; repair if everything is
		}
		thr := colMax * markowitzStab
		cc := int64(len(rows) - 1)
		for i, r := range rows {
			a := math.Abs(vals[i])
			if a < thr || a <= pivotTol {
				continue
			}
			merit := cc * int64(w.rowCnt[r]-1)
			if merit < bestMerit || (merit == bestMerit && a > bestMag) {
				bestMerit, bestMag = merit, a
				pr, pc, pIdx = int(r), c, i
			}
		}
		if bestMerit == 0 {
			break // no fill possible; stop searching
		}
	}
	return pr, pc, pIdx
}

// luSingletonRowPivot locates the single live entry of row r (rowCols may
// hold stale references, so each candidate column is verified) and returns
// it as a pivot when it passes the relative stability threshold of its
// column. A singleton row pivot generates no fill: the pivot row has no
// other entries, so no column update is needed beyond the L multipliers.
func (s *Solver) luSingletonRowPivot(r int) (int, int, int) {
	w := &s.luw
	for _, q := range w.rowCols[r] {
		if w.colPiv[q] {
			continue
		}
		rows, vals := w.colRows[q], w.colVals[q]
		idx, colMax := -1, 0.0
		for i, ri := range rows {
			a := math.Abs(vals[i])
			if a > colMax {
				colMax = a
			}
			if int(ri) == r {
				idx = i
			}
		}
		if idx < 0 {
			continue // stale reference
		}
		if a := math.Abs(vals[idx]); a > pivotTol && a >= colMax*markowitzStab {
			return r, int(q), idx
		}
		return -1, -1, -1 // entry exists but is unstable; leave to the full scan
	}
	return -1, -1, -1
}

// luRepair substitutes a nonbasic artificial column for a numerically null
// basis column, keeping the factorization going on a dependent basis. The
// substituted artificial is a row singleton (±1) in a still-unpivoted row,
// so it always yields an acceptable pivot.
func (s *Solver) luRepair() error {
	w := &s.luw
	m := s.nRows
	s.luRepairs++
	if s.luRepairs > m+1 {
		return fmt.Errorf("%w: basis repair did not converge", ErrNumerical)
	}
	// The position to repair: an unpivoted column, preferring the one with
	// the smallest residual magnitude (the most dependent).
	bad, badMax := -1, math.Inf(1)
	for c := 0; c < m; c++ {
		if w.colPiv[c] {
			continue
		}
		colMax := 0.0
		for _, v := range w.colVals[c] {
			if a := math.Abs(v); a > colMax {
				colMax = a
			}
		}
		if colMax < badMax {
			bad, badMax = c, colMax
		}
	}
	if bad < 0 {
		return fmt.Errorf("%w: singular basis: no repairable column", ErrNumerical)
	}
	// The replacement: the artificial of an unpivoted row that is not
	// already basic elsewhere; prefer sparse rows to minimize U fill.
	pick := -1
	var pickCnt int32
	for r := 0; r < m; r++ {
		if w.rowPiv[r] {
			continue
		}
		art := s.artOf[r]
		if p := s.pos[art]; p >= 0 && p != bad {
			continue
		}
		if pick < 0 || w.rowCnt[r] < pickCnt {
			pick, pickCnt = r, w.rowCnt[r]
		}
	}
	if pick < 0 {
		return fmt.Errorf("%w: singular basis: column %d dependent, no repair available", ErrNumerical, s.basis[bad])
	}
	// Swap the dependent column out of the basis and the active matrix.
	old := s.basis[bad]
	art := s.artOf[pick]
	s.pos[old] = -1
	s.basis[bad] = art
	s.pos[art] = bad
	for _, r := range w.colRows[bad] {
		w.rowCnt[r]--
	}
	sign := s.colV[art][0]
	w.colRows[bad] = append(w.colRows[bad][:0], int32(pick))
	w.colVals[bad] = append(w.colVals[bad][:0], sign)
	w.rowCnt[pick]++
	if len(w.rowCols[pick]) == cap(w.rowCols[pick]) {
		w.rowCols[pick] = w.growRowList(w.rowCols[pick])
	}
	w.rowCols[pick] = append(w.rowCols[pick], int32(bad))
	return nil
}

// luEliminate performs one pivot step: records the L multipliers and U row,
// and updates every uneliminated column with an entry in the pivot row.
func (s *Solver) luEliminate(pr, pc, pIdx int) {
	w := &s.luw
	lu := &s.lu
	piv := w.colVals[pc][pIdx]

	// L multipliers from the pivot column; the column leaves the active set.
	w.lRows = w.lRows[:0]
	w.lMuls = w.lMuls[:0]
	for i, r := range w.colRows[pc] {
		w.rowCnt[r]--
		if int(r) == pr {
			continue
		}
		w.lRows = append(w.lRows, r)
		//lint:ignore nanguard luSelectPivot/luRepair guarantee |piv| > pivotTol
		w.lMuls = append(w.lMuls, w.colVals[pc][i]/piv)
	}
	lu.prow = append(lu.prow, int32(pr))
	lu.pcol = append(lu.pcol, int32(pc))
	lu.pval = append(lu.pval, piv)
	lu.lRow = append(lu.lRow, w.lRows...)
	lu.lVal = append(lu.lVal, w.lMuls...)
	lu.lPtr = append(lu.lPtr, int32(len(lu.lRow)))
	w.colPiv[pc] = true
	w.rowPiv[pr] = true
	w.colRows[pc] = w.colRows[pc][:0]
	w.colVals[pc] = w.colVals[pc][:0]

	// Phase A: the live pivot-row entries among uneliminated columns.
	// rowCols may hold stale or duplicate positions; dedupe with a stamp
	// and verify against the column itself.
	w.stamp++
	sA := w.stamp
	w.qPos = w.qPos[:0]
	w.qVal = w.qVal[:0]
	for _, q := range w.rowCols[pr] {
		if w.colPiv[q] || w.posMark[q] == sA {
			continue
		}
		w.posMark[q] = sA
		for i, r := range w.colRows[q] {
			if int(r) == pr {
				w.qPos = append(w.qPos, q)
				w.qVal = append(w.qVal, w.colVals[q][i])
				break
			}
		}
	}
	w.rowCols[pr] = w.rowCols[pr][:0]

	// Phase B: update each such column and record its U entry.
	for qi, q := range w.qPos {
		f := w.qVal[qi]
		lu.uPos = append(lu.uPos, q)
		lu.uVal = append(lu.uVal, f)
		s.luUpdateColumn(int(q), pr, f)
	}
	lu.uPtr = append(lu.uPtr, int32(len(lu.uPos)))
}

// luUpdateColumn applies col[q] -= (f/piv) * pivotColumn restricted to
// uneliminated rows, removing the pivot-row entry and tracking fill.
func (s *Solver) luUpdateColumn(q, pr int, f float64) {
	w := &s.luw
	w.stamp++
	st := w.stamp
	rows, vals := w.colRows[q], w.colVals[q]
	// Scatter the column (minus the pivot-row entry) into the workspace.
	for i, r := range rows {
		if int(r) == pr {
			continue
		}
		w.wVal[r] = vals[i]
		w.wMark[r] = st
	}
	w.rowCnt[pr]--
	// Apply the elimination.
	for t, r := range w.lRows {
		if w.wMark[r] == st {
			w.wVal[r] -= w.lMuls[t] * f
		} else {
			w.wVal[r] = -w.lMuls[t] * f
			w.wMark[r] = st
		}
	}
	// Gather back: previously present rows first (consuming their marks),
	// then surviving L rows are fill.
	outR := rows[:0]
	outV := vals[:0]
	for _, r := range rows {
		if int(r) == pr || w.wMark[r] != st {
			continue
		}
		v := w.wVal[r]
		w.wMark[r] = 0
		//lint:ignore floatcmp exact cancellation removes the entry structurally
		if v == 0 {
			w.rowCnt[r]--
			continue
		}
		outR = append(outR, r)
		outV = append(outV, v)
	}
	for _, r := range w.lRows {
		if w.wMark[r] != st {
			continue // consumed above: was already present
		}
		v := w.wVal[r]
		w.wMark[r] = 0
		//lint:ignore floatcmp exact zero fill never materializes
		if v == 0 {
			continue
		}
		if len(outR) == cap(outR) {
			outR, outV = w.growCol(outR, outV)
		}
		outR = append(outR, r)
		outV = append(outV, v)
		w.rowCnt[r]++
		if len(w.rowCols[r]) == cap(w.rowCols[r]) {
			w.rowCols[r] = w.growRowList(w.rowCols[r])
		}
		w.rowCols[r] = append(w.rowCols[r], int32(q))
	}
	w.colRows[q] = outR
	w.colVals[q] = outV
}

// ftranVec solves B u = b for a dense row-space right-hand side b (which is
// destroyed) into the position-space vector out, applying the LU factors and
// then the update ops. Rows beyond lu.m were added by AddCut after the last
// factorization; their components bypass the factors and are consumed by the
// corresponding border ops.
func (s *Solver) ftranVec(b, out []float64) {
	lu := &s.lu
	m := lu.m
	for t := 0; t < m; t++ {
		br := b[lu.prow[t]]
		//lint:ignore floatcmp exact zero skips a structurally empty L step
		if br == 0 {
			continue
		}
		rows := lu.lRow[lu.lPtr[t]:lu.lPtr[t+1]]
		vals := lu.lVal[lu.lPtr[t]:lu.lPtr[t+1]]
		for k, r := range rows {
			b[r] -= vals[k] * br
		}
	}
	for t := m - 1; t >= 0; t-- {
		v := b[lu.prow[t]]
		poss := lu.uPos[lu.uPtr[t]:lu.uPtr[t+1]]
		vals := lu.uVal[lu.uPtr[t]:lu.uPtr[t+1]]
		for k, p := range poss {
			v -= vals[k] * out[p]
		}
		//lint:ignore nanguard factorization accepts only |pval| > pivotTol pivots
		out[lu.pcol[t]] = v / lu.pval[t]
	}
	for r := m; r < len(out); r++ {
		out[r] = b[r]
	}
	s.etas.applyFtran(out)
}

// btranEta solves y^T = c^T Binv for a position-space vector c (held in w,
// which is destroyed): update etas transposed in reverse order, then U^T
// forward and L^T backward through the factors. The result, indexed by
// constraint row, lands in (and aliases) the solver's rho scratch.
func (s *Solver) btranEta(w []float64) []float64 {
	s.etas.applyBtran(w)
	lu := &s.lu
	m := lu.m
	z := s.growRho()
	// Border rows (added after the last factorization) bypass the factors:
	// their solution components were finalized by the reversed border ops.
	for r := m; r < len(z); r++ {
		z[r] = w[r]
	}
	for t := 0; t < m; t++ {
		//lint:ignore nanguard factorization accepts only |pval| > pivotTol pivots
		zt := w[lu.pcol[t]] / lu.pval[t]
		z[lu.prow[t]] = zt
		//lint:ignore floatcmp exact zero skips a structurally empty U^T step
		if zt == 0 {
			continue
		}
		poss := lu.uPos[lu.uPtr[t]:lu.uPtr[t+1]]
		vals := lu.uVal[lu.uPtr[t]:lu.uPtr[t+1]]
		for k, p := range poss {
			w[p] -= vals[k] * zt
		}
	}
	for t := m - 1; t >= 0; t-- {
		var acc float64
		rows := lu.lRow[lu.lPtr[t]:lu.lPtr[t+1]]
		vals := lu.lVal[lu.lPtr[t]:lu.lPtr[t+1]]
		for k, r := range rows {
			acc += vals[k] * z[r]
		}
		//lint:ignore floatcmp exact zero skips a no-op correction
		if acc != 0 {
			z[lu.prow[t]] -= acc
		}
	}
	return z
}

// ftranEta computes u = Binv * A[col] through the factors and eta file,
// exploiting the column's sparsity: the scratch vectors are re-zeroed over
// their tracked patterns and the triangular solves follow the symbolic
// reach of the nonzeros (hypersparse.go).
func (s *Solver) ftranEta(col int) []float64 {
	b := s.growRowSp()
	s.clearScratch(b, &s.hs.rowSpPat, &s.hs.rowSpDirty)
	for t, ri := range s.colR[col] {
		b[ri] = s.colV[col][t]
		s.hs.rowSpPat = append(s.hs.rowSpPat, ri)
	}
	u := s.growU()
	s.ftranVecSparse(b, u) // writes u in full on every path
	return u
}
