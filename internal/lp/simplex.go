package lp

import (
	"context"
	"math"

	"tcr/internal/par"
)

// Devex pricing parameters.
const (
	// devexCandMax caps the partial-pricing candidate list: pricing scores
	// only this many attractive columns per iteration instead of scanning
	// every column, refilling by a rotating full scan when the list drains.
	devexCandMax = 96
	// devexWeightReset triggers a reference-framework reset when the
	// pivot's weight ratio explodes, which is Devex's standard guard
	// against weights drifting meaninglessly large.
	devexWeightReset = 1e12
	// devexParMin is the smallest candidate list worth fanning out over
	// PriceWorkers goroutines; below it the goroutine handoff costs more
	// than the column scores.
	devexParMin = 32
)

// primalFromBasis runs the phase-2 primal simplex from the current basis,
// which must be primal feasible.
func (s *Solver) primalFromBasis() (Status, error) {
	return s.primal(s.costP)
}

// primal drives the revised primal simplex to optimality for the given cost
// vector. Degeneracy is handled by perturbation: when the inner loop stalls
// (many pivots without objective progress), the basic values receive tiny
// random positive shifts, which makes ratio tests decisive again. Because
// the shifts change only the right-hand side, reduced costs are untouched;
// after the perturbed problem solves, the true values are restored and any
// small primal infeasibility is repaired with the dual simplex (the basis
// is dual feasible by construction), iterating a bounded number of times
// with Bland's rule as the final resort.
func (s *Solver) primal(costs []float64) (Status, error) {
	for pass := 0; pass < 8; pass++ {
		st, perturbed, err := s.primalInner(costs, pass >= 3 || s.forceBland)
		if err != nil || st != Optimal {
			return st, err
		}
		if !perturbed {
			return Optimal, nil
		}
		// Restore the true right-hand side and repair feasibility.
		s.recomputeXB()
		worst := 0.0
		for _, v := range s.xB {
			if v < worst {
				worst = v
			}
		}
		if s.hasBounds {
			for r, v := range s.xB {
				if over := v - s.ub[s.basis[r]]; over > 0 && -over < worst {
					worst = -over
				}
			}
		}
		if worst >= -primalTol {
			return Optimal, nil
		}
		st, err = s.dualInner(costs)
		if err != nil {
			return 0, err
		}
		if st != Optimal {
			return st, nil
		}
		// Loop: the dual repair may expose further primal work.
	}
	return IterLimit, nil
}

// initDevex resets the Devex reference framework: all weights 1 (the current
// basis becomes the reference) and an empty candidate list. The rotating
// rebuild cursor deliberately survives, so successive runs keep sweeping the
// column range instead of re-scanning the same prefix.
func (s *Solver) initDevex(n int) {
	if cap(s.devexW) < n {
		s.devexW = make([]float64, n)
	}
	s.devexW = s.devexW[:n]
	for j := range s.devexW {
		s.devexW[j] = 1
	}
	s.cand = s.cand[:0]
	if s.candCursor >= n {
		s.candCursor = 0
	}
	s.chaos.corruptDevex(s.devexW)
}

// prices reports whether nonbasic column j prices out for the primal under
// duals y: an at-lower column improves when its reduced cost is negative, an
// at-upper column when it is positive (decreasing the variable then improves
// the objective). The unbounded-solver path is bit-for-bit the legacy
// d < -dualTol test.
func (s *Solver) prices(costs, y []float64, j int) (float64, bool) {
	d := s.reducedCost(costs, y, j)
	if s.hasBounds && s.atUpper[j] {
		return d, d > dualTol
	}
	return d, d < -dualTol
}

// scoreWorkers resolves how many goroutines a candidate-list pass may use:
// PriceWorkers when the list is long enough to amortize the handoff, 1
// otherwise.
func (s *Solver) scoreWorkers() int {
	if s.PriceWorkers > 1 && len(s.cand) >= devexParMin {
		return s.PriceWorkers
	}
	return 1
}

// scoreCand evaluates every candidate's reduced cost into the per-index
// slots priceD/priceOK on workers goroutines. Scoring reads only the fixed
// duals and the immutable columns, and each task writes its own slot, so
// the slots — and everything the sequential reduction derives from them —
// are identical for every worker count.
func (s *Solver) scoreCand(costs, y []float64, workers int) {
	n := len(s.cand)
	if cap(s.priceD) < n {
		s.priceD = make([]float64, n)
		s.priceOK = make([]bool, n)
	}
	s.priceD, s.priceOK = s.priceD[:n], s.priceOK[:n]
	//lint:ignore errdrop structurally nil: the context is Background and the tasks never fail
	_ = par.Do(context.Background(), n, workers, func(i int) error {
		j := s.cand[i]
		if s.pos[j] >= 0 || s.barred[j] {
			s.priceOK[i] = false
			return nil
		}
		s.priceD[i], s.priceOK[i] = s.prices(costs, y, j)
		return nil
	})
}

// priceDevex picks the entering column by Devex score d_j^2 / w_j, pricing
// only the candidate list. Candidates whose reduced cost went nonnegative
// are dropped; when the list drains, it is rebuilt by a rotating scan that
// stops after devexCandMax attractive columns. Returns -1 when no column
// prices out, which callers must confirm against exactly recomputed duals.
//
// With PriceWorkers > 1 the candidate scores are computed in parallel and
// reduced sequentially in list order — the same first-wins tie-break as the
// inline loop, hence the same entering column bit for bit.
func (s *Solver) priceDevex(costs, y []float64) int {
	enter := -1
	best := 0.0
	out := s.cand[:0]
	if w := s.scoreWorkers(); w > 1 {
		s.scoreCand(costs, y, w)
		for i, j := range s.cand {
			if !s.priceOK[i] {
				continue
			}
			out = append(out, j)
			d := s.priceD[i]
			//lint:ignore nanguard devex weights are maintained >= 1
			if sc := d * d / s.devexW[j]; sc > best {
				best, enter = sc, j
			}
		}
	} else {
		for _, j := range s.cand {
			if s.pos[j] >= 0 || s.barred[j] {
				continue
			}
			d, ok := s.prices(costs, y, j)
			if !ok {
				continue
			}
			out = append(out, j)
			//lint:ignore nanguard devex weights are maintained >= 1
			if sc := d * d / s.devexW[j]; sc > best {
				best, enter = sc, j
			}
		}
	}
	s.cand = out
	if enter >= 0 {
		return enter
	}
	n := len(costs)
	for t := 0; t < n && len(s.cand) < devexCandMax; t++ {
		j := s.candCursor
		s.candCursor++
		if s.candCursor == n {
			s.candCursor = 0
		}
		if s.pos[j] >= 0 || s.barred[j] {
			continue
		}
		d, ok := s.prices(costs, y, j)
		if !ok {
			continue
		}
		s.cand = append(s.cand, j)
		//lint:ignore nanguard devex weights are maintained >= 1
		if sc := d * d / s.devexW[j]; sc > best {
			best, enter = sc, j
		}
	}
	return enter
}

// updateDevex applies the Devex reference-weight update after a pivot:
// entering column enter pivoted at row value alpha, rho the pre-pivot BTRAN
// row of the leaving position, leaveVar the variable that left the basis.
// Only candidate-list columns are updated — the classic partial-Devex
// compromise: weights elsewhere go stale but resync at the next framework
// reset.
func (s *Solver) updateDevex(enter, leaveVar int, alpha float64, rho []float64) {
	//lint:ignore nanguard the ratio test selects |alpha| > pivotTol
	r2 := s.devexW[enter] / (alpha * alpha)
	if r2 > devexWeightReset {
		for j := range s.devexW {
			s.devexW[j] = 1
		}
		return
	}
	// Per-candidate weight updates are independent (candidate entries are
	// unique, each task writes only devexW[j]), so the same fan-out that
	// scores candidates applies here.
	if w := s.scoreWorkers(); w > 1 {
		//lint:ignore errdrop structurally nil: the context is Background and the tasks never fail
		_ = par.Do(context.Background(), len(s.cand), w, func(i int) error {
			j := s.cand[i]
			if j == enter {
				return nil
			}
			aj := s.dotCol(rho, j)
			if nw := aj * aj * r2; nw > s.devexW[j] {
				s.devexW[j] = nw
			}
			return nil
		})
	} else {
		for _, j := range s.cand {
			if j == enter {
				continue
			}
			aj := s.dotCol(rho, j)
			if nw := aj * aj * r2; nw > s.devexW[j] {
				s.devexW[j] = nw
			}
		}
	}
	if r2 < 1 {
		r2 = 1
	}
	s.devexW[leaveVar] = r2
}

// primalInner is one run of the primal simplex. It reports whether the
// basic values were perturbed (in which case the caller must restore and
// repair). blandOnly forces Bland's rule from the start (termination
// guarantee of last resort).
func (s *Solver) primalInner(costs []float64, blandOnly bool) (Status, bool, error) {
	m := s.nRows
	budget := s.maxIters()
	stallLimit := m/2 + 100
	sinceImprove := 0
	bland := blandOnly
	perturbed := false
	rng := uint64(0x9e3779b97f4a7c15)

	// The dual values y = c_B B^-1 are maintained incrementally across
	// pivots (an O(m) update) and recomputed from scratch periodically and
	// at refreshes to wash out drift.
	y := s.computeY(costs)
	s.initDevex(len(costs))

	for iter := 0; ; iter++ {
		if s.iterations >= budget {
			return IterLimit, perturbed, nil
		}
		// Context deadline as iteration budget, polled cheaply.
		if iter%128 == 0 && s.budgetUp() {
			return IterLimit, perturbed, nil
		}
		// Periodic accuracy probe and refresh.
		if iter%128 == 127 {
			if s.residual() > residCheck && !perturbed {
				if err := s.refresh(); err != nil {
					return 0, perturbed, err
				}
			}
			y = s.computeY(costs)
		}

		// Pricing: Devex with partial pricing, or first-index under Bland.
		enter := -1
		if bland {
			for j := range costs {
				if s.pos[j] >= 0 || s.barred[j] {
					continue
				}
				if _, ok := s.prices(costs, y, j); ok {
					enter = j
					break
				}
			}
		} else {
			enter = s.priceDevex(costs, y)
		}
		if enter < 0 {
			// Confirm optimality against exactly recomputed duals; the
			// incremental y may have drifted.
			y = s.computeY(costs)
			still := -1
			for j := range costs {
				if s.pos[j] >= 0 || s.barred[j] {
					continue
				}
				if _, ok := s.prices(costs, y, j); ok {
					still = j
					break
				}
			}
			if still < 0 {
				return Optimal, perturbed, nil
			}
			if !bland {
				// Seed the candidate list so the next pricing round makes
				// progress instead of re-scanning from the cursor.
				s.cand = append(s.cand[:0], still)
			}
			continue
		}
		dEnter := s.reducedCost(costs, y, enter)
		// dir is the entering variable's direction of travel: +1 increasing
		// from its lower bound, -1 decreasing from its upper bound.
		dir := 1.0
		if s.hasBounds && s.atUpper[enter] {
			dir = -1
		}

		u := s.ftran(enter)

		// Ratio test: largest step theta (the entering variable's travel
		// distance) keeping every basic value inside its box. A basic
		// variable blocks at its lower bound when it decreases (dir*u > 0)
		// and at its finite upper bound when it increases (dir*u < 0).
		leave := -1
		leaveUp := false
		theta := math.Inf(1)
		for r := 0; r < m; r++ {
			g := dir * u[r]
			var t float64
			var up bool
			if g > pivotTol {
				t = s.xB[r] / g
				if t < 0 {
					t = 0
				}
			} else if s.hasBounds && g < -pivotTol {
				bu := s.ub[s.basis[r]]
				if math.IsInf(bu, 1) {
					continue
				}
				t = (bu - s.xB[r]) / -g
				if t < 0 {
					t = 0
				}
				up = true
			} else {
				continue
			}
			if t < theta-ratioTieTol || (t <= theta+ratioTieTol && (leave < 0 ||
				(bland && s.basis[r] < s.basis[leave]) ||
				(!bland && math.Abs(u[r]) > math.Abs(u[leave])))) {
				theta, leave, leaveUp = t, r, up
			}
		}
		if s.hasBounds {
			// Bound flip: the entering variable reaches its own opposite
			// bound before any basic variable blocks. The basis is untouched
			// — translate the variable across its box, update the basic
			// values, and re-price (no pivot, no dual change).
			if ubE := s.ub[enter]; ubE < theta {
				//lint:ignore floatcmp exact zero only skips a no-op vector update
				if ubE != 0 {
					for i := 0; i < m; i++ {
						s.xB[i] -= dir * ubE * u[i]
					}
				}
				s.atUpper[enter] = !s.atUpper[enter]
				s.iterations++
				if ubE > degenStepTol {
					sinceImprove = 0
				} else {
					sinceImprove++
				}
				continue
			}
		}
		if leave < 0 {
			// Phantom-ray guard: a "ray" that grows a basic artificial is
			// no certificate — artificials cost nothing in phase 2 and
			// absorb a row violation as they grow. Pivot the artificial
			// out at step zero instead of riding the ray.
			for r := 0; r < m; r++ {
				if dir*u[r] < -pivotTol && s.kind[s.basis[r]] == kindArtificial {
					theta, leave, leaveUp = 0, r, false
					break
				}
			}
		}
		if leave < 0 {
			// Before certifying unboundedness, re-check the entering
			// column against exactly recomputed duals: drifted incremental
			// y can misread a non-descent column as improving, and a
			// genuine ray along it would not prove anything.
			y = s.computeY(costs)
			if _, ok := s.prices(costs, y, enter); !ok {
				continue // pricing was misled; re-price with fresh duals
			}
			if s.engine == EngineEta && s.etas.count() > 0 {
				// The ray was derived through the product-form file, which
				// may have drifted; certify unboundedness only from fresh
				// factors. Rebuild and re-derive — a genuine ray survives
				// the refresh and exits on the next pass with no etas.
				if err := s.refresh2(perturbed); err != nil {
					return 0, perturbed, err
				}
				y = s.computeY(costs)
				continue
			}
			return Unbounded, perturbed, nil
		}

		alpha := u[leave]
		leaveVar := s.basis[leave]
		// rho = row `leave` of the pre-pivot inverse: it feeds both the
		// incremental dual update and the Devex weight update, and must be
		// captured before the pivot rewrites the representation.
		rho := s.btranRow(leave)
		// The entering variable's new value and the basic-update step: with
		// dir = +1 both are theta (the legacy pivot exactly); entering from
		// the upper bound the variable lands at ub - theta while the basics
		// move by -theta*u.
		newVal := theta
		if s.hasBounds && s.atUpper[enter] {
			newVal = s.ub[enter] - theta
		}
		if err := s.pivot(enter, leave, u, dir*theta, newVal); err != nil {
			return 0, perturbed, err
		}
		if s.hasBounds && leaveUp {
			s.atUpper[leaveVar] = true
		}
		s.iterations++
		if s.basisRepaired {
			// A refactorization inside the pivot repaired (swapped) basis
			// columns; incremental state is void.
			s.basisRepaired = false
			y = s.computeY(costs)
		} else {
			// Incremental dual update: the new inverse's leave row is
			// rho/alpha, so y += dEnter * rho/alpha zeroes the entering
			// column's reduced cost.
			//lint:ignore nanguard the ratio test selects |alpha| > pivotTol
			step := dEnter / alpha
			//lint:ignore floatcmp exact zero only skips a no-op vector update
			if step != 0 {
				for i := range y {
					y[i] += step * rho[i]
				}
			}
			if !bland {
				s.updateDevex(enter, leaveVar, alpha, rho)
			}
		}

		// Stall handling: a stall is a long run of *degenerate* pivots
		// (zero step length) -- the direct cycling signal, insensitive to
		// the tiny objective jitter. Perturb the basic values once to make
		// ratio tests decisive; if degeneracy persists, fall back to
		// Bland's rule.
		if theta > degenStepTol {
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove > stallLimit {
				sinceImprove = 0
				if !perturbed && !blandOnly {
					perturbed = true
					mag := xbPerturb
					if s.perturbScale > 1 {
						// Ladder escalation (recover.go) amplifies the
						// anti-cycling shift along with the cost jitter.
						mag *= s.perturbScale
					}
					for r := range s.xB {
						rng = rng*6364136223846793005 + 1442695040888963407
						f := float64(rng>>11) / (1 << 53)
						s.xB[r] += mag * (0.5 + f)
					}
				} else if !bland {
					if err := s.refresh2(perturbed); err != nil {
						return 0, perturbed, err
					}
					y = s.computeY(costs)
					bland = true
				}
			}
		}
	}
}

// refresh2 refactorizes; when the basic values are perturbed it leaves xB
// untouched (refactorizing would silently undo the perturbation).
func (s *Solver) refresh2(skipXB bool) error {
	if err := s.factorize(); err != nil {
		return err
	}
	if !skipXB {
		s.recomputeXB()
	}
	return nil
}

// dualSolve is the warm-start entry point after cuts or RHS changes: dual
// simplex to feasibility, then a primal polish.
func (s *Solver) dualSolve() (Status, error) {
	st, err := s.dualInner(s.costP)
	if err != nil || st != Optimal {
		return st, err
	}
	return s.primal(s.costP)
}

// dualInner runs the revised dual simplex until primal feasibility, dual
// unboundedness (primal infeasible), or a sub-budget intended to fail fast
// into a cold solve. Bounded variables use the simple (no bound-flip
// ratio test) variant: an entering variable may overshoot its own upper
// bound, and the next iteration repairs it by selecting that row as
// leaving-above-upper.
func (s *Solver) dualInner(costs []float64) (Status, error) {
	m := s.nRows
	budget := s.maxIters()
	subBudget := s.iterations + 20000 + 20*m
	if subBudget > budget {
		subBudget = budget
	}
	bland := s.forceBland
	sinceProgress := 0
	stallLimit := 2*m + 200
	y := s.computeY(costs)

	for iter := 0; ; iter++ {
		if s.iterations >= subBudget {
			return IterLimit, nil
		}
		// Context deadline as iteration budget, polled cheaply.
		if iter%128 == 0 && s.budgetUp() {
			return IterLimit, nil
		}
		if iter%128 == 127 {
			if s.residual() > residCheck {
				if err := s.refresh(); err != nil {
					return 0, err
				}
			}
			y = s.computeY(costs)
		}

		// Leaving row: worst box violation — a basic value below zero (exits
		// to its lower bound) or above its finite upper bound (exits to the
		// bound). The unbounded-solver scan reduces exactly to the legacy
		// most-negative selection.
		leave := -1
		leaveUp := false
		worst := primalTol
		for r := 0; r < m; r++ {
			if v := -s.xB[r]; v > worst {
				worst, leave, leaveUp = v, r, false
			} else if s.hasBounds {
				if over := s.xB[r] - s.ub[s.basis[r]]; over > worst {
					worst, leave, leaveUp = over, r, true
				}
			}
			if bland && leave >= 0 {
				break
			}
		}
		if leave < 0 {
			return Optimal, nil // primal feasible
		}
		// sgn orients the leaving row: +1 repairs a below-lower violation
		// (the basic value must rise), -1 an above-upper one (it must fall).
		sgn := 1.0
		if leaveUp {
			sgn = -1
		}

		// rho = the leaving row of the inverse, via BTRAN: alpha_j for any
		// column is then a sparse dot against it.
		rho := s.btranRow(leave)

		// Entering column: among nonbasic j whose admissible move (dirj = +1
		// off the lower bound, -1 off the upper) pushes the leaving value the
		// right way (effective alpha < 0), minimize the dual ratio
		// |d_j| / -alphaEff. With no bounds this is the legacy scan verbatim.
		enter := -1
		best := math.Inf(1)
		var bestAlpha float64 // effective alpha of the incumbent
		for j := range costs {
			if s.pos[j] >= 0 || s.barred[j] {
				continue
			}
			alpha := s.dotCol(rho, j)
			dirj := 1.0
			if s.hasBounds && s.atUpper[j] {
				dirj = -1
			}
			ae := sgn * dirj * alpha
			if ae >= -pivotTol {
				continue
			}
			d := s.reducedCost(costs, y, j)
			if dirj < 0 {
				d = -d // at-upper: dual feasibility keeps d <= 0
			}
			if d < 0 {
				d = 0 // tolerate tiny dual infeasibility
			}
			ratio := d / -ae
			if ratio < best-ratioTieTol ||
				(ratio <= best+ratioTieTol && (enter < 0 ||
					(bland && j < enter) ||
					(!bland && -ae > -bestAlpha))) {
				best, enter, bestAlpha = ratio, j, ae
			}
		}
		if enter < 0 {
			// Before certifying infeasibility, re-derive the dual ray on
			// fresh factors: the leaving row was computed through the eta
			// file, and a drifted one can hide every admissible entering
			// column. On exact factors the claim stands or the pivot found.
			if s.etas.count() > 0 {
				if err := s.refresh(); err != nil {
					return 0, err
				}
				y = s.computeY(costs)
				continue
			}
			return Infeasible, nil
		}

		dEnter := s.reducedCost(costs, y, enter)
		dirj := 1.0
		if s.hasBounds && s.atUpper[enter] {
			dirj = -1
		}
		u := s.ftran(enter)
		alpha := u[leave]
		if math.Abs(alpha) <= pivotTol {
			// The entering scan saw an admissible alpha_enter through BTRAN,
			// but the FTRAN image disagrees: the product-form update file
			// has drifted at the tolerance edge. Pivoting here would divide
			// by ~0 and poison the basis; rebuild the factors and re-price.
			// On fresh factors the two passes agree to rounding, so a
			// persistent mismatch is a genuine numerical failure.
			if s.etas.count() == 0 {
				return 0, ErrNumerical
			}
			if err := s.refresh(); err != nil {
				return 0, err
			}
			y = s.computeY(costs)
			continue
		}
		// The leaving variable travels to its exit bound; the entering
		// variable moves t >= 0 from its own bound along dirj. With no
		// bounds: target 0, dirj +1 — the legacy theta = xB/alpha exactly.
		leaveVar := s.basis[leave]
		target := 0.0
		if leaveUp {
			target = s.ub[leaveVar]
		}
		//lint:ignore nanguard the guard above bounds alpha away from 0
		t := (s.xB[leave] - target) / (dirj * alpha)
		newVal := t
		if s.hasBounds && s.atUpper[enter] {
			newVal = s.ub[enter] - t
		}
		if err := s.pivot(enter, leave, u, dirj*t, newVal); err != nil {
			return 0, err
		}
		if s.hasBounds && leaveUp {
			s.atUpper[leaveVar] = true
		}
		s.iterations++
		if s.basisRepaired {
			s.basisRepaired = false
			y = s.computeY(costs)
		} else {
			//lint:ignore nanguard the entering scan selects alpha < -pivotTol
			step := dEnter / alpha
			//lint:ignore floatcmp exact zero only skips a no-op vector update
			if step != 0 {
				for i := range y {
					y[i] += step * rho[i]
				}
			}
		}

		sinceProgress++
		if sinceProgress > stallLimit {
			bland = true
		}
	}
}
