package lp

import "math"

// primalFromBasis runs the phase-2 primal simplex from the current basis,
// which must be primal feasible.
func (s *Solver) primalFromBasis() (Status, error) {
	return s.primal(s.costP)
}

// primal drives the revised primal simplex to optimality for the given cost
// vector. Degeneracy is handled by perturbation: when the inner loop stalls
// (many pivots without objective progress), the basic values receive tiny
// random positive shifts, which makes ratio tests decisive again. Because
// the shifts change only the right-hand side, reduced costs are untouched;
// after the perturbed problem solves, the true values are restored and any
// small primal infeasibility is repaired with the dual simplex (the basis
// is dual feasible by construction), iterating a bounded number of times
// with Bland's rule as the final resort.
func (s *Solver) primal(costs []float64) (Status, error) {
	for pass := 0; pass < 8; pass++ {
		st, perturbed, err := s.primalInner(costs, pass >= 3)
		if err != nil || st != Optimal {
			return st, err
		}
		if !perturbed {
			return Optimal, nil
		}
		// Restore the true right-hand side and repair feasibility.
		s.recomputeXB()
		worst := 0.0
		for _, v := range s.xB {
			if v < worst {
				worst = v
			}
		}
		if worst >= -primalTol {
			return Optimal, nil
		}
		st, err = s.dualInner(costs)
		if err != nil {
			return 0, err
		}
		if st != Optimal {
			return st, nil
		}
		// Loop: the dual repair may expose further primal work.
	}
	return IterLimit, nil
}

// primalInner is one run of the primal simplex. It reports whether the
// basic values were perturbed (in which case the caller must restore and
// repair). blandOnly forces Bland's rule from the start (termination
// guarantee of last resort).
func (s *Solver) primalInner(costs []float64, blandOnly bool) (Status, bool, error) {
	m := s.nRows
	budget := s.maxIters()
	stallLimit := m/2 + 100
	sinceImprove := 0
	bland := blandOnly
	perturbed := false
	rng := uint64(0x9e3779b97f4a7c15)

	// The dual values y = c_B B^-1 are maintained incrementally across
	// pivots (an O(m) update) and recomputed from scratch periodically and
	// at refreshes to wash out drift.
	y := s.computeY(costs)

	for iter := 0; ; iter++ {
		if s.iterations >= budget {
			return IterLimit, perturbed, nil
		}
		// Periodic accuracy probe and refresh.
		if iter%128 == 127 {
			if s.residual() > residCheck && !perturbed {
				if err := s.refresh(); err != nil {
					return 0, perturbed, err
				}
			}
			y = s.computeY(costs)
		}

		// Pricing.
		enter := -1
		bestD := -dualTol
		for j := range costs {
			if s.pos[j] >= 0 || s.barred[j] {
				continue
			}
			d := s.reducedCost(costs, y, j)
			if bland {
				if d < -dualTol {
					enter = j
					break
				}
				continue
			}
			if d < bestD {
				bestD, enter = d, j
			}
		}
		if enter < 0 {
			// Confirm optimality against exactly recomputed duals; the
			// incremental y may have drifted.
			y = s.computeY(costs)
			still := -1
			for j := range costs {
				if s.pos[j] >= 0 || s.barred[j] {
					continue
				}
				if s.reducedCost(costs, y, j) < -dualTol {
					still = j
					break
				}
			}
			if still < 0 {
				return Optimal, perturbed, nil
			}
			continue
		}
		dEnter := s.reducedCost(costs, y, enter)

		u := s.ftran(enter)

		// Ratio test: largest step theta keeping xB >= 0.
		leave := -1
		theta := math.Inf(1)
		for r := 0; r < m; r++ {
			if u[r] <= pivotTol {
				continue
			}
			t := s.xB[r] / u[r]
			if t < 0 {
				t = 0
			}
			if t < theta-ratioTieTol || (t <= theta+ratioTieTol && (leave < 0 ||
				(bland && s.basis[r] < s.basis[leave]) ||
				(!bland && math.Abs(u[r]) > math.Abs(u[leave])))) {
				theta, leave = t, r
			}
		}
		if leave < 0 {
			return Unbounded, perturbed, nil
		}

		s.pivot(enter, leave, u, theta)
		s.iterations++
		// Incremental dual update: zero the entering column's reduced cost.
		//lint:ignore floatcmp exact zero only skips a no-op vector update
		if dEnter != 0 {
			lrow := s.binv[leave]
			for i := range y {
				y[i] += dEnter * lrow[i]
			}
		}

		// Stall handling: a stall is a long run of *degenerate* pivots
		// (zero step length) -- the direct cycling signal, insensitive to
		// the tiny objective jitter. Perturb the basic values once to make
		// ratio tests decisive; if degeneracy persists, fall back to
		// Bland's rule.
		if theta > degenStepTol {
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove > stallLimit {
				sinceImprove = 0
				if !perturbed && !blandOnly {
					perturbed = true
					for r := range s.xB {
						rng = rng*6364136223846793005 + 1442695040888963407
						f := float64(rng>>11) / (1 << 53)
						s.xB[r] += xbPerturb * (0.5 + f)
					}
				} else if !bland {
					if err := s.refresh2(perturbed); err != nil {
						return 0, perturbed, err
					}
					y = s.computeY(costs)
					bland = true
				}
			}
		}
	}
}

// refresh2 refactorizes; when the basic values are perturbed it leaves xB
// untouched (refactorizing would silently undo the perturbation).
func (s *Solver) refresh2(skipXB bool) error {
	if err := s.factorize(); err != nil {
		return err
	}
	if !skipXB {
		s.recomputeXB()
	}
	return nil
}

// dualSolve is the warm-start entry point after cuts or RHS changes: dual
// simplex to feasibility, then a primal polish.
func (s *Solver) dualSolve() (Status, error) {
	st, err := s.dualInner(s.costP)
	if err != nil || st != Optimal {
		return st, err
	}
	return s.primal(s.costP)
}

// dualInner runs the revised dual simplex until primal feasibility, dual
// unboundedness (primal infeasible), or a sub-budget intended to fail fast
// into a cold solve.
func (s *Solver) dualInner(costs []float64) (Status, error) {
	m := s.nRows
	budget := s.maxIters()
	subBudget := s.iterations + 20000 + 20*m
	if subBudget > budget {
		subBudget = budget
	}
	bland := false
	sinceProgress := 0
	stallLimit := 2*m + 200
	y := s.computeY(costs)

	for iter := 0; ; iter++ {
		if s.iterations >= subBudget {
			return IterLimit, nil
		}
		if iter%128 == 127 {
			if s.residual() > residCheck {
				if err := s.refresh(); err != nil {
					return 0, err
				}
			}
			y = s.computeY(costs)
		}

		// Leaving row: most negative basic value.
		leave := -1
		worst := -primalTol
		for r := 0; r < m; r++ {
			if s.xB[r] < worst {
				worst, leave = s.xB[r], r
			}
			if bland && leave >= 0 {
				break
			}
		}
		if leave < 0 {
			return Optimal, nil // primal feasible
		}

		brow := s.binv[leave]

		// Entering column: among alpha_j < 0 (so increasing x_j raises
		// the leaving basic value), minimize d_j / -alpha_j.
		enter := -1
		best := math.Inf(1)
		var bestAlpha float64
		for j := range costs {
			if s.pos[j] >= 0 || s.barred[j] {
				continue
			}
			var alpha float64
			for t, ri := range s.colR[j] {
				alpha += brow[ri] * s.colV[j][t]
			}
			if alpha >= -pivotTol {
				continue
			}
			d := s.reducedCost(costs, y, j)
			if d < 0 {
				d = 0 // tolerate tiny dual infeasibility
			}
			ratio := d / -alpha
			if ratio < best-ratioTieTol ||
				(ratio <= best+ratioTieTol && (enter < 0 ||
					(bland && j < enter) ||
					(!bland && -alpha > -bestAlpha))) {
				best, enter, bestAlpha = ratio, j, alpha
			}
		}
		if enter < 0 {
			return Infeasible, nil
		}

		dEnter := s.reducedCost(costs, y, enter)
		u := s.ftran(enter)
		//lint:ignore nanguard u[leave] equals alpha, bounded away from 0 by pivotTol
		theta := s.xB[leave] / u[leave] // both negative => theta >= 0
		s.pivot(enter, leave, u, theta)
		s.iterations++
		//lint:ignore floatcmp exact zero only skips a no-op vector update
		if dEnter != 0 {
			lrow := s.binv[leave]
			for i := range y {
				y[i] += dEnter * lrow[i]
			}
		}

		sinceProgress++
		if sinceProgress > stallLimit {
			bland = true
		}
	}
}
