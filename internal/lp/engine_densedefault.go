//go:build lpdense

package lp

// Built with -tags lpdense: the dense explicit-inverse engine is the
// default, matching the pre-eta-file behavior for comparison runs.
const defaultEngine = EngineDense
