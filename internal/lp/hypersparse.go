package lp

// Hyper-sparse FTRAN/BTRAN: Gilbert–Peierls-style symbolic reach over the LU
// factors so that triangular solves with very sparse right-hand sides (an
// entering column with a handful of nonzeros, the unit seed of a BTRAN row)
// touch only the factor steps that can produce nonzeros, instead of walking
// all m steps and zeroing all m entries of the scratch vectors.
//
// The design constraint is bit-for-bit parity with the dense solves, which
// the cross-engine oracle tests and the design-layer fingerprints pin down.
// The scheme that achieves it:
//
//   - The scratch vectors (rowSp, posSp, rho) keep an all-zero invariant
//     outside a tracked nonzero pattern. Sparse writers record every write
//     in the pattern; dense writers (recomputeXB, computeY, the dense
//     engine's paths) just mark the vector dirty, and the next sparse use
//     re-zeroes it fully. The FTRAN output u is exempt: every path through
//     ftranVecSparse writes it in full (the sparse tail memsets it first),
//     because tracking its pattern through the eta file costs more than the
//     single O(n) zeroing it would save.
//   - Numeric passes process the symbolically reached steps in the same
//     global direction as the dense pass, with full segments, so every
//     float accumulation happens in the dense order with the dense
//     operands. Steps outside the reach could only ever write signed
//     zeros densely, and signed-zero differences are unobservable here:
//     all comparisons treat ±0 as equal, structurally-zero entries are
//     skipped on append, and reported duals are recomputed densely.
//   - When a reach covers more than 1/hyperSparseDenom of the steps, the
//     remaining passes run dense (the symbolic walk would cost more than
//     it saves) and the output vector is simply marked dirty.

// hyperSparseDenom is the density cutoff: a symbolic reach covering more
// than m/hyperSparseDenom factor steps completes densely.
const hyperSparseDenom = 4

// hsMinDim is the dimension cutoff: below it the solves run the dense
// reference formulas outright. On small bases (the k=4 design LP is 87 rows)
// the symbolic machinery — transpose rebuilds, DFS reaches, pattern stamps —
// costs more than the O(m) work it avoids, and since the sparse passes
// reproduce the dense accumulation bit for bit, the choice is unobservable
// in the results.
const hsMinDim = 256

// hsFtranSeedDenom gates the FTRAN U phase on the post-L pattern size: a
// right-hand side already filled past m/hsFtranSeedDenom rows completes
// densely without running the U reach at all. FTRAN images of entering
// columns fan out in U far more than BTRAN's unit seeds, so for non-tiny
// patterns the U walk (whose edge set is the U nonzeros) routinely costs
// more than the dense pass it tries to avoid; the L pass stays symbolic
// because its reach is cheap and its fill is what this gate inspects.
const hsFtranSeedDenom = 16

// hsStampMax bounds the visit stamps; past it the mark arrays are re-zeroed
// so int32 stamps can never wrap into false matches on hours-scale runs.
const hsStampMax = 1 << 30

// hyperSparse bundles the solver's hyper-sparse solve state.
type hyperSparse struct {
	// Nonzero patterns of the scratch vectors, and the dirty flags set by
	// dense (untracked) writers.
	rowSpPat, posSpPat, rhoPat       []int32
	rowSpDirty, posSpDirty, rhoDirty bool

	// Step indexes and consumer transposes of the current factorization,
	// rebuilt lazily after each factorizeSparse.
	transOK   bool
	stepOfRow []int32 // constraint row -> factor step (prow inverse)
	stepOfPos []int32 // basis position -> factor step (pcol inverse)
	uConsPtr  []int32 // CSR: position p -> steps whose U segment reads p
	uConsIdx  []int32
	lConsPtr  []int32 // CSR: row r -> steps whose L segment touches r
	lConsIdx  []int32
	cur       []int32 // CSR fill cursors

	// Symbolic reach workspace: per-step visit stamps, the DFS stack, the
	// collected reach, and per-row/per-position pattern stamps.
	mark   []int32
	stamp  int32
	stack  []int32
	reach  []int32
	vmark  []int32
	vstamp int32
}

// clearScratch restores a scratch vector's all-zero invariant: O(pattern)
// when the pattern is trusted, a full zeroing after a dense write. The
// pattern is reset either way.
func (s *Solver) clearScratch(buf []float64, pat *[]int32, dirty *bool) {
	if *dirty {
		for i := range buf {
			buf[i] = 0
		}
		*dirty = false
	} else {
		for _, i := range *pat {
			buf[i] = 0
		}
	}
	*pat = (*pat)[:0]
}

// ensureHS sizes the reach workspace for the current factor/row counts and
// resets the stamp arrays before the stamps could ever wrap.
func (s *Solver) ensureHS() {
	hsp := &s.hs
	m := s.lu.m
	if cap(hsp.mark) < m {
		hsp.mark = make([]int32, m)
		hsp.stamp = 0
	}
	hsp.mark = hsp.mark[:m]
	if hsp.stamp >= hsStampMax {
		for i := range hsp.mark {
			hsp.mark[i] = 0
		}
		hsp.stamp = 0
	}
	n := s.nRows
	if cap(hsp.vmark) < n {
		hsp.vmark = make([]int32, n)
		hsp.vstamp = 0
	}
	hsp.vmark = hsp.vmark[:n]
	if hsp.vstamp >= hsStampMax {
		for i := range hsp.vmark {
			hsp.vmark[i] = 0
		}
		hsp.vstamp = 0
	}
}

func growInt32(a []int32, n int) []int32 {
	if cap(a) < n {
		return make([]int32, n)
	}
	return a[:n]
}

// sortInt32 sorts ascending without allocating (shellsort; the reach lists
// are small and this runs on every FTRAN/BTRAN).
func sortInt32(a []int32) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}

// orderReach puts the current reach in ascending step order. Tiny reaches
// shellsort; past m/8 a linear sweep over the visit stamps is cheaper than
// comparison sorting (one predictable pass instead of gap-strided swaps) and
// its O(m) is bounded by the density cutoff having already admitted O(m)
// numeric work.
func (s *Solver) orderReach(st int32, m int) {
	hsp := &s.hs
	if len(hsp.reach)*8 <= m {
		sortInt32(hsp.reach)
		return
	}
	hsp.reach = hsp.reach[:0]
	for t := 0; t < m; t++ {
		if hsp.mark[t] == st {
			hsp.reach = append(hsp.reach, int32(t))
		}
	}
}

// buildTrans rebuilds the step indexes and the U/L consumer transposes for
// the current factorization.
func (s *Solver) buildTrans() {
	lu := &s.lu
	hsp := &s.hs
	m := lu.m
	s.ensureHS()
	hsp.stepOfRow = growInt32(hsp.stepOfRow, m)
	hsp.stepOfPos = growInt32(hsp.stepOfPos, m)
	for t := 0; t < m; t++ {
		hsp.stepOfRow[lu.prow[t]] = int32(t)
		hsp.stepOfPos[lu.pcol[t]] = int32(t)
	}
	hsp.cur = growInt32(hsp.cur, m)

	hsp.uConsPtr = growInt32(hsp.uConsPtr, m+1)
	for i := range hsp.uConsPtr {
		hsp.uConsPtr[i] = 0
	}
	for _, p := range lu.uPos {
		hsp.uConsPtr[p+1]++
	}
	for i := 0; i < m; i++ {
		hsp.uConsPtr[i+1] += hsp.uConsPtr[i]
	}
	hsp.uConsIdx = growInt32(hsp.uConsIdx, len(lu.uPos))
	copy(hsp.cur, hsp.uConsPtr[:m])
	for t := 0; t < m; t++ {
		for k := lu.uPtr[t]; k < lu.uPtr[t+1]; k++ {
			p := lu.uPos[k]
			hsp.uConsIdx[hsp.cur[p]] = int32(t)
			hsp.cur[p]++
		}
	}

	hsp.lConsPtr = growInt32(hsp.lConsPtr, m+1)
	for i := range hsp.lConsPtr {
		hsp.lConsPtr[i] = 0
	}
	for _, r := range lu.lRow {
		hsp.lConsPtr[r+1]++
	}
	for i := 0; i < m; i++ {
		hsp.lConsPtr[i+1] += hsp.lConsPtr[i]
	}
	hsp.lConsIdx = growInt32(hsp.lConsIdx, len(lu.lRow))
	copy(hsp.cur, hsp.lConsPtr[:m])
	for t := 0; t < m; t++ {
		for k := lu.lPtr[t]; k < lu.lPtr[t+1]; k++ {
			r := lu.lRow[k]
			hsp.lConsIdx[hsp.cur[r]] = int32(t)
			hsp.cur[r]++
		}
	}
	hsp.transOK = true
}

// ftranVecSparse solves B u = b like ftranVec, but drives each triangular
// pass over the symbolic reach of b's pattern (s.hs.rowSpPat, which it
// extends with the L-pass fill). Falls back to the dense passes past the
// density cutoff. Every path writes out in full — the caller need not (and
// must not bother to) pre-clear it.
func (s *Solver) ftranVecSparse(b, out []float64) {
	lu := &s.lu
	hsp := &s.hs
	m := lu.m
	if m < hsMinDim {
		hsp.rowSpDirty = true
		s.ftranVec(b, out)
		return
	}
	if !hsp.transOK {
		s.buildTrans()
	} else {
		s.ensureHS()
	}

	// L pass. Reach: the steps owning the pattern rows, closed under
	// "step t's multipliers write rows owned by later steps". The walk
	// aborts the moment the reach crosses the density cutoff — once the
	// pass is going to run dense, every further symbolic step is pure
	// overhead on top of it.
	limit := m / hyperSparseDenom
	hsp.stamp++
	st := hsp.stamp
	hsp.stack = hsp.stack[:0]
	hsp.reach = hsp.reach[:0]
	for _, r := range hsp.rowSpPat {
		if int(r) >= m {
			continue // border rows bypass the factors
		}
		if t := hsp.stepOfRow[r]; hsp.mark[t] != st {
			hsp.mark[t] = st
			hsp.stack = append(hsp.stack, t)
		}
	}
	for len(hsp.stack) > 0 && len(hsp.reach) <= limit {
		t := hsp.stack[len(hsp.stack)-1]
		hsp.stack = hsp.stack[:len(hsp.stack)-1]
		hsp.reach = append(hsp.reach, t)
		for k := lu.lPtr[t]; k < lu.lPtr[t+1]; k++ {
			if nt := hsp.stepOfRow[lu.lRow[k]]; hsp.mark[nt] != st {
				hsp.mark[nt] = st
				hsp.stack = append(hsp.stack, nt)
			}
		}
	}
	if len(hsp.reach) > limit {
		// Too dense to be worth the symbolic machinery: run the reference
		// dense solve and mark the right-hand side untracked.
		hsp.rowSpDirty = true
		s.ftranVec(b, out)
		return
	}
	s.orderReach(st, m)
	// Numeric pass in the dense (ascending) order with full segments: the
	// accumulation order matches ftranVec exactly on every reached step,
	// and unreached steps could only write signed zeros.
	hsp.vstamp++
	vs := hsp.vstamp
	for _, r := range hsp.rowSpPat {
		if int(r) < m {
			hsp.vmark[r] = vs
		}
	}
	for _, t := range hsp.reach {
		br := b[lu.prow[t]]
		//lint:ignore floatcmp exact zero skips a structurally empty L step
		if br == 0 {
			continue
		}
		for k := lu.lPtr[t]; k < lu.lPtr[t+1]; k++ {
			r := lu.lRow[k]
			b[r] -= lu.lVal[k] * br
			if hsp.vmark[r] != vs {
				hsp.vmark[r] = vs
				hsp.rowSpPat = append(hsp.rowSpPat, r)
			}
		}
	}

	// U pass. Reach: the steps owning b's (now fuller) pattern rows, closed
	// under "step t's result position is read by its U consumers". Skipped
	// outright for patterns past the seed gate — see hsFtranSeedDenom.
	if len(hsp.rowSpPat)*hsFtranSeedDenom > m {
		for t := m - 1; t >= 0; t-- {
			v := b[lu.prow[t]]
			for k := lu.uPtr[t]; k < lu.uPtr[t+1]; k++ {
				v -= lu.uVal[k] * out[lu.uPos[k]]
			}
			//lint:ignore nanguard factorization accepts only |pval| > pivotTol pivots
			out[lu.pcol[t]] = v / lu.pval[t]
		}
		for r := m; r < len(out); r++ {
			out[r] = b[r]
		}
		s.etas.applyFtran(out)
		return
	}
	hsp.stamp++
	st = hsp.stamp
	hsp.stack = hsp.stack[:0]
	hsp.reach = hsp.reach[:0]
	for _, r := range hsp.rowSpPat {
		if int(r) >= m {
			continue
		}
		if t := hsp.stepOfRow[r]; hsp.mark[t] != st {
			hsp.mark[t] = st
			hsp.stack = append(hsp.stack, t)
		}
	}
	for len(hsp.stack) > 0 && len(hsp.reach) <= limit {
		t := hsp.stack[len(hsp.stack)-1]
		hsp.stack = hsp.stack[:len(hsp.stack)-1]
		hsp.reach = append(hsp.reach, t)
		p := lu.pcol[t]
		for k := hsp.uConsPtr[p]; k < hsp.uConsPtr[p+1]; k++ {
			if nt := hsp.uConsIdx[k]; hsp.mark[nt] != st {
				hsp.mark[nt] = st
				hsp.stack = append(hsp.stack, nt)
			}
		}
	}
	if len(hsp.reach) > limit {
		// Dense completion: full U pass, borders, dense eta application.
		for t := m - 1; t >= 0; t-- {
			v := b[lu.prow[t]]
			for k := lu.uPtr[t]; k < lu.uPtr[t+1]; k++ {
				v -= lu.uVal[k] * out[lu.uPos[k]]
			}
			//lint:ignore nanguard factorization accepts only |pval| > pivotTol pivots
			out[lu.pcol[t]] = v / lu.pval[t]
		}
		for r := m; r < len(out); r++ {
			out[r] = b[r]
		}
		s.etas.applyFtran(out)
		return
	}
	s.orderReach(st, m)
	// The sparse tail writes only the reached positions, so restore out's
	// all-zero ground state first. One straight memset here is cheaper than
	// tracking out's pattern through the eta file ever was: the eta segments
	// fan the pattern out so fast that the bookkeeping dwarfed the clear it
	// existed to avoid.
	for i := range out {
		out[i] = 0
	}
	// Descending (dense) order with full segments; a reached step's reads
	// of unreached positions see true zeros where the dense pass saw
	// signed zeros.
	for i := len(hsp.reach) - 1; i >= 0; i-- {
		t := hsp.reach[i]
		v := b[lu.prow[t]]
		for k := lu.uPtr[t]; k < lu.uPtr[t+1]; k++ {
			v -= lu.uVal[k] * out[lu.uPos[k]]
		}
		//lint:ignore nanguard factorization accepts only |pval| > pivotTol pivots
		out[lu.pcol[t]] = v / lu.pval[t]
	}
	for _, r := range hsp.rowSpPat {
		if int(r) >= m {
			out[r] = b[r]
		}
	}
	s.etas.applyFtran(out)
}

// btranRowSparse computes row r of Binv from the unit seed e_r, tracking the
// position-space pattern through the reversed etas and the factor
// transposes. It is the eta engine's btranRow.
func (s *Solver) btranRowSparse(r int) []float64 {
	hsp := &s.hs
	w := s.growPosSp()
	s.clearScratch(w, &hsp.posSpPat, &hsp.posSpDirty)
	w[r] = 1
	if s.lu.m < hsMinDim {
		// Dense reference path; both scratch vectors leave untracked.
		hsp.posSpDirty = true
		hsp.rhoDirty = true
		return s.btranEta(w)
	}
	s.ensureHS()
	hsp.posSpPat = append(hsp.posSpPat, int32(r))
	s.applyBtranSparse(w)
	return s.btranFactorsSparse(w)
}

// applyBtranSparse is etaFile.applyBtran tracking w's pattern
// (s.hs.posSpPat). Pivot-op accumulators still scan their full segments —
// exactly what the dense pass does — so only the writes go sparse.
func (s *Solver) applyBtranSparse(w []float64) {
	e := &s.etas
	hsp := &s.hs
	if len(e.r) == 0 {
		return
	}
	hsp.vstamp++
	vs := hsp.vstamp
	for _, i := range hsp.posSpPat {
		hsp.vmark[i] = vs
	}
	for t := len(e.r) - 1; t >= 0; t-- {
		if e.kind[t] == etaOpBorder {
			zt := w[e.r[t]]
			//lint:ignore floatcmp an exactly zero border component writes only a signed zero densely
			if zt == 0 {
				continue
			}
			//lint:ignore nanguard border diagonals are ±1 by construction (AddCut logicals)
			zt /= e.piv[t]
			//lint:ignore floatcmp exact zero skips a structurally empty border step
			if zt != 0 {
				for k := e.ptr[t]; k < e.ptr[t+1]; k++ {
					p := e.pos[k]
					w[p] -= e.val[k] * zt
					if hsp.vmark[p] != vs {
						hsp.vmark[p] = vs
						hsp.posSpPat = append(hsp.posSpPat, p)
					}
				}
			}
			// w[r] was nonzero, so r is already in the pattern.
			w[e.r[t]] = zt
			continue
		}
		acc := w[e.r[t]]
		for k := e.ptr[t]; k < e.ptr[t+1]; k++ {
			acc -= e.val[k] * w[e.pos[k]]
		}
		//lint:ignore floatcmp exact zero writes only a signed zero densely
		if acc != 0 {
			//lint:ignore nanguard pivots pass the ratio-test magnitude bound at append time
			w[e.r[t]] = acc / e.piv[t]
			if rr := e.r[t]; hsp.vmark[rr] != vs {
				hsp.vmark[rr] = vs
				hsp.posSpPat = append(hsp.posSpPat, rr)
			}
			continue
		}
		//lint:ignore floatcmp the accumulator cancelled; densely this zeroes a previously nonzero entry
		if w[e.r[t]] != 0 {
			w[e.r[t]] = 0
		}
	}
}

// btranFactorsSparse finishes a BTRAN after the reversed etas: U^T forward
// and L^T backward over the symbolic reach of w's pattern, producing the
// row-space result in (and aliasing) the rho scratch with its pattern in
// s.hs.rhoPat.
func (s *Solver) btranFactorsSparse(w []float64) []float64 {
	lu := &s.lu
	hsp := &s.hs
	m := lu.m
	if !hsp.transOK {
		s.buildTrans()
	}
	z := s.growRho()
	s.clearScratch(z, &hsp.rhoPat, &hsp.rhoDirty)
	// Border rows bypass the factors: their components were finalized by
	// the reversed border ops.
	for _, p := range hsp.posSpPat {
		if int(p) >= m {
			z[p] = w[p]
			hsp.rhoPat = append(hsp.rhoPat, p)
		}
	}

	// U^T pass (ascending). Reach: the steps owning the pattern positions,
	// closed under "step t writes the positions its U segment references".
	// As in the FTRAN passes, the walk aborts past the density cutoff.
	limit := m / hyperSparseDenom
	hsp.stamp++
	st := hsp.stamp
	hsp.stack = hsp.stack[:0]
	hsp.reach = hsp.reach[:0]
	for _, p := range hsp.posSpPat {
		if int(p) >= m {
			continue
		}
		if t := hsp.stepOfPos[p]; hsp.mark[t] != st {
			hsp.mark[t] = st
			hsp.stack = append(hsp.stack, t)
		}
	}
	for len(hsp.stack) > 0 && len(hsp.reach) <= limit {
		t := hsp.stack[len(hsp.stack)-1]
		hsp.stack = hsp.stack[:len(hsp.stack)-1]
		hsp.reach = append(hsp.reach, t)
		for k := lu.uPtr[t]; k < lu.uPtr[t+1]; k++ {
			if nt := hsp.stepOfPos[lu.uPos[k]]; hsp.mark[nt] != st {
				hsp.mark[nt] = st
				hsp.stack = append(hsp.stack, nt)
			}
		}
	}
	if len(hsp.reach) > limit {
		// Dense completion of both factor passes; w and z go untracked.
		hsp.posSpDirty = true
		hsp.rhoDirty = true
		for t := 0; t < m; t++ {
			//lint:ignore nanguard factorization accepts only |pval| > pivotTol pivots
			zt := w[lu.pcol[t]] / lu.pval[t]
			z[lu.prow[t]] = zt
			//lint:ignore floatcmp exact zero skips a structurally empty U^T step
			if zt == 0 {
				continue
			}
			for k := lu.uPtr[t]; k < lu.uPtr[t+1]; k++ {
				w[lu.uPos[k]] -= lu.uVal[k] * zt
			}
		}
		for t := m - 1; t >= 0; t-- {
			var acc float64
			for k := lu.lPtr[t]; k < lu.lPtr[t+1]; k++ {
				acc += lu.lVal[k] * z[lu.lRow[k]]
			}
			//lint:ignore floatcmp exact zero skips a no-op correction
			if acc != 0 {
				z[lu.prow[t]] -= acc
			}
		}
		return z
	}
	s.orderReach(st, m)
	hsp.vstamp++
	vs := hsp.vstamp
	for _, p := range hsp.posSpPat {
		if int(p) < m {
			hsp.vmark[p] = vs
		}
	}
	for _, t := range hsp.reach {
		//lint:ignore nanguard factorization accepts only |pval| > pivotTol pivots
		zt := w[lu.pcol[t]] / lu.pval[t]
		//lint:ignore floatcmp exact zero writes only a signed zero densely
		if zt == 0 {
			continue
		}
		z[lu.prow[t]] = zt
		hsp.rhoPat = append(hsp.rhoPat, lu.prow[t])
		for k := lu.uPtr[t]; k < lu.uPtr[t+1]; k++ {
			p := lu.uPos[k]
			w[p] -= lu.uVal[k] * zt
			if hsp.vmark[p] != vs {
				hsp.vmark[p] = vs
				hsp.posSpPat = append(hsp.posSpPat, p)
			}
		}
	}

	// L^T pass (descending). Reach: every step whose L segment touches a
	// nonzero z row, closed under "step t rewrites row prow[t]".
	hsp.stamp++
	st = hsp.stamp
	hsp.stack = hsp.stack[:0]
	hsp.reach = hsp.reach[:0]
	push := func(r int32) {
		for k := hsp.lConsPtr[r]; k < hsp.lConsPtr[r+1]; k++ {
			if nt := hsp.lConsIdx[k]; hsp.mark[nt] != st {
				hsp.mark[nt] = st
				hsp.stack = append(hsp.stack, nt)
			}
		}
	}
	for _, r := range hsp.rhoPat {
		if int(r) < m {
			push(r)
		}
	}
	for len(hsp.stack) > 0 && len(hsp.reach) <= limit {
		t := hsp.stack[len(hsp.stack)-1]
		hsp.stack = hsp.stack[:len(hsp.stack)-1]
		hsp.reach = append(hsp.reach, t)
		push(lu.prow[t])
	}
	if len(hsp.reach) > limit {
		hsp.rhoDirty = true
		for t := m - 1; t >= 0; t-- {
			var acc float64
			for k := lu.lPtr[t]; k < lu.lPtr[t+1]; k++ {
				acc += lu.lVal[k] * z[lu.lRow[k]]
			}
			//lint:ignore floatcmp exact zero skips a no-op correction
			if acc != 0 {
				z[lu.prow[t]] -= acc
			}
		}
		return z
	}
	s.orderReach(st, m)
	hsp.vstamp++
	vs = hsp.vstamp
	for _, r := range hsp.rhoPat {
		if int(r) < m {
			hsp.vmark[r] = vs
		}
	}
	for i := len(hsp.reach) - 1; i >= 0; i-- {
		t := hsp.reach[i]
		var acc float64
		for k := lu.lPtr[t]; k < lu.lPtr[t+1]; k++ {
			acc += lu.lVal[k] * z[lu.lRow[k]]
		}
		//lint:ignore floatcmp exact zero skips a no-op correction
		if acc != 0 {
			r := lu.prow[t]
			z[r] -= acc
			if hsp.vmark[r] != vs {
				hsp.vmark[r] = vs
				hsp.rhoPat = append(hsp.rhoPat, r)
			}
		}
	}
	return z
}
