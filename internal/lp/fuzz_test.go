package lp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMPS feeds arbitrary text to the MPS reader. Two properties must
// hold: the reader never panics (malformed input returns an error), and any
// model it accepts round-trips — writing it and re-reading the output must
// succeed, preserve the row count, and reach a serialization fixpoint.
func FuzzReadMPS(f *testing.F) {
	// A writer-produced model as the primary seed.
	m := NewModel()
	x := m.AddVar(1, "x")
	y := m.AddVar(2, "y")
	m.AddRow([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 4, "cap")
	m.AddRow([]Term{{Var: x, Coef: 3}, {Var: y, Coef: -1}}, GE, 0, "ratio")
	m.AddRow([]Term{{Var: x, Coef: 1}}, EQ, 2, "fix")
	var buf bytes.Buffer
	if err := m.WriteMPS(&buf, "SEED"); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Add("NAME T\nROWS\n N OBJ\n L R0\nCOLUMNS\n C0 OBJ 1\n C0 R0 1\nRHS\n RHS R0 4\nENDATA\n")
	f.Add("* comment\nNAME X\nROWS\n N OBJ\n G G0\n E E0\nCOLUMNS\n A G0 1 E0 2\n B OBJ -1\nRHS\n RHS G0 1 E0 3\nENDATA\n")
	f.Add("ROWS\n N OBJ\nCOLUMNS\nENDATA\n")
	f.Add("garbage before any section\n")
	f.Add("NAME\nROWS\n Q R0\n")
	f.Add("NAME B\nROWS\n N OBJ\n L R0\nBOUNDS\n LO BND C0 0\nENDATA\n")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadMPS(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		if m.Err() != nil {
			return // accepted structurally but with dropped invalid terms
		}
		var out1 bytes.Buffer
		if err := m.WriteMPS(&out1, "FUZZ"); err != nil {
			t.Fatalf("write of accepted model failed: %v", err)
		}
		m2, err := ReadMPS(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput:\n%s", err, out1.String())
		}
		if m2.NumRows() != m.NumRows() {
			t.Fatalf("row count changed on round trip: %d -> %d", m.NumRows(), m2.NumRows())
		}
		var out2 bytes.Buffer
		if err := m2.WriteMPS(&out2, "FUZZ"); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if out1.String() != out2.String() {
			t.Fatalf("serialization is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", out1.String(), out2.String())
		}
	})
}
