package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no nonnegative solution.
	Infeasible
	// Unbounded means the objective can be decreased without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted before
	// convergence; the solution fields hold the best basis reached.
	IterLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the values of the structural (model) variables.
	X []float64
	// Dual holds one multiplier per constraint row, with the convention
	// Dual[i] = d(objective)/d(rhs[i]) at the optimum. For a minimization
	// with a binding <= row the dual is <= 0.
	Dual []float64
	// Iterations counts simplex pivots across all phases of the solve.
	Iterations int
	// Diag is the numerical post-mortem of the solve that produced this
	// solution: recovery-ladder steps taken, refactorization count,
	// residuals, and budget consumption. See Diagnostics.
	Diag Diagnostics
}

// ErrNumerical is returned when the solver cannot maintain a numerically
// trustworthy basis even after refactorization.
var ErrNumerical = errors.New("lp: numerical failure")

// Engine selects the basis-inverse representation the solver maintains.
type Engine int

const (
	// EngineEta factorizes the basis by sparse LU with Markowitz-style
	// pivot ordering and represents subsequent pivots as eta vectors
	// (product form of the inverse). FTRAN/BTRAN cost scales with factor
	// fill rather than m^2, which is what the large design LPs need.
	EngineEta Engine = iota
	// EngineDense keeps an explicit dense m x m basis inverse updated by
	// rank-1 pivots. Retained as a fallback and as the reference oracle
	// the equivalence tests pit the eta engine against.
	EngineDense
)

// String returns a short engine name.
func (e Engine) String() string {
	switch e {
	case EngineEta:
		return "eta"
	case EngineDense:
		return "dense"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// column kinds in the computational form.
type colKind uint8

const (
	kindStruct  colKind = iota
	kindSlack           // +1 logical of a <= row
	kindSurplus         // -1 logical of a >= row
	kindArtificial
)

// Tolerances. The routing LPs are well scaled (coefficients are path counts
// and probabilities), so fixed tolerances suffice. Every numerical epsilon
// the solver uses is named here; call sites must not inline magic values
// (enforced by the tolconst analyzer).
const (
	dualTol    = 1e-7 // reduced-cost optimality tolerance
	primalTol  = 1e-7 // bound-feasibility tolerance
	pivotTol   = 1e-9 // smallest acceptable pivot magnitude
	residCheck = 1e-7 // basis accuracy trigger for refactorization
	phase1Tol  = 1e-7 // max artificial mass at a feasible phase-1 optimum
	// infeasMassMin is the smallest residual artificial mass a *certified*
	// phase-1 optimum may carry and still be declared Infeasible. Between
	// phase1Tol and this floor lies the gray zone where rounding noise on a
	// feasible-by-a-sliver model is indistinguishable from a genuine
	// hairline violation; the solver sides with feasibility there, matching
	// the accuracy the rest of the pipeline actually guarantees.
	infeasMassMin = 1e-5
	ratioTieTol   = 1e-12 // tie window in primal/dual ratio tests
	degenStepTol  = 1e-10 // steps at or below this count as degenerate pivots
	xbPerturb     = 1e-7  // anti-cycling basic-value perturbation magnitude
)

// Solver holds the computational form of a model plus a (re)usable basis.
// It supports cold solves, then warm-started re-solves after AddCut and
// SetRHS (dual simplex) or SetObjCoef (primal simplex).
//
// A Solver is not safe for concurrent use.
type Solver struct {
	structN int // number of structural columns
	nRows   int

	// Sparse columns, including logicals and artificials.
	cost   []float64 // true phase-2 objective per column
	costP  []float64 // perturbed objective actually optimized (anti-degeneracy)
	colR   [][]int32
	colV   [][]float64
	kind   []colKind
	barred []bool // true for artificials outside phase 1

	rhs    []float64
	rowRel []Rel
	artOf  []int // artificial column index per row
	logOf  []int // slack/surplus column per row, -1 if none (EQ)

	// Bounded-variable state: finite upper bounds are variable state, not
	// rows. A nonbasic variable rests at its lower bound (0) or, when
	// atUpper, at ub. hasBounds gates every bound-aware branch so unbounded
	// models run the exact legacy code paths.
	hasBounds bool
	ub        []float64 // per-column upper bound, +Inf when none
	atUpper   []bool    // nonbasic-at-upper flags (meaningless while basic)
	ubList    []int32   // columns carrying a finite upper bound

	// singR/singV are the arena behind the logical/artificial singleton
	// columns created during construction; addCol carves from them while
	// capacity lasts and falls back to per-column slices afterwards
	// (AddCut-time rows).
	singR []int32
	singV []float64

	basis []int // column basic in each row
	pos   []int // column -> basis row, -1 when nonbasic
	binv  [][]float64
	xB    []float64

	// Basis-inverse engine state. The eta engine keeps a sparse LU
	// factorization plus an eta file of post-factorization pivots; the
	// dense engine keeps binv. Exactly one is live per solver.
	engine    Engine
	lu        luFactor
	luw       luWork
	etas      etaFile
	factorOK  bool // sparse factors match the current basis column set
	xbStale   bool // xB must be recomputed once factors are available
	luRepairs int  // artificial substitutions in the last sparse factorize
	// basisRepaired tells the simplex drivers that a refactorization inside
	// the last pivot swapped basis columns, invalidating incremental duals.
	basisRepaired bool

	haveBasis  bool // a factorized, primal-feasible-phase basis exists
	dirtyObj   bool // objective changed since last solve
	dirtyRows  bool // rows added / rhs changed since last solve
	lastStatus Status
	solvedOnce bool
	noJitter   bool

	// err is the first construction/mutation error (inherited from the
	// model, or recorded by AddCut/SetObjCoef). Solve reports it instead
	// of optimizing a corrupted problem.
	err error

	// MaxIters bounds the total pivots per Solve call. Zero means a
	// generous default proportional to the problem size.
	MaxIters int

	// PriceWorkers parallelizes Devex candidate scoring (and the matching
	// weight updates) across this many goroutines. 0 or 1 runs the
	// historical inline path; values above 1 split the candidate list over
	// par.Do index slots and reduce sequentially, so the entering column —
	// and with it the entire pivot trajectory — is bit-for-bit identical
	// at every worker count. Scoring is read-only (reduced costs against
	// fixed duals), which is what makes the fan-out safe.
	PriceWorkers int

	iterations int

	// Devex pricing state (primal simplex): per-column reference weights
	// and the partial-pricing candidate list with its rotating cursor.
	devexW     []float64
	cand       []int
	candCursor int
	// priceD/priceOK are the per-candidate result slots of the parallel
	// scoring pass.
	priceD  []float64
	priceOK []bool

	// Recovery-ladder state (recover.go): the context whose deadline bounds
	// the running solve, the diagnostics being accumulated, and the
	// escalation switches the ladder flips between attempts. perturbScale
	// > 1 multiplies both jitters at the escalate-perturbation rung.
	ctx          context.Context
	diag         Diagnostics
	forceBland   bool
	perturbScale float64

	// chaos carries the fault-injection hooks; outside -tags lpchaos builds
	// it is a typed nil whose methods are inlined no-ops.
	chaos *chaosCfg

	// scratch buffers, solver-owned so steady-state pivots allocate
	// nothing: y (duals), u (FTRAN image), rho (BTRAN row), work
	// (residual probe), rowSp/posSp (row-/position-space solve vectors),
	// bmat (dense-engine factorization rows).
	y, u, rho, work, rowSp, posSp []float64
	bmat                          [][]float64

	// hs is the hyper-sparse solve state (hypersparse.go): the nonzero
	// patterns of the scratch vectors above, the lazily built factor
	// transposes, and the symbolic-reach workspace.
	hs hyperSparse
}

// NewSolver captures the model into computational form. The model may be
// discarded afterwards; use the Solver's own mutators for warm-started
// changes.
func NewSolver(m *Model) *Solver {
	s := &Solver{structN: m.NumVars(), err: m.err, engine: defaultEngine}
	nv, nr := m.NumVars(), m.NumRows()
	ncap := nv + 2*nr
	s.cost = make([]float64, 0, ncap)
	s.colR = make([][]int32, 0, ncap)
	s.colV = make([][]float64, 0, ncap)
	s.kind = make([]colKind, 0, ncap)
	s.barred = make([]bool, 0, ncap)
	// Pre-count each structural column's nonzeros and carve the column
	// storage out of two shared slabs: per-column append growth was the
	// solver-construction allocation hot spot on the mesh-family models.
	cnt := make([]int32, nv)
	tot := 0
	for i := range m.rows {
		for _, t := range m.rows[i].terms {
			cnt[t.Var]++
		}
		tot += len(m.rows[i].terms)
	}
	slabR := make([]int32, tot)
	slabV := make([]float64, tot)
	off := 0
	for j := 0; j < nv; j++ {
		s.cost = append(s.cost, m.obj[j])
		n := int(cnt[j])
		s.colR = append(s.colR, slabR[off:off:off+n])
		s.colV = append(s.colV, slabV[off:off:off+n])
		off += n
		s.kind = append(s.kind, kindStruct)
		s.barred = append(s.barred, false)
	}
	s.singR = make([]int32, 0, 2*nr)
	s.singV = make([]float64, 0, 2*nr)
	s.rhs = make([]float64, 0, nr)
	s.rowRel = make([]Rel, 0, nr)
	s.logOf = make([]int, 0, nr)
	s.artOf = make([]int, 0, nr)
	for i := range m.rows {
		r := &m.rows[i]
		s.appendRow(r.terms, r.rel, r.rhs)
	}
	if m.HasUpper() {
		s.hasBounds = true
		s.growBounds()
		for j := 0; j < nv; j++ {
			if u := m.Upper(VarID(j)); !math.IsInf(u, 1) {
				s.ub[j] = u
				s.ubList = append(s.ubList, int32(j))
			}
		}
	}
	s.buildCostP()
	return s
}

// growBounds pads the bound arrays to the current column count (+Inf / not
// at upper for the new columns). No-op on solvers without bounds.
func (s *Solver) growBounds() {
	if !s.hasBounds {
		return
	}
	for len(s.ub) < len(s.cost) {
		s.ub = append(s.ub, math.Inf(1))
		s.atUpper = append(s.atUpper, false)
	}
}

// SetEngine selects the basis-inverse engine. Switching engines discards
// the current basis, so the next Solve is a cold solve; call it before the
// first Solve to avoid redundant work. The default is the eta engine (or
// the dense engine when built with -tags lpdense).
func (s *Solver) SetEngine(e Engine) {
	if e == s.engine {
		return
	}
	s.engine = e
	s.haveBasis = false
	s.factorOK = false
}

// GetEngine reports the active basis-inverse engine.
func (s *Solver) GetEngine() Engine { return s.engine }

// SetJitter toggles the anti-degeneracy cost perturbation. It is on by
// default; problems whose optimal faces are huge and harmless (e.g. the
// path-probability LPs, where any optimal vertex is equally good) solve
// faster without the jitter steering the simplex to a specific vertex.
func (s *Solver) SetJitter(on bool) {
	s.noJitter = !on
	s.buildCostP()
	s.dirtyObj = true
}

// buildCostP derives the perturbed objective the simplex actually
// optimizes: each column's cost gains a tiny deterministic positive jitter.
// Network LPs are massively dual degenerate (whole faces of optimal bases);
// the jitter makes the optimum essentially unique, which is the classic
// industrial cure for degenerate stalling. The jitter is small enough that
// the reported objective (always computed with the true costs) stays within
// the solver's tolerances of the true optimum.
func (s *Solver) buildCostP() {
	if cap(s.costP) < len(s.cost) {
		s.costP = make([]float64, len(s.cost))
	}
	s.costP = s.costP[:len(s.cost)]
	jit := costJitter
	if s.perturbScale > 1 {
		// The ladder's escalate-perturbation rung amplifies the jitter to
		// break pathological degeneracy, even for jitter-free solvers.
		jit *= s.perturbScale
	} else if s.noJitter {
		copy(s.costP, s.cost)
		return
	}
	rng := uint64(0x853c49e6748fea9b)
	for j, c := range s.cost {
		rng = rng*6364136223846793005 + 1442695040888963407
		f := float64(rng>>11) / (1 << 53) // in [0,1)
		s.costP[j] = c + jit*(0.5+f)*(1+math.Abs(c))
	}
}

// costJitter scales the anti-degeneracy objective perturbation.
const costJitter = 1e-9

// appendRow installs one constraint row into the computational form: its
// structural coefficients, a logical column (for LE/GE), and an artificial
// column whose sign makes the artificial's initial value nonnegative.
func (s *Solver) appendRow(terms []Term, rel Rel, rhs float64) int {
	i := s.nRows
	s.nRows++
	s.rhs = append(s.rhs, rhs)
	s.rowRel = append(s.rowRel, rel)
	for _, t := range terms {
		j := int(t.Var)
		s.colR[j] = append(s.colR[j], int32(i))
		s.colV[j] = append(s.colV[j], t.Coef)
	}
	log := -1
	switch rel {
	case LE:
		log = s.addCol(kindSlack, i, 1)
	case GE:
		log = s.addCol(kindSurplus, i, -1)
	}
	s.logOf = append(s.logOf, log)
	sign := 1.0
	if rhs < 0 {
		sign = -1
	}
	art := s.addCol(kindArtificial, i, sign)
	s.barred[art] = true
	s.artOf = append(s.artOf, art)
	return i
}

// addCol adds a single-entry column and returns its index.
func (s *Solver) addCol(k colKind, row int, val float64) int {
	j := len(s.cost)
	s.cost = append(s.cost, 0)
	// costP is rebuilt by the callers that add columns after construction
	// (AddCut via buildCostP).
	if n := len(s.singR); n < cap(s.singR) {
		// Carve the singleton from the construction arena (full-capacity
		// slice expressions, so an append could never bleed into the next
		// column; logical/artificial columns are never extended anyway).
		s.singR = append(s.singR, int32(row))
		s.singV = append(s.singV, val)
		s.colR = append(s.colR, s.singR[n:n+1:n+1])
		s.colV = append(s.colV, s.singV[n:n+1:n+1])
	} else {
		s.colR = append(s.colR, []int32{int32(row)})
		s.colV = append(s.colV, []float64{val})
	}
	s.kind = append(s.kind, k)
	s.barred = append(s.barred, false)
	return j
}

// NumRows reports the current number of rows, including added cuts.
func (s *Solver) NumRows() int { return s.nRows }

// AddCut appends a constraint row after construction (a cutting plane).
// The existing basis, if any, is extended so that the next Solve can
// warm-start with the dual simplex. It returns the new row's index.
// Malformed terms record a sticky error that the next Solve reports.
func (s *Solver) AddCut(terms []Term, rel Rel, rhs float64) int {
	merged, err := mergeTerms(terms, s.structN)
	if err != nil && s.err == nil {
		s.err = fmt.Errorf("lp: AddCut: %w", err)
	}
	i := s.appendRow(merged, rel, rhs)
	s.buildCostP()
	s.growBounds()
	s.dirtyRows = true
	if !s.haveBasis {
		return i
	}
	// Extend the basis with the new row's logical (or artificial for EQ)
	// basic. New basis matrix is [[B 0] [a_B^T g]] where g is the basic
	// column's entry in the new row; its inverse is
	// [[Binv 0] [-(a_B^T Binv)/g  1/g]].
	bcol := s.logOf[i]
	if bcol < 0 {
		bcol = s.artOf[i]
	}
	// g is the single entry of a fresh logical/artificial column, ±1 by
	// construction in appendRow, so the divisions below cannot blow up.
	g := s.colV[bcol][0]
	m := s.nRows
	// a_B^T: coefficient of each currently-basic column in the new row.
	aB := make([]float64, m-1)
	for _, t := range merged {
		if r := s.pos[t.Var]; r >= 0 {
			aB[r] += t.Coef
		}
	}
	if s.engine == EngineDense {
		// Extend the explicit inverse with the bordered-block formula.
		newRow := make([]float64, m)
		for c := 0; c < m-1; c++ {
			var acc float64
			for r := 0; r < m-1; r++ {
				acc += aB[r] * s.binv[r][c]
			}
			//lint:ignore nanguard g is ±1 by construction (see above)
			newRow[c] = -acc / g
		}
		//lint:ignore nanguard g is ±1 by construction (see above)
		newRow[m-1] = 1 / g
		for r := 0; r < m-1; r++ {
			s.binv[r] = append(s.binv[r], 0)
		}
		s.binv = append(s.binv, newRow)
	} else if s.factorOK {
		// Extend the representation with a border op: the new basis is
		// block lower-triangular over the old one, so no refactorization
		// is needed — the signature eta-file win on lazy-constraint loops.
		s.etas.appendBorder(m-1, g, aB)
	}
	// (When the sparse factors are already stale, the next Solve's
	// refactorization covers the extended basis; appending a border over
	// stale factors would be incoherent.)
	s.basis = append(s.basis, bcol)
	s.pos = append(s.pos, -1)
	for len(s.pos) < len(s.cost) {
		s.pos = append(s.pos, -1)
	}
	s.pos[bcol] = m - 1
	// New basic value: (rhs - a^T x)/g, where nonbasic-at-upper variables
	// contribute their bound values alongside the basic ones.
	var act float64
	for r := 0; r < m-1; r++ {
		act += aB[r] * s.xB[r]
	}
	if s.hasBounds {
		for _, t := range merged {
			if s.pos[t.Var] < 0 && s.atUpper[t.Var] {
				act += t.Coef * s.ub[t.Var]
			}
		}
	}
	//lint:ignore nanguard g is ±1 by construction (see above)
	s.xB = append(s.xB, (rhs-act)/g)
	return i
}

// SetVarUpper imposes (or moves) an upper bound on a structural variable
// after construction. Like SetRHS, the bound is pure row-state from the
// basis's point of view: the factorization stays valid and the basis stays
// dual feasible, so the next Solve warm-starts with the dual simplex (a
// basic variable above its new bound is repaired exactly like a violated
// row). ub must be nonnegative and not NaN; +Inf removes the bound.
func (s *Solver) SetVarUpper(v VarID, ub float64) {
	if int(v) < 0 || int(v) >= s.structN {
		if s.err == nil {
			s.err = fmt.Errorf("lp: SetVarUpper on non-structural variable %d", v)
		}
		return
	}
	if math.IsNaN(ub) || ub < 0 {
		if s.err == nil {
			s.err = fmt.Errorf("lp: SetVarUpper(%d, %v): bound must be nonnegative", v, ub)
		}
		return
	}
	if !s.hasBounds {
		if math.IsInf(ub, 1) {
			return
		}
		s.hasBounds = true
	}
	s.growBounds()
	if !math.IsInf(ub, 1) && math.IsInf(s.ub[v], 1) {
		s.ubList = append(s.ubList, int32(v))
	}
	//lint:ignore floatcmp any bound movement at all unparks the variable
	moved := s.atUpper[v] && s.ub[v] != ub
	s.ub[v] = ub
	s.dirtyRows = true
	if !s.haveBasis {
		return
	}
	if moved {
		// The variable was parked on the old bound; re-park it at the lower
		// bound (dual feasibility of its sign may be lost either way — the
		// post-dual primal polish restores optimality).
		s.atUpper[v] = false
	}
	if s.engine == EngineEta && !s.factorOK {
		s.xbStale = true
		return
	}
	s.recomputeXB()
}

// SetRHS changes a row's right-hand side. The basis matrix is untouched, so
// the factorization stays valid and the basis stays dual feasible: the next
// Solve warm-starts with the dual simplex. When the factors are stale (a cut
// was added since the last solve), the xB refresh is deferred to the next
// Solve's refactorization instead of forcing one here.
func (s *Solver) SetRHS(row int, rhs float64) {
	s.rhs[row] = rhs
	s.dirtyRows = true
	if !s.haveBasis {
		return
	}
	if s.engine == EngineEta && !s.factorOK {
		s.xbStale = true
		return
	}
	s.recomputeXB()
}

// SetObjCoef changes a structural variable's objective coefficient. The
// basis stays primal feasible, so the next Solve warm-starts with the primal
// simplex. Addressing a non-structural variable records a sticky error that
// the next Solve reports.
func (s *Solver) SetObjCoef(v VarID, coef float64) {
	if int(v) < 0 || int(v) >= s.structN {
		if s.err == nil {
			s.err = fmt.Errorf("lp: SetObjCoef on non-structural variable %d", v)
		}
		return
	}
	s.cost[v] = coef
	s.buildCostP()
	s.dirtyObj = true
}

// recomputeXB sets xB = Binv * b through the active engine, where b is the
// right-hand side minus the contributions of nonbasic-at-upper variables.
func (s *Solver) recomputeXB() {
	if s.engine == EngineEta {
		b := s.growRowSp()
		s.hs.rowSpDirty = true // dense scatter below
		copy(b, s.rhs)
		s.boundAdjustRHS(b)
		s.ftranVec(b, s.xB)
		return
	}
	m := s.nRows
	b := s.rhs
	if s.hasBounds {
		if cap(s.work) < m {
			s.work = make([]float64, m)
		}
		b = s.work[:m]
		copy(b, s.rhs)
		s.boundAdjustRHS(b)
	}
	for r := 0; r < m; r++ {
		var acc float64
		row := s.binv[r]
		for i := 0; i < m; i++ {
			acc += row[i] * b[i]
		}
		s.xB[r] = acc
	}
}

// boundAdjustRHS subtracts the at-upper nonbasic contributions from a
// row-space right-hand side: the basic values solve
// B xB = rhs - sum_{j nonbasic at upper} ub_j A_j.
func (s *Solver) boundAdjustRHS(b []float64) {
	if !s.hasBounds {
		return
	}
	for _, j32 := range s.ubList {
		j := int(j32)
		if s.pos[j] >= 0 || !s.atUpper[j] {
			continue
		}
		u := s.ub[j]
		//lint:ignore floatcmp a zero bound contributes nothing exactly
		if u == 0 {
			continue
		}
		rs, vs := s.colR[j], s.colV[j]
		for t, ri := range rs {
			b[ri] -= vs[t] * u
		}
	}
}

// maxIters returns the effective iteration budget.
func (s *Solver) maxIters() int {
	if s.MaxIters > 0 {
		return s.MaxIters
	}
	n := 200000 + 200*s.nRows
	return n
}

// solveAttempt is one run of the simplex dispatch — the body of a single
// recovery-ladder attempt (recover.go). The dirty flags and warm-start state
// are committed by the ladder's finish, not here, so a failed attempt leaves
// the dispatch decision intact for the retry.
func (s *Solver) solveAttempt() (Status, error) {
	s.ensureFactored()
	switch {
	case !s.haveBasis, s.solvedOnce && s.lastStatus != Optimal:
		// No basis yet, or the last outcome did not leave an optimal
		// basis. A non-optimal basis guarantees neither primal nor dual
		// feasibility (a phase-1 infeasibility certificate, for example,
		// is optimal only for the phase-1 costs), so every warm-start
		// assumption is off: restart from scratch.
		return s.coldSolve()
	case s.dirtyRows && !s.dirtyObj:
		st, err := s.dualSolve()
		if err == nil && st == IterLimit && !s.diag.DeadlineHit {
			// fall back to a cold solve before giving up (pointless when
			// the context deadline is what ended the dual run)
			st, err = s.coldSolve()
		}
		return st, err
	default:
		// Objective changed (or both changed): re-run primal; if rows
		// also changed the basis may be primal infeasible, so run dual
		// first to restore feasibility under the old costs is wrong --
		// simplest correct path is a fresh phase-1.
		if s.dirtyRows {
			return s.coldSolve()
		}
		return s.primalFromBasis()
	}
}

// ensureFactored brings the eta engine's factors back in sync with a warm
// basis that was extended by AddCut since the last solve. A factorization
// failure (the extended basis went numerically bad) simply drops the warm
// basis: the subsequent cold solve rebuilds from the all-logical start,
// which factorizes trivially.
func (s *Solver) ensureFactored() {
	if s.engine != EngineEta || !s.haveBasis || s.factorOK {
		return
	}
	if err := s.factorize(); err != nil {
		s.haveBasis = false
		s.xbStale = false
		return
	}
	if s.luRepairs > 0 || s.xbStale {
		s.recomputeXB()
	}
	s.xbStale = false
}

// coldSolve builds the all-logical/artificial starting basis and runs
// phase 1 then phase 2.
func (s *Solver) coldSolve() (Status, error) {
	m := s.nRows
	if s.hasBounds {
		// The all-logical start parks every structural at its lower bound.
		for j := range s.atUpper {
			s.atUpper[j] = false
		}
	}
	s.basis = make([]int, m)
	s.pos = make([]int, len(s.cost))
	for j := range s.pos {
		s.pos[j] = -1
	}
	needPhase1 := false
	for i := 0; i < m; i++ {
		b := s.rhs[i]
		var col int
		switch {
		case s.rowRel[i] == LE && b >= 0:
			col = s.logOf[i]
		case s.rowRel[i] == GE && b <= 0:
			col = s.logOf[i]
		default:
			// Any basic artificial needs phase 1, even at value zero (an EQ
			// row with rhs 0): phase 2 is free to grow a basic artificial it
			// never prices, silently violating the row. Phase 1 at zero mass
			// costs one pricing pass and drives the artificial out.
			col = s.artOf[i]
			needPhase1 = true
		}
		s.basis[i] = col
		s.pos[col] = i
	}
	if err := s.factorize(); err != nil {
		return 0, err
	}
	s.xB = make([]float64, m)
	s.recomputeXB()
	s.haveBasis = true

	if needPhase1 {
		st, err := s.phase1()
		if err != nil || st != Optimal {
			return st, err
		}
	}
	return s.primalFromBasis()
}

// phase1 minimizes the sum of artificial values from the current basis.
func (s *Solver) phase1() (Status, error) {
	costs := make([]float64, len(s.cost))
	for j, k := range s.kind {
		if k == kindArtificial {
			costs[j] = 1
			s.barred[j] = false
		}
	}
	st, err := s.phase1Inner(costs)
	for j, k := range s.kind {
		if k == kindArtificial {
			s.barred[j] = true
		}
	}
	if err != nil || st != Optimal {
		return st, err
	}
	if err := s.driveOutArtificials(); err != nil {
		return 0, err
	}
	return Optimal, nil
}

// phase1Inner runs the phase-1 primal with artificials unbarred and decides
// feasibility. An Infeasible verdict is certified before it is returned:
// the artificial mass is re-measured on fresh factors (a drifted eta file
// can inflate it) and the phase-1 optimum is confirmed against exactly
// recomputed duals (a drifted y can make pricing stop early at a vertex
// that still carries artificial mass). A claim that fails confirmation
// resumes the phase-1 primal instead of mis-declaring the LP infeasible.
func (s *Solver) phase1Inner(costs []float64) (Status, error) {
	for tries := 0; ; tries++ {
		st, err := s.primal(costs)
		if err != nil {
			return 0, err
		}
		if st == IterLimit {
			return IterLimit, nil
		}
		if s.artificialMass() <= phase1Tol {
			return Optimal, nil
		}
		if s.etas.count() > 0 {
			if err := s.refresh(); err != nil {
				return 0, err
			}
			if s.artificialMass() <= phase1Tol {
				return Optimal, nil
			}
		}
		// A phase-1 "optimum" resting on negative basic values has lost
		// the primal-feasibility invariant (corrupted pivots can break the
		// ratio test): neither feasibility nor infeasibility can be read
		// off such a basis. Escalate instead of certifying.
		for _, v := range s.xB {
			if v < -primalTol*100 {
				return 0, fmt.Errorf("%w: phase-1 optimum lost primal feasibility", ErrNumerical)
			}
		}
		// Mass persists on fresh factors; confirm the vertex is a true
		// phase-1 optimum before certifying infeasibility.
		y := s.computeY(costs)
		optimal := true
		for j := range s.cost {
			if s.pos[j] >= 0 || s.barred[j] {
				continue
			}
			if _, ok := s.prices(costs, y, j); ok {
				optimal = false
				break
			}
		}
		if optimal {
			// The optimum is confirmed on fresh factors and exact duals. A
			// truly infeasible LP parks here with macroscopic mass — the
			// minimum total constraint violation. Mass at tolerance scale
			// instead is the rounding floor of a feasible-by-a-sliver model
			// (observed: a stage-2 design LP whose cap has 1e-6 relative
			// slack certified as "infeasible" by 1.7e-7 while the dense
			// engine, on a different rounding path, solved it): accept the
			// vertex rather than escalate noise into a wrong verdict.
			if s.artificialMass() <= infeasMassMin {
				return Optimal, nil
			}
			return Infeasible, nil
		}
		if tries >= 2 {
			return 0, fmt.Errorf("%w: phase-1 optimum failed dual confirmation", ErrNumerical)
		}
	}
}

// artificialMass sums the absolute values of basic artificial variables.
func (s *Solver) artificialMass() float64 {
	var sum float64
	for r, col := range s.basis {
		if s.kind[col] == kindArtificial {
			sum += math.Abs(s.xB[r])
		}
	}
	return sum
}

// driveOutArtificials pivots basic artificials (necessarily at value ~0)
// out of the basis where a usable replacement column exists. Rows with no
// replacement are linearly dependent; their artificial stays basic at zero,
// which is harmless because artificials are barred from re-entering and a
// redundant row keeps them at zero.
func (s *Solver) driveOutArtificials() error {
	for r := 0; r < s.nRows; r++ {
		col := s.basis[r]
		if s.kind[col] != kindArtificial {
			continue
		}
		// Find a nonbasic non-artificial column with a solid pivot in
		// row r of Binv*A: row r of the inverse via BTRAN, then sparse
		// dots against candidate columns.
		rho := s.btranRow(r)
		best, bestMag := -1, pivotTol*100
		for j := range s.cost {
			if s.pos[j] >= 0 || s.kind[j] == kindArtificial {
				continue
			}
			if s.hasBounds && s.atUpper[j] {
				// Entering an at-upper column at value zero would move it off
				// its bound; leave those parked.
				continue
			}
			if mag := math.Abs(s.dotCol(rho, j)); mag > bestMag {
				best, bestMag = j, mag
			}
		}
		if best < 0 {
			continue // dependent row
		}
		u := s.ftran(best)
		if err := s.pivot(best, r, u, s.xB[r], s.xB[r]); err != nil {
			return err
		}
	}
	return nil
}

// extract builds a Solution from the current basis.
func (s *Solver) extract(st Status) *Solution {
	sol := &Solution{Status: st, Iterations: s.iterations}
	sol.X = make([]float64, s.structN)
	if st == Infeasible {
		return sol
	}
	for r, col := range s.basis {
		if col < s.structN {
			v := s.xB[r]
			if v < 0 && v > -primalTol*10 {
				v = 0
			}
			sol.X[col] = v
		}
	}
	if s.hasBounds {
		for _, j32 := range s.ubList {
			j := int(j32)
			if j < s.structN && s.pos[j] < 0 && s.atUpper[j] {
				sol.X[j] = s.ub[j]
			}
		}
	}
	var obj float64
	for j := 0; j < s.structN; j++ {
		obj += s.cost[j] * sol.X[j]
	}
	sol.Objective = obj
	// Duals: y = c_B^T Binv, one per row.
	y := s.computeY(s.cost)
	sol.Dual = make([]float64, s.nRows)
	copy(sol.Dual, y)
	return sol
}

// Value returns the current value of a structural variable from the basis.
func (s *Solver) Value(v VarID) float64 {
	if r := s.pos[v]; r >= 0 {
		return s.xB[r]
	}
	if s.hasBounds && int(v) < len(s.atUpper) && s.atUpper[v] {
		return s.ub[v]
	}
	return 0
}

// AtUpperSet returns the (ascending) internal column indices of the
// nonbasic variables currently parked at their upper bounds. Together with
// Basis it captures the bounded-simplex half of a warm-start checkpoint.
func (s *Solver) AtUpperSet() []int {
	if !s.hasBounds {
		return nil
	}
	var out []int
	for _, j32 := range s.ubList {
		j := int(j32)
		if s.pos[j] < 0 && s.atUpper[j] {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// SetAtUpperSet restores a set captured by AtUpperSet onto a solver rebuilt
// through the identical construction sequence. Call it before InstallBasis:
// the recomputed basic values must include the at-upper contributions.
func (s *Solver) SetAtUpperSet(cols []int) error {
	if len(cols) == 0 {
		return nil
	}
	if !s.hasBounds {
		return fmt.Errorf("lp: SetAtUpperSet on a solver without bounds")
	}
	for j := range s.atUpper {
		s.atUpper[j] = false
	}
	for _, j := range cols {
		if j < 0 || j >= len(s.ub) || math.IsInf(s.ub[j], 1) {
			return fmt.Errorf("lp: SetAtUpperSet: column %d carries no finite bound", j)
		}
		s.atUpper[j] = true
	}
	return nil
}
