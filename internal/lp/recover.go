package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// The recovery ladder. Solve/SolveCtx wrap the simplex dispatch in a
// deterministic escalation sequence: when an attempt ends in a numerical
// failure (ErrNumerical from the engines, or an "optimal" basis whose
// residual fails the exit gate), one rung is applied and the solve is
// retried. The rungs escalate from cheap accuracy restoration to full
// restarts:
//
//	refactorize -> re-price -> escalate perturbation -> Bland's rule ->
//	dense-engine fallback -> cold restart
//
// The first attempt applies no rung at all, so a clean solve follows exactly
// the pre-ladder code path (bit-for-bit identical results). Infeasible and
// Unbounded are certificates, not failures, and never escalate; IterLimit is
// a budget outcome and is reported as such in the Diagnostics.
const (
	// ladderResidTol is the exit accuracy gate on ||A_B xB - b||_inf for an
	// Optimal outcome. It is a generous multiple of residCheck (the
	// in-flight refresh trigger), so a solve that converged normally never
	// trips it.
	ladderResidTol = 1e-6
	// ladderPerturbScale multiplies the cost jitter and the anti-cycling
	// basic-value perturbation at the escalate-perturbation rung.
	ladderPerturbScale = 1e3
)

// Ladder rungs, in escalation order.
const (
	rungRefactorize = iota
	rungReprice
	rungPerturb
	rungBland
	rungEngineFallback
	rungColdRestart
	numRungs
)

// rungName returns the rung's Diagnostics label.
func rungName(r int) string {
	switch r {
	case rungRefactorize:
		return "refactorize"
	case rungReprice:
		return "reprice"
	case rungPerturb:
		return "perturb"
	case rungBland:
		return "bland"
	case rungEngineFallback:
		return "engine-dense"
	case rungColdRestart:
		return "cold-restart"
	}
	return fmt.Sprintf("rung(%d)", r)
}

// Solve finds an optimal basic solution, warm-starting when possible.
func (s *Solver) Solve() (*Solution, error) {
	return s.SolveCtx(context.Background())
}

// SolveCtx is Solve with the context's deadline honored as a first-class
// budget: when the context expires mid-solve, the simplex unwinds at the
// next checkpoint and the solution reports IterLimit with DeadlineHit set in
// its Diagnostics. Numerical failures climb the recovery ladder; if the
// ladder is exhausted the error is a *DiagError wrapping ErrNumerical.
func (s *Solver) SolveCtx(ctx context.Context) (*Solution, error) {
	if s.err != nil {
		return nil, s.err
	}
	// The wall clock here feeds only Diagnostics.Elapsed, an observability
	// field that is never part of a solution, fingerprint, or checkpoint;
	// the solve itself stays bit-for-bit deterministic.
	start := time.Now() //lint:ignore randsource elapsed-time diagnostics only, never reaches an artifact
	s.ctx = ctx
	s.diag = Diagnostics{}
	s.forceBland = false
	if s.perturbScale > 1 {
		// A previous solve escalated the perturbation; restore the stock
		// jitter so this solve starts from the normal numerics.
		s.perturbScale = 0
		s.buildCostP()
	}
	s.iterations = 0
	sol, err := s.solveLadder()
	s.ctx = nil
	s.diag.Iterations = s.iterations
	s.diag.Elapsed = time.Since(start) //lint:ignore randsource elapsed-time diagnostics only, never reaches an artifact
	if err != nil {
		if errors.Is(err, ErrNumerical) {
			return nil, &DiagError{Diag: s.diag, Err: err}
		}
		return nil, err
	}
	sol.Diag = s.diag
	return sol, nil
}

// LastDiagnostics returns the Diagnostics of the most recent Solve/SolveCtx
// call, including failed ones (where no Solution was returned).
func (s *Solver) LastDiagnostics() Diagnostics { return s.diag }

// solveLadder runs solve attempts, climbing one rung per numerical failure.
func (s *Solver) solveLadder() (*Solution, error) {
	rung := 0
	for {
		s.diag.Attempts++
		st, err := s.solveAttempt()
		if err == nil && st != IterLimit {
			if gateErr := s.exitGate(st); gateErr == nil {
				return s.finish(st), nil
			} else {
				err = gateErr
			}
		}
		if err == nil {
			// Infeasible/Unbounded are certificates in their own right;
			// IterLimit means the pivot or deadline budget ran out, which
			// retrying cannot fix.
			if st == IterLimit {
				s.diag.BudgetExhausted = true
			}
			return s.finish(st), nil
		}
		if !errors.Is(err, ErrNumerical) {
			return nil, err
		}
		if s.budgetUp() || rung >= numRungs {
			// Deadline expired, or every rung has been tried: give up and
			// report the failure with the accumulated diagnostics.
			return nil, err
		}
		s.applyRung(rung)
		s.diag.Ladder = append(s.diag.Ladder, rungName(rung))
		rung++
	}
}

// exitGate verifies a certificate before the ladder accepts it. Every
// terminal status except IterLimit rests on an accurate basis: Optimal on
// the returned vertex, Infeasible on the phase-1 optimum whose artificial
// mass is the evidence, and Unbounded on the feasible point the ray departs
// from. The checks probe the claimed state against the true constraint
// columns, independently of the (possibly drifted) inverse representation:
//
//   - residual ||A_B xB - b||_inf, for every status;
//   - primal feasibility xB >= 0 plus zero basic-artificial mass, for
//     Optimal and Unbounded (for an Infeasible claim, a negative basic
//     value or positive artificial mass IS the evidence);
//   - dual consistency (y A_B = c_B) and dual feasibility (no nonbasic
//     column prices out), for Optimal — a corrupted representation can
//     otherwise vouch for a suboptimal vertex.
//
// All tolerances are generous multiples of the in-flight ones, so a solve
// that converged normally never trips the gate.
func (s *Solver) exitGate(st Status) error {
	r := s.residual()
	if r > ladderResidTol {
		return fmt.Errorf("%w: %v basis residual %.3g exceeds %.3g",
			ErrNumerical, st, r, float64(ladderResidTol))
	}
	s.diag.Residual = r
	if st == Infeasible {
		return nil
	}
	var infeas float64
	for _, v := range s.xB {
		if -v > infeas {
			infeas = -v
		}
	}
	for rr, col := range s.basis {
		if s.kind[col] == kindArtificial {
			// A residual-accurate basis can still hide a feasibility lie: a
			// basic artificial at nonzero value absorbs a constraint
			// violation the model never sees.
			if a := math.Abs(s.xB[rr]); a > infeas {
				infeas = a
			}
		}
	}
	if s.hasBounds {
		for rr, col := range s.basis {
			// A basic value above its variable's upper bound is the bounded
			// counterpart of a negative basic value.
			if over := s.xB[rr] - s.ub[col]; over > infeas {
				infeas = over
			}
		}
	}
	if infeas > ladderResidTol {
		return fmt.Errorf("%w: %v basis primal infeasibility %.3g exceeds %.3g",
			ErrNumerical, st, infeas, float64(ladderResidTol))
	}
	if st != Optimal {
		return nil
	}
	y := s.computeY(s.costP)
	for _, col := range s.basis {
		d := s.costP[col] - s.dotCol(y, col)
		if math.Abs(d) > ladderResidTol*(1+math.Abs(s.costP[col])) {
			return fmt.Errorf("%w: dual vector inconsistent with basis (|c_B - y A_B| = %.3g)",
				ErrNumerical, math.Abs(d))
		}
	}
	for j := range s.costP {
		if s.pos[j] >= 0 || s.barred[j] {
			continue
		}
		d := s.reducedCost(s.costP, y, j)
		if s.hasBounds && s.atUpper[j] {
			// A nonbasic-at-upper column prices out with a positive reduced
			// cost: pushing it down from its bound would improve.
			if d > 2*dualTol {
				return fmt.Errorf("%w: optimal claim with column %d priced out at upper bound (reduced cost %.3g)",
					ErrNumerical, j, d)
			}
			continue
		}
		if d < -2*dualTol {
			return fmt.Errorf("%w: optimal claim with column %d priced out (reduced cost %.3g)",
				ErrNumerical, j, d)
		}
	}
	return nil
}

// applyRung mutates the solver state for one escalation step. Each rung is
// strictly more disruptive than the last; all of them preserve the problem
// being solved (the perturbation rung only scales the anti-degeneracy
// jitter, whose effect on the reported objective stays within tolerances).
func (s *Solver) applyRung(rung int) {
	switch rung {
	case rungRefactorize:
		if s.haveBasis {
			if err := s.refresh(); err != nil {
				// The basis cannot even be refactorized; drop it so the
				// next attempt cold-starts from the all-logical basis.
				s.haveBasis = false
				s.factorOK = false
			}
		}
	case rungReprice:
		// Throw away the Devex candidate list and rotate the pricing cursor
		// back to the start; the next pricing pass rebuilds from scratch.
		s.cand = s.cand[:0]
		s.candCursor = 0
		for j := range s.devexW {
			s.devexW[j] = 1
		}
	case rungPerturb:
		s.perturbScale = ladderPerturbScale
		s.buildCostP()
	case rungBland:
		s.forceBland = true
	case rungEngineFallback:
		if s.engine == EngineEta {
			s.SetEngine(EngineDense)
			s.diag.EngineFallback = true
		}
	case rungColdRestart:
		s.haveBasis = false
		s.factorOK = false
		s.solvedOnce = false
	}
}

// finish commits a terminal status: clears the dirty flags, records the
// warm-start state, and extracts the solution. When the ladder fired, the
// dual gap is measured as extra evidence of solution quality (clean solves
// skip the full-column scan).
func (s *Solver) finish(st Status) *Solution {
	s.dirtyObj = false
	s.dirtyRows = false
	s.lastStatus = st
	s.solvedOnce = true
	if st == Optimal && s.diag.Attempts > 1 {
		s.diag.DualGap = s.dualInfeas()
	}
	return s.extract(st)
}

// dualInfeas returns the worst reduced-cost violation over nonbasic columns,
// measured against the true (unjittered) costs. Values around the jitter
// magnitude are normal: the simplex optimizes the perturbed costs.
func (s *Solver) dualInfeas() float64 {
	y := s.computeY(s.cost)
	var worst float64
	for j := range s.cost {
		if s.pos[j] >= 0 || s.barred[j] {
			continue
		}
		d := s.reducedCost(s.cost, y, j)
		if s.hasBounds && s.atUpper[j] {
			d = -d
		}
		if -d > worst {
			worst = -d
		}
	}
	return worst
}

// budgetUp reports whether the running solve's context has expired (deadline
// or cancellation), recording the hit in the diagnostics. The simplex inner
// loops poll it periodically, making the context deadline a first-class
// iteration budget.
func (s *Solver) budgetUp() bool {
	if s.ctx == nil {
		return false
	}
	if s.ctx.Err() != nil {
		s.diag.DeadlineHit = true
		return true
	}
	return false
}

// RefreshFactors refactorizes the current basis and recomputes the basic
// values from fresh factors. It is the checkpoint barrier: a live solver
// that calls it immediately before Basis proceeds from exactly the numerical
// state InstallBasis reconstructs, which is what makes checkpoint/resume
// bit-for-bit. A solver with no basis is left untouched.
func (s *Solver) RefreshFactors() error {
	if !s.haveBasis {
		return nil
	}
	if err := s.refresh(); err != nil {
		return err
	}
	s.xbStale = false
	return nil
}

// PricingCursor returns the rotating partial-pricing cursor, the one piece
// of pricing state that survives across Solve calls. Checkpoints persist it
// so a restored solver prices columns in the same order as the original.
func (s *Solver) PricingCursor() int { return s.candCursor }

// SetPricingCursor restores a cursor captured by PricingCursor.
func (s *Solver) SetPricingCursor(c int) {
	if c < 0 {
		c = 0
	}
	s.candCursor = c
}

// Basis returns the current basic column set (one internal column index per
// row), or nil when no basis exists. Column indices refer to the solver's
// internal column space — structurals first, then each row's logical and
// artificial columns in row-construction order — which is deterministic
// given the construction sequence. Together with InstallBasis this is the
// basis half of the design layer's cut-loop checkpoints.
func (s *Solver) Basis() []int {
	if !s.haveBasis {
		return nil
	}
	out := make([]int, len(s.basis))
	copy(out, s.basis)
	return out
}

// InstallBasis restores a basis captured by Basis onto a solver rebuilt
// through the identical construction sequence (same model, same AddCut
// replay). It factorizes the basis, recomputes the basic values, and marks
// the solver warm with rows dirty, so the next Solve dual-warm-starts
// exactly as the original solver would have after its last AddCut.
func (s *Solver) InstallBasis(cols []int) error {
	if s.err != nil {
		return s.err
	}
	if len(cols) != s.nRows {
		return fmt.Errorf("lp: InstallBasis: %d basic columns for %d rows", len(cols), s.nRows)
	}
	if cap(s.pos) < len(s.cost) {
		s.pos = make([]int, len(s.cost))
	}
	s.pos = s.pos[:len(s.cost)]
	for j := range s.pos {
		s.pos[j] = -1
	}
	s.basis = append(s.basis[:0], cols...)
	for r, col := range cols {
		if col < 0 || col >= len(s.cost) {
			return fmt.Errorf("lp: InstallBasis: column %d out of range", col)
		}
		if s.pos[col] >= 0 {
			return fmt.Errorf("lp: InstallBasis: column %d basic in two rows", col)
		}
		s.pos[col] = r
	}
	if s.hasBounds {
		// A basic column cannot sit at its bound; stale at-upper flags (set
		// by SetAtUpperSet from a checkpoint, or left over from a previous
		// basis) would corrupt the recomputed right-hand side.
		for _, col := range cols {
			s.atUpper[col] = false
		}
	}
	if err := s.factorize(); err != nil {
		s.haveBasis = false
		s.factorOK = false
		return err
	}
	if cap(s.xB) < s.nRows {
		s.xB = make([]float64, s.nRows)
	}
	s.xB = s.xB[:s.nRows]
	s.recomputeXB()
	s.xbStale = false
	s.haveBasis = true
	s.solvedOnce = true
	s.lastStatus = Optimal
	s.dirtyRows = true
	return nil
}
