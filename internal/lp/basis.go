package lp

import (
	"fmt"
	"math"
)

// factorize rebuilds the dense basis inverse from the basis column set using
// Gauss-Jordan elimination with partial pivoting, repairing numerically
// dependent basis columns in-pass by substituting artificial columns.
func (s *Solver) factorize() error {
	return s.doFactorize()
}

// doFactorize performs the elimination. When a basis column proves linearly
// dependent, it is repaired in-pass: a nonbasic artificial (identity) column
// is substituted, using the row operations accumulated so far (the building
// inverse) to transform it, and elimination continues.
func (s *Solver) doFactorize() error {
	m := s.nRows
	// B laid out dense; binv starts as identity and receives the inverse.
	B := make([][]float64, m)
	if cap(s.binv) < m {
		s.binv = make([][]float64, m)
	}
	s.binv = s.binv[:m]
	for r := 0; r < m; r++ {
		B[r] = make([]float64, m)
		if cap(s.binv[r]) < m {
			s.binv[r] = make([]float64, m)
		}
		s.binv[r] = s.binv[r][:m]
		for c := 0; c < m; c++ {
			s.binv[r][c] = 0
		}
		s.binv[r][r] = 1
	}
	for c, col := range s.basis {
		for t, ri := range s.colR[col] {
			B[ri][c] = s.colV[col][t]
		}
	}
	repairs := 0
	for c := 0; c < m; c++ {
		// Partial pivot within column c among rows >= c.
		p, pmag := -1, pivotTol
		for r := c; r < m; r++ {
			if mag := math.Abs(B[r][c]); mag > pmag {
				p, pmag = r, mag
			}
		}
		if p < 0 {
			// Dependent column: substitute a nonbasic artificial whose
			// transformed image (column of the inverse built so far) has a
			// usable pivot below row c, then retry this column.
			bad := s.basis[c]
			repairs++
			if repairs > m+1 {
				return fmt.Errorf("%w: basis repair did not converge", ErrNumerical)
			}
			best, bestMag := -1, pivotTol
			for r := 0; r < m; r++ {
				a := s.artOf[r]
				if a == bad {
					continue // do not re-substitute the failing column
				}
				if s.pos[a] >= 0 && s.basis[s.pos[a]] == a && s.pos[a] != c {
					continue // already basic elsewhere
				}
				for q := c; q < m; q++ {
					if mag := math.Abs(s.binv[q][r]); mag > bestMag {
						best, bestMag = r, mag
						break
					}
				}
			}
			if best < 0 {
				return fmt.Errorf("%w: singular basis: column %d dependent at position %d, no repair available", ErrNumerical, bad, c)
			}
			art := s.artOf[best]
			sign := s.colV[art][0]
			s.pos[bad] = -1
			s.basis[c] = art
			s.pos[art] = c
			for q := 0; q < m; q++ {
				B[q][c] = sign * s.binv[q][best]
			}
			c-- // redo this column with the substituted entries
			continue
		}
		if p != c {
			B[p], B[c] = B[c], B[p]
			s.binv[p], s.binv[c] = s.binv[c], s.binv[p]
		}
		piv := B[c][c]
		//lint:ignore nanguard partial pivoting above selected |piv| > pivotTol
		inv := 1 / piv
		for k := 0; k < m; k++ {
			B[c][k] *= inv
			s.binv[c][k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := B[r][c]
			//lint:ignore floatcmp exact zero only skips a no-op row operation
			if f == 0 {
				continue
			}
			br, bc := B[r], B[c]
			ir, ic := s.binv[r], s.binv[c]
			for k := 0; k < m; k++ {
				br[k] -= f * bc[k]
				ir[k] -= f * ic[k]
			}
		}
	}
	// Gauss-Jordan applied the same row operations (including swaps) to B
	// and to the identity, so binv is exactly B^{-1} with rows indexed by
	// basis position.
	return nil
}

// ftran returns u = Binv * A[col] as a dense vector (length nRows).
func (s *Solver) ftran(col int) []float64 {
	m := s.nRows
	if cap(s.u) < m {
		s.u = make([]float64, m)
	}
	u := s.u[:m]
	for r := range u {
		u[r] = 0
	}
	rows, vals := s.colR[col], s.colV[col]
	for r := 0; r < m; r++ {
		var acc float64
		brow := s.binv[r]
		for t, ri := range rows {
			acc += brow[ri] * vals[t]
		}
		u[r] = acc
	}
	return u
}

// rowDotCol computes (Binv*A[col])[r] without materializing the whole
// column image.
func (s *Solver) rowDotCol(r, col int) float64 {
	var acc float64
	brow := s.binv[r]
	for t, ri := range s.colR[col] {
		acc += brow[ri] * s.colV[col][t]
	}
	return acc
}

// computeY returns y with y = c_B^T * Binv for the given cost vector.
func (s *Solver) computeY(costs []float64) []float64 {
	m := s.nRows
	if cap(s.y) < m {
		s.y = make([]float64, m)
	}
	y := s.y[:m]
	for i := range y {
		y[i] = 0
	}
	for r, col := range s.basis {
		cb := costs[col]
		//lint:ignore floatcmp exact zero only skips a no-op row accumulation
		if cb == 0 {
			continue
		}
		brow := s.binv[r]
		for i := 0; i < m; i++ {
			y[i] += cb * brow[i]
		}
	}
	return y
}

// reducedCost returns costs[j] - y . A[j].
func (s *Solver) reducedCost(costs, y []float64, j int) float64 {
	d := costs[j]
	for t, ri := range s.colR[j] {
		d -= y[ri] * s.colV[j][t]
	}
	return d
}

// pivot makes column `enter` basic in row `leaveRow`, given u = Binv*A[enter]
// and the entering variable's new value theta. It updates the inverse by a
// rank-1 elimination and the basic solution values incrementally.
func (s *Solver) pivot(enter, leaveRow int, u []float64, theta float64) {
	m := s.nRows
	piv := u[leaveRow]
	//lint:ignore nanguard callers select |u[leaveRow]| > pivotTol in the ratio test
	inv := 1 / piv
	lrow := s.binv[leaveRow]
	for k := 0; k < m; k++ {
		lrow[k] *= inv
	}
	for r := 0; r < m; r++ {
		if r == leaveRow {
			continue
		}
		f := u[r]
		//lint:ignore floatcmp exact zero only skips a no-op row update
		if f == 0 {
			continue
		}
		br := s.binv[r]
		for k := 0; k < m; k++ {
			br[k] -= f * lrow[k]
		}
		s.xB[r] -= f * theta
	}
	old := s.basis[leaveRow]
	s.pos[old] = -1
	s.basis[leaveRow] = enter
	s.pos[enter] = leaveRow
	s.xB[leaveRow] = theta
}

// residual returns ||A_B xB - b||_inf, a cheap accuracy probe computed from
// the sparse basis columns.
func (s *Solver) residual() float64 {
	m := s.nRows
	if cap(s.work) < m {
		s.work = make([]float64, m)
	}
	res := s.work[:m]
	for i := 0; i < m; i++ {
		res[i] = -s.rhs[i]
	}
	for r, col := range s.basis {
		x := s.xB[r]
		//lint:ignore floatcmp exact zero only skips a no-op residual term
		if x == 0 {
			continue
		}
		for t, ri := range s.colR[col] {
			res[ri] += s.colV[col][t] * x
		}
	}
	var worst float64
	for _, v := range res {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}

// refresh refactorizes and recomputes xB, restoring numerical accuracy.
func (s *Solver) refresh() error {
	if err := s.factorize(); err != nil {
		return err
	}
	s.recomputeXB()
	return nil
}
