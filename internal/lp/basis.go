package lp

import (
	"fmt"
	"math"
)

// This file is the basis-inverse engine layer: the simplex drivers in
// simplex.go speak only through factorize / ftran / btranRow / computeY /
// pivot / recomputeXB, and each call dispatches on Solver.engine. The dense
// engine (an explicit m x m inverse updated by rank-1 pivots) lives here;
// the sparse engine (LU factors plus an eta file) lives in lu.go and eta.go.

// factorize rebuilds the basis representation from the basis column set,
// repairing numerically dependent basis columns in-pass by substituting
// artificial columns.
func (s *Solver) factorize() error {
	s.diag.Refactorizations++
	if s.chaos.failFactor(s.engine) {
		return fmt.Errorf("%w: injected factorization failure", ErrNumerical)
	}
	if s.engine == EngineDense {
		return s.factorizeDense()
	}
	return s.factorizeSparse()
}

// ftran returns u = Binv * A[col] as a dense vector indexed by basis
// position (length nRows). The returned slice is solver-owned scratch,
// valid until the next ftran or pivot.
func (s *Solver) ftran(col int) []float64 {
	if s.engine == EngineDense {
		return s.ftranDense(col)
	}
	return s.ftranEta(col)
}

// btranRow returns row r of Binv (the vector rho with rho^T = e_r^T Binv,
// indexed by constraint row). The returned slice is solver-owned scratch
// distinct from ftran's, so a rho computed before a pivot stays valid while
// the entering column's FTRAN image is alive. The eta engine solves the
// unit seed hyper-sparsely (hypersparse.go).
func (s *Solver) btranRow(r int) []float64 {
	if s.engine == EngineDense {
		rho := s.growRho()
		s.hs.rhoDirty = true
		copy(rho, s.binv[r])
		return rho
	}
	return s.btranRowSparse(r)
}

// computeY returns y with y = c_B^T * Binv for the given cost vector.
func (s *Solver) computeY(costs []float64) []float64 {
	if s.engine == EngineDense {
		return s.computeYDense(costs)
	}
	w := s.growPosSp()
	// Dense scatter and dense BTRAN: both scratch vectors leave this call
	// with untracked nonzeros.
	s.hs.posSpDirty = true
	s.hs.rhoDirty = true
	for r, col := range s.basis {
		w[r] = costs[col]
	}
	z := s.btranEta(w)
	y := s.growY()
	copy(y, z)
	return y
}

// pivot makes column `enter` basic in row `leaveRow`, given u = Binv*A[enter],
// the step to apply to the other basic values (xB[i] -= step*u[i]) and the
// entering variable's new value. For the legacy from-lower pivot both equal
// theta; a bounded pivot entering from its upper bound passes step = -theta
// and newVal = ub - theta. It updates the inverse representation (a rank-1
// elimination for the dense engine, an eta append — and possibly a
// refactorization — for the eta engine), the basic solution values, and the
// basis bookkeeping.
func (s *Solver) pivot(enter, leaveRow int, u []float64, step, newVal float64) error {
	// Bookkeeping first: if the eta engine decides to refactorize inside
	// pivotEta, the factorization must see the post-pivot basis (and, with
	// bounds, the entering column must already read as basic-not-at-upper
	// when recomputeXB adjusts the right-hand side).
	old := s.basis[leaveRow]
	s.pos[old] = -1
	s.basis[leaveRow] = enter
	s.pos[enter] = leaveRow
	if s.hasBounds {
		s.atUpper[enter] = false
	}
	s.xB[leaveRow] = newVal
	if s.engine == EngineDense {
		s.pivotDense(leaveRow, u, step)
		return nil
	}
	return s.pivotEta(leaveRow, u, step)
}

// dotCol computes vec . A[col] for a row-space vector (a BTRAN row or a
// dual vector) against a sparse column.
func (s *Solver) dotCol(vec []float64, col int) float64 {
	var acc float64
	for t, ri := range s.colR[col] {
		acc += vec[ri] * s.colV[col][t]
	}
	return acc
}

// reducedCost returns costs[j] - y . A[j].
func (s *Solver) reducedCost(costs, y []float64, j int) float64 {
	return costs[j] - s.dotCol(y, j)
}

// Scratch growers: each returns the named solver-owned buffer resized to
// nRows, allocating only when the row count outgrew the capacity.

func (s *Solver) growY() []float64 {
	if cap(s.y) < s.nRows {
		s.y = make([]float64, s.nRows)
	}
	s.y = s.y[:s.nRows]
	return s.y
}

func (s *Solver) growU() []float64 {
	if cap(s.u) < s.nRows {
		s.u = make([]float64, s.nRows)
	}
	s.u = s.u[:s.nRows]
	return s.u
}

func (s *Solver) growRho() []float64 {
	if cap(s.rho) < s.nRows {
		s.rho = make([]float64, s.nRows)
	}
	s.rho = s.rho[:s.nRows]
	return s.rho
}

func (s *Solver) growRowSp() []float64 {
	if cap(s.rowSp) < s.nRows {
		s.rowSp = make([]float64, s.nRows)
	}
	s.rowSp = s.rowSp[:s.nRows]
	return s.rowSp
}

func (s *Solver) growPosSp() []float64 {
	if cap(s.posSp) < s.nRows {
		s.posSp = make([]float64, s.nRows)
	}
	s.posSp = s.posSp[:s.nRows]
	return s.posSp
}

// factorizeDense rebuilds the dense basis inverse from the basis column set
// using Gauss-Jordan elimination with partial pivoting. When a basis column
// proves linearly dependent, it is repaired in-pass: a nonbasic artificial
// (identity) column is substituted, using the row operations accumulated so
// far (the building inverse) to transform it, and elimination continues.
// The working matrix rows live in solver-owned scratch (s.bmat), so repeated
// refactorizations allocate nothing once the solver reaches steady state.
func (s *Solver) factorizeDense() error {
	m := s.nRows
	// B laid out dense; binv starts as identity and receives the inverse.
	if cap(s.bmat) < m {
		grown := make([][]float64, m)
		copy(grown, s.bmat[:cap(s.bmat)])
		s.bmat = grown
	}
	s.bmat = s.bmat[:m]
	B := s.bmat
	if cap(s.binv) < m {
		grown := make([][]float64, m)
		copy(grown, s.binv[:cap(s.binv)])
		s.binv = grown
	}
	s.binv = s.binv[:m]
	for r := 0; r < m; r++ {
		if cap(B[r]) < m {
			B[r] = make([]float64, m)
		}
		B[r] = B[r][:m]
		if cap(s.binv[r]) < m {
			s.binv[r] = make([]float64, m)
		}
		s.binv[r] = s.binv[r][:m]
		for c := 0; c < m; c++ {
			B[r][c] = 0
			s.binv[r][c] = 0
		}
		s.binv[r][r] = 1
	}
	for c, col := range s.basis {
		for t, ri := range s.colR[col] {
			B[ri][c] = s.colV[col][t]
		}
	}
	repairs := 0
	for c := 0; c < m; c++ {
		// Partial pivot within column c among rows >= c.
		p, pmag := -1, pivotTol
		for r := c; r < m; r++ {
			if mag := math.Abs(B[r][c]); mag > pmag {
				p, pmag = r, mag
			}
		}
		if p < 0 {
			// Dependent column: substitute a nonbasic artificial whose
			// transformed image (column of the inverse built so far) has a
			// usable pivot below row c, then retry this column.
			bad := s.basis[c]
			repairs++
			if repairs > m+1 {
				return fmt.Errorf("%w: basis repair did not converge", ErrNumerical)
			}
			best, bestMag := -1, pivotTol
			for r := 0; r < m; r++ {
				a := s.artOf[r]
				if a == bad {
					continue // do not re-substitute the failing column
				}
				if s.pos[a] >= 0 && s.basis[s.pos[a]] == a && s.pos[a] != c {
					continue // already basic elsewhere
				}
				for q := c; q < m; q++ {
					if mag := math.Abs(s.binv[q][r]); mag > bestMag {
						best, bestMag = r, mag
						break
					}
				}
			}
			if best < 0 {
				return fmt.Errorf("%w: singular basis: column %d dependent at position %d, no repair available", ErrNumerical, bad, c)
			}
			art := s.artOf[best]
			sign := s.colV[art][0]
			s.pos[bad] = -1
			s.basis[c] = art
			s.pos[art] = c
			for q := 0; q < m; q++ {
				B[q][c] = sign * s.binv[q][best]
			}
			c-- // redo this column with the substituted entries
			continue
		}
		if p != c {
			B[p], B[c] = B[c], B[p]
			s.binv[p], s.binv[c] = s.binv[c], s.binv[p]
		}
		piv := B[c][c]
		//lint:ignore nanguard partial pivoting above selected |piv| > pivotTol
		inv := 1 / piv
		for k := 0; k < m; k++ {
			B[c][k] *= inv
			s.binv[c][k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := B[r][c]
			//lint:ignore floatcmp exact zero only skips a no-op row operation
			if f == 0 {
				continue
			}
			br, bc := B[r], B[c]
			ir, ic := s.binv[r], s.binv[c]
			for k := 0; k < m; k++ {
				br[k] -= f * bc[k]
				ir[k] -= f * ic[k]
			}
		}
	}
	// Gauss-Jordan applied the same row operations (including swaps) to B
	// and to the identity, so binv is exactly B^{-1} with rows indexed by
	// basis position.
	return nil
}

// ftranDense computes u = Binv * A[col] against the explicit inverse.
func (s *Solver) ftranDense(col int) []float64 {
	m := s.nRows
	u := s.growU()
	rows, vals := s.colR[col], s.colV[col]
	for r := 0; r < m; r++ {
		var acc float64
		brow := s.binv[r]
		for t, ri := range rows {
			acc += brow[ri] * vals[t]
		}
		u[r] = acc
	}
	return u
}

// computeYDense accumulates y = c_B^T * Binv row by row.
func (s *Solver) computeYDense(costs []float64) []float64 {
	m := s.nRows
	y := s.growY()
	for i := range y {
		y[i] = 0
	}
	for r, col := range s.basis {
		cb := costs[col]
		//lint:ignore floatcmp exact zero only skips a no-op row accumulation
		if cb == 0 {
			continue
		}
		brow := s.binv[r]
		for i := 0; i < m; i++ {
			y[i] += cb * brow[i]
		}
	}
	return y
}

// pivotDense updates the explicit inverse by a rank-1 elimination and the
// basic solution values incrementally.
func (s *Solver) pivotDense(leaveRow int, u []float64, step float64) {
	m := s.nRows
	piv := u[leaveRow]
	//lint:ignore nanguard callers select |u[leaveRow]| > pivotTol in the ratio test
	inv := 1 / piv
	lrow := s.binv[leaveRow]
	for k := 0; k < m; k++ {
		lrow[k] *= inv
	}
	for r := 0; r < m; r++ {
		if r == leaveRow {
			continue
		}
		f := u[r]
		//lint:ignore floatcmp exact zero only skips a no-op row update
		if f == 0 {
			continue
		}
		br := s.binv[r]
		for k := 0; k < m; k++ {
			br[k] -= f * lrow[k]
		}
		s.xB[r] -= f * step
	}
}

// residual returns ||A_B xB - b||_inf, a cheap accuracy probe computed from
// the sparse basis columns.
func (s *Solver) residual() float64 {
	m := s.nRows
	if cap(s.work) < m {
		s.work = make([]float64, m)
	}
	res := s.work[:m]
	for i := 0; i < m; i++ {
		res[i] = -s.rhs[i]
	}
	for r, col := range s.basis {
		x := s.xB[r]
		//lint:ignore floatcmp exact zero only skips a no-op residual term
		if x == 0 {
			continue
		}
		for t, ri := range s.colR[col] {
			res[ri] += s.colV[col][t] * x
		}
	}
	if s.hasBounds {
		// Nonbasic-at-upper variables contribute their bound values to the
		// row activities.
		for _, j32 := range s.ubList {
			j := int(j32)
			if s.pos[j] >= 0 || !s.atUpper[j] {
				continue
			}
			x := s.ub[j]
			//lint:ignore floatcmp exact zero only skips a no-op residual term
			if x == 0 {
				continue
			}
			for t, ri := range s.colR[j] {
				res[ri] += s.colV[j][t] * x
			}
		}
	}
	var worst float64
	for _, v := range res {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}

// refresh refactorizes and recomputes xB, restoring numerical accuracy.
func (s *Solver) refresh() error {
	if err := s.factorize(); err != nil {
		return err
	}
	s.recomputeXB()
	return nil
}
