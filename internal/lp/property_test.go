package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceOptimum enumerates every basis of the standard-form program
// min c.x, Ax + Is = b (x, s >= 0 for LE rows) and returns the best feasible
// basic objective. Exponential: only for tiny instances.
func bruteForceOptimum(c []float64, a [][]float64, b []float64) (float64, bool) {
	n := len(c)
	m := len(b)
	tot := n + m
	// Full column matrix including slacks.
	cols := make([][]float64, tot)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = a[i][j]
		}
		cols[j] = col
	}
	for i := 0; i < m; i++ {
		col := make([]float64, m)
		col[i] = 1
		cols[n+i] = col
	}
	fullC := make([]float64, tot)
	copy(fullC, c)

	best := math.Inf(1)
	found := false
	idx := make([]int, m)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == m {
			x, ok := denseSolve(cols, idx, b)
			if !ok {
				return
			}
			for _, v := range x {
				if v < -1e-9 {
					return
				}
			}
			var obj float64
			for t, j := range idx {
				obj += fullC[j] * x[t]
			}
			if obj < best {
				best = obj
				found = true
			}
			return
		}
		for j := start; j < tot; j++ {
			idx[k] = j
			rec(j+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// denseSolve solves B y = b where B's columns are cols[idx]. Returns ok=false
// when singular.
func denseSolve(cols [][]float64, idx []int, b []float64) ([]float64, bool) {
	m := len(b)
	aug := make([][]float64, m)
	for i := 0; i < m; i++ {
		aug[i] = make([]float64, m+1)
		for k, j := range idx {
			aug[i][k] = cols[j][i]
		}
		aug[i][m] = b[i]
	}
	for c := 0; c < m; c++ {
		p, pm := -1, 1e-9
		for r := c; r < m; r++ {
			if v := math.Abs(aug[r][c]); v > pm {
				p, pm = r, v
			}
		}
		if p < 0 {
			return nil, false
		}
		aug[p], aug[c] = aug[c], aug[p]
		piv := aug[c][c]
		for k := c; k <= m; k++ {
			aug[c][k] /= piv
		}
		for r := 0; r < m; r++ {
			if r == c || aug[r][c] == 0 {
				continue
			}
			f := aug[r][c]
			for k := c; k <= m; k++ {
				aug[r][k] -= f * aug[c][k]
			}
		}
	}
	x := make([]float64, m)
	for i := 0; i < m; i++ {
		x[i] = aug[i][m]
	}
	return x, true
}

// TestRandomLPsMatchBruteForce solves many small random LE-form LPs and
// compares against exhaustive basis enumeration.
func TestRandomLPsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3) // variables
		mm := 2 + rng.Intn(3)
		c := make([]float64, n)
		for j := range c {
			c[j] = math.Round(20*(rng.Float64()-0.6)) / 4
		}
		a := make([][]float64, mm)
		b := make([]float64, mm)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = math.Round(8*(rng.Float64()-0.3)) / 2
			}
			b[i] = math.Round(10 * rng.Float64())
		}
		// Bound the feasible set so LPs are never unbounded: add x_j <= 10.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a = append(a, row)
			b = append(b, 10)
		}

		model := NewModel()
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = model.AddVar(c[j], "")
		}
		for i := range a {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if a[i][j] != 0 {
					terms = append(terms, Term{vars[j], a[i][j]})
				}
			}
			model.AddRow(terms, LE, b[i], "")
		}
		sol, err := NewSolver(model).Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, found := bruteForceOptimum(c, a, b)
		if sol.Status == Infeasible {
			if found {
				t.Fatalf("trial %d: solver says infeasible, brute force found %v", trial, want)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if !found {
			t.Fatalf("trial %d: solver optimal %v but brute force found nothing", trial, sol.Objective)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: solver %v, brute force %v\n%s", trial, sol.Objective, want, model)
		}
		if viol := model.MaxViolation(sol.X); viol > 1e-7 {
			t.Fatalf("trial %d: solution infeasible by %v", trial, viol)
		}
	}
}

// TestStrongDualityProperty checks obj == y.b on random feasible LPs via
// testing/quick-generated seeds.
func TestStrongDualityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		mm := 1 + rng.Intn(4)
		model := NewModel()
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = model.AddVar(rng.Float64()*4-1, "")
		}
		rhs := make([]float64, 0, mm+n)
		for i := 0; i < mm; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{vars[j], math.Round(6*(rng.Float64()-0.3)) / 2})
				}
			}
			b := math.Round(8 * rng.Float64())
			model.AddRow(terms, LE, b, "")
			rhs = append(rhs, b)
		}
		for j := 0; j < n; j++ {
			model.AddRow([]Term{{vars[j], 1}}, LE, 6, "")
			rhs = append(rhs, 6)
		}
		sol, err := NewSolver(model).Solve()
		if err != nil || sol.Status != Optimal {
			// Infeasible random instances are fine; errors are not.
			return err == nil
		}
		var yb float64
		for i, b := range rhs {
			yb += sol.Dual[i] * b
		}
		return math.Abs(yb-sol.Objective) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCutLoopProperty mimics the cutting-plane usage pattern: solve, add the
// most-violated of a fixed pool of cuts, re-solve, and confirm the warm path
// agrees with a cold solve of the full model at every step.
func TestCutLoopProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		model := NewModel()
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = model.AddVar(-1-rng.Float64(), "")
		}
		for j := 0; j < n; j++ {
			model.AddRow([]Term{{vars[j], 1}}, LE, 5, "")
		}
		// Pool of random cuts.
		type cut struct {
			terms []Term
			rhs   float64
		}
		pool := make([]cut, 12)
		for k := range pool {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, Term{vars[j], 1 + rng.Float64()})
				}
			}
			pool[k] = cut{terms, 4 + 6*rng.Float64()}
		}

		warm := NewSolver(model)
		sol, err := warm.Solve()
		if err != nil {
			t.Fatal(err)
		}
		coldModel := NewModel()
		for j := 0; j < n; j++ {
			coldModel.AddVar(model.Obj(vars[j]), "")
		}
		for j := 0; j < n; j++ {
			coldModel.AddRow([]Term{{vars[j], 1}}, LE, 5, "")
		}
		for round := 0; round < 6; round++ {
			// Most violated cut at the current point.
			bestViol, bestIdx := 1e-7, -1
			for k, c := range pool {
				var act float64
				for _, tm := range c.terms {
					act += tm.Coef * sol.X[tm.Var]
				}
				if v := act - c.rhs; v > bestViol {
					bestViol, bestIdx = v, k
				}
			}
			if bestIdx < 0 {
				break
			}
			warm.AddCut(pool[bestIdx].terms, LE, pool[bestIdx].rhs)
			coldModel.AddRow(pool[bestIdx].terms, LE, pool[bestIdx].rhs, "")
			sol, err = warm.Solve()
			if err != nil {
				t.Fatal(err)
			}
			coldSol, err := NewSolver(coldModel).Solve()
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != coldSol.Status {
				t.Fatalf("trial %d round %d: warm %v cold %v", trial, round, sol.Status, coldSol.Status)
			}
			if math.Abs(sol.Objective-coldSol.Objective) > 1e-6 {
				t.Fatalf("trial %d round %d: warm obj %v cold obj %v",
					trial, round, sol.Objective, coldSol.Objective)
			}
		}
	}
}

// TestRHSSweepProperty mirrors the Pareto-sweep usage: an equality row whose
// rhs is swept; warm solves must match cold solves.
func TestRHSSweepProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4
		model := NewModel()
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = model.AddVar(rng.Float64()*2, "")
		}
		// sum x_j == L, x_j <= 3.
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{vars[j], 1}
		}
		sweepRow := model.AddRow(terms, EQ, 1, "L")
		for j := 0; j < n; j++ {
			model.AddRow([]Term{{vars[j], 1}}, LE, 3, "")
		}
		warm := NewSolver(model)
		if _, err := warm.Solve(); err != nil {
			t.Fatal(err)
		}
		for _, L := range []float64{2, 5, 9, 3.5, 12, 0.5} {
			warm.SetRHS(int(sweepRow), L)
			got, err := warm.Solve()
			if err != nil {
				t.Fatal(err)
			}
			model.SetRHS(sweepRow, L)
			want, err := NewSolver(model).Solve()
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != want.Status {
				t.Fatalf("trial %d L=%v: warm %v cold %v", trial, L, got.Status, want.Status)
			}
			if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d L=%v: warm %v cold %v", trial, L, got.Objective, want.Objective)
			}
		}
	}
}
