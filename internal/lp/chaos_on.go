//go:build lpchaos

package lp

// Seeded fault injection, compiled only under -tags lpchaos. The hooks
// deterministically corrupt the solver's numerical state mid-flight so the
// recovery ladder's rungs are exercised by tests rather than by luck: eta
// updates receive relative noise (silent inverse drift), factorizations are
// forced to fail (engine-aware, so the dense-fallback rung is reachable),
// and Devex reference weights are corrupted (pricing chases the wrong
// columns). All injection is a pure function of the script and the solve's
// event sequence — same script, same faults.

// devexCorruptWeight is the corrupted reference weight: far below the
// maintained >= 1 invariant, so the victim column's score explodes.
const devexCorruptWeight = 1e-12

// ChaosScript configures deterministic fault injection for one solver.
type ChaosScript struct {
	// Seed drives the injection PRNG; identical seeds replay identical
	// fault sequences.
	Seed uint64
	// FailFactor fails the next N factorizations regardless of engine.
	FailFactor int
	// FailFactorEta fails the next N sparse (eta-engine) factorizations
	// while leaving the dense engine untouched, which drives the solve down
	// the engine-fallback rung.
	FailFactorEta int
	// EtaNoise is the relative perturbation magnitude injected into pivot
	// eta vectors; EtaEvery selects every nth pivot (0 disables).
	EtaNoise float64
	EtaEvery int
	// DevexEvery corrupts one Devex reference weight at every nth pricing
	// framework reset (0 disables).
	DevexEvery int
}

// chaosCfg is the armed hook state hanging off a Solver.
type chaosCfg struct {
	script     ChaosScript
	rng        uint64
	etaCount   int
	devexCount int
}

// SetChaos arms (or, with nil, disarms) fault injection on the solver.
// Only available under -tags lpchaos.
func (s *Solver) SetChaos(script *ChaosScript) {
	if script == nil {
		s.chaos = nil
		return
	}
	s.chaos = &chaosCfg{script: *script, rng: script.Seed*2862933555777941757 + 3037000493}
}

// next steps the injection PRNG and returns a float in [0,1).
func (c *chaosCfg) next() float64 {
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	return float64(c.rng>>11) / (1 << 53)
}

func (c *chaosCfg) failFactor(e Engine) bool {
	if c == nil {
		return false
	}
	if c.script.FailFactor > 0 {
		c.script.FailFactor--
		return true
	}
	if e == EngineEta && c.script.FailFactorEta > 0 {
		c.script.FailFactorEta--
		return true
	}
	return false
}

func (c *chaosCfg) perturbEta(u []float64) {
	if c == nil || c.script.EtaEvery <= 0 || c.script.EtaNoise == 0 {
		return
	}
	c.etaCount++
	if c.etaCount%c.script.EtaEvery != 0 {
		return
	}
	for i := range u {
		//lint:ignore floatcmp structural zeros must stay exactly zero in the eta
		if u[i] != 0 {
			u[i] *= 1 + c.script.EtaNoise*(c.next()-0.5)
		}
	}
}

func (c *chaosCfg) corruptDevex(w []float64) {
	if c == nil || c.script.DevexEvery <= 0 || len(w) == 0 {
		return
	}
	c.devexCount++
	if c.devexCount%c.script.DevexEvery != 0 {
		return
	}
	w[int(c.next()*float64(len(w)))] = devexCorruptWeight
}
