//go:build race

package lp_test

// raceEnabled reports whether the race detector instruments this build; see
// race_off_test.go for the other half.
const raceEnabled = true
