//go:build !lpdense

package lp

// defaultEngine selects the sparse LU + eta-file engine unless the build is
// tagged lpdense, which restores the dense inverse as the default (useful
// for before/after benchmarking and as an escape hatch).
const defaultEngine = EngineEta
