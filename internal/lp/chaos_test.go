//go:build lpchaos

package lp

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// cleanObjective solves the model without injection on the dense engine —
// the oracle the chaotic runs are judged against.
func cleanObjective(t *testing.T, m *Model) float64 {
	t.Helper()
	s := NewSolver(m)
	s.SetEngine(EngineDense)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("clean reference status = %v", sol.Status)
	}
	return sol.Objective
}

// TestChaosLadderAllRungs forces six consecutive factorization failures so
// every recovery rung fires, in order, before the seventh attempt succeeds.
func TestChaosLadderAllRungs(t *testing.T) {
	m := randomBoundedLP(30, 40, 7)
	want := cleanObjective(t, m)

	s := NewSolver(m)
	s.SetChaos(&ChaosScript{Seed: 1, FailFactor: numRungs})
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantLadder := []string{"refactorize", "reprice", "perturb", "bland", "engine-dense", "cold-restart"}
	if got := strings.Join(sol.Diag.Ladder, ","); got != strings.Join(wantLadder, ",") {
		t.Errorf("ladder = %q, want %q", got, strings.Join(wantLadder, ","))
	}
	if sol.Diag.Attempts != numRungs+1 {
		t.Errorf("attempts = %d, want %d", sol.Diag.Attempts, numRungs+1)
	}
	if !sol.Diag.EngineFallback {
		t.Error("EngineFallback not recorded")
	}
	// The perturbation rung escalated the jitter, so the optimum is only
	// near the clean one, within the amplified-jitter tolerance.
	if math.Abs(sol.Objective-want) > 1e-3*(1+math.Abs(want)) {
		t.Errorf("objective = %g, clean = %g", sol.Objective, want)
	}
	if sol.Diag.Residual > ladderResidTol {
		t.Errorf("residual %g exceeds gate", sol.Diag.Residual)
	}

	// With the ladder exhausted and faults still firing, the solve must
	// give up with a DiagError that unwraps to ErrNumerical.
	s2 := NewSolver(m)
	s2.SetChaos(&ChaosScript{Seed: 1, FailFactor: 100})
	_, err = s2.Solve()
	if err == nil {
		t.Fatal("solve succeeded with every factorization failing")
	}
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("error %v does not unwrap to ErrNumerical", err)
	}
	var de *DiagError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a DiagError", err)
	}
	if de.Diag.Attempts != numRungs+1 {
		t.Errorf("exhausted ladder attempts = %d, want %d", de.Diag.Attempts, numRungs+1)
	}
	if got := s2.LastDiagnostics(); got.Attempts != de.Diag.Attempts {
		t.Errorf("LastDiagnostics disagrees with DiagError: %+v vs %+v", got, de.Diag)
	}
}

// TestChaosEngineFallback fails only sparse factorizations: the ladder must
// walk to the dense engine and finish there.
func TestChaosEngineFallback(t *testing.T) {
	m := randomBoundedLP(25, 30, 11)
	want := cleanObjective(t, m)

	s := NewSolver(m)
	s.SetEngine(EngineEta)
	s.SetChaos(&ChaosScript{Seed: 2, FailFactorEta: 1000})
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !sol.Diag.EngineFallback {
		t.Error("EngineFallback not recorded")
	}
	if s.GetEngine() != EngineDense {
		t.Errorf("engine after fallback = %v", s.GetEngine())
	}
	if math.Abs(sol.Objective-want) > 1e-3*(1+math.Abs(want)) {
		t.Errorf("objective = %g, clean = %g", sol.Objective, want)
	}
}

// TestChaosEtaNoise injects relative noise into every pivot eta: the exit
// residual gate must catch the drifted basis and the ladder must recover to
// a clean optimum.
func TestChaosEtaNoise(t *testing.T) {
	m := randomBoundedLP(30, 40, 13)
	want := cleanObjective(t, m)

	s := NewSolver(m)
	s.SetEngine(EngineEta)
	s.SetChaos(&ChaosScript{Seed: 3, EtaNoise: 1e-2, EtaEvery: 1})
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if len(sol.Diag.Ladder) == 0 {
		t.Error("eta noise did not trip the residual gate; ladder never fired")
	}
	if sol.Diag.Residual > ladderResidTol {
		t.Errorf("residual %g exceeds gate after recovery", sol.Diag.Residual)
	}
	if math.Abs(sol.Objective-want) > 1e-3*(1+math.Abs(want)) {
		t.Errorf("objective = %g, clean = %g", sol.Objective, want)
	}
}

// TestChaosDevexCorruption corrupts pricing weights at every framework
// reset. Pricing is a heuristic, so the solve must still reach the clean
// optimum — possibly by a different pivot path.
func TestChaosDevexCorruption(t *testing.T) {
	m := randomBoundedLP(30, 40, 17)
	want := cleanObjective(t, m)

	s := NewSolver(m)
	s.SetChaos(&ChaosScript{Seed: 4, DevexEvery: 1})
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("objective = %g, clean = %g", sol.Objective, want)
	}
}

// TestChaosDeterministic replays the same script twice and demands identical
// diagnostics and results — the injection must be a pure function of the
// script and the solve's event sequence.
func TestChaosDeterministic(t *testing.T) {
	m := randomBoundedLP(30, 40, 19)
	run := func() (*Solution, error) {
		s := NewSolver(m)
		s.SetEngine(EngineEta)
		s.SetChaos(&ChaosScript{Seed: 5, EtaNoise: 5e-3, EtaEvery: 2, DevexEvery: 3, FailFactorEta: 1})
		return s.Solve()
	}
	a, errA := run()
	b, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("replay diverged: %v vs %v", errA, errB)
	}
	if errA != nil {
		return
	}
	if a.Status != b.Status || a.Objective != b.Objective || a.Iterations != b.Iterations {
		t.Errorf("replay diverged: (%v %.17g %d) vs (%v %.17g %d)",
			a.Status, a.Objective, a.Iterations, b.Status, b.Objective, b.Iterations)
	}
	if strings.Join(a.Diag.Ladder, ",") != strings.Join(b.Diag.Ladder, ",") {
		t.Errorf("ladders diverged: %v vs %v", a.Diag.Ladder, b.Diag.Ladder)
	}
}
