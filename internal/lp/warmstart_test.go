package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddCutMakesInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	m.AddRow([]Term{{x, 1}}, GE, 2, "")
	m.AddRow([]Term{{x, 1}}, LE, 5, "")
	s := NewSolver(m)
	sol, err := s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("base solve: %v %v", err, sol.Status)
	}
	s.AddCut([]Term{{x, 1}}, LE, 1) // contradicts x >= 2
	sol, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSetRHSMakesInfeasibleThenFeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	lo := m.AddRow([]Term{{x, 1}}, GE, 1, "")
	hi := m.AddRow([]Term{{x, 1}}, LE, 4, "")
	_ = lo
	s := NewSolver(m)
	if sol, _ := s.Solve(); sol.Status != Optimal {
		t.Fatal("base infeasible")
	}
	s.SetRHS(int(hi), 0.5) // now 1 <= x <= 0.5
	sol, err := s.Solve()
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("want infeasible, got %v %v", sol.Status, err)
	}
	s.SetRHS(int(hi), 10)
	sol, err = s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("recovery failed: %v %v", sol.Status, err)
	}
	wantClose(t, "x", sol.X[x], 1, 1e-8)
}

func TestObjectiveAndRHSInterleaved(t *testing.T) {
	// Mixed mutation sequence must stay consistent with cold solves.
	rng := rand.New(rand.NewSource(21))
	m := NewModel()
	n := 4
	vars := make([]VarID, n)
	for j := range vars {
		vars[j] = m.AddVar(1+rng.Float64(), "")
	}
	terms := make([]Term, n)
	for j := range vars {
		terms[j] = Term{vars[j], 1}
	}
	sumRow := m.AddRow(terms, GE, 4, "")
	for j := range vars {
		m.AddRow([]Term{{vars[j], 1}}, LE, 3, "")
	}
	warm := NewSolver(m)
	if _, err := warm.Solve(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 15; step++ {
		switch step % 3 {
		case 0:
			rhs := 1 + 10*rng.Float64()
			warm.SetRHS(int(sumRow), rhs)
			m.SetRHS(sumRow, rhs)
		case 1:
			j := rng.Intn(n)
			c := rng.Float64()*4 - 0.5
			warm.SetObjCoef(vars[j], c)
			m.SetObj(vars[j], c)
		case 2:
			coef := 0.5 + rng.Float64()
			rhs := 2 + 4*rng.Float64()
			var ts []Term
			for j := range vars {
				if rng.Float64() < 0.7 {
					ts = append(ts, Term{vars[j], coef})
				}
			}
			if len(ts) == 0 {
				ts = []Term{{vars[0], coef}}
			}
			warm.AddCut(ts, LE, rhs)
			m.AddRow(ts, LE, rhs, "")
		}
		got, err := warm.Solve()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := NewSolver(m).Solve()
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if got.Status != want.Status {
			t.Fatalf("step %d: warm %v cold %v", step, got.Status, want.Status)
		}
		if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("step %d: warm %v cold %v", step, got.Objective, want.Objective)
		}
	}
}

func TestCostJitterWithinTolerance(t *testing.T) {
	// The anti-degeneracy jitter must not move reported objectives beyond
	// solver tolerances on a problem with many alternate optima.
	m := NewModel()
	n := 20
	terms := make([]Term, n)
	for j := 0; j < n; j++ {
		v := m.AddVar(1, "") // all costs equal: any vertex of the simplex is optimal
		terms[j] = Term{v, 1}
	}
	m.AddRow(terms, EQ, 7, "")
	sol, err := NewSolver(m).Solve()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "obj", sol.Objective, 7, 1e-6)
}

func TestValueAccessor(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	m.AddRow([]Term{{x, 1}}, LE, 3, "")
	s := NewSolver(m)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if v := s.Value(x); math.Abs(v-3) > 1e-8 {
		t.Fatalf("Value(x) = %v", v)
	}
}
