// Package lp implements a self-contained linear-programming toolkit:
// a model builder and a revised-simplex solver with both primal and dual
// pivoting rules.
//
// The package exists because the routing-design formulations of
// Towles, Dally and Boyd (SPAA'03) are linear programs, and the paper solved
// them with CPLEX. This is a from-scratch replacement tuned for the problem
// shapes that appear in oblivious routing design:
//
//   - many sparse structural columns (per-channel commodity flows or
//     per-path probabilities),
//   - moderate row counts (flow conservation plus generated cuts),
//   - repeated re-solves after adding cutting planes or changing one
//     right-hand side (Pareto sweeps), which the dual simplex warm-starts.
//
// The solver's default basis engine is a sparse LU factorization with
// Markowitz pivot ordering and a product-form eta file: simplex pivots
// append eta vectors, AddCut extends the representation with border ops,
// and the factors are rebuilt when the file grows past its thresholds.
// Pricing uses Devex reference weights over a partial candidate list. The
// original explicit dense-inverse engine remains available through
// Solver.SetEngine (or as the default under the lpdense build tag) and
// serves as the oracle for the cross-engine equivalence tests. All
// variables are nonnegative; rows may be <=, >= or ==. Maximization is
// expressed by negating the objective in the caller (the routing code only
// ever minimizes loads and path lengths).
package lp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Rel is the relation of a linear constraint row.
type Rel int

const (
	// LE is "left-hand side <= rhs".
	LE Rel = iota
	// GE is "left-hand side >= rhs".
	GE
	// EQ is "left-hand side == rhs".
	EQ
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// VarID identifies a variable within a Model. IDs are dense and start at 0.
type VarID int

// RowID identifies a constraint row within a Model. IDs are dense and start
// at 0.
type RowID int

// Term is one coefficient of a constraint row: Coef * x[Var].
type Term struct {
	Var  VarID
	Coef float64
}

// row is the internal representation of a constraint.
type row struct {
	name  string
	rel   Rel
	rhs   float64
	terms []Term
}

// Model is a linear program under construction:
//
//	minimize  sum_j obj[j] * x[j]
//	subject to each added row, and x >= 0.
//
// Models are not safe for concurrent mutation. A Model is consumed by
// NewSolver; further mutation after handing it to a solver is not observed
// by that solver.
type Model struct {
	names []string
	obj   []float64
	rows  []row
	// upper holds per-variable upper bounds (+Inf when absent). The slice
	// is grown on demand by SetUpper, so models without bounds pay nothing.
	upper []float64
	// arena is the bump allocator behind AddRow's merged term storage: rows
	// carve segments out of shared blocks instead of allocating two slices
	// each, which is the dominant build cost on the mesh-family models.
	arena []Term
	// err is the first construction error (bad variable reference,
	// non-finite coefficient). It sticks to the model and is surfaced by
	// Err and by Solver.Solve, so builders can chain AddRow calls without
	// per-call checks and still cannot silently solve a corrupted model.
	err error
}

// Err returns the first error recorded while building the model, or nil.
func (m *Model) Err() error { return m.err }

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{}
}

// AddVar adds a nonnegative variable with the given objective coefficient and
// returns its identifier. The name is used only for diagnostics and may be
// empty.
func (m *Model) AddVar(objCoef float64, name string) VarID {
	id := VarID(len(m.obj))
	m.obj = append(m.obj, objCoef)
	m.names = append(m.names, name)
	return id
}

// AddVars adds n nonnegative variables with zero objective coefficient and
// returns the identifier of the first; the rest follow consecutively.
func (m *Model) AddVars(n int) VarID {
	first := VarID(len(m.obj))
	for i := 0; i < n; i++ {
		m.obj = append(m.obj, 0)
		m.names = append(m.names, "")
	}
	return first
}

// SetObj overwrites the objective coefficient of v.
func (m *Model) SetObj(v VarID, coef float64) {
	m.obj[v] = coef
}

// SetUpper imposes the upper bound x[v] <= ub. The bound becomes variable
// state in the solver (at-lower/at-upper/basic), not a constraint row, so it
// adds nothing to the basis dimension. ub must be nonnegative and not NaN;
// +Inf removes a previously set bound.
func (m *Model) SetUpper(v VarID, ub float64) {
	if int(v) < 0 || int(v) >= len(m.obj) {
		if m.err == nil {
			m.err = fmt.Errorf("lp: SetUpper references unknown variable %d (model has %d)", v, len(m.obj))
		}
		return
	}
	if math.IsNaN(ub) || ub < 0 {
		if m.err == nil {
			m.err = fmt.Errorf("lp: SetUpper(%s, %v): bound must be nonnegative", m.VarName(v), ub)
		}
		return
	}
	for len(m.upper) <= int(v) {
		m.upper = append(m.upper, math.Inf(1))
	}
	m.upper[v] = ub
}

// Upper returns the upper bound of v, +Inf when none is set.
func (m *Model) Upper(v VarID) float64 {
	if int(v) < len(m.upper) {
		return m.upper[v]
	}
	return math.Inf(1)
}

// HasUpper reports whether any variable carries a finite upper bound.
func (m *Model) HasUpper() bool {
	for _, u := range m.upper {
		if !math.IsInf(u, 1) {
			return true
		}
	}
	return false
}

// Obj returns the objective coefficient of v.
func (m *Model) Obj(v VarID) float64 { return m.obj[v] }

// NumVars reports the number of variables added so far.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows reports the number of constraint rows added so far.
func (m *Model) NumRows() int { return len(m.rows) }

// AddRow adds a constraint row and returns its identifier. Terms referencing
// the same variable multiple times are summed. Terms referencing variables
// that do not exist, or carrying non-finite coefficients, record a sticky
// error (see Err) that Solver.Solve reports; the malformed terms are
// dropped so construction can continue deterministically.
func (m *Model) AddRow(terms []Term, rel Rel, rhs float64, name string) RowID {
	merged, err := m.mergeArena(terms)
	if err != nil && m.err == nil {
		if name == "" {
			name = fmt.Sprintf("row %d", len(m.rows))
		}
		m.err = fmt.Errorf("lp: %s: %w", name, err)
	}
	id := RowID(len(m.rows))
	m.rows = append(m.rows, row{name: name, rel: rel, rhs: rhs, terms: merged})
	return id
}

// SetRHS overwrites the right-hand side of an existing row.
func (m *Model) SetRHS(r RowID, rhs float64) {
	m.rows[r].rhs = rhs
}

// RHS returns the right-hand side of a row.
func (m *Model) RHS(r RowID) float64 { return m.rows[r].rhs }

// RowTerms returns a copy of the (merged) terms of a row.
func (m *Model) RowTerms(r RowID) []Term {
	t := m.rows[r].terms
	out := make([]Term, len(t))
	copy(out, t)
	return out
}

// VarName returns the diagnostic name of a variable ("x<i>" if unnamed).
func (m *Model) VarName(v VarID) string {
	if n := m.names[v]; n != "" {
		return n
	}
	return fmt.Sprintf("x%d", int(v))
}

// mergeArena is mergeTerms carving its result from the model's term arena:
// the input is copied into a bump-allocated segment, sorted and compacted in
// place, and the arena advances by the merged length only. The algorithm —
// copy, sort.Slice with the identical comparator, in-place merge — is
// exactly mergeTerms', so duplicate summation order and the resulting bits
// are the same either way.
func (m *Model) mergeArena(terms []Term) ([]Term, error) {
	n := len(terms)
	if len(m.arena)+n > cap(m.arena) {
		c := 4096
		if c < n {
			c = n
		}
		m.arena = make([]Term, 0, c)
	}
	seg := m.arena[len(m.arena) : len(m.arena)+n]
	copy(seg, terms)
	sort.Slice(seg, func(i, j int) bool { return seg[i].Var < seg[j].Var })
	out, err := mergeSorted(seg, len(m.obj))
	m.arena = m.arena[:len(m.arena)+len(out)]
	return out, err
}

// mergeTerms sums duplicate variables, drops exact zeros, validates indices,
// and returns terms sorted by variable for deterministic iteration. Invalid
// terms (unknown variable, non-finite coefficient) are dropped and reported
// through the returned error so callers can record it without panicking.
func mergeTerms(terms []Term, numVars int) ([]Term, error) {
	merged := make([]Term, len(terms))
	copy(merged, terms)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Var < merged[j].Var })
	return mergeSorted(merged, numVars)
}

// mergeSorted compacts a Var-sorted term slice in place: duplicates are
// summed, exact zeros and invalid terms dropped. The returned slice aliases
// the input's prefix.
func mergeSorted(merged []Term, numVars int) ([]Term, error) {
	var err error
	out := merged[:0]
	for _, t := range merged {
		if int(t.Var) < 0 || int(t.Var) >= numVars {
			if err == nil {
				err = fmt.Errorf("term references unknown variable %d (model has %d)", t.Var, numVars)
			}
			continue
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			if err == nil {
				err = fmt.Errorf("non-finite coefficient %v for variable %d", t.Coef, t.Var)
			}
			continue
		}
		//lint:ignore floatcmp exact zero drops structurally absent terms
		if t.Coef == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Var == t.Var {
			out[len(out)-1].Coef += t.Coef
			//lint:ignore floatcmp exact cancellation empties the merged term
			if out[len(out)-1].Coef == 0 {
				out = out[:len(out)-1]
			}
			continue
		}
		out = append(out, t)
	}
	return out, err
}

// String renders the model in a small human-readable format, useful in test
// failures. Large models are truncated.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "min")
	for j, c := range m.obj {
		//lint:ignore floatcmp exact zero selects structurally present coefficients
		if c != 0 {
			fmt.Fprintf(&b, " %+g*%s", c, m.VarName(VarID(j)))
		}
	}
	b.WriteString("\n")
	const maxRows = 50
	for i, r := range m.rows {
		if i == maxRows {
			fmt.Fprintf(&b, "... (%d more rows)\n", len(m.rows)-maxRows)
			break
		}
		for _, t := range r.terms {
			fmt.Fprintf(&b, " %+g*%s", t.Coef, m.VarName(t.Var))
		}
		fmt.Fprintf(&b, " %s %g\n", r.rel, r.rhs)
	}
	return b.String()
}

// Eval computes the value of the objective at x, which must have NumVars
// entries.
func (m *Model) Eval(x []float64) (float64, error) {
	if len(x) != len(m.obj) {
		return 0, fmt.Errorf("lp: Eval with %d values for %d variables", len(x), len(m.obj))
	}
	var v float64
	for j, c := range m.obj {
		v += c * x[j]
	}
	return v, nil
}

// RowActivity computes the left-hand-side value of row r at x.
func (m *Model) RowActivity(r RowID, x []float64) float64 {
	var v float64
	for _, t := range m.rows[r].terms {
		v += t.Coef * x[t.Var]
	}
	return v
}

// MaxViolation returns the largest absolute constraint violation of x over
// all rows and the nonnegativity bounds. It is a verification helper for
// tests and callers that want to sanity-check solutions.
func (m *Model) MaxViolation(x []float64) float64 {
	var worst float64
	for j := range m.obj {
		if x[j] < 0 && -x[j] > worst {
			worst = -x[j]
		}
	}
	for j := range m.upper {
		if v := x[j] - m.upper[j]; v > worst {
			worst = v
		}
	}
	for i := range m.rows {
		a := m.RowActivity(RowID(i), x)
		r := &m.rows[i]
		var v float64
		switch r.rel {
		case LE:
			v = a - r.rhs
		case GE:
			v = r.rhs - a
		case EQ:
			v = math.Abs(a - r.rhs)
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}
