package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteMPS serializes the model in free-format MPS, the lingua franca of LP
// solvers. All variables are nonnegative (the package's variable model);
// finite upper bounds set through SetUpper are emitted as UP entries in a
// BOUNDS section. Row and column names are synthesized as R<i>/C<j> unless
// the model carries names; the objective row is named OBJ.
//
// The writer exists so that models built here can be cross-checked against
// external solvers, and so tests can round-trip models through ReadMPS.
func (m *Model) WriteMPS(w io.Writer, name string) error {
	ew := &errWriter{bw: bufio.NewWriter(w)}
	if name == "" {
		name = "TCR"
	}
	ew.printf("NAME %s\n", name)
	ew.printf("ROWS\n")
	ew.printf(" N OBJ\n")
	rowName := func(i int) string { return fmt.Sprintf("R%d", i) }
	for i, r := range m.rows {
		var kind string
		switch r.rel {
		case LE:
			kind = "L"
		case GE:
			kind = "G"
		case EQ:
			kind = "E"
		}
		ew.printf(" %s %s\n", kind, rowName(i))
	}

	// COLUMNS: entries grouped per column, objective first.
	type entry struct {
		row  string
		coef float64
	}
	cols := make([][]entry, m.NumVars())
	for j, c := range m.obj {
		//lint:ignore floatcmp exact zero selects structurally present coefficients
		if c != 0 {
			cols[j] = append(cols[j], entry{"OBJ", c})
		}
	}
	for i, r := range m.rows {
		for _, t := range r.terms {
			cols[t.Var] = append(cols[t.Var], entry{rowName(i), t.Coef})
		}
	}
	ew.printf("COLUMNS\n")
	for j, es := range cols {
		for _, e := range es {
			ew.printf(" C%d %s %s\n", j, e.row, formatMPS(e.coef))
		}
	}
	ew.printf("RHS\n")
	for i, r := range m.rows {
		//lint:ignore floatcmp MPS omits exactly-zero right-hand sides by convention
		if r.rhs != 0 {
			ew.printf(" RHS %s %s\n", rowName(i), formatMPS(r.rhs))
		}
	}
	if m.HasUpper() {
		ew.printf("BOUNDS\n")
		for j := range m.obj {
			if ub := m.Upper(VarID(j)); !math.IsInf(ub, 1) {
				ew.printf(" UP BND C%d %s\n", j, formatMPS(ub))
			}
		}
	}
	ew.printf("ENDATA\n")
	return ew.flush()
}

// errWriter latches the first write error so the MPS emitter can stay
// linear instead of threading an error through every print (the errdrop
// analyzer rejects silently dropped fmt.Fprintf errors on real writers).
type errWriter struct {
	bw  *bufio.Writer
	err error
}

func (w *errWriter) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.bw, format, args...)
}

func (w *errWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

func formatMPS(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// ReadMPS parses a free-format MPS file into a Model. It supports the
// sections WriteMPS produces (NAME, ROWS, COLUMNS, RHS, BOUNDS, ENDATA).
// BOUNDS entries are restricted to the package's variable model: UP with a
// nonnegative value (stored through SetUpper) and redundant LO ... 0;
// anything else is rejected.
func ReadMPS(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	m := NewModel()
	type rowInfo struct {
		rel   Rel
		terms []Term
		rhs   float64
		order int
	}
	rows := map[string]*rowInfo{}
	var rowOrder []string
	vars := map[string]VarID{}
	varOf := func(name string) VarID {
		if v, ok := vars[name]; ok {
			return v
		}
		v := m.AddVar(0, name)
		vars[name] = v
		return v
	}

	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '*'); i == 0 {
			continue // comment
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		fields := strings.Fields(trimmed)
		// Section headers start in column 1 (no leading space).
		if line[0] != ' ' && line[0] != '\t' {
			section = strings.ToUpper(fields[0])
			if section == "ENDATA" {
				break
			}
			continue
		}
		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: mps line %d: malformed ROWS entry", lineNo)
			}
			kind, name := strings.ToUpper(fields[0]), fields[1]
			switch kind {
			case "N":
				rows[name] = nil // objective row marker
			case "L":
				rows[name] = &rowInfo{rel: LE, order: len(rowOrder)}
				rowOrder = append(rowOrder, name)
			case "G":
				rows[name] = &rowInfo{rel: GE, order: len(rowOrder)}
				rowOrder = append(rowOrder, name)
			case "E":
				rows[name] = &rowInfo{rel: EQ, order: len(rowOrder)}
				rowOrder = append(rowOrder, name)
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown row kind %q", lineNo, kind)
			}
		case "COLUMNS":
			// COL ROW VAL [ROW VAL]
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("lp: mps line %d: malformed COLUMNS entry", lineNo)
			}
			v := varOf(fields[0])
			for i := 1; i+1 < len(fields); i += 2 {
				val, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				ri, ok := rows[fields[i]]
				if !ok {
					return nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, fields[i])
				}
				if ri == nil { // objective
					m.SetObj(v, m.Obj(v)+val)
					continue
				}
				ri.terms = append(ri.terms, Term{Var: v, Coef: val})
			}
		case "RHS":
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("lp: mps line %d: malformed RHS entry", lineNo)
			}
			for i := 1; i+1 < len(fields); i += 2 {
				val, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				ri, ok := rows[fields[i]]
				if !ok || ri == nil {
					return nil, fmt.Errorf("lp: mps line %d: RHS for unknown row %q", lineNo, fields[i])
				}
				ri.rhs = val
			}
		case "BOUNDS":
			if len(fields) < 3 {
				return nil, fmt.Errorf("lp: mps line %d: malformed BOUNDS entry", lineNo)
			}
			kind := strings.ToUpper(fields[0])
			switch kind {
			case "LO":
				if len(fields) < 4 || fields[3] != "0" {
					return nil, fmt.Errorf("lp: mps line %d: only LO ... 0 lower bounds supported", lineNo)
				}
			case "UP":
				// UP BND COL VAL
				if len(fields) != 4 {
					return nil, fmt.Errorf("lp: mps line %d: malformed UP bound", lineNo)
				}
				ub, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				if ub < 0 || math.IsNaN(ub) {
					return nil, fmt.Errorf("lp: mps line %d: negative upper bound %v unsupported (variables are nonnegative)", lineNo, ub)
				}
				v, ok := vars[fields[2]]
				if !ok {
					return nil, fmt.Errorf("lp: mps line %d: UP bound for unknown column %q", lineNo, fields[2])
				}
				if !math.IsInf(ub, 1) {
					m.SetUpper(v, ub)
				}
			default:
				return nil, fmt.Errorf("lp: mps line %d: bound kind %q not supported", lineNo, kind)
			}
		case "RANGES":
			return nil, fmt.Errorf("lp: mps line %d: RANGES not supported", lineNo)
		case "":
			return nil, fmt.Errorf("lp: mps line %d: data before any section", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Emit rows in declaration order for determinism.
	sort.SliceStable(rowOrder, func(i, j int) bool { return rows[rowOrder[i]].order < rows[rowOrder[j]].order })
	for _, name := range rowOrder {
		ri := rows[name]
		m.AddRow(ri.terms, ri.rel, ri.rhs, name)
	}
	return m, nil
}
