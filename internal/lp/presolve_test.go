package lp_test

// Presolve/postsolve round-trip properties: SolveModel (presolve + reduced
// solve + postsolve) must agree with the dense oracle solving the original,
// unpresolved model — same status, same objective, and a postsolved
// primal/dual pair that is feasible and satisfies strong duality ON THE
// ORIGINAL model. The generator is biased to trigger every reduction:
// singleton rows (bound folding), zero upper bounds (fixed columns), empty
// rows and columns, and dominated columns.

import (
	"math"
	"math/rand"
	"testing"

	"tcr/internal/lp"
)

const (
	psObjTol  = 1e-7 // presolved-vs-oracle objective agreement
	psFeasTol = 1e-6 // postsolved primal feasibility on the original model
	psCertTol = 1e-6 // strong-duality certificate slack
)

// randPresolveModel builds a random bounded LP whose structure exercises the
// presolve reductions. Negative-cost variables always get a finite upper
// bound so the instance is never unbounded; coefficients are quarter-integer
// for reproducible arithmetic. Returns the model plus the objective, bounds,
// and rows needed to verify certificates against the ORIGINAL formulation.
func randPresolveModel(rng *rand.Rand) *lp.Model {
	n := 3 + rng.Intn(7)
	model := lp.NewModel()
	vars := make([]lp.VarID, n)
	for j := 0; j < n; j++ {
		c := math.Round(16*(rng.Float64()-0.5)) / 4
		vars[j] = model.AddVar(c, "")
		switch {
		case c < 0, rng.Float64() < 0.5:
			ub := math.Round(12*rng.Float64()) / 2
			if rng.Float64() < 0.15 {
				ub = 0 // fixed column for presolve to remove
			}
			model.SetUpper(vars[j], ub)
		}
	}
	rows := 2 + rng.Intn(5)
	for i := 0; i < rows; i++ {
		r := rng.Float64()
		switch {
		case r < 0.25: // singleton row: bound fold / fix candidate
			j := vars[rng.Intn(n)]
			coef := math.Round(6*(rng.Float64()-0.3))/2 + 0.5
			rel := lp.LE
			if rng.Float64() < 0.3 {
				rel = lp.GE
			}
			model.AddRow([]lp.Term{{Var: j, Coef: coef}}, rel, math.Round(8*rng.Float64())/2, "")
		case r < 0.32: // empty row
			rhs := math.Round(4 * rng.Float64())
			model.AddRow(nil, lp.LE, rhs, "")
		default: // general row, LE-leaning with occasional GE/EQ
			terms := make([]lp.Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, lp.Term{Var: vars[j], Coef: math.Round(8*(rng.Float64()-0.25)) / 2})
				}
			}
			rel, rhs := lp.LE, math.Round(12*rng.Float64())
			switch v := rng.Float64(); {
			case v < 0.12:
				rel, rhs = lp.GE, math.Round(3*rng.Float64())
			case v < 0.2:
				rel, rhs = lp.EQ, math.Round(4*rng.Float64())
			}
			model.AddRow(terms, rel, rhs, "")
		}
	}
	return model
}

// checkBoundedDuality verifies the strong-duality identity of a bounded LP,
//
//	obj == y.b + sum_j min(0, d_j)*ub_j,   d_j = c_j - y.A_j
//
// on the ORIGINAL model, and that no variable with an infinite upper bound
// carries a negative reduced cost (which would certify unboundedness).
func checkBoundedDuality(t *testing.T, tag string, m *lp.Model, sol *lp.Solution) {
	t.Helper()
	d := make([]float64, m.NumVars())
	for j := 0; j < m.NumVars(); j++ {
		d[j] = m.Obj(lp.VarID(j))
	}
	var yb float64
	for i := 0; i < m.NumRows(); i++ {
		y := sol.Dual[i]
		yb += y * m.RHS(lp.RowID(i))
		//lint:ignore floatcmp exact zero skips structurally slack rows
		if y == 0 {
			continue
		}
		for _, tm := range m.RowTerms(lp.RowID(i)) {
			d[tm.Var] -= y * tm.Coef
		}
	}
	dual := yb
	for j := 0; j < m.NumVars(); j++ {
		ub := m.Upper(lp.VarID(j))
		if math.IsInf(ub, 1) {
			if d[j] < -psCertTol {
				t.Fatalf("%s: unbounded-direction reduced cost d[%d]=%v with infinite bound", tag, j, d[j])
			}
			continue
		}
		if d[j] < 0 {
			dual += d[j] * ub
		}
	}
	scale := 1 + math.Abs(sol.Objective)
	if gap := math.Abs(dual - sol.Objective); gap > psCertTol*scale {
		t.Fatalf("%s: duality gap: dual=%v obj=%v (gap %v)", tag, dual, sol.Objective, gap)
	}
}

func TestPresolveRoundTripProperty(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 100
	}
	rng := rand.New(rand.NewSource(314159))
	presolvedSomething := false
	for trial := 0; trial < trials; trial++ {
		model := randPresolveModel(rng)

		oracle := lp.NewSolver(model)
		oracle.SetEngine(lp.EngineDense)
		want, err := oracle.Solve()
		if err != nil {
			t.Fatalf("trial %d oracle: %v", trial, err)
		}
		got, err := lp.SolveModel(model)
		if err != nil {
			t.Fatalf("trial %d SolveModel: %v", trial, err)
		}

		if got.Status != want.Status {
			t.Fatalf("trial %d: status presolved=%v oracle=%v", trial, got.Status, want.Status)
		}
		if got.Status != lp.Optimal {
			continue
		}
		if !got.Diag.Presolve.Empty() {
			presolvedSomething = true
		}
		scale := 1 + math.Abs(want.Objective)
		if d := math.Abs(got.Objective - want.Objective); d > psObjTol*scale {
			t.Fatalf("trial %d: objective presolved=%v oracle=%v (diff %v)", trial, got.Objective, want.Objective, d)
		}
		if v := model.MaxViolation(got.X); v > psFeasTol {
			t.Fatalf("trial %d: postsolved X violates original model by %v", trial, v)
		}
		if len(got.X) != model.NumVars() || len(got.Dual) != model.NumRows() {
			t.Fatalf("trial %d: postsolve shape X=%d/%d Dual=%d/%d",
				trial, len(got.X), model.NumVars(), len(got.Dual), model.NumRows())
		}
		checkBoundedDuality(t, "presolved", model, got)
		checkBoundedDuality(t, "oracle", model, want)
	}
	if !presolvedSomething {
		t.Fatal("generator never triggered a presolve reduction; property vacuous")
	}
}

// TestPresolveReductionsFire pins each reduction on a hand-built model:
// an empty row, a singleton LE row folding into a bound, a zero-upper-bound
// fixed column, and a weakly dominated column all disappear from the reduced
// model, yet the postsolved solution matches the dense oracle exactly.
func TestPresolveReductionsFire(t *testing.T) {
	model := lp.NewModel()
	x := model.AddVar(-1, "x")  // profitable, bounded by the singleton row
	y := model.AddVar(-2, "y")  // profitable, bounded by SetUpper
	z := model.AddVar(0.5, "z") // dominated: positive cost, nonnegative coefs
	f := model.AddVar(-9, "f")  // fixed: ub 0
	model.SetUpper(y, 3)
	model.SetUpper(f, 0)
	model.AddRow(nil, lp.LE, 1, "empty")
	model.AddRow([]lp.Term{{Var: x, Coef: 2}}, lp.LE, 8, "xcap") // x <= 4
	model.AddRow([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}, {Var: z, Coef: 1}}, lp.LE, 6, "mix")

	oracle := lp.NewSolver(model)
	oracle.SetEngine(lp.EngineDense)
	want, err := oracle.Solve()
	if err != nil {
		t.Fatal(err)
	}
	got, err := lp.SolveModel(model)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != lp.Optimal || want.Status != lp.Optimal {
		t.Fatalf("status presolved=%v oracle=%v", got.Status, want.Status)
	}
	if d := math.Abs(got.Objective - want.Objective); d > psObjTol {
		t.Fatalf("objective presolved=%v oracle=%v", got.Objective, want.Objective)
	}
	ps := got.Diag.Presolve
	if ps.RowsRemoved < 2 {
		t.Fatalf("expected empty+singleton rows removed, got %+v", ps)
	}
	if ps.ColsRemoved < 2 {
		t.Fatalf("expected fixed+dominated columns removed, got %+v", ps)
	}
	if ps.BoundsAdded < 1 {
		t.Fatalf("expected singleton row folded into a bound, got %+v", ps)
	}
	if v := model.MaxViolation(got.X); v > psFeasTol {
		t.Fatalf("postsolved X violates model by %v", v)
	}
	if got.X[f] != 0 {
		t.Fatalf("fixed column resurrected: f=%v", got.X[f])
	}
	checkBoundedDuality(t, "reductions", model, got)
}

// TestPresolveInfeasibleAndTrivial covers the endgame paths: an empty-row
// infeasibility detected entirely in presolve, and a model the reductions
// solve outright (no rows survive).
func TestPresolveInfeasibleAndTrivial(t *testing.T) {
	bad := lp.NewModel()
	bad.AddVar(1, "x")
	bad.AddRow(nil, lp.GE, 2, "impossible")
	sol, err := lp.SolveModel(bad)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Fatalf("empty GE row with positive rhs: status %v", sol.Status)
	}

	triv := lp.NewModel()
	a := triv.AddVar(-3, "a")
	triv.SetUpper(a, 2)
	b := triv.AddVar(5, "b")
	triv.SetUpper(b, 7)
	sol, err = lp.SolveModel(triv)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("trivial model: status %v", sol.Status)
	}
	if sol.Objective != -6 || sol.X[a] != 2 || sol.X[b] != 0 {
		t.Fatalf("trivial model: obj=%v X=%v", sol.Objective, sol.X)
	}

	unb := lp.NewModel()
	unb.AddVar(-1, "free")
	sol, err = lp.SolveModel(unb)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Unbounded {
		t.Fatalf("negative cost, no bound, no rows: status %v", sol.Status)
	}
}
