//go:build lpchaos

package lp

import (
	"errors"
	"math"
	"testing"
)

// FuzzRecoveryLadder throws random small LPs plus random fault scripts at
// the recovery ladder. The contract: every solve must end in Optimal,
// Infeasible, or Unbounded with clean residuals, in a budget-exhausted
// IterLimit diagnostic, or in a diagnosed ErrNumerical — never a silently
// wrong answer. Optimal outcomes are cross-checked against an uninjected
// dense-engine solve of the same model.
func FuzzRecoveryLadder(f *testing.F) {
	// Seeds: a clean small LP, fault-heavy scripts, and degenerate shapes.
	f.Add([]byte{3, 3, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{5, 4, 2, 1, 9, 200, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 3, 7})
	f.Add([]byte{1, 1, 0, 3, 1, 255, 255})
	f.Add([]byte{6, 2, 1, 0, 2, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27})
	f.Add([]byte{2, 6, 3, 2, 1, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 127, 63, 31})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				pos = 0 // wrap: short inputs still define full problems
			}
			b := data[pos]
			pos++
			return b
		}
		nVars := 1 + int(next())%6
		nRows := 1 + int(next())%6
		script := ChaosScript{
			Seed:          uint64(next()),
			FailFactor:    int(next()) % 3,
			FailFactorEta: int(next()) % 4,
			EtaNoise:      float64(int(next())%5) * 2.5e-3,
			EtaEvery:      int(next()) % 4,
			DevexEvery:    int(next()) % 4,
		}

		m := NewModel()
		v0 := m.AddVars(nVars)
		for j := 0; j < nVars; j++ {
			m.SetObj(v0+VarID(j), float64(int(next())%11-5))
		}
		for i := 0; i < nRows; i++ {
			var terms []Term
			for j := 0; j < nVars; j++ {
				if c := int(next())%11 - 5; c != 0 {
					terms = append(terms, Term{Var: v0 + VarID(j), Coef: float64(c)})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{Var: v0, Coef: 1})
			}
			rel := []Rel{LE, GE, EQ}[int(next())%3]
			m.AddRow(terms, rel, float64(int(next())%21-10), "")
		}

		s := NewSolver(m)
		s.MaxIters = 5000
		s.SetChaos(&script)
		sol, err := s.Solve()
		if err != nil {
			// A diagnosed numerical failure under injected faults is an
			// acceptable terminal outcome; anything else is a bug.
			if errors.Is(err, ErrNumerical) {
				return
			}
			t.Fatalf("unexpected error class: %v", err)
		}

		// Uninjected dense-engine reference.
		ref := NewSolver(m)
		ref.SetEngine(EngineDense)
		ref.MaxIters = 50000
		rsol, rerr := ref.Solve()

		switch sol.Status {
		case Optimal:
			if v := m.MaxViolation(sol.X); v > 1e-5 {
				t.Fatalf("optimal claim with constraint violation %g", v)
			}
			if sol.Diag.Residual > ladderResidTol {
				t.Fatalf("optimal claim with residual %g", sol.Diag.Residual)
			}
			if rerr != nil || rsol.Status == IterLimit {
				return // no usable oracle for this instance
			}
			if rsol.Status != Optimal {
				t.Fatalf("chaotic solve optimal (%.17g) but reference is %v", sol.Objective, rsol.Status)
			}
			if tol := 1e-5 * (1 + math.Abs(rsol.Objective)); math.Abs(sol.Objective-rsol.Objective) > tol {
				t.Fatalf("wrong optimum under faults: %.17g, reference %.17g (ladder %v)",
					sol.Objective, rsol.Objective, sol.Diag.Ladder)
			}
		case Infeasible, Unbounded:
			if rerr != nil || rsol.Status == IterLimit {
				return
			}
			if rsol.Status != sol.Status {
				t.Fatalf("chaotic solve says %v but reference says %v", sol.Status, rsol.Status)
			}
		case IterLimit:
			if !sol.Diag.BudgetExhausted {
				t.Fatal("IterLimit without a budget-exhausted diagnostic")
			}
		}
	})
}
