package lp

// The eta file: the product-form-of-the-inverse update sequence layered on
// top of the sparse LU factors. Each simplex pivot appends one eta vector
// (the FTRAN image of the entering column, pivoted at the leaving row's
// basis position), so after k pivots
//
//	Binv = E_k · … · E_1 · (LU)^{-1}.
//
// FTRAN applies the factors first and then the etas in append order; BTRAN
// applies the etas transposed in reverse order and then the factors
// transposed. The file is rebuilt empty at every refactorization.

const (
	// etaRefactorCount bounds the number of update etas before a
	// refactorization: FTRAN/BTRAN cost grows linearly with the file, while
	// refactorization amortizes it back to the LU fill.
	etaRefactorCount = 64
	// etaRefactorFill triggers an early refactorization when the eta file's
	// nonzeros exceed this multiple of the factor nonzeros — the signature
	// of dense spike columns polluting the product form.
	etaRefactorFill = 8
)

// Op kinds in the product-form file.
const (
	// etaOpPivot is a simplex pivot update: the FTRAN image of the entering
	// column, pivoted at the leaving basis position.
	etaOpPivot uint8 = iota
	// etaOpBorder is a basis extension from AddCut: the cut-extended basis
	// is block lower-triangular [[B 0] [a^T g]], so its inverse is the old
	// representation plus one border elimination. A border op's FTRAN
	// formula is exactly a pivot op's BTRAN formula and vice versa, which
	// is why the two kinds share storage.
	etaOpBorder
)

// etaFile stores the update ops column-compressed: for op t, the pivot
// basis position r[t] with pivot value piv[t] (the cut's logical-column
// entry g for borders), and the off-pivot entries (pos, val) in the
// half-open segment ptr[t]..ptr[t+1] (the basic-column coefficients a of
// the new row for borders).
type etaFile struct {
	pos  []int32
	val  []float64
	ptr  []int32
	r    []int32
	piv  []float64
	kind []uint8
}

func (e *etaFile) reset() {
	e.pos = e.pos[:0]
	e.val = e.val[:0]
	e.ptr = append(e.ptr[:0], 0)
	e.r = e.r[:0]
	e.piv = e.piv[:0]
	e.kind = e.kind[:0]
}

// count reports the number of update ops since the last refactorization.
func (e *etaFile) count() int { return len(e.r) }

// nnz reports the total stored entries including pivots.
func (e *etaFile) nnz() int { return len(e.val) + len(e.piv) }

// appendBorder records a basis extension at position r with diagonal g and
// prior-position coefficients aB (dense, indexed by position, length r).
func (e *etaFile) appendBorder(r int, g float64, aB []float64) {
	e.r = append(e.r, int32(r))
	e.piv = append(e.piv, g)
	e.kind = append(e.kind, etaOpBorder)
	for p, a := range aB {
		//lint:ignore floatcmp exact zeros stay structurally absent from the border
		if a != 0 {
			e.pos = append(e.pos, int32(p))
			e.val = append(e.val, a)
		}
	}
	e.ptr = append(e.ptr, int32(len(e.pos)))
}

// applyFtran applies the ops in append order to the position-space vector v.
// Border rows must already carry their raw right-hand-side components.
func (e *etaFile) applyFtran(v []float64) {
	for t := 0; t < len(e.r); t++ {
		// Subslice the segment once so the inner loops index two equal-length
		// slices; the compiler drops the per-element bounds checks.
		pos := e.pos[e.ptr[t]:e.ptr[t+1]]
		val := e.val[e.ptr[t]:e.ptr[t+1]]
		if e.kind[t] == etaOpBorder {
			acc := v[e.r[t]]
			for k, p := range pos {
				acc -= val[k] * v[p]
			}
			//lint:ignore nanguard border diagonals are ±1 by construction (AddCut logicals)
			v[e.r[t]] = acc / e.piv[t]
			continue
		}
		//lint:ignore nanguard pivots pass the ratio-test magnitude bound at append time
		vr := v[e.r[t]] / e.piv[t]
		//lint:ignore floatcmp exact zero skips a structurally empty eta step
		if vr != 0 {
			for k, p := range pos {
				v[p] -= val[k] * vr
			}
		}
		v[e.r[t]] = vr
	}
}

// applyBtran applies the transposed ops in reverse order to the
// position-space vector w.
func (e *etaFile) applyBtran(w []float64) {
	for t := len(e.r) - 1; t >= 0; t-- {
		// Subslice the segment once so the inner loops index two equal-length
		// slices; the compiler drops the per-element bounds checks.
		pos := e.pos[e.ptr[t]:e.ptr[t+1]]
		val := e.val[e.ptr[t]:e.ptr[t+1]]
		if e.kind[t] == etaOpBorder {
			//lint:ignore nanguard border diagonals are ±1 by construction (AddCut logicals)
			zt := w[e.r[t]] / e.piv[t]
			//lint:ignore floatcmp exact zero skips a structurally empty border step
			if zt != 0 {
				for k, p := range pos {
					w[p] -= val[k] * zt
				}
			}
			w[e.r[t]] = zt
			continue
		}
		acc := w[e.r[t]]
		for k, p := range pos {
			acc -= val[k] * w[p]
		}
		//lint:ignore nanguard pivots pass the ratio-test magnitude bound at append time
		w[e.r[t]] = acc / e.piv[t]
	}
}

// pivotEta appends the pivot's eta vector, updates the basic solution values
// incrementally, and refactorizes when the eta file has grown past the count
// or fill thresholds. Callers have already updated basis/pos/xB[leaveRow],
// so a refactorization here sees the post-pivot basis.
func (s *Solver) pivotEta(leaveRow int, u []float64, step float64) error {
	s.chaos.perturbEta(u)
	e := &s.etas
	e.r = append(e.r, int32(leaveRow))
	e.piv = append(e.piv, u[leaveRow])
	e.kind = append(e.kind, etaOpPivot)
	for i, ui := range u {
		if i == leaveRow {
			continue
		}
		//lint:ignore floatcmp exact zeros stay structurally absent from the eta
		if ui == 0 {
			continue
		}
		e.pos = append(e.pos, int32(i))
		e.val = append(e.val, ui)
		s.xB[i] -= ui * step
	}
	e.ptr = append(e.ptr, int32(len(e.pos)))
	if e.count() >= etaRefactorCount || e.nnz() > etaRefactorFill*(s.lu.nnz()+s.nRows) {
		if err := s.factorizeSparse(); err != nil {
			s.factorOK = false
			return err
		}
		if s.luRepairs > 0 {
			// The repair swapped basis columns; the incremental xB and the
			// drivers' incremental duals no longer match the repaired basis.
			s.basisRepaired = true
			s.recomputeXB()
		}
	}
	return nil
}
