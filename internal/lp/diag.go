package lp

import (
	"fmt"
	"strings"
	"time"
)

// Diagnostics is the numerical post-mortem of one Solve/SolveCtx call: which
// recovery-ladder rungs fired, how much work the solve consumed, and how
// trustworthy the returned basis is. A clean solve has Attempts == 1 and an
// empty Ladder.
type Diagnostics struct {
	// Ladder lists the recovery rungs applied, in escalation order (see
	// recover.go for the rung sequence). Empty on a clean solve.
	Ladder []string
	// Attempts counts simplex runs, including the first; rung escalations
	// add one attempt each.
	Attempts int
	// Refactorizations counts basis factorizations during the solve
	// (scheduled eta-file rebuilds, accuracy refreshes, and ladder-forced
	// rebuilds alike).
	Refactorizations int
	// Residual is the basis accuracy ||A_B xB - b||_inf measured at exit;
	// populated for Optimal and Infeasible outcomes, zero otherwise.
	Residual float64
	// DualGap is the worst reduced-cost violation against the true
	// (unjittered) costs at an Optimal exit. It is measured only when the
	// ladder fired (clean solves skip the full-column scan), and values
	// around the jitter magnitude are normal.
	DualGap float64
	// Iterations is the total pivot count across all attempts and phases.
	Iterations int
	// Elapsed is the wall-clock duration of the solve.
	Elapsed time.Duration
	// EngineFallback reports that the ladder abandoned the sparse eta
	// engine for the dense oracle engine during this solve.
	EngineFallback bool
	// BudgetExhausted reports that the solve ended at IterLimit: the pivot
	// budget (MaxIters) or the context deadline ran out before convergence.
	BudgetExhausted bool
	// DeadlineHit reports that the context expired (deadline or
	// cancellation) during the solve; the outcome is then IterLimit.
	DeadlineHit bool
	// Presolve summarizes the model reductions applied before the solve;
	// zero when the solve ran on the original model (the in-loop Solver API
	// never presolves — only SolveModel/SolveModelCtx do).
	Presolve PresolveStats
}

// PresolveStats counts the reductions a presolve pass applied to a model
// before handing the rest to the simplex.
type PresolveStats struct {
	// RowsRemoved counts constraint rows eliminated (empty rows and
	// singleton rows converted to variable bounds or fixings).
	RowsRemoved int
	// ColsRemoved counts variables eliminated (fixed, empty, or dominated).
	ColsRemoved int
	// BoundsAdded counts upper bounds introduced by singleton-row
	// conversion, replacing explicit capacity rows.
	BoundsAdded int
	// Passes counts fixpoint sweeps until no further reduction applied.
	Passes int
}

// Empty reports whether the pass applied no reduction at all.
func (p PresolveStats) Empty() bool {
	return p.RowsRemoved == 0 && p.ColsRemoved == 0 && p.BoundsAdded == 0
}

// Summary renders the diagnostics as a one-line report for logs and CLI
// failure output.
func (d Diagnostics) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attempts=%d refactorizations=%d iterations=%d elapsed=%s",
		d.Attempts, d.Refactorizations, d.Iterations, d.Elapsed.Round(time.Microsecond))
	if len(d.Ladder) > 0 {
		fmt.Fprintf(&b, " ladder=%s", strings.Join(d.Ladder, ","))
	}
	if d.Residual > 0 {
		fmt.Fprintf(&b, " residual=%.3g", d.Residual)
	}
	if d.DualGap > 0 {
		fmt.Fprintf(&b, " dual-gap=%.3g", d.DualGap)
	}
	if d.EngineFallback {
		b.WriteString(" engine-fallback=dense")
	}
	if d.BudgetExhausted {
		b.WriteString(" budget-exhausted=true")
	}
	if d.DeadlineHit {
		b.WriteString(" deadline-hit=true")
	}
	if !d.Presolve.Empty() {
		fmt.Fprintf(&b, " presolve=rows-%d/cols-%d/bounds+%d",
			d.Presolve.RowsRemoved, d.Presolve.ColsRemoved, d.Presolve.BoundsAdded)
	}
	return b.String()
}

// DiagError is returned when the recovery ladder is exhausted without
// producing a trustworthy basis. It wraps ErrNumerical (so errors.Is keeps
// working) and carries the full Diagnostics for reporting.
type DiagError struct {
	Diag Diagnostics
	Err  error
}

// Error renders the underlying failure plus the ladder summary.
func (e *DiagError) Error() string {
	return fmt.Sprintf("%v (after recovery ladder: %s)", e.Err, e.Diag.Summary())
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *DiagError) Unwrap() error { return e.Err }
