package lp_test

// Parallel Devex pricing: scoring the candidate list is a read-only pass
// over fixed duals, so Solver.PriceWorkers fans it out over par.Do index
// slots and reduces sequentially. The contract under test is bit-for-bit
// equality: the entire solve trajectory — status, pivot count, objective,
// and every solution coordinate — must be identical at every worker count.

import (
	"fmt"
	"testing"

	"tcr/internal/lp"
)

// solveAt cold-solves the k-torus design LP with a pool of permutation
// cuts installed, pricing on the given worker count.
func solveAt(tb testing.TB, bl *benchLP, e lp.Engine, workers int) *lp.Solution {
	tb.Helper()
	s := lp.NewSolver(bl.fl.Model())
	s.SetEngine(e)
	s.PriceWorkers = workers
	for _, c := range bl.cuts {
		s.AddCut(c, lp.LE, 0)
	}
	sol, err := s.Solve()
	if err != nil {
		tb.Fatal(err)
	}
	return sol
}

func TestPriceWorkersBitForBit(t *testing.T) {
	for _, k := range []int{4, 6} {
		bl := designBenchLP(k, 24)
		for _, e := range benchEngines {
			ref := solveAt(t, bl, e, 1)
			for _, w := range []int{2, 4, 8} {
				got := solveAt(t, bl, e, w)
				if got.Status != ref.Status || got.Iterations != ref.Iterations {
					t.Fatalf("k=%d/%s workers=%d: trajectory (%v, %d pivots) != sequential (%v, %d pivots)",
						k, e, w, got.Status, got.Iterations, ref.Status, ref.Iterations)
				}
				//lint:ignore floatcmp the parallel-pricing contract is bit-for-bit equality
				if got.Objective != ref.Objective {
					t.Fatalf("k=%d/%s workers=%d: objective %.17g != %.17g",
						k, e, w, got.Objective, ref.Objective)
				}
				for j := range ref.X {
					//lint:ignore floatcmp the parallel-pricing contract is bit-for-bit equality
					if got.X[j] != ref.X[j] {
						t.Fatalf("k=%d/%s workers=%d: x[%d] = %.17g != %.17g",
							k, e, w, j, got.X[j], ref.X[j])
					}
				}
			}
		}
	}
}

// BenchmarkPriceWorkers measures the cold solve of the cut-laden k=6
// design LP at 1, 2, and 4 pricing workers (eta engine — the default
// build). The w=1 point is the inline baseline the parallel path must not
// regress.
func BenchmarkPriceWorkers(b *testing.B) {
	bl := designBenchLP(6, 24)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=6/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := lp.NewSolver(bl.fl.Model())
				s.SetEngine(lp.EngineEta)
				s.PriceWorkers = w
				for _, c := range bl.cuts {
					s.AddCut(c, lp.LE, 0)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
