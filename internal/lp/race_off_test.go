//go:build !race

package lp_test

// raceEnabled reports whether the race detector instruments this build; see
// race_on_test.go for the other half. Performance-assertion tests skip under
// the detector, whose instrumentation skews engine timings unevenly.
const raceEnabled = false
