package lp

import (
	"math"
	"testing"
)

// solveModel is a test helper: cold solve with failure on error.
func solveModel(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := NewSolver(m).Solve()
	if err != nil {
		t.Fatalf("solve failed: %v", err)
	}
	return sol
}

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  => min -x-y. Optimum at x=1.6,y=1.2.
	m := NewModel()
	x := m.AddVar(-1, "x")
	y := m.AddVar(-1, "y")
	m.AddRow([]Term{{x, 1}, {y, 2}}, LE, 4, "c1")
	m.AddRow([]Term{{x, 3}, {y, 1}}, LE, 6, "c2")
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "x", sol.X[x], 1.6, 1e-8)
	wantClose(t, "y", sol.X[y], 1.2, 1e-8)
	wantClose(t, "obj", sol.Objective, -2.8, 1e-8)
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x >= 4, y >= 2. Optimum x=8,y=2 -> 22.
	m := NewModel()
	x := m.AddVar(2, "x")
	y := m.AddVar(3, "y")
	m.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 10, "sum")
	m.AddRow([]Term{{x, 1}}, GE, 4, "xmin")
	m.AddRow([]Term{{y, 1}}, GE, 2, "ymin")
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "obj", sol.Objective, 22, 1e-8)
	wantClose(t, "x", sol.X[x], 8, 1e-8)
	wantClose(t, "y", sol.X[y], 2, 1e-8)
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow([]Term{{x, 1}}, LE, 1, "")
	m.AddRow([]Term{{x, 1}}, GE, 2, "")
	sol := solveModel(t, m)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x") // min -x, x unbounded above
	y := m.AddVar(0, "y")
	m.AddRow([]Term{{x, 1}, {y, -1}}, LE, 5, "")
	sol := solveModel(t, m)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3)
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow([]Term{{x, -1}}, LE, -3, "")
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "x", sol.X[x], 3, 1e-8)
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example; Bland fallback must terminate.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5 x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	m := NewModel()
	x4 := m.AddVar(-0.75, "x4")
	x5 := m.AddVar(150, "x5")
	x6 := m.AddVar(-0.02, "x6")
	x7 := m.AddVar(6, "x7")
	m.AddRow([]Term{{x4, 0.25}, {x5, -60}, {x6, -1.0 / 25}, {x7, 9}}, LE, 0, "")
	m.AddRow([]Term{{x4, 0.5}, {x5, -90}, {x6, -1.0 / 50}, {x7, 3}}, LE, 0, "")
	m.AddRow([]Term{{x6, 1}}, LE, 1, "")
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "obj", sol.Objective, -0.05, 1e-9)
}

func TestRedundantRows(t *testing.T) {
	// Duplicated equalities exercise dependent-row handling in phase 1.
	m := NewModel()
	x := m.AddVar(1, "x")
	y := m.AddVar(1, "y")
	m.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 4, "")
	m.AddRow([]Term{{x, 2}, {y, 2}}, EQ, 8, "")
	m.AddRow([]Term{{x, 1}}, GE, 1, "")
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "obj", sol.Objective, 4, 1e-8)
}

func TestDualValues(t *testing.T) {
	// min -3x -5y s.t. x<=4, 2y<=12, 3x+2y<=18.
	// Classic: optimum (2,6), obj -36, duals 0, -1.5, -1.
	m := NewModel()
	x := m.AddVar(-3, "x")
	y := m.AddVar(-5, "y")
	r1 := m.AddRow([]Term{{x, 1}}, LE, 4, "")
	r2 := m.AddRow([]Term{{y, 2}}, LE, 12, "")
	r3 := m.AddRow([]Term{{x, 3}, {y, 2}}, LE, 18, "")
	sol := solveModel(t, m)
	wantClose(t, "obj", sol.Objective, -36, 1e-8)
	wantClose(t, "dual1", sol.Dual[r1], 0, 1e-8)
	wantClose(t, "dual2", sol.Dual[r2], -1.5, 1e-8)
	wantClose(t, "dual3", sol.Dual[r3], -1, 1e-8)
	// Strong duality: obj = y^T b.
	g := sol.Dual[r1]*4 + sol.Dual[r2]*12 + sol.Dual[r3]*18
	wantClose(t, "y.b", g, sol.Objective, 1e-8)
}

func TestWarmStartAddCut(t *testing.T) {
	// Solve, then add a cut violating the optimum; dual simplex re-solve.
	m := NewModel()
	x := m.AddVar(-1, "x")
	y := m.AddVar(-1, "y")
	m.AddRow([]Term{{x, 1}}, LE, 3, "")
	m.AddRow([]Term{{y, 1}}, LE, 3, "")
	s := NewSolver(m)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "obj0", sol.Objective, -6, 1e-8)

	s.AddCut([]Term{{x, 1}, {y, 1}}, LE, 4)
	sol, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "obj1", sol.Objective, -4, 1e-8)
	wantClose(t, "cut activity", sol.X[x]+sol.X[y], 4, 1e-8)

	// Stacking more cuts keeps working.
	s.AddCut([]Term{{x, 2}, {y, 1}}, LE, 5)
	sol, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// max x+y s.t. x<=3,y<=3,x+y<=4,2x+y<=5 -> (1,3) obj -4.
	wantClose(t, "obj2", sol.Objective, -4, 1e-8)
	wantClose(t, "x2", sol.X[x], 1, 1e-8)
}

func TestWarmStartSetRHS(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	r := m.AddRow([]Term{{x, 1}}, LE, 3, "")
	_ = r
	s := NewSolver(m)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "obj", sol.Objective, -3, 1e-8)
	for _, rhs := range []float64{5, 1, 10, 0.25} {
		s.SetRHS(0, rhs)
		sol, err = s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		wantClose(t, "obj", sol.Objective, -rhs, 1e-8)
	}
}

func TestWarmStartSetObj(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	y := m.AddVar(-2, "y")
	m.AddRow([]Term{{x, 1}, {y, 1}}, LE, 10, "")
	s := NewSolver(m)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "obj", sol.Objective, -20, 1e-8)
	// Flip preference: now x is more valuable.
	s.SetObjCoef(x, -5)
	sol, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "obj2", sol.Objective, -50, 1e-8)
	wantClose(t, "x", sol.X[x], 10, 1e-8)
}

func TestEqualityWithNegativeRHS(t *testing.T) {
	// min x+y s.t. x - y == -5  -> x=0, y=5.
	m := NewModel()
	x := m.AddVar(1, "x")
	y := m.AddVar(1, "y")
	m.AddRow([]Term{{x, 1}, {y, -1}}, EQ, -5, "")
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "obj", sol.Objective, 5, 1e-8)
	wantClose(t, "y", sol.X[y], 5, 1e-8)
}

func TestZeroRowsAndVars(t *testing.T) {
	// A model with no rows: min over x >= 0 of 3x is 0.
	m := NewModel()
	x := m.AddVar(3, "x")
	sol := solveModel(t, m)
	wantClose(t, "obj", sol.Objective, 0, 1e-12)
	wantClose(t, "x", sol.X[x], 0, 1e-12)
}

func TestMergeDuplicateTerms(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	// x + x >= 4  ->  2x >= 4 -> x = 2.
	m.AddRow([]Term{{x, 1}, {x, 1}}, GE, 4, "")
	sol := solveModel(t, m)
	wantClose(t, "x", sol.X[x], 2, 1e-8)
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (10, 15) x 3 demands (8, 7, 10); costs:
	//   [2 4 5]
	//   [3 1 7]
	// Known optimum: ship s1->d0:8, s1->d1:7, s0->d2:10
	// cost = 24 + 7 + 50 = 81.
	m := NewModel()
	cost := [2][3]float64{{2, 4, 5}, {3, 1, 7}}
	var v [2][3]VarID
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v[i][j] = m.AddVar(cost[i][j], "")
		}
	}
	supply := []float64{10, 15}
	demand := []float64{8, 7, 10}
	for i := 0; i < 2; i++ {
		m.AddRow([]Term{{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}}, LE, supply[i], "")
	}
	for j := 0; j < 3; j++ {
		m.AddRow([]Term{{v[0][j], 1}, {v[1][j], 1}}, EQ, demand[j], "")
	}
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	wantClose(t, "obj", sol.Objective, 81, 1e-7)
}

func TestSolutionFeasibility(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	y := m.AddVar(-3, "y")
	z := m.AddVar(2, "z")
	m.AddRow([]Term{{x, 1}, {y, 1}, {z, 1}}, LE, 7, "")
	m.AddRow([]Term{{x, 2}, {y, -1}}, GE, -4, "")
	m.AddRow([]Term{{y, 1}, {z, 3}}, EQ, 5, "")
	sol := solveModel(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if viol := m.MaxViolation(sol.X); viol > 1e-7 {
		t.Errorf("solution violates constraints by %v", viol)
	}
}
