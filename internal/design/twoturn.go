package design

import (
	"context"
	"fmt"
	"math"

	"tcr/internal/eval"
	"tcr/internal/lp"
	"tcr/internal/matching"
	"tcr/internal/par"
	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// PathFamily enumerates a closed-form path set per pair; the design LPs
// optimize the probability weighting over it (the 2TURN idea of Section 5.2:
// abandon a closed-form *algorithm* but keep closed-form *paths*).
type PathFamily func(t *topo.Torus, s, d topo.Node) []paths.Path

// PathLP is a path-based routing design problem over a family of candidate
// paths from the canonical source to every relative destination, with
// constraint-generated worst-case or average-case load bounds.
type PathLP struct {
	T    *topo.Torus
	opts Options

	rels   []topo.Node // relative destinations, 1..N-1
	pths   [][]paths.Path
	chBits [][][]uint64 // [relIdx][pathIdx] channel bitset
	varOf  [][]lp.VarID
	lens   [][]int

	solver *lp.Solver
	wVar   lp.VarID
	tVars  []lp.VarID
	hRow   lp.RowID
	hasH   bool
	blocks []*potBlock // matching-dual potentials (worst-case mode)

	samples []*traffic.Matrix
}

// NewPathLP enumerates the family and builds the base LP (distribution rows
// per destination, objective min w or min mean(t) when samples are given).
// It fails if the family produces no path for some destination: the caller
// supplies the family, so an empty one is a data condition, not a bug.
func NewPathLP(t *topo.Torus, family PathFamily, samples []*traffic.Matrix, withLocality bool, opts Options) (*PathLP, error) {
	p := &PathLP{T: t, opts: opts, samples: samples, hRow: -1}
	words := (t.C + 63) / 64
	m := lp.NewModel()
	for rel := 1; rel < t.N; rel++ {
		ps := family(t, 0, topo.Node(rel))
		if len(ps) == 0 {
			return nil, fmt.Errorf("design: empty path family for destination %d", rel)
		}
		vars := make([]lp.VarID, len(ps))
		bits := make([][]uint64, len(ps))
		lens := make([]int, len(ps))
		for i, path := range ps {
			vars[i] = m.AddVar(0, "")
			b := make([]uint64, words)
			for _, c := range path.Channels(t) {
				b[int(c)/64] |= 1 << (uint(c) % 64)
			}
			bits[i] = b
			lens[i] = path.Len()
		}
		p.rels = append(p.rels, topo.Node(rel))
		p.pths = append(p.pths, ps)
		p.chBits = append(p.chBits, bits)
		p.varOf = append(p.varOf, vars)
		p.lens = append(p.lens, lens)
	}
	p.wVar = m.AddVar(0, "w")
	if samples == nil {
		m.SetObj(p.wVar, 1)
		p.blocks = addPotentialBlocks(m, t, p.wVar)
	} else {
		inv := 1 / float64(len(samples))
		p.tVars = make([]lp.VarID, len(samples))
		for i := range samples {
			p.tVars[i] = m.AddVar(inv, fmt.Sprintf("t[%d]", i))
		}
	}

	// Unit-distribution rows.
	for ri := range p.rels {
		terms := make([]lp.Term, len(p.varOf[ri]))
		for i, v := range p.varOf[ri] {
			terms[i] = lp.Term{Var: v, Coef: 1}
		}
		m.AddRow(terms, lp.EQ, 1, "")
	}
	if withLocality {
		var terms []lp.Term
		for ri := range p.rels {
			for i, v := range p.varOf[ri] {
				if p.lens[ri][i] != 0 {
					terms = append(terms, lp.Term{Var: v, Coef: float64(p.lens[ri][i])})
				}
			}
		}
		p.hRow = m.AddRow(terms, lp.LE, float64(t.N)*t.MeanMinDist(), "H")
		p.hasH = true
	}
	p.solver = lp.NewSolver(m)
	// Path LPs have enormous, harmless optimal faces (any optimal vertex
	// is an equally valid probability weighting); the anti-degeneracy cost
	// jitter would make the simplex chase a noise-optimal vertex across
	// that face, so switch it off here.
	p.solver.SetJitter(false)
	return p, nil
}

// SetLocality re-targets the locality row (normalized units).
func (p *PathLP) SetLocality(hNorm float64) {
	if !p.hasH {
		//lint:ignore libpanic caller bug, not a data condition: every in-package caller builds the LP with a locality row
		panic("design: SetLocality on a path LP built without a locality row")
	}
	p.solver.SetRHS(int(p.hRow), hNorm*float64(p.T.N)*p.T.MeanMinDist())
}

// pathUses reports whether path (ri, i) crosses channel c.
func (p *PathLP) pathUses(ri, i int, c topo.Channel) bool {
	return p.chBits[ri][i][int(c)/64]&(1<<(uint(c)%64)) != 0
}

// relIndex maps a relative destination node to its slice index (rel-1).
func (p *PathLP) relIndex(rel topo.Node) int { return int(rel) - 1 }

// loadTerms returns the LP terms of gamma_c(R, Lambda) for a pattern given
// as entries (s, d, coef).
func (p *PathLP) permCut(c topo.Channel, perm []int, bound lp.VarID) {
	t := p.T
	var terms []lp.Term
	ux, uy := t.Coord(t.ChanSrc(c))
	dir := t.ChanDir(c)
	for s, d := range perm {
		if s == d {
			continue
		}
		sx, sy := t.Coord(topo.Node(s))
		tc := t.Chan(t.NodeAt(ux-sx, uy-sy), dir)
		rx, ry := t.Rel(topo.Node(s), topo.Node(d))
		ri := p.relIndex(t.NodeAt(rx, ry))
		for i, v := range p.varOf[ri] {
			if p.pathUses(ri, i, tc) {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
		}
	}
	terms = append(terms, lp.Term{Var: bound, Coef: -1})
	p.solver.AddCut(terms, lp.LE, 0)
}

// matrixCut adds gamma_c(R, Lambda) <= bound for a dense pattern.
func (p *PathLP) matrixCut(c topo.Channel, lam *traffic.Matrix, bound lp.VarID) {
	t := p.T
	var terms []lp.Term
	ux, uy := t.Coord(t.ChanSrc(c))
	dir := t.ChanDir(c)
	for s := 0; s < t.N; s++ {
		sx, sy := t.Coord(topo.Node(s))
		tc := t.Chan(t.NodeAt(ux-sx, uy-sy), dir)
		for d := 0; d < t.N; d++ {
			//lint:ignore floatcmp sparsity skip: entries never written stay exactly 0
			if s == d || lam.L[s][d] == 0 {
				continue
			}
			rx, ry := t.Rel(topo.Node(s), topo.Node(d))
			ri := p.relIndex(t.NodeAt(rx, ry))
			for i, v := range p.varOf[ri] {
				if p.pathUses(ri, i, tc) {
					terms = append(terms, lp.Term{Var: v, Coef: lam.L[s][d]})
				}
			}
		}
	}
	terms = append(terms, lp.Term{Var: bound, Coef: -1})
	p.solver.AddCut(terms, lp.LE, 0)
}

// table converts an LP solution into a routing table (dropping
// zero-probability paths and renormalizing away LP tolerance dust).
func (p *PathLP) table(x []float64, label string) *routing.Table {
	dist := make(map[topo.Node][]paths.Weighted, len(p.rels))
	for ri, rel := range p.rels {
		var ws []paths.Weighted
		var sum float64
		for i, v := range p.varOf[ri] {
			if pr := x[v]; pr > pathProbFloor {
				ws = append(ws, paths.Weighted{Path: p.pths[ri][i], Prob: pr})
				sum += pr
			}
		}
		for i := range ws {
			ws[i].Prob /= sum
		}
		dist[rel] = ws
	}
	return &routing.Table{Label: label, Dist: dist}
}

// flowOf builds the flow table of an LP solution.
func (p *PathLP) flowOf(x []float64) *eval.Flow {
	f := eval.NewFlow(p.T)
	for ri, rel := range p.rels {
		for i, v := range p.varOf[ri] {
			pr := x[v]
			//lint:ignore floatcmp sparsity skip: nonbasic LP variables are exactly 0
			if pr == 0 {
				continue
			}
			for _, c := range p.pths[ri][i].Channels(p.T) {
				f.X[rel][c] += pr
			}
		}
	}
	return f
}

// PathResult bundles a designed path-based algorithm with its metrics.
type PathResult struct {
	Table *routing.Table
	Flow  *eval.Flow
	// Objective of the final stage's LP (worst-case load, mean max load,
	// or total path length depending on the stage).
	Objective float64
	GammaWC   float64
	HAvg      float64
	HNorm     float64
	Rounds    int
}

// pairRowPath adds the lazy potential constraint
// load_{s,d}(c) - u_s - v_d <= 0 in path variables.
func (p *PathLP) pairRowPath(b *potBlock, s, d int) {
	t := p.T
	ux, uy := t.Coord(t.ChanSrc(b.ch))
	sx, sy := t.Coord(topo.Node(s))
	tc := t.Chan(t.NodeAt(ux-sx, uy-sy), t.ChanDir(b.ch))
	rx, ry := t.Rel(topo.Node(s), topo.Node(d))
	ri := p.relIndex(t.NodeAt(rx, ry))
	var terms []lp.Term
	for i, v := range p.varOf[ri] {
		if p.pathUses(ri, i, tc) {
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
	}
	terms = append(terms,
		lp.Term{Var: b.u + lp.VarID(s), Coef: -1},
		lp.Term{Var: b.v + lp.VarID(d), Coef: -1},
	)
	p.solver.AddCut(terms, lp.LE, 0)
	b.added[s*t.N+d] = true
}

// solveWC runs worst-case constraint generation against the given bound
// using the matching-dual potential formulation (lazy pair rows). When
// fixedBound is NaN the w variable is free (stage 1); otherwise rows must
// hold at the fixed numeric bound (stage 2). The per-block oracles run on
// Options.Workers goroutines; rows are added in block order afterwards, so
// the cut sequence is worker-count independent.
func (p *PathLP) solveWC(ctx context.Context, fixedBound float64) (*lp.Solution, int, error) {
	tol := p.opts.tol()
	loads := make([][][]float64, len(p.blocks))
	gammas := make([]float64, len(p.blocks))
	for round := 0; round < p.opts.rounds(); round++ {
		if err := ctx.Err(); err != nil {
			return nil, round, err
		}
		sol, err := p.solver.Solve()
		if err != nil {
			return nil, round, err
		}
		if sol.Status != lp.Optimal {
			return nil, round, fmt.Errorf("design: path LP status %v", sol.Status)
		}
		flow := p.flowOf(sol.X)
		bound := fixedBound
		if math.IsNaN(bound) {
			bound = sol.X[p.wVar]
		}
		// Unlike the flow formulation (whose conservation base is large),
		// the path LP's base is only one row per destination, so growing
		// every violated block each round is cheap and cuts round count.
		// Aggregate permutation cuts are NOT added here: their rows are
		// dense in path variables and bloat every subsequent pricing pass.
		err = par.Do(ctx, len(p.blocks), p.opts.Workers, func(bi int) error {
			loads[bi] = pairLoadMatrix(flow, p.blocks[bi].ch)
			_, g, err := matching.MaxWeightAssignment(loads[bi])
			if err != nil {
				return err
			}
			gammas[bi] = g
			return nil
		})
		if err != nil {
			return nil, round, err
		}
		certified := true
		limit := bound + tol*math.Max(1, bound)
		progressed := false
		for bi, b := range p.blocks {
			if gammas[bi] <= limit {
				continue
			}
			certified = false
			for i, idx := range violatedPairs(p.T.N, b, sol.X, loads[bi], tol) {
				if i >= 48 {
					break
				}
				p.pairRowPath(b, idx/p.T.N, idx%p.T.N)
				progressed = true
			}
		}
		if certified {
			return sol, round + 1, nil
		}
		if !progressed {
			return nil, round, fmt.Errorf("design: path LP oracle violated but no rows to add")
		}
	}
	return nil, p.opts.rounds(), fmt.Errorf("design: path LP cuts did not converge")
}

// DesignTwoTurn produces the 2TURN algorithm (Section 5.2): over all
// at-most-two-turn paths, first minimize worst-case channel load, then
// minimize average path length while keeping the worst case within
// Options.Slack of optimal.
func DesignTwoTurn(t *topo.Torus, opts Options) (*PathResult, error) {
	return DesignTwoTurnCtx(context.Background(), t, opts)
}

// DesignTwoTurnCtx is DesignTwoTurn under a cancellation context.
func DesignTwoTurnCtx(ctx context.Context, t *topo.Torus, opts Options) (*PathResult, error) {
	return designPathWC(ctx, t, paths.TwoTurnPaths, "2TURN", opts)
}

// designPathWC is the two-stage (worst case, then locality) path design.
func designPathWC(ctx context.Context, t *topo.Torus, family PathFamily, label string, opts Options) (*PathResult, error) {
	slack := opts.slack()
	p, err := NewPathLP(t, family, nil, false, opts)
	if err != nil {
		return nil, err
	}
	sol, rounds1, err := p.solveWC(ctx, math.NaN())
	if err != nil {
		return nil, err
	}
	wStar := sol.X[p.wVar] * (1 + slack)

	// Stage 2: cap w, objective becomes total path length.
	// The cap is a variable bound, not a cut row: bounded-simplex state
	// instead of one more basis row.
	p.solver.SetVarUpper(p.wVar, wStar)
	for ri := range p.rels {
		for i, v := range p.varOf[ri] {
			p.solver.SetObjCoef(v, float64(p.lens[ri][i]))
		}
	}
	p.solver.SetObjCoef(p.wVar, 0)
	sol, rounds2, err := p.solveWC(ctx, wStar)
	if err != nil {
		return nil, err
	}
	return p.finish(ctx, sol, label, rounds1+rounds2)
}

// DesignTwoTurnAvg produces the 2TURNA algorithm (Section 5.4): over the
// two-turn paths, first maximize (approximate) average-case throughput on
// the sample, then maximize locality at that throughput.
func DesignTwoTurnAvg(t *topo.Torus, samples []*traffic.Matrix, opts Options) (*PathResult, error) {
	return DesignTwoTurnAvgCtx(context.Background(), t, samples, opts)
}

// DesignTwoTurnAvgCtx is DesignTwoTurnAvg under a cancellation context.
func DesignTwoTurnAvgCtx(ctx context.Context, t *topo.Torus, samples []*traffic.Matrix, opts Options) (*PathResult, error) {
	return designPathAvg(ctx, t, paths.TwoTurnPaths, "2TURNA", samples, opts)
}

// DesignMinimalAvg runs the 2TURNA construction restricted to minimal
// paths; Section 5.4 observes the result matches ROMM's performance.
func DesignMinimalAvg(t *topo.Torus, samples []*traffic.Matrix, opts Options) (*PathResult, error) {
	return designPathAvg(context.Background(), t, paths.MinimalTwoTurnPaths, "MIN-AVG", samples, opts)
}

func designPathAvg(ctx context.Context, t *topo.Torus, family PathFamily, label string, samples []*traffic.Matrix, opts Options) (*PathResult, error) {
	slack := opts.slack()
	p, err := NewPathLP(t, family, samples, false, opts)
	if err != nil {
		return nil, err
	}
	sol, rounds1, err := p.solveAvg(ctx, math.NaN())
	if err != nil {
		return nil, err
	}
	vStar := sol.Objective * (1 + slack)

	// Stage 2: bound the mean of the t variables, minimize path length.
	inv := 1 / float64(len(samples))
	terms := make([]lp.Term, len(p.tVars))
	for i, v := range p.tVars {
		terms[i] = lp.Term{Var: v, Coef: inv}
	}
	p.solver.AddCut(terms, lp.LE, vStar)
	for ri := range p.rels {
		for i, v := range p.varOf[ri] {
			p.solver.SetObjCoef(v, float64(p.lens[ri][i]))
		}
	}
	for _, v := range p.tVars {
		p.solver.SetObjCoef(v, 0)
	}
	sol, rounds2, err := p.solveAvg(ctx, vStar)
	if err != nil {
		return nil, err
	}
	res, err := p.finish(ctx, sol, label, rounds1+rounds2)
	if err != nil {
		return nil, err
	}
	// Report the stage-1 objective (mean max load) as the result objective.
	var mean float64
	for _, v := range p.tVars {
		mean += sol.X[v] * inv
	}
	res.Objective = mean
	return res, nil
}

// solveAvg runs per-sample constraint generation. fixedCap (when not NaN)
// is informational only; per-sample bounds are the t variables either way.
// The per-sample separations run on Options.Workers goroutines into
// per-sample slots; cuts are added in sample order.
func (p *PathLP) solveAvg(ctx context.Context, fixedCap float64) (*lp.Solution, int, error) {
	_ = fixedCap
	tol := p.opts.tol()
	worstCs := make([]int, len(p.samples))
	worsts := make([]float64, len(p.samples))
	for round := 0; round < p.opts.rounds(); round++ {
		if err := ctx.Err(); err != nil {
			return nil, round, err
		}
		sol, err := p.solver.Solve()
		if err != nil {
			return nil, round, err
		}
		if sol.Status != lp.Optimal {
			return nil, round, fmt.Errorf("design: path avg LP status %v", sol.Status)
		}
		flow := p.flowOf(sol.X)
		err = par.Do(ctx, len(p.samples), p.opts.Workers, func(i int) error {
			loads := flow.ChannelLoads(p.samples[i])
			worstC, worst := 0, 0.0
			for c, l := range loads {
				if l > worst {
					worst, worstC = l, c
				}
			}
			worstCs[i], worsts[i] = worstC, worst
			return nil
		})
		if err != nil {
			return nil, round, err
		}
		violated := false
		for i, lam := range p.samples {
			if worsts[i] > sol.X[p.tVars[i]]+tol {
				p.matrixCut(topo.Channel(worstCs[i]), lam, p.tVars[i])
				violated = true
			}
		}
		if !violated {
			return sol, round + 1, nil
		}
	}
	return nil, p.opts.rounds(), fmt.Errorf("design: path avg LP cuts did not converge")
}

func (p *PathLP) finish(ctx context.Context, sol *lp.Solution, label string, rounds int) (*PathResult, error) {
	tbl := p.table(sol.X, label)
	flow := p.flowOf(sol.X)
	gw, _, err := flow.WorstCaseCtx(ctx, p.opts.Workers)
	if err != nil {
		return nil, err
	}
	return &PathResult{
		Table:     tbl,
		Flow:      flow,
		Objective: sol.Objective,
		GammaWC:   gw,
		HAvg:      flow.HAvg(),
		HNorm:     flow.HNorm(),
		Rounds:    rounds,
	}, nil
}
