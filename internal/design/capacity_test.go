package design

import (
	"math"
	"testing"

	"tcr/internal/eval"
	"tcr/internal/topo"
)

func TestCapacityMatchesClosedForm(t *testing.T) {
	// The LP-computed capacity must match the congestion-bound closed form
	// on tori (balanced minimal routing attains it).
	for _, k := range []int{3, 4, 5} {
		tor := topo.NewTorus(k)
		got, err := NetworkCapacityLP(tor, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := eval.NetworkCapacity(tor)
		if math.Abs(got-want) > 1e-5*want {
			t.Fatalf("k=%d: LP capacity %v, closed form %v", k, got, want)
		}
	}
}

func TestCapacityFlowIsMinimalish(t *testing.T) {
	// A capacity-optimal routing needs no more than minimal average length
	// plus LP slack (extra hops only raise total load).
	tor := topo.NewTorus(4)
	res, err := Capacity(tor, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HNorm > 1+1e-6 {
		t.Fatalf("capacity-optimal HNorm %v > 1", res.HNorm)
	}
	if e := res.Flow.ConservationError(); e > 1e-6 {
		t.Fatalf("conservation error %v", e)
	}
}
