package design

import (
	"context"
	"errors"
	"time"

	"tcr/internal/lp"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// This file is the design layer's half of the numerical-resilience story.
// Every solver mutation made after construction (permutation cuts, lazy
// pair rows, locality retargets, the lexicographic stage-2 objective flip)
// is recorded in a structured log. The log serves two masters:
//
//   - retry-with-backoff: when a round's LP solve dies with lp.ErrNumerical
//     even after the solver's own recovery ladder, the design loop rebuilds
//     a fresh solver from the base model and replays the log, discarding
//     whatever internal state went bad;
//   - checkpointing (checkpoint.go): the serializable subset of the log,
//     together with the simplex basis and pricing cursor, is everything
//     needed to resume a killed cut loop bit for bit.

// cut-log entry kinds.
const (
	cutPerm   = "perm"   // permutation load cut on a channel
	cutPair   = "pair"   // lazy matching-dual pair row of a potential block
	cutMatrix = "matrix" // dense-pattern load cut (average-case; not serializable)
	cutCapW   = "capw"   // stage-2 cap on the worst-case load variable
	cutObjLen = "objlen" // stage-2 objective flip to total path length
	cutLoc    = "loc"    // locality row retarget
)

// cutEntry is one replayable solver mutation. The exported fields are the
// JSON checkpoint schema; mat is the in-memory matrix of an average-case
// cut, whose presence makes the log non-serializable (average-case runs
// retry but do not checkpoint).
type cutEntry struct {
	Kind  string  `json:"kind"`
	Ch    int     `json:"ch,omitempty"`    // perm/matrix: channel
	Perm  []int   `json:"perm,omitempty"`  // perm: the permutation
	Bound int     `json:"bound,omitempty"` // perm/matrix: bound variable
	Block int     `json:"block,omitempty"` // pair: potential-block index
	S     int     `json:"s,omitempty"`     // pair: source node
	D     int     `json:"d,omitempty"`     // pair: destination node
	Val   float64 `json:"val,omitempty"`   // capw: bound; loc: hNorm

	mat *traffic.Matrix
}

// apply replays one entry onto the current solver without re-logging it.
func (p *FlowLP) apply(e cutEntry) {
	switch e.Kind {
	case cutPerm:
		p.solver.AddCut(p.PermCutTerms(topo.Channel(e.Ch), e.Perm, lp.VarID(e.Bound)), lp.LE, 0)
	case cutPair:
		b := p.blocks[e.Block]
		p.solver.AddCut(p.pairRowTerms(b, e.S, e.D), lp.LE, 0)
		b.added[e.S*p.n+e.D] = true
	case cutMatrix:
		p.solver.AddCut(p.matrixCutTerms(topo.Channel(e.Ch), e.mat, lp.VarID(e.Bound)), lp.LE, 0)
	case cutCapW:
		// A bound on w, not a row: the cap becomes nonbasic variable state
		// in the solver (bounded simplex), adding nothing to the basis
		// dimension. Replaying a later entry overwrites the earlier bound,
		// which matches the semantics of stacked w <= val rows (the
		// tightest wins) while keeping the basis square.
		p.solver.SetVarUpper(p.wVar, e.Val)
	case cutObjLen:
		for ci, cm := range p.comms {
			for c := 0; c < p.nc; c++ {
				p.solver.SetObjCoef(p.varID(ci, topo.Channel(c)), cm.weight)
			}
		}
		p.solver.SetObjCoef(p.wVar, 0)
	case cutLoc:
		p.solver.SetRHS(int(p.hRow), e.Val*float64(p.n)*p.T.MeanMinDist())
	}
}

// record logs an entry and applies it to the live solver.
func (p *FlowLP) record(e cutEntry) {
	p.cutLog = append(p.cutLog, e)
	p.apply(e)
}

// serializable reports whether the log can round-trip through a checkpoint
// (average-case matrix cuts carry dense patterns and cannot).
func (p *FlowLP) serializable() bool {
	for _, e := range p.cutLog {
		if e.Kind == cutMatrix {
			return false
		}
	}
	return true
}

// rebuildSolver discards the current solver and reconstructs an equivalent
// one from the base model plus the cut log. Used after a numerical failure
// (fresh internal state) and when restoring a checkpoint.
func (p *FlowLP) rebuildSolver() {
	p.solver = lp.NewSolver(p.model)
	for _, e := range p.cutLog {
		p.apply(e)
	}
}

// retryBackoffBase is the first retry's delay; each further attempt doubles
// it. The pause exists to let transient pressure (memory, CPU contention
// skewing timings) clear before the rebuilt solver tries again.
const retryBackoffBase = 5 * time.Millisecond

// sleepBackoff waits out the attempt-th backoff, honoring cancellation.
func sleepBackoff(ctx context.Context, attempt int) error {
	t := time.NewTimer(retryBackoffBase << attempt)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// solveRound runs one cutting-plane round's LP solve with the design
// layer's retry policy: a solve that fails with lp.ErrNumerical — meaning
// the solver's internal recovery ladder is already exhausted — is retried
// up to Options.Retries times after an exponential backoff, each time on a
// freshly rebuilt solver with the cut log replayed. Any other error class
// is returned as is.
func (p *FlowLP) solveRound(ctx context.Context) (*lp.Solution, error) {
	var lastErr error
	for attempt := 0; attempt <= p.opts.retries(); attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, attempt-1); err != nil {
				return nil, err
			}
			p.rebuildSolver()
		}
		sol, err := p.solver.SolveCtx(ctx)
		if err == nil {
			return sol, nil
		}
		if !errors.Is(err, lp.ErrNumerical) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// separate runs a cutting-plane round's separation step (the Hungarian
// oracles) with the same retry policy: oracle failures are retried after a
// backoff, since the oracle is stateless. Context errors abort immediately.
func (p *FlowLP) separate(ctx context.Context, f func() error) error {
	var lastErr error
	for attempt := 0; attempt <= p.opts.retries(); attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, attempt-1); err != nil {
				return err
			}
		}
		err := f()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return lastErr
}
