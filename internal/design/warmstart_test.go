package design

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"tcr/internal/topo"
)

// The warm-start contract: a certified run writes its final cut-loop state
// to Options.FinalSnapshot, and a later run pointed at it via
// Options.WarmFrom begins with those cuts and that basis installed — so a
// re-solve of the same formulation (even at a different locality target,
// which is the online loop's re-tune case) certifies in strictly fewer
// rounds than a cold solve, at the same optimum.

// TestWarmStartSameTargetOneRound: re-solving the exact formulation a
// snapshot certified should need only the certification round itself.
func TestWarmStartSameTargetOneRound(t *testing.T) {
	tor := topo.NewTorus(4)
	snap := filepath.Join(t.TempDir(), "final.snap")

	cold, err := WorstCaseOptimal(tor, Options{FinalSnapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Certified {
		t.Fatalf("cold run uncertified: %s", cold.Reason)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no final snapshot written: %v", err)
	}

	warm, err := WorstCaseOptimal(tor, Options{WarmFrom: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Certified {
		t.Fatalf("warm run uncertified: %s", warm.Reason)
	}
	if warm.Rounds != 1 {
		t.Errorf("warm re-solve of an identical formulation took %d rounds, want 1", warm.Rounds)
	}
	// The re-solve starts from a refactorized basis, so the certified
	// optimum may differ from the cold run's in the last ulps.
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Errorf("warm objective %.17g != cold %.17g", warm.Objective, cold.Objective)
	}
}

// TestWarmStartAcrossLocalityTargets pins the online re-tune case: a
// snapshot taken at one locality target warm-starts a solve at another
// (cuts are valid for every target), certifying in fewer rounds than a cold
// solve of the new target while reaching the same optimum.
func TestWarmStartAcrossLocalityTargets(t *testing.T) {
	tor := topo.NewTorus(4)
	snap := filepath.Join(t.TempDir(), "final.snap")

	first, err := WorstCaseAtLocality(tor, 1.5, Options{FinalSnapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Certified {
		t.Fatalf("first run uncertified: %s", first.Reason)
	}

	coldRef, err := WorstCaseAtLocality(tor, 1.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !coldRef.Certified {
		t.Fatalf("cold reference uncertified: %s", coldRef.Reason)
	}

	warm, err := WorstCaseAtLocality(tor, 1.25, Options{WarmFrom: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Certified {
		t.Fatalf("warm run uncertified: %s", warm.Reason)
	}
	if warm.Rounds >= coldRef.Rounds {
		t.Errorf("warm re-solve took %d rounds, cold %d; warm start saved nothing",
			warm.Rounds, coldRef.Rounds)
	}
	if math.Abs(warm.Objective-coldRef.Objective) > 1e-6*math.Max(1, math.Abs(coldRef.Objective)) {
		t.Errorf("warm optimum %v != cold optimum %v", warm.Objective, coldRef.Objective)
	}
}

// TestWarmStartUnusableSnapshotIgnored: a torn or foreign snapshot means a
// cold start, never a wrong warm one.
func TestWarmStartUnusableSnapshotIgnored(t *testing.T) {
	tor := topo.NewTorus(4)
	dir := t.TempDir()

	cases := []struct{ name, content string }{
		{"torn", `{"sig":"tcr-ckpt-3 k=4`},
		{"garbage", "\x00\x01not a snapshot"},
		{"empty", ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			snap := filepath.Join(dir, tc.name+".snap")
			if err := os.WriteFile(snap, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			res, err := WorstCaseOptimal(tor, Options{WarmFrom: snap})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Certified || math.Abs(res.GammaWC-1.0) > 1e-5 {
				t.Fatalf("certified=%v gamma_wc=%v, want certified 1.0", res.Certified, res.GammaWC)
			}
		})
	}

	// A snapshot from a different topology must be rejected by signature.
	snap := filepath.Join(dir, "k5.snap")
	if _, err := WorstCaseOptimal(topo.NewTorus(5), Options{FinalSnapshot: snap}); err != nil {
		t.Fatal(err)
	}
	res, err := WorstCaseOptimal(tor, Options{WarmFrom: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified || math.Abs(res.GammaWC-1.0) > 1e-5 {
		t.Fatalf("foreign-topology snapshot: certified=%v gamma_wc=%v, want certified 1.0",
			res.Certified, res.GammaWC)
	}
}
