//go:build !lpdense

package design

// goldenEngineDefault: the pinned fingerprints capture the eta engine's
// trajectory, which the default build selects.
const goldenEngineDefault = true
