//go:build lpchaos

package design

import (
	"errors"
	"sync/atomic"
)

// ErrOracleFault is the error injected into separation oracles by
// SetOracleFaults; exported so chaos tests can assert on it.
var ErrOracleFault = errors.New("design: injected oracle fault")

// oracleFaults is the number of armed oracle faults left to fire.
var oracleFaults atomic.Int64

// SetOracleFaults arms the next n separation-oracle calls to fail (lpchaos
// builds only). The oracles run concurrently, so which calls burn the
// faults is nondeterministic; the count is exact.
func SetOracleFaults(n int64) { oracleFaults.Store(n) }

// oracleFault burns one armed fault, if any.
func oracleFault() error {
	if oracleFaults.Load() > 0 && oracleFaults.Add(-1) >= 0 {
		return ErrOracleFault
	}
	return nil
}
