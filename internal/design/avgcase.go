package design

import (
	"context"
	"errors"
	"fmt"

	"tcr/internal/eval"
	"tcr/internal/lp"
	"tcr/internal/par"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// AvgCaseLP is the average-case design problem of Section 3.3/5.4: minimize
// (1/|X|) sum_i t_i with t_i >= gamma_max(R, Lambda_i) over a fixed sample X
// of doubly-stochastic matrices, optionally at a fixed locality. Per-sample
// max constraints are generated lazily: only the channels that actually
// achieve a sample's maximum ever enter the LP.
type AvgCaseLP struct {
	flp     *FlowLP
	samples []*traffic.Matrix
	tVars   []lp.VarID
}

// NewAvgCaseLP builds the base problem over the given sample. The model is
// the flow LP's layout plus one t variable per sample carrying the
// (1/|X|) objective weight; the w slot is kept as a zero-cost placeholder so
// variable indexing matches FlowLP.
func NewAvgCaseLP(t topo.Topology, samples []*traffic.Matrix, withLocality bool, opts Options) *AvgCaseLP {
	p := newBareFlowLP(t, opts)

	m := lp.NewModel()
	p.addFlowVars(m)
	p.wVar = m.AddVar(0, "w") // unused placeholder to keep varID layout
	tVars := make([]lp.VarID, len(samples))
	inv := 1 / float64(len(samples))
	for i := range samples {
		tVars[i] = m.AddVar(inv, fmt.Sprintf("t[%d]", i))
	}
	p.addConservation(m, false)
	p.addSymmetry(m)
	if withLocality {
		p.addLocalityRow(m)
	}
	p.model = m
	p.solver = lp.NewSolver(m)
	return &AvgCaseLP{flp: p, samples: samples, tVars: tVars}
}

// SetLocality re-targets the locality row (normalized units).
func (a *AvgCaseLP) SetLocality(hNorm float64) { a.flp.SetLocality(hNorm) }

// Solve runs the cutting-plane loop: each round, every sample whose true
// maximum channel load exceeds its t variable contributes a cut for its
// most-loaded channel.
func (a *AvgCaseLP) Solve() (*Result, error) {
	return a.SolveCtx(context.Background())
}

// SolveCtx is Solve under a cancellation context. The per-sample separation
// (dense channel-load evaluation plus argmax) runs on Options.Workers
// goroutines into per-sample slots; cuts are then added in sample order, so
// the generated LP is identical for every worker count.
//
// Per-round solves retry through the cut log like the worst-case loops, and
// exhausted budgets degrade to the best sampled iterate; Options.Checkpoint
// is ignored because matrix cuts carry dense patterns that do not serialize.
func (a *AvgCaseLP) SolveCtx(ctx context.Context) (*Result, error) {
	p := a.flp
	tol := p.opts.tol()
	res := &Result{}
	worstCs := make([]int, len(a.samples))
	worsts := make([]float64, len(a.samples))
	var bestFlow *eval.Flow
	var bestObj, bestMean float64
	for round := 0; round < p.opts.rounds(); round++ {
		res.Rounds = round
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
			return a.degradeAvg(res, bestFlow, bestObj, err)
		}
		sol, err := p.solveRound(ctx)
		if err != nil {
			return nil, err
		}
		if sol.Status == lp.IterLimit {
			if err := ctx.Err(); errors.Is(err, context.Canceled) {
				return nil, err
			}
			return a.degradeAvg(res, bestFlow, bestObj,
				fmt.Errorf("simplex budget exhausted at round %d (%s)", round, sol.Diag.Summary()))
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("design: avg-case LP status %v at round %d", sol.Status, round)
		}
		res.Rounds = round + 1
		res.Iterations += sol.Iterations
		flow := p.unfold(sol.X)
		err = p.separate(ctx, func() error {
			return par.Do(ctx, len(a.samples), p.opts.Workers, func(i int) error {
				if err := oracleFault(); err != nil {
					return err
				}
				loads := flow.ChannelLoads(a.samples[i])
				worstC, worst := 0, 0.0
				for c, l := range loads {
					if l > worst {
						worst, worstC = l, c
					}
				}
				worstCs[i], worsts[i] = worstC, worst
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		// The sampled mean of the exact per-sample maxima is the true
		// objective value of this iterate; track the best for degradation.
		mean := 0.0
		for _, w := range worsts {
			mean += w
		}
		mean /= float64(len(a.samples))
		if bestFlow == nil || mean < bestMean {
			bestFlow, bestObj, bestMean = flow, mean, mean
		}
		violated := false
		for i, lam := range a.samples {
			if worsts[i] > sol.X[a.tVars[i]]+tol {
				p.matrixCut(topo.Channel(worstCs[i]), lam, a.tVars[i])
				violated = true
			}
		}
		if !violated {
			res.Flow = flow
			res.Objective = sol.Objective
			res.Certified = true
			res.GammaWC, _, err = flow.WorstCaseCtx(ctx, p.opts.Workers)
			if err != nil {
				return nil, err
			}
			res.HAvg = flow.HAvg()
			res.HNorm = flow.HNorm()
			return res, nil
		}
	}
	res.Rounds = p.opts.rounds()
	return a.degradeAvg(res, bestFlow, bestObj,
		fmt.Errorf("avg-case cutting planes did not converge in %d rounds", p.opts.rounds()))
}

// degradeAvg is the average-case degradation path: the best iterate's exact
// worst case is re-evaluated off the (possibly expired) solve context, since
// unlike the worst-case loops no oracle has computed it along the way.
func (a *AvgCaseLP) degradeAvg(res *Result, flow *eval.Flow, obj float64, cause error) (*Result, error) {
	if flow == nil {
		return degrade(res, nil, 0, 0, cause)
	}
	gw, _, err := flow.WorstCaseCtx(context.Background(), a.flp.opts.Workers)
	if err != nil {
		return nil, err
	}
	return degrade(res, flow, obj, gw, cause)
}

// AvgCaseOptimal minimizes the sampled mean maximum channel load with no
// locality constraint: the maximum average-case throughput point of
// Figure 6 (its reciprocal, normalized by capacity, is the paper's ~62.8%).
func AvgCaseOptimal(t topo.Topology, samples []*traffic.Matrix, opts Options) (*Result, error) {
	return AvgCaseOptimalCtx(context.Background(), t, samples, opts)
}

// AvgCaseOptimalCtx is AvgCaseOptimal under a cancellation context.
func AvgCaseOptimalCtx(ctx context.Context, t topo.Topology, samples []*traffic.Matrix, opts Options) (*Result, error) {
	return NewAvgCaseLP(t, samples, false, opts).SolveCtx(ctx)
}

// AvgCaseAtLocality solves equation (15): best average-case throughput at a
// fixed normalized locality.
func AvgCaseAtLocality(t topo.Topology, samples []*traffic.Matrix, hNorm float64, opts Options) (*Result, error) {
	return AvgCaseAtLocalityCtx(context.Background(), t, samples, hNorm, opts)
}

// AvgCaseAtLocalityCtx is AvgCaseAtLocality under a cancellation context.
func AvgCaseAtLocalityCtx(ctx context.Context, t topo.Topology, samples []*traffic.Matrix, hNorm float64, opts Options) (*Result, error) {
	a := NewAvgCaseLP(t, samples, true, opts)
	a.SetLocality(hNorm)
	return a.SolveCtx(ctx)
}

// AvgCaseParetoCurve sweeps locality for Figure 6's optimal tradeoff curve.
// See AvgCaseParetoCurveCtx for the sweep strategy.
func AvgCaseParetoCurve(t topo.Topology, samples []*traffic.Matrix, hNorms []float64, opts Options) ([]ParetoPoint, error) {
	return AvgCaseParetoCurveCtx(context.Background(), t, samples, hNorms, opts)
}

// AvgCaseParetoCurveCtx sweeps locality under a cancellation context. As
// with WorstCaseParetoCurveCtx, Options.Workers 1 keeps the historical
// single-LP sweep (sample cuts stay valid across L); any other worker count
// solves the points as independent LPs concurrently, ordered by hNorms
// index in the result.
func AvgCaseParetoCurveCtx(ctx context.Context, t topo.Topology, samples []*traffic.Matrix, hNorms []float64, opts Options) ([]ParetoPoint, error) {
	cap := eval.NetworkCapacity(t)
	if par.Workers(opts.Workers) > 1 {
		out := make([]ParetoPoint, len(hNorms))
		err := par.Do(ctx, len(hNorms), opts.Workers, func(i int) error {
			h := hNorms[i]
			popts := opts
			popts.Workers = 1
			res, err := AvgCaseAtLocalityCtx(ctx, t, samples, h, popts)
			if err != nil {
				return fmt.Errorf("L=%v: %w", h, err)
			}
			if !res.Certified {
				return fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
			}
			out[i] = ParetoPoint{HNorm: h, Theta: (1 / res.Objective) / cap, Gamma: res.Objective}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	a := NewAvgCaseLP(t, samples, true, opts)
	out := make([]ParetoPoint, 0, len(hNorms))
	for _, h := range hNorms {
		a.SetLocality(h)
		res, err := a.SolveCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("L=%v: %w", h, err)
		}
		if !res.Certified {
			return nil, fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
		}
		// Objective is the mean max load; its reciprocal approximates the
		// average throughput (equation 9).
		out = append(out, ParetoPoint{HNorm: h, Theta: (1 / res.Objective) / cap, Gamma: res.Objective})
	}
	return out, nil
}
