//go:build lpchaos

package design

import (
	"context"
	"errors"
	"math"
	"testing"

	"tcr/internal/lp"
	"tcr/internal/topo"
)

// TestChaosRetryRebuild arms unrecoverable factorization faults on the live
// solver: the first solveRound attempt exhausts the LP recovery ladder, the
// retry rebuilds a fresh (unarmed) solver from the cut log, and the design
// must land on the clean optimum bit for bit — the rebuilt solver is
// indistinguishable from a fresh one.
func TestChaosRetryRebuild(t *testing.T) {
	tor := topo.NewTorus(4)
	clean, err := WorstCaseOptimal(tor, Options{})
	if err != nil {
		t.Fatal(err)
	}

	q := newPotentialLP(tor, false, Options{})
	q.solver.SetChaos(&lp.ChaosScript{Seed: 3, FailFactor: 1 << 20})
	res, err := q.solve(context.Background(), math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("uncertified after retry: %s", res.Reason)
	}
	//lint:ignore floatcmp the rebuilt-solver trajectory must equal a clean run exactly
	if res.Objective != clean.Objective || res.GammaWC != clean.GammaWC {
		t.Errorf("retried optimum (%.17g, %.17g) != clean (%.17g, %.17g)",
			res.Objective, res.GammaWC, clean.Objective, clean.GammaWC)
	}
}

// TestChaosRetryDisabled: with Retries < 0 the same fault surfaces as the
// LP's diagnosed numerical error instead of being retried.
func TestChaosRetryDisabled(t *testing.T) {
	tor := topo.NewTorus(4)
	q := newPotentialLP(tor, false, Options{Retries: -1})
	q.solver.SetChaos(&lp.ChaosScript{Seed: 3, FailFactor: 1 << 20})
	_, err := q.solve(context.Background(), math.NaN())
	if !errors.Is(err, lp.ErrNumerical) {
		t.Fatalf("err = %v, want ErrNumerical", err)
	}
	var de *lp.DiagError
	if !errors.As(err, &de) {
		t.Fatalf("err %v carries no diagnostics", err)
	}
}

// TestChaosOracleRetry: injected separation-oracle faults are absorbed by
// the separate() retry loop (the oracle is stateless).
func TestChaosOracleRetry(t *testing.T) {
	tor := topo.NewTorus(4)
	SetOracleFaults(2)
	defer SetOracleFaults(0)
	res, err := WorstCaseOptimal(tor, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified || math.Abs(res.GammaWC-1.0) > 1e-5 {
		t.Fatalf("certified=%v gamma_wc=%v, want certified 1.0", res.Certified, res.GammaWC)
	}
}

// TestChaosOracleRetryDisabled: with retries off the injected oracle fault
// propagates to the caller.
func TestChaosOracleRetryDisabled(t *testing.T) {
	tor := topo.NewTorus(4)
	SetOracleFaults(1)
	defer SetOracleFaults(0)
	_, err := WorstCaseOptimal(tor, Options{Retries: -1})
	if !errors.Is(err, ErrOracleFault) {
		t.Fatalf("err = %v, want ErrOracleFault", err)
	}
}
