package design

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcr/internal/topo"
)

// TestCheckpointResumeK4 pins the checkpoint contract: a run killed by a
// round budget leaves a checkpoint, and resuming it with the full budget
// reproduces the uninterrupted run bit for bit — same objective, exact
// worst-case load, round count, and final pivot count.
func TestCheckpointResumeK4(t *testing.T) {
	tor := topo.NewTorus(4)
	dir := t.TempDir()

	// Reference: an uninterrupted checkpointing run. (The checkpoint write
	// barrier refactorizes each round, so the reference must checkpoint
	// too — a no-checkpoint run is a different, equally valid trajectory.)
	full, err := WorstCaseOptimal(tor, Options{Checkpoint: filepath.Join(dir, "ref.ckpt")})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Certified {
		t.Fatalf("reference run uncertified: %s", full.Reason)
	}

	// Killed run: same formulation, round budget too small to certify.
	ckpt := filepath.Join(dir, "wc.ckpt")
	partial, err := WorstCaseOptimal(tor, Options{Checkpoint: ckpt, MaxRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Certified {
		t.Fatal("6-round run certified; budget too large for the kill test")
	}
	if partial.Flow == nil || partial.Reason == "" {
		t.Fatalf("degraded result missing flow or reason: %+v", partial)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint left behind by the killed run: %v", err)
	}

	// Resume with the default budget and compare against the reference.
	resumed, err := WorstCaseOptimal(tor, Options{Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Certified {
		t.Fatalf("resumed run uncertified: %s", resumed.Reason)
	}
	//lint:ignore floatcmp the resume contract is bit-for-bit equality
	if resumed.Objective != full.Objective || resumed.GammaWC != full.GammaWC {
		t.Errorf("resumed optimum (%.17g, %.17g) != reference (%.17g, %.17g)",
			resumed.Objective, resumed.GammaWC, full.Objective, full.GammaWC)
	}
	if resumed.Rounds != full.Rounds || resumed.Iterations != full.Iterations {
		t.Errorf("resumed trajectory (rounds=%d iters=%d) != reference (rounds=%d iters=%d)",
			resumed.Rounds, resumed.Iterations, full.Rounds, full.Iterations)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint not cleared after certification: %v", err)
	}
}

// TestCheckpointCorruptIgnored: an unreadable checkpoint degrades to a fresh
// run, never to a wrong resume.
func TestCheckpointCorruptIgnored(t *testing.T) {
	tor := topo.NewTorus(4)
	ckpt := filepath.Join(t.TempDir(), "wc.ckpt")
	if err := os.WriteFile(ckpt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := WorstCaseOptimal(tor, Options{Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("uncertified: %s", res.Reason)
	}
	if math.Abs(res.GammaWC-1.0) > 1e-5 {
		t.Fatalf("gamma_wc = %v, want 1.0", res.GammaWC)
	}
}

// TestCheckpointSigMismatchIgnored: a checkpoint from a differently shaped
// run (here: another tolerance) is ignored rather than restored.
func TestCheckpointSigMismatchIgnored(t *testing.T) {
	tor := topo.NewTorus(4)
	ckpt := filepath.Join(t.TempDir(), "wc.ckpt")
	partial, err := WorstCaseOptimal(tor, Options{Checkpoint: ckpt, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Certified {
		t.Fatal("4-round run certified; expected a leftover checkpoint")
	}
	res, err := WorstCaseOptimal(tor, Options{Checkpoint: ckpt, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified || math.Abs(res.GammaWC-1.0) > 1e-5 {
		t.Fatalf("certified=%v gamma_wc=%v, want certified 1.0", res.Certified, res.GammaWC)
	}
}

// TestCheckpointTamperRejected: a checkpoint whose content no longer
// matches its integrity hash — here, a semantically valid JSON edit that
// bumps the recorded round count — is rejected and the run starts fresh
// rather than resuming into a corrupted trajectory.
func TestCheckpointTamperRejected(t *testing.T) {
	tor := topo.NewTorus(4)
	ckpt := filepath.Join(t.TempDir(), "wc.ckpt")
	partial, err := WorstCaseOptimal(tor, Options{Checkpoint: ckpt, MaxRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Certified {
		t.Fatal("6-round run certified; expected a leftover checkpoint")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["sha256"] == "" || m["sha256"] == nil {
		t.Fatal("checkpoint carries no integrity hash")
	}
	m["round"] = m["round"].(float64) + 1
	tampered, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	// The tampered file parses and carries the right signature, but its
	// hash no longer verifies: the resume must be refused and the fresh
	// run must still certify the known k=4 optimum.
	res, err := WorstCaseOptimal(tor, Options{Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified || math.Abs(res.GammaWC-1.0) > 1e-5 {
		t.Fatalf("certified=%v gamma_wc=%v, want certified 1.0", res.Certified, res.GammaWC)
	}
	// A fresh reference run checkpoints through the same cadence, so a
	// refused resume reproduces its trajectory exactly.
	ref, err := WorstCaseOptimal(tor, Options{Checkpoint: filepath.Join(t.TempDir(), "ref.ckpt")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != ref.Rounds || res.Iterations != ref.Iterations {
		t.Errorf("post-tamper run (rounds=%d iters=%d) != fresh run (rounds=%d iters=%d): tampered state leaked in",
			res.Rounds, res.Iterations, ref.Rounds, ref.Iterations)
	}
}

// TestDegradedWorstCase pins graceful degradation without checkpointing: an
// exhausted round budget yields the best feasible iterate, uncertified, with
// an exact worst-case evaluation no better than the true optimum.
func TestDegradedWorstCase(t *testing.T) {
	tor := topo.NewTorus(4)
	res, err := WorstCaseOptimal(tor, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Fatal("3-round run certified; budget too large for the degradation test")
	}
	if res.Flow == nil {
		t.Fatal("degraded result carries no flow")
	}
	if !strings.Contains(res.Reason, "converge") {
		t.Errorf("reason %q does not name the exhausted budget", res.Reason)
	}
	// The uncertified routing is feasible, so its exact worst-case load
	// can only be at or above the true optimum (1.0 on the k=4 torus).
	if res.GammaWC < 1.0-1e-9 {
		t.Errorf("degraded gamma_wc = %v below the optimum", res.GammaWC)
	}
	if res.HNorm <= 0 {
		t.Errorf("degraded result missing locality metrics: HNorm=%v", res.HNorm)
	}
}

// TestParetoUncertifiedErrors: sweeps cannot degrade point-wise, so an
// exhausted budget surfaces as ErrUncertified.
func TestParetoUncertifiedErrors(t *testing.T) {
	tor := topo.NewTorus(4)
	_, err := WorstCaseParetoCurve(tor, []float64{1.0, 2.0}, Options{MaxRounds: 2})
	if !errors.Is(err, ErrUncertified) {
		t.Fatalf("err = %v, want ErrUncertified", err)
	}
}

// TestMinLocalityDegradesOnStage1: the lexicographic design must not cap
// stage 2 with an uncertified stage-1 bound.
func TestMinLocalityDegradesOnStage1(t *testing.T) {
	tor := topo.NewTorus(4)
	res, err := MinLocalityAtWorstCase(tor, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Fatal("expected an uncertified stage-1 degradation")
	}
	if !strings.HasPrefix(res.Reason, "stage 1:") {
		t.Errorf("reason %q does not attribute the failure to stage 1", res.Reason)
	}
}

// TestLexCheckpointedStage2 pins the regression where checkpointing the
// lexicographic design poisoned stage 2: every stage-1 checkpoint write
// runs the RefreshFactors barrier, which legitimately perturbs the
// numerical trajectory, and the perturbed stage-2 LP — feasible only
// within its 1e-6 cap slack — parked the eta engine's phase 1 at a
// certified optimum carrying ~1.7e-7 of artificial rounding mass, which
// an absolute mass cutoff escalated into a wrong Infeasible verdict.
func TestLexCheckpointedStage2(t *testing.T) {
	tor := topo.NewTorus(4)
	ref, err := MinLocalityAtWorstCase(tor, Options{})
	if err != nil {
		t.Fatalf("uncheckpointed: %v", err)
	}
	ck := filepath.Join(t.TempDir(), "lex.ckpt")
	res, err := MinLocalityAtWorstCase(tor, Options{Checkpoint: ck, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("checkpointed every round: %v", err)
	}
	if !res.Certified {
		t.Fatalf("checkpointed run uncertified: %s", res.Reason)
	}
	// The barrier refactorizations make the trajectories legitimately
	// different, so only the certified quantities must agree.
	if math.Abs(res.HNorm-ref.HNorm) > 1e-5 || math.Abs(res.GammaWC-ref.GammaWC) > 1e-5 {
		t.Fatalf("checkpointed run diverged: H=%v gamma=%v, want H=%v gamma=%v",
			res.HNorm, res.GammaWC, ref.HNorm, ref.GammaWC)
	}
}
