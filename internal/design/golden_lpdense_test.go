//go:build lpdense

package design

// Built with -tags lpdense the default engine is the dense inverse, whose
// rounding path legitimately differs from the pinned eta trajectory.
const goldenEngineDefault = false
