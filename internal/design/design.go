// Package design implements the routing-algorithm design problems of the
// paper as linear programs and solves them to global optimality:
//
//   - capacity (equation 6): minimize the maximum channel load under
//     uniform traffic;
//   - worst-case throughput (equations 7/8/10): minimize the worst channel
//     load over all permutation traffic, optionally under an average path
//     length budget H_avg <= L (the Pareto sweeps of Figure 1; the paper
//     writes H_avg = L, but with self commodities excluded the budget form
//     is the faithful Pareto semantics -- excess length would otherwise be
//     parked on self-pair paths that adversarial permutations never load);
//   - average-case throughput (equations 9/15): minimize the mean maximum
//     channel load over a fixed sample of doubly-stochastic matrices
//     (Figure 6);
//   - path-restricted designs over the two-turn path space (2TURN, 2TURNA,
//     Section 5.2/5.4).
//
// Instead of the appendix's monolithic dual reformulation, the worst-case
// problems are solved by constraint generation: the LP carries only the
// permutation constraints discovered so far, and the exact separation
// oracle -- a Hungarian maximum-weight matching on the pair-load matrix of a
// representative channel -- either certifies optimality or produces a
// violated permutation. Because the generated LP is a relaxation and the
// incumbent routing function is feasible, the gap between the LP objective
// and the oracle's load sandwiches the true optimum; convergence is
// self-certifying. The same pattern handles the per-sample maxima of the
// average-case problem.
//
// Symmetry (Section 4) enters through variable folding: commodities are
// restricted to canonical pair classes of the topology's automorphism group
// (translation folding alone, or the full group), with every pair's channel
// loads expressed over the folded variables through explicit automorphisms.
// Both foldings are implemented and cross-checked in tests; convexity of the
// cost functions guarantees a symmetric optimum exists, so folding loses
// nothing. The machinery is generic over topo.Topology: on the 2D torus the
// full group is the dihedral octant folding of the original engine, on the
// 3D torus the hyperoctahedral cone, and on the mesh the box-fixing
// reflections.
package design

import (
	"context"
	"errors"
	"fmt"
	"math"

	"tcr/internal/eval"
	"tcr/internal/lp"
	"tcr/internal/matching"
	"tcr/internal/par"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// Fold selects the symmetry reduction applied to the flow formulation.
type Fold int

const (
	// FoldOctant folds commodities over the topology's full automorphism
	// group: one commodity per pair class (on the 2D torus, one per
	// canonical octant destination -- hence the name). Smallest LPs.
	FoldOctant Fold = iota
	// FoldTranslation folds over the translation subgroup only: one
	// commodity per relative destination on vertex-transitive families, one
	// per ordered pair otherwise. Larger LPs; used to cross-check the full
	// folding.
	FoldTranslation
)

// Numerical tolerances shared across the design LPs.
const (
	// defaultTol is the relative convergence tolerance used when
	// Options.Tol is unset: the oracle certifies optimality once no
	// permutation load exceeds the LP bound by more than this fraction.
	defaultTol = 1e-6
	// defaultSlack is the stage-2 slack applied to the optimal
	// worst-case load in the lexicographic designs when the caller
	// passes slack <= 0; it keeps the stage-2 LP strictly feasible.
	defaultSlack = 1e-6
	// pathProbFloor drops path probabilities below LP tolerance dust
	// when converting a solution into a routing table.
	pathProbFloor = 1e-12
	// decompCoverTol terminates flow decomposition once this little
	// source flow remains unextracted.
	decompCoverTol = 1e-7
)

// Cuts selects the constraint-generation strategy for worst-case problems.
type Cuts int

const (
	// CutPotentials (default) uses the paper's LP (8): matching-dual
	// potential variables per representative channel with lazily added
	// pair rows. Converges in few rounds.
	CutPotentials Cuts = iota
	// CutPermutations adds one worst-permutation row per representative
	// channel per round (pure cutting planes). Slower; kept as a
	// cross-check and ablation baseline.
	CutPermutations
)

// Options tunes the solvers; the zero value is ready to use.
type Options struct {
	// Fold selects the symmetry reduction (default FoldOctant).
	Fold Fold
	// Cuts selects the worst-case constraint strategy (default
	// CutPotentials).
	Cuts Cuts
	// MaxRounds bounds cutting-plane iterations (default 200).
	MaxRounds int
	// Tol is the relative convergence tolerance (default 1e-6).
	Tol float64
	// Workers bounds the engine's parallelism: the per-channel Hungarian
	// oracles run concurrently, and the Pareto sweeps solve their
	// per-point LPs on this many goroutines. 0 means all cores
	// (GOMAXPROCS). 1 reproduces the sequential behaviour bit for bit —
	// in particular, Pareto sweeps at Workers 1 share one warm-started LP
	// across the whole sweep exactly as the pre-parallel engine did,
	// while Workers > 1 solves one independent LP per point.
	Workers int
	// Slack is the stage-2 slack on the optimal first-stage objective
	// used by the lexicographic (throughput-then-locality) designs; it
	// keeps the stage-2 LP strictly feasible. 0 or negative selects the
	// default 1e-6.
	Slack float64
	// Retries bounds how many times a cutting-plane round is re-attempted
	// after a numerical failure that survived the LP solver's own recovery
	// ladder; each retry rebuilds a fresh solver from the cut log after an
	// exponential backoff. 0 selects the default of 2; negative disables
	// retries.
	Retries int
	// Checkpoint, when non-empty, is a file path the worst-case cut loops
	// snapshot their state to (accumulated cuts, simplex basis, pricing
	// cursor), so a killed run restarted with the same path resumes bit
	// for bit instead of recomputing. See checkpoint.go for the exact
	// resume semantics. Average-case loops ignore it.
	Checkpoint string
	// CheckpointEvery is the snapshot cadence in cutting-plane rounds
	// (default 1: every round).
	CheckpointEvery int
	// WarmFrom, when non-empty, is a final-state snapshot (written by an
	// earlier run via FinalSnapshot) the worst-case cut loops warm-start
	// from when no Checkpoint resumes: the prior run's cuts, simplex basis,
	// and pricing cursor are installed before round zero. Permutation and
	// pair cuts are valid for every locality target, so the snapshot is
	// accepted across differing targets (the sig match relaxes only the
	// locality component) and the locality row is re-aimed at this run's
	// target after the restore. Unlike a checkpoint resume, a warm start
	// begins counting rounds at zero — the round count reports the
	// incremental work. A snapshot that fails integrity or formulation
	// checks is ignored and the loop starts cold.
	WarmFrom string
	// FinalSnapshot, when non-empty, is a file path the worst-case cut
	// loops write their final state to on certification (atomic write),
	// for a later run to warm-start from via WarmFrom.
	FinalSnapshot string
}

// ErrUncertified marks a design outcome whose budgets (rounds, iterations,
// deadline) ran out before the oracle certified optimality. APIs that can
// degrade gracefully return a Result with Certified == false instead; the
// ones that cannot (Pareto sweeps, the CLI) wrap this sentinel.
var ErrUncertified = errors.New("design: result not certified within budgets")

func (o Options) rounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 200
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return defaultTol
}

func (o Options) slack() float64 {
	if o.Slack > 0 {
		return o.Slack
	}
	return defaultSlack
}

func (o Options) retries() int {
	if o.Retries > 0 {
		return o.Retries
	}
	if o.Retries < 0 {
		return 0
	}
	return 2
}

func (o Options) ckptEvery() int {
	if o.CheckpointEvery > 0 {
		return o.CheckpointEvery
	}
	return 1
}

// commodity is one folded flow commodity: a pair class of the folding
// group, carrying its orbit weight (offsets-per-source on vertex-transitive
// families; ordered-pairs/N in general).
type commodity struct {
	src, dst topo.Node
	weight   float64
}

// FlowLP is a flow-based routing design LP under a symmetry folding. It
// carries the variable layout, the pair-to-variable automorphism maps, and
// the warm-startable solver.
type FlowLP struct {
	T    topo.Topology
	fold Fold
	// n and nc cache T.Nodes() and T.Chans().
	n, nc int
	// grp is the folding group (full or translation, per fold); seps are
	// the separation oracle's representative channels -- one per channel
	// orbit of the translation subgroup.
	grp   topo.AutGroup
	seps  []topo.Channel
	comms []commodity
	// pairComm[s*N+d] / pairAut[s*N+d]: the commodity index and the
	// automorphism mapping pair (s, d) onto it; -1 for self pairs.
	pairComm []int
	pairAut  []topo.AutID

	model  *lp.Model
	solver *lp.Solver
	wVar   lp.VarID // the max-load variable
	hRow   lp.RowID // locality budget row, -1 when absent
	hasH   bool

	// blocks are the matching-dual potential blocks when the LP was built
	// by newPotentialLP; nil for the pure cutting-plane formulation.
	blocks []*potBlock

	// cutLog records every post-construction solver mutation for replay
	// (retry rebuilds and checkpoint restores; see cutlog.go).
	cutLog []cutEntry
	// ckptStage distinguishes the lexicographic design's stages in the
	// checkpoint signature; locNorm is the current locality target.
	ckptStage int
	locNorm   float64

	opts Options
}

// newBareFlowLP builds the folding state (commodities, pair maps, separation
// representatives) without any LP model; the construction entry points add
// their own variables and rows on top.
func newBareFlowLP(t topo.Topology, opts Options) *FlowLP {
	p := &FlowLP{T: t, n: t.Nodes(), nc: t.Chans(), fold: opts.Fold, opts: opts, hRow: -1}
	if p.fold == FoldTranslation {
		p.grp = t.TransGroup()
	} else {
		p.grp = t.Group()
	}
	if p.fold == FoldOctant && !t.VertexTransitive() {
		// With the stabilizer rows of addSymmetry in the model, the unfolded
		// routing function is invariant under the full group, so one
		// separation representative per full-group channel orbit suffices.
		// Without translations this is the difference between scanning a
		// handful of orbits and scanning every channel.
		p.seps = t.Group().ChanOrbitReps()
	} else {
		p.seps = t.TransGroup().ChanOrbitReps()
	}
	p.buildCommodities()
	p.buildPairMaps()
	return p
}

// varID returns the LP variable of (commodity, channel).
func (p *FlowLP) varID(comm int, c topo.Channel) lp.VarID {
	return lp.VarID(comm*p.nc + int(c))
}

// NewFlowLP builds the base LP: flow conservation for each folded commodity
// plus the load variable w, with objective min w. A locality budget row
// (H_avg <= L, normalized units; see the package comment on why the paper's
// equality becomes a budget here) is added when withLocality is set; sweep
// it with SetLocality.
func NewFlowLP(t topo.Topology, withLocality bool, opts Options) *FlowLP {
	p := newBareFlowLP(t, opts)

	m := lp.NewModel()
	p.addFlowVars(m)
	p.wVar = m.AddVar(1, "w")
	p.addConservation(m, true)
	p.addSymmetry(m)
	if withLocality {
		p.addLocalityRow(m)
	}

	p.model = m
	p.solver = lp.NewSolver(m)
	return p
}

// addFlowVars adds the per-commodity channel flow variables in varID order.
// The variables are unnamed: VarName falls back to the dense index, and the
// per-variable Sprintf was a measurable share of the model-build cost on the
// mesh-family LPs.
func (p *FlowLP) addFlowVars(m *lp.Model) {
	m.AddVars(len(p.comms) * p.nc)
}

// addConservation appends the flow-conservation rows: for each commodity and
// node, out - in = supply (+1 at the class source, -1 at its destination).
func (p *FlowLP) addConservation(m *lp.Model, named bool) {
	t := p.T
	var terms []lp.Term // reused across rows; AddRow copies into the model's arena
	for ci, cm := range p.comms {
		for n := 0; n < p.n; n++ {
			nd := topo.Node(n)
			deg := t.OutDeg(nd)
			terms = terms[:0]
			for pt := 0; pt < deg; pt++ {
				out := t.PortChan(nd, pt)
				terms = append(terms,
					lp.Term{Var: p.varID(ci, out), Coef: 1},
					lp.Term{Var: p.varID(ci, t.ReverseChan(out)), Coef: -1},
				)
			}
			rhs := 0.0
			switch nd {
			case cm.src:
				rhs = 1
			case cm.dst:
				rhs = -1
			}
			name := ""
			if named {
				name = fmt.Sprintf("cons[%d,%d]", ci, n)
			}
			m.AddRow(terms, lp.EQ, rhs, name)
		}
	}
}

// addSymmetry appends stabilizer-invariance rows for full-group foldings of
// families without translation symmetry: x[ci][c] == x[ci][h(c)] for every
// nontrivial automorphism h fixing class ci's representative pair. PairAut
// picks one automorphism per pair, so without these rows the unfolded routing
// function is well-defined but only invariant modulo that choice; with them it
// is invariant under the whole group, making channel loads constant on
// full-group channel orbits — which is what licenses newBareFlowLP's reduced
// separation set. Convexity guarantees a fully symmetric optimum exists, so
// the rows lose nothing. Vertex-transitive families skip this: their
// historical LPs carry no such rows, and translation invariance alone already
// covers their per-direction separation representatives.
func (p *FlowLP) addSymmetry(m *lp.Model) {
	if p.fold != FoldOctant || p.T.VertexTransitive() {
		return
	}
	id := p.grp.Identity()
	var pair [2]lp.Term // reused across rows; AddRow copies into the model's arena
	for ci, cm := range p.comms {
		for _, h := range p.grp.Elements() {
			if h == id ||
				p.grp.ApplyNode(h, cm.src) != cm.src ||
				p.grp.ApplyNode(h, cm.dst) != cm.dst {
				continue
			}
			for c := 0; c < p.nc; c++ {
				hc := p.grp.ApplyChan(h, topo.Channel(c))
				if int(hc) <= c {
					continue // each unordered {c, h(c)} once; fixed channels need no row
				}
				pair[0] = lp.Term{Var: p.varID(ci, topo.Channel(c)), Coef: 1}
				pair[1] = lp.Term{Var: p.varID(ci, hc), Coef: -1}
				m.AddRow(pair[:], lp.EQ, 0, "")
			}
		}
	}
}

// addLocalityRow appends the H_avg budget row (orbit-weighted total flow).
func (p *FlowLP) addLocalityRow(m *lp.Model) {
	terms := make([]lp.Term, 0, len(p.comms)*p.nc)
	for ci, cm := range p.comms {
		for c := 0; c < p.nc; c++ {
			terms = append(terms, lp.Term{Var: p.varID(ci, topo.Channel(c)), Coef: cm.weight})
		}
	}
	// H_avg = (1/N) * sum weight * pathlen; constrain the sum directly.
	p.hRow = m.AddRow(terms, lp.LE, float64(p.n)*p.T.MeanMinDist(), "H")
	p.hasH = true
}

func (p *FlowLP) buildCommodities() {
	for _, cl := range p.grp.Classes() {
		p.comms = append(p.comms, commodity{src: cl.Src, dst: cl.Dst, weight: cl.Weight})
	}
}

func (p *FlowLP) buildPairMaps() {
	n := p.n
	p.pairComm = make([]int, n*n)
	p.pairAut = make([]topo.AutID, n*n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			ci, a := p.grp.PairAut(topo.Node(s), topo.Node(d))
			p.pairComm[s*n+d] = ci
			p.pairAut[s*n+d] = a
		}
	}
}

// pairLoadVar returns the LP variable carrying the load that pair (s, d)
// places on channel c, or -1 for self pairs.
func (p *FlowLP) pairLoadVar(s, d int, c topo.Channel) lp.VarID {
	idx := s*p.n + d
	ci := p.pairComm[idx]
	if ci < 0 {
		return -1
	}
	return p.varID(ci, p.grp.ApplyChan(p.pairAut[idx], c))
}

// SetLocality re-targets the locality row at normalized average path length
// hNorm (1 = minimal, 2 = twice minimal).
func (p *FlowLP) SetLocality(hNorm float64) {
	if !p.hasH {
		//lint:ignore libpanic caller bug, not a data condition: every in-package caller builds the LP with a locality row
		panic("design: SetLocality on an LP built without a locality row")
	}
	p.locNorm = hNorm
	p.record(cutEntry{Kind: cutLoc, Val: hNorm})
}

// loadCut appends the constraint gamma_c(R, Lambda) <= bound (the w
// variable or a sample's t variable) for a traffic pattern given as a
// permutation or dense matrix.
func (p *FlowLP) permCut(c topo.Channel, perm []int, bound lp.VarID) {
	e := cutEntry{Kind: cutPerm, Ch: int(c), Perm: append([]int(nil), perm...), Bound: int(bound)}
	p.record(e)
}

// matrixCut appends gamma_c(R, Lambda) <= bound for a dense pattern.
func (p *FlowLP) matrixCut(c topo.Channel, lam *traffic.Matrix, bound lp.VarID) {
	p.record(cutEntry{Kind: cutMatrix, Ch: int(c), Bound: int(bound), mat: lam})
}

// matrixCutTerms builds the dense-pattern load cut's terms.
func (p *FlowLP) matrixCutTerms(c topo.Channel, lam *traffic.Matrix, bound lp.VarID) []lp.Term {
	terms := make([]lp.Term, 0, p.n*p.n/4)
	for s := 0; s < p.n; s++ {
		for d := 0; d < p.n; d++ {
			l := lam.L[s][d]
			//lint:ignore floatcmp sparsity skip: entries never written stay exactly 0
			if l == 0 {
				continue
			}
			if v := p.pairLoadVar(s, d, c); v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coef: l})
			}
		}
	}
	return append(terms, lp.Term{Var: bound, Coef: -1})
}

// unfold expands an LP solution into a full flow table: one row per relative
// destination on vertex-transitive families (the induced
// translation-invariant routing function), one row per ordered pair
// otherwise.
func (p *FlowLP) unfold(x []float64) *eval.Flow {
	t := p.T
	f := eval.NewFlow(t)
	fill := func(row []float64, idx int) {
		ci, a := p.pairComm[idx], p.pairAut[idx]
		for c := 0; c < p.nc; c++ {
			row[c] = x[p.varID(ci, p.grp.ApplyChan(a, topo.Channel(c)))]
		}
	}
	if t.VertexTransitive() {
		for rel := 1; rel < p.n; rel++ {
			fill(f.X[rel], rel) // pair (0, rel)
		}
		return f
	}
	for s := 0; s < p.n; s++ {
		for d := 0; d < p.n; d++ {
			if s == d {
				continue
			}
			fill(f.X[s*p.n+d], s*p.n+d)
		}
	}
	return f
}

// Result is the outcome of a design solve: the optimal folded solution
// expanded to a flow table plus its exactly-evaluated metrics.
type Result struct {
	Flow *eval.Flow
	// Objective is the LP objective at convergence (max load for
	// worst-case problems, mean max load for average-case).
	Objective float64
	// GammaWC is the exact worst-case channel load of the returned
	// routing function (Hungarian-evaluated).
	GammaWC float64
	// HAvg is the average path length in hops; HNorm normalized.
	HAvg, HNorm float64
	// Rounds is the number of cutting-plane iterations used.
	Rounds int
	// Iterations is the total simplex pivot count.
	Iterations int
	// Certified reports that the separation oracle proved optimality
	// within the round, pivot, and deadline budgets. When false the
	// result is a graceful degradation: Flow is the best feasible routing
	// encountered (its GammaWC exactly evaluated), Objective the LP lower
	// bound at that round, and Reason says which budget ran out.
	Certified bool
	// Reason explains an uncertified outcome; empty when Certified.
	Reason string
}

// degrade packages the best iterate seen so far as an uncertified Result
// when a budget (rounds, simplex pivots, deadline) runs out. With no
// feasible iterate to fall back on, the cause surfaces as an error wrapping
// ErrUncertified. Any checkpoint is left in place so the run can be resumed
// with a larger budget.
func degrade(res *Result, flow *eval.Flow, obj, gammaWC float64, cause error) (*Result, error) {
	if flow == nil {
		return nil, fmt.Errorf("%w: %v", ErrUncertified, cause)
	}
	res.Flow = flow
	res.Objective = obj
	res.GammaWC = gammaWC
	res.HAvg = flow.HAvg()
	res.HNorm = flow.HNorm()
	res.Certified = false
	res.Reason = cause.Error()
	return res, nil
}

// solveWorstCase runs the cutting-plane loop on the current LP state:
// minimize the current objective subject to flow constraints and generated
// permutation cuts, until the Hungarian oracle certifies that no permutation
// loads any channel beyond the LP's bound variable by more than tol.
//
// The per-representative Hungarian oracles are independent and run on
// Options.Workers goroutines; cuts are then added sequentially in
// representative order, so the generated LP -- and hence the solve
// trajectory -- is identical for every worker count.
func (p *FlowLP) solveWorstCase(ctx context.Context) (*Result, error) {
	tol := p.opts.tol()
	var last *lp.Solution
	res := &Result{}
	perms := make([][]int, len(p.seps))
	gammas := make([]float64, len(p.seps))
	startRound := 0
	if r, it, ok := p.restoreCheckpoint(); ok {
		startRound, res.Iterations = r, it
	} else {
		p.restoreWarmStart()
	}
	// The best iterate so far — the one with the smallest exact
	// (oracle-evaluated) worst-case load — backs graceful degradation.
	var bestFlow *eval.Flow
	var bestObj, bestGW float64
	for round := startRound; round < p.opts.rounds(); round++ {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
			return degrade(res, bestFlow, bestObj, bestGW, err)
		}
		sol, err := p.solveRound(ctx)
		if err != nil {
			return nil, err
		}
		if sol.Status == lp.IterLimit {
			if err := ctx.Err(); errors.Is(err, context.Canceled) {
				return nil, err
			}
			return degrade(res, bestFlow, bestObj, bestGW,
				fmt.Errorf("simplex budget exhausted at round %d (%s)", round, sol.Diag.Summary()))
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("design: LP status %v at round %d", sol.Status, round)
		}
		last = sol
		res.Rounds = round + 1
		res.Iterations += sol.Iterations
		flow := p.unfold(sol.X)
		w := sol.X[p.wVar]

		// Separation: worst permutation per channel-orbit representative of
		// the translation subgroup (translation invariance covers the rest;
		// without it, every channel is its own representative).
		err = p.separate(ctx, func() error {
			return par.Do(ctx, len(p.seps), p.opts.Workers, func(i int) error {
				if err := oracleFault(); err != nil {
					return err
				}
				perm, g, err := matching.MaxWeightAssignment(pairLoadMatrix(flow, p.seps[i]))
				if err != nil {
					return err
				}
				perms[i], gammas[i] = perm, g
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		gw := gammas[0]
		for _, g := range gammas[1:] {
			gw = math.Max(gw, g)
		}
		if bestFlow == nil || gw < bestGW {
			bestFlow, bestObj, bestGW = flow, sol.Objective, gw
		}
		violated := false
		for i := range p.seps {
			if gammas[i] > w+tol*math.Max(1, w) {
				p.permCut(p.seps[i], perms[i], p.wVar)
				violated = true
			}
		}
		if !violated {
			res.Flow = flow
			res.Objective = last.Objective
			res.Certified = true
			var err error
			res.GammaWC, _, err = flow.WorstCaseCtx(ctx, p.opts.Workers)
			if err != nil {
				return nil, err
			}
			res.HAvg = flow.HAvg()
			res.HNorm = flow.HNorm()
			if err := p.writeFinalSnapshot(res.Rounds, res.Iterations); err != nil {
				return nil, err
			}
			if err := p.clearCheckpoint(); err != nil {
				return nil, err
			}
			return res, nil
		}
		if (round+1)%p.opts.ckptEvery() == 0 {
			if err := p.writeCheckpoint(round+1, res.Iterations); err != nil {
				return nil, err
			}
		}
	}
	return degrade(res, bestFlow, bestObj, bestGW,
		fmt.Errorf("cutting planes did not converge in %d rounds", p.opts.rounds()))
}

// pairLoadMatrix mirrors eval's internal pair-load matrix for the oracle:
// entry (s, d) is the load pair (s, d) places on channel c. On
// vertex-transitive families the flow table holds one row per relative
// destination and the channel is translated into each source's frame; the
// general form reads the per-pair rows directly.
func pairLoadMatrix(f *eval.Flow, c topo.Channel) [][]float64 {
	t := f.T
	n := t.Nodes()
	m := make([][]float64, n)
	if !t.VertexTransitive() {
		for s := 0; s < n; s++ {
			m[s] = make([]float64, n)
			for d := 0; d < n; d++ {
				m[s][d] = f.X[s*n+d][c]
			}
		}
		return m
	}
	tg := t.TransGroup()
	for s := 0; s < n; s++ {
		m[s] = make([]float64, n)
		// PairAut(s, 0) is the translation mapping s to the origin; it
		// carries c into source s's canonical frame.
		_, a := tg.PairAut(topo.Node(s), 0)
		tc := tg.ApplyChan(a, c)
		for d := 0; d < n; d++ {
			m[s][d] = f.X[t.RelNode(topo.Node(s), topo.Node(d))][tc]
		}
	}
	return m
}

// WorstCaseOptimal designs a routing function with the maximum worst-case
// throughput (no locality constraint): the right-hand end of Figure 1's
// Pareto curve.
func WorstCaseOptimal(t topo.Topology, opts Options) (*Result, error) {
	return WorstCaseOptimalCtx(context.Background(), t, opts)
}

// WorstCaseOptimalCtx is WorstCaseOptimal under a cancellation context: the
// solve aborts between cutting-plane rounds once ctx is done.
func WorstCaseOptimalCtx(ctx context.Context, t topo.Topology, opts Options) (*Result, error) {
	if opts.Cuts == CutPermutations {
		p := NewFlowLP(t, false, opts)
		return p.solveWorstCase(ctx)
	}
	q := newPotentialLP(t, false, opts)
	return q.solve(ctx, math.NaN())
}

// WorstCaseAtLocality designs the best worst-case routing function whose
// average path length equals hNorm times minimal: one point of Figure 1's
// optimal tradeoff curve (equation 10).
func WorstCaseAtLocality(t topo.Topology, hNorm float64, opts Options) (*Result, error) {
	return WorstCaseAtLocalityCtx(context.Background(), t, hNorm, opts)
}

// WorstCaseAtLocalityCtx is WorstCaseAtLocality under a cancellation context.
func WorstCaseAtLocalityCtx(ctx context.Context, t topo.Topology, hNorm float64, opts Options) (*Result, error) {
	if opts.Cuts == CutPermutations {
		p := NewFlowLP(t, true, opts)
		p.SetLocality(hNorm)
		return p.solveWorstCase(ctx)
	}
	q := newPotentialLP(t, true, opts)
	q.SetLocality(hNorm)
	return q.solve(ctx, math.NaN())
}

// ParetoPoint is one sample of an optimal tradeoff curve.
type ParetoPoint struct {
	HNorm float64 // normalized average path length (the constraint)
	// Theta is the optimal throughput at this locality, as a fraction of
	// network capacity.
	Theta float64
	// Gamma is the corresponding optimal load objective.
	Gamma float64
}

// WorstCaseParetoCurve sweeps the locality constraint over hNorms and
// returns the optimal worst-case throughput at each point. See
// WorstCaseParetoCurveCtx for the sweep strategy.
func WorstCaseParetoCurve(t topo.Topology, hNorms []float64, opts Options) ([]ParetoPoint, error) {
	return WorstCaseParetoCurveCtx(context.Background(), t, hNorms, opts)
}

// WorstCaseParetoCurveCtx sweeps the locality constraint over hNorms under a
// cancellation context. At Options.Workers 1 the sweep reuses one LP (and
// its accumulated cuts -- permutation constraints are valid for every L)
// across the points, exactly as the sequential engine always has. At any
// other worker count the points are independent LPs solved concurrently;
// the returned slice is ordered by hNorms index either way. Both strategies
// converge to the same optima within the LP tolerance, but the warm-started
// sequential sweep and the independent solves may differ in the last few
// ulps of each point.
func WorstCaseParetoCurveCtx(ctx context.Context, t topo.Topology, hNorms []float64, opts Options) ([]ParetoPoint, error) {
	// Sweeps cannot degrade gracefully (a curve with silently uncertified
	// points is worse than no curve) and must not share one checkpoint
	// file across points, so checkpointing is disabled and an uncertified
	// point surfaces as an ErrUncertified-wrapping error. The same sharing
	// hazard disables the warm-start snapshot paths.
	opts.Checkpoint = ""
	opts.WarmFrom, opts.FinalSnapshot = "", ""
	cap := eval.NetworkCapacity(t)
	if par.Workers(opts.Workers) > 1 {
		out := make([]ParetoPoint, len(hNorms))
		err := par.Do(ctx, len(hNorms), opts.Workers, func(i int) error {
			h := hNorms[i]
			// Each point owns its LP; the oracle inside it stays
			// sequential so the pool is not oversubscribed.
			popts := opts
			popts.Workers = 1
			res, err := WorstCaseAtLocalityCtx(ctx, t, h, popts)
			if err != nil {
				return fmt.Errorf("L=%v: %w", h, err)
			}
			if !res.Certified {
				return fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
			}
			out[i] = ParetoPoint{HNorm: h, Theta: (1 / res.GammaWC) / cap, Gamma: res.GammaWC}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out := make([]ParetoPoint, 0, len(hNorms))
	if opts.Cuts == CutPermutations {
		p := NewFlowLP(t, true, opts)
		for _, h := range hNorms {
			p.SetLocality(h)
			res, err := p.solveWorstCase(ctx)
			if err != nil {
				return nil, fmt.Errorf("L=%v: %w", h, err)
			}
			if !res.Certified {
				return nil, fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
			}
			out = append(out, ParetoPoint{HNorm: h, Theta: (1 / res.GammaWC) / cap, Gamma: res.GammaWC})
		}
		return out, nil
	}
	q := newPotentialLP(t, true, opts)
	for _, h := range hNorms {
		q.SetLocality(h)
		res, err := q.solve(ctx, math.NaN())
		if err != nil {
			return nil, fmt.Errorf("L=%v: %w", h, err)
		}
		if !res.Certified {
			return nil, fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
		}
		out = append(out, ParetoPoint{HNorm: h, Theta: (1 / res.GammaWC) / cap, Gamma: res.GammaWC})
	}
	return out, nil
}

// MinLocalityAtWorstCase performs the two-stage (lexicographic) design used
// for Figure 4's "optimal" series: first find the best achievable worst-case
// load w*, then minimize average path length subject to keeping the
// worst-case load within (1+Options.Slack) of w*.
func MinLocalityAtWorstCase(t topo.Topology, opts Options) (*Result, error) {
	return MinLocalityAtWorstCaseCtx(context.Background(), t, opts)
}

// MinLocalityAtWorstCaseCtx is MinLocalityAtWorstCase under a cancellation
// context.
func MinLocalityAtWorstCaseCtx(ctx context.Context, t topo.Topology, opts Options) (*Result, error) {
	q := newPotentialLP(t, false, opts)
	stage1, err := q.solve(ctx, math.NaN())
	if err != nil {
		return nil, err
	}
	if !stage1.Certified {
		// Without a certified w* there is no sound stage-2 cap; degrade
		// to the best stage-1 routing instead of minimizing locality
		// against a bound that may be wrong.
		stage1.Reason = "stage 1: " + stage1.Reason
		return stage1, nil
	}
	wStar := stage1.Objective * (1 + opts.slack())

	// Stage 2: cap w, flip the objective to total (orbit-weighted) path
	// length, and resume lazy-row generation at the fixed load bound. Both
	// mutations go through the cut log so retry rebuilds and checkpoints
	// replay them; the stage bump keeps stage-2 checkpoints from ever
	// restoring into a stage-1 loop.
	p := q.FlowLP
	p.ckptStage = 2
	p.record(cutEntry{Kind: cutCapW, Val: wStar})
	p.record(cutEntry{Kind: cutObjLen})

	res, err := q.solve(ctx, wStar)
	if err != nil {
		return nil, fmt.Errorf("design: stage 2: %w", err)
	}
	// Report rounds across both stages and H in the objective.
	res.Rounds += stage1.Rounds
	if !res.Certified {
		res.Reason = "stage 2: " + res.Reason
	}
	return res, nil
}
