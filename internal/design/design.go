// Package design implements the routing-algorithm design problems of the
// paper as linear programs and solves them to global optimality:
//
//   - capacity (equation 6): minimize the maximum channel load under
//     uniform traffic;
//   - worst-case throughput (equations 7/8/10): minimize the worst channel
//     load over all permutation traffic, optionally under an average path
//     length budget H_avg <= L (the Pareto sweeps of Figure 1; the paper
//     writes H_avg = L, but with self commodities excluded the budget form
//     is the faithful Pareto semantics -- excess length would otherwise be
//     parked on self-pair paths that adversarial permutations never load);
//   - average-case throughput (equations 9/15): minimize the mean maximum
//     channel load over a fixed sample of doubly-stochastic matrices
//     (Figure 6);
//   - path-restricted designs over the two-turn path space (2TURN, 2TURNA,
//     Section 5.2/5.4).
//
// Instead of the appendix's monolithic dual reformulation, the worst-case
// problems are solved by constraint generation: the LP carries only the
// permutation constraints discovered so far, and the exact separation
// oracle -- a Hungarian maximum-weight matching on the pair-load matrix of a
// representative channel -- either certifies optimality or produces a
// violated permutation. Because the generated LP is a relaxation and the
// incumbent routing function is feasible, the gap between the LP objective
// and the oracle's load sandwiches the true optimum; convergence is
// self-certifying. The same pattern handles the per-sample maxima of the
// average-case problem.
//
// Symmetry (Section 4) enters through variable folding: commodities are
// restricted to canonical relative destinations (translation folding alone,
// or translation plus the dihedral octant), with every pair's channel loads
// expressed over the folded variables through explicit automorphisms. Both
// foldings are implemented and cross-checked in tests; convexity of the
// cost functions guarantees a symmetric optimum exists, so folding loses
// nothing.
package design

import (
	"context"
	"errors"
	"fmt"
	"math"

	"tcr/internal/eval"
	"tcr/internal/lp"
	"tcr/internal/matching"
	"tcr/internal/par"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// Fold selects the symmetry reduction applied to the flow formulation.
type Fold int

const (
	// FoldOctant folds commodities over translations and the dihedral
	// group: one commodity per canonical octant destination. Smallest LPs.
	FoldOctant Fold = iota
	// FoldTranslation folds over translations only: one commodity per
	// relative destination. Larger LPs; used to cross-check the octant
	// folding.
	FoldTranslation
)

// Numerical tolerances shared across the design LPs.
const (
	// defaultTol is the relative convergence tolerance used when
	// Options.Tol is unset: the oracle certifies optimality once no
	// permutation load exceeds the LP bound by more than this fraction.
	defaultTol = 1e-6
	// defaultSlack is the stage-2 slack applied to the optimal
	// worst-case load in the lexicographic designs when the caller
	// passes slack <= 0; it keeps the stage-2 LP strictly feasible.
	defaultSlack = 1e-6
	// pathProbFloor drops path probabilities below LP tolerance dust
	// when converting a solution into a routing table.
	pathProbFloor = 1e-12
	// decompCoverTol terminates flow decomposition once this little
	// source flow remains unextracted.
	decompCoverTol = 1e-7
)

// Cuts selects the constraint-generation strategy for worst-case problems.
type Cuts int

const (
	// CutPotentials (default) uses the paper's LP (8): matching-dual
	// potential variables per representative channel with lazily added
	// pair rows. Converges in few rounds.
	CutPotentials Cuts = iota
	// CutPermutations adds one worst-permutation row per representative
	// channel per round (pure cutting planes). Slower; kept as a
	// cross-check and ablation baseline.
	CutPermutations
)

// Options tunes the solvers; the zero value is ready to use.
type Options struct {
	// Fold selects the symmetry reduction (default FoldOctant).
	Fold Fold
	// Cuts selects the worst-case constraint strategy (default
	// CutPotentials).
	Cuts Cuts
	// MaxRounds bounds cutting-plane iterations (default 200).
	MaxRounds int
	// Tol is the relative convergence tolerance (default 1e-6).
	Tol float64
	// Workers bounds the engine's parallelism: the per-channel Hungarian
	// oracles run concurrently, and the Pareto sweeps solve their
	// per-point LPs on this many goroutines. 0 means all cores
	// (GOMAXPROCS). 1 reproduces the sequential behaviour bit for bit —
	// in particular, Pareto sweeps at Workers 1 share one warm-started LP
	// across the whole sweep exactly as the pre-parallel engine did,
	// while Workers > 1 solves one independent LP per point.
	Workers int
	// Slack is the stage-2 slack on the optimal first-stage objective
	// used by the lexicographic (throughput-then-locality) designs; it
	// keeps the stage-2 LP strictly feasible. 0 or negative selects the
	// default 1e-6.
	Slack float64
	// Retries bounds how many times a cutting-plane round is re-attempted
	// after a numerical failure that survived the LP solver's own recovery
	// ladder; each retry rebuilds a fresh solver from the cut log after an
	// exponential backoff. 0 selects the default of 2; negative disables
	// retries.
	Retries int
	// Checkpoint, when non-empty, is a file path the worst-case cut loops
	// snapshot their state to (accumulated cuts, simplex basis, pricing
	// cursor), so a killed run restarted with the same path resumes bit
	// for bit instead of recomputing. See checkpoint.go for the exact
	// resume semantics. Average-case loops ignore it.
	Checkpoint string
	// CheckpointEvery is the snapshot cadence in cutting-plane rounds
	// (default 1: every round).
	CheckpointEvery int
}

// ErrUncertified marks a design outcome whose budgets (rounds, iterations,
// deadline) ran out before the oracle certified optimality. APIs that can
// degrade gracefully return a Result with Certified == false instead; the
// ones that cannot (Pareto sweeps, the CLI) wrap this sentinel.
var ErrUncertified = errors.New("design: result not certified within budgets")

func (o Options) rounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 200
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return defaultTol
}

func (o Options) slack() float64 {
	if o.Slack > 0 {
		return o.Slack
	}
	return defaultSlack
}

func (o Options) retries() int {
	if o.Retries > 0 {
		return o.Retries
	}
	if o.Retries < 0 {
		return 0
	}
	return 2
}

func (o Options) ckptEvery() int {
	if o.CheckpointEvery > 0 {
		return o.CheckpointEvery
	}
	return 1
}

// commodity is one folded flow commodity.
type commodity struct {
	rel    topo.Node // canonical relative destination as a node id
	orbit  float64   // number of relative offsets folded onto it
	relDst topo.RelDest
}

// FlowLP is a flow-based routing design LP under a symmetry folding. It
// carries the variable layout, the pair-to-variable automorphism maps, and
// the warm-startable solver.
type FlowLP struct {
	T     *topo.Torus
	fold  Fold
	comms []commodity
	// pairComm[s*N+d] / pairAut[s*N+d]: the commodity index and the
	// automorphism mapping pair (s, d) onto it; -1 for self pairs.
	pairComm []int
	pairAut  []topo.Aut

	model  *lp.Model
	solver *lp.Solver
	wVar   lp.VarID // the max-load variable
	hRow   lp.RowID // locality budget row, -1 when absent
	hasH   bool

	// blocks are the matching-dual potential blocks when the LP was built
	// by newPotentialLP; nil for the pure cutting-plane formulation.
	blocks []*potBlock

	// cutLog records every post-construction solver mutation for replay
	// (retry rebuilds and checkpoint restores; see cutlog.go).
	cutLog []cutEntry
	// ckptStage distinguishes the lexicographic design's stages in the
	// checkpoint signature; locNorm is the current locality target.
	ckptStage int
	locNorm   float64

	opts Options
}

// varID returns the LP variable of (commodity, channel).
func (p *FlowLP) varID(comm int, c topo.Channel) lp.VarID {
	return lp.VarID(comm*p.T.C + int(c))
}

// NewFlowLP builds the base LP: flow conservation for each folded commodity
// plus the load variable w, with objective min w. A locality budget row
// (H_avg <= L, normalized units; see the package comment on why the paper's
// equality becomes a budget here) is added when withLocality is set; sweep
// it with SetLocality.
func NewFlowLP(t *topo.Torus, withLocality bool, opts Options) *FlowLP {
	p := &FlowLP{T: t, fold: opts.Fold, opts: opts, hRow: -1}
	p.buildCommodities()
	p.buildPairMaps()

	m := lp.NewModel()
	for ci := range p.comms {
		for c := 0; c < t.C; c++ {
			m.AddVar(0, fmt.Sprintf("x[%d,%d]", ci, c))
		}
	}
	p.wVar = m.AddVar(1, "w")

	// Flow conservation: for each commodity and node, out - in = supply.
	for ci, cm := range p.comms {
		for n := 0; n < t.N; n++ {
			terms := make([]lp.Term, 0, 8)
			for d := topo.Dir(0); d < topo.NumDirs; d++ {
				terms = append(terms, lp.Term{Var: p.varID(ci, t.Chan(topo.Node(n), d)), Coef: 1})
				nb := t.Neighbor(topo.Node(n), d)
				terms = append(terms, lp.Term{Var: p.varID(ci, t.Chan(nb, d.Reverse())), Coef: -1})
			}
			rhs := 0.0
			switch topo.Node(n) {
			case 0:
				rhs = 1
			case cm.rel:
				rhs = -1
			}
			m.AddRow(terms, lp.EQ, rhs, fmt.Sprintf("cons[%d,%d]", ci, n))
		}
	}

	if withLocality {
		terms := make([]lp.Term, 0, len(p.comms)*t.C)
		for ci, cm := range p.comms {
			for c := 0; c < t.C; c++ {
				terms = append(terms, lp.Term{Var: p.varID(ci, topo.Channel(c)), Coef: cm.orbit})
			}
		}
		// H_avg = (1/N) * sum orbit * pathlen; constrain the sum directly.
		p.hRow = m.AddRow(terms, lp.LE, float64(t.N)*t.MeanMinDist(), "H")
		p.hasH = true
	}

	p.model = m
	p.solver = lp.NewSolver(m)
	return p
}

func (p *FlowLP) buildCommodities() {
	t := p.T
	switch p.fold {
	case FoldOctant:
		for _, od := range t.OctantDests() {
			p.comms = append(p.comms, commodity{
				rel:    t.NodeAt(od.Rel.X, od.Rel.Y),
				orbit:  float64(od.Orbit),
				relDst: od.Rel,
			})
		}
	case FoldTranslation:
		for rel := 1; rel < t.N; rel++ {
			x, y := t.Coord(topo.Node(rel))
			p.comms = append(p.comms, commodity{
				rel:    topo.Node(rel),
				orbit:  1,
				relDst: topo.RelDest{X: x, Y: y},
			})
		}
	}
}

func (p *FlowLP) buildPairMaps() {
	t := p.T
	commIdx := make(map[topo.Node]int, len(p.comms))
	for i, cm := range p.comms {
		commIdx[cm.rel] = i
	}
	p.pairComm = make([]int, t.N*t.N)
	p.pairAut = make([]topo.Aut, t.N*t.N)
	for s := 0; s < t.N; s++ {
		sx, sy := t.Coord(topo.Node(s))
		for d := 0; d < t.N; d++ {
			idx := s*t.N + d
			if s == d {
				p.pairComm[idx] = -1
				continue
			}
			switch p.fold {
			case FoldOctant:
				a, rel := t.PairAut(topo.Node(s), topo.Node(d))
				p.pairComm[idx] = commIdx[t.NodeAt(rel.X, rel.Y)]
				p.pairAut[idx] = a
			case FoldTranslation:
				rx, ry := t.Rel(topo.Node(s), topo.Node(d))
				p.pairComm[idx] = commIdx[t.NodeAt(rx, ry)]
				p.pairAut[idx] = topo.Aut{M: topo.DihId, Tx: -sx, Ty: -sy}
			}
		}
	}
}

// pairLoadVar returns the LP variable carrying the load that pair (s, d)
// places on channel c, or -1 for self pairs.
func (p *FlowLP) pairLoadVar(s, d int, c topo.Channel) lp.VarID {
	idx := s*p.T.N + d
	ci := p.pairComm[idx]
	if ci < 0 {
		return -1
	}
	return p.varID(ci, p.T.ApplyChan(p.pairAut[idx], c))
}

// SetLocality re-targets the locality row at normalized average path length
// hNorm (1 = minimal, 2 = twice minimal).
func (p *FlowLP) SetLocality(hNorm float64) {
	if !p.hasH {
		//lint:ignore libpanic caller bug, not a data condition: every in-package caller builds the LP with a locality row
		panic("design: SetLocality on an LP built without a locality row")
	}
	p.locNorm = hNorm
	p.record(cutEntry{Kind: cutLoc, Val: hNorm})
}

// loadCut appends the constraint gamma_c(R, Lambda) <= bound (the w
// variable or a sample's t variable) for a traffic pattern given as a
// permutation or dense matrix.
func (p *FlowLP) permCut(c topo.Channel, perm []int, bound lp.VarID) {
	e := cutEntry{Kind: cutPerm, Ch: int(c), Perm: append([]int(nil), perm...), Bound: int(bound)}
	p.record(e)
}

// matrixCut appends gamma_c(R, Lambda) <= bound for a dense pattern.
func (p *FlowLP) matrixCut(c topo.Channel, lam *traffic.Matrix, bound lp.VarID) {
	p.record(cutEntry{Kind: cutMatrix, Ch: int(c), Bound: int(bound), mat: lam})
}

// matrixCutTerms builds the dense-pattern load cut's terms.
func (p *FlowLP) matrixCutTerms(c topo.Channel, lam *traffic.Matrix, bound lp.VarID) []lp.Term {
	terms := make([]lp.Term, 0, p.T.N*p.T.N/4)
	for s := 0; s < p.T.N; s++ {
		for d := 0; d < p.T.N; d++ {
			l := lam.L[s][d]
			//lint:ignore floatcmp sparsity skip: entries never written stay exactly 0
			if l == 0 {
				continue
			}
			if v := p.pairLoadVar(s, d, c); v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coef: l})
			}
		}
	}
	return append(terms, lp.Term{Var: bound, Coef: -1})
}

// unfold expands an LP solution into a full per-relative-destination flow
// table (the induced translation-invariant routing function).
func (p *FlowLP) unfold(x []float64) *eval.Flow {
	t := p.T
	f := eval.NewFlow(t)
	for rel := 1; rel < t.N; rel++ {
		idx := 0*t.N + rel // pair (0, rel)
		ci := p.pairComm[idx]
		a := p.pairAut[idx]
		for c := 0; c < t.C; c++ {
			f.X[rel][c] = x[p.varID(ci, t.ApplyChan(a, topo.Channel(c)))]
		}
	}
	return f
}

// Result is the outcome of a design solve: the optimal folded solution
// expanded to a flow table plus its exactly-evaluated metrics.
type Result struct {
	Flow *eval.Flow
	// Objective is the LP objective at convergence (max load for
	// worst-case problems, mean max load for average-case).
	Objective float64
	// GammaWC is the exact worst-case channel load of the returned
	// routing function (Hungarian-evaluated).
	GammaWC float64
	// HAvg is the average path length in hops; HNorm normalized.
	HAvg, HNorm float64
	// Rounds is the number of cutting-plane iterations used.
	Rounds int
	// Iterations is the total simplex pivot count.
	Iterations int
	// Certified reports that the separation oracle proved optimality
	// within the round, pivot, and deadline budgets. When false the
	// result is a graceful degradation: Flow is the best feasible routing
	// encountered (its GammaWC exactly evaluated), Objective the LP lower
	// bound at that round, and Reason says which budget ran out.
	Certified bool
	// Reason explains an uncertified outcome; empty when Certified.
	Reason string
}

// degrade packages the best iterate seen so far as an uncertified Result
// when a budget (rounds, simplex pivots, deadline) runs out. With no
// feasible iterate to fall back on, the cause surfaces as an error wrapping
// ErrUncertified. Any checkpoint is left in place so the run can be resumed
// with a larger budget.
func degrade(res *Result, flow *eval.Flow, obj, gammaWC float64, cause error) (*Result, error) {
	if flow == nil {
		return nil, fmt.Errorf("%w: %v", ErrUncertified, cause)
	}
	res.Flow = flow
	res.Objective = obj
	res.GammaWC = gammaWC
	res.HAvg = flow.HAvg()
	res.HNorm = flow.HNorm()
	res.Certified = false
	res.Reason = cause.Error()
	return res, nil
}

// solveWorstCase runs the cutting-plane loop on the current LP state:
// minimize the current objective subject to flow constraints and generated
// permutation cuts, until the Hungarian oracle certifies that no permutation
// loads any channel beyond the LP's bound variable by more than tol.
//
// The per-direction Hungarian oracles are independent and run on
// Options.Workers goroutines; cuts are then added sequentially in direction
// order, so the generated LP -- and hence the solve trajectory -- is
// identical for every worker count.
func (p *FlowLP) solveWorstCase(ctx context.Context) (*Result, error) {
	tol := p.opts.tol()
	var last *lp.Solution
	res := &Result{}
	perms := make([][]int, topo.NumDirs)
	gammas := make([]float64, topo.NumDirs)
	startRound := 0
	if r, it, ok := p.restoreCheckpoint(); ok {
		startRound, res.Iterations = r, it
	}
	// The best iterate so far — the one with the smallest exact
	// (oracle-evaluated) worst-case load — backs graceful degradation.
	var bestFlow *eval.Flow
	var bestObj, bestGW float64
	for round := startRound; round < p.opts.rounds(); round++ {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
			return degrade(res, bestFlow, bestObj, bestGW, err)
		}
		sol, err := p.solveRound(ctx)
		if err != nil {
			return nil, err
		}
		if sol.Status == lp.IterLimit {
			if err := ctx.Err(); errors.Is(err, context.Canceled) {
				return nil, err
			}
			return degrade(res, bestFlow, bestObj, bestGW,
				fmt.Errorf("simplex budget exhausted at round %d (%s)", round, sol.Diag.Summary()))
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("design: LP status %v at round %d", sol.Status, round)
		}
		last = sol
		res.Rounds = round + 1
		res.Iterations += sol.Iterations
		flow := p.unfold(sol.X)
		w := sol.X[p.wVar]

		// Separation: worst permutation per channel-direction
		// representative (translation invariance covers the rest).
		err = p.separate(ctx, func() error {
			return par.Do(ctx, int(topo.NumDirs), p.opts.Workers, func(i int) error {
				if err := oracleFault(); err != nil {
					return err
				}
				c := p.T.Chan(0, topo.Dir(i))
				perm, g, err := matching.MaxWeightAssignment(pairLoadMatrix(flow, c))
				if err != nil {
					return err
				}
				perms[i], gammas[i] = perm, g
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		gw := gammas[0]
		for _, g := range gammas[1:] {
			gw = math.Max(gw, g)
		}
		if bestFlow == nil || gw < bestGW {
			bestFlow, bestObj, bestGW = flow, sol.Objective, gw
		}
		violated := false
		for dir := topo.Dir(0); dir < topo.NumDirs; dir++ {
			if gammas[dir] > w+tol*math.Max(1, w) {
				p.permCut(p.T.Chan(0, dir), perms[dir], p.wVar)
				violated = true
			}
		}
		if !violated {
			res.Flow = flow
			res.Objective = last.Objective
			res.Certified = true
			var err error
			res.GammaWC, _, err = flow.WorstCaseCtx(ctx, p.opts.Workers)
			if err != nil {
				return nil, err
			}
			res.HAvg = flow.HAvg()
			res.HNorm = flow.HNorm()
			if err := p.clearCheckpoint(); err != nil {
				return nil, err
			}
			return res, nil
		}
		if (round+1)%p.opts.ckptEvery() == 0 {
			if err := p.writeCheckpoint(round+1, res.Iterations); err != nil {
				return nil, err
			}
		}
	}
	return degrade(res, bestFlow, bestObj, bestGW,
		fmt.Errorf("cutting planes did not converge in %d rounds", p.opts.rounds()))
}

// pairLoadMatrix mirrors eval's internal pair-load matrix for the oracle.
func pairLoadMatrix(f *eval.Flow, c topo.Channel) [][]float64 {
	t := f.T
	m := make([][]float64, t.N)
	dir := t.ChanDir(c)
	ux, uy := t.Coord(t.ChanSrc(c))
	for s := 0; s < t.N; s++ {
		m[s] = make([]float64, t.N)
		sx, sy := t.Coord(topo.Node(s))
		tc := t.Chan(t.NodeAt(ux-sx, uy-sy), dir)
		for d := 0; d < t.N; d++ {
			rx, ry := t.Rel(topo.Node(s), topo.Node(d))
			m[s][d] = f.X[t.NodeAt(rx, ry)][tc]
		}
	}
	return m
}

// WorstCaseOptimal designs a routing function with the maximum worst-case
// throughput (no locality constraint): the right-hand end of Figure 1's
// Pareto curve.
func WorstCaseOptimal(t *topo.Torus, opts Options) (*Result, error) {
	return WorstCaseOptimalCtx(context.Background(), t, opts)
}

// WorstCaseOptimalCtx is WorstCaseOptimal under a cancellation context: the
// solve aborts between cutting-plane rounds once ctx is done.
func WorstCaseOptimalCtx(ctx context.Context, t *topo.Torus, opts Options) (*Result, error) {
	if opts.Cuts == CutPermutations {
		p := NewFlowLP(t, false, opts)
		return p.solveWorstCase(ctx)
	}
	q := newPotentialLP(t, false, opts)
	return q.solve(ctx, math.NaN())
}

// WorstCaseAtLocality designs the best worst-case routing function whose
// average path length equals hNorm times minimal: one point of Figure 1's
// optimal tradeoff curve (equation 10).
func WorstCaseAtLocality(t *topo.Torus, hNorm float64, opts Options) (*Result, error) {
	return WorstCaseAtLocalityCtx(context.Background(), t, hNorm, opts)
}

// WorstCaseAtLocalityCtx is WorstCaseAtLocality under a cancellation context.
func WorstCaseAtLocalityCtx(ctx context.Context, t *topo.Torus, hNorm float64, opts Options) (*Result, error) {
	if opts.Cuts == CutPermutations {
		p := NewFlowLP(t, true, opts)
		p.SetLocality(hNorm)
		return p.solveWorstCase(ctx)
	}
	q := newPotentialLP(t, true, opts)
	q.SetLocality(hNorm)
	return q.solve(ctx, math.NaN())
}

// ParetoPoint is one sample of an optimal tradeoff curve.
type ParetoPoint struct {
	HNorm float64 // normalized average path length (the constraint)
	// Theta is the optimal throughput at this locality, as a fraction of
	// network capacity.
	Theta float64
	// Gamma is the corresponding optimal load objective.
	Gamma float64
}

// WorstCaseParetoCurve sweeps the locality constraint over hNorms and
// returns the optimal worst-case throughput at each point. See
// WorstCaseParetoCurveCtx for the sweep strategy.
func WorstCaseParetoCurve(t *topo.Torus, hNorms []float64, opts Options) ([]ParetoPoint, error) {
	return WorstCaseParetoCurveCtx(context.Background(), t, hNorms, opts)
}

// WorstCaseParetoCurveCtx sweeps the locality constraint over hNorms under a
// cancellation context. At Options.Workers 1 the sweep reuses one LP (and
// its accumulated cuts -- permutation constraints are valid for every L)
// across the points, exactly as the sequential engine always has. At any
// other worker count the points are independent LPs solved concurrently;
// the returned slice is ordered by hNorms index either way. Both strategies
// converge to the same optima within the LP tolerance, but the warm-started
// sequential sweep and the independent solves may differ in the last few
// ulps of each point.
func WorstCaseParetoCurveCtx(ctx context.Context, t *topo.Torus, hNorms []float64, opts Options) ([]ParetoPoint, error) {
	// Sweeps cannot degrade gracefully (a curve with silently uncertified
	// points is worse than no curve) and must not share one checkpoint
	// file across points, so checkpointing is disabled and an uncertified
	// point surfaces as an ErrUncertified-wrapping error.
	opts.Checkpoint = ""
	cap := eval.NetworkCapacity(t)
	if par.Workers(opts.Workers) > 1 {
		out := make([]ParetoPoint, len(hNorms))
		err := par.Do(ctx, len(hNorms), opts.Workers, func(i int) error {
			h := hNorms[i]
			// Each point owns its LP; the oracle inside it stays
			// sequential so the pool is not oversubscribed.
			popts := opts
			popts.Workers = 1
			res, err := WorstCaseAtLocalityCtx(ctx, t, h, popts)
			if err != nil {
				return fmt.Errorf("L=%v: %w", h, err)
			}
			if !res.Certified {
				return fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
			}
			out[i] = ParetoPoint{HNorm: h, Theta: (1 / res.GammaWC) / cap, Gamma: res.GammaWC}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out := make([]ParetoPoint, 0, len(hNorms))
	if opts.Cuts == CutPermutations {
		p := NewFlowLP(t, true, opts)
		for _, h := range hNorms {
			p.SetLocality(h)
			res, err := p.solveWorstCase(ctx)
			if err != nil {
				return nil, fmt.Errorf("L=%v: %w", h, err)
			}
			if !res.Certified {
				return nil, fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
			}
			out = append(out, ParetoPoint{HNorm: h, Theta: (1 / res.GammaWC) / cap, Gamma: res.GammaWC})
		}
		return out, nil
	}
	q := newPotentialLP(t, true, opts)
	for _, h := range hNorms {
		q.SetLocality(h)
		res, err := q.solve(ctx, math.NaN())
		if err != nil {
			return nil, fmt.Errorf("L=%v: %w", h, err)
		}
		if !res.Certified {
			return nil, fmt.Errorf("L=%v: %w: %s", h, ErrUncertified, res.Reason)
		}
		out = append(out, ParetoPoint{HNorm: h, Theta: (1 / res.GammaWC) / cap, Gamma: res.GammaWC})
	}
	return out, nil
}

// MinLocalityAtWorstCase performs the two-stage (lexicographic) design used
// for Figure 4's "optimal" series: first find the best achievable worst-case
// load w*, then minimize average path length subject to keeping the
// worst-case load within (1+Options.Slack) of w*.
func MinLocalityAtWorstCase(t *topo.Torus, opts Options) (*Result, error) {
	return MinLocalityAtWorstCaseCtx(context.Background(), t, opts)
}

// MinLocalityAtWorstCaseCtx is MinLocalityAtWorstCase under a cancellation
// context.
func MinLocalityAtWorstCaseCtx(ctx context.Context, t *topo.Torus, opts Options) (*Result, error) {
	q := newPotentialLP(t, false, opts)
	stage1, err := q.solve(ctx, math.NaN())
	if err != nil {
		return nil, err
	}
	if !stage1.Certified {
		// Without a certified w* there is no sound stage-2 cap; degrade
		// to the best stage-1 routing instead of minimizing locality
		// against a bound that may be wrong.
		stage1.Reason = "stage 1: " + stage1.Reason
		return stage1, nil
	}
	wStar := stage1.Objective * (1 + opts.slack())

	// Stage 2: cap w, flip the objective to total (orbit-weighted) path
	// length, and resume lazy-row generation at the fixed load bound. Both
	// mutations go through the cut log so retry rebuilds and checkpoints
	// replay them; the stage bump keeps stage-2 checkpoints from ever
	// restoring into a stage-1 loop.
	p := q.FlowLP
	p.ckptStage = 2
	p.record(cutEntry{Kind: cutCapW, Val: wStar})
	p.record(cutEntry{Kind: cutObjLen})

	res, err := q.solve(ctx, wStar)
	if err != nil {
		return nil, fmt.Errorf("design: stage 2: %w", err)
	}
	// Report rounds across both stages and H in the objective.
	res.Rounds += stage1.Rounds
	if !res.Certified {
		res.Reason = "stage 2: " + res.Reason
	}
	return res, nil
}
