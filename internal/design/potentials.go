package design

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"tcr/internal/eval"
	"tcr/internal/lp"
	"tcr/internal/matching"
	"tcr/internal/par"
	"tcr/internal/topo"
)

// This file implements the paper's worst-case LP (8) directly: for each
// representative channel c, dual "potential" variables u_{s,c} and v_{d,c}
// bound every pair's load (the third constraint block of (8)) and their sum
// bounds w (the fourth block). By Birkhoff/König duality, the minimum of
// sum(u)+sum(v) subject to u_s + v_d >= load_{s,d}(c) equals the
// maximum-weight matching, i.e. the worst permutation load on c, so
// minimizing w yields exactly gamma_wc.
//
// Translation symmetry reduces the channel set to one representative per
// channel orbit of the translation subgroup (the O(CN) -> O(N) collapse of
// Section 4: one per direction on the torus families, every channel on a
// family without translations); the pair constraint blocks, which would be
// |reps| N^2 rows, are generated lazily -- only pairs whose load exceeds the
// current potentials enter the LP. The Hungarian oracle then certifies
// optimality exactly.

// potBlock is the potential-variable block of one representative channel.
type potBlock struct {
	idx int // index in FlowLP.blocks, recorded in cut-log pair entries
	ch  topo.Channel
	// u and v are the first of N consecutive variables each. Because
	// channel loads are nonnegative, the matching dual may be restricted
	// to nonnegative potentials (the dual of the <=-relaxed assignment
	// LP), which keeps the LP free of mirrored free-variable columns.
	u, v  lp.VarID
	added map[int]bool // s*N+d pairs already constrained
}

// addPotentialBlocks extends the model with potential variables and the sum
// rows sum(u)+sum(v) <= w for each of the LP's separation representatives
// (p.seps — full-group channel orbits when the symmetrized non-transitive
// folding is active, translation orbits otherwise). Must run before the
// solver is constructed.
func (p *FlowLP) addPotentialBlocks(m *lp.Model) []*potBlock {
	return potentialBlocksFor(m, p.T, p.seps, p.wVar)
}

// addPotentialBlocks is the formulation-independent block builder: one block
// per channel-orbit representative of the topology's translation subgroup.
func addPotentialBlocks(m *lp.Model, t topo.Topology, wVar lp.VarID) []*potBlock {
	return potentialBlocksFor(m, t, t.TransGroup().ChanOrbitReps(), wVar)
}

// potentialBlocksFor builds one potential block per given representative.
func potentialBlocksFor(m *lp.Model, t topo.Topology, reps []topo.Channel, wVar lp.VarID) []*potBlock {
	n := t.Nodes()
	blocks := make([]*potBlock, 0, len(reps))
	for bi, ch := range reps {
		b := &potBlock{idx: bi, ch: ch, added: make(map[int]bool)}
		b.u = m.AddVars(n)
		b.v = m.AddVars(n)
		terms := make([]lp.Term, 0, 2*n+1)
		for i := 0; i < n; i++ {
			terms = append(terms,
				lp.Term{Var: b.u + lp.VarID(i), Coef: 1},
				lp.Term{Var: b.v + lp.VarID(i), Coef: 1},
			)
		}
		terms = append(terms, lp.Term{Var: wVar, Coef: -1})
		m.AddRow(terms, lp.LE, 0, fmt.Sprintf("potsum[%v]", blockLabel(t, ch)))
		blocks = append(blocks, b)
	}
	return blocks
}

// blockLabel names a potential block's sum row: the direction on the 2D
// torus (preserving the historical row names), the channel index elsewhere.
func blockLabel(t topo.Topology, ch topo.Channel) any {
	if tt, ok := t.(*topo.Torus); ok {
		return tt.ChanDir(ch)
	}
	return int(ch)
}

// pairRow adds the lazy constraint load_{s,d}(c) - u_s - v_d <= 0.
func (p *FlowLP) pairRow(b *potBlock, s, d int) {
	p.record(cutEntry{Kind: cutPair, Block: b.idx, S: s, D: d})
}

// pairRowTerms builds a lazy pair row's terms.
func (p *FlowLP) pairRowTerms(b *potBlock, s, d int) []lp.Term {
	return []lp.Term{
		{Var: p.pairLoadVar(s, d, b.ch), Coef: 1},
		{Var: b.u + lp.VarID(s), Coef: -1},
		{Var: b.v + lp.VarID(d), Coef: -1},
	}
}

// violatedPairs selects pair rows to add for a block: for every source the
// most violated destination and for every destination the most violated
// source (deduplicated, ordered by decreasing violation). This covers the
// whole bipartite structure each round -- the matching dual needs roughly
// one tight row per source and destination -- instead of letting the most
// violated entries crowd into a few rows of the load matrix.
func violatedPairs(n int, b *potBlock, x []float64, load [][]float64, tol float64) []int {
	type viol struct {
		idx int
		by  float64
	}
	viols := make(map[int]float64)
	for s := 0; s < n; s++ {
		us := x[b.u+lp.VarID(s)]
		bestIdx, bestBy := -1, tol
		for d := 0; d < n; d++ {
			if s == d || b.added[s*n+d] {
				continue
			}
			if by := load[s][d] - us - x[b.v+lp.VarID(d)]; by > bestBy {
				bestBy, bestIdx = by, s*n+d
			}
		}
		if bestIdx >= 0 {
			viols[bestIdx] = bestBy
		}
	}
	for d := 0; d < n; d++ {
		vd := x[b.v+lp.VarID(d)]
		bestIdx, bestBy := -1, tol
		for s := 0; s < n; s++ {
			if s == d || b.added[s*n+d] {
				continue
			}
			if by := load[s][d] - x[b.u+lp.VarID(s)] - vd; by > bestBy {
				bestBy, bestIdx = by, s*n+d
			}
		}
		if bestIdx >= 0 {
			viols[bestIdx] = bestBy
		}
	}
	vs := make([]viol, 0, len(viols))
	for idx, by := range viols {
		vs = append(vs, viol{idx, by})
	}
	sort.Slice(vs, func(i, j int) bool {
		//lint:ignore floatcmp ordering comparator: exact != only decides whether to fall through to the index tiebreak
		if vs[i].by != vs[j].by {
			return vs[i].by > vs[j].by
		}
		return vs[i].idx < vs[j].idx
	})
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = v.idx
	}
	return out
}

// potentialLP marks a FlowLP built with potential blocks (FlowLP.blocks).
type potentialLP struct {
	*FlowLP
}

// newPotentialLP builds the worst-case design LP in the paper's form (8),
// with lazily generated pair rows.
func newPotentialLP(t topo.Topology, withLocality bool, opts Options) *potentialLP {
	p := newBareFlowLP(t, opts)

	m := lp.NewModel()
	p.addFlowVars(m)
	p.wVar = m.AddVar(1, "w")
	blocks := p.addPotentialBlocks(m)
	p.addConservation(m, false)
	p.addSymmetry(m)
	if withLocality {
		p.addLocalityRow(m)
	}
	if !t.VertexTransitive() {
		// Without translation symmetry every pair is its own commodity and
		// the lazy trickle of pair rows makes the simplex grind through one
		// degenerate re-solve per round; at the small scales non-transitive
		// design runs at, writing LP (8)'s full pair-constraint block up
		// front is cheaper than generating it.
		for _, b := range blocks {
			for s := 0; s < p.n; s++ {
				for d := 0; d < p.n; d++ {
					if s == d {
						continue
					}
					m.AddRow(p.pairRowTerms(b, s, d), lp.LE, 0, "")
					b.added[s*p.n+d] = true
				}
			}
		}
	}
	p.model = m
	p.solver = lp.NewSolver(m)
	p.blocks = blocks
	return &potentialLP{FlowLP: p}
}

// maxRowsPerBlockRound caps how many lazy pair rows enter per block per
// round, trading round count against LP growth. violatedPairs proposes at
// most 2N rows; this cap keeps the very first rounds lean.
const maxRowsPerBlockRound = 128

// solve runs the lazy-row loop: solve, add the most violated pair rows per
// block, and finish when the Hungarian oracle certifies the bound. The
// boundVar-capped variant (stage 2) passes a fixed numeric bound instead of
// reading w from the solution.
//
// The per-block pair-load matrices and Hungarian matchings are independent
// and run on Options.Workers goroutines; the certification scan and the row
// additions that follow read the per-block slots in block order, so the cut
// sequence is identical for every worker count.
//
// Each round's LP solve goes through the retry ladder (cutlog.go), the loop
// checkpoints its state per Options.Checkpoint, and exhausted budgets
// degrade to the best iterate seen rather than failing (design.go: degrade).
func (q *potentialLP) solve(ctx context.Context, fixedBound float64) (*Result, error) {
	p := q.FlowLP
	tol := p.opts.tol()
	res := &Result{}
	loads := make([][][]float64, len(p.blocks))
	perms := make([][]int, len(p.blocks))
	gammas := make([]float64, len(p.blocks))
	startRound, cumIters := 0, 0
	if r, it, ok := p.restoreCheckpoint(); ok {
		startRound, cumIters = r, it
	} else {
		p.restoreWarmStart()
	}
	var bestFlow *eval.Flow
	var bestObj, bestGW float64
	for round := startRound; round < p.opts.rounds(); round++ {
		res.Rounds, res.Iterations = round, cumIters
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
			return degrade(res, bestFlow, bestObj, bestGW, err)
		}
		sol, err := p.solveRound(ctx)
		if err != nil {
			return nil, err
		}
		if sol.Status == lp.IterLimit {
			if err := ctx.Err(); errors.Is(err, context.Canceled) {
				return nil, err
			}
			return degrade(res, bestFlow, bestObj, bestGW,
				fmt.Errorf("simplex budget exhausted at round %d (%s)", round, sol.Diag.Summary()))
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("design: potential LP status %v at round %d", sol.Status, round)
		}
		cumIters += sol.Iterations
		res.Rounds, res.Iterations = round+1, cumIters
		flow := p.unfold(sol.X)
		bound := fixedBound
		if math.IsNaN(bound) {
			bound = sol.X[p.wVar]
		}
		// Certify every block with the Hungarian oracle, then add lazy
		// rows only for the worst-violated block: under the symmetry
		// folding the representative blocks are near-copies, and feeding
		// them all every round multiplies the LP for no information.
		err = p.separate(ctx, func() error {
			return par.Do(ctx, len(p.blocks), p.opts.Workers, func(bi int) error {
				if err := oracleFault(); err != nil {
					return err
				}
				loads[bi] = pairLoadMatrix(flow, p.blocks[bi].ch)
				perm, g, err := matching.MaxWeightAssignment(loads[bi])
				if err != nil {
					return err
				}
				perms[bi], gammas[bi] = perm, g
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		gw := gammas[0]
		for _, g := range gammas[1:] {
			gw = math.Max(gw, g)
		}
		if bestFlow == nil || gw < bestGW {
			bestFlow, bestObj, bestGW = flow, sol.Objective, gw
		}
		certified := true
		limit := bound + tol*math.Max(1, bound)
		worstBlock, worstG := -1, limit
		for bi := range p.blocks {
			if gammas[bi] > limit {
				certified = false
			}
			if gammas[bi] > worstG {
				worstG, worstBlock = gammas[bi], bi
			}
		}
		if certified {
			res.Flow = flow
			res.Objective = sol.Objective
			res.Iterations = sol.Iterations
			res.Certified = true
			res.GammaWC, _, err = flow.WorstCaseCtx(ctx, p.opts.Workers)
			if err != nil {
				return nil, err
			}
			res.HAvg = flow.HAvg()
			res.HNorm = flow.HNorm()
			if err := p.writeFinalSnapshot(res.Rounds, res.Iterations); err != nil {
				return nil, err
			}
			if err := p.clearCheckpoint(); err != nil {
				return nil, err
			}
			return res, nil
		}
		progressed := false
		if p.T.VertexTransitive() {
			if worstBlock >= 0 {
				b := p.blocks[worstBlock]
				// One aggregate permutation cut moves the bound immediately;
				// the pair rows supply the matching-dual structure. Under the
				// symmetry folding the representative blocks are near-copies,
				// so feeding only the worst one each round keeps the LP lean
				// without slowing convergence.
				p.permCut(b.ch, perms[worstBlock], p.wVar)
				for i, idx := range violatedPairs(p.n, b, sol.X, loads[worstBlock], tol) {
					if i >= maxRowsPerBlockRound {
						break
					}
					p.pairRow(b, idx/p.n, idx%p.n)
					progressed = true
				}
				progressed = true
			}
		} else {
			// Without translation symmetry every channel is its own block and
			// the blocks are genuinely independent, so starving all but the
			// worst one multiplies the round count by the channel count. Feed
			// every violated block.
			for bi, b := range p.blocks {
				if gammas[bi] <= limit {
					continue
				}
				p.permCut(b.ch, perms[bi], p.wVar)
				for i, idx := range violatedPairs(p.n, b, sol.X, loads[bi], tol) {
					if i >= maxRowsPerBlockRound {
						break
					}
					p.pairRow(b, idx/p.n, idx%p.n)
				}
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("design: oracle violated but no pair rows to add (numerical trouble)")
		}
		if (round+1)%p.opts.ckptEvery() == 0 {
			if err := p.writeCheckpoint(round+1, cumIters); err != nil {
				return nil, err
			}
		}
	}
	res.Rounds, res.Iterations = p.opts.rounds(), cumIters
	return degrade(res, bestFlow, bestObj, bestGW,
		fmt.Errorf("potential LP did not converge in %d rounds", p.opts.rounds()))
}
