//go:build !lpchaos

package design

// oracleFault is the separation-oracle fault-injection hook. It only fires
// under the lpchaos build tag; release builds compile it to nothing.
func oracleFault() error { return nil }
