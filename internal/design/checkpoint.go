package design

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"tcr/internal/store"
	"tcr/internal/topo"
)

// Cut-loop checkpointing: every Options.CheckpointEvery rounds, the loop
// serializes its accumulated cut log together with the solver's basis and
// pricing cursor. A killed run restarted with the same Options.Checkpoint
// path replays the log onto a fresh solver, installs the basis, and
// continues from the recorded round — bit for bit the run the
// uninterrupted loop would have produced, because the write barrier
// (Solver.RefreshFactors) puts the live solver through exactly the
// refactorization the restore path performs.
//
// The checkpoint identifies its run by a signature of the formulation
// (topology, folding, cut strategy, locality target, lexicographic stage);
// a file whose signature does not match is ignored and overwritten, so
// pointing different runs at one path degrades to "no resume", never to a
// wrong resume. Resume granularity is one cut loop: the lexicographic
// design's stage 2 carries a distinct signature, so a run killed in stage
// 2 re-runs stage 1 and resumes stage 2's accumulated state is discarded.

// checkpointVersion invalidates checkpoints across incompatible solver or
// formulation changes. ckpt-2 added the integrity hash field; ckpt-3
// switched the stage-2 w cap from a cut row to a variable upper bound
// (bounded simplex), which changes the basis dimension and adds the at-upper
// nonbasic set to the serialized state.
const checkpointVersion = "tcr-ckpt-3"

// checkpoint is the on-disk resume state of a cut loop. SHA256 is the
// integrity hash (store.HashBytes) of the checkpoint's own JSON encoding
// with the SHA256 field empty: restoring into a live solver from state a
// crash or a stray editor has garbled would produce a silently different
// trajectory, so a checkpoint that does not verify is rejected outright.
type checkpoint struct {
	SHA256 string     `json:"sha256"`
	Sig    string     `json:"sig"`
	Round  int        `json:"round"` // completed rounds (next round index)
	Iters  int        `json:"iters"` // cumulative simplex pivots
	Cuts   []cutEntry `json:"cuts"`
	Basis  []int      `json:"basis"`
	Cursor int        `json:"cursor"` // partial-pricing rotation state
	// AtUpper lists the nonbasic columns sitting at their upper bounds; with
	// the bounded simplex a basis alone no longer determines the vertex.
	AtUpper []int `json:"atUpper,omitempty"`
}

// seal computes the integrity hash over the checkpoint's canonical encoding
// (SHA256 field empty) and returns the sealed bytes ready to write.
// verify re-derives the same encoding from a parsed checkpoint; JSON
// numbers round-trip exactly (Go emits the shortest representation that
// parses back to the same value), so writer and reader hash identical
// bytes whenever the semantic content is identical.
func (ck *checkpoint) seal() ([]byte, error) {
	ck.SHA256 = ""
	body, err := json.Marshal(ck)
	if err != nil {
		return nil, err
	}
	ck.SHA256 = store.HashBytes(body)
	return json.Marshal(ck)
}

// verify checks a parsed checkpoint's integrity hash.
func (ck *checkpoint) verify() bool {
	want := ck.SHA256
	if want == "" {
		return false
	}
	ck.SHA256 = ""
	body, err := json.Marshal(ck)
	ck.SHA256 = want
	return err == nil && store.HashBytes(body) == want
}

// sig fingerprints everything that shapes the cut loop's trajectory except
// its budgets (budgets may legitimately differ between the killed run and
// the resuming one). The 2D torus keeps its historical "k=%d" form so
// pre-refactor checkpoints still resume; other families identify themselves
// by their canonical topology string.
func (p *FlowLP) sig() string {
	loc := ""
	if p.hasH {
		loc = fmt.Sprintf(" loc=%g", p.locNorm)
	}
	id := "topo=" + topo.String(p.T)
	if tt, ok := p.T.(*topo.Torus); ok {
		id = fmt.Sprintf("k=%d", tt.K)
	}
	return fmt.Sprintf("%s %s fold=%d cuts=%d stage=%d tol=%g%s",
		checkpointVersion, id, p.fold, p.opts.Cuts, p.ckptStage, p.opts.tol(), loc)
}

// writeCheckpoint snapshots the loop after `round` completed rounds. The
// RefreshFactors barrier before capturing the basis is what makes the live
// continuation and a later restore numerically identical. Logs with
// non-serializable entries (average-case matrix cuts) are skipped.
func (p *FlowLP) writeCheckpoint(round, iters int) error {
	if p.opts.Checkpoint == "" || !p.serializable() {
		return nil
	}
	if err := p.solver.RefreshFactors(); err != nil {
		return fmt.Errorf("design: checkpoint barrier: %w", err)
	}
	ck := checkpoint{
		Sig:     p.sig(),
		Round:   round,
		Iters:   iters,
		Cuts:    p.cutLog,
		Basis:   p.solver.Basis(),
		Cursor:  p.solver.PricingCursor(),
		AtUpper: p.solver.AtUpperSet(),
	}
	if ck.Cuts == nil {
		ck.Cuts = []cutEntry{}
	}
	data, err := ck.seal()
	if err != nil {
		return fmt.Errorf("design: checkpoint encode: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(p.opts.Checkpoint), 0o755); err != nil {
		return fmt.Errorf("design: checkpoint dir: %w", err)
	}
	// Temp + fsync + rename + directory sync: a crash mid-write leaves the
	// previous checkpoint intact, never a torn file.
	if err := store.WriteFileAtomic(p.opts.Checkpoint, data, 0o644); err != nil {
		return fmt.Errorf("design: checkpoint write: %w", err)
	}
	return nil
}

// restoreCheckpoint loads and installs a matching checkpoint, returning the
// round to resume from and the pivots already spent. ok is false — and the
// loop starts from scratch — when no usable checkpoint exists (missing or
// unreadable file, failed integrity hash, signature mismatch, corrupt
// basis). A restore that
// fails midway rolls the solver back to its fresh pre-restore state.
func (p *FlowLP) restoreCheckpoint() (round, iters int, ok bool) {
	if p.opts.Checkpoint == "" {
		return 0, 0, false
	}
	data, err := os.ReadFile(p.opts.Checkpoint)
	if err != nil {
		return 0, 0, false
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil || !ck.verify() || ck.Sig != p.sig() {
		return 0, 0, false
	}
	for _, e := range ck.Cuts {
		if e.Kind == cutMatrix || (e.Kind == cutPair && (e.Block < 0 || e.Block >= len(p.blocks))) {
			return 0, 0, false
		}
	}
	savedLog := p.cutLog
	p.cutLog = ck.Cuts
	p.rebuildSolver()
	// The at-upper set must be in place before InstallBasis: the basic
	// values it recomputes depend on which nonbasic columns sit at bounds.
	if err := p.solver.SetAtUpperSet(ck.AtUpper); err != nil {
		p.cutLog = savedLog
		p.rebuildSolver()
		return 0, 0, false
	}
	if err := p.solver.InstallBasis(ck.Basis); err != nil {
		p.cutLog = savedLog
		p.rebuildSolver()
		return 0, 0, false
	}
	p.solver.SetPricingCursor(ck.Cursor)
	return ck.Round, ck.Iters, true
}

// stripLoc removes the locality component from a checkpoint signature.
// Permutation and lazy pair cuts bound channel loads independently of the
// H_avg budget (the Pareto sweep reuses one LP across targets on exactly
// this property), so a warm start may accept a snapshot whose run differed
// only in its locality target.
func stripLoc(sig string) string {
	if i := strings.Index(sig, " loc="); i >= 0 {
		return sig[:i]
	}
	return sig
}

// writeFinalSnapshot persists the cut loop's state at certification to
// Options.FinalSnapshot for a later run to warm-start from. Same layout and
// integrity seal as a checkpoint; Round/Iters record the certified run's
// totals (informational — a warm start restarts the round count at zero).
func (p *FlowLP) writeFinalSnapshot(round, iters int) error {
	if p.opts.FinalSnapshot == "" || !p.serializable() {
		return nil
	}
	if err := p.solver.RefreshFactors(); err != nil {
		return fmt.Errorf("design: final-snapshot barrier: %w", err)
	}
	ck := checkpoint{
		Sig:     p.sig(),
		Round:   round,
		Iters:   iters,
		Cuts:    p.cutLog,
		Basis:   p.solver.Basis(),
		Cursor:  p.solver.PricingCursor(),
		AtUpper: p.solver.AtUpperSet(),
	}
	if ck.Cuts == nil {
		ck.Cuts = []cutEntry{}
	}
	data, err := ck.seal()
	if err != nil {
		return fmt.Errorf("design: final-snapshot encode: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(p.opts.FinalSnapshot), 0o755); err != nil {
		return fmt.Errorf("design: final-snapshot dir: %w", err)
	}
	if err := store.WriteFileAtomic(p.opts.FinalSnapshot, data, 0o644); err != nil {
		return fmt.Errorf("design: final-snapshot write: %w", err)
	}
	return nil
}

// restoreWarmStart installs the Options.WarmFrom snapshot into a fresh cut
// loop: replay the prior run's cuts, install its basis, at-upper set, and
// pricing cursor, then re-aim the locality row (if any) at this run's
// target — the recorded locality retargets are replayed as-is and the fresh
// retarget, appended through the cut log, overwrites them exactly as a
// Pareto sweep's SetLocality does. The signature must match up to the
// locality component; anything unusable (torn file, failed integrity hash,
// foreign formulation, corrupt basis) means a cold start, never a wrong
// warm one. ok is informational; callers may ignore it.
func (p *FlowLP) restoreWarmStart() (ok bool) {
	if p.opts.WarmFrom == "" {
		return false
	}
	data, err := os.ReadFile(p.opts.WarmFrom)
	if err != nil {
		return false
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil || !ck.verify() {
		return false
	}
	if stripLoc(ck.Sig) != stripLoc(p.sig()) {
		return false
	}
	for _, e := range ck.Cuts {
		if e.Kind == cutMatrix || (e.Kind == cutPair && (e.Block < 0 || e.Block >= len(p.blocks))) {
			return false
		}
	}
	savedLog := p.cutLog
	p.cutLog = append([]cutEntry(nil), ck.Cuts...)
	p.rebuildSolver()
	if err := p.solver.SetAtUpperSet(ck.AtUpper); err != nil {
		p.cutLog = savedLog
		p.rebuildSolver()
		return false
	}
	if err := p.solver.InstallBasis(ck.Basis); err != nil {
		p.cutLog = savedLog
		p.rebuildSolver()
		return false
	}
	p.solver.SetPricingCursor(ck.Cursor)
	if p.hasH {
		p.record(cutEntry{Kind: cutLoc, Val: p.locNorm})
	}
	return true
}

// clearCheckpoint removes the checkpoint after a certified finish, so a
// later run with the same path starts clean.
func (p *FlowLP) clearCheckpoint() error {
	if p.opts.Checkpoint == "" {
		return nil
	}
	if err := os.Remove(p.opts.Checkpoint); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("design: checkpoint remove: %w", err)
	}
	return nil
}
