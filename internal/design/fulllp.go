package design

import (
	"fmt"

	"tcr/internal/lp"
	"tcr/internal/topo"
)

// FullWorstCaseLP solves the pre-dualization worst-case formulation (16)
// with every permutation constraint written out explicitly:
//
//	min w  s.t. flow constraints and  gamma_c(R, pi)/b_c <= w
//	            for all channels c and all N! permutations pi.
//
// The paper notes this LP is impractical because of the exponential
// constraint count and derives the polynomial dual (8); here it serves as a
// ground-truth cross-check for the constraint-generation solver on tiny
// networks. It refuses networks with more than 6 nodes (720 permutations x
// C channels is the sensible ceiling).
func FullWorstCaseLP(t topo.Topology, opts Options) (*Result, error) {
	if t.Nodes() > 6 {
		return nil, fmt.Errorf("design: full worst-case LP limited to N <= 6, got %d", t.Nodes())
	}
	opts.Fold = FoldTranslation
	p := newBareFlowLP(t, opts)

	m := lp.NewModel()
	for range p.comms {
		for c := 0; c < p.nc; c++ {
			m.AddVar(0, "")
		}
	}
	p.wVar = m.AddVar(1, "w")
	p.addConservation(m, false)

	// Every permutation, every channel.
	perm := make([]int, p.n)
	for i := range perm {
		perm[i] = i
	}
	var emit func(k int)
	emit = func(k int) {
		if k == p.n {
			for c := 0; c < p.nc; c++ {
				terms := make([]lp.Term, 0, p.n+1)
				for s, d := range perm {
					if s == d {
						continue
					}
					if v := p.pairLoadVar(s, d, topo.Channel(c)); v >= 0 {
						terms = append(terms, lp.Term{Var: v, Coef: 1})
					}
				}
				terms = append(terms, lp.Term{Var: p.wVar, Coef: -1})
				m.AddRow(terms, lp.LE, 0, "")
			}
			return
		}
		for i := k; i < p.n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			emit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	emit(0)

	// SolveModel presolves first: the permutation rows all involve w, so
	// little is removable, but dominated flow columns (channels no
	// commodity can usefully cross) and the scaling pass come for free.
	sol, err := lp.SolveModel(m)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("design: full LP status %v", sol.Status)
	}
	flow := p.unfold(sol.X)
	gw, _ := flow.WorstCase()
	return &Result{
		Flow:       flow,
		Objective:  sol.Objective,
		GammaWC:    gw,
		HAvg:       flow.HAvg(),
		HNorm:      flow.HNorm(),
		Rounds:     1,
		Iterations: sol.Iterations,
	}, nil
}
