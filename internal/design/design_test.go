package design

import (
	"math"
	"testing"

	"tcr/internal/eval"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

func TestWorstCaseOptimalK4(t *testing.T) {
	tor := topo.NewTorus(4)
	res, err := WorstCaseOptimal(tor, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The optimal worst-case load on a torus is twice the uniform-optimal
	// load (half of capacity): k/8 * 2 = 1.0 for k=4. VAL achieves it.
	if math.Abs(res.GammaWC-1.0) > 1e-5 {
		t.Fatalf("optimal gamma_wc = %v, want 1.0", res.GammaWC)
	}
	frac := (1 / res.GammaWC) / eval.NetworkCapacity(tor)
	if math.Abs(frac-0.5) > 1e-5 {
		t.Fatalf("optimal worst-case fraction = %v, want 0.5", frac)
	}
	// The LP bound and the exact evaluation must agree at convergence.
	if res.GammaWC < res.Objective-1e-6 {
		t.Fatalf("oracle load %v below LP objective %v", res.GammaWC, res.Objective)
	}
	if res.Flow.ConservationError() > 1e-6 {
		t.Fatalf("conservation error %v", res.Flow.ConservationError())
	}
}

func TestFoldingsAgree(t *testing.T) {
	// The translation-only folding quadruples the commodity count and, at
	// non-binding locality budgets, leaves a huge optimal face that this
	// simplex crosses slowly; the cross-check therefore sticks to the
	// binding-budget cases that run in seconds (k=4 at L=1.0/1.4 plus the
	// odd radix k=3 across the range). Octant-vs-explicit ground truth at
	// k=2 lives in TestFullLPMatchesCuttingPlanes.
	cases := []struct {
		k  int
		hs []float64
	}{
		{3, []float64{1.0, 1.4, 2.0}},
		{4, []float64{1.0, 1.4}},
	}
	for _, c := range cases {
		if testing.Short() && c.k > 3 {
			continue
		}
		tor := topo.NewTorus(c.k)
		for _, h := range c.hs {
			a, err := WorstCaseAtLocality(tor, h, Options{Fold: FoldOctant})
			if err != nil {
				t.Fatalf("k=%d h=%v octant: %v", c.k, h, err)
			}
			b, err := WorstCaseAtLocality(tor, h, Options{Fold: FoldTranslation})
			if err != nil {
				t.Fatalf("k=%d h=%v translation: %v", c.k, h, err)
			}
			if math.Abs(a.GammaWC-b.GammaWC) > 1e-5 {
				t.Fatalf("k=%d h=%v: octant gamma %v vs translation %v",
					c.k, h, a.GammaWC, b.GammaWC)
			}
		}
	}
}

func TestFullLPMatchesCuttingPlanes(t *testing.T) {
	tor := topo.NewTorus(2)
	full, err := FullWorstCaseLP(tor, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := WorstCaseOptimal(tor, Options{Fold: FoldTranslation})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Objective-cut.Objective) > 1e-6 {
		t.Fatalf("full LP %v vs cutting planes %v", full.Objective, cut.Objective)
	}
	if math.Abs(full.GammaWC-cut.GammaWC) > 1e-6 {
		t.Fatalf("full gamma %v vs cutting gamma %v", full.GammaWC, cut.GammaWC)
	}
}

func TestParetoCurveShape(t *testing.T) {
	tor := topo.NewTorus(4)
	hs := []float64{1.0, 1.25, 1.5, 1.75, 2.0}
	pts, err := WorstCaseParetoCurve(tor, hs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Theta < pts[i-1].Theta-1e-6 {
			t.Fatalf("Pareto curve not monotone: %v then %v", pts[i-1], pts[i])
		}
	}
	// The right end reaches the worst-case optimum (0.5 of capacity).
	if math.Abs(pts[len(pts)-1].Theta-0.5) > 1e-5 {
		t.Fatalf("curve endpoint %v, want 0.5", pts[len(pts)-1].Theta)
	}
	// At minimal locality the optimum equals DOR's worst case (DOR is
	// worst-case optimal among minimal algorithms, Section 5.1).
	dor := eval.FromAlgorithm(tor, routing.DOR{})
	dorFrac := dor.WorstCaseThroughput() / eval.NetworkCapacity(tor)
	if pts[0].Theta < dorFrac-1e-6 {
		t.Fatalf("minimal-locality optimum %v below DOR %v", pts[0].Theta, dorFrac)
	}
}

func TestMinLocalityAtWorstCase(t *testing.T) {
	tor := topo.NewTorus(4)
	res, err := MinLocalityAtWorstCase(tor, Options{Slack: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GammaWC-1.0) > 1e-4 {
		t.Fatalf("gamma_wc = %v, want 1.0", res.GammaWC)
	}
	// Locality must be at least minimal and at most VAL's 2x.
	if res.HNorm < 1-1e-9 || res.HNorm > 2+1e-9 {
		t.Fatalf("HNorm = %v out of range", res.HNorm)
	}
	// IVAL is a feasible point, so the optimum is at least as local.
	ival := eval.FromAlgorithm(tor, routing.IVAL{})
	if res.HNorm > ival.HNorm()+1e-6 {
		t.Fatalf("optimal HNorm %v worse than IVAL %v", res.HNorm, ival.HNorm())
	}
}

func TestDesignTwoTurnK4MatchesOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("two-stage 2TURN path LP takes ~35s; skipped in -short (the race gate)")
	}
	// Section 5.2 / Figure 4: for k = 4 (and 6), 2TURN exactly matches the
	// optimal locality at maximal worst-case throughput.
	tor := topo.NewTorus(4)
	opt, err := MinLocalityAtWorstCase(tor, Options{Slack: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	tt, err := DesignTwoTurn(tor, Options{Slack: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt.GammaWC-1.0) > 1e-4 {
		t.Fatalf("2TURN gamma_wc = %v, want 1.0", tt.GammaWC)
	}
	if math.Abs(tt.HNorm-opt.HNorm) > 1e-4 {
		t.Fatalf("2TURN HNorm %v vs optimal %v", tt.HNorm, opt.HNorm)
	}
	// The produced table must be a valid routing function.
	f := eval.FromAlgorithm(tor, tt.Table)
	if e := f.ConservationError(); e > 1e-6 {
		t.Fatalf("2TURN table conservation error %v", e)
	}
	gw, _ := f.WorstCase()
	if math.Abs(gw-tt.GammaWC) > 1e-6 {
		t.Fatalf("table worst case %v vs reported %v", gw, tt.GammaWC)
	}
}

func TestDecomposeFlowRoundTrip(t *testing.T) {
	tor := topo.NewTorus(4)
	res, err := WorstCaseOptimal(tor, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := DecomposeFlow(res.Flow, "wc-opt")
	if err != nil {
		t.Fatal(err)
	}
	f := eval.FromAlgorithm(tor, tbl)
	// Path recovery may only shed load (residual cycles are dropped).
	gw, _ := f.WorstCase()
	if gw > res.GammaWC+1e-6 {
		t.Fatalf("decomposed worst case %v exceeds flow's %v", gw, res.GammaWC)
	}
	if f.HAvg() > res.HAvg+1e-6 {
		t.Fatalf("decomposed H %v exceeds flow's %v", f.HAvg(), res.HAvg)
	}
	if e := f.ConservationError(); e > 1e-6 {
		t.Fatalf("decomposed table conservation error %v", e)
	}
}

func TestAvgCaseOptimalBeatsClosedForms(t *testing.T) {
	tor := topo.NewTorus(4)
	samples := traffic.Sample(tor.N, 12, 17)
	res, err := AvgCaseOptimal(tor, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []routing.Algorithm{routing.DOR{}, routing.VAL{}, routing.IVAL{}} {
		f := eval.FromAlgorithm(tor, alg)
		if got := f.AvgCase(samples).MeanMaxLoad; got < res.Objective-1e-6 {
			t.Fatalf("%s mean max load %v beats 'optimal' %v", alg.Name(), got, res.Objective)
		}
	}
}

func TestAvgCaseLocalityConstraintBinds(t *testing.T) {
	tor := topo.NewTorus(4)
	samples := traffic.Sample(tor.N, 8, 23)
	free, err := AvgCaseOptimal(tor, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	atMin, err := AvgCaseAtLocality(tor, samples, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if atMin.Objective < free.Objective-1e-7 {
		t.Fatalf("constrained optimum %v beats free optimum %v", atMin.Objective, free.Objective)
	}
	if math.Abs(atMin.HNorm-1.0) > 1e-6 {
		t.Fatalf("locality constraint not binding: HNorm %v", atMin.HNorm)
	}
}

func TestDesignTwoTurnAvg(t *testing.T) {
	if testing.Short() {
		t.Skip("2TURNA + 2TURN path LPs take ~34s; skipped in -short (the race gate)")
	}
	tor := topo.NewTorus(4)
	samples := traffic.Sample(tor.N, 8, 31)
	res, err := DesignTwoTurnAvg(tor, samples, Options{Slack: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// 2TURNA's sampled mean max load can be no worse than 2TURN's (same
	// path space, avg-specific objective).
	tt, err := DesignTwoTurn(tor, Options{Slack: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	ttAvg := tt.Flow.AvgCase(samples).MeanMaxLoad
	if res.Objective > ttAvg+1e-6 {
		t.Fatalf("2TURNA mean load %v worse than 2TURN's %v", res.Objective, ttAvg)
	}
	f := eval.FromAlgorithm(tor, res.Table)
	if e := f.ConservationError(); e > 1e-6 {
		t.Fatalf("2TURNA conservation error %v", e)
	}
}

func TestMinimalAvgMatchesROMMBallpark(t *testing.T) {
	// Section 5.4: optimizing the average case over minimal two-turn paths
	// produces ROMM-like performance.
	tor := topo.NewTorus(4)
	samples := traffic.Sample(tor.N, 8, 41)
	res, err := DesignMinimalAvg(tor, samples, Options{Slack: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.HNorm-1.0) > 1e-6 {
		t.Fatalf("minimal design is not minimal: HNorm %v", res.HNorm)
	}
	romm := eval.FromAlgorithm(tor, routing.ROMM{}).AvgCase(samples).MeanMaxLoad
	if res.Objective > romm+1e-6 {
		t.Fatalf("minimal-optimal mean load %v worse than ROMM %v", res.Objective, romm)
	}
	// "Matches" means within a modest factor, not orders apart.
	if romm > res.Objective*1.35 {
		t.Fatalf("ROMM %v far from minimal-optimal %v", romm, res.Objective)
	}
}
