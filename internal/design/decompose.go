package design

import (
	"fmt"
	"math"

	"tcr/internal/eval"
	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
)

// DecomposeFlow recovers an explicit path-probability routing table from a
// per-commodity channel-flow table (Section 4: "given the flow variables
// from a solution of the reformulated problem, paths can easily be
// recovered"). For each flow row — a relative destination on
// vertex-transitive topologies, an ordered pair otherwise — it repeatedly
// walks positive-flow channels from the row's source, cancelling any cycles
// encountered and extracting source-to-destination paths at the bottleneck
// flow value, until the unit of source flow is fully decomposed. Residual
// flow cycles disconnected from the source (possible in degenerate LP
// solutions) are dropped, which can only shed channel load.
func DecomposeFlow(f *eval.Flow, label string) (*routing.Table, error) {
	t := f.T
	n := t.Nodes()
	if t.VertexTransitive() {
		dist := make(map[topo.Node][]paths.Weighted, n-1)
		for rel := 1; rel < n; rel++ {
			ws, err := decomposeRow(t, f.X[rel], 0, topo.Node(rel))
			if err != nil {
				return nil, err
			}
			dist[topo.Node(rel)] = ws
		}
		return &routing.Table{Label: label, Dist: dist}, nil
	}
	dist := make(map[topo.Node][]paths.Weighted, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			ws, err := decomposeRow(t, f.X[s*n+d], topo.Node(s), topo.Node(d))
			if err != nil {
				return nil, err
			}
			dist[topo.Node(s*n+d)] = ws
		}
	}
	return &routing.Table{Label: label, Dist: dist}, nil
}

// decomposeRow extracts one row's path distribution from its channel flows.
func decomposeRow(t topo.Topology, flow []float64, src, dst topo.Node) ([]paths.Weighted, error) {
	const tol = 1e-9
	x := make([]float64, t.Chans())
	copy(x, flow)
	var ws []paths.Weighted
	extracted := 0.0
	for iter := 0; extracted < 1-decompCoverTol; iter++ {
		if iter > 16*t.Chans() {
			return nil, fmt.Errorf("design: decomposition stuck for destination %d (extracted %v)", dst, extracted)
		}
		p, amount, isCycle := walk(t, x, src, dst, tol)
		if p == nil {
			return nil, fmt.Errorf("design: no flow left for destination %d at %v extracted", dst, extracted)
		}
		for _, c := range p.Channels(t) {
			x[c] -= amount
			if x[c] < 0 {
				x[c] = 0
			}
		}
		if isCycle {
			continue
		}
		ws = append(ws, paths.Weighted{Path: *p, Prob: amount})
		extracted += amount
	}
	// Renormalize away the numeric shortfall.
	for i := range ws {
		ws[i].Prob /= extracted
	}
	return ws, nil
}

// walk follows maximum-flow outgoing channels from src until it reaches dst
// (returning the path and its bottleneck) or revisits a node (returning the
// cycle found, flagged isCycle). Returns nil when the source has no outgoing
// flow above tol.
func walk(t topo.Topology, x []float64, src, dst topo.Node, tol float64) (p *paths.Path, amount float64, isCycle bool) {
	type visit struct{ at int } // index into dirs where node was first seen
	cur := src
	var dirs []topo.Dir
	seen := map[topo.Node]visit{cur: {0}}
	bottleneck := math.Inf(1)
	for {
		// Largest-flow outgoing channel of cur.
		best, bestFlow := -1, tol
		for pt := 0; pt < t.OutDeg(cur); pt++ {
			if fl := x[t.PortChan(cur, pt)]; fl > bestFlow {
				best, bestFlow = pt, fl
			}
		}
		if best < 0 {
			if len(dirs) == 0 {
				return nil, 0, false
			}
			// Dead end before the destination: numerically broken flow.
			return nil, 0, false
		}
		if bestFlow < bottleneck {
			bottleneck = bestFlow
		}
		dirs = append(dirs, topo.Dir(best))
		cur = t.ChanDst(t.PortChan(cur, best))
		if cur == dst {
			return &paths.Path{Src: src, Dirs: dirs}, bottleneck, false
		}
		if v, ok := seen[cur]; ok {
			// Cycle: return just the looping segment, with its own
			// bottleneck.
			cyc := dirs[v.at:]
			cb := math.Inf(1)
			n := cur
			for _, d := range cyc {
				ch := t.PortChan(n, int(d))
				if fl := x[ch]; fl < cb {
					cb = fl
				}
				n = t.ChanDst(ch)
			}
			start := src
			for _, d := range dirs[:v.at] {
				start = t.ChanDst(t.PortChan(start, int(d)))
			}
			return &paths.Path{Src: start, Dirs: cyc}, cb, true
		}
		seen[cur] = visit{len(dirs)}
	}
}
