package design

import (
	"fmt"
	"math"

	"tcr/internal/eval"
	"tcr/internal/paths"
	"tcr/internal/routing"
	"tcr/internal/topo"
)

// DecomposeFlow recovers an explicit path-probability routing table from a
// per-commodity channel-flow table (Section 4: "given the flow variables
// from a solution of the reformulated problem, paths can easily be
// recovered"). For each relative destination it repeatedly walks
// positive-flow channels from the source, cancelling any cycles encountered
// and extracting source-to-destination paths at the bottleneck flow value,
// until the unit of source flow is fully decomposed. Residual flow cycles
// disconnected from the source (possible in degenerate LP solutions) are
// dropped, which can only shed channel load.
func DecomposeFlow(f *eval.Flow, label string) (*routing.Table, error) {
	t := f.T
	const tol = 1e-9
	dist := make(map[topo.Node][]paths.Weighted, t.N-1)
	for rel := 1; rel < t.N; rel++ {
		x := make([]float64, t.C)
		copy(x, f.X[rel])
		var ws []paths.Weighted
		extracted := 0.0
		for iter := 0; extracted < 1-decompCoverTol; iter++ {
			if iter > 16*t.C {
				return nil, fmt.Errorf("design: decomposition stuck for destination %d (extracted %v)", rel, extracted)
			}
			p, amount, isCycle := walk(t, x, topo.Node(rel), tol)
			if p == nil {
				return nil, fmt.Errorf("design: no flow left for destination %d at %v extracted", rel, extracted)
			}
			for _, c := range p.Channels(t) {
				x[c] -= amount
				if x[c] < 0 {
					x[c] = 0
				}
			}
			if isCycle {
				continue
			}
			ws = append(ws, paths.Weighted{Path: *p, Prob: amount})
			extracted += amount
		}
		// Renormalize away the numeric shortfall.
		for i := range ws {
			ws[i].Prob /= extracted
		}
		dist[topo.Node(rel)] = ws
	}
	return &routing.Table{Label: label, Dist: dist}, nil
}

// walk follows maximum-flow outgoing channels from the source until it
// reaches dst (returning the path and its bottleneck) or revisits a node
// (returning the cycle found, flagged isCycle). Returns nil when the source
// has no outgoing flow above tol.
func walk(t *topo.Torus, x []float64, dst topo.Node, tol float64) (p *paths.Path, amount float64, isCycle bool) {
	type visit struct{ at int } // index into dirs where node was first seen
	cur := topo.Node(0)
	var dirs []topo.Dir
	seen := map[topo.Node]visit{cur: {0}}
	bottleneck := math.Inf(1)
	for {
		// Largest-flow outgoing channel of cur.
		best, bestFlow := topo.Dir(-1), tol
		for d := topo.Dir(0); d < topo.NumDirs; d++ {
			if fl := x[t.Chan(cur, d)]; fl > bestFlow {
				best, bestFlow = d, fl
			}
		}
		if best < 0 {
			if len(dirs) == 0 {
				return nil, 0, false
			}
			// Dead end before the destination: numerically broken flow.
			return nil, 0, false
		}
		if bestFlow < bottleneck {
			bottleneck = bestFlow
		}
		dirs = append(dirs, best)
		cur = t.Neighbor(cur, best)
		if cur == dst {
			return &paths.Path{Src: 0, Dirs: dirs}, bottleneck, false
		}
		if v, ok := seen[cur]; ok {
			// Cycle: return just the looping segment, with its own
			// bottleneck.
			cyc := dirs[v.at:]
			cb := math.Inf(1)
			n := cur
			for _, d := range cyc {
				if fl := x[t.Chan(n, d)]; fl < cb {
					cb = fl
				}
				n = t.Neighbor(n, d)
			}
			start := topo.Node(0)
			for _, d := range dirs[:v.at] {
				start = t.Neighbor(start, d)
			}
			return &paths.Path{Src: start, Dirs: cyc}, cb, true
		}
		seen[cur] = visit{len(dirs)}
	}
}
