package design

import (
	"fmt"

	"tcr/internal/lp"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// Capacity solves equation (6): minimize the maximum channel load under
// uniform traffic. On the torus the optimum is known in closed form (the
// congestion bound gamma_max = MeanMinDist/4, attained by balanced minimal
// routing), so this LP mainly serves as an end-to-end check of the flow
// machinery and as the capacity normalizer for arbitrary experiments.
// Per-channel constraints are generated lazily, exactly like the
// average-case problem with the single uniform "sample".
func Capacity(t topo.Topology, opts Options) (*Result, error) {
	p := NewFlowLP(t, false, opts)
	u := traffic.Uniform(t.Nodes())
	tol := opts.tol()
	res := &Result{}
	for round := 0; round < opts.rounds(); round++ {
		sol, err := p.solver.Solve()
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("design: capacity LP status %v", sol.Status)
		}
		res.Rounds = round + 1
		res.Iterations += sol.Iterations
		flow := p.unfold(sol.X)
		loads := flow.ChannelLoads(u)
		worstC, worst := 0, 0.0
		for c, l := range loads {
			if l > worst {
				worst, worstC = l, c
			}
		}
		if worst <= sol.X[p.wVar]+tol {
			res.Flow = flow
			res.Objective = sol.Objective
			res.GammaWC, _ = flow.WorstCase()
			res.HAvg = flow.HAvg()
			res.HNorm = flow.HNorm()
			return res, nil
		}
		p.matrixCut(topo.Channel(worstC), u, p.wVar)
	}
	return nil, fmt.Errorf("design: capacity LP did not converge in %d rounds", opts.rounds())
}

// NetworkCapacityLP returns the LP-computed network capacity (throughput
// under uniform traffic at the optimal routing), which must agree with the
// closed-form eval.NetworkCapacity on tori.
func NetworkCapacityLP(t topo.Topology, opts Options) (float64, error) {
	res, err := Capacity(t, opts)
	if err != nil {
		return 0, err
	}
	return 1 / res.Objective, nil
}
