package design

// Golden design fingerprints: the k=4 and k=6 2D-torus worst-case designs
// (WorstCaseOptimal and WorstCaseAtLocality) are pinned BIT FOR BIT — a
// SHA-256 over the exact float64 bit patterns of the objective and the full
// flow solution. These runs are the paper's Figure 1 backbone and the
// compatibility contract for checkpoints and the artifact store: any solver
// change that moves even the last mantissa bit of these trajectories must be
// deliberate (and re-pin the hashes alongside a checkpoint-version bump).
//
// The lexicographic design (MinLocalityAtWorstCase) is checked semantically,
// not bitwise: its stage-2 cap on w is a variable bound, so legitimate
// simplex-path changes (e.g. the bounded-simplex ratio test) may move its
// trajectory while landing on the same optimum.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"tcr/internal/topo"
)

// goldenHash fingerprints a flow solution: SHA-256 (first 16 hex digits)
// over the little-endian bit patterns of obj then every flow value, in order.
func goldenHash(x [][]float64, obj float64) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(obj))
	h.Write(buf[:])
	for _, row := range x {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func TestGoldenDesignFingerprints(t *testing.T) {
	if !goldenEngineDefault {
		t.Skip("fingerprints pin the eta engine's bit trajectory; lpdense swaps the default engine")
	}
	// Captured with Options{Workers: 1} (the deterministic serial schedule).
	cases := []struct {
		k      int
		wcopt  string // WorstCaseOptimal hash over (Objective, Flow.X)
		wcloc  string // WorstCaseAtLocality(1.5) hash
		lexH   uint64 // MinLocalityAtWorstCase HNorm bits (semantic check)
		gammaW uint64 // WorstCaseOptimal GammaWC bits
	}{
		{4, "8ec5429cf61dc440", "1c774079b6d55707", 0x3ff59997a8f783ec, 0x3ff00000000005dd},
		{6, "e8c661bfca6d3bf1", "f5386352fba17ba1", 0x3ff71198f4769b48, 0x3ff80000000ce6a5},
	}
	for _, tc := range cases {
		if tc.k == 6 && testing.Short() {
			continue
		}
		tor := topo.NewTorus(tc.k)
		opts := Options{Workers: 1}

		res, err := WorstCaseOptimal(tor, opts)
		if err != nil {
			t.Fatalf("k=%d wcopt: %v", tc.k, err)
		}
		if got := goldenHash(res.Flow.X, res.Objective); got != tc.wcopt {
			t.Errorf("k=%d WorstCaseOptimal fingerprint %s, pinned %s (gamma bits %x)",
				tc.k, got, tc.wcopt, math.Float64bits(res.GammaWC))
		}
		if got := math.Float64bits(res.GammaWC); got != tc.gammaW {
			t.Errorf("k=%d WorstCaseOptimal gamma bits %x, pinned %x", tc.k, got, tc.gammaW)
		}

		res2, err := WorstCaseAtLocality(tor, 1.5, opts)
		if err != nil {
			t.Fatalf("k=%d wcloc: %v", tc.k, err)
		}
		if got := goldenHash(res2.Flow.X, res2.Objective); got != tc.wcloc {
			t.Errorf("k=%d WorstCaseAtLocality fingerprint %s, pinned %s", tc.k, got, tc.wcloc)
		}

		res3, err := MinLocalityAtWorstCase(tor, opts)
		if err != nil {
			t.Fatalf("k=%d lex: %v", tc.k, err)
		}
		wantH := math.Float64frombits(tc.lexH)
		if d := math.Abs(res3.HNorm - wantH); d > 1e-6*wantH {
			t.Errorf("k=%d MinLocalityAtWorstCase HNorm=%v, want ~%v (diff %v)",
				tc.k, res3.HNorm, wantH, d)
		}
		// Lexicographic contract: stage 2 must hold the stage-1 worst case
		// (up to the cap's convergence-tolerance slack).
		if d := math.Abs(res3.GammaWC - res.GammaWC); d > 1e-4*res.GammaWC {
			t.Errorf("k=%d lex GammaWC=%v drifted from wcopt %v", tc.k, res3.GammaWC, res.GammaWC)
		}
	}
}
