package design

import (
	"tcr/internal/lp"
	"tcr/internal/topo"
)

// This file exports read-only views of a FlowLP's formulation so that LP-level
// benchmarks and equivalence tests (internal/lp's external test package) can
// rebuild the exact design LPs — base model plus adversarial permutation cuts
// — against solvers they configure themselves. The design loops proper keep
// using the unexported state directly.

// Model returns the base LP model (flow conservation plus the optional
// locality row). The model is solver-independent: callers may construct any
// number of lp.Solvers from it.
func (p *FlowLP) Model() *lp.Model { return p.model }

// WVar returns the max-channel-load variable the design objective minimizes.
func (p *FlowLP) WVar() lp.VarID { return p.wVar }

// LocalityRow returns the locality budget row and whether the LP was built
// with one.
func (p *FlowLP) LocalityRow() (lp.RowID, bool) { return p.hRow, p.hasH }

// PermCutTerms builds the terms of the load cut gamma_c(R, perm) <= bound
// for a permutation traffic pattern: the per-pair load variables on channel
// c plus the -bound term. The cut itself is terms <= 0.
func (p *FlowLP) PermCutTerms(c topo.Channel, perm []int, bound lp.VarID) []lp.Term {
	terms := make([]lp.Term, 0, p.n+1)
	for s, d := range perm {
		if v := p.pairLoadVar(s, d, c); v >= 0 {
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
	}
	return append(terms, lp.Term{Var: bound, Coef: -1})
}
