// Package serve implements the tcrd daemon: an HTTP/JSON front end over the
// design and evaluation engines, backed by the content-addressed artifact
// store (internal/store). Identical requests are computed once — concurrent
// duplicates coalesce onto a single in-flight solve, and completed results
// replay from the store forever. Admission to the solver pool is bounded;
// overload surfaces as 429 backpressure rather than unbounded queueing, and
// per-request deadlines propagate into the LP solver's budgets so a stuck
// solve returns 504 with diagnostics instead of wedging a worker.
//
// The compute functions in this file are the single producers of artifact
// payloads. The CLI's -json mode calls the same functions and encodes
// through the same store.Encode, which is what makes daemon responses and
// CLI output byte-for-byte diffable.
package serve

import (
	"context"
	"fmt"

	"tcr/internal/design"
	"tcr/internal/eval"
	"tcr/internal/routing"
	"tcr/internal/store"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// maxRadix bounds the tori the compute layer will instantiate: evaluation is
// O(k^6) (Hungarian over N = k^2 nodes) and design LPs grow faster still, so
// an oversized radix must fail validation rather than exhaust the process.
const maxRadix = 32

// maxNodes is the same guard for explicit-topology requests, matching the
// radix cap's node count (32^2).
const maxNodes = 1024

func checkRadix(k int) error {
	if k > maxRadix {
		return fmt.Errorf("radix %d out of range (max %d)", k, maxRadix)
	}
	return nil
}

// topoFor resolves a request's network: the legacy radix form (topology
// empty) instantiates a k-ary 2-cube, the explicit form parses the
// registered family. Both are size-capped so an oversized request fails
// validation rather than exhausting the process.
func topoFor(k int, topology string) (topo.Topology, error) {
	if topology == "" {
		if err := checkRadix(k); err != nil {
			return nil, err
		}
		return topo.NewTorus(k), nil
	}
	t, err := topo.Parse(topology)
	if err != nil {
		return nil, err
	}
	if t.Nodes() > maxNodes {
		return nil, fmt.Errorf("topology %s has %d nodes (max %d)", topo.String(t), t.Nodes(), maxNodes)
	}
	return t, nil
}

// evalNetwork resolves an eval request's network and algorithm. It is the
// admission check for the name-addressed closed-form path: the daemon runs
// it before accepting a request (so failures are 400s, not compute errors)
// and ComputeEval runs it again as its own precondition.
func evalNetwork(req store.EvalRequest) (topo.Topology, routing.Algorithm, error) {
	t, err := topoFor(req.K, req.Topology)
	if err != nil {
		return nil, nil, err
	}
	if _, isTorus := t.(*topo.Torus); !isTorus {
		// Table 1's closed-form algorithms are 2D-torus constructions;
		// other families are served by LP-designed tables (the design
		// kinds), not by name.
		return nil, nil, fmt.Errorf("algorithm %q is defined on torus2d only (got %s)", req.Alg, topo.String(t))
	}
	alg, ok := routing.ByName(req.Alg)
	if !ok {
		return nil, nil, fmt.Errorf("unknown algorithm %q", req.Alg)
	}
	return t, alg, nil
}

// ComputeEval evaluates the paper's metrics for a named closed-form
// algorithm, resolving flow tables through cache (which may be shared with
// other requests; nil evaluates fresh).
func ComputeEval(ctx context.Context, req store.EvalRequest, cache *eval.Cache, workers int) (*store.EvalArtifact, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	t, alg, err := evalNetwork(req)
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = eval.NewCacheLimit(1)
	}
	f, err := cache.Evaluate(ctx, t, alg, workers)
	if err != nil {
		return nil, err
	}
	netCap := eval.NetworkCapacity(t)
	gw, _, err := f.WorstCaseCtx(ctx, workers)
	if err != nil {
		return nil, err
	}
	art := &store.EvalArtifact{
		Schema:           store.SchemaVersion,
		Request:          req,
		NetworkCapacity:  netCap,
		HAvg:             f.HAvg(),
		HNorm:            f.HNorm(),
		Capacity:         f.Capacity(),
		CapacityFraction: f.Capacity() / netCap,
		GammaWC:          gw,
		WCFraction:       (1 / gw) / netCap,
	}
	if req.Samples > 0 {
		ac, err := f.AvgCaseCtx(ctx, traffic.Sample(t.Nodes(), req.Samples, req.Seed), workers)
		if err != nil {
			return nil, err
		}
		art.AvgFraction = ac.ApproxThroughput / netCap
	}
	return art, nil
}

// ComputeWorstPerm produces the worst-case certificate for a named
// algorithm: the exact adversarial load and a permutation achieving it.
func ComputeWorstPerm(ctx context.Context, req store.WorstPermRequest, cache *eval.Cache, workers int) (*store.WorstPermArtifact, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := checkRadix(req.K); err != nil {
		return nil, err
	}
	alg, ok := routing.ByName(req.Alg)
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q", req.Alg)
	}
	t := topo.NewTorus(req.K)
	if cache == nil {
		cache = eval.NewCacheLimit(1)
	}
	f, err := cache.Evaluate(ctx, t, alg, workers)
	if err != nil {
		return nil, err
	}
	gamma, perm, err := f.WorstCaseCtx(ctx, workers)
	if err != nil {
		return nil, err
	}
	return &store.WorstPermArtifact{
		Schema:     store.SchemaVersion,
		Request:    req,
		GammaWC:    gamma,
		WCFraction: (1 / gamma) / eval.NetworkCapacity(t),
		Perm:       perm,
	}, nil
}

// designOptions maps the request's formulation fields onto design.Options,
// preserving whatever budgets (MaxRounds, Workers, Checkpoint) the caller
// already set — budgets ride outside the fingerprint.
func designOptions(opts design.Options, fold, cuts int, tol, slack float64) design.Options {
	opts.Fold = design.Fold(fold)
	opts.Cuts = design.Cuts(cuts)
	opts.Tol = tol
	opts.Slack = slack
	return opts
}

// ComputeDesign runs the requested LP design. Budgets and the checkpoint
// path travel in opts (they are not part of the request fingerprint); the
// formulation comes from the request. An exhausted budget returns the
// degraded, uncertified artifact with a nil error — the caller decides
// whether to persist it (the daemon and CLI only persist certified results).
func ComputeDesign(ctx context.Context, req store.DesignRequest, opts design.Options) (*store.DesignArtifact, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	t, err := topoFor(req.K, req.Topology)
	if err != nil {
		return nil, err
	}
	opts = designOptions(opts, req.Fold, req.Cuts, req.Tol, req.Slack)
	var res *design.Result
	switch req.Kind {
	case store.DesignWorstCase:
		if req.HNorm > 0 {
			res, err = design.WorstCaseAtLocalityCtx(ctx, t, req.HNorm, opts)
		} else {
			res, err = design.WorstCaseOptimalCtx(ctx, t, opts)
		}
	case store.DesignMinLocality:
		res, err = design.MinLocalityAtWorstCaseCtx(ctx, t, opts)
	default:
		return nil, fmt.Errorf("unknown design kind %q", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &store.DesignArtifact{
		Schema:     store.SchemaVersion,
		Request:    req,
		Objective:  res.Objective,
		GammaWC:    res.GammaWC,
		HAvg:       res.HAvg,
		HNorm:      res.HNorm,
		Rounds:     res.Rounds,
		Iterations: res.Iterations,
		Certified:  res.Certified,
		Reason:     res.Reason,
		Flow:       res.Flow.X,
	}, nil
}

// ComputePareto sweeps the worst-case Pareto curve over the request's
// locality range. Sweeps cannot degrade point-wise, so an exhausted budget
// surfaces as an error (wrapping design.ErrUncertified) rather than a
// partial curve.
func ComputePareto(ctx context.Context, req store.ParetoRequest, opts design.Options) (*store.ParetoArtifact, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := checkRadix(req.K); err != nil {
		return nil, err
	}
	t := topo.NewTorus(req.K)
	opts = designOptions(opts, req.Fold, req.Cuts, req.Tol, 0)
	hNorms := make([]float64, req.Points)
	for i := range hNorms {
		if req.Points == 1 {
			hNorms[i] = req.HMin
		} else {
			hNorms[i] = req.HMin + (req.HMax-req.HMin)*float64(i)/float64(req.Points-1)
		}
	}
	pts, err := design.WorstCaseParetoCurveCtx(ctx, t, hNorms, opts)
	if err != nil {
		return nil, err
	}
	art := &store.ParetoArtifact{Schema: store.SchemaVersion, Request: req, Points: make([]store.ParetoPoint, len(pts))}
	for i, p := range pts {
		art.Points[i] = store.ParetoPoint{HNorm: p.HNorm, Theta: p.Theta, Gamma: p.Gamma}
	}
	return art, nil
}

// ArtifactFlow reconstructs an eval.Flow from a stored design artifact, so a
// replayed design can be decomposed into an executable routing table without
// re-solving the LP.
func ArtifactFlow(t topo.Topology, art *store.DesignArtifact) (*eval.Flow, error) {
	if len(art.Flow) != eval.Rows(t) {
		return nil, fmt.Errorf("artifact flow has %d rows, want %d (topology mismatch?)", len(art.Flow), eval.Rows(t))
	}
	f := eval.NewFlow(t)
	for rel, row := range art.Flow {
		if len(row) != t.Chans() {
			return nil, fmt.Errorf("artifact flow row %d has %d channels, want %d", rel, len(row), t.Chans())
		}
		copy(f.X[rel], row)
	}
	return f, nil
}
