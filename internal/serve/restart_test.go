package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tcr/internal/store"
)

// Daemon-restart resilience: the persisted job index must survive (or be
// quarantined after) a predecessor's crash, and the jobs map must stay
// bounded over a long daemon life.

// TestRestartQuarantinesTornJobsFile starts a daemon over every flavor of
// partially written jobs.json a crash can leave — truncated JSON, zero
// bytes, an unknown schema — and requires it to quarantine the file and
// serve, never crash-loop.
func TestRestartQuarantinesTornJobsFile(t *testing.T) {
	cases := []struct{ name, content string }{
		{"truncated", `{"schema":"tcrd-jobs-1","jobs":[{"id":"design-abc`},
		{"zero-byte", ""},
		{"foreign-schema", `{"schema":"tcrd-jobs-99","jobs":[]}`},
		{"not-json", "\x00\x01garbage"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "jobs.json"), []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			s, ts := newTestServer(t, Config{StoreDir: dir})
			if status, b := get(t, ts, "/healthz"); status != http.StatusOK || string(b) != "ok\n" {
				t.Fatalf("daemon over torn jobs.json unhealthy: %d %q", status, b)
			}
			if n := s.jobs.count(); n != 0 {
				t.Fatalf("torn index produced %d jobs", n)
			}
			if _, err := os.Stat(filepath.Join(dir, "jobs.json.quarantine")); err != nil {
				t.Fatalf("torn jobs.json not quarantined: %v", err)
			}
			// The daemon still runs jobs: a fresh submission round-trips.
			status, _, body := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt","async":true}`)
			if status != http.StatusAccepted {
				t.Fatalf("post-quarantine submit: status %d, body %s", status, body)
			}
		})
	}
}

// TestRestartRecoversInterruptedJobs hand-writes the index a dying daemon
// would leave — two jobs persisted as running — and requires the successor
// to resolve the one whose artifact committed as done and to fail the
// other with a resubmit hint, instead of presenting zombie running states.
func TestRestartRecoversInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reqDone := store.DesignRequest{K: 4, Kind: store.DesignWorstCase}
	fpDone, err := reqDone.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	art := store.DesignArtifact{Schema: store.SchemaVersion, Request: reqDone, Certified: true, GammaWC: 1}
	payload, err := store.Encode(art)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(store.KindDesign, fpDone, store.SchemaVersion, payload); err != nil {
		t.Fatal(err)
	}
	fpLost := store.HashBytes([]byte("never-committed"))
	index := fmt.Sprintf(
		`{"schema":"tcrd-jobs-1","jobs":[`+
			`{"id":%q,"kind":"design","fingerprint":%q,"state":"running"},`+
			`{"id":%q,"kind":"design","fingerprint":%q,"state":"running"}]}`,
		jobID(store.KindDesign, fpDone), fpDone,
		jobID(store.KindDesign, fpLost), fpLost)
	if err := os.WriteFile(filepath.Join(dir, "jobs.json"), []byte(index), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{StoreDir: dir})

	status, b := get(t, ts, "/v1/jobs/"+jobID(store.KindDesign, fpDone))
	var jw jobWire
	if status != http.StatusOK || json.Unmarshal(b, &jw) != nil || jw.State != jobDone {
		t.Fatalf("committed job not recovered as done: %d %s", status, b)
	}
	status, result := get(t, ts, "/v1/jobs/"+jobID(store.KindDesign, fpDone)+"/result")
	if status != http.StatusOK || string(result) != string(payload) {
		t.Fatalf("recovered job result mismatch: %d %q", status, result)
	}

	status, b = get(t, ts, "/v1/jobs/"+jobID(store.KindDesign, fpLost))
	if status != http.StatusOK || json.Unmarshal(b, &jw) != nil || jw.State != jobError {
		t.Fatalf("interrupted job not surfaced as error: %d %s", status, b)
	}
	if !strings.Contains(jw.Error, "resubmit") {
		t.Fatalf("interrupted-job error %q does not tell the client to resubmit", jw.Error)
	}
}

// TestJobsPersistAcrossRestart runs a real async job to completion and
// requires a second daemon over the same store to know about it.
func TestJobsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	status, _, body := post(t, ts1, "/v1/design", `{"k":4,"kind":"wcopt","async":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var jw jobWire
	if err := json.Unmarshal(body, &jw); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, b := get(t, ts1, "/v1/jobs/"+jw.ID)
		if err := json.Unmarshal(b, &jw); err != nil {
			t.Fatal(err)
		}
		if jw.State == jobDone {
			break
		}
		if jw.State == jobError || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", jw)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, Config{StoreDir: dir})
	status, b := get(t, ts2, "/v1/jobs/"+jw.ID)
	var jw2 jobWire
	if status != http.StatusOK || json.Unmarshal(b, &jw2) != nil || jw2.State != jobDone {
		t.Fatalf("restarted daemon lost the finished job: %d %s", status, b)
	}
}

// TestJobGCBounds ages a populated job table and requires the TTL and the
// count cap to evict finished entries (never running ones), counting the
// evictions in /metrics — while evicted results stay resolvable through
// the store's fingerprint-prefix fallback.
func TestJobGCBounds(t *testing.T) {
	s, ts := newTestServer(t, Config{JobTTL: time.Hour, JobMaxDone: 1})
	base := time.Now()
	s.now = func() time.Time { return base }

	mk := func(seed string, state string, age time.Duration) string {
		fp := store.HashBytes([]byte(seed))
		id := jobID(store.KindDesign, fp)
		s.jobs.mu.Lock()
		if s.jobs.m == nil {
			s.jobs.m = map[string]*job{}
		}
		s.jobs.m[id] = &job{ID: id, Kind: store.KindDesign, FP: fp,
			state: state, doneUnix: base.Add(-age).Unix()}
		s.jobs.mu.Unlock()
		return id
	}
	expired := mk("a", jobDone, 2*time.Hour)  // beyond TTL
	older := mk("b", jobDone, 10*time.Minute) // inside TTL, over the count cap
	newest := mk("c", jobDone, 5*time.Minute)
	running := mk("d", jobRunning, 3*time.Hour) // ancient but running: immune

	s.gcJobs()

	for _, id := range []string{expired, older} {
		if s.lookupJob(id) != nil {
			t.Errorf("job %s survived GC", id)
		}
	}
	if s.lookupJob(newest) == nil || s.lookupJob(running) == nil {
		t.Fatal("GC evicted a job it must keep")
	}
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{"tcrd_jobs_evicted_total 2", "tcrd_jobs 2"} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}

	// An evicted job's artifact still resolves by fingerprint prefix.
	fp := store.HashBytes([]byte("a"))
	art := store.DesignArtifact{Schema: store.SchemaVersion, Certified: true}
	payload, err := store.Encode(art)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.store.Put(store.KindDesign, fp, store.SchemaVersion, payload); err != nil {
		t.Fatal(err)
	}
	status, b := get(t, ts, "/v1/jobs/"+expired+"/result")
	if status != http.StatusOK || string(b) != string(payload) {
		t.Fatalf("evicted job result unresolvable: %d %q", status, b)
	}
}

// TestShutdownTimeoutForceCloses gates a background job and requires Close
// to give up at ShutdownTimeout with an error saying the jobs were
// abandoned (their checkpoints are on disk), rather than hanging forever.
func TestShutdownTimeoutForceCloses(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), ShutdownTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	gate := make(chan struct{})
	s.hooks.computeStart = func(string, string) { <-gate }

	status, _, body := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt","async":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	start := time.Now()
	cerr := s.Close()
	if cerr == nil || !strings.Contains(cerr.Error(), "shutdown timeout") {
		t.Fatalf("Close over a stuck job returned %v, want shutdown-timeout error", cerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v despite 50ms shutdown timeout", elapsed)
	}
	close(gate) // release the job so the test process drains cleanly
	if err := s.Close(); err != nil {
		t.Fatalf("second Close after release: %v", err)
	}
}

// TestRestartWithCorruptManifestRecomputes writes garbage over a committed
// artifact's manifest and requires a restarted daemon to treat the slot as
// a miss and repair it by recomputing — ErrCorrupt never crashes serving.
func TestRestartWithCorruptManifestRecomputes(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	status, _, cold := post(t, ts1, "/v1/eval", `{"k":4,"alg":"DOR"}`)
	if status != http.StatusOK {
		t.Fatalf("cold eval: %d", status)
	}
	fp, err := store.EvalRequest{K: 4, Alg: "DOR"}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "objects", store.KindEval, fp[:2], fp, "manifest.json")
	if err := os.WriteFile(manifest, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	var c counters
	c.install(s2)
	status, _, warm := post(t, ts2, "/v1/eval", `{"k":4,"alg":"DOR"}`)
	if status != http.StatusOK || string(warm) != string(cold) {
		t.Fatalf("recompute over corrupt manifest: %d (bytes equal: %v)", status, string(warm) == string(cold))
	}
	if c.computes.Load() != 1 {
		t.Fatalf("corrupt slot served without recompute (computes=%d)", c.computes.Load())
	}
	if !s2.store.Has(store.KindEval, fp) {
		t.Fatal("recompute did not repair the corrupt slot")
	}
}
