package serve

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the daemon's counter set, rendered in Prometheus text format by
// render. Counters are monotonic; queue_depth, running, and the cache gauge
// are sampled at scrape time.
type metrics struct {
	requests       [5]atomic.Int64 // indexed by endpoint
	rejected       atomic.Int64
	timeouts       atomic.Int64
	storeHits      atomic.Int64
	storeMisses    atomic.Int64
	degraded       [4]atomic.Int64 // indexed by degradation reason
	jobsEvicted    atomic.Int64
	observeSamples atomic.Int64
	resolves       [2]atomic.Int64 // indexed by re-solve outcome

	mu         sync.Mutex
	solveCount int64
	solveSum   float64
	solveMax   float64
}

// gauges is the point-in-time state sampled at scrape time, as opposed to
// the monotonic counters the metrics struct accumulates.
type gauges struct {
	queueDepth   int64
	running      int64
	cacheEntries int64
	health       string
	breakerOpen  bool
	breakerTrips int64
	jobs         int64
	// drifts is the per-tenant live drift, sorted by tenant so scrapes are
	// deterministic.
	drifts []tenantDrift
}

// tenantDrift is one tenant's drift gauge sample.
type tenantDrift struct {
	tenant string
	drift  float64
}

// Endpoint indices for metrics.requests.
const (
	epEval = iota
	epWorstPerm
	epDesign
	epPareto
	epObserve
)

var epNames = [5]string{"eval", "worstperm", "design", "pareto", "observe"}

// Re-solve outcome indices for metrics.resolves.
const (
	resolveOK = iota
	resolveErr
)

var resolveOutcomes = [2]string{"ok", "error"}

func (m *metrics) observeSolve(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	m.solveCount++
	m.solveSum += s
	m.solveMax = math.Max(m.solveMax, s)
	m.mu.Unlock()
}

// render writes the scrape body. g.queueDepth counts admitted-or-waiting
// requests (running included), g.running the occupied solver slots,
// g.cacheEntries the flow tables held by the eval cache; health is
// rendered one-hot across the three states.
func (m *metrics) render(g gauges) []byte {
	var b bytes.Buffer
	for i, name := range epNames {
		fmt.Fprintf(&b, "tcrd_requests_total{endpoint=%q} %d\n", name, m.requests[i].Load())
	}
	fmt.Fprintf(&b, "tcrd_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(&b, "tcrd_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(&b, "tcrd_store_hits_total %d\n", m.storeHits.Load())
	fmt.Fprintf(&b, "tcrd_store_misses_total %d\n", m.storeMisses.Load())
	for i, reason := range degradeReasons {
		fmt.Fprintf(&b, "tcrd_degraded_total{reason=%q} %d\n", reason, m.degraded[i].Load())
	}
	fmt.Fprintf(&b, "tcrd_observe_samples_total %d\n", m.observeSamples.Load())
	for i, outcome := range resolveOutcomes {
		fmt.Fprintf(&b, "tcrd_resolves_total{outcome=%q} %d\n", outcome, m.resolves[i].Load())
	}
	for _, d := range g.drifts {
		fmt.Fprintf(&b, "tcrd_drift{tenant=%q} %g\n", d.tenant, d.drift)
	}
	for _, state := range healthStates {
		fmt.Fprintf(&b, "tcrd_health_state{state=%q} %d\n", state, boolGauge(state == g.health))
	}
	fmt.Fprintf(&b, "tcrd_breaker_open %d\n", boolGauge(g.breakerOpen))
	fmt.Fprintf(&b, "tcrd_breaker_trips_total %d\n", g.breakerTrips)
	fmt.Fprintf(&b, "tcrd_jobs %d\n", g.jobs)
	fmt.Fprintf(&b, "tcrd_jobs_evicted_total %d\n", m.jobsEvicted.Load())
	fmt.Fprintf(&b, "tcrd_queue_depth %d\n", g.queueDepth)
	fmt.Fprintf(&b, "tcrd_running %d\n", g.running)
	fmt.Fprintf(&b, "tcrd_flow_cache_entries %d\n", g.cacheEntries)
	m.mu.Lock()
	fmt.Fprintf(&b, "tcrd_solve_seconds_count %d\n", m.solveCount)
	fmt.Fprintf(&b, "tcrd_solve_seconds_sum %g\n", m.solveSum)
	fmt.Fprintf(&b, "tcrd_solve_seconds_max %g\n", m.solveMax)
	m.mu.Unlock()
	return b.Bytes()
}

func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}
