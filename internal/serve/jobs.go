package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tcr/internal/store"
)

// The job API covers solves too long for a synchronous request: POST the
// design or pareto request with "async": true, get 202 with a job id, poll
// GET /v1/jobs/{id}, and fetch the artifact from GET /v1/jobs/{id}/result
// once done. Job ids are derived from the request fingerprint, so
// resubmitting the same request attaches to the existing job instead of
// spawning a duplicate, and a finished job's result is simply the stored
// artifact — jobs restartable across daemon lifetimes for free.
//
// The table is bounded and durable: finished entries are garbage-collected
// by age (Config.JobTTL) and count (Config.JobMaxDone) — their artifacts
// stay in the store, and /v1/jobs/{id}/result keeps resolving evicted ids
// by fingerprint prefix — and the whole index is persisted to jobs.json in
// the store root on every transition, so a restarted daemon knows which
// jobs its predecessor was running. A jobs.json the predecessor tore
// mid-crash is quarantined, never crash-looped on.

// Job states.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobError   = "error"
)

type job struct {
	ID   string
	Kind string
	FP   string

	mu       sync.Mutex
	state    string
	err      string
	doneUnix int64 // completion time; 0 while running
}

func (j *job) setState(state, errMsg string, doneUnix int64) {
	j.mu.Lock()
	j.state, j.err, j.doneUnix = state, errMsg, doneUnix
	j.mu.Unlock()
}

func (j *job) snapshot() (state, errMsg string, doneUnix int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err, j.doneUnix
}

type jobTable struct {
	mu sync.Mutex
	m  map[string]*job
}

func (t *jobTable) count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.m))
}

// jobsSchema versions the persisted job index.
const jobsSchema = "tcrd-jobs-1"

// jobRecord is one persisted table entry; jobsFile the jobs.json layout.
type jobRecord struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	FP       string `json:"fingerprint"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	DoneUnix int64  `json:"done_unix,omitempty"`
}

type jobsFile struct {
	Schema string      `json:"schema"`
	Jobs   []jobRecord `json:"jobs"`
}

func (s *Server) jobsPath() string { return filepath.Join(s.store.Dir(), "jobs.json") }

// loadJobs restores the persisted job index at startup. A missing file is
// a fresh daemon; an unreadable or torn one (truncated JSON, zero bytes,
// foreign schema) is moved aside to jobs.json.quarantine and the daemon
// starts with an empty table — recover or quarantine, never crash-loop.
// Entries persisted as "running" belonged to the previous daemon life:
// ones whose artifact made it into the store read as done, the rest as
// errors telling the client to resubmit (the per-round checkpoint makes
// the resubmission a resume, not a recompute).
func (s *Server) loadJobs() error {
	b, err := os.ReadFile(s.jobsPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: load jobs: %w", err)
	}
	var f jobsFile
	if uerr := json.Unmarshal(b, &f); uerr != nil || f.Schema != jobsSchema {
		//lint:ignore errdrop quarantine is best-effort; a daemon that cannot rename still starts empty
		_ = os.Rename(s.jobsPath(), s.jobsPath()+".quarantine")
		return nil
	}
	now := s.now().Unix()
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	s.jobs.m = map[string]*job{}
	for _, rec := range f.Jobs {
		if rec.ID == "" || rec.Kind == "" || rec.FP == "" {
			continue
		}
		state, errMsg, doneUnix := rec.State, rec.Error, rec.DoneUnix
		if state == jobRunning {
			if s.store.Has(rec.Kind, rec.FP) {
				state, errMsg, doneUnix = jobDone, "", now
			} else {
				state = jobError
				errMsg = "interrupted by daemon restart; resubmit to resume from checkpoint"
				doneUnix = now
			}
		}
		s.jobs.m[rec.ID] = &job{ID: rec.ID, Kind: rec.Kind, FP: rec.FP,
			state: state, err: errMsg, doneUnix: doneUnix}
	}
	return nil
}

// saveJobs persists the current table to jobs.json atomically. Best-effort
// by design: the store remains the source of truth for results, so a lost
// index costs restart bookkeeping, not artifacts.
func (s *Server) saveJobs() {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	s.jobs.mu.Lock()
	ids := make([]string, 0, len(s.jobs.m))
	for id := range s.jobs.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	f := jobsFile{Schema: jobsSchema, Jobs: make([]jobRecord, 0, len(ids))}
	for _, id := range ids {
		j := s.jobs.m[id]
		state, errMsg, doneUnix := j.snapshot()
		f.Jobs = append(f.Jobs, jobRecord{ID: j.ID, Kind: j.Kind, FP: j.FP,
			State: state, Error: errMsg, DoneUnix: doneUnix})
	}
	s.jobs.mu.Unlock()
	b, err := json.Marshal(&f)
	if err != nil {
		return
	}
	//lint:ignore errdrop best-effort index persistence; the store stays authoritative for results
	_ = store.WriteFileAtomic(s.jobsPath(), b, 0o644)
}

// gcJobs evicts finished jobs older than JobTTL, then the oldest finished
// beyond JobMaxDone. Running jobs are never evicted. Evicted ids remain
// resolvable through the store's fingerprint-prefix lookup.
func (s *Server) gcJobs() {
	nowUnix := s.now().Unix()
	ttlSec := int64(s.cfg.jobTTL().Seconds())
	maxDone := s.cfg.jobMaxDone()
	type doneEntry struct {
		id       string
		doneUnix int64
	}
	var done []doneEntry
	var evicted int64
	s.jobs.mu.Lock()
	ids := make([]string, 0, len(s.jobs.m))
	for id := range s.jobs.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs.m[id]
		state, _, doneUnix := j.snapshot()
		if state == jobRunning {
			continue
		}
		if nowUnix-doneUnix > ttlSec {
			delete(s.jobs.m, id)
			evicted++
			continue
		}
		done = append(done, doneEntry{id, doneUnix})
	}
	if len(done) > maxDone {
		sort.Slice(done, func(i, j int) bool {
			if done[i].doneUnix != done[j].doneUnix {
				return done[i].doneUnix < done[j].doneUnix
			}
			return done[i].id < done[j].id
		})
		for _, e := range done[:len(done)-maxDone] {
			delete(s.jobs.m, e.id)
			evicted++
		}
	}
	s.jobs.mu.Unlock()
	if evicted > 0 {
		s.met.jobsEvicted.Add(evicted)
		s.saveJobs()
	}
}

// jobID derives the public id: the kind plus a fingerprint prefix long
// enough to be collision-free within one store.
func jobID(kind, fp string) string { return kind + "-" + fp[:16] }

// jobWire is the poll response.
type jobWire struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	FP    string `json:"fingerprint"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// submitJob registers (or re-attaches to) the job for (kind, fp) and
// responds 202 with its descriptor. The solve runs on the daemon's job
// context — not the request's — so it survives the submitter disconnecting
// and is cancelled only by daemon shutdown, where the checkpoint written
// each round preserves its progress.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request, kind, fp string, compute func(context.Context) ([]byte, bool, error)) {
	s.gcJobs()
	id := jobID(kind, fp)
	s.jobs.mu.Lock()
	if s.jobs.m == nil {
		s.jobs.m = map[string]*job{}
	}
	j, exists := s.jobs.m[id]
	if !exists {
		j = &job{ID: id, Kind: kind, FP: fp, state: jobRunning}
		s.jobs.m[id] = j
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if _, err := s.result(s.jobCtx, kind, fp, compute); err != nil {
				j.setState(jobError, err.Error(), s.now().Unix())
			} else {
				j.setState(jobDone, "", s.now().Unix())
			}
			s.saveJobs()
		}()
	}
	s.jobs.mu.Unlock()
	if !exists {
		s.saveJobs()
	}
	s.respondJob(w, r, j, http.StatusAccepted)
}

func (s *Server) lookupJob(id string) *job {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	return s.jobs.m[id]
}

func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *job, status int) {
	state, errMsg, _ := j.snapshot()
	b, err := json.Marshal(jobWire{ID: j.ID, Kind: j.Kind, FP: j.FP, State: state, Error: errMsg})
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeBody(w, append(b, '\n'))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.respondJob(w, r, j, http.StatusOK)
}

// handleJobResult streams a finished job's artifact from the store. A job
// that predates this daemon's lifetime is also served as long as its
// artifact exists: ids encode the kind and a fingerprint prefix, so the
// store can be consulted even when the job table has no entry.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j != nil {
		state, errMsg, _ := j.snapshot()
		switch state {
		case jobRunning:
			s.respondJob(w, r, j, http.StatusAccepted)
			return
		case jobError:
			s.fail(w, r, http.StatusInternalServerError, errors.New(errMsg))
			return
		}
		payload, _, err := s.store.Get(j.Kind, j.FP)
		if err != nil {
			s.fail(w, r, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeBody(w, payload)
		return
	}
	// No live entry: resolve the id against the store (prior daemon life).
	kind, prefix, ok := strings.Cut(id, "-")
	if !ok {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	payload, err := s.getByPrefix(kind, prefix)
	if err != nil {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, payload)
}

// getByPrefix finds the unique stored artifact whose fingerprint starts with
// prefix (job ids carry only a prefix).
func (s *Server) getByPrefix(kind, prefix string) ([]byte, error) {
	fps, err := s.store.List(kind)
	if err != nil {
		return nil, err
	}
	for _, fp := range fps {
		if strings.HasPrefix(fp, prefix) {
			b, _, err := s.store.Get(kind, fp)
			return b, err
		}
	}
	return nil, store.ErrNotFound
}
