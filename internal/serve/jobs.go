package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"tcr/internal/store"
)

// The job API covers solves too long for a synchronous request: POST the
// design or pareto request with "async": true, get 202 with a job id, poll
// GET /v1/jobs/{id}, and fetch the artifact from GET /v1/jobs/{id}/result
// once done. Job ids are derived from the request fingerprint, so
// resubmitting the same request attaches to the existing job instead of
// spawning a duplicate, and a finished job's result is simply the stored
// artifact — jobs restartable across daemon lifetimes for free.

// Job states.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobError   = "error"
)

type job struct {
	ID   string
	Kind string
	FP   string

	mu    sync.Mutex
	state string
	err   string
}

func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	j.state, j.err = state, errMsg
	j.mu.Unlock()
}

func (j *job) snapshot() (state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err
}

type jobTable struct {
	mu sync.Mutex
	m  map[string]*job
}

// jobID derives the public id: the kind plus a fingerprint prefix long
// enough to be collision-free within one store.
func jobID(kind, fp string) string { return kind + "-" + fp[:16] }

// jobWire is the poll response.
type jobWire struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	FP    string `json:"fingerprint"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// submitJob registers (or re-attaches to) the job for (kind, fp) and
// responds 202 with its descriptor. The solve runs on the daemon's job
// context — not the request's — so it survives the submitter disconnecting
// and is cancelled only by daemon shutdown, where the checkpoint written
// each round preserves its progress.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request, kind, fp string, compute func(context.Context) ([]byte, bool, error)) {
	id := jobID(kind, fp)
	s.jobs.mu.Lock()
	if s.jobs.m == nil {
		s.jobs.m = map[string]*job{}
	}
	j, exists := s.jobs.m[id]
	if !exists {
		j = &job{ID: id, Kind: kind, FP: fp, state: jobRunning}
		s.jobs.m[id] = j
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if _, err := s.result(s.jobCtx, kind, fp, compute); err != nil {
				j.setState(jobError, err.Error())
				return
			}
			j.setState(jobDone, "")
		}()
	}
	s.jobs.mu.Unlock()
	s.respondJob(w, r, j, http.StatusAccepted)
}

func (s *Server) lookupJob(id string) *job {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	return s.jobs.m[id]
}

func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *job, status int) {
	state, errMsg := j.snapshot()
	b, err := json.Marshal(jobWire{ID: j.ID, Kind: j.Kind, FP: j.FP, State: state, Error: errMsg})
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeBody(w, append(b, '\n'))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.respondJob(w, r, j, http.StatusOK)
}

// handleJobResult streams a finished job's artifact from the store. A job
// that predates this daemon's lifetime is also served as long as its
// artifact exists: ids encode the kind and a fingerprint prefix, so the
// store can be consulted even when the job table has no entry.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j != nil {
		state, errMsg := j.snapshot()
		switch state {
		case jobRunning:
			s.respondJob(w, r, j, http.StatusAccepted)
			return
		case jobError:
			s.fail(w, r, http.StatusInternalServerError, errors.New(errMsg))
			return
		}
		payload, _, err := s.store.Get(j.Kind, j.FP)
		if err != nil {
			s.fail(w, r, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeBody(w, payload)
		return
	}
	// No live entry: resolve the id against the store (prior daemon life).
	kind, prefix, ok := strings.Cut(id, "-")
	if !ok {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	payload, err := s.getByPrefix(kind, prefix)
	if err != nil {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, payload)
}

// getByPrefix finds the unique stored artifact whose fingerprint starts with
// prefix (job ids carry only a prefix).
func (s *Server) getByPrefix(kind, prefix string) ([]byte, error) {
	fps, err := s.store.List(kind)
	if err != nil {
		return nil, err
	}
	for _, fp := range fps {
		if strings.HasPrefix(fp, prefix) {
			b, _, err := s.store.Get(kind, fp)
			return b, err
		}
	}
	return nil, store.ErrNotFound
}
