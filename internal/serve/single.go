package serve

import (
	"context"
	"errors"
	"sync"
)

// group coalesces concurrent calls with the same key onto one in-flight
// execution: the first caller (the leader) runs fn, every concurrent
// duplicate (a follower) waits for the leader's result. Results are never
// retained — the artifact store is the durable cache; the group only
// deduplicates work that is in flight right now.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

type group struct {
	mu sync.Mutex
	m  map[string]*call
}

// do runs fn under key, coalescing with any in-flight call. The leader runs
// fn under its own request context; a follower whose leader dies of the
// leader's cancellation retries as leader if its own context is still live,
// so one impatient client cannot poison the cohort.
func (g *group) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = map[string]*call{}
		}
		if c, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err != nil && isContextErr(c.err) && ctx.Err() == nil {
				continue // leader was cancelled, not us: take over
			}
			return c.val, c.err
		}
		c := &call{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()

		c.val, c.err = fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		return c.val, c.err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
