package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tcr/internal/store"
)

// seedDesign commits a fabricated certified design artifact so degradation
// tests have a stale-but-certified neighbor without running a solve.
func seedDesign(t *testing.T, s *Server, req store.DesignRequest) (string, []byte) {
	t.Helper()
	art := store.DesignArtifact{
		Schema: store.SchemaVersion, Request: req,
		Objective: 1, GammaWC: 1, HAvg: 1, HNorm: req.HNorm,
		Rounds: 1, Iterations: 1, Certified: true,
	}
	b, err := store.Encode(art)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.store.Put(store.KindDesign, fp, store.SchemaVersion, b); err != nil {
		t.Fatal(err)
	}
	return fp, b
}

func seedEval(t *testing.T, s *Server, req store.EvalRequest) (string, []byte) {
	t.Helper()
	art := store.EvalArtifact{Schema: store.SchemaVersion, Request: req, GammaWC: 2, WCFraction: 0.5}
	b, err := store.Encode(art)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.store.Put(store.KindEval, fp, store.SchemaVersion, b); err != nil {
		t.Fatal(err)
	}
	return fp, b
}

// TestBreakerStateMachine drives the circuit through its full life:
// closed, tripped open, cooloff probe, failed probe re-opening, successful
// probe closing.
func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 2, cooloff: time.Minute}
	t0 := time.Unix(1000, 0)
	if !b.allow(t0) || b.isOpen() {
		t.Fatal("fresh breaker not closed")
	}
	b.recordFailure(t0)
	if !b.allow(t0) {
		t.Fatal("one failure below threshold must not trip")
	}
	b.recordFailure(t0)
	if !b.isOpen() || b.tripCount() != 1 {
		t.Fatalf("threshold failures did not trip: open=%v trips=%d", b.isOpen(), b.tripCount())
	}
	if b.allow(t0.Add(time.Second)) {
		t.Fatal("open breaker admitted a solve inside the cooloff")
	}
	if !b.allow(t0.Add(61 * time.Second)) {
		t.Fatal("cooloff expiry did not admit a probe")
	}
	if b.allow(t0.Add(61 * time.Second)) {
		t.Fatal("second concurrent probe admitted")
	}
	b.recordFailure(t0.Add(61 * time.Second))
	if b.allow(t0.Add(62*time.Second)) || b.tripCount() != 1 {
		t.Fatal("failed probe must re-open for a fresh cooloff without recounting the trip")
	}
	if !b.allow(t0.Add(122 * time.Second)) {
		t.Fatal("second cooloff expiry did not admit a probe")
	}
	b.recordSuccess()
	if b.isOpen() || !b.allow(t0.Add(123*time.Second)) {
		t.Fatal("successful probe did not close the circuit")
	}
	// An abandoned probe (never reached the solver) frees the slot.
	b.recordFailure(t0)
	b.recordFailure(t0)
	if !b.allow(t0.Add(61 * time.Second)) {
		t.Fatal("probe not admitted")
	}
	b.abandonProbe()
	if !b.allow(t0.Add(61 * time.Second)) {
		t.Fatal("abandoned probe slot not reusable")
	}
}

// TestBreakerServesStaleNearbyDesign trips the breaker and requires the
// daemon to serve the adjacent certified Pareto point — stale, disclosed
// via headers — without touching the solver, while /healthz and /metrics
// report the degraded state.
func TestBreakerServesStaleNearbyDesign(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var c counters
	c.install(s)
	_, stale := seedDesign(t, s, store.DesignRequest{K: 4, Kind: store.DesignWorstCase, HNorm: 2.0})
	fp, _ := store.DesignRequest{K: 4, Kind: store.DesignWorstCase, HNorm: 2.0}.Fingerprint()

	// Freeze the clock 500 simulated seconds after the artifact was
	// committed, then trip the breaker.
	now := time.Now().Add(500 * time.Second)
	s.now = func() time.Time { return now }
	for i := 0; i < s.cfg.breakerThreshold(); i++ {
		s.brk.recordFailure(now)
	}

	status, hdr, body := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt","hnorm":2.5}`)
	if status != http.StatusOK {
		t.Fatalf("degraded request: status %d, body %s", status, body)
	}
	if got := hdr.Get("X-TCR-Degraded"); got != "breaker-open" {
		t.Fatalf("X-TCR-Degraded %q, want breaker-open", got)
	}
	staleness, err := strconv.ParseInt(hdr.Get("X-TCR-Staleness"), 10, 64)
	if err != nil || staleness < 495 || staleness > 520 {
		t.Fatalf("X-TCR-Staleness %q, want ~500s", hdr.Get("X-TCR-Staleness"))
	}
	if got := hdr.Get("X-TCR-Fallback-Fingerprint"); got != fp {
		t.Fatalf("X-TCR-Fallback-Fingerprint %q, want %q", got, fp)
	}
	if !strings.Contains(hdr.Get("X-TCR-Fallback"), "hnorm=2") {
		t.Fatalf("X-TCR-Fallback %q does not describe the substitution", hdr.Get("X-TCR-Fallback"))
	}
	if !bytes.Equal(body, stale) {
		t.Fatal("degraded response is not the stale artifact byte-for-byte")
	}
	if c.computes.Load() != 0 {
		t.Fatal("degraded serve touched the solver")
	}

	if status, b := get(t, ts, "/healthz"); status != http.StatusOK || string(b) != "degraded\n" {
		t.Fatalf("degraded healthz: %d %q", status, b)
	}
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		"tcrd_breaker_open 1",
		`tcrd_health_state{state="degraded"} 1`,
		`tcrd_health_state{state="ok"} 0`,
		`tcrd_degraded_total{reason="breaker-open"} 1`,
		"tcrd_breaker_trips_total 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}
}

// TestBreakerOpenWithoutFallback503 pins the no-neighbor path: a tripped
// breaker with nothing certified nearby answers 503 with Retry-After set
// to the cooloff, and worstperm (which has no degradation axis) never
// degrades.
func TestBreakerOpenWithoutFallback503(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerCooloff: 7 * time.Second})
	for i := 0; i < s.cfg.breakerThreshold(); i++ {
		s.brk.recordFailure(s.now())
	}
	for _, tc := range []struct{ path, body string }{
		{"/v1/worstperm", `{"k":4,"alg":"DOR"}`},
		{"/v1/design", `{"k":6,"kind":"wcopt"}`}, // empty store: no neighbor
	} {
		status, hdr, body := post(t, ts, tc.path, tc.body)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("POST %s: status %d, want 503 (body %s)", tc.path, status, body)
		}
		if hdr.Get("Retry-After") != "7" {
			t.Errorf("POST %s: Retry-After %q, want cooloff seconds", tc.path, hdr.Get("Retry-After"))
		}
		if hdr.Get("X-TCR-Degraded") != "" {
			t.Errorf("POST %s: 503 carries a degraded header", tc.path)
		}
	}
}

// TestOverloadServesStaleEval fills the solver pool and requires the
// overflow request — which previously got a bare 429 — to be served the
// nearest certified eval with the overload degradation headers.
func TestOverloadServesStaleEval(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	_, stale := seedEval(t, s, store.EvalRequest{K: 4, Alg: "IVAL"})

	gate := make(chan struct{})
	var gated atomic.Int64
	s.hooks.computeStart = func(kind, fp string) {
		gated.Add(1)
		<-gate
	}
	results := make(chan int, 2)
	for _, alg := range []string{"DOR", "VAL"} {
		go func(alg string) {
			status, _, _ := post(t, ts, "/v1/eval", fmt.Sprintf(`{"k":4,"alg":%q}`, alg))
			results <- status
		}(alg)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (at %d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	status, hdr, body := post(t, ts, "/v1/eval", `{"k":4,"alg":"IVAL","samples":64,"seed":9}`)
	if status != http.StatusOK {
		t.Fatalf("overflow request: status %d, want degraded 200 (body %s)", status, body)
	}
	if got := hdr.Get("X-TCR-Degraded"); got != "overload" {
		t.Fatalf("X-TCR-Degraded %q, want overload", got)
	}
	if hdr.Get("X-TCR-Staleness") == "" {
		t.Error("degraded response without X-TCR-Staleness")
	}
	if !bytes.Equal(body, stale) {
		t.Fatal("degraded response is not the seeded stale artifact")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if st := <-results; st != http.StatusOK {
			t.Fatalf("gated request finished with %d", st)
		}
	}
	_, mb := get(t, ts, "/metrics")
	if !strings.Contains(string(mb), `tcrd_degraded_total{reason="overload"} 1`) {
		t.Errorf("overload degradation not counted:\n%s", mb)
	}
}

// TestNearbyPrefersClosestAxisValue seeds two certified neighbors and
// requires the fallback to pick the one nearest along the freed axis.
func TestNearbyPrefersClosestAxisValue(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	seedDesign(t, s, store.DesignRequest{K: 4, Kind: store.DesignWorstCase, HNorm: 1.5})
	fpNear, _ := seedDesign(t, s, store.DesignRequest{K: 4, Kind: store.DesignWorstCase, HNorm: 2.25})
	// A different radix must never be a candidate.
	seedDesign(t, s, store.DesignRequest{K: 6, Kind: store.DesignWorstCase, HNorm: 2.5})

	fb := s.nearbyDesign(store.DesignRequest{K: 4, Kind: store.DesignWorstCase, HNorm: 2.5})
	if fb == nil {
		t.Fatal("no fallback found")
	}
	if fb.m.Fingerprint != fpNear {
		t.Fatalf("picked %s (%s), want the hnorm=2.25 neighbor", fb.m.Fingerprint, fb.note)
	}
	// minloc has no free axis: never substituted.
	if fb := s.nearbyDesign(store.DesignRequest{K: 4, Kind: store.DesignMinLocality}); fb != nil {
		t.Fatalf("minloc produced a fallback: %s", fb.note)
	}
}
