package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcr/internal/store"
)

// The daemon e2e suite drives full HTTP round trips through httptest and
// observes the solver through the white-box hooks: computeStart counts
// actual solves, storeHit counts store replays. Design cases run at k=4,
// where a certified worst-case solve takes well under a second.

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	if cfg.SolveWorkers == 0 {
		cfg.SolveWorkers = 1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, ts
}

// counters wires counting hooks into a server.
type counters struct {
	hits, computes atomic.Int64
}

func (c *counters) install(s *Server) {
	s.hooks.storeHit = func(string, string) { c.hits.Add(1) }
	s.hooks.computeStart = func(string, string) { c.computes.Add(1) }
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestEvalColdThenWarm(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var c counters
	c.install(s)

	status, hdr, cold := post(t, ts, "/v1/eval", `{"k":4,"alg":"IVAL"}`)
	if status != http.StatusOK {
		t.Fatalf("cold eval: status %d, body %s", status, cold)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var art store.EvalArtifact
	if err := json.Unmarshal(cold, &art); err != nil {
		t.Fatalf("response not an EvalArtifact: %v", err)
	}
	if art.Schema != store.SchemaVersion || art.Request.Alg != "IVAL" || art.GammaWC <= 0 {
		t.Fatalf("implausible artifact: %+v", art)
	}

	status, _, warm := post(t, ts, "/v1/eval", `{"k":4,"alg":"IVAL"}`)
	if status != http.StatusOK {
		t.Fatalf("warm eval: status %d", status)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm response differs from cold response")
	}
	if got := c.computes.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1", got)
	}
	if got := c.hits.Load(); got != 1 {
		t.Fatalf("store hits %d, want 1", got)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct{ path, body string }{
		{"/v1/eval", `{"k":1,"alg":"DOR"}`},
		{"/v1/eval", `{"k":4,"alg":"NOPE"}`},
		{"/v1/eval", `{"k":4,"alg":"DOR","bogus":true}`},
		{"/v1/eval", `{"k":64000,"alg":"DOR"}`},
		{"/v1/eval", `not json`},
		{"/v1/eval", `{"topology":"mesh:3x3","alg":"DOR"}`},    // closed-form algs are torus2d-only
		{"/v1/eval", `{"topology":"hypercube:4","alg":"DOR"}`}, // unknown family
		{"/v1/eval", `{"topology":"torus3d:16","alg":"DOR"}`},  // over the node cap
		{"/v1/design", `{"topology":"hypercube:4","kind":"wcopt"}`},
		{"/v1/design", `{"topology":"torus3d:16","kind":"wcopt"}`},
		{"/v1/design", `{"topology":"mesh:","kind":"wcopt"}`},
		{"/v1/worstperm", `{"k":4}`},
		{"/v1/design", `{"k":4,"kind":"wat"}`},
		{"/v1/design", `{"k":4,"kind":"minloc","hnorm":2.0}`},
		{"/v1/pareto", `{"k":4,"hmin":2,"hmax":1,"points":3}`},
	}
	for _, tc := range cases {
		status, _, body := post(t, ts, tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400 (body %s)", tc.path, tc.body, status, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("POST %s: error body %q not the JSON envelope", tc.path, body)
		}
	}
}

// TestDesignColdComputesWarmReplays pins the acceptance path: a cold design
// request computes, persists, and returns a certified artifact; the
// identical request afterwards is served from the store without touching the
// solver.
func TestDesignColdComputesWarmReplays(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var c counters
	c.install(s)

	status, _, cold := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt"}`)
	if status != http.StatusOK {
		t.Fatalf("cold design: status %d, body %s", status, cold)
	}
	var art store.DesignArtifact
	if err := json.Unmarshal(cold, &art); err != nil {
		t.Fatal(err)
	}
	if !art.Certified {
		t.Fatalf("cold design uncertified: %s", art.Reason)
	}
	if len(art.Flow) == 0 {
		t.Fatal("certified design artifact has no flow table")
	}
	fp, err := art.Request.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !s.store.Has(store.KindDesign, fp) {
		t.Fatal("certified design not persisted")
	}

	status, _, warm := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt"}`)
	if status != http.StatusOK || !bytes.Equal(cold, warm) {
		t.Fatalf("warm design replay mismatch: status %d", status)
	}
	if got := c.computes.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1", got)
	}
}

// TestDesignCoalescing issues M identical cold requests concurrently and
// requires exactly one solver run: the singleflight group must merge them.
func TestDesignCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var c counters
	c.install(s)

	const m = 6
	bodies := make([][]byte, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, b := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt"}`)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d, body %s", i, status, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if got := c.computes.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran the solver %d times, want exactly 1", m, got)
	}
	for i := 1; i < m; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// TestBackpressure429 fills the solver pool (Workers=1) and its queue
// (QueueDepth=1) with gated requests, then requires the next distinct
// request to be rejected with 429 + Retry-After — and the pool to drain
// cleanly once the gate opens.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	admitted := make(chan string, 4)
	s.hooks.computeStart = func(kind, fp string) {
		admitted <- kind + "/" + fp
		<-gate
	}

	results := make(chan int, 2)
	for _, alg := range []string{"DOR", "VAL"} {
		go func(alg string) {
			status, _, _ := post(t, ts, "/v1/eval", fmt.Sprintf(`{"k":4,"alg":%q}`, alg))
			results <- status
		}(alg)
	}
	// First request holds the only slot (blocked in the gate); second sits
	// in the queue. Wait for both to be accounted before probing.
	<-admitted
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached 2 (at %d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	status, hdr, body := post(t, ts, "/v1/eval", `{"k":4,"alg":"IVAL"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429 (body %s)", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("gated request finished with %d", status)
		}
	}
	// The pool drained: the rejected request now succeeds.
	if status, _, _ := post(t, ts, "/v1/eval", `{"k":4,"alg":"IVAL"}`); status != http.StatusOK {
		t.Fatalf("post-drain request: status %d, want 200", status)
	}
	if s.queued.Load() != 0 {
		t.Fatalf("queue not drained: %d", s.queued.Load())
	}
}

// TestDeadline504 sends a design whose deadline cannot admit even one
// cutting-plane round and requires 504 with the JSON error envelope.
func TestDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt","timeout_ms":1}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("504 body %q is not the error envelope", body)
	}
	if s.met.timeouts.Load() == 0 {
		t.Error("timeout not counted in metrics")
	}
}

// TestCheckpointResumeThroughStore extends the design package's
// TestCheckpointResumeK4 through the daemon: a budget-killed design leaves
// its checkpoint in the store (and no artifact); a fresh daemon over the
// same store resumes it and produces an artifact byte-identical to an
// uninterrupted daemon's.
func TestCheckpointResumeThroughStore(t *testing.T) {
	// Reference: an uninterrupted daemon over its own store.
	_, refTS := newTestServer(t, Config{})
	status, _, ref := post(t, refTS, "/v1/design", `{"k":4,"kind":"wcopt"}`)
	if status != http.StatusOK {
		t.Fatalf("reference design: status %d", status)
	}

	// Budget-killed run over a separate store: uncertified, unpersisted,
	// checkpoint left behind.
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: dir})
	status, _, partial := post(t, ts1, "/v1/design", `{"k":4,"kind":"wcopt","max_rounds":6}`)
	if status != http.StatusOK {
		t.Fatalf("partial design: status %d, body %s", status, partial)
	}
	var part store.DesignArtifact
	if err := json.Unmarshal(partial, &part); err != nil {
		t.Fatal(err)
	}
	if part.Certified {
		t.Fatal("6-round design certified; budget too large for the kill test")
	}
	fp, err := part.Request.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if s1.store.Has(store.KindDesign, fp) {
		t.Fatal("uncertified design was persisted")
	}
	ckpt, err := s1.store.CheckpointPath(store.KindDesign, fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("budget-killed design left no checkpoint: %v", err)
	}
	ts1.Close() // the daemon dies; its store survives

	// A fresh daemon over the same store resumes from the checkpoint and
	// matches the uninterrupted reference bit for bit.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	var c counters
	c.install(s2)
	status, _, resumed := post(t, ts2, "/v1/design", `{"k":4,"kind":"wcopt"}`)
	if status != http.StatusOK {
		t.Fatalf("resumed design: status %d", status)
	}
	if !bytes.Equal(resumed, ref) {
		t.Fatal("resumed artifact differs from the uninterrupted reference")
	}
	if c.computes.Load() != 1 {
		t.Fatal("resume did not go through the solver (store should have been empty)")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not cleared after certification: %v", err)
	}
	// And the certified resume persisted: a third daemon replays it.
	if !s2.store.Has(store.KindDesign, fp) {
		t.Fatal("resumed certified design not persisted")
	}
}

func TestJobsAPI(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var c counters
	c.install(s)

	status, _, body := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt","async":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, body)
	}
	var jw jobWire
	if err := json.Unmarshal(body, &jw); err != nil {
		t.Fatal(err)
	}
	if jw.ID == "" || jw.State == "" {
		t.Fatalf("job descriptor incomplete: %+v", jw)
	}
	// Resubmission attaches to the same job.
	_, _, body2 := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt","async":true}`)
	var jw2 jobWire
	if err := json.Unmarshal(body2, &jw2); err != nil {
		t.Fatal(err)
	}
	if jw2.ID != jw.ID {
		t.Fatalf("resubmission spawned a second job: %s vs %s", jw2.ID, jw.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		status, b := get(t, ts, "/v1/jobs/"+jw.ID)
		if status != http.StatusOK {
			t.Fatalf("poll: status %d", status)
		}
		if err := json.Unmarshal(b, &jw); err != nil {
			t.Fatal(err)
		}
		if jw.State == jobDone {
			break
		}
		if jw.State == jobError {
			t.Fatalf("job failed: %s", jw.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", jw.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	status, result := get(t, ts, "/v1/jobs/"+jw.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("result: status %d", status)
	}
	// The job result is the canonical artifact: a synchronous request for
	// the same design replays the identical bytes.
	status, _, sync := post(t, ts, "/v1/design", `{"k":4,"kind":"wcopt"}`)
	if status != http.StatusOK || !bytes.Equal(result, sync) {
		t.Fatal("job result differs from the synchronous replay")
	}
	if c.computes.Load() != 1 {
		t.Fatalf("solver ran %d times across job + sync, want 1", c.computes.Load())
	}

	if status, _ := get(t, ts, "/v1/jobs/nope"); status != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", status)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, b := get(t, ts, "/healthz"); status != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healthz: %d %q", status, b)
	}

	post(t, ts, "/v1/eval", `{"k":4,"alg":"DOR"}`)
	post(t, ts, "/v1/eval", `{"k":4,"alg":"DOR"}`)
	_, mb := get(t, ts, "/metrics")
	m := string(mb)
	for _, want := range []string{
		`tcrd_requests_total{endpoint="eval"} 2`,
		"tcrd_store_hits_total 1",
		"tcrd_store_misses_total 1",
		"tcrd_queue_depth 0",
		"tcrd_running 0",
		"tcrd_flow_cache_entries 1",
		"tcrd_solve_seconds_count 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}

	// Draining flips healthz to 503.
	s.draining.Store(true)
	if status, b := get(t, ts, "/healthz"); status != http.StatusServiceUnavailable || string(b) != "draining\n" {
		t.Fatalf("draining healthz: %d %q", status, b)
	}
	s.draining.Store(false)
}
