package serve

// The online design loop: POST /v1/observe streams flow samples into a
// per-tenant traffic estimator (internal/online), and each batch runs one
// controller decision. When the live estimate drifts past the threshold
// from the traffic the served design was tuned to, the daemon launches a
// background re-solve at the estimate's operating point, warm-started from
// the tenant's previous final LP state, and atomically swaps what
// GET /v1/online/{tenant}/design resolves to when the new artifact
// certifies. While the re-solve runs, the prior certified design keeps
// serving with the same degradation disclosure headers as every other
// stale answer.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"tcr/internal/design"
	"tcr/internal/online"
	"tcr/internal/store"
)

// tenantHeader names the tenant an observe batch belongs to; absent means
// "default".
const tenantHeader = "X-TCR-Tenant"

// Ingestion bounds: one NDJSON line and one batch. A batch past the cap is
// rejected whole rather than truncated silently.
const (
	maxObserveLine  = 1 << 12
	maxObserveBatch = 1 << 16
)

// observeResponse is the per-batch answer: what landed, what the estimator
// thinks, and what the controller decided.
type observeResponse struct {
	Tenant       string  `json:"tenant"`
	Accepted     int     `json:"accepted"`
	Rejected     int     `json:"rejected"`
	RejectReason string  `json:"reject_reason,omitempty"`
	Ingested     float64 `json:"ingested"`
	Drift        float64 `json:"drift"`
	TargetHNorm  float64 `json:"target_hnorm"`
	Trip         bool    `json:"trip"`
	Resolving    bool    `json:"resolving"`
	ServedFP     string  `json:"served_fp,omitempty"`
	ServedHNorm  float64 `json:"served_hnorm,omitempty"`
	Armed        bool    `json:"armed"`
	Cooloff      int     `json:"cooloff,omitempty"`
}

// onlineTenant resolves and validates the request's tenant.
func onlineTenant(r *http.Request, fromPath bool) (string, error) {
	name := r.Header.Get(tenantHeader)
	if fromPath {
		name = r.PathValue("tenant")
	}
	if name == "" {
		name = "default"
	}
	if !online.ValidTenant(name) {
		return "", fmt.Errorf("invalid tenant %q (want lowercase alphanumeric/dash, max 64)", name)
	}
	return name, nil
}

// handleObserve ingests one NDJSON batch of flow samples — one
// {"src":i,"dst":j,"count":c} object per line — and runs the tenant's
// controller step. The batch passes through the same bounded admission as
// every compute endpoint, so an observe flood surfaces as 429 + Retry-After
// instead of unbounded queueing.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epObserve].Add(1)
	tenant, err := onlineTenant(r, false)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	samples, err := decodeSamples(r.Body)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.reqCtx(r, 0)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.finish(w, r, ctx, nil, err, nil)
		return
	}
	accepted, rejectErr, err := s.online.Ingest(tenant, samples)
	if err != nil {
		s.release()
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	s.met.observeSamples.Add(int64(accepted))
	dec, err := s.online.Step(tenant)
	s.release()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	if dec.Trip {
		s.launchResolve(tenant, dec)
	}
	resp := observeResponse{
		Tenant:      tenant,
		Accepted:    accepted,
		Rejected:    len(samples) - accepted,
		Ingested:    dec.Ingested,
		Drift:       dec.Drift,
		TargetHNorm: dec.TargetHNorm,
		Trip:        dec.Trip,
		Resolving:   dec.Resolving || dec.Trip,
		ServedFP:    dec.ServedFP,
		ServedHNorm: dec.ServedHNorm,
		Armed:       dec.Armed,
		Cooloff:     dec.Cooloff,
	}
	if rejectErr != nil {
		resp.RejectReason = rejectErr.Error()
	}
	writeJSON(w, resp)
}

// decodeSamples parses the NDJSON observe body strictly: unknown fields and
// malformed lines reject the batch, so a schema typo cannot silently feed
// zeros into an estimator.
func decodeSamples(r io.Reader) ([]online.Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxObserveLine)
	var out []online.Sample
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if len(out) >= maxObserveBatch {
			return nil, fmt.Errorf("observe batch exceeds %d samples", maxObserveBatch)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var smp online.Sample
		if err := dec.Decode(&smp); err != nil {
			return nil, fmt.Errorf("malformed sample on line %d: %w", line, err)
		}
		out = append(out, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading observe body: %w", err)
	}
	if len(out) == 0 {
		return nil, errors.New("empty observe batch")
	}
	return out, nil
}

// handleOnlineStatus reports a tenant's estimator and controller state
// without advancing the controller.
func (s *Server) handleOnlineStatus(w http.ResponseWriter, r *http.Request) {
	tenant, err := onlineTenant(r, true)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	dec, err := s.online.Status(tenant)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, observeResponse{
		Tenant:      tenant,
		Ingested:    dec.Ingested,
		Drift:       dec.Drift,
		TargetHNorm: dec.TargetHNorm,
		Resolving:   dec.Resolving,
		ServedFP:    dec.ServedFP,
		ServedHNorm: dec.ServedHNorm,
		Armed:       dec.Armed,
		Cooloff:     dec.Cooloff,
	})
}

// handleOnlineDesign serves the tenant's currently published design
// artifact. While a re-solve is in flight the prior certified design
// answers, disclosed with the re-solving degradation headers — the online
// loop never blocks a reader on a solve.
func (s *Server) handleOnlineDesign(w http.ResponseWriter, r *http.Request) {
	tenant, err := onlineTenant(r, true)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	dec, err := s.online.Status(tenant)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if dec.ServedFP == "" {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("tenant %q has no published design yet", tenant))
		return
	}
	payload, m, err := s.store.Get(store.KindDesign, dec.ServedFP)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError,
			fmt.Errorf("published design %.16s unavailable: %w", dec.ServedFP, err))
		return
	}
	if dec.Resolving {
		s.serveStale(w, degradeResolving, &staleFallback{payload: payload, m: m,
			note: fmt.Sprintf("online design hnorm=%g while re-solve runs (drift %.3f)", dec.ServedHNorm, dec.Drift)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, payload)
}

// launchResolve runs a tripped re-solve in the daemon's job pool. The
// design request is content-addressed like any other — identical operating
// points across tenants share one artifact and one in-flight solve — and
// the outcome always reaches the controller exactly once: Published on a
// certified artifact, ResolveFailed otherwise (which starts the cooloff
// that rate-limits the retry).
func (s *Server) launchResolve(tenant string, dec online.Decision) {
	req := store.DesignRequest{K: s.cfg.onlineK(), Kind: store.DesignWorstCase, HNorm: dec.TargetHNorm}
	fp, err := req.Fingerprint()
	if err != nil {
		s.met.resolves[resolveErr].Add(1)
		//lint:ignore errdrop the cooloff is the retry policy; a failed state save re-trips later
		s.online.ResolveFailed(tenant)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_, rerr := s.result(s.jobCtx, store.KindDesign, fp, s.onlineCompute(tenant, req, fp))
		if rerr != nil {
			s.met.resolves[resolveErr].Add(1)
			//lint:ignore errdrop the cooloff is the retry policy; a failed state save re-trips later
			s.online.ResolveFailed(tenant)
			return
		}
		if perr := s.online.Published(tenant, fp, req.HNorm, dec.Estimate); perr != nil {
			// The design is in the store but the controller state failed to
			// persist; the in-memory swap still happened, so serving is
			// correct and only restart fidelity is lost.
			s.met.resolves[resolveErr].Add(1)
			return
		}
		s.met.resolves[resolveOK].Add(1)
	}()
}

// onlineCompute is the re-solve closure: the request-fingerprint checkpoint
// makes a crashed re-solve resume, and the per-tenant warm slot carries the
// final basis and cut log from the previous publish into the next one —
// locality targets differ between operating points, but permutation cuts
// and the optimal basis transfer, so a warm re-solve certifies in fewer
// cutting-plane rounds than a cold one.
func (s *Server) onlineCompute(tenant string, req store.DesignRequest, fp string) func(context.Context) ([]byte, bool, error) {
	return func(ctx context.Context) ([]byte, bool, error) {
		ckpt, err := s.store.CheckpointPath(store.KindDesign, fp)
		if err != nil {
			return nil, false, err
		}
		warm, err := s.store.CheckpointPath("online", store.HashBytes([]byte(tenant)))
		if err != nil {
			return nil, false, err
		}
		opts := design.Options{
			Workers:       s.cfg.SolveWorkers,
			Checkpoint:    ckpt,
			WarmFrom:      warm,
			FinalSnapshot: warm,
		}
		art, err := ComputeDesign(ctx, req, opts)
		if err != nil {
			return nil, false, err
		}
		if !art.Certified {
			return nil, false, fmt.Errorf("online re-solve uncertified after %d rounds: %s", art.Rounds, art.Reason)
		}
		b, err := store.Encode(art)
		if err != nil {
			return nil, false, err
		}
		return b, true, nil
	}
}

// driftGauges samples every loaded tenant's drift for the metrics scrape,
// sorted by tenant.
func (s *Server) driftGauges() []tenantDrift {
	m := s.online.Drifts()
	out := make([]tenantDrift, 0, len(m))
	for name, d := range m {
		out = append(out, tenantDrift{tenant: name, drift: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tenant < out[j].tenant })
	return out
}

// writeJSON sends a 200 with v's JSON encoding.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"internal"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, append(b, '\n'))
}
