//go:build lpchaos

package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"tcr/internal/design"
	"tcr/internal/store"
)

// TestBreakerTripsOnLPFailuresE2E is the degraded-mode acceptance test,
// end to end with genuine solver failures: armed oracle faults make every
// design solve die, each failure is served as the stale adjacent Pareto
// point with solver-failure headers, the failures trip the breaker, and
// once open the daemon keeps serving the stale artifact without touching
// the solve path at all. Clearing the faults and passing the cooloff lets
// a probe solve close the circuit again.
func TestBreakerTripsOnLPFailuresE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: 3, BreakerCooloff: time.Hour})
	var c counters
	c.install(s)
	_, stale := seedDesign(t, s, store.DesignRequest{K: 4, Kind: store.DesignWorstCase, HNorm: 2.0})

	design.SetOracleFaults(1 << 30) // every oracle call fails: retries exhaust
	defer design.SetOracleFaults(0)

	body := `{"k":4,"kind":"wcopt","hnorm":2.5}`
	for i := 0; i < 3; i++ {
		status, hdr, b := post(t, ts, "/v1/design", body)
		if status != http.StatusOK {
			t.Fatalf("failing solve %d: status %d, body %s", i, status, b)
		}
		if got := hdr.Get("X-TCR-Degraded"); got != "solver-failure" {
			t.Fatalf("failing solve %d: X-TCR-Degraded %q, want solver-failure", i, got)
		}
		if !bytes.Equal(b, stale) {
			t.Fatalf("failing solve %d: response is not the stale neighbor", i)
		}
	}
	if !s.brk.isOpen() {
		t.Fatal("three solver failures did not trip the breaker")
	}
	if status, b := get(t, ts, "/healthz"); status != http.StatusOK || string(b) != "degraded\n" {
		t.Fatalf("tripped healthz: %d %q", status, b)
	}

	// Open breaker: stale serving continues with zero solver involvement.
	solvesBefore := c.computes.Load()
	status, hdr, b := post(t, ts, "/v1/design", body)
	if status != http.StatusOK || hdr.Get("X-TCR-Degraded") != "breaker-open" || !bytes.Equal(b, stale) {
		t.Fatalf("open-breaker serve: %d %q (stale match %v)", status, hdr.Get("X-TCR-Degraded"), bytes.Equal(b, stale))
	}
	if c.computes.Load() != solvesBefore {
		t.Fatal("open breaker let a request reach the solver")
	}
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		`tcrd_degraded_total{reason="solver-failure"} 3`,
		`tcrd_degraded_total{reason="breaker-open"} 1`,
		"tcrd_breaker_open 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}

	// Solver heals, cooloff passes: the probe closes the circuit and the
	// daemon serves fresh, certified artifacts again.
	design.SetOracleFaults(0)
	s.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	status, hdr, b = post(t, ts, "/v1/design", body)
	if status != http.StatusOK {
		t.Fatalf("probe solve: status %d, body %s", status, b)
	}
	if hdr.Get("X-TCR-Degraded") != "" {
		t.Fatalf("healed solve still degraded: %q", hdr.Get("X-TCR-Degraded"))
	}
	if s.brk.isOpen() {
		t.Fatal("successful probe did not close the breaker")
	}
	if status, b := get(t, ts, "/healthz"); status != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healed healthz: %d %q", status, b)
	}
}
