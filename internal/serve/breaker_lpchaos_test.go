//go:build lpchaos

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"tcr/internal/design"
	"tcr/internal/store"
)

// TestBreakerTripsOnLPFailuresE2E is the degraded-mode acceptance test,
// end to end with genuine solver failures: armed oracle faults make every
// design solve die, each failure is served as the stale adjacent Pareto
// point with solver-failure headers, the failures trip the breaker, and
// once open the daemon keeps serving the stale artifact without touching
// the solve path at all. Clearing the faults and passing the cooloff lets
// a probe solve close the circuit again.
func TestBreakerTripsOnLPFailuresE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: 3, BreakerCooloff: time.Hour})
	var c counters
	c.install(s)
	_, stale := seedDesign(t, s, store.DesignRequest{K: 4, Kind: store.DesignWorstCase, HNorm: 2.0})

	design.SetOracleFaults(1 << 30) // every oracle call fails: retries exhaust
	defer design.SetOracleFaults(0)

	body := `{"k":4,"kind":"wcopt","hnorm":2.5}`
	for i := 0; i < 3; i++ {
		status, hdr, b := post(t, ts, "/v1/design", body)
		if status != http.StatusOK {
			t.Fatalf("failing solve %d: status %d, body %s", i, status, b)
		}
		if got := hdr.Get("X-TCR-Degraded"); got != "solver-failure" {
			t.Fatalf("failing solve %d: X-TCR-Degraded %q, want solver-failure", i, got)
		}
		if !bytes.Equal(b, stale) {
			t.Fatalf("failing solve %d: response is not the stale neighbor", i)
		}
	}
	if !s.brk.isOpen() {
		t.Fatal("three solver failures did not trip the breaker")
	}
	if status, b := get(t, ts, "/healthz"); status != http.StatusOK || string(b) != "degraded\n" {
		t.Fatalf("tripped healthz: %d %q", status, b)
	}

	// Open breaker: stale serving continues with zero solver involvement.
	solvesBefore := c.computes.Load()
	status, hdr, b := post(t, ts, "/v1/design", body)
	if status != http.StatusOK || hdr.Get("X-TCR-Degraded") != "breaker-open" || !bytes.Equal(b, stale) {
		t.Fatalf("open-breaker serve: %d %q (stale match %v)", status, hdr.Get("X-TCR-Degraded"), bytes.Equal(b, stale))
	}
	if c.computes.Load() != solvesBefore {
		t.Fatal("open breaker let a request reach the solver")
	}
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		`tcrd_degraded_total{reason="solver-failure"} 3`,
		`tcrd_degraded_total{reason="breaker-open"} 1`,
		"tcrd_breaker_open 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}

	// Solver heals, cooloff passes: the probe closes the circuit and the
	// daemon serves fresh, certified artifacts again.
	design.SetOracleFaults(0)
	s.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	status, hdr, b = post(t, ts, "/v1/design", body)
	if status != http.StatusOK {
		t.Fatalf("probe solve: status %d, body %s", status, b)
	}
	if hdr.Get("X-TCR-Degraded") != "" {
		t.Fatalf("healed solve still degraded: %q", hdr.Get("X-TCR-Degraded"))
	}
	if s.brk.isOpen() {
		t.Fatal("successful probe did not close the breaker")
	}
	if status, b := get(t, ts, "/healthz"); status != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healed healthz: %d %q", status, b)
	}
}

// TestOnlineResolveFailureChaos arms genuine LP oracle faults against a
// tripped online re-solve: the solve dies, the controller records the
// failure and keeps serving the prior certified design (no degradation —
// the swap simply never happened), the failure feeds the circuit breaker,
// and the cooloff rate-limits the retry.
func TestOnlineResolveFailureChaos(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: 1, BreakerCooloff: time.Hour, OnlineCooloff: 1})

	// Healthy bootstrap: uniform traffic publishes the first design.
	if _, _, or := postObserve(t, ts, "default", uniformNDJSON(16)); !or.Trip {
		t.Fatal("bootstrap batch did not trip")
	}
	st1 := waitPublished(t, ts, "default", "")
	fp1 := st1.ServedFP
	_, _, art1 := getH(t, ts, "/v1/online/default/design")

	// Cooloff batch, then re-arm batch.
	postObserve(t, ts, "default", uniformNDJSON(16))
	if _, _, or := postObserve(t, ts, "default", uniformNDJSON(16)); !or.Armed {
		t.Fatal("controller did not re-arm")
	}

	// Every oracle call now fails; the traffic shift trips a re-solve that
	// cannot certify.
	design.SetOracleFaults(1 << 30)
	defer design.SetOracleFaults(0)
	if _, _, or := postObserve(t, ts, "default", concentratedNDJSON(0, 5, 5, 240)); !or.Trip {
		t.Fatal("shifted batch did not trip")
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.met.resolves[resolveErr].Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-solve failure never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stale serving continues: same prior artifact, resolving cleared, the
	// breaker is open, and the error is counted.
	status, hdr, b := getH(t, ts, "/v1/online/default/design")
	if status != http.StatusOK || hdr.Get("X-TCR-Degraded") != "" {
		t.Fatalf("post-failure design: status %d degraded %q", status, hdr.Get("X-TCR-Degraded"))
	}
	if !bytes.Equal(b, art1) {
		t.Fatal("post-failure design is not the prior artifact")
	}
	var or observeResponse
	_, sb := get(t, ts, "/v1/online/default")
	if err := json.Unmarshal(sb, &or); err != nil {
		t.Fatal(err)
	}
	if or.ServedFP != fp1 || or.Resolving {
		t.Fatalf("post-failure state: served %q (want %q) resolving %v", or.ServedFP, fp1, or.Resolving)
	}
	if !s.brk.isOpen() {
		t.Fatal("failed re-solve did not feed the breaker")
	}
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		`tcrd_resolves_total{outcome="error"} 1`,
		`tcrd_resolves_total{outcome="ok"} 1`,
		"tcrd_breaker_open 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}
}
