package serve

// Graceful degradation: when the solve path cannot produce a fresh
// artifact — the admission queue is full, the circuit breaker has tripped
// on repeated solver failures, or the solve itself failed — the daemon
// tries to serve a stale-but-certified nearby artifact from the store
// instead of a bare error. "Nearby" means: identical request with only its
// degradation axis freed (locality budget for designs, sampling for evals,
// curve resolution for Pareto sweeps), closest along that axis. A fallback
// response is always a committed, integrity-verified artifact; the
// X-TCR-Degraded, X-TCR-Staleness, and X-TCR-Fallback headers tell the
// client exactly what it got and how old it is, so it can decide whether
// stale is good enough or retry later for the real thing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"tcr/internal/store"
)

// Degradation reasons, as sent in X-TCR-Degraded and labeled in the
// tcrd_degraded_total metric.
const (
	degradeOverload = iota
	degradeBreaker
	degradeSolverFailure
	// degradeResolving marks an online-design answer served from the prior
	// certified artifact while the tenant's re-solve is still running.
	degradeResolving
)

var degradeReasons = [4]string{"overload", "breaker-open", "solver-failure", "re-solving"}

// errBreakerOpen rejects a store-miss while the breaker is open: the solve
// path has failed repeatedly and is resting; only the store serves.
var errBreakerOpen = errors.New("serve: circuit breaker open, solve path disabled")

// Health states surfaced in /healthz and /metrics.
const (
	healthOK       = "ok"
	healthDegraded = "degraded"
	healthDraining = "draining"
)

var healthStates = [3]string{healthOK, healthDegraded, healthDraining}

// breaker is the solve-path circuit breaker: Threshold consecutive solver
// failures open it for Cooloff, during which store-miss requests are
// rejected (or served stale) without touching the solvers. After the
// cooloff one probe request is let through; its outcome closes or re-opens
// the circuit. The clock is injected so tests can drive the cooloff.
type breaker struct {
	threshold int
	cooloff   time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
	trips     int64
}

// allow reports whether a solve may start now. While open it admits a
// single probe once the cooloff has expired.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// abandonProbe returns an admitted probe slot unused (the probe never
// reached the solver — queue full or client gone), so the next allow after
// the cooloff can admit another.
func (b *breaker) abandonProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// recordSuccess closes the circuit and forgets the failure streak.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

// recordFailure extends the failure streak; at threshold it (re-)opens the
// circuit for a fresh cooloff.
func (b *breaker) recordFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.fails >= b.threshold {
		if b.openUntil.IsZero() {
			b.trips++
		}
		b.openUntil = now.Add(b.cooloff)
	}
}

// isOpen reports whether the circuit is open: it has tripped and no probe
// has succeeded since. (The cooloff admits probes; only a probe success
// closes the circuit.)
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero()
}

func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// healthState derives the daemon's health: draining dominates, then a
// tripped breaker reads as degraded, else ok.
func (s *Server) healthState() string {
	if s.draining.Load() {
		return healthDraining
	}
	if s.brk.isOpen() {
		return healthDegraded
	}
	return healthOK
}

// staleFallback is a nearby committed artifact chosen to stand in for a
// request the solve path could not serve.
type staleFallback struct {
	payload []byte
	m       store.Manifest
	note    string
}

// degradeIndex classifies an error into a degradation reason, or -1 when
// the failure must surface as its status code (bad request, client
// deadline, draining).
func (s *Server) degradeIndex(err error, ctxErr error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return degradeOverload
	case errors.Is(err, errBreakerOpen):
		return degradeBreaker
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctxErr, context.DeadlineExceeded):
		return -1 // the client bounded the request; expiry is its answer
	case errors.Is(err, context.Canceled):
		return -1
	default:
		return degradeSolverFailure
	}
}

// nearbyEval finds the closest certified eval artifact for the same
// network and algorithm, with only the sampling freed.
func (s *Server) nearbyEval(req store.EvalRequest) *staleFallback {
	norm := func(r store.EvalRequest) (string, error) {
		r.Samples, r.Seed = 0, 0
		return r.Fingerprint()
	}
	want, err := norm(req)
	if err != nil {
		return nil
	}
	return s.nearest(store.KindEval, func(payload []byte) (string, float64, string, bool) {
		var art store.EvalArtifact
		if json.Unmarshal(payload, &art) != nil {
			return "", 0, "", false
		}
		got, err := norm(art.Request)
		if err != nil || got != want {
			return "", 0, "", false
		}
		d := math.Abs(float64(art.Request.Samples - req.Samples))
		note := fmt.Sprintf("eval samples=%d seed=%d (requested samples=%d seed=%d)",
			art.Request.Samples, art.Request.Seed, req.Samples, req.Seed)
		return got, d, note, true
	})
}

// nearbyDesign finds the closest certified worst-case design for the same
// network and strategy, with only the locality budget (hnorm) freed — the
// adjacent Pareto point.
func (s *Server) nearbyDesign(req store.DesignRequest) *staleFallback {
	if req.Kind != store.DesignWorstCase {
		return nil // minloc designs have no free axis to be "nearby" along
	}
	norm := func(r store.DesignRequest) (string, error) {
		r.HNorm = 0
		return r.Fingerprint()
	}
	want, err := norm(req)
	if err != nil {
		return nil
	}
	return s.nearest(store.KindDesign, func(payload []byte) (string, float64, string, bool) {
		var art store.DesignArtifact
		if json.Unmarshal(payload, &art) != nil || !art.Certified {
			return "", 0, "", false
		}
		got, err := norm(art.Request)
		if err != nil || got != want {
			return "", 0, "", false
		}
		d := math.Abs(art.Request.HNorm - req.HNorm)
		note := fmt.Sprintf("design hnorm=%g (requested %g)", art.Request.HNorm, req.HNorm)
		return got, d, note, true
	})
}

// nearbyPareto finds the closest Pareto curve for the same radix and
// solver knobs, with the sweep window and resolution freed.
func (s *Server) nearbyPareto(req store.ParetoRequest) *staleFallback {
	norm := func(r store.ParetoRequest) (string, error) {
		r.HMin, r.HMax, r.Points = 0, 0, 0
		return r.Fingerprint()
	}
	want, err := norm(req)
	if err != nil {
		return nil
	}
	return s.nearest(store.KindPareto, func(payload []byte) (string, float64, string, bool) {
		var art store.ParetoArtifact
		if json.Unmarshal(payload, &art) != nil {
			return "", 0, "", false
		}
		got, err := norm(art.Request)
		if err != nil || got != want {
			return "", 0, "", false
		}
		r := art.Request
		d := math.Abs(r.HMin-req.HMin) + math.Abs(r.HMax-req.HMax) + math.Abs(float64(r.Points-req.Points))
		note := fmt.Sprintf("pareto [%g,%g]x%d (requested [%g,%g]x%d)",
			r.HMin, r.HMax, r.Points, req.HMin, req.HMax, req.Points)
		return got, d, note, true
	})
}

// nearest scans the committed artifacts under kind and returns the
// admissible candidate with the smallest distance. match inspects one
// payload and reports its normalized fingerprint, distance, and a
// human-readable note; ok=false skips the candidate. Fingerprints are
// visited in sorted order so ties break deterministically.
func (s *Server) nearest(kind string, match func(payload []byte) (normFP string, dist float64, note string, ok bool)) *staleFallback {
	fps, err := s.store.List(kind)
	if err != nil {
		return nil
	}
	sort.Strings(fps)
	var best *staleFallback
	bestDist := math.Inf(1)
	for _, fp := range fps {
		payload, m, err := s.store.Get(kind, fp)
		if err != nil {
			continue // corrupt or racing-delete slots are not fallback material
		}
		if _, dist, note, ok := match(payload); ok && dist < bestDist {
			bestDist = dist
			best = &staleFallback{payload: payload, m: m, note: note}
		}
	}
	return best
}

// serveStale writes a degraded 200: the stale payload plus the headers
// that disclose the substitution.
func (s *Server) serveStale(w http.ResponseWriter, reasonIdx int, fb *staleFallback) {
	s.met.degraded[reasonIdx].Add(1)
	staleness := s.now().Unix() - fb.m.CreatedUnix
	if staleness < 0 {
		staleness = 0
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-TCR-Degraded", degradeReasons[reasonIdx])
	h.Set("X-TCR-Staleness", fmt.Sprintf("%d", staleness))
	h.Set("X-TCR-Fallback", fb.note)
	h.Set("X-TCR-Fallback-Fingerprint", fb.m.Fingerprint)
	writeBody(w, fb.payload)
}
