package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tcr/internal/design"
	"tcr/internal/eval"
	"tcr/internal/lp"
	"tcr/internal/online"
	"tcr/internal/routing"
	"tcr/internal/store"
)

// Config parameterizes a daemon; zero fields select the defaults.
type Config struct {
	// StoreDir is the artifact store root (required).
	StoreDir string
	// Workers bounds concurrently running solves (default 2).
	Workers int
	// QueueDepth bounds requests waiting for a solver slot beyond the
	// running ones; an arrival past Workers+QueueDepth in-flight misses is
	// rejected with 429 (default 8). Store hits bypass admission entirely.
	QueueDepth int
	// SolveWorkers is the per-solve parallelism handed to the engines
	// (eval sharding, Hungarian oracles); 0 means all cores.
	SolveWorkers int
	// FlowCacheEntries caps the in-memory flow-table LRU (default 64).
	FlowCacheEntries int
	// DefaultTimeout applies to requests that set no timeout_ms; 0 means
	// no deadline.
	DefaultTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish before the listener is torn down (default 10s).
	DrainTimeout time.Duration
	// ShutdownTimeout bounds Close's wait for background jobs after drain;
	// past it Close returns with the jobs' round checkpoints already on
	// disk for the next daemon to resume. 0 waits indefinitely.
	ShutdownTimeout time.Duration
	// BreakerThreshold is the consecutive solver-failure count that trips
	// the circuit breaker onto store-only serving (default 5).
	BreakerThreshold int
	// BreakerCooloff is how long a tripped breaker rests before letting a
	// probe solve through (default 30s).
	BreakerCooloff time.Duration
	// JobTTL is how long a finished job's table entry outlives its
	// completion before it is garbage-collected; its artifact stays in the
	// store (default 1h).
	JobTTL time.Duration
	// JobMaxDone caps retained finished jobs regardless of age, oldest
	// evicted first (default 1024).
	JobMaxDone int
	// OnlineK is the torus radix the online design loop re-solves for; its
	// estimators size to k^2 nodes (default 4).
	OnlineK int
	// OnlineSeed seeds the per-tenant sketch hashing; identical seeds and
	// sample streams reproduce identical estimates across daemons.
	OnlineSeed uint64
	// DriftThreshold is the estimate-vs-served total-variation distance that
	// trips a re-solve (default 0.25).
	DriftThreshold float64
	// OnlineCooloff is how many observe batches must pass after a re-solve
	// completes before the next may launch (default 2).
	OnlineCooloff int
	// OnlineMinSamples gates controller decisions until a tenant's sketch
	// has ingested this much sample mass (default 64).
	OnlineMinSamples float64
	// OnlineHMax and OnlineHSteps define the locality operating-point grid
	// re-solves quantize onto (defaults 1.5 and 5).
	OnlineHMax   float64
	OnlineHSteps int
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 2
	}
	return c.Workers
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 8
	}
	return c.QueueDepth
}

func (c Config) flowCacheEntries() int {
	if c.FlowCacheEntries <= 0 {
		return 64
	}
	return c.FlowCacheEntries
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 10 * time.Second
	}
	return c.DrainTimeout
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold <= 0 {
		return 5
	}
	return c.BreakerThreshold
}

func (c Config) breakerCooloff() time.Duration {
	if c.BreakerCooloff <= 0 {
		return 30 * time.Second
	}
	return c.BreakerCooloff
}

func (c Config) jobTTL() time.Duration {
	if c.JobTTL <= 0 {
		return time.Hour
	}
	return c.JobTTL
}

func (c Config) jobMaxDone() int {
	if c.JobMaxDone <= 0 {
		return 1024
	}
	return c.JobMaxDone
}

func (c Config) onlineK() int {
	if c.OnlineK <= 0 {
		return 4
	}
	return c.OnlineK
}

// hooks are white-box observation points for tests: storeHit fires when a
// request is served from the artifact store, computeStart when a solver
// actually begins work. Both may be nil.
type hooks struct {
	storeHit     func(kind, fp string)
	computeStart func(kind, fp string)
}

// Server is the tcrd daemon: HTTP handlers over the compute layer, the
// artifact store, singleflight coalescing, and bounded admission.
type Server struct {
	cfg    Config
	store  *store.Store
	cache  *eval.Cache
	online *online.Manager
	mux    *http.ServeMux
	single group
	slots  chan struct{}
	queued atomic.Int64
	met    metrics
	hooks  hooks
	jobs   jobTable
	// saveMu serializes jobs.json writers so a stale snapshot's rename
	// can never land after a fresher one (lost update).
	saveMu    sync.Mutex
	jobCtx    context.Context
	jobCancel context.CancelFunc
	wg        sync.WaitGroup
	draining  atomic.Bool
	brk       *breaker
	// now is the daemon's clock (breaker cooloffs, staleness headers, job
	// ages); injectable so tests can drive time.
	now func() time.Time
}

// errQueueFull is the admission rejection mapped to 429.
var errQueueFull = errors.New("serve: admission queue full")

// New opens (or creates) the artifact store and assembles the daemon.
func New(cfg Config) (*Server, error) {
	if cfg.StoreDir == "" {
		return nil, errors.New("serve: Config.StoreDir is required")
	}
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	n := cfg.onlineK() * cfg.onlineK()
	om, err := online.NewManager(online.Config{
		Dir:    filepath.Join(cfg.StoreDir, "online"),
		Sketch: online.SketchConfig{N: n, Seed: cfg.OnlineSeed},
		Controller: online.ControllerConfig{
			Threshold:  cfg.DriftThreshold,
			Cooloff:    cfg.OnlineCooloff,
			MinSamples: cfg.OnlineMinSamples,
		},
		HMax:   cfg.OnlineHMax,
		HSteps: cfg.OnlineHSteps,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		store:  st,
		cache:  eval.NewCacheLimit(cfg.flowCacheEntries()),
		online: om,
		slots:  make(chan struct{}, cfg.workers()),
		brk:    &breaker{threshold: cfg.breakerThreshold(), cooloff: cfg.breakerCooloff()},
		now:    time.Now,
	}
	s.jobCtx, s.jobCancel = context.WithCancel(context.Background())
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/worstperm", s.handleWorstPerm)
	s.mux.HandleFunc("POST /v1/design", s.handleDesign)
	s.mux.HandleFunc("POST /v1/pareto", s.handlePareto)
	s.mux.HandleFunc("POST /v1/observe", s.handleObserve)
	s.mux.HandleFunc("GET /v1/online/{tenant}", s.handleOnlineStatus)
	s.mux.HandleFunc("GET /v1/online/{tenant}/design", s.handleOnlineDesign)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler exposes the daemon's routes (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels background jobs and waits for them to drain, up to
// Config.ShutdownTimeout (0: indefinitely). In-flight design solves abort
// between cutting-plane rounds; their last checkpoint stays in the store,
// so a restarted daemon resumes rather than recomputes — which is exactly
// why a deadline expiry here is safe: the force-abandoned jobs' progress
// is already persisted, round by round.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.jobCancel()
	if d := s.cfg.ShutdownTimeout; d > 0 {
		if !waitTimeout(&s.wg, d) {
			return fmt.Errorf("serve: shutdown timeout after %v: background jobs abandoned with checkpoints persisted", d)
		}
		return nil
	}
	s.wg.Wait()
	return nil
}

// waitTimeout waits for wg up to d; false means the deadline won. The
// watcher goroutine it leaves behind exits as soon as the jobs do finish.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// Run serves on addr until ctx is cancelled, then drains gracefully:
// in-flight requests get DrainTimeout to finish, background jobs are
// cancelled (checkpointing their progress), and the job pool is awaited.
func (s *Server) Run(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		s.draining.Store(true)
		shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
		defer cancel()
		//lint:ignore errdrop a failed graceful shutdown falls through to the hard Close below
		srv.Shutdown(shCtx)
	}()
	err := srv.ListenAndServe()
	<-done
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

// acquire admits the caller to the solver pool, blocking for a free slot up
// to the request's deadline. Arrivals beyond Workers+QueueDepth in-flight
// misses are rejected immediately — bounded queueing, never unbounded pileup.
func (s *Server) acquire(ctx context.Context) error {
	n := s.queued.Add(1)
	if int(n) > s.cfg.workers()+s.cfg.queueDepth() {
		s.queued.Add(-1)
		s.met.rejected.Add(1)
		return errQueueFull
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return ctx.Err()
	}
}

func (s *Server) release() {
	<-s.slots
	s.queued.Add(-1)
}

// result is the request spine shared by every artifact endpoint: coalesce
// concurrent identical requests, serve from the store when the artifact
// exists (no admission needed), otherwise admit, compute, persist (when the
// compute says so), and return the canonical payload bytes.
func (s *Server) result(ctx context.Context, kind, fp string, compute func(context.Context) (payload []byte, persist bool, err error)) ([]byte, error) {
	return s.single.do(ctx, kind+"/"+fp, func() ([]byte, error) {
		if b, _, err := s.store.Get(kind, fp); err == nil {
			s.met.storeHits.Add(1)
			if s.hooks.storeHit != nil {
				s.hooks.storeHit(kind, fp)
			}
			return b, nil
		}
		s.met.storeMisses.Add(1)
		if !s.brk.allow(s.now()) {
			return nil, errBreakerOpen
		}
		if err := s.acquire(ctx); err != nil {
			s.brk.abandonProbe()
			return nil, err
		}
		defer s.release()
		if s.hooks.computeStart != nil {
			s.hooks.computeStart(kind, fp)
		}
		start := time.Now()
		payload, persist, err := compute(ctx)
		s.met.observeSolve(time.Since(start))
		if err != nil {
			// Solver-owned failures feed the breaker; a context expiry or
			// cancellation is the client's budget speaking, not ill health.
			if ctx.Err() == nil {
				s.brk.recordFailure(s.now())
			} else {
				s.brk.abandonProbe()
			}
			return nil, err
		}
		s.brk.recordSuccess()
		if persist {
			if _, err := s.store.Put(kind, fp, store.SchemaVersion, payload); err != nil {
				return nil, err
			}
		}
		return payload, nil
	})
}

// Wire request envelopes: the store request (the fingerprint input) plus
// per-request budgets, which deliberately stay outside the fingerprint so a
// budget-limited run and its completion share one artifact slot.
type evalWire struct {
	store.EvalRequest
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type worstPermWire struct {
	store.WorstPermRequest
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type designWire struct {
	store.DesignRequest
	MaxRounds int   `json:"max_rounds,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Async     bool  `json:"async,omitempty"`
}

type paretoWire struct {
	store.ParetoRequest
	MaxRounds int   `json:"max_rounds,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Async     bool  `json:"async,omitempty"`
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("malformed request body: %w", err)
	}
	return nil
}

// reqCtx derives the request's working context: an explicit timeout_ms wins,
// else the configured default, else no deadline beyond the connection's.
func (s *Server) reqCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epEval].Add(1)
	var req evalWire
	if err := decode(r, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if _, _, err := evalNetwork(req.EvalRequest); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	fp, err := req.Fingerprint()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMS)
	defer cancel()
	payload, err := s.result(ctx, store.KindEval, fp, func(ctx context.Context) ([]byte, bool, error) {
		art, err := ComputeEval(ctx, req.EvalRequest, s.cache, s.cfg.SolveWorkers)
		if err != nil {
			return nil, false, err
		}
		b, err := store.Encode(art)
		return b, err == nil, err
	})
	s.finish(w, r, ctx, payload, err, func() *staleFallback { return s.nearbyEval(req.EvalRequest) })
}

func (s *Server) handleWorstPerm(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epWorstPerm].Add(1)
	var req worstPermWire
	if err := decode(r, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if err := validateNamed(req.K, req.Alg, req.Validate); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	fp, err := req.Fingerprint()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMS)
	defer cancel()
	payload, err := s.result(ctx, store.KindWorstPerm, fp, func(ctx context.Context) ([]byte, bool, error) {
		art, err := ComputeWorstPerm(ctx, req.WorstPermRequest, s.cache, s.cfg.SolveWorkers)
		if err != nil {
			return nil, false, err
		}
		b, err := store.Encode(art)
		return b, err == nil, err
	})
	// Worst-case permutations have no degradation axis: every field is
	// load-bearing, so there is no "nearby" artifact to fall back on.
	s.finish(w, r, ctx, payload, err, nil)
}

// validateNamed runs a request's shape validation plus the checks shared by
// the radix-addressed named endpoints (radix ceiling, algorithm existence).
// Eval requests, which may carry an explicit topology, go through
// evalNetwork instead so family resolution failures are admission errors.
func validateNamed(k int, alg string, validate func() error) error {
	if err := validate(); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	if _, ok := routing.ByName(alg); !ok {
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	return nil
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epDesign].Add(1)
	var req designWire
	if err := decode(r, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if _, err := topoFor(req.K, req.Topology); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	fp, err := req.DesignRequest.Fingerprint()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	compute := s.designCompute(req.DesignRequest, fp, req.MaxRounds)
	if req.Async {
		s.submitJob(w, r, store.KindDesign, fp, compute)
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMS)
	defer cancel()
	payload, err := s.result(ctx, store.KindDesign, fp, compute)
	s.finish(w, r, ctx, payload, err, func() *staleFallback { return s.nearbyDesign(req.DesignRequest) })
}

// designCompute builds the solver closure for a design request: budgets in
// the options, the checkpoint slot keyed by the request fingerprint (so a
// killed daemon's successor resumes the same file), persistence only for
// certified results — an uncertified artifact is returned to the caller but
// kept out of the store, and its checkpoint stays behind for the retry.
func (s *Server) designCompute(req store.DesignRequest, fp string, maxRounds int) func(context.Context) ([]byte, bool, error) {
	return func(ctx context.Context) ([]byte, bool, error) {
		ckpt, err := s.store.CheckpointPath(store.KindDesign, fp)
		if err != nil {
			return nil, false, err
		}
		opts := design.Options{
			MaxRounds:  maxRounds,
			Workers:    s.cfg.SolveWorkers,
			Checkpoint: ckpt,
		}
		art, err := ComputeDesign(ctx, req, opts)
		if err != nil {
			return nil, false, err
		}
		// A round budget (max_rounds) degrades to a 200 with the best
		// iterate, uncertified. A deadline is different: the client asked
		// for a bounded request, so expiry surfaces as 504 — the round
		// checkpoints already written keep the partial progress.
		if !art.Certified && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, false, fmt.Errorf(
				"design uncertified after %d rounds (%s): %w",
				art.Rounds, art.Reason, context.DeadlineExceeded)
		}
		b, err := store.Encode(art)
		if err != nil {
			return nil, false, err
		}
		return b, art.Certified, nil
	}
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epPareto].Add(1)
	var req paretoWire
	if err := decode(r, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if err := checkRadix(req.K); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	fp, err := req.ParetoRequest.Fingerprint()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	compute := func(ctx context.Context) ([]byte, bool, error) {
		art, err := ComputePareto(ctx, req.ParetoRequest, design.Options{
			MaxRounds: req.MaxRounds,
			Workers:   s.cfg.SolveWorkers,
		})
		if err != nil {
			return nil, false, err
		}
		b, err := store.Encode(art)
		return b, err == nil, err
	}
	if req.Async {
		s.submitJob(w, r, store.KindPareto, fp, compute)
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMS)
	defer cancel()
	payload, err := s.result(ctx, store.KindPareto, fp, compute)
	s.finish(w, r, ctx, payload, err, func() *staleFallback { return s.nearbyPareto(req.ParetoRequest) })
}

// handleHealthz reports the health state machine: ok and degraded (breaker
// tripped, store-only serving) answer 200 — the daemon is serving — while
// draining answers 503 so load balancers stop routing to it.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := s.healthState()
	if state == healthDraining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeBody(w, []byte(state+"\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g := gauges{
		queueDepth:   s.queued.Load(),
		running:      int64(len(s.slots)),
		cacheEntries: int64(s.cache.Len()),
		health:       s.healthState(),
		breakerOpen:  s.brk.isOpen(),
		breakerTrips: s.brk.tripCount(),
		jobs:         s.jobs.count(),
		drifts:       s.driftGauges(),
	}
	writeBody(w, s.met.render(g))
}

// errorBody is the JSON error envelope every failure returns.
type errorBody struct {
	Error string `json:"error"`
	// Diagnostics carries the LP recovery-ladder post-mortem when the
	// failure surfaced one (numerical failures, deadline expiry mid-solve).
	Diagnostics string `json:"diagnostics,omitempty"`
}

func (s *Server) fail(w http.ResponseWriter, _ *http.Request, status int, err error) {
	body := errorBody{Error: err.Error()}
	var de *lp.DiagError
	if errors.As(err, &de) {
		body.Diagnostics = de.Diag.Summary()
	}
	b, merr := json.Marshal(body)
	if merr != nil {
		b = []byte(`{"error":"internal"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeBody(w, append(b, '\n'))
}

// finish maps a result-spine outcome onto the wire: success streams the
// canonical payload. Degradable failures — overload, tripped breaker,
// solver failure — first try nearby (when the endpoint has a degradation
// axis): a stale-but-certified artifact served 200 with the X-TCR-Degraded
// and X-TCR-Staleness headers. Otherwise failures classify into 429 (queue
// full, with Retry-After), 503 (breaker open, with Retry-After = cooloff;
// or daemon draining), 504 (request deadline expired, with solver
// diagnostics when available), else 500.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, ctx context.Context, payload []byte, err error, nearby func() *staleFallback) {
	if err == nil {
		w.Header().Set("Content-Type", "application/json")
		writeBody(w, payload)
		return
	}
	if idx := s.degradeIndex(err, ctx.Err()); idx >= 0 && nearby != nil {
		if fb := nearby(); fb != nil {
			s.serveStale(w, idx, fb)
			return
		}
	}
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		s.fail(w, r, http.StatusTooManyRequests, err)
	case errors.Is(err, errBreakerOpen):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.breakerCooloff().Seconds())))
		s.fail(w, r, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.met.timeouts.Add(1)
		s.fail(w, r, http.StatusGatewayTimeout, fmt.Errorf("deadline expired: %w", err))
	case s.draining.Load() && errors.Is(err, context.Canceled):
		s.fail(w, r, http.StatusServiceUnavailable, errors.New("daemon draining"))
	default:
		s.fail(w, r, http.StatusInternalServerError, err)
	}
}

// writeBody sends a response body; a failed write means the client is gone
// and there is nobody left to tell.
func writeBody(w http.ResponseWriter, b []byte) {
	//lint:ignore errdrop a failed response write has no recipient
	w.Write(b)
}
